#!/usr/bin/env bash
# Performance trajectory snapshot: run the Go benchmark suite for human
# inspection, then emit a machine-readable BENCH_<date>.json via
# cmd/mppbench. Commit the JSON — successive snapshots are the repo's
# perf history, diffable across PRs.
#
#   scripts/bench.sh                   # BENCH_<today>.json, full windows
#   scripts/bench.sh my.json           # custom output path
#   QUICK=1 scripts/bench.sh           # shorter sampling windows
#   BENCHTIME=5x scripts/bench.sh      # longer go-test benches
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%Y-%m-%d).json}"

echo "== go test -bench (micro + experiment benchmarks) =="
go test -run 'xxx' -bench . -benchmem -benchtime "${BENCHTIME:-1x}" .

echo "== mppbench -> $out =="
go run ./cmd/mppbench ${QUICK:+-quick} -out "$out"
