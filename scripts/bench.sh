#!/usr/bin/env bash
# Performance trajectory snapshot: run the Go benchmark suite for human
# inspection, then emit a machine-readable BENCH_<date>.json via
# cmd/mppbench. Commit the JSON — successive snapshots are the repo's
# perf history, diffable across PRs.
#
#   scripts/bench.sh                   # BENCH_<today>.json, full windows
#   scripts/bench.sh my.json           # custom output path
#   QUICK=1 scripts/bench.sh           # shorter sampling windows
#   BENCHTIME=5x scripts/bench.sh      # longer go-test benches
#   WORKERS=1,2,4,8 scripts/bench.sh   # sharded-solver sweep widths
#   MODES=deterministic scripts/bench.sh  # skip the async engine rows
#   CACHE=false scripts/bench.sh       # skip the solve-cache hit rows
#
# On a single-CPU machine (or GOMAXPROCS=1) a multi-width WORKERS sweep
# measures sharding overhead, not speedup: mppbench prints a loud
# warning and stamps the snapshot's "sweep_warning" field so the JSON
# cannot be mistaken for a multicore result.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date -u +%Y-%m-%d).json}"

echo "== go test -bench (micro + experiment benchmarks) =="
go test -run 'xxx' -bench . -benchmem -benchtime "${BENCHTIME:-1x}" .

# Diff the fresh run against the most recent committed snapshot (if any):
# the snapshot is still written on a regression, but the script fails so
# the >20% states-expanded jump cannot land silently.
prev=$(ls BENCH_*.json 2>/dev/null | grep -vF "$out" | sort | tail -1 || true)

echo "== mppbench -> $out =="
# WORKERS sets the sharded-solver sweep (-wN rows with a speedup column
# vs the -w1 baseline) and MODES which engines it runs (deterministic
# states stay byte-identical across the sweep and are diff-gated at
# +20%; async rows are timing-dependent and gated at +50%).
# CACHE gates the solve-cache hit-latency rows (cache group), -diff-
# gated on ns/op with a 10x tolerance rather than states expanded.
go run ./cmd/mppbench ${QUICK:+-quick} -workers "${WORKERS:-1,2,4}" -modes "${MODES:-deterministic,async}" -cache="${CACHE:-true}" -out "$out" ${prev:+-diff "$prev"}
