#!/usr/bin/env bash
# Tier-1 verification gate: formatting, vet, build, full test suite, and
# a one-iteration benchmark smoke (benchmarks double as shape-check
# regression gates). Run before every commit; CI runs exactly this.
#
#   scripts/verify.sh           # full suite (~2 min; hardness q=4 dominates)
#   SHORT=1 scripts/verify.sh   # -short: skips the slow q=4 hardness search
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== mpplint =="
# Project-specific analyzers (internal/lint): ctx propagation, panic
# policy, errors.Is on sentinels, Status/Verdict consultation, the
# //mpp:hotpath no-allocation rule, plus the whole-program concurrency
# and determinism suite (atomicfield, lockguard, poolcheck,
# goroutinecheck, detcheck). Exits nonzero on any finding.
go run ./cmd/mpplint ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ${SHORT:+-short} ./...

echo "== go test -race =="
# The sharded exact solver (opt.Config.Workers > 1) routes states across
# shard goroutines over channels with an atomic incumbent/budget — so
# internal/opt runs its FULL race suite (the determinism sweep over
# Workers ∈ {1,2,4,7} AND the async-engine equivalence properties —
# TestAsyncMatchesDeterministicZoo, TestAsyncWitnessReplays,
# TestAsyncPartialBudgetBracket, TestAsyncCancel — included; ~2.5 min
# under -race). exp only fans out coarse-grained experiment goroutines
# and stays -short.
go test -race ./internal/opt/
# The solve cache is a shared mutex-guarded LRU hit by concurrent
# solvers (and its fingerprint property tests are zoo-wide), so it runs
# its full suite under -race too.
go test -race ./internal/cache/
# The state tables back every shard of the parallel engines; their
# suite (including the open-addressing growth and shard-routing
# properties) runs fully under -race as well.
go test -race ./internal/hashtab/
# The partitioned scheduler simulates its per-processor partitions on a
# goroutine pool and must stay byte-identical to the sequential oracle
# at every worker count, so internal/sched runs its FULL suite —
# including the 3000-case engine/oracle equivalence sweep — under -race.
go test -race ./internal/sched/
go test -race -short ./internal/exp/
# The job server is the concurrency hot spot by construction: a worker
# pool draining a queue, per-job cancel functions, a shared metrics
# mutex and the solve cache hit from every worker — its full suite
# (cancel-mid-solve and flood tests included) runs under -race.
go test -race ./internal/server/

echo "== sched smoke (10^5-node instances) =="
# The scale gate for the CSR-native engines: schedule 10⁵-node (and one
# 10⁶-node) DAGs, replay-validate, and check cost against the certified
# lower bound. Seconds of wall time, gated behind SCHED_SMOKE so the
# plain test suite stays fast.
SCHED_SMOKE=1 go test -run TestSchedSmoke -count=1 ./internal/sched/

echo "== server e2e smoke =="
# Exec-level proof of the solver-as-a-service contract: build the real
# mppserver and mpp binaries, start the server on an ephemeral port,
# and drive submit → poll → fetch over actual HTTP (byte-identical
# completed results, typed deadline/budget partials, queueing beyond
# the worker bound, live /metrics). Seconds of wall time.
go build ./cmd/mppserver ./cmd/mpp
go test -run TestServerEndToEnd -count=1 ./e2e/

echo "== bench smoke (1 iteration each) =="
go test -run 'xxx' -bench . -benchtime 1x . > /dev/null

echo "== states-expanded regression gate =="
# Deterministic expansion counts are exact, so a quick solver-only
# mppbench run diffed against the latest committed snapshot catches any
# heuristic/pruning regression (>20% more states on a shared benchmark
# fails; timing-dependent async rows get a looser +50% gate). v1
# snapshots are read compatibly.
latest_bench=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
if [ -n "$latest_bench" ]; then
    go run ./cmd/mppbench -quick -group solver -out /dev/null -diff "$latest_bench"
    # The sched rows are the allocation audit of the heuristic engines:
    # allocs/op on a fixed instance is deterministic, and a >1.3x jump
    # means a map or per-round allocation crept back into a hot path.
    go run ./cmd/mppbench -quick -group sched -out /dev/null -diff "$latest_bench"
else
    echo "no committed BENCH_*.json snapshot; skipping"
fi

echo "verify OK"
