#!/usr/bin/env bash
# Lint-only gate: formatting, vet, and the project analyzer suite, with
# the machine-readable findings persisted for CI artifacts and local
# triage. A subset of scripts/verify.sh for fast iteration on lint
# findings (~15 s vs the full gate's minutes).
#
#   scripts/lint.sh                       # report to lint_report.json
#   LINT_REPORT=/tmp/r.json scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

report="${LINT_REPORT:-lint_report.json}"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== mpplint -json =="
# Persist the findings even when nonzero: the report is the artifact CI
# uploads and the file a local fix loop watches.
status=0
go run ./cmd/mpplint -json ./... > "$report" || status=$?
if [ "$status" -ne 0 ]; then
    echo "mpplint findings (also in $report):" >&2
    go run ./cmd/mpplint ./... >&2 || true
    exit "$status"
fi

echo "lint OK ($report is empty: [])"
