package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// benchExperiment runs one registered experiment per iteration (quick
// sizing) and fails the benchmark if any of its shape checks regress —
// so `go test -bench .` regenerates and re-verifies every figure/lemma.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := exp.RunSafe(context.Background(), e, exp.Config{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if !tab.Pass() {
			for _, c := range tab.Checks {
				if !c.Pass {
					b.Fatalf("%s check %q failed: %s", id, c.Name, c.Detail)
				}
			}
		}
	}
}

func BenchmarkE01Fig1(b *testing.B)              { benchExperiment(b, "E01") }
func BenchmarkE02Lemma1Bounds(b *testing.B)      { benchExperiment(b, "E02") }
func BenchmarkE03GreedyUpper(b *testing.B)       { benchExperiment(b, "E03") }
func BenchmarkE04GreedyAdversarial(b *testing.B) { benchExperiment(b, "E04") }
func BenchmarkE05LowerBounds(b *testing.B)       { benchExperiment(b, "E05") }
func BenchmarkE06Tightness(b *testing.B)         { benchExperiment(b, "E06") }
func BenchmarkE07FairSpeedupLimit(b *testing.B)  { benchExperiment(b, "E07") }
func BenchmarkE08FairBlowup(b *testing.B)        { benchExperiment(b, "E08") }
func BenchmarkE09NonMonotone(b *testing.B)       { benchExperiment(b, "E09") }
func BenchmarkE10Superlinear(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11IOJumps(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12CliqueReduction(b *testing.B)   { benchExperiment(b, "E12") }
func BenchmarkE13VertexCover(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14HardClasses(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15BSPEquiv(b *testing.B)          { benchExperiment(b, "E15") }
func BenchmarkE16EvictionAblation(b *testing.B)  { benchExperiment(b, "E16") }
func BenchmarkE17AsyncRelaxation(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18SurplusInapprox(b *testing.B)   { benchExperiment(b, "E18") }
func BenchmarkE19Sequentialize(b *testing.B)     { benchExperiment(b, "E19") }

// Engine micro-benchmarks: the hot paths of the library itself.

func BenchmarkReplayZipper(b *testing.B) {
	g, ids := gen.Zipper(8, 200, 0)
	in := pebble.MustInstance(g, pebble.MPP(1, 2*8+2, 4))
	bld := pebble.NewBuilder(in)
	for _, u := range append(append([]NodeID{}, ids.S1...), ids.S2...) {
		bld.Compute(0, u)
	}
	for i, v := range ids.Chain {
		bld.Compute(0, v)
		if i > 0 {
			bld.DropRed(0, ids.Chain[i-1])
		}
	}
	s := bld.Strategy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pebble.Replay(in, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedySchedule(b *testing.B) {
	for _, size := range []int{64, 256} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			g := gen.RandomDAG(size, 0.05, 4, 7)
			in := pebble.MustInstance(g, pebble.MPP(4, g.MaxInDegree()+3, 3))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Run(sched.Greedy{}, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionedBeladyFFT(b *testing.B) {
	g := gen.FFT(6)
	in := pebble.MustInstance(g, pebble.MPP(2, 6, 3))
	s := sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(s, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSolverGrid(b *testing.B) {
	g := gen.Grid2D(3, 3)
	in := pebble.MustInstance(g, pebble.MPP(1, 4, 2))
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := opt.Exact(in, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func BenchmarkExactSolverGridTwoProc(b *testing.B) {
	g := gen.Grid2D(2, 3)
	in := pebble.MustInstance(g, pebble.MPP(2, 3, 2))
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := opt.Exact(in, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func BenchmarkExactWitnessGridTwoProc(b *testing.B) {
	g := gen.Grid2D(2, 3)
	in := pebble.MustInstance(g, pebble.MPP(2, 3, 2))
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := opt.ExactWithStrategy(in, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func BenchmarkZeroIODecision(b *testing.B) {
	g := gen.Pyramid(6)
	b.ReportAllocs()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := opt.ZeroIO(g, 8, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

// BenchmarkZeroIOBigCliqueSearch is the E12/E13 inner loop: the Theorem 2
// reduction DAG for C4 (no 3-clique), where the zero-I/O search must
// exhaust its whole pruned space to answer "no".
func BenchmarkZeroIOBigCliqueSearch(b *testing.B) {
	c4 := hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	red, err := hardness.BuildCliqueReduction(c4, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := opt.ZeroIOBig(red.Graph, red.R, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if res.Feasible {
			b.Fatal("C4 reduction unexpectedly feasible")
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

func BenchmarkMatMulGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gen.MatMul(8)
	}
}
