package repro

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sched"
)

func TestFacadeEndToEnd(t *testing.T) {
	g, _ := gen.Zipper(4, 20, 0)
	in, err := NewInstance(g, MPP(2, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := (sched.Greedy{}).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(in, strat)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost <= 0 {
		t.Fatal("no cost measured")
	}
	if got := len(Experiments()); got != 19 {
		t.Fatalf("Experiments() = %d entries, want 19", got)
	}
	if SPP(4, 2).ComputeCost != 0 || MPP(2, 4, 2).ComputeCost != 1 {
		t.Fatal("facade parameter constructors wrong")
	}
}
