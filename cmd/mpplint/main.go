// Command mpplint runs the project's static-analysis suite
// (internal/lint) over the repository: invariants of the anytime search
// stack and the allocation-free hot path that the compiler cannot check.
//
// Usage:
//
//	mpplint ./...              # lint every package in the module
//	mpplint ./internal/opt     # lint one package
//	mpplint -json ./...        # machine-readable findings
//	mpplint -list              # describe the analyzers and exit
//	mpplint -run a,b ./...     # run only the named analyzers
//
// Suppress a finding with a trailing or preceding comment carrying a
// mandatory reason:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: the full suite)")
	flag.Parse()

	if *list {
		analyzers := lint.Analyzers()
		sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := lint.Analyzers()
	if *run != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fail(fmt.Errorf("unknown analyzer %q (see mpplint -list)", name))
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		got, err := loader.Load(pat)
		if err != nil {
			fail(err)
		}
		pkgs = append(pkgs, got...)
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags, loader.ModuleRoot); err != nil {
			fail(err)
		}
	} else if err := lint.WriteText(os.Stdout, diags, loader.ModuleRoot); err != nil {
		fail(err)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mpplint:", err)
	os.Exit(2)
}
