package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mpplint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runLint executes the built binary and returns its exit code along
// with the captured streams.
func runLint(t *testing.T, bin string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

// TestExitCodes pins the documented exit-code contract at the process
// level: 0 for a clean package, 1 when findings are printed, 2 for
// usage errors — the values scripts/verify.sh and CI branch on.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)

	// Clean library package: exit 0, no output.
	code, out, stderr := runLint(t, bin, "../../internal/bitset")
	if code != 0 || out != "" {
		t.Errorf("clean package: exit %d stdout %q (want 0, empty)\nstderr: %s", code, out, stderr)
	}

	// Seeded-violation testdata: exit 1 and the findings on stdout. The
	// -run narrowing keeps the test pinned to one analyzer's findings.
	code, out, _ = runLint(t, bin, "-run", "errcmp", "../../internal/lint/testdata/src/errcmp")
	if code != 1 {
		t.Errorf("errcmp testdata: exit %d, want 1", code)
	}
	if !strings.Contains(out, "errcmp:") {
		t.Errorf("errcmp testdata: stdout %q lacks errcmp findings", out)
	}

	// Usage errors: unknown analyzer name and unknown flag, both exit 2.
	code, _, stderr = runLint(t, bin, "-run", "nosuch", "../../internal/bitset")
	if code != 2 || !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("-run nosuch: exit %d stderr %q (want 2 naming the analyzer)", code, stderr)
	}
	code, _, _ = runLint(t, bin, "-definitely-not-a-flag")
	if code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

// TestListNamesFullSuite: -list must describe all ten analyzers, sorted,
// and exit 0 — the shape scripts and docs rely on.
func TestListNamesFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	code, out, stderr := runLint(t, bin, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d\nstderr: %s", code, stderr)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			names = append(names, fields[0])
		}
	}
	want := []string{
		"atomicfield", "ctxthread", "detcheck", "errcmp", "goroutinecheck",
		"hotalloc", "lockguard", "paniccheck", "poolcheck", "verdictcheck",
	}
	if len(names) != len(want) {
		t.Fatalf("-list: got %d analyzers %v, want %d", len(names), names, len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("-list[%d] = %s, want %s", i, names[i], w)
		}
	}
}
