// Command mppsched generates (or loads) a DAG, runs a scheduler on an MPP
// instance, validates the produced pebbling strategy, and prints the cost
// breakdown.
//
// Usage:
//
//	mppsched -dag fft:4 -k 2 -r 6 -g 3 -sched greedy
//	mppsched -dag zipper:8,40 -k 2 -r 10 -g 4 -sched all
//	mppsched -dag file:my.txt -k 4 -sched partitioned:levels -timeline 20
//	mppsched -dag random:500,0.05 -sched random -timeout 2s
//
// -timeout bounds each scheduler's wall-clock time. Anytime schedulers
// (random-restart greedy) return their best-so-far strategy at the
// deadline; others report TIMEOUT and the run continues with the next
// scheduler instead of hanging.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/pebble"
	"repro/internal/prof"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/trace"
)

// stopProf flushes any active profiles; installed by main, called on
// every exit path (fatal bypasses defers via os.Exit).
var stopProf = func() {}

func main() {
	dagSpec := flag.String("dag", "fft:4", "DAG specification: "+spec.DAGSyntax)
	k := flag.Int("k", 2, "number of processors")
	r := flag.Int("r", 0, "red pebbles per processor (0 = Δin+2)")
	gCost := flag.Int("g", 3, "I/O cost g")
	schedSpec := flag.String("sched", "greedy", "scheduler: "+spec.SchedulerSyntax)
	timeline := flag.Int("timeline", 0, "print the first N moves of the strategy")
	gantt := flag.Int("gantt", 0, "print a per-processor activity strip of width N")
	improve := flag.Bool("improve", false, "post-optimize each strategy (no-op elision, dead-write elision, parallel repacking)")
	save := flag.String("save", "", "write the (last) strategy as JSON to this file")
	load := flag.String("load", "", "skip scheduling; validate and report the JSON strategy in this file")
	timeout := flag.Duration("timeout", 0, "per-scheduler wall-clock deadline (0 = none); anytime schedulers return their best-so-far strategy")
	flag.Parse()
	stop, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	stopProf = stop
	defer stopProf()

	g, err := spec.ParseDAG(*dagSpec)
	if err != nil {
		fatal(err)
	}
	rr := *r
	if rr == 0 {
		rr = g.MaxInDegree() + 2
	}
	in, err := pebble.NewInstance(g, pebble.MPP(*k, rr, *gCost))
	if err != nil {
		fatal(err)
	}
	st := g.ComputeStats()
	lower, lowerTerm := bounds.CertifiedLower(in)
	// The blue-start form charges the sources as loads (the convention
	// of the classic I/O bounds); it is a capacity-planning yardstick,
	// not a certified bound on this game's OPT, so it is reported
	// separately and never feeds the gap column.
	blueStart := ""
	if bs := bounds.BlueStartLower(in); bs > lower {
		blueStart = fmt.Sprintf(" | blue-start lower %d", bs)
	}
	fmt.Printf("dag %s: n=%d m=%d Δin=%d depth=%d | k=%d r=%d g=%d | Lemma 1 bounds: [%d, %d] | certified lower %d (%s)%s\n",
		g.Name(), st.N, st.M, st.MaxIn, st.Depth, *k, rr, *gCost,
		bounds.Lemma1Lower(in), bounds.Lemma1Upper(in), lower, lowerTerm, blueStart)
	gapCol := func(cost int64) string {
		return fmt.Sprintf("cost=%d lower=%d gap=%.1f%%", cost, lower, 100*bounds.Gap(lower, cost))
	}

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		strat, err := pebble.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rep, err := pebble.Replay(in, strat)
		if err != nil {
			fatal(fmt.Errorf("loaded strategy invalid: %w", err))
		}
		fmt.Printf("%-32s %s | %s\n", "loaded:"+*load, gapCol(rep.Cost), trace.Summary(in, rep))
		trace.PerProcessor(os.Stdout, rep)
		return
	}

	schedulers, err := spec.ParseSchedulers(*schedSpec)
	if err != nil {
		fatal(err)
	}
	var lastStrat *pebble.Strategy
	for _, s := range schedulers {
		ctx, cancel := context.WithCancel(context.Background())
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		}
		strat, err := sched.ScheduleCtx(ctx, s, in)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Printf("%-32s TIMEOUT after %v\n", s.Name(), *timeout)
			} else {
				fmt.Printf("%-32s ERROR: %v\n", s.Name(), err)
			}
			continue
		}
		rep, err := pebble.Replay(in, strat)
		if err != nil {
			fmt.Printf("%-32s INVALID: %v\n", s.Name(), err)
			continue
		}
		name := s.Name()
		if *improve {
			better, brep, err := sched.Improve(in, strat)
			if err != nil {
				fatal(err)
			}
			strat, rep = better, brep
			name += "+improve"
		}
		lastStrat = strat
		fmt.Printf("%-32s %s | %s\n", name, gapCol(rep.Cost), trace.Summary(in, rep))
		if len(schedulers) == 1 {
			trace.PerProcessor(os.Stdout, rep)
			if *timeline > 0 {
				trace.Timeline(os.Stdout, strat, *timeline)
			}
			if *gantt > 0 {
				fmt.Print(trace.Gantt(strat, *k, *gantt))
			}
		}
	}
	if *save != "" && lastStrat != nil {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := lastStrat.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("strategy saved to %s (%d moves)\n", *save, lastStrat.Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mppsched:", err)
	stopProf()
	os.Exit(1)
}
