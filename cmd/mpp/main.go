// Command mpp is the client for the mppserver job API. Every verb lives
// under the "remote" subcommand:
//
//	mpp remote [-server URL] submit -dag grid:4,4 -k 2 [-g 3] [-max-states n] [-timeout-ms n] [-witness] [-wait]
//	mpp remote [-server URL] status JOB
//	mpp remote [-server URL] wait JOB [-poll 100ms]
//	mpp remote [-server URL] result JOB
//	mpp remote [-server URL] cancel JOB
//	mpp remote [-server URL] list
//	mpp remote [-server URL] metrics
//
// -server defaults to $MPP_SERVER, then http://127.0.0.1:8080. Verbs
// print the server's JSON responses verbatim; "result" in particular
// echoes the canonical Result document byte-for-byte (the e2e harness
// diffs it against a local solve). A 4xx/5xx response is printed to
// stderr and exits 1; usage errors exit 2.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mpp: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpp:", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		usageErr(`usage: mpp remote [-server URL] <submit|status|wait|result|cancel|list|metrics> ...`)
	}
	if os.Args[1] != "remote" {
		usageErr(`unknown subcommand %q (only "remote" exists; local solves live in mppsched/mppexp)`, os.Args[1])
	}
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	def := os.Getenv("MPP_SERVER")
	if def == "" {
		def = "http://127.0.0.1:8080"
	}
	serverURL := fs.String("server", def, "mppserver base URL (default $MPP_SERVER, then http://127.0.0.1:8080)")
	_ = fs.Parse(os.Args[2:])
	if fs.NArg() == 0 {
		usageErr("missing verb (submit, status, wait, result, cancel, list, metrics)")
	}
	c := client{base: *serverURL}
	verb, rest := fs.Arg(0), fs.Args()[1:]
	switch verb {
	case "submit":
		c.submit(rest)
	case "status":
		c.show(rest, "/v1/jobs/%s")
	case "result":
		c.show(rest, "/v1/jobs/%s/result")
	case "wait":
		c.wait(rest)
	case "cancel":
		c.cancel(rest)
	case "list":
		body := c.do(http.MethodGet, "/v1/jobs", nil)
		os.Stdout.Write(body)
	case "metrics":
		body := c.do(http.MethodGet, "/metrics", nil)
		os.Stdout.Write(body)
	default:
		usageErr("unknown verb %q", verb)
	}
}

type client struct{ base string }

// do performs one request; a non-2xx response is fatal (body to
// stderr, exit 1).
func (c client) do(method, path string, body []byte) []byte {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "mpp: HTTP %d: %s", resp.StatusCode, out)
		os.Exit(1)
	}
	return out
}

// submit builds a SubmitRequest from flags, posts it, and optionally
// polls until the job is terminal.
func (c client) submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	dagSpec := fs.String("dag", "", "DAG generator spec (e.g. grid:4,4, fft:3, chain:16)")
	dagJSON := fs.String("dag-json", "", "path to a dag.Graph JSON file (alternative to -dag)")
	k := fs.Int("k", 1, "number of processors")
	r := fs.Int("r", 0, "red pebbles per processor (0 = Δin+2)")
	g := fs.Int("g", 3, "I/O cost g")
	computeCost := fs.Int("compute-cost", 1, "cost of one compute move (0 = classic SPP)")
	oneShot := fs.Bool("one-shot", false, "forbid recomputation (one-shot variant)")
	maxStates := fs.Int("max-states", 0, "state budget (0 = unbounded); exceeding it yields a typed partial result")
	heuristic := fs.String("heuristic", "", `heuristic stack: "floor", "io" or "max" (default max)`)
	dominance := fs.Bool("dominance", true, "dominance pruning")
	witness := fs.Bool("witness", false, "reconstruct an optimal strategy in the result")
	mode := fs.String("mode", "", `engine mode: "deterministic" or "async" (default deterministic)`)
	timeoutMS := fs.Int64("timeout-ms", 0, "per-job wall-clock deadline in ms (0 = none); expiring yields a typed partial result")
	doWait := fs.Bool("wait", false, "poll until the job is terminal and print the final status")
	poll := fs.Duration("poll", 100*time.Millisecond, "poll interval for -wait")
	_ = fs.Parse(args)

	req := server.SubmitRequest{
		DAG:         *dagSpec,
		K:           *k,
		R:           *r,
		G:           *g,
		ComputeCost: computeCost,
		OneShot:     *oneShot,
		MaxStates:   *maxStates,
		Heuristic:   *heuristic,
		Dominance:   dominance,
		Witness:     *witness,
		Mode:        *mode,
		TimeoutMS:   *timeoutMS,
	}
	if *dagJSON != "" {
		data, err := os.ReadFile(*dagJSON)
		if err != nil {
			fatal(err)
		}
		req.DAGJSON = data
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	resp := c.do(http.MethodPost, "/v1/jobs", body)
	if !*doWait {
		os.Stdout.Write(resp)
		return
	}
	var v server.View
	if err := json.Unmarshal(resp, &v); err != nil {
		fatal(fmt.Errorf("bad submit response: %w", err))
	}
	c.pollUntilTerminal(v.ID, *poll)
}

// show handles the one-job-ID verbs (status, result).
func (c client) show(args []string, pathFmt string) {
	if len(args) != 1 {
		usageErr("expected exactly one job ID")
	}
	body := c.do(http.MethodGet, fmt.Sprintf(pathFmt, args[0]), nil)
	os.Stdout.Write(body)
}

func (c client) cancel(args []string) {
	if len(args) != 1 {
		usageErr("expected exactly one job ID")
	}
	body := c.do(http.MethodDelete, "/v1/jobs/"+args[0], nil)
	os.Stdout.Write(body)
}

func (c client) wait(args []string) {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	poll := fs.Duration("poll", 100*time.Millisecond, "poll interval")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usageErr("expected exactly one job ID")
	}
	c.pollUntilTerminal(fs.Arg(0), *poll)
}

// pollUntilTerminal polls the status endpoint until the job reaches a
// terminal state, then prints the final view.
func (c client) pollUntilTerminal(id string, poll time.Duration) {
	for {
		body := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
		var v server.View
		if err := json.Unmarshal(body, &v); err != nil {
			fatal(fmt.Errorf("bad status response: %w", err))
		}
		if server.State(v.State).Terminal() {
			os.Stdout.Write(body)
			return
		}
		time.Sleep(poll)
	}
}
