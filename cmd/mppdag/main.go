// Command mppdag generates, inspects and converts the DAG families of the
// reproduction.
//
// Usage:
//
//	mppdag -dag zipper:4,30 -stats
//	mppdag -dag fft:5 -format dot > fft.dot
//	mppdag -dag grid:6,6 -format text > grid.txt
//	mppdag -dag file:grid.txt -format json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/spec"
)

func main() {
	dagSpec := flag.String("dag", "fft:3", "DAG specification: "+spec.DAGSyntax)
	format := flag.String("format", "", "output format: text, json, dot (empty = stats only)")
	flag.Parse()

	g, err := spec.ParseDAG(*dagSpec)
	if err != nil {
		fail(err)
	}
	if *format == "" {
		st := g.ComputeStats()
		fmt.Printf("name=%s n=%d m=%d sources=%d sinks=%d Δin=%d Δout=%d depth=%d widest=%d maxanc=%d\n",
			st.Name, st.N, st.M, st.Sources, st.Sinks, st.MaxIn, st.MaxOut, st.Depth, st.WidestLevel, st.MaxAncestors)
		return
	}
	switch *format {
	case "text":
		if err := g.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	case "dot":
		if err := g.WriteDOT(os.Stdout); err != nil {
			fail(err)
		}
	case "json":
		if err := json.NewEncoder(os.Stdout).Encode(g); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown format %q", *format))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mppdag:", err)
	os.Exit(1)
}
