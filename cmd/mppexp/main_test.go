package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command in the current directory into a temp
// binary so the tests can assert real process exit codes — flag
// validation must fail with status 2 before any experiment runs.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cli")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runExpect runs the binary and asserts the exit code and a stderr
// substring.
func runExpect(t *testing.T, bin string, wantCode int, wantStderr string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	if code != wantCode {
		t.Errorf("%v: exit code %d, want %d\nstderr: %s", args, code, wantCode, stderr.String())
	}
	if !strings.Contains(stderr.String(), wantStderr) {
		t.Errorf("%v: stderr %q does not mention %q", args, stderr.String(), wantStderr)
	}
}

// TestModeFlagValidation: an unknown -mode and the contradictory
// -async -mode deterministic combination must fail with the usage exit
// code 2 and name the accepted values — never silently run the default
// engine.
func TestModeFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	runExpect(t, bin, 2, `"deterministic", "async"`, "-mode", "bogus", "-list")
	runExpect(t, bin, 2, "contradictory", "-async", "-mode", "deterministic", "-list")
	// The legal spellings still work (-list exits 0 without solving).
	runExpect(t, bin, 0, "", "-mode", "async", "-list")
	runExpect(t, bin, 0, "", "-async", "-mode", "async", "-list")
}

// TestCacheDirDiskErrorWarning: a -cache-dir that cannot be used (here a
// regular file where the store expects a directory) must produce a loud
// one-line warning at exit — the file store degrades failures to misses,
// so without the warning a dead cache directory is invisible.
func TestCacheDirDiskErrorWarning(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	notADir := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(notADir, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}
	// E02 runs exact solves through the cache, so the store is hit.
	runExpect(t, bin, 0, "cache disk error", "-quick", "-cache-dir", notADir, "E02")
	// A healthy directory must stay warning-free.
	cmd := exec.Command(bin, "-quick", "-cache-dir", filepath.Join(t.TempDir(), "cache"), "E02")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("healthy cache dir run failed: %v\nstderr: %s", err, stderr.String())
	}
	if strings.Contains(stderr.String(), "warning") {
		t.Errorf("healthy cache dir produced a warning:\n%s", stderr.String())
	}
}
