// Command mppexp runs the paper-reproduction experiment suite (E01…E19)
// and prints each experiment's table, claims and shape-check verdicts.
//
// Usage:
//
//	mppexp [-quick] [-markdown] [-list] [-timeout d] [-max-states n] [-mode m] [-async] [-cache] [ids...]
//
// With no ids, every experiment runs. -markdown emits the format used in
// EXPERIMENTS.md. -timeout and -max-states bound each experiment; runs
// that hit a bound report partial results (with the solver's incumbent
// and bound gap where available) instead of failing. -mode selects the
// exact engine by name ("deterministic" or "async"); -async is the
// legacy spelling of -mode async, and combining it with an explicit
// -mode deterministic is a contradiction rejected with exit 2 — as is an
// unknown -mode value — rather than silently falling back to the
// default. Async runs prove identical optima, but states-explored
// counts become timing-dependent, so recorded tables may differ
// cosmetically between runs. -cache memoizes every exact solve behind
// its instance fingerprint for the run (experiments sharing instances
// skip re-searching; -cache-dir persists results across runs) and
// prints the hit/miss counters at exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/exp"
	"repro/internal/opt"
	"repro/internal/prof"
)

// usageErr reports a bad flag combination or value and exits with the
// conventional usage-error status 2 (distinct from exit 1, a failed
// experiment).
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mppexp: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-size instances (seconds instead of minutes)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown (EXPERIMENTS.md format)")
	csvOut := flag.Bool("csv", false, "emit bare CSV tables (for plotting pipelines)")
	list := flag.Bool("list", false, "list experiments and exit")
	jobs := flag.Int("j", 1, "run experiments concurrently on up to this many workers (output stays in ID order)")
	timeout := flag.Duration("timeout", 0, "per-experiment wall-clock deadline (0 = none); expired experiments report partial results")
	maxStates := flag.Int("max-states", 0, "cap each exact-solver call's explored states (0 = experiment defaults)")
	async := flag.Bool("async", false, `run exact solves in asynchronous fast mode (same optima, nondeterministic statistics); shorthand for -mode async`)
	modeFlag := flag.String("mode", "", `exact engine mode: "deterministic" or "async" (default deterministic)`)
	useCache := flag.Bool("cache", false, "memoize exact solves behind instance fingerprints for this run; prints hit/miss counters at exit")
	cacheDir := flag.String("cache-dir", "", "file-backed solve-cache directory (implies -cache); results persist across runs")
	flag.Parse()

	// Resolve the engine mode before anything else runs: a typo or a
	// contradictory combination must fail loudly (exit 2, the accepted
	// values named), never silently run the deterministic default.
	runAsync := *async
	if *modeFlag != "" {
		m, ok := opt.ParseMode(*modeFlag)
		if !ok {
			usageErr(`unknown -mode %q (accepted values: "deterministic", "async")`, *modeFlag)
		}
		if *async && m == opt.ModeDeterministic {
			usageErr(`contradictory flags: -async with -mode deterministic (drop one; -async means -mode async)`)
		}
		runAsync = m == opt.ModeAsync
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mppexp:", err)
		os.Exit(2)
	}
	defer stopProf()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if flag.NArg() == 0 {
		selected = exp.Registry()
	} else {
		for _, id := range flag.Args() {
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "mppexp: unknown experiment %q (try -list)\n", id)
				stopProf()
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := exp.Config{Quick: *quick, Timeout: *timeout, MaxStates: *maxStates, Async: runAsync}
	var solveCache *opt.SolveCache
	if *useCache || *cacheDir != "" {
		solveCache = opt.NewSolveCache(cache.Options{Dir: *cacheDir})
		cfg.Cache = solveCache
	}
	workers := *jobs
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	type result struct {
		tab     *exp.Table
		err     error
		elapsed time.Duration
	}
	// A fixed pool of `workers` goroutines pulling experiment indices
	// from a channel — never one goroutine per experiment. With the
	// exact solver itself fanning out Config.Workers shard workers per
	// search, an unbounded spawn here would oversubscribe the machine
	// quadratically under -timeout pressure.
	results := make([]result, len(selected))
	queue := make(chan int, len(selected))
	for i := range selected {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				start := time.Now()
				tab, err := exp.RunSafe(context.Background(), selected[i], cfg)
				results[i] = result{tab, err, time.Since(start)}
			}
		}()
	}
	wg.Wait()

	failures, partials := 0, 0
	for i, e := range selected {
		res := results[i]
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "mppexp: %s failed: %v\n", e.ID, res.err)
			failures++
			continue
		}
		if *csvOut {
			if err := exp.RenderCSV(os.Stdout, res.tab); err != nil {
				fmt.Fprintf(os.Stderr, "mppexp: csv: %v\n", err)
				failures++
			}
		} else if *markdown {
			exp.RenderMarkdown(os.Stdout, res.tab)
		} else {
			exp.Render(os.Stdout, res.tab)
			status := "complete"
			if res.tab.Partial {
				status = "PARTIAL (hit -timeout/-max-states; rows/notes above cover what was decided)"
			}
			fmt.Printf("  status: %s (%.1fs)\n\n", status, res.elapsed.Seconds())
		}
		if res.tab.Partial {
			// A bounded run that got cut short is degraded, not failed:
			// checks that did complete still count, the rest are absent.
			partials++
		} else if !res.tab.Pass() {
			failures++
		}
	}
	if solveCache != nil {
		st := solveCache.Stats()
		fmt.Fprintf(os.Stderr,
			"mppexp: cache: %d hits, %d misses, %d partial hits, %d partial misses, %d evictions, %d entries, %d bytes",
			st.Hits, st.Misses, st.PartialHits, st.PartialMisses, st.Evictions, st.Entries, st.Bytes)
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, ", %d disk hits, %d disk errors", st.DiskHits, st.DiskErrors)
		}
		fmt.Fprintln(os.Stderr)
		if st.DiskErrors > 0 {
			// The file store is best-effort and degrades failures to
			// misses, which makes an unwritable or corrupt -cache-dir
			// invisible in the counters above unless someone knows to
			// look. Say it loudly once.
			fmt.Fprintf(os.Stderr,
				"mppexp: warning: %d cache disk error(s) — file-backed cache at %q degraded to misses (directory unwritable or blobs corrupt?)\n",
				st.DiskErrors, *cacheDir)
		}
	}
	if partials > 0 {
		fmt.Fprintf(os.Stderr, "mppexp: %d experiment(s) returned partial results\n", partials)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "mppexp: %d experiment(s) failed\n", failures)
		stopProf()
		os.Exit(1)
	}
}
