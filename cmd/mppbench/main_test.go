package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cli")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runExpect(t *testing.T, bin string, wantCode int, wantStderr string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	if code != wantCode {
		t.Errorf("%v: exit code %d, want %d\nstderr: %s", args, code, wantCode, stderr.String())
	}
	if !strings.Contains(stderr.String(), wantStderr) {
		t.Errorf("%v: stderr %q does not mention %q", args, stderr.String(), wantStderr)
	}
}

// TestSweepFlagValidation: malformed -modes / -workers values must fail
// with the usage exit code 2 naming the accepted values, before any
// benchmark runs (a typo'd sweep that silently measured the default
// would masquerade as the requested one in the committed snapshot).
func TestSweepFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	runExpect(t, bin, 2, `"deterministic" or "async"`, "-modes", "wat", "-out", "/dev/null")
	runExpect(t, bin, 2, "not a positive worker count", "-workers", "0", "-out", "/dev/null")
	runExpect(t, bin, 2, "not a positive worker count", "-workers", "2,x", "-out", "/dev/null")
}
