// Command mppbench measures the engine's hot paths — the exact solvers,
// the replay engine, the schedulers — plus the full experiment suite in
// quick mode, and emits a machine-readable BENCH_<date>.json snapshot:
// one point of the repository's performance trajectory. Re-run it after
// perf work and diff the JSON against the committed snapshots.
//
// Usage:
//
//	mppbench                     # write BENCH_<today>.json
//	mppbench -out -              # JSON to stdout
//	mppbench -quick              # shorter sampling windows
//	mppbench -group solver       # only one benchmark group
//	mppbench -diff BENCH_x.json  # fail if states expanded regress >20%
//	mppbench -timeout 2s         # deadline per solver call / experiment
//	mppbench -max-states 100000  # cap the exact solvers' state budgets
//	mppbench -cpuprofile cpu.out # profile the whole run
//
// Under -timeout / -max-states, a solver benchmark whose search cannot
// finish inside the budget is skipped with the anytime bound gap it
// reached (OPT ∈ [lower, incumbent]) instead of aborting the run, and
// experiments report partial tables.
//
// Per benchmark the snapshot records ns/op, bytes/op, allocs/op and —
// for the exact solvers — states/sec (the solver-independent throughput
// number: how much of the exponential search space a second buys) plus
// states_expanded, the deterministic per-run expansion count the
// heuristic/pruning work is judged by. The exact-search benchmarks run
// once per heuristic mode (-floor / -io / -max suffixes; the unsuffixed
// name is the DefaultConfig run kept comparable with v1 snapshots).
//
// The headline exact benchmarks additionally sweep the sharded solver's
// worker count (-w1/-w2/-w4 suffixes, configurable via -workers) in each
// engine mode selected by -modes (default "deterministic,async"; async
// rows carry an -async name suffix and a "mode" field): each row records
// its workers value and the wall-clock speedup relative to the same
// mode's -w1 row. Deterministic-mode states expanded are byte-identical
// across the sweep — that engine's determinism contract, checked here —
// while async-mode counts are timing-dependent averages. A sweep wider
// than one worker count on a machine with one CPU (or GOMAXPROCS=1)
// cannot measure parallel speedup, only scheduling overhead: the run
// prints a loud warning and stamps the snapshot's "sweep_warning" field
// so the JSON can never be mistaken for a multicore result.
//
// The batch-zoo3-w1 benchmark drives three instances of mixed k through
// opt.SolveBatch, measuring the pooled-arena path end to end.
//
// The cache group (disable with -cache=false) measures the
// content-addressable solve cache's hit path: each cached-* row primes
// an opt.SolveCache with one fresh solve of the matching solver-group
// instance, then measures repeat solves — pure fingerprint-and-lookup,
// microseconds against the fresh search's milliseconds. The row's
// speedup field records fresh-solve ns over cached-solve ns. -diff
// gates these rows on ns/op (10× tolerance: hit latency is noisy, but a
// broken cache is a 100–1000× jump), not states expanded, which is
// zero by definition on a hit.
//
// The sched group schedules two ~10⁵-node instances (a 316×316 grid and
// a 500×200 wavefront, k=4) with the greedy and partitioned engines,
// recording ns/node, allocs/op and the certified optimality gap of the
// produced strategy against bounds.CertifiedLower. Row names are
// identical in quick and full mode so snapshots diff cleanly; -diff
// gates these rows on allocs/op (1.3×), the allocation audit that keeps
// per-node maps and per-round allocations out of the engine hot paths.
//
// -diff compares the freshly measured solver records against a committed
// snapshot (v1 snapshots are read compatibly: their per-op expansion
// count is recovered from states_per_sec × ns_per_op) and exits non-zero
// on regressed states expanded — >20% for deterministic rows, >50% for
// async rows (mode read from the record, or inferred from an -async name
// for hand-edited baselines), whose counts are expected to wander — the
// CI guard scripts/verify.sh runs in quick mode.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bounds"
	"repro/internal/cache"
	"repro/internal/dag"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/prof"
	"repro/internal/sched"
)

type record struct {
	Name         string  `json:"name"`
	Group        string  `json:"group"` // "solver" | "cache" | "engine" | "sched" | "experiment"
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	// StatesExpanded is the deterministic per-run expansion count of a
	// solver benchmark (schema v2; recovered from states_per_sec for v1).
	// Identical across the workers sweep — the parallel engine's
	// determinism contract, which is why -diff can compare -wN rows
	// against any baseline that has them.
	StatesExpanded int `json:"states_expanded,omitempty"`
	// Workers is the exact solver's shard-worker count for -wN sweep
	// rows (0 for rows that don't vary it).
	Workers int `json:"workers,omitempty"`
	// Mode is the engine mode for sweep rows that vary it: "async" on
	// the asynchronous-engine rows, empty for deterministic rows (so v2
	// baselines written before the field existed diff cleanly).
	Mode string `json:"mode,omitempty"`
	// Speedup is wall-clock ns/op of the workers=1 row of the same
	// benchmark divided by this row's — recorded on sweep rows when the
	// same run measured the workers=1 baseline.
	Speedup float64 `json:"speedup,omitempty"`
	// NsPerNode is NsPerOp divided by the instance's node count —
	// recorded on sched-group rows, whose acceptance bar is per-node
	// scheduling throughput, not absolute wall time.
	NsPerNode float64 `json:"ns_per_node,omitempty"`
	// Gap is the certified optimality gap (cost − lower)/lower of the
	// strategy the benchmarked scheduler produces, against
	// bounds.CertifiedLower — recorded on sched-group rows.
	Gap float64 `json:"gap,omitempty"`
}

type snapshot struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GitCommit  string `json:"git_commit,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Quick      bool   `json:"quick"`
	// SweepWarning is stamped when a multi-width workers sweep ran on a
	// single-CPU (or GOMAXPROCS=1) machine: the -wN rows then measure
	// sharding overhead, not parallel speedup, and must not be read as a
	// multicore scaling result.
	SweepWarning string   `json:"sweep_warning,omitempty"`
	Benchmarks   []record `json:"benchmarks"`
}

// measure runs fn repeatedly for at least minTime (at least once) and
// reports per-iteration wall time and allocation statistics from the
// runtime's allocation counters. fn returns the number of solver states
// it expanded (0 when states/sec is meaningless for the workload).
func measure(name, group string, minTime time.Duration, fn func() (states int, err error)) (record, error) {
	if _, err := fn(); err != nil { // warm-up, and fail fast
		return record{}, fmt.Errorf("%s: %w", name, err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	iters, states := 0, 0
	start := time.Now()
	var elapsed time.Duration
	for {
		st, err := fn()
		if err != nil {
			return record{}, fmt.Errorf("%s: %w", name, err)
		}
		states += st
		iters++
		elapsed = time.Since(start)
		if elapsed >= minTime {
			break
		}
	}
	runtime.ReadMemStats(&after)
	rec := record{
		Name:        name,
		Group:       group,
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
	}
	if states > 0 && elapsed > 0 {
		rec.StatesPerSec = float64(states) / elapsed.Seconds()
		// The searches are deterministic, so the per-iteration count is
		// exact, not an average.
		rec.StatesExpanded = states / iters
	}
	return rec, nil
}

func main() {
	out := flag.String("out", "", `output file ("-" = stdout; default BENCH_<date>.json)`)
	quick := flag.Bool("quick", false, "shorter sampling windows (noisier, much faster)")
	groupSel := flag.String("group", "", `run only one benchmark group: "solver", "cache", "engine", "sched" or "experiment" (default all)`)
	diff := flag.String("diff", "", "committed snapshot to compare against; exit 1 if any shared solver benchmark expands >20% more states (cache rows: >10x ns/op; sched rows: >1.3x allocs/op)")
	workersFlag := flag.String("workers", "1,2,4", `comma-separated worker counts for the exact-search workers sweep ("" disables the -wN rows)`)
	modesFlag := flag.String("modes", "deterministic,async", `comma-separated engine modes for the workers sweep ("deterministic", "async")`)
	cacheBench := flag.Bool("cache", true, "run the solve-cache hit-latency benchmark rows (the cache group)")
	timeout := flag.Duration("timeout", 0, "deadline per solver call and per experiment (0 = none); searches that hit it are skipped with their bound gap")
	maxStates := flag.Int("max-states", 0, "cap each exact solver call's explored states (0 = benchmark defaults)")
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	minTime := 300 * time.Millisecond
	if *quick {
		minTime = 50 * time.Millisecond
	}
	wantGroup := func(g string) bool { return *groupSel == "" || *groupSel == g }

	snap := snapshot{
		Schema:     "mpp-bench/v2",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GitCommit:  gitCommit(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	states := func(def int) int {
		if *maxStates > 0 {
			return *maxStates
		}
		return def
	}
	solverCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}
	add := func(rec record, err error) {
		if err != nil {
			if opt.IsPartial(err) {
				// An undersized budget is a property of this run's flags,
				// not a failure of the engine: record the skip and move on.
				fmt.Fprintf(os.Stderr, "skipped: %v\n", err)
				return
			}
			fatal(err)
		}
		snap.Benchmarks = append(snap.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "%-36s %12d ns/op %10d B/op %8d allocs/op",
			rec.Group+"/"+rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
		if rec.StatesPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %12.0f states/s %8d states", rec.StatesPerSec, rec.StatesExpanded)
		}
		if rec.Speedup > 0 {
			fmt.Fprintf(os.Stderr, " %5.2fx", rec.Speedup)
		}
		if rec.NsPerNode > 0 {
			fmt.Fprintf(os.Stderr, " %8.0f ns/node gap=%.1f%%", rec.NsPerNode, 100*rec.Gap)
		}
		fmt.Fprintln(os.Stderr)
	}
	// exactModes benchmarks one instance under each heuristic mode with
	// pruning off (the -floor run reproduces the pre-stack search exactly)
	// plus the unsuffixed DefaultConfig run (max heuristic + dominance +
	// lazy deletion), asserting up front that every configuration lands on
	// the same optimum. The floor-vs-default states ratio is the number the
	// acceptance bar (≥3x fewer expansions) is read from.
	exactModes := func(name string, in *pebble.Instance, budget int) {
		configs := []struct {
			suffix string
			cfg    opt.Config
		}{
			{"", opt.DefaultConfig(0)},
			{"-floor", opt.Config{Heuristic: opt.HeuristicFloor}},
			{"-io", opt.Config{Heuristic: opt.HeuristicIO}},
			{"-max", opt.Config{Heuristic: opt.HeuristicMax}},
		}
		wantCost := int64(-1)
		for _, c := range configs {
			cfg := c.cfg
			cfg.MaxStates = states(budget)
			bname := name + c.suffix
			ctx, cancel := solverCtx()
			res, err := opt.ExactWith(ctx, in, cfg)
			cancel()
			if err == nil {
				if wantCost == -1 {
					wantCost = res.Cost
				} else if res.Cost != wantCost {
					fatal(fmt.Errorf("%s: optimum %d differs across heuristic modes (want %d)", bname, res.Cost, wantCost))
				}
			}
			add(measure(bname, "solver", minTime, func() (int, error) {
				ctx, cancel := solverCtx()
				defer cancel()
				res, err := opt.ExactWith(ctx, in, cfg)
				if err != nil {
					return 0, annotateGap(res, err)
				}
				return res.States, nil
			}))
		}
	}

	// exactWorkers sweeps the sharded solver's worker count on one
	// instance, once per -modes engine mode. Each mode's -w1 row is that
	// mode's speedup baseline. Deterministic-mode States must come out
	// byte-identical at every width (checked here, not just in the
	// tests); async rows are exempt — their expansion counts are
	// timing-dependent by design, which is why they carry a "mode" stamp
	// for -diff's looser gate.
	sweep, err := parseWorkers(*workersFlag)
	if err != nil {
		usageErr(err)
	}
	modes, err := parseModes(*modesFlag)
	if err != nil {
		usageErr(err)
	}
	if len(sweep) > 1 && (snap.NumCPU == 1 || snap.GOMAXPROCS == 1) {
		snap.SweepWarning = fmt.Sprintf(
			"workers sweep ran with num_cpu=%d gomaxprocs=%d: multi-worker rows measure sharding overhead on one core, NOT parallel speedup",
			snap.NumCPU, snap.GOMAXPROCS)
		banner := strings.Repeat("=", 74)
		fmt.Fprintf(os.Stderr, "%s\nmppbench: WARNING: %s\n%s\n", banner, snap.SweepWarning, banner)
	}
	exactWorkers := func(name string, in *pebble.Instance, budget int) {
		for _, mode := range modes {
			mode := mode
			suffix := ""
			if mode != opt.ModeDeterministic {
				suffix = "-" + mode.String()
			}
			var baseNs, wantStates int64 = 0, -1
			for _, wk := range sweep {
				wk := wk
				cfg := opt.DefaultConfig(states(budget))
				cfg.Workers = wk
				cfg.Mode = mode
				bname := fmt.Sprintf("%s%s-w%d", name, suffix, wk)
				rec, err := measure(bname, "solver", minTime, func() (int, error) {
					ctx, cancel := solverCtx()
					defer cancel()
					res, err := opt.ExactWith(ctx, in, cfg)
					if err != nil {
						return 0, annotateGap(res, err)
					}
					return res.States, nil
				})
				if err == nil {
					if mode == opt.ModeDeterministic {
						if wantStates == -1 {
							wantStates = int64(rec.StatesExpanded)
						} else if int64(rec.StatesExpanded) != wantStates {
							fatal(fmt.Errorf("%s: %d states expanded, want %d — workers sweep broke determinism", bname, rec.StatesExpanded, wantStates))
						}
					} else {
						rec.Mode = mode.String()
					}
					rec.Workers = wk
					if wk == 1 {
						baseNs = rec.NsPerOp
					}
					if baseNs > 0 && rec.NsPerOp > 0 {
						rec.Speedup = math.Round(100*float64(baseNs)/float64(rec.NsPerOp)) / 100
					}
				}
				add(rec, err)
			}
		}
	}

	// --- solver group: the exact-search hot paths ---------------------
	if wantGroup("solver") {
		gridK1 := pebble.MustInstance(gen.Grid2D(3, 3), pebble.MPP(1, 4, 2))
		add(measure("exact-grid3x3-k1", "solver", minTime, func() (int, error) {
			ctx, cancel := solverCtx()
			defer cancel()
			res, err := opt.ExactCtx(ctx, gridK1, states(10_000_000))
			if err != nil {
				return 0, annotateGap(res, err)
			}
			return res.States, nil
		}))
		gridK2 := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
		exactModes("exact-grid2x3-k2", gridK2, 10_000_000)
		exactWorkers("exact-grid2x3-k2", gridK2, 10_000_000)
		// A g ≥ 4 gadget where I/O dominates: the zipper forces the single
		// processor to juggle both source groups, so the I/O-aware modes
		// prune far ahead of the compute floor.
		zipg, _ := gen.Zipper(2, 3, 0)
		zipIn := pebble.MustInstance(zipg, pebble.MPP(1, 4, 5))
		exactModes("exact-zipper2x3-k1-g5", zipIn, 10_000_000)
		exactWorkers("exact-zipper2x3-k1-g5", zipIn, 10_000_000)
		// The pooled batch path: three instances of mixed k (the packed
		// key width changes between them, the arena-reuse guard's hard
		// case) through one SolveBatch call. Deterministic at one worker,
		// so the summed expansion count is -diff-gated like any solver row.
		batchIns := []*pebble.Instance{gridK2, zipIn, gridK1}
		add(measure("batch-zoo3-w1", "solver", minTime, func() (int, error) {
			ctx, cancel := solverCtx()
			defer cancel()
			cfg := opt.DefaultConfig(states(10_000_000))
			cfg.Workers = 1
			total := 0
			for _, br := range opt.SolveBatch(ctx, batchIns, cfg) {
				if br.Err != nil {
					return 0, annotateGap(br.Result, br.Err)
				}
				total += br.Result.States
			}
			return total, nil
		}))
		add(measure("exact-witness-grid2x3-k2", "solver", minTime, func() (int, error) {
			ctx, cancel := solverCtx()
			defer cancel()
			res, err := opt.ExactWithStrategyCtx(ctx, gridK2, states(10_000_000))
			if err != nil {
				return 0, annotateGap(res, err)
			}
			return res.States, nil
		}))
		pyr := gen.Pyramid(6)
		add(measure("zeroio-pyramid6-r8", "solver", minTime, func() (int, error) {
			ctx, cancel := solverCtx()
			defer cancel()
			res, err := opt.ZeroIOCtx(ctx, pyr, 8, states(10_000_000))
			if err != nil {
				return 0, err
			}
			return res.States, nil
		}))
		// The Theorem 2 reduction on C4 (no 3-clique): the search must
		// exhaust, which is the expensive direction E12/E13 depend on.
		c4 := hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
		red, err := hardness.BuildCliqueReduction(c4, 3)
		if err != nil {
			fatal(err)
		}
		add(measure("zeroiobig-clique-C4-q3", "solver", minTime, func() (int, error) {
			ctx, cancel := solverCtx()
			defer cancel()
			res, err := opt.ZeroIOBigCtx(ctx, red.Graph, red.R, states(10_000_000))
			if err != nil {
				return 0, err
			}
			if res.Feasible {
				return 0, fmt.Errorf("C4 reduction unexpectedly feasible")
			}
			return res.States, nil
		}))
	}

	// --- cache group: the content-addressable solve cache's hit path --
	// Each row primes a fresh opt.SolveCache with one solve, then
	// measures repeat solves of the same instance: a pure
	// fingerprint-hash + LRU-lookup + clone, no search. The speedup
	// field records the primed (fresh, uncached) solve's wall time over
	// the hit latency — the repeat-solve amortization the cache buys.
	if wantGroup("cache") && *cacheBench {
		cachedHit := func(name string, in *pebble.Instance, budget int) {
			sc := opt.NewSolveCache(cache.Options{})
			cfg := opt.DefaultConfig(states(budget))
			cfg.Workers = 1
			solveOnce := func() (*opt.Result, error) {
				ctx, cancel := solverCtx()
				defer cancel()
				return opt.SolveCached(ctx, in, cfg, sc)
			}
			primeStart := time.Now()
			primed, err := solveOnce()
			freshNs := time.Since(primeStart).Nanoseconds()
			if err != nil {
				add(record{}, annotateGap(primed, err))
				return
			}
			rec, err := measure(name, "cache", minTime, func() (int, error) {
				res, err := solveOnce()
				if err != nil {
					return 0, err
				}
				if res.Cost != primed.Cost {
					return 0, fmt.Errorf("%s: cache hit cost %d != fresh cost %d", name, res.Cost, primed.Cost)
				}
				return 0, nil
			})
			if err == nil && rec.NsPerOp > 0 {
				rec.Speedup = math.Round(100*float64(freshNs)/float64(rec.NsPerOp)) / 100
			}
			add(rec, err)
		}
		gridK2 := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
		cachedHit("cached-exact-grid2x3-k2", gridK2, 10_000_000)
		zipg, _ := gen.Zipper(2, 3, 0)
		zipIn := pebble.MustInstance(zipg, pebble.MPP(1, 4, 5))
		cachedHit("cached-exact-zipper2x3-k1-g5", zipIn, 10_000_000)
	}

	// --- engine group: replay and scheduling --------------------------
	if wantGroup("engine") {
		zg, ids := gen.Zipper(8, 200, 0)
		zin := pebble.MustInstance(zg, pebble.MPP(1, 2*8+2, 4))
		bld := pebble.NewBuilder(zin)
		for _, u := range append(append([]dag.NodeID{}, ids.S1...), ids.S2...) {
			bld.Compute(0, u)
		}
		for i, v := range ids.Chain {
			bld.Compute(0, v)
			if i > 0 {
				bld.DropRed(0, ids.Chain[i-1])
			}
		}
		zstrat := bld.Strategy()
		add(measure("replay-zipper8x200", "engine", minTime, func() (int, error) {
			_, err := pebble.Replay(zin, zstrat)
			return 0, err
		}))
		rg := gen.RandomDAG(256, 0.05, 4, 7)
		rin := pebble.MustInstance(rg, pebble.MPP(4, rg.MaxInDegree()+3, 3))
		add(measure("greedy-random-n256-k4", "engine", minTime, func() (int, error) {
			_, err := sched.Run(sched.Greedy{}, rin)
			return 0, err
		}))
	}

	// --- sched group: heuristic schedulers at 10⁵-node scale ----------
	// Each row schedules a ~100k-node instance (identical rows in quick
	// and full mode, only the sampling window differs) and records
	// ns/node plus the certified optimality gap of the strategy it
	// emits. The allocs/op number is the allocation audit: the engines
	// are O(n)-allocation by design, and -diff gates sched rows on it.
	if wantGroup("sched") {
		schedRow := func(name string, g *dag.Graph, s sched.Scheduler) {
			in := pebble.MustInstance(g, pebble.MPP(4, g.MaxInDegree()+2, 3))
			lower, _ := bounds.CertifiedLower(in)
			strat, err := s.Schedule(in)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			rep, err := pebble.Replay(in, strat)
			if err != nil {
				fatal(fmt.Errorf("%s: invalid strategy: %w", name, err))
			}
			rec, err := measure(name, "sched", minTime, func() (int, error) {
				_, err := s.Schedule(in)
				return 0, err
			})
			if err == nil {
				rec.NsPerNode = math.Round(100*float64(rec.NsPerOp)/float64(g.N())) / 100
				rec.Gap = math.Round(1e4*bounds.Gap(lower, rep.Cost)) / 1e4
			}
			add(rec, err)
		}
		levels := sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"}
		grid := gen.Grid2D(316, 316)    // 99 856 nodes
		wave := gen.Wavefront(500, 200) // 100 000 nodes
		schedRow("sched-greedy-grid100k-k4", grid, sched.Greedy{})
		schedRow("sched-part-grid100k-k4", grid, levels)
		schedRow("sched-greedy-wave100k-k4", wave, sched.Greedy{})
		schedRow("sched-part-wave100k-k4", wave, levels)
	}

	// --- experiment group: the full suite, quick sizing, one pass -----
	if wantGroup("experiment") {
		for _, e := range exp.Registry() {
			e := e
			add(measure(e.ID+"-quick", "experiment", 0, func() (int, error) {
				cfg := exp.Config{Quick: true, Timeout: *timeout, MaxStates: *maxStates}
				tab, err := exp.RunSafe(context.Background(), e, cfg)
				if err != nil {
					return 0, err
				}
				if tab.Partial {
					fmt.Fprintf(os.Stderr, "note: %s partial under -timeout/-max-states\n", e.ID)
					return 0, nil
				}
				if !tab.Pass() {
					return 0, fmt.Errorf("%s shape checks failed", e.ID)
				}
				return 0, nil
			}))
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mppbench: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	}

	// Diff after writing: a regression still leaves the fresh snapshot on
	// disk for inspection, but fails the run.
	if *diff != "" {
		if err := diffStates(*diff, snap.Benchmarks); err != nil {
			fatal(err)
		}
	}
}

// diffStates loads a committed snapshot and compares states expanded on
// the solver benchmarks both runs share, gated per engine mode: a
// deterministic row fails above 1.2× the baseline — those counts are
// exact, so the tolerance only absorbs deliberate small trades (e.g. a
// heuristic tweak), not measurement noise — while an async row (mode
// field, or an "-async" name substring for baselines written before the
// field) gets 1.5×, since its counts are timing-dependent averages that
// legitimately wander between runs. v1 snapshots carry no
// states_expanded field; their per-op count is recovered exactly from
// states_per_sec × ns_per_op (both derive from the same states/iters).
func diffStates(path string, fresh []record) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-diff: %w", err)
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-diff %s: %w", path, err)
	}
	if !strings.HasPrefix(base.Schema, "mpp-bench/") {
		return fmt.Errorf("-diff %s: unrecognized schema %q", path, base.Schema)
	}
	// Every shared solver name enters the baseline map, including rows
	// whose recovered count is zero: a zero or missing value must surface
	// as an explicit "n/a" below, never as a silent skip or an Inf/NaN
	// ratio feeding the exit decision.
	baseline := make(map[string]int)
	baselineNs := make(map[string]int64)
	baselineAllocs := make(map[string]int64)
	for _, r := range base.Benchmarks {
		switch r.Group {
		case "solver":
			st := r.StatesExpanded
			if st == 0 && r.StatesPerSec > 0 && r.NsPerOp > 0 {
				st = int(math.Round(r.StatesPerSec * float64(r.NsPerOp) / 1e9))
			}
			baseline[r.Name] = st
		case "cache":
			baselineNs[r.Name] = r.NsPerOp
		case "sched":
			baselineAllocs[r.Name] = r.AllocsPerOp
		}
	}
	regressed := 0
	compared := 0
	// Cache-group rows have no expansion count (a hit expands nothing),
	// so they are gated on wall latency with a deliberately loose 10×
	// tolerance: hit latency wobbles with the machine, but the failure
	// this guards against — the hit path silently degrading into a
	// re-search — is a 100–1000× jump.
	for _, r := range fresh {
		if r.Group == "cache" {
			want, ok := baselineNs[r.Name]
			if !ok {
				continue
			}
			if want <= 0 || r.NsPerOp <= 0 {
				fmt.Fprintf(os.Stderr, "mppbench: n/a %s: ns/op %d now vs %d in %s (ratio undefined, not gated)\n",
					r.Name, r.NsPerOp, want, path)
				continue
			}
			compared++
			if float64(r.NsPerOp) > 10*float64(want) {
				regressed++
				fmt.Fprintf(os.Stderr, "mppbench: REGRESSION %s [cache, gate 10x]: %d ns/op vs %d in %s (%.1fx)\n",
					r.Name, r.NsPerOp, want, path, float64(r.NsPerOp)/float64(want))
			}
			continue
		}
		// Sched-group rows are the allocation audit: wall time on a loaded
		// machine wobbles, but the engines' allocation counts are
		// deterministic for a fixed instance, so allocs/op is gated tightly
		// (1.3×: absorbs a deliberate small trade, catches a map or
		// per-round slice creeping back into a hot path).
		if r.Group == "sched" {
			want, ok := baselineAllocs[r.Name]
			if !ok {
				continue
			}
			if want <= 0 || r.AllocsPerOp <= 0 {
				fmt.Fprintf(os.Stderr, "mppbench: n/a %s: allocs/op %d now vs %d in %s (ratio undefined, not gated)\n",
					r.Name, r.AllocsPerOp, want, path)
				continue
			}
			compared++
			if float64(r.AllocsPerOp) > 1.3*float64(want) {
				regressed++
				fmt.Fprintf(os.Stderr, "mppbench: REGRESSION %s [sched, gate 30%%]: %d allocs/op vs %d in %s (+%.0f%%)\n",
					r.Name, r.AllocsPerOp, want, path, 100*(float64(r.AllocsPerOp)/float64(want)-1))
			}
			continue
		}
		if r.Group != "solver" {
			continue
		}
		want, ok := baseline[r.Name]
		if !ok {
			continue // new benchmark, nothing to compare against
		}
		if want <= 0 || r.StatesExpanded <= 0 {
			fmt.Fprintf(os.Stderr, "mppbench: n/a %s: states expanded %s now vs %s in %s (ratio undefined, not gated)\n",
				r.Name, orMissing(r.StatesExpanded), orMissing(want), path)
			continue
		}
		compared++
		tol, mode := 1.2, "deterministic"
		if recMode(r) == opt.ModeAsync.String() {
			tol, mode = 1.5, opt.ModeAsync.String()
		}
		if float64(r.StatesExpanded) > tol*float64(want) {
			regressed++
			fmt.Fprintf(os.Stderr, "mppbench: REGRESSION %s [%s, gate %.0f%%]: %d states expanded vs %d in %s (+%.0f%%)\n",
				r.Name, mode, 100*(tol-1), r.StatesExpanded, want, path, 100*(float64(r.StatesExpanded)/float64(want)-1))
		}
	}
	fmt.Fprintf(os.Stderr, "mppbench: diff vs %s (%s): %d solver/cache/sched benchmarks compared, %d regressed\n",
		path, base.Schema, compared, regressed)
	if regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past their gate vs %s", regressed, path)
	}
	return nil
}

// orMissing renders a states-expanded count for the -diff n/a report:
// zero means the row never recorded one (engine-group style row or a
// run skipped under -timeout), which must read as missing, not "0".
func orMissing(n int) string {
	if n <= 0 {
		return "n/a"
	}
	return strconv.Itoa(n)
}

// recMode resolves a record's engine mode for the per-mode -diff gate:
// the explicit mode field when present, else inferred from the "-async"
// name suffix the sweep stamps (covers baselines written before the
// field existed); everything else is deterministic.
func recMode(r record) string {
	if r.Mode != "" {
		return r.Mode
	}
	if strings.Contains(r.Name, "-"+opt.ModeAsync.String()) {
		return opt.ModeAsync.String()
	}
	return opt.ModeDeterministic.String()
}

// parseModes parses the -modes flag: a comma-separated list of engine
// mode names ("deterministic", "async"), or the empty string to run the
// sweep in deterministic mode only.
func parseModes(s string) ([]opt.Mode, error) {
	if s == "" {
		return []opt.Mode{opt.ModeDeterministic}, nil
	}
	var out []opt.Mode
	for _, part := range strings.Split(s, ",") {
		m, ok := opt.ParseMode(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf(`-modes: unknown engine mode %q (want "deterministic" or "async")`, part)
		}
		out = append(out, m)
	}
	return out, nil
}

// parseWorkers parses the -workers flag: a comma-separated list of
// positive worker counts, or the empty string to disable the sweep.
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-workers: %q is not a positive worker count", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// gitCommit stamps the snapshot with the current HEAD, best-effort: a
// missing git binary or repository just leaves the field empty.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mppbench:", err)
	os.Exit(1)
}

// usageErr reports an invalid flag value (bad -modes/-workers entry)
// and exits with the conventional usage-error status 2, distinct from
// exit 1 (a benchmark or regression-gate failure). The error message
// names the accepted values, so a typo fails loudly instead of being
// mistaken for the deterministic default.
func usageErr(err error) {
	fmt.Fprintln(os.Stderr, "mppbench:", err)
	os.Exit(2)
}

// annotateGap decorates an exact solver's early-stop error with the
// anytime bracket it reached, so a skipped benchmark still reports how
// close the search got (res may be nil on non-partial failures).
func annotateGap(res *opt.Result, err error) error {
	if res == nil || !opt.IsPartial(err) {
		return err
	}
	return fmt.Errorf("%w; %s", err, bounds.FormatGap(res.LowerBound, res.Incumbent))
}
