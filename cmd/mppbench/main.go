// Command mppbench measures the engine's hot paths — the exact solvers,
// the replay engine, the schedulers — plus the full experiment suite in
// quick mode, and emits a machine-readable BENCH_<date>.json snapshot:
// one point of the repository's performance trajectory. Re-run it after
// perf work and diff the JSON against the committed snapshots.
//
// Usage:
//
//	mppbench                     # write BENCH_<today>.json
//	mppbench -out -              # JSON to stdout
//	mppbench -quick              # shorter sampling windows
//	mppbench -timeout 2s         # deadline per solver call / experiment
//	mppbench -max-states 100000  # cap the exact solvers' state budgets
//	mppbench -cpuprofile cpu.out # profile the whole run
//
// Under -timeout / -max-states, a solver benchmark whose search cannot
// finish inside the budget is skipped with the anytime bound gap it
// reached (OPT ∈ [lower, incumbent]) instead of aborting the run, and
// experiments report partial tables.
//
// Per benchmark the snapshot records ns/op, bytes/op, allocs/op and —
// for the exact solvers — states/sec, the solver-independent throughput
// number the experiments care about (how much of the exponential search
// space a second buys).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/prof"
	"repro/internal/sched"
)

type record struct {
	Name         string  `json:"name"`
	Group        string  `json:"group"` // "solver" | "engine" | "experiment"
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
}

type snapshot struct {
	Schema     string   `json:"schema"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	Quick      bool     `json:"quick"`
	Benchmarks []record `json:"benchmarks"`
}

// measure runs fn repeatedly for at least minTime (at least once) and
// reports per-iteration wall time and allocation statistics from the
// runtime's allocation counters. fn returns the number of solver states
// it expanded (0 when states/sec is meaningless for the workload).
func measure(name, group string, minTime time.Duration, fn func() (states int, err error)) (record, error) {
	if _, err := fn(); err != nil { // warm-up, and fail fast
		return record{}, fmt.Errorf("%s: %w", name, err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	iters, states := 0, 0
	start := time.Now()
	var elapsed time.Duration
	for {
		st, err := fn()
		if err != nil {
			return record{}, fmt.Errorf("%s: %w", name, err)
		}
		states += st
		iters++
		elapsed = time.Since(start)
		if elapsed >= minTime {
			break
		}
	}
	runtime.ReadMemStats(&after)
	rec := record{
		Name:        name,
		Group:       group,
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
	}
	if states > 0 && elapsed > 0 {
		rec.StatesPerSec = float64(states) / elapsed.Seconds()
	}
	return rec, nil
}

func main() {
	out := flag.String("out", "", `output file ("-" = stdout; default BENCH_<date>.json)`)
	quick := flag.Bool("quick", false, "shorter sampling windows (noisier, much faster)")
	timeout := flag.Duration("timeout", 0, "deadline per solver call and per experiment (0 = none); searches that hit it are skipped with their bound gap")
	maxStates := flag.Int("max-states", 0, "cap each exact solver call's explored states (0 = benchmark defaults)")
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	minTime := 300 * time.Millisecond
	if *quick {
		minTime = 50 * time.Millisecond
	}

	snap := snapshot{
		Schema:    "mpp-bench/v1",
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
	}
	states := func(def int) int {
		if *maxStates > 0 {
			return *maxStates
		}
		return def
	}
	solverCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}
	add := func(rec record, err error) {
		if err != nil {
			if opt.IsPartial(err) {
				// An undersized budget is a property of this run's flags,
				// not a failure of the engine: record the skip and move on.
				fmt.Fprintf(os.Stderr, "skipped: %v\n", err)
				return
			}
			fatal(err)
		}
		snap.Benchmarks = append(snap.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "%-36s %12d ns/op %10d B/op %8d allocs/op",
			rec.Group+"/"+rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
		if rec.StatesPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %12.0f states/s", rec.StatesPerSec)
		}
		fmt.Fprintln(os.Stderr)
	}

	// --- solver group: the exact-search hot paths ---------------------
	gridK1 := pebble.MustInstance(gen.Grid2D(3, 3), pebble.MPP(1, 4, 2))
	add(measure("exact-grid3x3-k1", "solver", minTime, func() (int, error) {
		ctx, cancel := solverCtx()
		defer cancel()
		res, err := opt.ExactCtx(ctx, gridK1, states(10_000_000))
		if err != nil {
			return 0, annotateGap(res, err)
		}
		return res.States, nil
	}))
	gridK2 := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
	add(measure("exact-grid2x3-k2", "solver", minTime, func() (int, error) {
		ctx, cancel := solverCtx()
		defer cancel()
		res, err := opt.ExactCtx(ctx, gridK2, states(10_000_000))
		if err != nil {
			return 0, annotateGap(res, err)
		}
		return res.States, nil
	}))
	add(measure("exact-witness-grid2x3-k2", "solver", minTime, func() (int, error) {
		ctx, cancel := solverCtx()
		defer cancel()
		res, err := opt.ExactWithStrategyCtx(ctx, gridK2, states(10_000_000))
		if err != nil {
			return 0, annotateGap(res, err)
		}
		return res.States, nil
	}))
	pyr := gen.Pyramid(6)
	add(measure("zeroio-pyramid6-r8", "solver", minTime, func() (int, error) {
		ctx, cancel := solverCtx()
		defer cancel()
		res, err := opt.ZeroIOCtx(ctx, pyr, 8, states(10_000_000))
		if err != nil {
			return 0, err
		}
		return res.States, nil
	}))
	// The Theorem 2 reduction on C4 (no 3-clique): the search must
	// exhaust, which is the expensive direction E12/E13 depend on.
	c4 := hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	red, err := hardness.BuildCliqueReduction(c4, 3)
	if err != nil {
		fatal(err)
	}
	add(measure("zeroiobig-clique-C4-q3", "solver", minTime, func() (int, error) {
		ctx, cancel := solverCtx()
		defer cancel()
		res, err := opt.ZeroIOBigCtx(ctx, red.Graph, red.R, states(10_000_000))
		if err != nil {
			return 0, err
		}
		if res.Feasible {
			return 0, fmt.Errorf("C4 reduction unexpectedly feasible")
		}
		return res.States, nil
	}))

	// --- engine group: replay and scheduling --------------------------
	zg, ids := gen.Zipper(8, 200, 0)
	zin := pebble.MustInstance(zg, pebble.MPP(1, 2*8+2, 4))
	bld := pebble.NewBuilder(zin)
	for _, u := range append(append([]dag.NodeID{}, ids.S1...), ids.S2...) {
		bld.Compute(0, u)
	}
	for i, v := range ids.Chain {
		bld.Compute(0, v)
		if i > 0 {
			bld.DropRed(0, ids.Chain[i-1])
		}
	}
	zstrat := bld.Strategy()
	add(measure("replay-zipper8x200", "engine", minTime, func() (int, error) {
		_, err := pebble.Replay(zin, zstrat)
		return 0, err
	}))
	rg := gen.RandomDAG(256, 0.05, 4, 7)
	rin := pebble.MustInstance(rg, pebble.MPP(4, rg.MaxInDegree()+3, 3))
	add(measure("greedy-random-n256-k4", "engine", minTime, func() (int, error) {
		_, err := sched.Run(sched.Greedy{}, rin)
		return 0, err
	}))

	// --- experiment group: the full suite, quick sizing, one pass -----
	for _, e := range exp.Registry() {
		e := e
		add(measure(e.ID+"-quick", "experiment", 0, func() (int, error) {
			cfg := exp.Config{Quick: true, Timeout: *timeout, MaxStates: *maxStates}
			tab, err := exp.RunSafe(context.Background(), e, cfg)
			if err != nil {
				return 0, err
			}
			if tab.Partial {
				fmt.Fprintf(os.Stderr, "note: %s partial under -timeout/-max-states\n", e.ID)
				return 0, nil
			}
			if !tab.Pass() {
				return 0, fmt.Errorf("%s shape checks failed", e.ID)
			}
			return 0, nil
		}))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mppbench: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mppbench:", err)
	os.Exit(1)
}

// annotateGap decorates an exact solver's early-stop error with the
// anytime bracket it reached, so a skipped benchmark still reports how
// close the search got (res may be nil on non-partial failures).
func annotateGap(res *opt.Result, err error) error {
	if res == nil || !opt.IsPartial(err) {
		return err
	}
	return fmt.Errorf("%w; %s", err, bounds.FormatGap(res.LowerBound, res.Incumbent))
}
