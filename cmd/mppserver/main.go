// Command mppserver runs the solver-as-a-service daemon: the HTTP/JSON
// job API from internal/server over a bounded worker pool, every solve
// memoized through the shared content-addressable cache.
//
// Usage:
//
//	mppserver [-addr host:port] [-workers n] [-queue n] [-cache-dir d] [-cache-entries n]
//
// The first stdout line is "mppserver: listening on http://HOST:PORT"
// (with the resolved port when -addr asks for :0), so scripts and the
// e2e harness can discover the endpoint. SIGINT/SIGTERM shut down
// gracefully: the listener stops, in-flight solves are canceled (each
// job keeps its typed partial result), and the workers are joined.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/opt"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "queued jobs beyond the ones being solved; submissions past the bound get 429")
	cacheDir := flag.String("cache-dir", "", "file-backed solve-cache directory (persists results across restarts)")
	cacheEntries := flag.Int("cache-entries", 0, "max in-memory solve-cache entries (0 = cache default)")
	flag.Parse()

	sc := opt.NewSolveCache(cache.Options{MaxEntries: *cacheEntries, Dir: *cacheDir})
	srv := server.New(server.Options{
		Cache:      sc,
		Workers:    *workers,
		QueueDepth: *queue,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mppserver:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	fmt.Printf("mppserver: listening on http://%s\n", ln.Addr())

	select {
	case <-ctx.Done():
		// Graceful stop: close the listener and let in-flight requests
		// finish briefly; the canceled base ctx has already told every
		// running solve to stop with its typed partial result.
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = hs.Shutdown(shctx)
		cancel()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mppserver:", err)
			os.Exit(1)
		}
	}
	srv.Wait()
	fmt.Println("mppserver: stopped")
}
