// Package repro is a from-scratch Go implementation of the multiprocessor
// red-blue pebble game (MPP) of Böhnlein, Papp and Yzelman, "Red-Blue
// Pebbling with Multiple Processors: Time, Communication and Memory
// Trade-offs" (SPAA 2024), together with every substrate the paper's
// results rest on: the single-processor game (SPP) and its one-shot
// variant, DAG generators for all proof gadgets and classic workloads,
// schedulers (the Lemma 3/4 greedy class, an owner-computes partitioned
// scheduler with exact Belady eviction, the Lemma 1 baseline), exact
// optimum solvers for small instances, the analytic bound library, the
// BSP DAG-scheduling equivalence, the Theorem 2 clique reduction, and an
// experiment harness regenerating every figure and quantitative lemma.
//
// This root package is a thin facade re-exporting the types most
// programs need; the implementation lives under internal/ (one package
// per subsystem — see DESIGN.md for the inventory):
//
//	dag      computational DAGs
//	gen      DAG families and proof gadgets
//	pebble   the pebble game itself: instances, moves, replay/validation
//	sched    strategy-producing schedulers
//	opt      exact solvers (configuration-space search, zero-I/O decision)
//	bounds   analytic lower/upper bounds
//	proofs   the explicit strategies the paper's proofs construct
//	bsp      BSP DAG scheduling (the r = ∞ specialization)
//	hardness NP-hardness reduction machinery (Theorem 2, Lemma 11)
//	exp      experiment harness (E01…E19)
//
// Quick start:
//
//	g, _ := gen.Zipper(8, 100, 0)
//	in := pebble.MustInstance(g, pebble.MPP(2, 10, 4))
//	rep, err := sched.Run(sched.Greedy{}, in)
//	fmt.Println(rep.Cost, rep.IOActions)
package repro

import (
	"context"

	"repro/internal/cache"
	"repro/internal/dag"
	"repro/internal/exp"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// Re-exported core types, so small programs can use the facade alone.
type (
	// Graph is a computational DAG (see internal/dag).
	Graph = dag.Graph
	// NodeID identifies a DAG node.
	NodeID = dag.NodeID
	// Params are the MPP game parameters (k, r, g, compute cost, one-shot).
	Params = pebble.Params
	// Instance couples a DAG with game parameters.
	Instance = pebble.Instance
	// Strategy is a sequence of pebbling moves.
	Strategy = pebble.Strategy
	// Report is the validated cost breakdown of a strategy.
	Report = pebble.Report
	// Scheduler produces strategies for instances.
	Scheduler = sched.Scheduler
	// Experiment regenerates one paper artifact.
	Experiment = exp.Experiment
	// OptResult is the exact solver's (possibly partial) answer: the
	// optimum when Status is complete, otherwise an incumbent/lower-bound
	// bracket.
	OptResult = opt.Result
	// ZeroIOResult is the zero-I/O decision solver's answer, with a
	// three-valued Verdict when the search was cut short.
	ZeroIOResult = opt.ZeroIOResult
	// SearchStatus says whether a search completed or which budget
	// stopped it.
	SearchStatus = opt.Status
	// SearchConfig selects the exact solver's heuristic mode, pruning
	// switches, shard-worker count (Workers: 0 = GOMAXPROCS) and engine
	// mode (Mode: deterministic runs are byte-identical at every worker
	// count, async trades that determinism for multicore throughput);
	// the zero value is the bare compute floor with pruning off,
	// opt.DefaultConfig the full stack.
	SearchConfig = opt.Config
	// HeuristicMode picks the admissible cost-to-go bound (floor | io |
	// max) the exact search runs under.
	HeuristicMode = opt.HeuristicMode
	// SearchMode selects the exact engine: ModeDeterministic (wave-
	// synchronous, byte-identical statistics at every worker count) or
	// ModeAsync (speculative HDA*, same proven optima, timing-dependent
	// statistics — see DESIGN.md §6).
	SearchMode = opt.Mode
	// BatchResult pairs one instance's OptResult with its solve error in
	// a SolveBatch result set.
	BatchResult = opt.BatchResult
	// SolveCache memoizes exact-solver results behind canonical instance
	// fingerprints (DAG structure + Params + the result-affecting config
	// subset); pass one to SolveCached/SolveBatchCached. See
	// internal/cache for the key-derivation and partial-result policy.
	SolveCache = opt.SolveCache
	// CacheOptions sizes a SolveCache (entry/byte bounds) and optionally
	// points it at a directory for the file-backed store.
	CacheOptions = cache.Options
	// CacheStats is a snapshot of a SolveCache's hit/miss/eviction/bytes
	// counters.
	CacheStats = cache.Stats
)

// Engine modes for SearchConfig.Mode.
const (
	ModeDeterministic = opt.ModeDeterministic
	ModeAsync         = opt.ModeAsync
)

// ErrBudget is returned (wrapped) when a solver exhausts its state
// budget; detect with errors.Is(err, ErrBudget) or IsPartial.
var ErrBudget = opt.ErrBudget

// IsPartial reports whether a solver error means "stopped early with a
// usable partial result" (state budget, deadline, or cancellation)
// rather than a hard failure.
func IsPartial(err error) bool { return opt.IsPartial(err) }

// Exact computes the optimal pebbling cost by exhaustive search,
// exploring at most maxStates configurations. On budget exhaustion it
// returns the best incumbent found plus a lower bound alongside a
// partial-status error.
func Exact(in *Instance, maxStates int) (*OptResult, error) { return opt.Exact(in, maxStates) }

// ExactCtx is Exact with cancellation: the search also stops when ctx
// expires, again returning its incumbent/lower-bound bracket.
func ExactCtx(ctx context.Context, in *Instance, maxStates int) (*OptResult, error) {
	return opt.ExactCtx(ctx, in, maxStates)
}

// ExactWith is ExactCtx with an explicit SearchConfig — heuristic mode
// and dominance pruning — instead of the default full stack.
func ExactWith(ctx context.Context, in *Instance, cfg SearchConfig) (*OptResult, error) {
	return opt.ExactWith(ctx, in, cfg)
}

// SolveBatch solves many instances under one SearchConfig, recycling
// the solver arenas (state tables, queues, scratch) between instances;
// results come back in input order, one per instance.
func SolveBatch(ctx context.Context, ins []*Instance, cfg SearchConfig) []BatchResult {
	return opt.SolveBatch(ctx, ins, cfg)
}

// NewSolveCache returns an exact-solve memoization cache under the
// given options (zero-value CacheOptions: memory-only, default bounds).
func NewSolveCache(opts CacheOptions) *SolveCache { return opt.NewSolveCache(opts) }

// SolveCached is ExactWith through a cache: repeat solves of the same
// instance under the same result-affecting config return the memoized
// result in microseconds instead of re-searching. Only deterministic,
// non-deadline-stopped results are cached; a nil cache degrades to a
// plain ExactWith.
func SolveCached(ctx context.Context, in *Instance, cfg SearchConfig, sc *SolveCache) (*OptResult, error) {
	return opt.SolveCached(ctx, in, cfg, sc)
}

// SolveBatchCached is SolveBatch through a cache: repeated instances
// inside or across batches hit instead of re-searching.
func SolveBatchCached(ctx context.Context, ins []*Instance, cfg SearchConfig, sc *SolveCache) []BatchResult {
	return opt.SolveBatchCached(ctx, ins, cfg, sc)
}

// ZeroIO decides whether g has a zero-I/O pebbling with r red pebbles
// (the Theorem 2 decision problem). Interrupted runs report
// VerdictIndeterminate.
func ZeroIO(g *Graph, r, maxStates int) (*ZeroIOResult, error) { return opt.ZeroIO(g, r, maxStates) }

// ZeroIOCtx is ZeroIO with cancellation.
func ZeroIOCtx(ctx context.Context, g *Graph, r, maxStates int) (*ZeroIOResult, error) {
	return opt.ZeroIOCtx(ctx, g, r, maxStates)
}

// ScheduleCtx runs a scheduler under a context; schedulers that support
// cancellation stop (anytime ones return their best-so-far strategy),
// others run to completion.
func ScheduleCtx(ctx context.Context, s Scheduler, in *Instance) (*Strategy, error) {
	return sched.ScheduleCtx(ctx, s, in)
}

// MPP returns the paper's standard parameters: k processors, r red
// pebbles each, I/O cost g, compute cost 1.
func MPP(k, r, g int) Params { return pebble.MPP(k, r, g) }

// SPP returns classic Hong–Kung single-processor parameters (compute
// steps free).
func SPP(r, g int) Params { return pebble.SPP(r, g) }

// NewInstance validates parameters against a DAG.
func NewInstance(g *Graph, p Params) (*Instance, error) { return pebble.NewInstance(g, p) }

// Replay validates a strategy and returns its cost report.
func Replay(in *Instance, s *Strategy) (*Report, error) { return pebble.Replay(in, s) }

// Experiments returns the full experiment registry (E01…E19).
func Experiments() []Experiment { return exp.Registry() }
