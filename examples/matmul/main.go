// Matrix-multiplication workload: schedule the classical O(n³) MMM DAG
// across processor counts and memory sizes and compare the measured I/O
// against the Kwasniewski et al. lower bound 2n³/√(r·k) + n², translated
// to the multiprocessor setting via Lemma 5 of the paper.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

func main() {
	const n = 4 // 4×4 matrices: 144-node DAG
	g := gen.MatMul(n)
	fmt.Printf("C = A·B for %d×%d matrices: %s\n\n", n, n, g)

	schedulers := []sched.Scheduler{
		sched.Greedy{},
		sched.Greedy{Evict: sched.EvictFewestUses},
		sched.Partitioned{Assign: sched.AssignAllToOne, AssignName: "one"},
		sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"},
	}

	fmt.Printf("%-4s %-4s %-10s %-22s %-12s %-10s\n",
		"k", "r", "io-moves", "best scheduler", "L/k bound", "meas/bound")
	for _, k := range []int{1, 2, 4} {
		for _, r := range []int{4, 8, 16} {
			in, err := pebble.NewInstance(g, pebble.MPP(k, r, 2))
			if err != nil {
				log.Fatal(err)
			}
			bestName := ""
			var best *pebble.Report
			for _, s := range schedulers {
				rep, err := sched.Run(s, in)
				if err != nil {
					continue
				}
				if best == nil || rep.IOMoves < best.IOMoves {
					best, bestName = rep, s.Name()
				}
			}
			if best == nil {
				log.Fatalf("no scheduler succeeded for k=%d r=%d", k, r)
			}
			bound := bounds.Lemma5IO(bounds.KwasniewskiMMM(n, r*k), k)
			fmt.Printf("%-4d %-4d %-10d %-22s %-12.1f %-10.2f\n",
				k, r, best.IOMoves, bestName, bound, float64(best.IOMoves)/bound)
		}
	}
	fmt.Println("\nThe measured I/O falls as r·k grows and parallelism divides the")
	fmt.Println("bound by k — the trade-off surface the paper's Section 4 describes.")
}
