// Hardness demo (Theorem 2, Figures 3–4): build the tower/squeeze
// reduction from q-clique to zero-I/O one-shot pebbling feasibility and
// watch the budget game distinguish structurally identical graphs that
// differ only in whether they contain a triangle.
//
//	go run ./examples/hardness
package main

import (
	"fmt"
	"log"

	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/pebble"
)

func main() {
	const q = 3
	pairs := []struct {
		name string
		g    *hardness.UGraph
	}{
		{"triangle+pendant (K3 present)", hardness.MustUGraph(4,
			[][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})},
		{"C4 (same N and M, no K3)", hardness.MustUGraph(4,
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})},
		{"prism (K3 present)", hardness.CubicCorpus()["prism"]},
		{"K3,3 (same N and M, no K3)", hardness.CubicCorpus()["k33"]},
	}

	for _, p := range pairs {
		red, err := hardness.BuildCliqueReduction(p.g, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  source graph: N=%d M=%d; reduction DAG: n=%d nodes, pebble budget R=%d\n",
			p.name, p.g.N, p.g.M(), red.Graph.N(), red.R)

		res, err := opt.ZeroIOBig(red.Graph, red.R, 50_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  zero-I/O pebbling exists: %v (brute-force clique: %v; %d search states)\n",
			res.Feasible, p.g.HasClique(q), res.States)

		if res.Feasible {
			// Validate the search's witness under the one-shot rules.
			in := pebble.MustInstance(red.Graph, pebble.OneShotSPP(red.R, 1))
			rep, err := pebble.Replay(in, opt.ZeroIOStrategy(red.Graph, res.Order))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  witness replayed: %d computes, %d I/O, peak %d/%d pebbles\n",
				rep.ComputeActions, rep.IOActions, rep.MaxRedInUse[0], red.R)
		}
		fmt.Println()
	}
	fmt.Println("Feasibility tracks the clique exactly — deciding (and hence")
	fmt.Println("approximating) the optimal I/O of one-shot pebbling is NP-hard.")
}
