// Quickstart: build a small computational DAG, pebble it with one and
// with two processors, and inspect the validated cost reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/dag"
	"repro/internal/pebble"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	// A hand-built DAG: two parallel 3-node pipelines merging into one
	// result node (think: two preprocessing streams + a final join).
	b := dag.NewBuilder("quickstart")
	left := b.AddNewChain(3)
	right := b.AddNewChain(3)
	join := b.AddLabeledNode("join")
	b.AddEdge(left[2], join)
	b.AddEdge(right[2], join)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	for _, k := range []int{1, 2} {
		// k processors, 3 fast-memory slots each, I/O cost g = 5.
		in, err := pebble.NewInstance(g, pebble.MPP(k, 3, 5))
		if err != nil {
			log.Fatal(err)
		}
		// The greedy scheduler produces a pebbling strategy; Run replays
		// it against the game rules and returns the cost breakdown.
		rep, err := sched.Run(sched.Greedy{}, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d: %s\n", k, trace.Summary(in, rep))
	}

	// Strategies can also be written by hand through pebble.Builder; the
	// replay engine rejects anything that violates the rules (R1)-(R4)
	// or the memory bound.
	in := pebble.MustInstance(g, pebble.MPP(2, 3, 5))
	sb := pebble.NewBuilder(in)
	sb.ComputeParallel(pebble.At(0, left[0]), pebble.At(1, right[0]))
	sb.ComputeParallel(pebble.At(0, left[1]), pebble.At(1, right[1]))
	sb.ComputeParallel(pebble.At(0, left[2]), pebble.At(1, right[2]))
	for p, chain := range [][]dag.NodeID{left, right} {
		sb.DropRed(p, chain[0], chain[1])
	}
	// Hand the right pipeline's result to processor 0 via shared memory.
	sb.Write(pebble.At(1, right[2]))
	sb.Read(pebble.At(0, right[2]))
	sb.Compute(0, join)
	rep, err := pebble.Replay(in, sb.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-crafted: %s\n", trace.Summary(in, rep))
}
