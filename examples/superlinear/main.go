// Superlinear speedup (Lemma 10): on the zipper gadget of Figure 2,
// doubling the processors cuts the cost by far more than 2× — each
// processor parks one input group in its fast memory, so the per-node
// cost drops from d·g+1 (group swapping) to 2g+1 (chain handover).
//
//	go run ./examples/superlinear
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/proofs"
)

func main() {
	const (
		chainLen = 60
		ioCost   = 4
	)
	fmt.Printf("zipper gadget, chain length %d, g = %d, r = d+2, tails = 2g\n\n", chainLen, ioCost)
	fmt.Printf("%-6s %-8s %-10s %-10s %-9s %-12s\n",
		"d", "Δin", "cost(k=1)", "cost(k=2)", "speedup", "(Δin−1)/2")
	for _, d := range []int{4, 8, 12, 16, 20} {
		g, ids := gen.Zipper(d, chainLen, 2*ioCost)

		in1, err := pebble.NewInstance(g, pebble.MPP(1, d+2, ioCost))
		if err != nil {
			log.Fatal(err)
		}
		rep1, err := pebble.Replay(in1, proofs.ZipperSwap(in1, ids))
		if err != nil {
			log.Fatal(err)
		}

		in2, err := pebble.NewInstance(g, pebble.MPP(2, d+2, ioCost))
		if err != nil {
			log.Fatal(err)
		}
		rep2, err := pebble.Replay(in2, proofs.ZipperParallel(in2, ids))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-6d %-8d %-10d %-10d %-9.2f %-12.1f\n",
			d, d+1, rep1.Cost, rep2.Cost,
			float64(rep1.Cost)/float64(rep2.Cost), float64(d)/2)
	}
	fmt.Println("\nSpeedup grows with d toward (Δin−1)/2 — i.e., adding one processor")
	fmt.Println("is worth an unbounded factor: the phenomenon MPP is the first")
	fmt.Println("pebbling/scheduling model to capture naturally (Lemma 10).")
}
