// BSP bridge: the paper observes that MPP with unlimited fast memory is
// DAG scheduling in the BSP model (Section 3.3). This example builds a
// level-synchronous BSP schedule, prints its analytic h-relation cost,
// mechanically converts it into MPP moves, and replays those under the
// pebble-game rules — the two costs agree exactly.
//
//	go run ./examples/bspbridge
package main

import (
	"fmt"
	"log"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/pebble"
)

func main() {
	g := gen.FFT(4) // 16-point butterfly: 80 nodes, all-to-all levels
	fmt.Println(g)

	for _, k := range []int{1, 2, 4, 8} {
		for _, ioCost := range []int{1, 4} {
			s := bsp.LevelSchedule(g, k)
			if err := s.Validate(g); err != nil {
				log.Fatal(err)
			}
			analytic := s.Cost(g, ioCost)

			// r = n+1 ≈ ∞: the memory bound can never bind.
			in, err := pebble.NewInstance(g, pebble.MPP(k, g.N()+1, ioCost))
			if err != nil {
				log.Fatal(err)
			}
			rep, err := pebble.Replay(in, s.Convert(g))
			if err != nil {
				log.Fatal(err)
			}
			status := "EQUAL"
			if rep.Cost != analytic {
				status = "MISMATCH"
			}
			fmt.Printf("k=%d g=%d: BSP cost Σ(W + g·(h_in+h_out)) = %4d | MPP replay = %4d  [%s]\n",
				k, ioCost, analytic, rep.Cost, status)
		}
	}
	fmt.Println("\nWith r = ∞ the pebble game *is* BSP DAG scheduling — the paper's")
	fmt.Println("Section 3.3 claim, executed. Shrink r and the memory dimension of")
	fmt.Println("the trade-off reappears (see examples/superlinear).")
}
