package e2e

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/opt"
	"repro/internal/server"
)

// buildBinaries compiles mppserver and mpp into a temp dir once per
// test run.
func buildBinaries(t *testing.T) (serverBin, clientBin string) {
	t.Helper()
	dir := t.TempDir()
	serverBin = filepath.Join(dir, "mppserver")
	clientBin = filepath.Join(dir, "mpp")
	for bin, pkg := range map[string]string{serverBin: "../cmd/mppserver", clientBin: "../cmd/mpp"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return serverBin, clientBin
}

// startServer launches mppserver on an ephemeral port and returns its
// base URL. The process is interrupted and reaped with the test.
func startServer(t *testing.T, bin string, extraArgs ...string) string {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("mppserver produced no output: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected mppserver banner: %q", line)
	}
	// Keep draining stdout so the server never blocks on a full pipe.
	go func() {
		_, _ = io.Copy(io.Discard, stdout)
	}()
	return strings.TrimSpace(line[i+len(marker):])
}

// run executes the client binary, failing the test on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", filepath.Base(bin), strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String()
}

// TestServerEndToEnd is the exec-level proof of the solver-as-a-service
// contract over real binaries and real HTTP.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries and starts a server; skipped in -short")
	}
	serverBin, clientBin := buildBinaries(t)
	base := startServer(t, serverBin, "-workers", "2", "-queue", "64")
	remote := func(args ...string) string {
		return run(t, clientBin, append([]string{"remote", "-server", base}, args...)...)
	}
	jobID := func(out string) string {
		t.Helper()
		var v server.View
		if err := json.Unmarshal([]byte(out), &v); err != nil || v.ID == "" {
			t.Fatalf("no job id in %q (%v)", out, err)
		}
		return v.ID
	}

	t.Run("completed job byte-identical to local solve", func(t *testing.T) {
		out := remote("submit", "-dag", "grid:3,3", "-k", "2", "-g", "3", "-wait")
		var fin server.View
		if err := json.Unmarshal([]byte(out), &fin); err != nil {
			t.Fatalf("bad final view %q: %v", out, err)
		}
		if fin.State != "done" || fin.ResultStatus != "complete" {
			t.Fatalf("final view: %+v", fin)
		}
		got := remote("result", fin.ID)

		// Reproduce the solve locally through the same request
		// resolution and the same SolveCached funnel the server uses.
		req := server.SubmitRequest{DAG: "grid:3,3", K: 2, G: 3,
			ComputeCost: ptr(1), Dominance: ptr(true)}
		in, cfg, _, err := req.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.SolveCached(context.Background(), in, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := server.EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(got), want) {
			t.Fatalf("server result differs from local solve:\nserver: %s\nlocal:  %s", got, want)
		}
	})

	t.Run("budget job returns typed partial bracket", func(t *testing.T) {
		out := remote("submit", "-dag", "grid:4,4", "-k", "2", "-g", "3", "-max-states", "3", "-wait")
		var fin server.View
		if err := json.Unmarshal([]byte(out), &fin); err != nil {
			t.Fatal(err)
		}
		if fin.State != "done" || fin.ResultStatus != "budget" {
			t.Fatalf("budget job: %+v", fin)
		}
		var doc struct {
			Status     string `json:"status"`
			LowerBound int64  `json:"lower_bound"`
			Incumbent  int64  `json:"incumbent"`
		}
		if err := json.Unmarshal([]byte(remote("result", fin.ID)), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "budget" || doc.LowerBound < 0 ||
			(doc.Incumbent != -1 && doc.Incumbent < doc.LowerBound) {
			t.Fatalf("invalid budget bracket: %+v", doc)
		}
	})

	t.Run("deadline job returns typed partial bracket", func(t *testing.T) {
		out := remote("submit", "-dag", "grid:6,6", "-k", "2", "-g", "3", "-timeout-ms", "40", "-wait")
		var fin server.View
		if err := json.Unmarshal([]byte(out), &fin); err != nil {
			t.Fatal(err)
		}
		if fin.State != "done" || fin.ResultStatus != "canceled" {
			t.Fatalf("deadline job: %+v", fin)
		}
		var doc struct {
			Status     string `json:"status"`
			LowerBound int64  `json:"lower_bound"`
			Incumbent  int64  `json:"incumbent"`
		}
		if err := json.Unmarshal([]byte(remote("result", fin.ID)), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "canceled" || doc.LowerBound < 0 ||
			(doc.Incumbent != -1 && doc.Incumbent < doc.LowerBound) {
			t.Fatalf("invalid deadline bracket: %+v", doc)
		}
	})

	t.Run("submissions beyond the worker bound queue", func(t *testing.T) {
		// 6 quick jobs against 2 workers: every submission is accepted
		// (queued, not rejected) and all complete.
		ids := make([]string, 0, 6)
		for i := 0; i < 6; i++ {
			ids = append(ids, jobID(remote("submit", "-dag", fmt.Sprintf("chain:%d", 5+i), "-k", "1", "-g", "1")))
		}
		for _, id := range ids {
			var fin server.View
			if err := json.Unmarshal([]byte(remote("wait", id)), &fin); err != nil {
				t.Fatal(err)
			}
			if fin.State != "done" || fin.ResultStatus != "complete" {
				t.Fatalf("job %s: %+v", id, fin)
			}
		}
	})

	t.Run("cancel mid-solve", func(t *testing.T) {
		id := jobID(remote("submit", "-dag", "grid:6,6", "-k", "2", "-g", "3"))
		// Wait until the worker picks it up (the metrics subtest below
		// counts this job's solve, so it must actually start), then
		// cancel.
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var v server.View
			if err := json.Unmarshal([]byte(remote("status", id)), &v); err != nil {
				t.Fatal(err)
			}
			if v.State == "running" {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		remote("cancel", id)
		var fin server.View
		if err := json.Unmarshal([]byte(remote("wait", id)), &fin); err != nil {
			t.Fatal(err)
		}
		if fin.State != "canceled" {
			t.Fatalf("canceled job: %+v", fin)
		}
	})

	t.Run("metrics expose non-zero counters", func(t *testing.T) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		text := string(body)
		for _, want := range []string{
			"mpp_jobs_submitted_total 10",
			`mpp_jobs_finished_total{state="done"} 9`,
			`mpp_jobs_finished_total{state="canceled"} 1`,
			"mpp_jobs_rejected_total 0",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("metrics missing %q:\n%s", want, text)
			}
		}
		// The histogram saw every solve that ran (the canceled one
		// included — it ran and stopped).
		if !strings.Contains(text, "mpp_solve_seconds_count 10") {
			t.Errorf("solve histogram count wrong:\n%s", text)
		}
		if !strings.Contains(text, "mpp_cache_misses_total") {
			t.Errorf("cache counters absent:\n%s", text)
		}
	})
}

func ptr[T any](v T) *T { return &v }
