// Package e2e holds the exec-level end-to-end harness: it builds the
// real mppserver and mpp binaries, starts the server on an ephemeral
// port, and drives the submit → poll → fetch lifecycle over actual
// HTTP — asserting that completed jobs are byte-identical to local
// opt.SolveCached runs and that deadline/budget jobs come back as typed
// partial brackets. The package has no non-test code; see e2e_test.go.
package e2e
