package gen

import (
	"fmt"
	"math"
)

// MaxNodes is the largest node count any generator accepts: NodeID is an
// int32, and dag.Graph's CSR offset arrays are int32 as well, so a DAG
// can hold at most 2³¹−1 nodes (and edges).
const MaxNodes = math.MaxInt32

// satAdd returns a+b for non-negative operands, saturating at
// math.MaxInt64 instead of wrapping.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// satMul returns a·b for non-negative operands, saturating at
// math.MaxInt64 instead of wrapping.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		return math.MaxInt64
	}
	return p
}

// checkNodes panics when a generator's node count is negative (a size
// parameter was negative) or exceeds MaxNodes — a programmer error at
// the call site, same contract as the existing parameter panics
// (spec.ParseDAG converts generator panics into errors for user-supplied
// DAG spec strings). Generators call it before allocating anything, so
// an oversized request like Grid2D(46341, 46341) fails fast instead of
// attempting a multi-gigabyte build that would silently wrap int32
// NodeIDs.
func checkNodes(what string, count int64) {
	if count < 0 {
		panic(fmt.Sprintf("gen: %s: negative node count %d", what, count))
	}
	if count > MaxNodes {
		panic(fmt.Sprintf("gen: %s would need %d nodes, exceeding the 2^31-1 NodeID limit", what, count))
	}
}
