package gen

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// FFT returns the n-point FFT butterfly DAG for n = 2^logN: logN+1 levels
// of n nodes each; node i at level l+1 depends on nodes i and i XOR 2^l at
// level l. Hong and Kung's lower bound states that pebbling it with fast
// memory of size s requires Ω(n·log n / log s) I/O operations. A negative
// or over-2³¹-node logN panics — a programmer error at the call site.
func FFT(logN int) *dag.Graph {
	if logN < 0 {
		panic(fmt.Sprintf("gen: FFT(%d): need logN ≥ 0", logN))
	}
	fftNodes := int64(math.MaxInt64)
	if logN <= 40 { // (logN+1)·2^logN fits comfortably in int64
		fftNodes = int64(logN+1) << uint(logN)
	}
	checkNodes(fmt.Sprintf("FFT(%d)", logN), fftNodes)
	n := 1 << logN
	b := dag.NewBuilder(fmt.Sprintf("fft-%d", n))
	prev := b.AddNodes(n)
	for l := 0; l < logN; l++ {
		cur := b.AddNodes(n)
		for i := 0; i < n; i++ {
			b.AddEdge(prev[i], cur[i])
			b.AddEdge(prev[i^(1<<l)], cur[i])
		}
		prev = cur
	}
	return b.MustBuild()
}

// MatMul returns the dependency DAG of the classical O(n³) dense
// matrix-matrix multiplication C = A·B of two n×n matrices:
//
//   - 2n² source nodes for the entries of A and B,
//   - n³ product nodes P[i][j][l] = A[i][l]·B[l][j] with in-degree 2,
//   - per output entry C[i][j], a chain of n−1 accumulation nodes, each
//     adding one product into the running sum (in-degree 2); the final
//     accumulation node is the sink for that entry. For n = 1 the single
//     product node is the sink itself.
//
// Kwasniewski et al. prove an I/O lower bound of 2n³/√s + n² for fast
// memory of size s.
func MatMul(n int) *dag.Graph {
	g, _ := MatMulWithIDs(n)
	return g
}

// MatMulIDs locates the parts of the MatMul DAG.
type MatMulIDs struct {
	N    int
	A, B [][]dag.NodeID   // input entries
	P    [][][]dag.NodeID // P[i][j][l]: product A[i][l]·B[l][j]
	Acc  [][][]dag.NodeID // Acc[i][j][l]: running sum after adding P[i][j][l], l ≥ 1; Acc[i][j][n-1] is the sink C[i][j] (for n = 1 the product itself is the sink)
}

// MatMulWithIDs is MatMul exposing the node inventory, so strategies
// (e.g. the tiled schedule in package proofs) can address individual
// entries, products and partial sums.
func MatMulWithIDs(n int) (*dag.Graph, *MatMulIDs) {
	n64 := int64(n)
	// 2n² sources + n³ products + n²(n−1) accumulators.
	nodes := satMul(2, satMul(n64, n64))
	nodes = satAdd(nodes, satMul(n64, satMul(n64, n64)))
	nodes = satAdd(nodes, satMul(satMul(n64, n64), n64-1))
	checkNodes(fmt.Sprintf("MatMul(%d)", n), nodes)
	b := dag.NewBuilder(fmt.Sprintf("matmul-%d", n))
	ids := &MatMulIDs{N: n}
	ids.A = make([][]dag.NodeID, n)
	ids.B = make([][]dag.NodeID, n)
	for i := 0; i < n; i++ {
		ids.A[i] = b.AddNodes(n)
	}
	for i := 0; i < n; i++ {
		ids.B[i] = b.AddNodes(n)
	}
	ids.P = make([][][]dag.NodeID, n)
	ids.Acc = make([][][]dag.NodeID, n)
	for i := 0; i < n; i++ {
		ids.P[i] = make([][]dag.NodeID, n)
		ids.Acc[i] = make([][]dag.NodeID, n)
		for j := 0; j < n; j++ {
			ids.P[i][j] = make([]dag.NodeID, n)
			ids.Acc[i][j] = make([]dag.NodeID, n)
			var acc dag.NodeID = -1
			for l := 0; l < n; l++ {
				p := b.AddNode()
				b.AddEdge(ids.A[i][l], p)
				b.AddEdge(ids.B[l][j], p)
				ids.P[i][j][l] = p
				if acc == -1 {
					acc = p
					ids.Acc[i][j][l] = p
					continue
				}
				s := b.AddNode()
				b.AddEdge(acc, s)
				b.AddEdge(p, s)
				acc = s
				ids.Acc[i][j][l] = s
			}
		}
	}
	return b.MustBuild(), ids
}

// MatMulStats reports the node composition of MatMul(n): sources, product
// nodes, accumulation nodes, total.
func MatMulStats(n int) (sources, products, sums, total int) {
	sources = 2 * n * n
	products = n * n * n
	sums = n * n * (n - 1)
	total = sources + products + sums
	return
}
