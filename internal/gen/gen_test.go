package gen

import (
	"testing"

	"repro/internal/dag"
)

func TestChain(t *testing.T) {
	g := Chain(10)
	if g.N() != 10 || g.M() != 9 || g.CriticalPathLength() != 10 {
		t.Fatalf("chain: %v", g.ComputeStats())
	}
	if !g.IsInTree() {
		t.Error("chain should be an in-tree")
	}
}

func TestIndependentChains(t *testing.T) {
	g := IndependentChains(4, 5)
	if g.N() != 20 || g.M() != 16 {
		t.Fatalf("chains: %v", g.ComputeStats())
	}
	if len(g.Sources()) != 4 || len(g.Sinks()) != 4 {
		t.Fatal("chains: wrong source/sink count")
	}
	if g.CriticalPathLength() != 5 {
		t.Fatal("chains: wrong depth")
	}
}

func TestBinaryInTree(t *testing.T) {
	g := BinaryInTree(3)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("intree: %v", g.ComputeStats())
	}
	if !g.IsInTree() {
		t.Error("not an in-tree")
	}
	if len(g.Sinks()) != 1 || len(g.Sources()) != 8 {
		t.Error("wrong roots/leaves")
	}
	if g.MaxInDegree() != 2 {
		t.Error("wrong Δin")
	}
	if d0 := BinaryInTree(0); d0.N() != 1 {
		t.Error("depth-0 tree not a single node")
	}
}

func TestBinaryOutTree(t *testing.T) {
	g := BinaryOutTree(3)
	if g.N() != 15 || len(g.Sources()) != 1 || len(g.Sinks()) != 8 {
		t.Fatalf("outtree: %v", g.ComputeStats())
	}
	if g.MaxOutDegree() != 2 || g.MaxInDegree() != 1 {
		t.Error("outtree degrees wrong")
	}
}

func TestTwoLayerRandom(t *testing.T) {
	g := TwoLayerRandom(10, 20, 0.3, 42)
	if !g.IsTwoLayer() {
		t.Fatal("not 2-layer")
	}
	if g.N() != 30 {
		t.Fatal("wrong node count")
	}
	// Determinism.
	g2 := TwoLayerRandom(10, 20, 0.3, 42)
	if g.M() != g2.M() {
		t.Fatal("not deterministic")
	}
	g3 := TwoLayerRandom(10, 20, 0.3, 43)
	if g.M() == g3.M() && g.String() == g3.String() {
		t.Log("different seeds produced identical graphs (possible but unlikely)")
	}
}

func TestLayeredRandom(t *testing.T) {
	g := LayeredRandom([]int{5, 8, 3}, 2, 7)
	if g.N() != 16 {
		t.Fatal("wrong node count")
	}
	if g.MaxInDegree() > 2 {
		t.Fatal("in-degree exceeds bound")
	}
	if g.CriticalPathLength() != 3 {
		t.Fatalf("depth = %d", g.CriticalPathLength())
	}
	// every non-first-layer node has exactly min(indeg, prevWidth) preds
	lvl, _ := g.Levels()
	for v := 0; v < g.N(); v++ {
		if lvl[v] > 0 && g.InDegree(dag.NodeID(v)) != 2 {
			t.Fatalf("node %d at level %d has in-degree %d", v, lvl[v], g.InDegree(dag.NodeID(v)))
		}
	}
}

func TestRandomDAG(t *testing.T) {
	g := RandomDAG(50, 0.2, 3, 99)
	if g.N() != 50 {
		t.Fatal("wrong n")
	}
	if g.MaxInDegree() > 3 {
		t.Fatalf("Δin = %d exceeds cap", g.MaxInDegree())
	}
	if g.M() == 0 {
		t.Fatal("no edges generated")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 6)
	if g.N() != 24 || g.M() != 3*6+4*5 {
		t.Fatalf("grid: %v", g.ComputeStats())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("grid corners wrong")
	}
	if g.CriticalPathLength() != 4+6-1 {
		t.Fatal("grid depth wrong")
	}
	if g.MaxInDegree() != 2 {
		t.Fatal("grid Δin wrong")
	}
}

func TestPyramid(t *testing.T) {
	g := Pyramid(4)
	if g.N() != 5+4+3+2+1 {
		t.Fatalf("pyramid n = %d", g.N())
	}
	if len(g.Sinks()) != 1 || len(g.Sources()) != 5 {
		t.Fatal("pyramid shape wrong")
	}
	if g.CriticalPathLength() != 5 {
		t.Fatal("pyramid depth wrong")
	}
}

func TestFFT(t *testing.T) {
	g := FFT(3) // 8-point FFT
	if g.N() != 8*4 {
		t.Fatalf("fft n = %d, want 32", g.N())
	}
	if g.M() != 8*3*2 {
		t.Fatalf("fft m = %d, want 48", g.M())
	}
	if g.MaxInDegree() != 2 || len(g.Sources()) != 8 || len(g.Sinks()) != 8 {
		t.Fatal("fft shape wrong")
	}
	if g.CriticalPathLength() != 4 {
		t.Fatal("fft depth wrong")
	}
}

func TestMatMul(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := MatMul(n)
		src, prod, sums, total := MatMulStats(n)
		if g.N() != total {
			t.Fatalf("matmul(%d) n = %d, want %d", n, g.N(), total)
		}
		if len(g.Sources()) != src {
			t.Fatalf("matmul(%d) sources = %d, want %d", n, len(g.Sources()), src)
		}
		if len(g.Sinks()) != n*n {
			t.Fatalf("matmul(%d) sinks = %d, want %d", n, len(g.Sinks()), n*n)
		}
		if g.MaxInDegree() != 2 {
			t.Fatal("matmul Δin wrong")
		}
		_ = prod
		_ = sums
	}
	// 2x2: depth = source → product → sum = 3
	if got := MatMul(2).CriticalPathLength(); got != 3 {
		t.Fatalf("matmul(2) depth = %d", got)
	}
}

func TestZipper(t *testing.T) {
	g, ids := Zipper(3, 10, 0)
	if g.N() != 3+3+10 {
		t.Fatalf("zipper n = %d", g.N())
	}
	if g.MaxInDegree() != 4 { // d+1
		t.Fatalf("zipper Δin = %d, want 4", g.MaxInDegree())
	}
	// v_1 (index 0) depends on S1 only; v_2 on S2 and v_1.
	if g.InDegree(ids.Chain[0]) != 3 {
		t.Fatal("first chain node in-degree wrong")
	}
	for _, u := range ids.S1 {
		if !g.HasEdge(u, ids.Chain[0]) || g.HasEdge(u, ids.Chain[1]) {
			t.Fatal("S1 wiring wrong")
		}
	}
	for _, u := range ids.S2 {
		if g.HasEdge(u, ids.Chain[0]) || !g.HasEdge(u, ids.Chain[1]) {
			t.Fatal("S2 wiring wrong")
		}
	}
	if len(ids.Tails) != 0 {
		t.Fatal("unexpected tails")
	}
}

func TestZipperWithTails(t *testing.T) {
	d, n0, tl := 2, 6, 4
	g, ids := Zipper(d, n0, tl)
	if g.N() != 2*d*(tl+1)+n0 {
		t.Fatalf("zipper-with-tails n = %d", g.N())
	}
	if len(ids.Tails) != 2*d {
		t.Fatalf("tails = %d", len(ids.Tails))
	}
	// each input is fed by the last tail node
	if !g.HasEdge(ids.Tails[0][tl-1], ids.S1[0]) {
		t.Fatal("tail not wired to input")
	}
	// inputs are no longer sources
	if g.IsSource(ids.S1[0]) {
		t.Fatal("input with tail still a source")
	}
}

func TestFanChain(t *testing.T) {
	g, ids := FanChain(4, 8, 0)
	if g.N() != 4+8 {
		t.Fatalf("fanchain n = %d", g.N())
	}
	if g.MaxInDegree() != 5 {
		t.Fatalf("fanchain Δin = %d", g.MaxInDegree())
	}
	// every chain node depends on every input
	for _, v := range ids.Chain {
		for _, u := range ids.S {
			if !g.HasEdge(u, v) {
				t.Fatal("fanchain wiring wrong")
			}
		}
	}
	if g.InDegree(ids.Chain[0]) != 4 || g.InDegree(ids.Chain[1]) != 5 {
		t.Fatal("fanchain in-degrees wrong")
	}
}

func TestMultiFanChain(t *testing.T) {
	g, ids := MultiFanChain(2, 3, 5, 0)
	if g.N() != 2*(3+5) {
		t.Fatalf("multifan n = %d", g.N())
	}
	if len(ids.Copies) != 2 {
		t.Fatal("copies wrong")
	}
	// the two copies are disconnected
	c0sink := ids.Copies[0].Chain[4]
	c1head := ids.Copies[1].Chain[0]
	if !g.Descendants(ids.Copies[0].S[0]).Contains(int(c0sink)) {
		t.Fatal("copy 0 not connected internally")
	}
	if g.Descendants(ids.Copies[0].S[0]).Contains(int(c1head)) {
		t.Fatal("copies not disjoint")
	}
}

func TestSharedPrefixBroom(t *testing.T) {
	tt, stride, L := 3, 2, 5
	g, ids := SharedPrefixBroom(tt, stride, L)
	if g.N() != tt*L+2*tt*stride {
		t.Fatalf("broom n = %d", g.N())
	}
	if g.MaxInDegree() != 2 {
		t.Fatalf("broom Δin = %d", g.MaxInDegree())
	}
	// each shared value feeds one node in each consumer chain
	for j := 0; j < tt; j++ {
		x := ids.Shared[j][L-1]
		if g.OutDegree(x) != 2 {
			t.Fatalf("shared value %d out-degree %d", j, g.OutDegree(x))
		}
		if !g.HasEdge(x, ids.A[j*stride]) || !g.HasEdge(x, ids.B[j*stride]) {
			t.Fatal("broom wiring wrong")
		}
	}
}

func TestGreedyTrapG(t *testing.T) {
	d, m := 2, 5
	g, ids := GreedyTrapG(d, m)
	if g.N() != d+4*m {
		t.Fatalf("trapg n = %d", g.N())
	}
	if g.MaxInDegree() != d+2 {
		t.Fatalf("trapg Δin = %d, want %d", g.MaxInDegree(), d+2)
	}
	// bait t_i has in-degree d+2 for i ≥ 1, d+1 for i = 0
	if g.InDegree(ids.T[1]) != d+2 || g.InDegree(ids.T[0]) != d+1 {
		t.Fatal("bait in-degrees wrong")
	}
	// every w_i depends on its guard source e_i
	for i := range ids.W {
		if !g.HasEdge(ids.E[i], ids.W[i]) {
			t.Fatal("guard wiring wrong")
		}
	}
	// sinks are exactly {w_m}
	if len(g.Sinks()) != 1 || g.Sinks()[0] != ids.W[m-1] {
		t.Fatalf("sinks = %v", g.Sinks())
	}
}

func TestGreedyTrapDelta(t *testing.T) {
	d, q, blocks := 3, 4, 2
	g, ids := GreedyTrapDelta(d, q, blocks)
	wantN := d + blocks*q + blocks*(d+1+q)
	if g.N() != wantN {
		t.Fatalf("trapdelta n = %d, want %d", g.N(), wantN)
	}
	if g.MaxInDegree() != d+1 {
		t.Fatalf("trapdelta Δin = %d", g.MaxInDegree())
	}
	if len(ids.Hub) != blocks || len(ids.Cons[0]) != q {
		t.Fatal("trapdelta structure wrong")
	}
	// hub depends on its whole fresh group
	for _, u := range ids.F[0] {
		if !g.HasEdge(u, ids.Hub[0]) {
			t.Fatal("hub wiring wrong")
		}
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { Zipper(0, 5, 0) },
		func() { FanChain(1, 0, 0) },
		func() { SharedPrefixBroom(0, 1, 1) },
		func() { GreedyTrapG(1, 5) },
		func() { GreedyTrapDelta(2, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLU(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		g := LU(n)
		// n² inputs + Σ_k (n−1−k multipliers + (n−1−k)² updates).
		want := n * n
		for k := 0; k < n; k++ {
			m := n - 1 - k
			want += m + m*m
		}
		if g.N() != want {
			t.Errorf("LU(%d): n = %d, want %d", n, g.N(), want)
		}
		if n > 1 && g.MaxInDegree() != 3 {
			t.Errorf("LU(%d): Δin = %d, want 3", n, g.MaxInDegree())
		}
	}
	// LU is deep: the critical path grows linearly with n (each
	// elimination step depends on the previous one's pivot column).
	if LU(4).CriticalPathLength() <= LU(2).CriticalPathLength() {
		t.Error("LU depth does not grow")
	}
}

func TestWavefront(t *testing.T) {
	g := Wavefront(5, 4)
	if g.N() != 20 {
		t.Fatalf("wavefront n = %d", g.N())
	}
	if g.MaxInDegree() != 3 {
		t.Fatalf("wavefront Δin = %d", g.MaxInDegree())
	}
	if g.CriticalPathLength() != 4 {
		t.Fatalf("wavefront depth = %d", g.CriticalPathLength())
	}
	// Interior cell has 3 preds, border cells 2.
	lvl := g.LevelSets()
	if g.InDegree(lvl[1][0]) != 2 || g.InDegree(lvl[1][2]) != 3 {
		t.Error("wavefront border clamping wrong")
	}
}

func TestReductionTrees(t *testing.T) {
	f, depth := 3, 2
	g := ReductionTrees(f, depth)
	want := f*7 + f // trees + combining chain
	if g.N() != want {
		t.Fatalf("reduce n = %d, want %d", g.N(), want)
	}
	if len(g.Sinks()) != 1 {
		t.Fatalf("reduce sinks = %d", len(g.Sinks()))
	}
	if g.MaxInDegree() != 2 {
		t.Fatalf("reduce Δin = %d", g.MaxInDegree())
	}
}

func TestMatMulWithIDsInventory(t *testing.T) {
	n := 3
	g, ids := MatMulWithIDs(n)
	// Every product has exactly the A/B entries as preds.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for l := 0; l < n; l++ {
				p := ids.P[i][j][l]
				if !g.HasEdge(ids.A[i][l], p) || !g.HasEdge(ids.B[l][j], p) {
					t.Fatalf("P[%d][%d][%d] wiring wrong", i, j, l)
				}
			}
			// The final accumulator is a sink.
			if !g.IsSink(ids.Acc[i][j][n-1]) {
				t.Fatalf("Acc[%d][%d][last] not a sink", i, j)
			}
			// Accumulators chain.
			for l := 2; l < n; l++ {
				if !g.HasEdge(ids.Acc[i][j][l-1], ids.Acc[i][j][l]) {
					t.Fatalf("Acc chain broken at (%d,%d,%d)", i, j, l)
				}
			}
		}
	}
}
