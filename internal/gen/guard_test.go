package gen

import (
	"math"
	"strings"
	"testing"
	"time"
)

// mustPanic runs f and returns the recovered panic message, failing the
// test if f returns normally. The time bound guards against a generator
// that "fails" by attempting the oversized allocation instead of
// panicking up front.
func mustPanic(t *testing.T, what string, f func()) string {
	t.Helper()
	var msg string
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
		t.Fatalf("%s: expected panic, returned normally", what)
	}()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("%s: panic took %v — guard did not fire before allocation", what, el)
	}
	return msg
}

func TestCheckNodesBoundary(t *testing.T) {
	// Exactly MaxNodes is legal…
	checkNodes("boundary", MaxNodes)
	// …one past it is a programmer error.
	msg := mustPanic(t, "MaxNodes+1", func() { checkNodes("boundary", MaxNodes+1) })
	if !strings.Contains(msg, "exceeding the 2^31-1 NodeID limit") {
		t.Fatalf("wrong panic message: %q", msg)
	}
	msg = mustPanic(t, "negative", func() { checkNodes("boundary", -1) })
	if !strings.Contains(msg, "negative node count") {
		t.Fatalf("wrong panic message: %q", msg)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if got := satAdd(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Fatalf("satAdd overflow: got %d", got)
	}
	if got := satAdd(3, 4); got != 7 {
		t.Fatalf("satAdd: got %d", got)
	}
	if got := satMul(math.MaxInt64/2, 3); got != math.MaxInt64 {
		t.Fatalf("satMul overflow: got %d", got)
	}
	if got := satMul(0, math.MaxInt64); got != 0 {
		t.Fatalf("satMul zero: got %d", got)
	}
	if got := satMul(6, 7); got != 42 {
		t.Fatalf("satMul: got %d", got)
	}
}

// TestGeneratorsRejectOversized checks each generator panics fast —
// before allocating — when the requested node count exceeds 2³¹−1.
// 46341² = 2,147,488,281 is the first square past MaxInt32.
func TestGeneratorsRejectOversized(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Grid2D", func() { Grid2D(46341, 46341) }},
		{"Chain", func() { Chain(math.MaxInt32 + 1) }},
		{"IndependentChains", func() { IndependentChains(46341, 46341) }},
		{"Pyramid", func() { Pyramid(66000) }},
		{"BinaryInTree", func() { BinaryInTree(31) }},
		{"BinaryInTreeDeep", func() { BinaryInTree(200) }},
		{"Wavefront", func() { Wavefront(46341, 46341) }},
		{"LU", func() { LU(1 << 12) }},
		{"FFT", func() { FFT(28) }},
		{"FFTDeep", func() { FFT(62) }},
		{"MatMul", func() { MatMul(1300) }},
		{"ReductionTrees", func() { ReductionTrees(2, 31) }},
		{"ReductionTreesDeep", func() { ReductionTrees(1, 200) }},
		{"TwoLayerRandom", func() { TwoLayerRandom(math.MaxInt32, 2, 1, 1) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			msg := mustPanic(t, tc.name, tc.f)
			if !strings.Contains(msg, "NodeID limit") {
				t.Fatalf("wrong panic message: %q", msg)
			}
		})
	}
}

// TestGeneratorsRejectNegative spot-checks that negative size parameters
// still hit the documented parameter panics (not the overflow guard).
func TestGeneratorsRejectNegative(t *testing.T) {
	mustPanic(t, "Chain", func() { Chain(-1) })
	mustPanic(t, "BinaryInTree", func() { BinaryInTree(-1) })
	mustPanic(t, "FFT", func() { FFT(-1) })
	mustPanic(t, "ReductionTrees", func() { ReductionTrees(1, -1) })
}
