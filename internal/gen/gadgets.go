package gen

import (
	"fmt"

	"repro/internal/dag"
)

// BroomIDs locates the parts of a SharedPrefixBroom gadget.
type BroomIDs struct {
	Shared [][]dag.NodeID // Shared[j] is the j-th expensive chain; its last node is the shared value x_j
	A, B   []dag.NodeID   // the two consumer chains
}

// SharedPrefixBroom builds the I/O-jump-down gadget of Section 5
// ("OPT_IO(1) = Θ(n) but OPT_IO(2) = 0"): t expensive shared values
// x_1…x_t, each the last node of a fresh chain of length prefixLen, and
// two consumer chains A and B of length t·stride each, where consumer
// node j·stride of either chain additionally depends on x_j.
//
// With one processor and small r, each x_j is needed twice at distant
// times; storing and reloading costs 2g per x_j (2t I/O operations
// total), while recomputing costs prefixLen ≥ 2g+1 — so the optimal
// single-processor pebbling performs Θ(t) I/O. With two processors, each
// processor recomputes every x_j privately and the two consumer chains
// proceed in lock-step compute moves, so the duplicated work hides inside
// shared parallel steps and the optimal pebbling needs zero I/O.
//
// Δ_in = 2, so r ≥ 3 suffices.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func SharedPrefixBroom(t, stride, prefixLen int) (*dag.Graph, *BroomIDs) {
	if t < 1 || stride < 1 || prefixLen < 1 {
		panic(fmt.Sprintf("gen: SharedPrefixBroom(%d,%d,%d): parameters must be ≥ 1", t, stride, prefixLen))
	}
	b := dag.NewBuilder(fmt.Sprintf("broom-t%d-s%d-L%d", t, stride, prefixLen))
	ids := &BroomIDs{}
	for j := 0; j < t; j++ {
		ids.Shared = append(ids.Shared, b.AddNewChain(prefixLen))
	}
	chainLen := t * stride
	ids.A = b.AddNodes(chainLen)
	ids.B = b.AddNodes(chainLen)
	link := func(chain []dag.NodeID) {
		for i := 1; i < len(chain); i++ {
			b.AddEdge(chain[i-1], chain[i])
		}
		for j := 0; j < t; j++ {
			x := ids.Shared[j][prefixLen-1]
			b.AddEdge(x, chain[j*stride])
		}
	}
	link(ids.A)
	link(ids.B)
	return b.MustBuild(), ids
}

// TrapGIDs locates the parts of the greedy g-factor trap.
type TrapGIDs struct {
	S []dag.NodeID // persistent group, d nodes (d ≥ 2)
	E []dag.NodeID // per-block guard sources keeping w_i's fraction below 1
	C []dag.NodeID // main chain c_1…c_m
	T []dag.NodeID // bait nodes t_1…t_m
	W []dag.NodeID // deferred consumer chain w_1…w_m
}

// GreedyTrapG builds a Lemma 4-style adversarial family on which any
// most-red-predecessors greedy pays ≈ 2g extra per block while the
// optimum pays none, giving an asymptotic cost ratio of ≈ (2g/3 + 1)/1
// per the second bullet of Lemma 4.
//
// Structure per block i (groups S of size d ≥ 2 shared by all blocks):
//
//	c_i : preds {c_{i−1}} ∪ S           (in-degree d+1)
//	t_i : preds {c_{i−1}, c_i} ∪ S      (in-degree d+2 — the bait)
//	w_i : preds {w_{i−1}, t_i, e_i}     (e_i a fresh per-block source)
//
// After computing c_i, the bait t_i has d+2 red in-neighbors — strictly
// more than c_{i+1}'s d+1 and w's ≤ 2 — so every count-greedy computes
// all baits immediately but defers every w_i to the very end, forcing
// each t_i through slow memory (2g I/O per block, or an even costlier
// recompute cascade). The guard sources e_i (never attractive: zero red
// in-neighbors) keep w_i's red-predecessor *fraction* strictly below 1,
// so fraction-greedy falls into the same trap. The optimum interleaves
// w_i right after t_i with zero I/O given r = d+5.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func GreedyTrapG(d, m int) (*dag.Graph, *TrapGIDs) {
	if d < 2 || m < 1 {
		panic(fmt.Sprintf("gen: GreedyTrapG(d=%d, m=%d): need d ≥ 2, m ≥ 1", d, m))
	}
	b := dag.NewBuilder(fmt.Sprintf("trapg-d%d-m%d", d, m))
	ids := &TrapGIDs{}
	for i := 0; i < d; i++ {
		ids.S = append(ids.S, b.AddNode())
	}
	ids.C = b.AddNodes(m)
	ids.T = b.AddNodes(m)
	ids.W = b.AddNodes(m)
	ids.E = b.AddNodes(m)
	for i := 0; i < m; i++ {
		for _, u := range ids.S {
			b.AddEdge(u, ids.C[i])
			b.AddEdge(u, ids.T[i])
		}
		if i > 0 {
			b.AddEdge(ids.C[i-1], ids.C[i])
			b.AddEdge(ids.C[i-1], ids.T[i])
			b.AddEdge(ids.W[i-1], ids.W[i])
		}
		b.AddEdge(ids.C[i], ids.T[i])
		b.AddEdge(ids.T[i], ids.W[i])
		b.AddEdge(ids.E[i], ids.W[i])
	}
	return b.MustBuild(), ids
}

// TrapDeltaIDs locates the parts of the greedy Δ_in-factor trap.
type TrapDeltaIDs struct {
	G    []dag.NodeID   // magnet group, d nodes
	M    []dag.NodeID   // magnet chain m_1…m_len (preds: m_{i-1} ∪ G)
	F    [][]dag.NodeID // F[i]: block-i fresh input group, d nodes
	Hub  []dag.NodeID   // hub_i: preds F[i]
	Cons [][]dag.NodeID // Cons[i]: the q consumers of hub_i (chained pairwise)
}

// GreedyTrapDelta builds a Lemma 4-style adversarial family exercising
// the first bullet (a ≈ Δ_in factor): blocks of a d-input hub with q
// chained consumers, plus a "magnet" chain whose every node has d+1
// potentially-red in-neighbors. A count-greedy processor at the moment it
// finishes a consumer always sees the next magnet node with more red
// in-neighbors (d+1) than the next consumer (2), so it alternates into
// the magnet; with fast memory r = d+3 the magnet's group G and the
// block's hub cannot be resident simultaneously, so each return to the
// block forces the hub's d-node input group plus the hub to be recomputed
// (or reloaded), costing ≈ d+1 per consumer versus the optimum's 1.
//
// Sized so both greedy and the optimum compute n ± O(1) nodes when the
// trap fails to spring; the experiment measures the realized ratio.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func GreedyTrapDelta(d, q, blocks int) (*dag.Graph, *TrapDeltaIDs) {
	if d < 2 || q < 1 || blocks < 1 {
		panic(fmt.Sprintf("gen: GreedyTrapDelta(d=%d, q=%d, blocks=%d): need d ≥ 2, q ≥ 1, blocks ≥ 1", d, q, blocks))
	}
	b := dag.NewBuilder(fmt.Sprintf("trapdelta-d%d-q%d-b%d", d, q, blocks))
	ids := &TrapDeltaIDs{}
	for i := 0; i < d; i++ {
		ids.G = append(ids.G, b.AddNode())
	}
	magnetLen := blocks * q
	ids.M = b.AddNodes(magnetLen)
	for i, v := range ids.M {
		if i > 0 {
			b.AddEdge(ids.M[i-1], v)
		}
		for _, u := range ids.G {
			b.AddEdge(u, v)
		}
	}
	for blk := 0; blk < blocks; blk++ {
		f := b.AddNodes(d)
		hub := b.AddNode()
		for _, u := range f {
			b.AddEdge(u, hub)
		}
		cons := b.AddNodes(q)
		for i, c := range cons {
			b.AddEdge(hub, c)
			if i > 0 {
				b.AddEdge(cons[i-1], c)
			}
		}
		ids.F = append(ids.F, f)
		ids.Hub = append(ids.Hub, hub)
		ids.Cons = append(ids.Cons, cons)
	}
	return b.MustBuild(), ids
}
