package gen

import (
	"fmt"

	"repro/internal/dag"
)

// ZipperIDs locates the parts of a Zipper gadget inside the built graph.
type ZipperIDs struct {
	S1, S2 []dag.NodeID   // the two input groups, d nodes each
	Chain  []dag.NodeID   // the main chain v_1 … v_n0
	Tails  [][]dag.NodeID // Tails[i] is the anti-recompute chain feeding input i (S1 then S2); nil if tailLen == 0
}

// Zipper builds the zipper gadget of Figure 2: two input groups S1, S2 of
// d nodes each and a main chain of chainLen nodes. Chain node v_i depends
// on v_{i−1} and on every node of S1 when i is odd, S2 when i is even
// (1-indexed). With tailLen > 0, each input node u additionally sits at
// the end of a fresh chain of tailLen nodes, making recomputation of u
// cost tailLen+1 — choosing tailLen = 2g renders recomputation suboptimal
// versus one store + one load (cost ≤ 2g), as in the paper.
//
// Δ_in is d+1 (chain nodes beyond the first), so any valid pebbling needs
// r ≥ d+2.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func Zipper(d, chainLen, tailLen int) (*dag.Graph, *ZipperIDs) {
	if d < 1 || chainLen < 1 {
		panic(fmt.Sprintf("gen: Zipper(d=%d, chainLen=%d): parameters must be ≥ 1", d, chainLen))
	}
	b := dag.NewBuilder(fmt.Sprintf("zipper-d%d-n%d-t%d", d, chainLen, tailLen))
	ids := &ZipperIDs{}
	addInput := func() dag.NodeID {
		if tailLen == 0 {
			return b.AddNode()
		}
		tail := b.AddNewChain(tailLen)
		u := b.AddNode()
		b.AddEdge(tail[len(tail)-1], u)
		ids.Tails = append(ids.Tails, tail)
		return u
	}
	for i := 0; i < d; i++ {
		ids.S1 = append(ids.S1, addInput())
	}
	for i := 0; i < d; i++ {
		ids.S2 = append(ids.S2, addInput())
	}
	ids.Chain = b.AddNodes(chainLen)
	for i, v := range ids.Chain {
		if i > 0 {
			b.AddEdge(ids.Chain[i-1], v)
		}
		group := ids.S1
		if (i+1)%2 == 0 {
			group = ids.S2
		}
		for _, u := range group {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild(), ids
}

// FanChainIDs locates the parts of a FanChain gadget.
type FanChainIDs struct {
	S     []dag.NodeID   // the shared input group, d nodes
	Chain []dag.NodeID   // the main chain
	Tails [][]dag.NodeID // anti-recompute tails (nil if tailLen == 0)
}

// FanChain builds the single-group variant of the zipper used for the
// fair-comparison blowup (Lemma 8): one input group S of d nodes feeding
// every node of a chain of chainLen nodes (chain node i also depends on
// chain node i−1). Δ_in = d+1; a single processor with r = d+2 pebbles it
// with zero I/O by parking S in fast memory, whereas processors with
// r < d+2 must stream most of S back in for every chain node.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func FanChain(d, chainLen, tailLen int) (*dag.Graph, *FanChainIDs) {
	if d < 1 || chainLen < 1 {
		panic(fmt.Sprintf("gen: FanChain(d=%d, chainLen=%d): parameters must be ≥ 1", d, chainLen))
	}
	b := dag.NewBuilder(fmt.Sprintf("fanchain-d%d-n%d-t%d", d, chainLen, tailLen))
	ids := &FanChainIDs{}
	for i := 0; i < d; i++ {
		if tailLen == 0 {
			ids.S = append(ids.S, b.AddNode())
			continue
		}
		tail := b.AddNewChain(tailLen)
		u := b.AddNode()
		b.AddEdge(tail[len(tail)-1], u)
		ids.Tails = append(ids.Tails, tail)
		ids.S = append(ids.S, u)
	}
	ids.Chain = b.AddNodes(chainLen)
	for i, v := range ids.Chain {
		if i > 0 {
			b.AddEdge(ids.Chain[i-1], v)
		}
		for _, u := range ids.S {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild(), ids
}

// MultiFanChainIDs locates the independent FanChain copies built by
// MultiFanChain.
type MultiFanChainIDs struct {
	Copies []FanChainIDs
}

// MultiFanChain builds c independent FanChain(d, chainLen, tailLen)
// copies in one graph. With c = 2 this is the non-monotonicity gadget of
// Lemma 9: a single processor with r0 = d+2 serializes both chains with
// zero I/O; two processors with r0/2 each... cannot hold a group, but two
// processors with r = d+2 (or one group each in the fair split of a
// doubled r0) pebble the two chains in parallel at half the cost; four
// processors with r0/4 each drown in per-node I/O.
func MultiFanChain(c, d, chainLen, tailLen int) (*dag.Graph, *MultiFanChainIDs) {
	b := dag.NewBuilder(fmt.Sprintf("multifan-%dx(d%d-n%d)", c, d, chainLen))
	ids := &MultiFanChainIDs{}
	for copyIdx := 0; copyIdx < c; copyIdx++ {
		fc := FanChainIDs{}
		for i := 0; i < d; i++ {
			if tailLen == 0 {
				fc.S = append(fc.S, b.AddNode())
				continue
			}
			tail := b.AddNewChain(tailLen)
			u := b.AddNode()
			b.AddEdge(tail[len(tail)-1], u)
			fc.Tails = append(fc.Tails, tail)
			fc.S = append(fc.S, u)
		}
		fc.Chain = b.AddNodes(chainLen)
		for i, v := range fc.Chain {
			if i > 0 {
				b.AddEdge(fc.Chain[i-1], v)
			}
			for _, u := range fc.S {
				b.AddEdge(u, v)
			}
		}
		ids.Copies = append(ids.Copies, fc)
	}
	return b.MustBuild(), ids
}
