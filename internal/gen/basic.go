// Package gen builds the DAG families used throughout the paper and its
// experiments: elementary families (chains, trees, layered and random
// DAGs, grids, pyramids), classic workloads with known I/O lower bounds
// (FFT butterfly, dense matrix multiplication), and the paper's proof
// gadgets (the zipper of Figure 2 and its relatives, the fair-comparison
// blowup gadget, the non-monotonicity gadget, the I/O-jump gadgets of
// Section 5, and greedy trap families for Lemma 4).
//
// All generators are deterministic: random families take an explicit seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
)

// Chain returns a path of n nodes: 0 → 1 → … → n−1.
func Chain(n int) *dag.Graph {
	checkNodes(fmt.Sprintf("Chain(%d)", n), int64(n))
	b := dag.NewBuilder(fmt.Sprintf("chain-%d", n))
	b.AddNewChain(n)
	return b.MustBuild()
}

// IndependentChains returns k disjoint chains of length each — the DAG
// showing tightness of Lemma 7 (perfect factor-k parallel speedup).
func IndependentChains(k, length int) *dag.Graph {
	checkNodes(fmt.Sprintf("IndependentChains(%d,%d)", k, length), satMul(int64(k), int64(length)))
	b := dag.NewBuilder(fmt.Sprintf("chains-%dx%d", k, length))
	for i := 0; i < k; i++ {
		b.AddNewChain(length)
	}
	return b.MustBuild()
}

// BinaryInTree returns a complete binary in-tree of the given depth:
// 2^depth leaves (sources) reducing pairwise to a single sink root.
// depth 0 is a single node. Every out-degree is ≤ 1, so the graph lies in
// the in-tree class of Lemma 2. A negative or over-2³¹ depth panics — a
// programmer error at the call site.
func BinaryInTree(depth int) *dag.Graph {
	if depth < 0 {
		panic(fmt.Sprintf("gen: BinaryInTree(%d): need depth ≥ 0", depth))
	}
	nodes := int64(math.MaxInt64)
	if depth <= 61 {
		nodes = int64(1)<<uint(depth+1) - 1
	}
	checkNodes(fmt.Sprintf("BinaryInTree(%d)", depth), nodes)
	b := dag.NewBuilder(fmt.Sprintf("intree-%d", depth))
	// Build level by level from the leaves down to the root.
	prev := b.AddNodes(1 << depth)
	for l := depth - 1; l >= 0; l-- {
		cur := b.AddNodes(1 << l)
		for i, v := range cur {
			b.AddEdge(prev[2*i], v)
			b.AddEdge(prev[2*i+1], v)
		}
		prev = cur
	}
	return b.MustBuild()
}

// BinaryOutTree returns a complete binary out-tree: one source fanning out
// to 2^depth sinks.
func BinaryOutTree(depth int) *dag.Graph {
	return dag.Reverse(fmt.Sprintf("outtree-%d", depth), BinaryInTree(depth))
}

// TwoLayerRandom returns a random bipartite DAG with the given numbers of
// sources and sinks; each (source, sink) edge is present independently
// with probability p. Every node path has length ≤ 1, so the graph lies in
// the 2-layer class of Lemma 2. Isolated sinks keep in-degree 0.
func TwoLayerRandom(sources, sinks int, p float64, seed int64) *dag.Graph {
	checkNodes(fmt.Sprintf("TwoLayerRandom(%d,%d)", sources, sinks), satAdd(int64(sources), int64(sinks)))
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("twolayer-%dx%d", sources, sinks))
	src := b.AddNodes(sources)
	snk := b.AddNodes(sinks)
	for _, u := range src {
		for _, v := range snk {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// LayeredRandom returns a DAG with the given layer widths; each node in
// layer i+1 draws indeg predecessors uniformly from layer i (capped at the
// layer width).
func LayeredRandom(widths []int, indeg int, seed int64) *dag.Graph {
	var total int64
	for _, w := range widths {
		total = satAdd(total, int64(w))
	}
	checkNodes(fmt.Sprintf("LayeredRandom(%v layers)", len(widths)), total)
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder(fmt.Sprintf("layered-%d", len(widths)))
	var prev []dag.NodeID
	for _, w := range widths {
		cur := b.AddNodes(w)
		if prev != nil {
			for _, v := range cur {
				d := indeg
				if d > len(prev) {
					d = len(prev)
				}
				for _, pi := range rng.Perm(len(prev))[:d] {
					b.AddEdge(prev[pi], v)
				}
			}
		}
		prev = cur
	}
	return b.MustBuild()
}

// RandomDAG returns an n-node DAG where each forward pair (u < v) is an
// edge with probability p, then prunes in-degrees above maxIn by keeping a
// random subset of maxIn predecessors.
func RandomDAG(n int, p float64, maxIn int, seed int64) *dag.Graph {
	checkNodes(fmt.Sprintf("RandomDAG(%d)", n), int64(n))
	rng := rand.New(rand.NewSource(seed))
	preds := make([][]dag.NodeID, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				preds[v] = append(preds[v], dag.NodeID(u))
			}
		}
	}
	b := dag.NewBuilder(fmt.Sprintf("random-%d", n))
	b.AddNodes(n)
	for v := 0; v < n; v++ {
		ps := preds[v]
		if len(ps) > maxIn {
			rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
			ps = ps[:maxIn]
		}
		for _, u := range ps {
			b.AddEdge(u, dag.NodeID(v))
		}
	}
	return b.MustBuild()
}

// Grid2D returns the rows×cols dependency grid of a 2-point stencil:
// node (i,j) depends on (i−1,j) and (i,j−1). Node (0,0) is the only
// source; node (rows−1, cols−1) is the only sink.
func Grid2D(rows, cols int) *dag.Graph {
	checkNodes(fmt.Sprintf("Grid2D(%d,%d)", rows, cols), satMul(int64(rows), int64(cols)))
	b := dag.NewBuilder(fmt.Sprintf("grid-%dx%d", rows, cols))
	ids := make([][]dag.NodeID, rows)
	for i := range ids {
		ids[i] = b.AddNodes(cols)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i > 0 {
				b.AddEdge(ids[i-1][j], ids[i][j])
			}
			if j > 0 {
				b.AddEdge(ids[i][j-1], ids[i][j])
			}
		}
	}
	return b.MustBuild()
}

// Pyramid returns the 2-pyramid of the given height: level 0 has height+1
// nodes, each higher level one fewer; node (l+1, i) depends on (l, i) and
// (l, i+1). The apex is the unique sink. Pyramids are the classic
// time-memory trade-off family for pebbling ([31] in the paper).
func Pyramid(height int) *dag.Graph {
	checkNodes(fmt.Sprintf("Pyramid(%d)", height), satMul(int64(height)+1, int64(height)+2)/2)
	b := dag.NewBuilder(fmt.Sprintf("pyramid-%d", height))
	prev := b.AddNodes(height + 1)
	for l := 1; l <= height; l++ {
		cur := b.AddNodes(height + 1 - l)
		for i, v := range cur {
			b.AddEdge(prev[i], v)
			b.AddEdge(prev[i+1], v)
		}
		prev = cur
	}
	return b.MustBuild()
}
