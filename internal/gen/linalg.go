package gen

import (
	"fmt"
	"math"

	"repro/internal/dag"
)

// LU returns the dependency DAG of dense LU factorization without
// pivoting on an n×n matrix, at the granularity of individual updates:
//
//   - n² source nodes for the input entries A[i][j];
//   - for each elimination step k < min(i, j, …): the multiplier
//     L[i][k] = A'[i][k] / A'[k][k] (in-degree 2) and the update
//     A_{k+1}[i][j] = A_k[i][j] − L[i][k]·A_k[k][j] (in-degree 3);
//
// The trailing versions of each entry form the output sinks. The DAG has
// Θ(n³) nodes and the long dependency chains characteristic of the
// right-looking algorithm, giving a workload with far less level
// parallelism than MatMul.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func LU(n int) *dag.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: LU(%d): need n ≥ 1", n))
	}
	// n² sources + per step k: (n−1−k) multipliers and (n−1−k)² updates.
	n64 := int64(n)
	nodes := satMul(n64, n64)
	nodes = satAdd(nodes, satMul(n64-1, n64)/2)                  // multipliers: Σ m
	nodes = satAdd(nodes, satMul(satMul(n64-1, n64), 2*n64-1)/6) // updates: Σ m²
	checkNodes(fmt.Sprintf("LU(%d)", n), nodes)
	b := dag.NewBuilder(fmt.Sprintf("lu-%d", n))
	// cur[i][j] is the current version of entry (i, j).
	cur := make([][]dag.NodeID, n)
	for i := range cur {
		cur[i] = b.AddNodes(n)
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			// L[i][k] from A'[i][k] and the pivot A'[k][k].
			l := b.AddNode()
			b.AddEdge(cur[i][k], l)
			b.AddEdge(cur[k][k], l)
			cur[i][k] = l
			for j := k + 1; j < n; j++ {
				u := b.AddNode()
				b.AddEdge(cur[i][j], u) // previous value
				b.AddEdge(l, u)         // multiplier
				b.AddEdge(cur[k][j], u) // pivot row entry
				cur[i][j] = u
			}
		}
	}
	return b.MustBuild()
}

// Wavefront returns the dependency DAG of a length-steps sweep over a
// width-wide 3-point stencil: cell (t, i) depends on (t−1, i−1), (t−1, i)
// and (t−1, i+1) (clamped at the borders) — the classic time-skewing /
// trapezoidal-tiling workload of stencil computations.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func Wavefront(width, steps int) *dag.Graph {
	if width < 1 || steps < 1 {
		panic(fmt.Sprintf("gen: Wavefront(%d,%d): need ≥ 1", width, steps))
	}
	checkNodes(fmt.Sprintf("Wavefront(%d,%d)", width, steps), satMul(int64(width), int64(steps)))
	b := dag.NewBuilder(fmt.Sprintf("wavefront-%dx%d", width, steps))
	prev := b.AddNodes(width)
	for t := 1; t < steps; t++ {
		cur := b.AddNodes(width)
		for i := 0; i < width; i++ {
			for _, j := range []int{i - 1, i, i + 1} {
				if j >= 0 && j < width {
					b.AddEdge(prev[j], cur[i])
				}
			}
		}
		prev = cur
	}
	return b.MustBuild()
}

// ReductionTrees returns f independent complete binary in-trees of the
// given depth rooted into a final combining chain — the shape of a
// multi-way parallel reduction followed by a sequential merge.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func ReductionTrees(f, depth int) *dag.Graph {
	if f < 1 || depth < 0 {
		panic(fmt.Sprintf("gen: ReductionTrees(%d,%d): invalid", f, depth))
	}
	treeNodes := int64(math.MaxInt64)
	if depth <= 61 {
		treeNodes = int64(1)<<uint(depth+1) - 1
	}
	checkNodes(fmt.Sprintf("ReductionTrees(%d,%d)", f, depth),
		satAdd(satMul(int64(f), treeNodes), int64(f)))
	trees := make([]*dag.Graph, f)
	for i := range trees {
		trees[i] = BinaryInTree(depth)
	}
	u, off := dag.Union(fmt.Sprintf("reduce-%dx%d", f, depth), trees...)
	b := dag.NewBuilder(u.Name())
	b.AddNodes(u.N())
	for v := 0; v < u.N(); v++ {
		for _, w := range u.Succ(dag.NodeID(v)) {
			b.AddEdge(dag.NodeID(v), w)
		}
	}
	// Roots (each tree's unique sink) feed a combining chain.
	var prev dag.NodeID = -1
	for i := 0; i < f; i++ {
		root := off[i] + trees[i].Sinks()[0]
		c := b.AddNode()
		b.AddEdge(root, c)
		if prev >= 0 {
			b.AddEdge(prev, c)
		}
		prev = c
	}
	return b.MustBuild()
}
