package gen

import (
	"fmt"

	"repro/internal/dag"
)

// CyclicIDs locates the parts of a CyclicFanChain gadget.
type CyclicIDs struct {
	Pool  []dag.NodeID // the input pool, D nodes
	Chain []dag.NodeID // the main chain
}

// CyclicFanChain builds the fair-comparison blowup gadget used for
// Lemma 8: an input pool of D source nodes and a main chain where chain
// node i (0-indexed) depends on the previous chain node and on the δ pool
// nodes Pool[(i·stride + j) mod D] for j < δ.
//
// Δ_in = δ+1, so any valid pebbling needs r ≥ δ+2 — crucially independent
// of D. A single processor with r ≥ D+2 parks the whole pool in fast
// memory and pays zero I/O; a processor with r = (D+2)/k can keep only a
// ρ = r−δ−2 pool slice resident and must stream in the remaining
// ≈ δ·(1−ρ/D) inputs of every chain node, which for ρ ≈ D/k approaches
// the (k−1)/k·g·(Δ_in−1) per-node I/O of the lemma.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func CyclicFanChain(D, delta, chainLen, stride int) (*dag.Graph, *CyclicIDs) {
	if D < 1 || delta < 1 || delta > D || chainLen < 1 || stride < 1 {
		panic(fmt.Sprintf("gen: CyclicFanChain(D=%d, δ=%d, n=%d, stride=%d): invalid parameters",
			D, delta, chainLen, stride))
	}
	b := dag.NewBuilder(fmt.Sprintf("cyclic-D%d-δ%d-n%d-s%d", D, delta, chainLen, stride))
	ids := &CyclicIDs{Pool: b.AddNodes(D)}
	ids.Chain = b.AddNodes(chainLen)
	for i, v := range ids.Chain {
		if i > 0 {
			b.AddEdge(ids.Chain[i-1], v)
		}
		for j := 0; j < delta; j++ {
			b.AddEdge(ids.Pool[(i*stride+j)%D], v)
		}
	}
	return b.MustBuild(), ids
}

// Subset returns the pool indices chain node i depends on.
func (c *CyclicIDs) Subset(i, delta, stride int) []int {
	D := len(c.Pool)
	out := make([]int, delta)
	for j := 0; j < delta; j++ {
		out[j] = (i*stride + j) % D
	}
	return out
}

// MultiCyclicIDs locates the copies built by MultiCyclicFanChain.
type MultiCyclicIDs struct {
	Copies []CyclicIDs
}

// MultiCyclicFanChain builds c disjoint CyclicFanChain copies in one
// graph — the non-monotonicity gadget for Lemma 9 with c = 2: in the fair
// comparison with r₀ = 2(D+2), one processor serializes both copies with
// zero I/O (cost ≈ n), two processors take one copy each (cost ≈ n/2),
// and four processors have r₀/4 = (D+2)/2 < D+2, so both active
// processors drown in per-node pool streaming and the optimum rises
// above the two-processor cost.
//
// Panics on invalid parameters — a programmer error at the call site;
// spec.ParseDAG converts these panics into errors for user-supplied
// DAG spec strings.
func MultiCyclicFanChain(c, D, delta, chainLen, stride int) (*dag.Graph, *MultiCyclicIDs) {
	if c < 1 {
		panic("gen: MultiCyclicFanChain: need c ≥ 1")
	}
	b := dag.NewBuilder(fmt.Sprintf("multicyclic-%dx(D%d-δ%d-n%d)", c, D, delta, chainLen))
	ids := &MultiCyclicIDs{}
	for copyIdx := 0; copyIdx < c; copyIdx++ {
		one := CyclicIDs{Pool: b.AddNodes(D)}
		one.Chain = b.AddNodes(chainLen)
		for i, v := range one.Chain {
			if i > 0 {
				b.AddEdge(one.Chain[i-1], v)
			}
			for j := 0; j < delta; j++ {
				b.AddEdge(one.Pool[(i*stride+j)%D], v)
			}
		}
		ids.Copies = append(ids.Copies, one)
	}
	return b.MustBuild(), ids
}
