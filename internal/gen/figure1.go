package gen

import "repro/internal/dag"

// Fig1IDs names the nodes of the Figure 1 example DAG.
type Fig1IDs struct {
	// Left subtree: V1,V2 → V3; U1,U2 → V4; V3,V4 → V5.
	V1, V2, V3, U1, U2, V4, V5 dag.NodeID
	// Right subtree (mirror): W1,W2 → X3; Y1,Y2 → X4; X3,X4 → V6.
	W1, W2, X3, Y1, Y2, X4, V6 dag.NodeID
	// Root: V5,V6 → V7.
	V7 dag.NodeID
}

// Figure1 builds the running example DAG of Figure 1: two mirrored binary
// subtrees of depth 2 (roots v5 and v6) joined at the sink v7; 15 nodes.
func Figure1() (*dag.Graph, *Fig1IDs) {
	b := dag.NewBuilder("figure1")
	ids := &Fig1IDs{}
	sub := func(names [7]string) (n1, n2, n3, n4, n5, n6, n7 dag.NodeID) {
		n1 = b.AddLabeledNode(names[0])
		n2 = b.AddLabeledNode(names[1])
		n3 = b.AddLabeledNode(names[2])
		b.AddEdge(n1, n3)
		b.AddEdge(n2, n3)
		n4 = b.AddLabeledNode(names[3])
		n5 = b.AddLabeledNode(names[4])
		n6 = b.AddLabeledNode(names[5])
		b.AddEdge(n4, n6)
		b.AddEdge(n5, n6)
		n7 = b.AddLabeledNode(names[6])
		b.AddEdge(n3, n7)
		b.AddEdge(n6, n7)
		return
	}
	ids.V1, ids.V2, ids.V3, ids.U1, ids.U2, ids.V4, ids.V5 =
		sub([7]string{"v1", "v2", "v3", "u1", "u2", "v4", "v5"})
	ids.W1, ids.W2, ids.X3, ids.Y1, ids.Y2, ids.X4, ids.V6 =
		sub([7]string{"w1", "w2", "x3", "y1", "y2", "x4", "v6"})
	ids.V7 = b.AddLabeledNode("v7")
	b.AddEdge(ids.V5, ids.V7)
	b.AddEdge(ids.V6, ids.V7)
	return b.MustBuild(), ids
}
