package hashtab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTableMatchesRefRandomOps drives a Table and the map-backed Ref
// oracle with the same random operation sequence and requires identical
// answers throughout — the same oracle pattern the bitset package uses.
func TestTableMatchesRefRandomOps(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wpk := 1 + rng.Intn(4)
		tab := New(wpk, rng.Intn(8))
		ref := NewRef(wpk)
		// A small key universe forces plenty of duplicate inserts.
		universe := make([][]uint64, 40)
		for i := range universe {
			k := make([]uint64, wpk)
			for j := range k {
				k[j] = rng.Uint64() >> uint(rng.Intn(64)) // mixed sparsity
			}
			universe[i] = k
		}
		for op := 0; op < 400; op++ {
			key := universe[rng.Intn(len(universe))]
			if rng.Intn(3) == 0 {
				ti, tok := tab.Find(key)
				ri, rok := ref.Find(key)
				if ti != ri || tok != rok {
					t.Logf("seed %d: Find mismatch: table (%d,%v) ref (%d,%v)", seed, ti, tok, ri, rok)
					return false
				}
			} else {
				ti, te := tab.Insert(key)
				ri, re := ref.Insert(key)
				if ti != ri || te != re {
					t.Logf("seed %d: Insert mismatch: table (%d,%v) ref (%d,%v)", seed, ti, te, ri, re)
					return false
				}
			}
			if tab.Len() != ref.Len() {
				t.Logf("seed %d: Len mismatch %d vs %d", seed, tab.Len(), ref.Len())
				return false
			}
		}
		// Every stored key readable back, identically.
		for i := 0; i < tab.Len(); i++ {
			tk, rk := tab.Key(i), ref.Key(i)
			for j := range tk {
				if tk[j] != rk[j] {
					t.Logf("seed %d: Key(%d) word %d mismatch", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTableGrowthAcrossResizes inserts far past the initial capacity so
// several rehashes happen, then verifies every key is still findable at
// its original index and re-insertion reports existence.
func TestTableGrowthAcrossResizes(t *testing.T) {
	const n = 10_000
	tab := New(2, 0) // minimal initial size: forces ~10 rehash rounds
	rng := rand.New(rand.NewSource(7))
	keys := make([][]uint64, n)
	for i := range keys {
		keys[i] = []uint64{rng.Uint64(), uint64(i)}
		idx, existed := tab.Insert(keys[i])
		if existed || idx != i {
			t.Fatalf("insert %d: got (%d, %v)", i, idx, existed)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i, k := range keys {
		idx, ok := tab.Find(k)
		if !ok || idx != i {
			t.Fatalf("post-growth Find %d: got (%d, %v)", i, idx, ok)
		}
		idx, existed := tab.Insert(k)
		if !existed || idx != i {
			t.Fatalf("post-growth re-Insert %d: got (%d, %v)", i, idx, existed)
		}
	}
}

// TestTableAdversarialLowEntropyKeys uses keys that differ only in high
// bits and only in one word — the worst case for a plain FNV slot index —
// and checks correctness survives the clustering.
func TestTableAdversarialLowEntropyKeys(t *testing.T) {
	tab := New(3, 4)
	ref := NewRef(3)
	for i := 0; i < 2000; i++ {
		key := []uint64{0, uint64(i) << 52, 0}
		ti, te := tab.Insert(key)
		ri, re := ref.Insert(key)
		if ti != ri || te != re {
			t.Fatalf("i=%d: table (%d,%v) ref (%d,%v)", i, ti, te, ri, re)
		}
	}
	for i := 0; i < 2000; i++ {
		key := []uint64{0, uint64(i) << 52, 0}
		if idx, ok := tab.Find(key); !ok || idx != i {
			t.Fatalf("find %d: got (%d,%v)", i, idx, ok)
		}
	}
}

func TestTableReset(t *testing.T) {
	tab := New(1, 8)
	for i := 0; i < 100; i++ {
		tab.Insert([]uint64{uint64(i)})
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	if _, ok := tab.Find([]uint64{5}); ok {
		t.Fatal("key survived Reset")
	}
	idx, existed := tab.Insert([]uint64{5})
	if existed || idx != 0 {
		t.Fatalf("first insert after Reset: (%d, %v)", idx, existed)
	}
}

func TestTableZeroAllocOnHit(t *testing.T) {
	tab := New(2, 16)
	key := []uint64{3, 9}
	tab.Insert(key)
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := tab.Find(key); !ok {
			t.Fatal("lost key")
		}
		if _, existed := tab.Insert(key); !existed {
			t.Fatal("duplicate insert not detected")
		}
	})
	if allocs != 0 {
		t.Fatalf("Find/Insert on present key allocated %v times per run", allocs)
	}
}

func TestHashDistinguishesWordOrder(t *testing.T) {
	a := Hash([]uint64{1, 2})
	b := Hash([]uint64{2, 1})
	if a == b {
		t.Fatal("hash ignores word order")
	}
	if Hash([]uint64{1, 2}) != a {
		t.Fatal("hash not deterministic")
	}
}

func TestTablePanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on key width mismatch")
		}
	}()
	New(2, 0).Insert([]uint64{1})
}
