package hashtab

// Ref is a map[string]-backed reference implementation of Table's exact
// contract: insert-only, fixed key width, dense stable indices. It exists
// as the correctness oracle — property tests drive a Table and a Ref with
// the same operation sequence and require identical answers, and the
// exact solvers run against either through the same seam so end-to-end
// results can be compared byte for byte. Not built under any tag: the
// oracle must always compile so equivalence tests run in every CI pass.
type Ref struct {
	wpk  int
	m    map[string]int
	keys []uint64
}

// NewRef returns an empty reference table for keys of wordsPerKey words.
// A non-positive width panics — a programmer error, mirroring New.
func NewRef(wordsPerKey int) *Ref {
	if wordsPerKey <= 0 {
		panic("hashtab: wordsPerKey must be positive")
	}
	return &Ref{wpk: wordsPerKey, m: make(map[string]int)}
}

// stringKey panics on a key width mismatch — a programmer error,
// mirroring Table.checkWidth.
func (r *Ref) stringKey(key []uint64) string {
	if len(key) != r.wpk {
		panic("hashtab: key width mismatch")
	}
	buf := make([]byte, 0, 8*len(key))
	for _, w := range key {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(buf)
}

// Len returns the number of distinct keys inserted.
func (r *Ref) Len() int { return len(r.keys) / r.wpk }

// WordsPerKey returns the fixed key width in words.
func (r *Ref) WordsPerKey() int { return r.wpk }

// Key returns the stored words of key i.
func (r *Ref) Key(i int) []uint64 {
	return r.keys[i*r.wpk : (i+1)*r.wpk : (i+1)*r.wpk]
}

// Find returns the index of key, or (-1, false) when absent.
func (r *Ref) Find(key []uint64) (int, bool) {
	idx, ok := r.m[r.stringKey(key)]
	if !ok {
		return -1, false
	}
	return idx, true
}

// Insert returns the index of key, inserting it if absent.
func (r *Ref) Insert(key []uint64) (idx int, existed bool) {
	s := r.stringKey(key)
	if i, ok := r.m[s]; ok {
		return i, true
	}
	n := r.Len()
	r.m[s] = n
	r.keys = append(r.keys, key...)
	return n, false
}

// Reset drops every key.
func (r *Ref) Reset() {
	r.m = make(map[string]int)
	r.keys = r.keys[:0]
}

// Index is the seam shared by Table and Ref: the operations the solvers
// need from a state-identity table. Both implementations satisfy it, so
// a search can be run twice — once per implementation — and its results
// compared exactly.
type Index interface {
	Len() int
	WordsPerKey() int
	Key(i int) []uint64
	Find(key []uint64) (int, bool)
	Insert(key []uint64) (idx int, existed bool)
	Reset()
}

var (
	_ Index = (*Table)(nil)
	_ Index = (*Ref)(nil)
)
