package hashtab

import "testing"

// TestShardOfRange checks that every hash maps into [0, n) for shard
// counts the solver actually uses, including the extremes of the hash
// space.
func TestShardOfRange(t *testing.T) {
	hashes := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 0x8000000000000000}
	for i := 0; i < 1000; i++ {
		hashes = append(hashes, Hash([]uint64{uint64(i), uint64(i * 7)}))
	}
	for _, n := range []int{1, 2, 3, 4, 7, 16, 64} {
		for _, h := range hashes {
			s := ShardOf(h, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%#x, %d) = %d, out of range", h, n, s)
			}
		}
	}
}

// TestShardOfDeterministic: the partition must be a pure function of
// (hash, n) — the solver's cross-worker determinism rests on it.
func TestShardOfDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		h := Hash([]uint64{uint64(i)})
		for _, n := range []int{2, 4, 7} {
			if ShardOf(h, n) != ShardOf(h, n) {
				t.Fatalf("ShardOf(%#x, %d) not deterministic", h, n)
			}
		}
	}
}

// TestShardOfSpreads: with a well-mixed hash the multiply-shift
// reduction should use every shard and stay within loose balance. Not a
// statistical test — a sanity check that the reduction reads the high
// bits (a naive int(h) % n truncation bug would fail the coverage
// requirement for small n with low-entropy high bits).
func TestShardOfSpreads(t *testing.T) {
	const n = 7
	counts := make([]int, n)
	const samples = 7000
	for i := 0; i < samples; i++ {
		counts[ShardOf(Hash([]uint64{uint64(i), uint64(i) << 32}), n)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d never hit over %d samples", s, samples)
		}
		if c < samples/n/2 || c > samples/n*2 {
			t.Errorf("shard %d count %d far from uniform %d", s, c, samples/n)
		}
	}
}
