// Package hashtab provides an open-addressing hash table keyed by
// fixed-width []uint64 words, the state-identity structure of the exact
// solvers. A packed pebbling configuration (or computed-set bitset) is a
// short run of words; hashing those words directly removes the per-state
// string-key allocation a map[string] requires and keeps every key in one
// contiguous arena.
//
// The table is insert-only (no deletion, hence no tombstones): search
// memoization and dist maps only ever grow. Each inserted key receives a
// dense, stable index 0,1,2,…, so callers keep their values in plain
// slices indexed by the returned handle — the table itself stores no
// values. The map-backed Ref type implements the identical contract and
// serves as the property-test oracle.
package hashtab

import "math/bits"

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ShardOf partitions a 64-bit hash over n shards with the multiply-shift
// reduction: the high 64 bits of h·n are uniform over [0, n) for a
// well-mixed h, with no modulo bias and no division. The sharded exact
// solver assigns state ownership with it; since the result is a pure
// function of (h, n), the partition is identical across runs — the
// property the solver's cross-worker determinism rests on. n must be
// positive; n == 1 always yields shard 0.
//
//mpp:hotpath
func ShardOf(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

// Hash returns a 64-bit hash of the key words: FNV-1a over each word,
// finished with a splitmix64-style avalanche so that keys differing only
// in high bits still spread over small power-of-two slot arrays.
//
//mpp:hotpath
func Hash(key []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, w := range key {
		h ^= w
		h *= fnvPrime
	}
	// Avalanche finisher (splitmix64): FNV alone mixes low bits poorly
	// for word-granular input; the masked slot index needs every input
	// bit to reach the low bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Table maps fixed-width []uint64 keys to dense indices via linear-probe
// open addressing. The zero value is not usable; call New.
type Table struct {
	wpk   int      // words per key
	keys  []uint64 // arena: key i occupies keys[i*wpk : (i+1)*wpk]
	slots []int32  // slot array: -1 = empty, else key index
	mask  uint64   // len(slots)-1, len(slots) a power of two
	limit int      // grow when Len() reaches this (¾ load)
}

// New returns an empty table for keys of wordsPerKey words, pre-sized to
// hold about capacityHint keys without growing. A non-positive width
// panics — a programmer error; every caller derives it from a validated
// instance.
func New(wordsPerKey, capacityHint int) *Table {
	if wordsPerKey <= 0 {
		panic("hashtab: wordsPerKey must be positive")
	}
	slots := 16
	for slots*3/4 < capacityHint {
		slots *= 2
	}
	t := &Table{wpk: wordsPerKey}
	t.initSlots(slots)
	if capacityHint > 0 {
		t.keys = make([]uint64, 0, capacityHint*wordsPerKey)
	}
	return t
}

func (t *Table) initSlots(n int) {
	t.slots = make([]int32, n)
	for i := range t.slots {
		t.slots[i] = -1
	}
	t.mask = uint64(n - 1)
	t.limit = n * 3 / 4
}

// Len returns the number of distinct keys inserted.
func (t *Table) Len() int { return len(t.keys) / t.wpk }

// WordsPerKey returns the fixed key width in words.
func (t *Table) WordsPerKey() int { return t.wpk }

// Key returns the stored words of key i as a view into the arena. The
// view is invalidated by the next Insert (the arena may move); callers
// needing the key across inserts must copy it.
func (t *Table) Key(i int) []uint64 {
	return t.keys[i*t.wpk : (i+1)*t.wpk : (i+1)*t.wpk]
}

//mpp:hotpath
func (t *Table) keyEqual(i int, key []uint64) bool {
	stored := t.keys[i*t.wpk : (i+1)*t.wpk]
	for j, w := range key {
		if stored[j] != w {
			return false
		}
	}
	return true
}

// Find returns the index of key, or (-1, false) when absent. len(key)
// must equal WordsPerKey. Find never allocates.
//
//mpp:hotpath
func (t *Table) Find(key []uint64) (int, bool) {
	t.checkWidth(key)
	slot := Hash(key) & t.mask
	for {
		idx := t.slots[slot]
		if idx < 0 {
			return -1, false
		}
		if t.keyEqual(int(idx), key) {
			return int(idx), true
		}
		slot = (slot + 1) & t.mask
	}
}

// Insert returns the index of key, inserting it if absent. existed
// reports whether the key was already present. The key words are copied
// into the table's arena; the caller's slice is not retained. Inserting
// an already-present key never allocates.
//
//mpp:hotpath
func (t *Table) Insert(key []uint64) (idx int, existed bool) {
	t.checkWidth(key)
	slot := Hash(key) & t.mask
	for {
		i := t.slots[slot]
		if i < 0 {
			break
		}
		if t.keyEqual(int(i), key) {
			return int(i), true
		}
		slot = (slot + 1) & t.mask
	}
	n := t.Len()
	if n >= t.limit {
		t.rehash(len(t.slots) * 2)
		// The target slot moved; re-probe in the fresh slot array.
		slot = Hash(key) & t.mask
		for t.slots[slot] >= 0 {
			slot = (slot + 1) & t.mask
		}
	}
	t.keys = append(t.keys, key...)
	t.slots[slot] = int32(n)
	return n, false
}

func (t *Table) rehash(newSize int) {
	t.initSlots(newSize)
	for i, n := 0, t.Len(); i < n; i++ {
		slot := Hash(t.Key(i)) & t.mask
		for t.slots[slot] >= 0 {
			slot = (slot + 1) & t.mask
		}
		t.slots[slot] = int32(i)
	}
}

// ArenaBytes reports the heap bytes retained by the table's key arena
// and slot array — capacities, not live lengths, since capacity is what
// a pooled table keeps pinned between uses. The solver pool's oversize
// guard (internal/opt) reads this to decide whether a recycled table is
// worth keeping.
func (t *Table) ArenaBytes() int64 {
	return int64(cap(t.keys))*8 + int64(len(t.slots))*4
}

// Reset drops every key while keeping the allocated capacity, so a table
// can be reused across searches without reallocating.
func (t *Table) Reset() {
	t.keys = t.keys[:0]
	for i := range t.slots {
		t.slots[i] = -1
	}
}

// checkWidth panics when the key width disagrees with the table's — a
// programmer error caught at the boundary rather than corrupting the
// arena.
func (t *Table) checkWidth(key []uint64) {
	if len(key) != t.wpk {
		panic("hashtab: key width mismatch")
	}
}
