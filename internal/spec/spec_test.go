package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestParseDAGKinds(t *testing.T) {
	cases := []struct {
		spec  string
		wantN int
	}{
		{"chain:5", 5},
		{"chains:2,4", 8},
		{"intree:2", 7},
		{"outtree:2", 7},
		{"grid:3,4", 12},
		{"pyramid:3", 10},
		{"fft:3", 32},
		{"matmul:2", 20},
		{"zipper:2,5", 9},
		{"zipper:2,5,3", 9 + 4*3},
		{"fanchain:3,4", 7},
		{"cyclic:6,2,5,2", 11},
		{"broom:2,2,3", 14},
		{"trapg:2,3", 14},
		{"random:20,0.2,3,7", 20},
		{"twolayer:3,4,0.5,1", 7},
	}
	for _, c := range cases {
		g, err := ParseDAG(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if g.N() != c.wantN {
			t.Errorf("%s: n = %d, want %d", c.spec, g.N(), c.wantN)
		}
	}
}

func TestParseDAGFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := gen.Chain(6)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteText(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ParseDAG("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 6 {
		t.Fatalf("file round trip n = %d", got.N())
	}
	if _, err := ParseDAG("file:/does/not/exist"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseDAGErrors(t *testing.T) {
	for _, spec := range []string{
		"nope:3", "chain:x", "chains:1", "random:1,2,3",
		"twolayer:1,2,3", "random:a,b,c,d",
	} {
		if _, err := ParseDAG(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
	if _, err := ParseDAG("nope:1"); err == nil || !strings.Contains(err.Error(), "syntax") {
		t.Error("error should include syntax help")
	}
}

func TestParseSchedulers(t *testing.T) {
	all, err := ParseSchedulers("all")
	if err != nil || len(all) < 5 {
		t.Fatalf("all: %v (%d schedulers)", err, len(all))
	}
	one, err := ParseSchedulers("greedy:fraction,high,fewest")
	if err != nil || len(one) != 1 {
		t.Fatal("greedy parse failed")
	}
	if one[0].Name() != "greedy(fraction,high,fewest)" {
		t.Errorf("greedy options not applied: %s", one[0].Name())
	}
	if _, err := ParseSchedulers("greedy:bogus"); err == nil {
		t.Error("bad greedy option accepted")
	}
	part, err := ParseSchedulers("partitioned:levels")
	if err != nil || len(part) != 1 {
		t.Fatal("partitioned parse failed")
	}
	if _, err := ParseSchedulers("partitioned:nope"); err == nil {
		t.Error("bad partition accepted")
	}
	if _, err := ParseSchedulers("wat"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if b, err := ParseSchedulers("baseline"); err != nil || b[0].Name() != "baseline" {
		t.Error("baseline parse failed")
	}
}
