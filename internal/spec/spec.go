// Package spec parses the command-line DAG and scheduler specifications
// shared by the cmd/ binaries.
package spec

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/sched"
)

// DAGSyntax documents the accepted -dag specifications.
const DAGSyntax = `chain:N | chains:K,LEN | intree:DEPTH | outtree:DEPTH | grid:R,C |
pyramid:H | fft:LOGN | matmul:N | zipper:D,LEN[,TAIL] | fanchain:D,LEN |
cyclic:D,DELTA,LEN,STRIDE | broom:T,STRIDE,PREFIX | trapg:D,M |
random:N,P,MAXIN,SEED | twolayer:S,T,P,SEED | file:PATH`

// ParseDAG builds a DAG from a specification string. Generator panics on
// out-of-range parameters (e.g. a zipper whose tail exceeds its length)
// are converted to errors: a malformed CLI flag must produce a usage
// message, never a crash.
func ParseDAG(s string) (g *dag.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("invalid DAG spec %q: %v", s, r)
		}
	}()
	kind, arg, _ := strings.Cut(s, ":")
	switch kind {
	case "chain":
		v, err := ints(arg, 1)
		if err != nil {
			return nil, err
		}
		return gen.Chain(v[0]), nil
	case "chains":
		v, err := ints(arg, 2)
		if err != nil {
			return nil, err
		}
		return gen.IndependentChains(v[0], v[1]), nil
	case "intree":
		v, err := ints(arg, 1)
		if err != nil {
			return nil, err
		}
		return gen.BinaryInTree(v[0]), nil
	case "outtree":
		v, err := ints(arg, 1)
		if err != nil {
			return nil, err
		}
		return gen.BinaryOutTree(v[0]), nil
	case "grid":
		v, err := ints(arg, 2)
		if err != nil {
			return nil, err
		}
		return gen.Grid2D(v[0], v[1]), nil
	case "pyramid":
		v, err := ints(arg, 1)
		if err != nil {
			return nil, err
		}
		return gen.Pyramid(v[0]), nil
	case "fft":
		v, err := ints(arg, 1)
		if err != nil {
			return nil, err
		}
		return gen.FFT(v[0]), nil
	case "matmul":
		v, err := ints(arg, 1)
		if err != nil {
			return nil, err
		}
		return gen.MatMul(v[0]), nil
	case "zipper":
		v, err := ints(arg, 2)
		if err != nil {
			return nil, err
		}
		tail := 0
		if len(v) > 2 {
			tail = v[2]
		}
		g, _ := gen.Zipper(v[0], v[1], tail)
		return g, nil
	case "fanchain":
		v, err := ints(arg, 2)
		if err != nil {
			return nil, err
		}
		g, _ := gen.FanChain(v[0], v[1], 0)
		return g, nil
	case "cyclic":
		v, err := ints(arg, 4)
		if err != nil {
			return nil, err
		}
		g, _ := gen.CyclicFanChain(v[0], v[1], v[2], v[3])
		return g, nil
	case "broom":
		v, err := ints(arg, 3)
		if err != nil {
			return nil, err
		}
		g, _ := gen.SharedPrefixBroom(v[0], v[1], v[2])
		return g, nil
	case "trapg":
		v, err := ints(arg, 2)
		if err != nil {
			return nil, err
		}
		g, _ := gen.GreedyTrapG(v[0], v[1])
		return g, nil
	case "random":
		parts := strings.Split(arg, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("random wants N,P,MAXIN,SEED")
		}
		n, err1 := strconv.Atoi(parts[0])
		p, err2 := strconv.ParseFloat(parts[1], 64)
		maxIn, err3 := strconv.Atoi(parts[2])
		seed, err4 := strconv.ParseInt(parts[3], 10, 64)
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return nil, fmt.Errorf("bad random spec %q", arg)
			}
		}
		return gen.RandomDAG(n, p, maxIn, seed), nil
	case "twolayer":
		parts := strings.Split(arg, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("twolayer wants SOURCES,SINKS,P,SEED")
		}
		s1, err1 := strconv.Atoi(parts[0])
		s2, err2 := strconv.Atoi(parts[1])
		p, err3 := strconv.ParseFloat(parts[2], 64)
		seed, err4 := strconv.ParseInt(parts[3], 10, 64)
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return nil, fmt.Errorf("bad twolayer spec %q", arg)
			}
		}
		return gen.TwoLayerRandom(s1, s2, p, seed), nil
	case "file":
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dag.ReadText(f)
	default:
		return nil, fmt.Errorf("unknown DAG kind %q; syntax:\n%s", kind, DAGSyntax)
	}
}

func ints(spec string, want int) ([]int, error) {
	parts := strings.Split(spec, ",")
	if len(parts) < want {
		return nil, fmt.Errorf("expected ≥ %d comma-separated values, got %q", want, spec)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// SchedulerSyntax documents the accepted -sched specifications.
const SchedulerSyntax = `baseline | greedy[:count|fraction,low|high,lru|fewest] |
partitioned:one|components|levels|blocks | random[:SEED[,RESTARTS]] | all`

// ParseSchedulers parses a scheduler specification; "all" returns the
// whole portfolio.
func ParseSchedulers(s string) ([]sched.Scheduler, error) {
	if s == "all" {
		return []sched.Scheduler{
			sched.Baseline{},
			sched.Greedy{},
			sched.Greedy{Select: sched.SelectFraction},
			sched.Greedy{Evict: sched.EvictFewestUses},
			sched.Partitioned{Assign: sched.AssignAllToOne, AssignName: "one"},
			sched.Partitioned{Assign: sched.AssignComponents, AssignName: "components"},
			sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"},
			sched.Partitioned{Assign: sched.AssignTopoBlocks, AssignName: "blocks"},
			sched.RandomRestartGreedy{},
		}, nil
	}
	kind, arg, _ := strings.Cut(s, ":")
	switch kind {
	case "baseline":
		return []sched.Scheduler{sched.Baseline{}}, nil
	case "random":
		rg := sched.RandomRestartGreedy{}
		if arg != "" {
			v, err := ints(arg, 1)
			if err != nil {
				return nil, fmt.Errorf("random wants SEED[,RESTARTS]: %w", err)
			}
			rg.Seed = int64(v[0])
			if len(v) > 1 {
				rg.Restarts = v[1]
			}
		}
		return []sched.Scheduler{rg}, nil
	case "greedy":
		gr := sched.Greedy{}
		if arg != "" {
			for _, p := range strings.Split(arg, ",") {
				switch strings.TrimSpace(p) {
				case "count":
					gr.Select = sched.SelectCount
				case "fraction":
					gr.Select = sched.SelectFraction
				case "low":
					gr.Tie = sched.TieLowID
				case "high":
					gr.Tie = sched.TieHighID
				case "lru":
					gr.Evict = sched.EvictLRU
				case "fewest":
					gr.Evict = sched.EvictFewestUses
				default:
					return nil, fmt.Errorf("unknown greedy option %q", p)
				}
			}
		}
		return []sched.Scheduler{gr}, nil
	case "partitioned":
		fns := map[string]sched.AssignFunc{
			"one":        sched.AssignAllToOne,
			"components": sched.AssignComponents,
			"levels":     sched.AssignLevelRoundRobin,
			"blocks":     sched.AssignTopoBlocks,
		}
		fn, ok := fns[arg]
		if !ok {
			return nil, fmt.Errorf("unknown partition %q (one|components|levels|blocks)", arg)
		}
		return []sched.Scheduler{sched.Partitioned{Assign: fn, AssignName: arg}}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q; syntax:\n%s", kind, SchedulerSyntax)
	}
}
