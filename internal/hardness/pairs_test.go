package hardness

import (
	"testing"

	"repro/internal/opt"
)

// TestMatchedPairsSeparate is the headline Theorem 2 verification: on
// matched graphs of identical (N, M) — hence byte-identical constructions
// and budgets — zero-I/O feasibility tracks exactly the presence of a
// 3-clique. K3,3 is the adversarial amortized-selection instance the
// in-window cap must block.
func TestMatchedPairsSeparate(t *testing.T) {
	pairs := map[string]*UGraph{
		"tri-pendant": MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}}),
		"c4":          MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		"bull":        MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}}),
		"c5":          MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}),
		"prism":       MustUGraph(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}}),
		"k33":         MustUGraph(6, [][2]int{{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}),
	}
	for name, g := range pairs {
		red, err := BuildCliqueReduction(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.ZeroIOBig(red.Graph, red.R, 30_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: n=%d R=%d feasible=%v clique=%v states=%d",
			name, red.Graph.N(), red.R, res.Feasible, g.HasClique(3), res.States)
		if res.Feasible != g.HasClique(3) {
			t.Errorf("%s: feasibility %v does not match clique %v", name, res.Feasible, g.HasClique(3))
		}
	}
}

// TestQ4Pair generalizes the separation beyond triangles: a matched
// (N=6, M=12) pair where only one side contains a 4-clique.
func TestQ4Pair(t *testing.T) {
	if testing.Short() {
		t.Skip("q=4 searches are slower; run without -short")
	}
	yes := MustUGraph(6, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4
		{4, 0}, {4, 1}, {5, 2}, {5, 3}, {4, 5}, {0, 5},
	})
	no := MustUGraph(6, [][2]int{ // K2,2,2 (octahedron): K3s but no K4
		{0, 2}, {0, 3}, {0, 4}, {0, 5},
		{1, 2}, {1, 3}, {1, 4}, {1, 5},
		{2, 4}, {2, 5}, {3, 4}, {3, 5},
	})
	if !yes.HasClique(4) || no.HasClique(4) {
		t.Fatal("test graphs mis-specified")
	}
	for name, g := range map[string]*UGraph{"yes": yes, "no": no} {
		red, err := BuildCliqueReduction(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.ZeroIOBig(red.Graph, red.R, 80_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: n=%d R=%d feasible=%v states=%d", name, red.Graph.N(), red.R, res.Feasible, res.States)
		if res.Feasible != g.HasClique(4) {
			t.Errorf("%s: q=4 separation failed (feasible=%v)", name, res.Feasible)
		}
	}
}
