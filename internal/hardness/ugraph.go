// Package hardness implements the paper's reduction machinery:
//
//   - BuildCliqueReduction constructs, from an undirected graph G′ and a
//     clique size q, a DAG and a pebble budget r such that a zero-I/O
//     one-shot SPP pebbling exists if and only if G′ contains a q-clique —
//     the computational core of Theorem 2 (Figures 3–4). The construction
//     follows the paper's budget mechanics (towers whose level-size
//     changes force and cap progress) in a wall/ballast instantiation;
//     exact gadget sizes are ours and are validated instance-by-instance
//     against brute force in the experiments and tests.
//   - Brute-force MaxClique / MinVertexCover oracles for small graphs.
//   - A corpus of small undirected graphs for empirical verification.
package hardness

import (
	"fmt"
	"math/rand"
	"sort"
)

// UGraph is a simple undirected graph on vertices 0..N-1.
type UGraph struct {
	N     int
	Edges [][2]int
}

// NewUGraph builds an undirected graph, normalizing and deduplicating
// edges; self-loops are rejected.
func NewUGraph(n int, edges [][2]int) (*UGraph, error) {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("hardness: self-loop at %d", u)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("hardness: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			out = append(out, [2]int{u, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return &UGraph{N: n, Edges: out}, nil
}

// MustUGraph is NewUGraph but panics on error. Use only for literal
// graphs in tests and fixed gadget constructions; graphs read from
// external input must go through NewUGraph and handle the error.
func MustUGraph(n int, edges [][2]int) *UGraph {
	g, err := NewUGraph(n, edges)
	if err != nil {
		panic(fmt.Sprintf("hardness: MustUGraph on invalid literal graph (programmer error): %v", err))
	}
	return g
}

// M returns the number of edges.
func (g *UGraph) M() int { return len(g.Edges) }

// Adjacent reports whether u and v share an edge.
func (g *UGraph) Adjacent(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e[0] == u && e[1] == v {
			return true
		}
	}
	return false
}

// Complement returns the complement graph.
func (g *UGraph) Complement() *UGraph {
	var edges [][2]int
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if !g.Adjacent(u, v) {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return MustUGraph(g.N, edges)
}

// HasClique reports (by brute force) whether the graph contains a clique
// of size q. Intended for N ≤ ~16.
func (g *UGraph) HasClique(q int) bool {
	if q <= 1 {
		return g.N >= q
	}
	adj := g.adjMasks()
	var rec func(start int, chosen []int) bool
	rec = func(start int, chosen []int) bool {
		if len(chosen) == q {
			return true
		}
		for v := start; v < g.N; v++ {
			ok := true
			for _, u := range chosen {
				if adj[u]&(1<<uint(v)) == 0 {
					ok = false
					break
				}
			}
			if ok && rec(v+1, append(chosen, v)) {
				return true
			}
		}
		return false
	}
	return rec(0, nil)
}

// MaxClique returns the maximum clique size by brute force (N ≤ ~16).
func (g *UGraph) MaxClique() int {
	best := 0
	for q := g.N; q >= 1; q-- {
		if g.HasClique(q) {
			best = q
			break
		}
	}
	return best
}

// MinVertexCover returns the minimum vertex cover size by brute force.
func (g *UGraph) MinVertexCover() int {
	for c := 0; c <= g.N; c++ {
		if g.hasCover(c) {
			return c
		}
	}
	return g.N
}

func (g *UGraph) hasCover(c int) bool {
	var rec func(start int, left int, remaining [][2]int) bool
	rec = func(start, left int, remaining [][2]int) bool {
		if len(remaining) == 0 {
			return true
		}
		if left == 0 {
			return false
		}
		// Branch on the first uncovered edge: one endpoint must be in.
		e := remaining[0]
		for _, pick := range []int{e[0], e[1]} {
			var rest [][2]int
			for _, f := range remaining {
				if f[0] != pick && f[1] != pick {
					rest = append(rest, f)
				}
			}
			if rec(start, left-1, rest) {
				return true
			}
		}
		return false
	}
	return rec(0, c, g.Edges)
}

func (g *UGraph) adjMasks() []uint64 {
	adj := make([]uint64, g.N)
	for _, e := range g.Edges {
		adj[e[0]] |= 1 << uint(e[1])
		adj[e[1]] |= 1 << uint(e[0])
	}
	return adj
}

// Corpus returns a deterministic set of small named graphs used to verify
// the reductions: fixed classics plus random graphs.
func Corpus() map[string]*UGraph {
	c := map[string]*UGraph{
		"triangle":      MustUGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}),
		"path4":         MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		"c4":            MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		"k4":            MustUGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
		"k4-minus-edge": MustUGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}}),
		"c5":            MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}),
		"bull":          MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}}),
		"k23":           MustUGraph(5, [][2]int{{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}}),
		"prism":         MustUGraph(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}}),
		"k33":           MustUGraph(6, [][2]int{{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}),
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(2)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.45 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		c[fmt.Sprintf("rand%d", seed)] = MustUGraph(n, edges)
	}
	return c
}

// CubicCorpus returns small 3-regular graphs (the APX-hard vertex-cover
// class used by Lemma 11).
func CubicCorpus() map[string]*UGraph {
	return map[string]*UGraph{
		"k4": MustUGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}),
		"k33": MustUGraph(6, [][2]int{
			{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}),
		"prism": MustUGraph(6, [][2]int{
			{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {0, 3}, {1, 4}, {2, 5}}),
		"cube": MustUGraph(8, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4},
			{0, 4}, {1, 5}, {2, 6}, {3, 7}}),
		"moebius-kantor-8": MustUGraph(8, [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
			{0, 3}, {1, 6}, {2, 5}, {4, 7}}),
	}
}
