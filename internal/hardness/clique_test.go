package hardness

import (
	"testing"

	"repro/internal/opt"
	"repro/internal/pebble"
)

func TestUGraphBasics(t *testing.T) {
	g := MustUGraph(4, [][2]int{{0, 1}, {1, 0}, {2, 3}})
	if g.M() != 2 {
		t.Fatalf("M = %d (dedup failed)", g.M())
	}
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 0) || g.Adjacent(0, 2) {
		t.Fatal("Adjacent wrong")
	}
	if _, err := NewUGraph(3, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := NewUGraph(3, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	comp := g.Complement()
	if comp.M() != 4*3/2-2 {
		t.Fatalf("complement M = %d", comp.M())
	}
}

func TestBruteForceOracles(t *testing.T) {
	c := Corpus()
	cases := []struct {
		name   string
		maxClq int
		minVC  int
	}{
		{"triangle", 3, 2},
		{"path4", 2, 2},
		{"c4", 2, 2},
		{"k4", 4, 3},
		{"k4-minus-edge", 3, 2},
		{"c5", 2, 3},
		{"k33", 2, 3},
		{"prism", 3, 4},
	}
	for _, tc := range cases {
		g := c[tc.name]
		if g == nil {
			t.Fatalf("%s missing from corpus", tc.name)
		}
		if got := g.MaxClique(); got != tc.maxClq {
			t.Errorf("%s: MaxClique = %d, want %d", tc.name, got, tc.maxClq)
		}
		if got := g.MinVertexCover(); got != tc.minVC {
			t.Errorf("%s: MinVertexCover = %d, want %d", tc.name, got, tc.minVC)
		}
	}
}

func TestCubicCorpusIsCubic(t *testing.T) {
	for name, g := range CubicCorpus() {
		deg := make([]int, g.N)
		for _, e := range g.Edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		for v, d := range deg {
			if d != 3 {
				t.Errorf("%s: vertex %d has degree %d", name, v, d)
			}
		}
	}
}

// TestIntendedOrderIsZeroIOWitness: for every YES instance in the corpus,
// the certificate-induced order must be a valid zero-I/O one-shot
// pebbling within budget R.
func TestIntendedOrderIsZeroIOWitness(t *testing.T) {
	for name, g := range Corpus() {
		q := 3
		if !g.HasClique(q) {
			continue
		}
		red, err := BuildCliqueReduction(g, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		clique := findClique(g, q)
		order, err := red.IntendedOrder(g, clique)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in, err := pebble.NewInstance(red.Graph, pebble.OneShotSPP(red.R, 1))
		if err != nil {
			t.Fatalf("%s: instance: %v", name, err)
		}
		rep, err := pebble.Replay(in, opt.ZeroIOStrategy(red.Graph, order))
		if err != nil {
			t.Errorf("%s: intended order invalid: %v", name, err)
			continue
		}
		if rep.IOActions != 0 || rep.Cost != 0 {
			t.Errorf("%s: intended order not zero-I/O", name)
		}
		if rep.MaxRedInUse[0] > red.R {
			t.Errorf("%s: peak %d exceeds R=%d", name, rep.MaxRedInUse[0], red.R)
		}
	}
}

func findClique(g *UGraph, q int) []int {
	var out []int
	var rec func(start int, chosen []int) bool
	rec = func(start int, chosen []int) bool {
		if len(chosen) == q {
			out = append([]int{}, chosen...)
			return true
		}
		for v := start; v < g.N; v++ {
			ok := true
			for _, u := range chosen {
				if !g.Adjacent(u, v) {
					ok = false
					break
				}
			}
			if ok && rec(v+1, append(chosen, v)) {
				return true
			}
		}
		return false
	}
	rec(0, nil)
	return out
}

// TestCliqueEquivalence is the headline Theorem 2 check: zero-I/O
// feasibility of the reduction ⟺ the source graph has a q-clique, across
// the whole corpus.
func TestCliqueEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction search is slow; run without -short")
	}
	for name, g := range Corpus() {
		q := 3
		if g.M() <= q*(q-1)/2 {
			// Out of the construction's scope: with no spare edges the
			// endgame wall cannot bind (documented limitation).
			continue
		}
		red, err := BuildCliqueReduction(g, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := opt.ZeroIOBig(red.Graph, red.R, 40_000_000)
		if err != nil {
			t.Fatalf("%s: search: %v", name, err)
		}
		want := g.HasClique(q)
		if res.Feasible != want {
			t.Errorf("%s (n=%d nodes, R=%d): feasible=%v but clique=%v",
				name, red.Graph.N(), red.R, res.Feasible, want)
		}
		if res.Feasible {
			// Replay the found witness.
			in := pebble.MustInstance(red.Graph, pebble.OneShotSPP(red.R, 1))
			if _, err := pebble.Replay(in, opt.ZeroIOStrategy(red.Graph, res.Order)); err != nil {
				t.Errorf("%s: witness replay failed: %v", name, err)
			}
		}
	}
}

func TestBuildCliqueReductionValidation(t *testing.T) {
	g := Corpus()["triangle"]
	if _, err := BuildCliqueReduction(g, 1); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := BuildCliqueReduction(g, 5); err == nil {
		t.Error("q>N accepted")
	}
	red, err := BuildCliqueReduction(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Structure sanity: node count 8 + 5M + (2q-3+1)N + walls.
	cs, W := 2*3-3, 2*3-3
	wantN := 8 + 5*g.M() + (cs+1)*g.N + W + len(red.Wall2)
	if red.Graph.N() != wantN {
		t.Errorf("reduction n = %d, want %d", red.Graph.N(), wantN)
	}
	if len(red.Graph.Sinks()) != 1 || red.Graph.Sinks()[0] != red.Sink {
		t.Error("reduction must have the single sink Z")
	}
	// Bad certificate rejected.
	if _, err := red.IntendedOrder(g, []int{0, 1}); err == nil {
		t.Error("short certificate accepted")
	}
}
