package hardness

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// CliqueReduction is the DAG + pebble budget produced by
// BuildCliqueReduction, together with the gadget bookkeeping needed by
// tests and experiments.
type CliqueReduction struct {
	Graph *dag.Graph
	R     int // pebble budget: zero-I/O feasible ⟺ q-clique exists
	Q     int // target clique size
	N, M  int // source graph size

	// Gadget inventory (node IDs), exported for inspection.
	Chain   []dag.NodeID   // m0..m6
	Wall    []dag.NodeID   // squeeze wall between m3 and m4
	Wall2   []dag.NodeID   // endgame wall spanning (m4, m5): eats post-squeeze slack
	Debts   [][]dag.NodeID // per edge: 3 debt nodes (forced early, fat)
	Bundles [][]dag.NodeID // per vertex: 2q−3 selection nodes
	Killers []dag.NodeID   // per edge: killer (slims the edge gadget)
	Collect []dag.NodeID   // per edge: post-squeeze collector
	VDone   []dag.NodeID   // per vertex: post-squeeze bundle collector
	Sink    dag.NodeID     // final sink Z
}

// BuildCliqueReduction constructs the Theorem 2 style reduction from
// q-clique on G′ to zero-I/O one-shot SPP feasibility. The mechanics
// mirror the paper's tower budget game (Figures 3–4):
//
//   - A main chain m0…m6 sequences the phases.
//   - Every edge starts "fat": a triple of debt nodes is forced into
//     memory early (between m1 and m2) and stays live until the edge's
//     killer is computed.
//   - Selecting a vertex means computing its bundle of 2q−3 nodes
//     (possible only after m2); a bundle stays live until all incident
//     killers and the vertex's post-squeeze collector P_u are done.
//   - Killing edge (u,v) (computing K_e, which requires both bundles and
//     the debt triple) nets −2 pebbles before the squeeze: the triple
//     dies, the killer lives on until its post-squeeze collector C_e.
//   - The first wall (width 2q−3, between m3 and m4) makes the m4
//     transition the paper's "fewest free pebbles" squeeze: it succeeds
//     exactly when (2q−3)·#selected − 2·#killed ≤ (2q−3)·q − 2·C(q,2),
//     whose graph-realizable optimum demands a q-clique; the in-window
//     peak cap equally blocks amortized dense-subgraph cheats such as
//     K₃,₃ for q = 3.
//   - The second wall spans the endgame window (m4, m5) and is
//     calibrated so the intended endgame (retiring the N−q remaining
//     vertices and M−C(q,2) remaining edges) fits exactly; a strategy
//     that deferred its pre-squeeze obligations drags ≈ 2·C(q,2) extra
//     debt pebbles into the endgame and no longer fits.
//
// The equivalence is verified instance-by-instance in the experiments
// against brute force (the exact gadget sizes are this reproduction's
// own; the paper's full version uses different constants).
func BuildCliqueReduction(g *UGraph, q int) (*CliqueReduction, error) {
	if q < 2 {
		return nil, fmt.Errorf("hardness: clique size q=%d < 2", q)
	}
	if q > g.N {
		return nil, fmt.Errorf("hardness: q=%d exceeds graph order %d", q, g.N)
	}
	// Pass 1: uncalibrated build (no endgame wall) to measure the
	// intended endgame peak. Calibration uses the lexicographically first
	// q-clique when one exists, or the pretend clique {0..q-1} otherwise
	// (for NO instances the exact calibration only tightens further).
	base, err := buildClique(g, q, 0)
	if err != nil {
		return nil, err
	}
	cert := findCliqueVertices(g, q)
	pretend := cert == nil
	if pretend {
		cert = make([]int, q)
		for i := range cert {
			cert[i] = i
		}
	}
	order := base.intendedOrder(g, cert, pretend)
	peak := base.peakFrom(order, base.Chain[4])
	w2 := base.R - 1 - peak
	if w2 < 0 {
		w2 = 0
	}
	red, err := buildClique(g, q, w2)
	if err != nil {
		return nil, err
	}
	return red, nil
}

func buildClique(g *UGraph, q, w2 int) (*CliqueReduction, error) {
	N, M := g.N, g.M()
	cs := 2*q - 3        // selection cost (bundle size)
	Q := q * (q - 1) / 2 // kills required
	W := 2*q - 3         // squeeze wall width: pins the in-window peak cap
	r := 3*M - 2*Q + cs*q + W + 3

	b := dag.NewBuilder(fmt.Sprintf("clique-red-N%d-M%d-q%d", N, M, q))
	red := &CliqueReduction{Q: q, N: N, M: M, R: r}

	chain := make([]dag.NodeID, 7)
	for i := range chain {
		chain[i] = b.AddLabeledNode(fmt.Sprintf("m%d", i))
		if i > 0 {
			b.AddEdge(chain[i-1], chain[i])
		}
	}
	red.Chain = chain

	// Debt triples: preds {m1}; succs {m2, K_e}.
	for ei := range g.Edges {
		triple := make([]dag.NodeID, 3)
		for j := range triple {
			triple[j] = b.AddLabeledNode(fmt.Sprintf("d%d_%d", ei, j))
			b.AddEdge(chain[1], triple[j])
			b.AddEdge(triple[j], chain[2])
		}
		red.Debts = append(red.Debts, triple)
	}

	// Selection bundles: preds {m2}; succs {incident killers, P_u}.
	for u := 0; u < N; u++ {
		bundle := make([]dag.NodeID, cs)
		for j := range bundle {
			bundle[j] = b.AddLabeledNode(fmt.Sprintf("b%d_%d", u, j))
			b.AddEdge(chain[2], bundle[j])
		}
		red.Bundles = append(red.Bundles, bundle)
	}

	// Killers: preds {debt triple, both bundles, m2}; succ {C_e}.
	for ei, e := range g.Edges {
		k := b.AddLabeledNode(fmt.Sprintf("k%d", ei))
		for _, dnode := range red.Debts[ei] {
			b.AddEdge(dnode, k)
		}
		for _, bu := range red.Bundles[e[0]] {
			b.AddEdge(bu, k)
		}
		for _, bv := range red.Bundles[e[1]] {
			b.AddEdge(bv, k)
		}
		b.AddEdge(chain[2], k)
		red.Killers = append(red.Killers, k)
	}

	// Squeeze wall: preds {m3}; succs {m4}.
	for i := 0; i < W; i++ {
		w := b.AddLabeledNode(fmt.Sprintf("w%d", i))
		b.AddEdge(chain[3], w)
		b.AddEdge(w, chain[4])
		red.Wall = append(red.Wall, w)
	}
	// Endgame wall: preds {m4}; succs {m5} — live across the whole
	// endgame window.
	for i := 0; i < w2; i++ {
		w := b.AddLabeledNode(fmt.Sprintf("x%d", i))
		b.AddEdge(chain[4], w)
		b.AddEdge(w, chain[5])
		red.Wall2 = append(red.Wall2, w)
	}

	// Post-squeeze collectors: C_e preds {K_e, m4} → Z;
	// per-vertex collectors: P_u preds {bundle(u), m4} → Z.
	z := b.AddLabeledNode("Z")
	for ei := range g.Edges {
		c := b.AddLabeledNode(fmt.Sprintf("c%d", ei))
		b.AddEdge(red.Killers[ei], c)
		b.AddEdge(chain[4], c)
		b.AddEdge(c, z)
		red.Collect = append(red.Collect, c)
	}
	for u := 0; u < N; u++ {
		p := b.AddLabeledNode(fmt.Sprintf("p%d", u))
		for _, bu := range red.Bundles[u] {
			b.AddEdge(bu, p)
		}
		b.AddEdge(chain[4], p)
		b.AddEdge(p, z)
		red.VDone = append(red.VDone, p)
	}
	b.AddEdge(chain[6], z)
	red.Sink = z

	gg, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("hardness: building reduction: %w", err)
	}
	red.Graph = gg
	return red, nil
}

// IntendedOrder returns the compute order a q-clique certificate induces:
// the zero-I/O witness used to validate YES instances constructively
// (clique is the list of vertex indices, which must form a clique).
func (cr *CliqueReduction) IntendedOrder(g *UGraph, clique []int) ([]dag.NodeID, error) {
	if len(clique) != cr.Q {
		return nil, fmt.Errorf("hardness: certificate size %d ≠ q=%d", len(clique), cr.Q)
	}
	for i, u := range clique {
		for _, v := range clique[i+1:] {
			if !g.Adjacent(u, v) {
				return nil, fmt.Errorf("hardness: certificate not a clique: (%d,%d) missing", u, v)
			}
		}
	}
	order := cr.intendedOrder(g, clique, false)
	if len(order) != cr.Graph.N() {
		return nil, fmt.Errorf("hardness: intended order covers %d of %d nodes", len(order), cr.Graph.N())
	}
	return order, nil
}

// intendedOrder builds the schedule; with pretend=true the certificate
// need not be a clique (used only for calibration sizing: pre-squeeze
// kills are restricted to edges that actually exist).
func (cr *CliqueReduction) intendedOrder(g *UGraph, cert []int, pretend bool) []dag.NodeID {
	var order []dag.NodeID
	add := func(vs ...dag.NodeID) { order = append(order, vs...) }

	add(cr.Chain[0], cr.Chain[1])
	for _, triple := range cr.Debts {
		add(triple...)
	}
	add(cr.Chain[2])
	selected := map[int]bool{}
	killed := map[int]bool{}
	killReady := func() {
		for ei, e := range g.Edges {
			if !killed[ei] && selected[e[0]] && selected[e[1]] {
				add(cr.Killers[ei])
				killed[ei] = true
			}
		}
	}
	for _, u := range cert {
		add(cr.Bundles[u]...)
		selected[u] = true
		killReady()
	}
	add(cr.Chain[3])
	add(cr.Wall...)
	add(cr.Chain[4])
	add(cr.Wall2...)
	// Endgame: collect pre-squeeze kills, then retire the rest, emitting
	// each vertex collector as soon as its incident edges are done.
	for ei := range g.Edges {
		if killed[ei] {
			add(cr.Collect[ei])
		}
	}
	done := map[int]bool{}
	retire := func() {
		for u := 0; u < cr.N; u++ {
			if done[u] || !selected[u] {
				continue
			}
			complete := true
			for ei, e := range g.Edges {
				if !killed[ei] && (e[0] == u || e[1] == u) {
					complete = false
					break
				}
			}
			if complete {
				add(cr.VDone[u])
				done[u] = true
			}
		}
	}
	retire()
	for u := 0; u < cr.N; u++ {
		if !selected[u] {
			add(cr.Bundles[u]...)
			selected[u] = true
		}
		for ei, e := range g.Edges {
			if !killed[ei] && selected[e[0]] && selected[e[1]] {
				add(cr.Killers[ei], cr.Collect[ei])
				killed[ei] = true
			}
		}
		retire()
	}
	add(cr.Chain[5], cr.Chain[6], cr.Sink)
	return order
}

// peakFrom simulates the live profile of a compute order and returns the
// maximum live count over the suffix starting at the first occurrence of
// node 'from'.
func (cr *CliqueReduction) peakFrom(order []dag.NodeID, from dag.NodeID) int {
	g := cr.Graph
	n := g.N()
	remSucc := make([]int, n)
	isSink := make([]bool, n)
	for v := 0; v < n; v++ {
		remSucc[v] = g.OutDegree(dag.NodeID(v))
	}
	for _, s := range g.Sinks() {
		isSink[s] = true
	}
	live, peak := 0, 0
	started := false
	for _, v := range order {
		if v == from {
			started = true
		}
		live++
		if started && live > peak {
			peak = live
		}
		for _, u := range g.Pred(v) {
			remSucc[u]--
			if remSucc[u] == 0 && !isSink[u] {
				live--
			}
		}
	}
	return peak
}

// findCliqueVertices returns the lexicographically first q-clique, or nil.
func findCliqueVertices(g *UGraph, q int) []int {
	var out []int
	var rec func(start int, chosen []int) bool
	rec = func(start int, chosen []int) bool {
		if len(chosen) == q {
			out = append([]int{}, chosen...)
			return true
		}
		for v := start; v < g.N; v++ {
			ok := true
			for _, u := range chosen {
				if !g.Adjacent(u, v) {
					ok = false
					break
				}
			}
			if ok && rec(v+1, append(chosen, v)) {
				return true
			}
		}
		return false
	}
	rec(0, nil)
	sort.Ints(out)
	if len(out) == 0 {
		return nil
	}
	return out
}
