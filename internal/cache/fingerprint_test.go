package cache

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/spec"
)

// fpZoo is the fingerprint tests' instance zoo: one representative per
// DAG family the solver zoo covers, each paired with the parameters the
// equivalence tests use. Sensitivity properties run over every entry.
func fpZoo(t *testing.T) []struct {
	name string
	in   *pebble.Instance
} {
	t.Helper()
	two := func() *dag.Graph {
		b := dag.NewBuilder("2chains")
		b.AddNewChain(3)
		b.AddNewChain(3)
		g, err := b.Build()
		if err != nil {
			t.Fatalf("2chains: %v", err)
		}
		return g
	}()
	zip, _ := gen.Zipper(2, 3, 0)
	return []struct {
		name string
		in   *pebble.Instance
	}{
		{"chain5", pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3))},
		{"2chains-k2", pebble.MustInstance(two, pebble.MPP(2, 2, 3))},
		{"grid2x3-k2", pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))},
		{"pyramid3", pebble.MustInstance(gen.Pyramid(3), pebble.MPP(1, 3, 2))},
		{"zipper2x3", pebble.MustInstance(zip, pebble.MPP(1, 4, 5))},
		{"oneshot-chain", pebble.MustInstance(gen.Chain(4), pebble.OneShotSPP(2, 3))},
		{"spp-free", pebble.MustInstance(gen.Chain(4), pebble.SPP(2, 3))},
	}
}

func mustParse(t *testing.T, s string) *dag.Graph {
	t.Helper()
	g, err := spec.ParseDAG(s)
	if err != nil {
		t.Fatalf("ParseDAG(%q): %v", s, err)
	}
	return g
}

// TestKeyBuildPathInvariance: the fingerprint is a function of the
// graph's structure, not of how the graph object was produced. The same
// DAG built by a generator, parsed from a spec string, or assembled by
// hand (different name, labels, and edge insertion order) must key
// identically.
func TestKeyBuildPathInvariance(t *testing.T) {
	sc := SolverConfig{MaxStates: 1000}
	p := pebble.MPP(1, 2, 3)

	genKey := KeyOf(pebble.MustInstance(gen.Chain(5), p), sc)
	specKey := KeyOf(pebble.MustInstance(mustParse(t, "chain:5"), p), sc)
	if genKey != specKey {
		t.Errorf("gen.Chain(5) and spec chain:5 key differently: %v vs %v", genKey, specKey)
	}

	// Hand-built, edges inserted back to front, cosmetic fields set.
	b := dag.NewBuilder("a completely different name")
	ids := b.AddNodes(5)
	for i := 3; i >= 0; i-- {
		b.AddEdge(ids[i], ids[i+1])
	}
	b.SetLabel(ids[0], "source")
	b.SetLabel(ids[4], "sink")
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if handKey := KeyOf(pebble.MustInstance(g, p), sc); handKey != genKey {
		t.Errorf("hand-built chain keys differently from gen.Chain: %v vs %v", handKey, genKey)
	}

	gridGen := KeyOf(pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2)), sc)
	gridSpec := KeyOf(pebble.MustInstance(mustParse(t, "grid:2,3"), pebble.MPP(2, 3, 2)), sc)
	if gridGen != gridSpec {
		t.Errorf("gen.Grid2D(2,3) and spec grid:2,3 key differently: %v vs %v", gridGen, gridSpec)
	}
}

// reversedEdges rebuilds g with the same node set but the edge list
// inserted in reverse order.
func reversedEdges(t *testing.T, g *dag.Graph) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("reversed-insertion")
	b.AddNodes(g.N())
	es := g.Edges()
	for i := len(es) - 1; i >= 0; i-- {
		b.AddEdge(es[i][0], es[i][1])
	}
	out, err := b.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return out
}

// dropEdge rebuilds g without its i-th edge.
func dropEdge(t *testing.T, g *dag.Graph, i int) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("edge-dropped")
	b.AddNodes(g.N())
	for j, e := range g.Edges() {
		if j == i {
			continue
		}
		b.AddEdge(e[0], e[1])
	}
	out, err := b.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return out
}

// TestKeySensitivityZoo runs the flip properties over the whole zoo:
// reinserting edges in a different order keeps the key; changing any
// single Params field, dropping any single edge, or flipping any
// result-affecting config field changes it.
func TestKeySensitivityZoo(t *testing.T) {
	for _, tc := range fpZoo(t) {
		t.Run(tc.name, func(t *testing.T) {
			// Dominance and Witness start false so each flip below is a
			// real semantic change (Normalize erases Dominance under
			// Witness — covered separately in TestNormalizeCollapses).
			sc := SolverConfig{Heuristic: 2, MaxStates: 1000}
			base := KeyOf(tc.in, sc)

			if k := KeyOf(pebble.MustInstance(reversedEdges(t, tc.in.Graph), tc.in.Params), sc); k != base {
				t.Errorf("edge insertion order changed the key: %v vs %v", k, base)
			}

			flips := []struct {
				field string
				mut   func(p pebble.Params) pebble.Params
			}{
				{"K", func(p pebble.Params) pebble.Params { p.K++; return p }},
				{"R", func(p pebble.Params) pebble.Params { p.R++; return p }},
				{"G", func(p pebble.Params) pebble.Params { p.G++; return p }},
				{"ComputeCost", func(p pebble.Params) pebble.Params { p.ComputeCost++; return p }},
				{"OneShot", func(p pebble.Params) pebble.Params { p.OneShot = !p.OneShot; return p }},
			}
			for _, f := range flips {
				// Bypass NewInstance validation: a flipped Params value
				// need not be playable to have a distinct fingerprint.
				in := &pebble.Instance{Graph: tc.in.Graph, Params: f.mut(tc.in.Params)}
				if KeyOf(in, sc) == base {
					t.Errorf("flipping Params.%s did not change the key", f.field)
				}
			}

			for i := 0; i < tc.in.Graph.M(); i++ {
				in := &pebble.Instance{Graph: dropEdge(t, tc.in.Graph, i), Params: tc.in.Params}
				if KeyOf(in, sc) == base {
					t.Errorf("dropping edge %d did not change the key", i)
				}
			}

			cfgFlips := []struct {
				field string
				sc    SolverConfig
			}{
				{"Heuristic", SolverConfig{Heuristic: 0, MaxStates: 1000}},
				{"Dominance", SolverConfig{Heuristic: 2, Dominance: true, MaxStates: 1000}},
				{"Witness", SolverConfig{Heuristic: 2, Witness: true, MaxStates: 1000}},
				{"MaxStates", SolverConfig{Heuristic: 2, MaxStates: 2000}},
			}
			for _, f := range cfgFlips {
				if KeyOf(tc.in, f.sc) == base {
					t.Errorf("flipping SolverConfig.%s did not change the key", f.field)
				}
			}
		})
	}
}

// TestNormalizeCollapses: configurations the solver treats identically
// must share a key, so equivalent requests hit each other's entries.
func TestNormalizeCollapses(t *testing.T) {
	in := pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3))

	// The engine ignores Dominance in witness mode.
	a := KeyOf(in, SolverConfig{Witness: true, Dominance: true, MaxStates: 100})
	b := KeyOf(in, SolverConfig{Witness: true, Dominance: false, MaxStates: 100})
	if a != b {
		t.Errorf("witness-mode keys differ on the ignored Dominance bit: %v vs %v", a, b)
	}

	// Every non-positive budget means unbounded.
	if KeyOf(in, SolverConfig{MaxStates: -5}) != KeyOf(in, SolverConfig{MaxStates: 0}) {
		t.Errorf("MaxStates -5 and 0 key differently; both mean unbounded")
	}
}

// TestPartialKeyDomain: partial keys ignore the budget (one partial slot
// per instance+config; the budget lives on the entry for the serve
// guard) and can never collide with a complete key of the same instance.
func TestPartialKeyDomain(t *testing.T) {
	in := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
	sc100 := SolverConfig{Heuristic: 2, MaxStates: 100}
	sc900 := SolverConfig{Heuristic: 2, MaxStates: 900}

	if PartialKeyOf(in, sc100) != PartialKeyOf(in, sc900) {
		t.Errorf("partial keys differ across budgets; the budget belongs on the entry, not the key")
	}
	if PartialKeyOf(in, sc100) == KeyOf(in, sc100) {
		t.Errorf("partial and complete key collide for the same (instance, config)")
	}
	if KeyOf(in, sc100) == KeyOf(in, sc900) {
		t.Errorf("complete keys must include the budget")
	}
}

// TestKeyString: 32 lowercase hex digits, zero-padded, usable as a file
// name.
func TestKeyString(t *testing.T) {
	s := (Key{Hi: 0xab, Lo: 1}).String()
	if len(s) != 32 || s != "00000000000000ab0000000000000001" {
		t.Errorf("Key.String() = %q", s)
	}
	if strings.ContainsAny(s, "/\\ ") {
		t.Errorf("key string %q is not a safe file name", s)
	}
}

// TestKeyOfConcurrent: fingerprinting shares no mutable state, so
// concurrent KeyOf calls over one instance must agree (run under -race).
func TestKeyOfConcurrent(t *testing.T) {
	in := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
	sc := SolverConfig{Heuristic: 2, MaxStates: 1000}
	want := KeyOf(in, sc)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := KeyOf(in, sc); got != want {
					t.Errorf("concurrent KeyOf = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
