package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Codec serializes cached values for the file-backed store. Encode and
// Decode must round-trip: Decode(Encode(v)) is a value equivalent to v.
// A Cache with no Codec (or no Dir) is memory-only.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Options configures a Cache. The zero value is usable: memory-only,
// with the default entry and byte bounds.
type Options struct {
	// MaxEntries bounds the number of in-memory entries (complete and
	// partial combined); non-positive selects DefaultMaxEntries.
	MaxEntries int
	// MaxBytes bounds the estimated retained bytes of in-memory entries;
	// non-positive selects DefaultMaxBytes.
	MaxBytes int64
	// Dir, when non-empty, enables the file-backed store: one blob per
	// key under this directory (created on first write), so results
	// survive process restarts. Evicting an entry from memory never
	// deletes its blob — persistence is the point. Requires Codec.
	Dir string
	// Codec serializes values for Dir. Ignored when Dir is empty.
	Codec Codec
}

// Default in-memory bounds: small instances dominate the workload, so
// 4096 results at ≲64 MiB comfortably covers a zoo of repeat solves
// without letting witness-heavy strategies pin unbounded memory.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 64 << 20
)

// Entry is one cached value with its bookkeeping.
type Entry struct {
	// Value is the cached result. The cache never copies it; callers
	// that mutate served values must store and serve clones themselves.
	Value any
	// Size is the caller's estimate of Value's retained bytes, counted
	// against Options.MaxBytes. Non-positive is treated as 1.
	Size int64
	// Budget is the MaxStates budget a partial bracket was computed
	// under (0 on complete entries). GetPartial's serve guard reads it.
	Budget int
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits / Misses count complete-result lookups (Get).
	Hits, Misses int64
	// PartialHits / PartialMisses count partial-bracket lookups
	// (GetPartial). A lookup rejected by the budget guard counts as a
	// miss and increments BudgetRejects.
	PartialHits, PartialMisses int64
	// BudgetRejects counts partial entries present but withheld because
	// the caller's budget was tighter than the stored bracket's.
	BudgetRejects int64
	// Evictions counts in-memory entries dropped to satisfy the bounds.
	Evictions int64
	// DiskHits counts lookups answered from the file-backed store after
	// a memory miss (also counted in Hits/PartialHits).
	DiskHits int64
	// DiskErrors counts file-store I/O or decode failures; the store is
	// best-effort, so these degrade to misses instead of propagating.
	DiskErrors int64
	// Entries and Bytes describe the current in-memory footprint.
	Entries int
	Bytes   int64
}

// node is one LRU list element; head side is most recently used.
type node struct {
	key        Key
	ent        Entry
	prev, next *node
}

// Cache is a mutex-guarded bounded LRU over fingerprint keys, with an
// optional file-backed second level. Safe for concurrent use. Disk I/O
// runs under the lock — it only happens on memory misses, which are off
// the repeat-solve hot path by definition.
type Cache struct {
	mu sync.Mutex
	// The LRU state below is mutable after publication and must only be
	// touched under mu; maxEntries/maxBytes/dir/codec are set once in
	// New and read-only afterwards.
	m          map[Key]*node // mpp:guardedby mu
	head, tail *node         // mpp:guardedby mu
	bytes      int64         // mpp:guardedby mu
	maxEntries int
	maxBytes   int64
	dir        string
	codec      Codec
	stats      Stats // mpp:guardedby mu
}

// New returns an empty cache under the given options.
func New(o Options) *Cache {
	if o.MaxEntries <= 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	c := &Cache{
		m:          make(map[Key]*node),
		maxEntries: o.MaxEntries,
		maxBytes:   o.MaxBytes,
	}
	if o.Dir != "" && o.Codec != nil {
		c.dir, c.codec = o.Dir, o.Codec
	}
	return c
}

// Get returns the complete-result entry under k. A memory miss falls
// through to the file store (when configured); a loaded blob is
// promoted into memory.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lookup(k); ok {
		c.stats.Hits++
		return e, true
	}
	if e, ok := c.loadDisk(k); ok {
		c.stats.Hits++
		c.stats.DiskHits++
		return e, true
	}
	c.stats.Misses++
	return Entry{}, false
}

// GetPartial returns the partial-bracket entry under k only when the
// caller's budget justifies serving it: the stored bracket must have
// been computed under an equal-or-tighter budget (Entry.Budget ≤
// callerBudget), so the caller receives at most the information its own
// solve would have produced — never a laundered tighter bound. Callers
// with an unbounded budget (callerBudget ≤ 0) are never served a
// partial: their own solve runs to completion.
func (c *Cache) GetPartial(k Key, callerBudget int) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.lookup(k)
	if !ok {
		if e, ok = c.loadDisk(k); ok {
			c.stats.DiskHits++
		}
	}
	if !ok {
		c.stats.PartialMisses++
		return Entry{}, false
	}
	if callerBudget <= 0 || callerBudget < e.Budget {
		c.stats.BudgetRejects++
		c.stats.PartialMisses++
		return Entry{}, false
	}
	c.stats.PartialHits++
	return e, true
}

// Put stores e under k, overwriting any previous entry, evicting from
// the LRU tail as needed, and (when configured) writing the blob to the
// file store. An entry larger than the whole byte bound is written to
// disk but not kept in memory — caching it would evict everything else.
func (c *Cache) Put(k Key, e Entry) {
	if e.Size <= 0 {
		e.Size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeDisk(k, e)
	c.insert(k, e)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.m)
	s.Bytes = c.bytes
	return s
}

// lookup finds k in memory and promotes it to most-recently-used.
//
//mpp:locked mu
func (c *Cache) lookup(k Key) (Entry, bool) {
	n, ok := c.m[k]
	if !ok {
		return Entry{}, false
	}
	c.unlink(n)
	c.pushFront(n)
	return n.ent, true
}

// insert adds or replaces k in memory and evicts down to the bounds.
//
//mpp:locked mu
func (c *Cache) insert(k Key, e Entry) {
	if n, ok := c.m[k]; ok {
		c.bytes += e.Size - n.ent.Size
		n.ent = e
		c.unlink(n)
		c.pushFront(n)
	} else if e.Size <= c.maxBytes {
		n = &node{key: k, ent: e}
		c.m[k] = n
		c.pushFront(n)
		c.bytes += e.Size
	}
	for len(c.m) > c.maxEntries || c.bytes > c.maxBytes {
		t := c.tail
		if t == nil {
			break
		}
		c.unlink(t)
		delete(c.m, t.key)
		c.bytes -= t.ent.Size
		c.stats.Evictions++
	}
}

//mpp:locked mu
func (c *Cache) pushFront(n *node) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

//mpp:locked mu
func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if c.head == n {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// File-store blob layout: magic, 8-byte little-endian budget, then the
// codec payload. One blob per key, named <keyhex>.mppc; writes go
// through a temp file + rename so a crash never leaves a torn blob.
var blobMagic = []byte("mpp-cache/v1\n")

const blobExt = ".mppc"

func (c *Cache) blobPath(k Key) string {
	return filepath.Join(c.dir, k.String()+blobExt)
}

// storeDisk writes the entry's blob, best-effort: failures count into
// DiskErrors and the in-memory store proceeds regardless.
//
//mpp:locked mu
func (c *Cache) storeDisk(k Key, e Entry) {
	if c.dir == "" {
		return
	}
	payload, err := c.codec.Encode(e.Value)
	if err != nil {
		c.stats.DiskErrors++
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.stats.DiskErrors++
		return
	}
	buf := make([]byte, 0, len(blobMagic)+8+len(payload))
	buf = append(buf, blobMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Budget))
	buf = append(buf, payload...)
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		c.stats.DiskErrors++
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.stats.DiskErrors++
		return
	}
	if err := os.Rename(tmp.Name(), c.blobPath(k)); err != nil {
		os.Remove(tmp.Name())
		c.stats.DiskErrors++
	}
}

// loadDisk reads and decodes k's blob, promoting it into memory on
// success. A missing blob is a plain miss; anything malformed counts
// into DiskErrors and degrades to a miss.
//
//mpp:locked mu
func (c *Cache) loadDisk(k Key) (Entry, bool) {
	if c.dir == "" {
		return Entry{}, false
	}
	data, err := os.ReadFile(c.blobPath(k))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.stats.DiskErrors++
		}
		return Entry{}, false
	}
	e, err := decodeBlob(data, c.codec)
	if err != nil {
		c.stats.DiskErrors++
		return Entry{}, false
	}
	c.insert(k, e)
	return e, true
}

func decodeBlob(data []byte, codec Codec) (Entry, error) {
	if len(data) < len(blobMagic)+8 || string(data[:len(blobMagic)]) != string(blobMagic) {
		return Entry{}, fmt.Errorf("cache: malformed blob header")
	}
	budget := binary.LittleEndian.Uint64(data[len(blobMagic):])
	v, err := codec.Decode(data[len(blobMagic)+8:])
	if err != nil {
		return Entry{}, fmt.Errorf("cache: decoding blob: %w", err)
	}
	return Entry{Value: v, Size: int64(len(data)), Budget: int(budget)}, nil
}
