package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testKey fabricates distinct keys for LRU tests without needing real
// instances.
func testKey(i int) Key { return Key{Hi: uint64(i) + 1, Lo: ^uint64(i)} }

// stringCodec is a trivial Codec for file-store tests.
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("stringCodec: %T", v)
	}
	return []byte(s), nil
}

func (stringCodec) Decode(data []byte) (any, error) { return string(data), nil }

func TestGetPutBasics(t *testing.T) {
	c := New(Options{})
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, Entry{Value: "v1", Size: 10})
	e, ok := c.Get(k)
	if !ok || e.Value != "v1" {
		t.Fatalf("Get = %+v, %v; want v1 hit", e, ok)
	}
	// Overwrite replaces the value and adjusts the byte accounting.
	c.Put(k, Entry{Value: "v2", Size: 30})
	if e, _ := c.Get(k); e.Value != "v2" {
		t.Fatalf("after overwrite Get = %+v", e)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 30 {
		t.Errorf("stats = %+v; want 2 hits, 1 miss, 1 entry, 30 bytes", st)
	}
}

func TestEvictionByEntries(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	c.Put(testKey(1), Entry{Value: 1})
	c.Put(testKey(2), Entry{Value: 2})
	// Touch key 1 so key 2 is the LRU victim when key 3 arrives.
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.Put(testKey(3), Entry{Value: 3})
	if _, ok := c.Get(testKey(2)); ok {
		t.Error("LRU victim (key 2) survived eviction")
	}
	if _, ok := c.Get(testKey(1)); !ok {
		t.Error("recently used key 1 was evicted")
	}
	if _, ok := c.Get(testKey(3)); !ok {
		t.Error("newest key 3 was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v; want 1 eviction, 2 entries", st)
	}
}

func TestEvictionByBytes(t *testing.T) {
	c := New(Options{MaxBytes: 100})
	c.Put(testKey(1), Entry{Value: 1, Size: 60})
	c.Put(testKey(2), Entry{Value: 2, Size: 60}) // 120 > 100: key 1 evicted
	if _, ok := c.Get(testKey(1)); ok {
		t.Error("key 1 survived byte-bound eviction")
	}
	if st := c.Stats(); st.Bytes != 60 || st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v; want 60 bytes, 1 entry, 1 eviction", st)
	}
	// An entry larger than the whole bound is not kept at all (it would
	// evict everything else for one resident).
	c.Put(testKey(3), Entry{Value: 3, Size: 1000})
	if _, ok := c.Get(testKey(3)); ok {
		t.Error("entry larger than MaxBytes was kept in memory")
	}
	if st := c.Stats(); st.Bytes != 60 {
		t.Errorf("oversized Put changed byte accounting: %+v", st)
	}
}

// TestGetPartialBudgetGuard is the laundering guard at the cache layer: a
// bracket computed under budget B is served only to callers whose own
// budget is ≥ B, and never to unbounded callers.
func TestGetPartialBudgetGuard(t *testing.T) {
	c := New(Options{})
	k := testKey(7)
	c.Put(k, Entry{Value: "bracket", Budget: 1000})

	if _, ok := c.GetPartial(k, 1000); !ok {
		t.Error("equal budget was refused")
	}
	if _, ok := c.GetPartial(k, 5000); !ok {
		t.Error("looser budget was refused")
	}
	if _, ok := c.GetPartial(k, 8); ok {
		t.Error("tighter budget was served a wide-budget bracket")
	}
	if _, ok := c.GetPartial(k, 0); ok {
		t.Error("unbounded caller was served a partial bracket")
	}
	st := c.Stats()
	if st.PartialHits != 2 || st.PartialMisses != 2 || st.BudgetRejects != 2 {
		t.Errorf("stats = %+v; want 2 partial hits, 2 partial misses, 2 budget rejects", st)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Codec: stringCodec{}}
	k := testKey(42)

	c1 := New(opts)
	c1.Put(k, Entry{Value: "persisted", Size: 9, Budget: 123})

	// A fresh cache over the same directory must answer from disk.
	c2 := New(opts)
	e, ok := c2.Get(k)
	if !ok || e.Value != "persisted" {
		t.Fatalf("disk Get = %+v, %v", e, ok)
	}
	if e.Budget != 123 {
		t.Errorf("blob Budget = %d, want 123", e.Budget)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.DiskErrors != 0 {
		t.Errorf("stats = %+v; want 1 disk hit, 0 errors", st)
	}
	// The loaded entry is promoted: a second Get stays in memory.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("second Get went to disk: %+v", st)
	}

	// The partial serve guard applies to disk-loaded entries too.
	c3 := New(opts)
	if _, ok := c3.GetPartial(k, 8); ok {
		t.Error("tight-budget caller served a disk bracket stored under budget 123")
	}
	c4 := New(opts)
	if e, ok := c4.GetPartial(k, 123); !ok || e.Value != "persisted" {
		t.Errorf("equal-budget disk GetPartial = %+v, %v", e, ok)
	}
}

func TestFileStoreMalformedBlob(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir, Codec: stringCodec{}})
	k := testKey(9)
	if err := os.WriteFile(filepath.Join(dir, k.String()+blobExt), []byte("not a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Error("malformed blob served as a hit")
	}
	if st := c.Stats(); st.DiskErrors != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v; want the malformed blob to degrade to a counted miss", st)
	}
}

// TestDirWithoutCodecIsMemoryOnly: a Dir with no Codec cannot serialize,
// so the cache silently stays memory-only rather than erroring per Put.
func TestDirWithoutCodecIsMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir})
	c.Put(testKey(1), Entry{Value: "v"})
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("blobs written without a codec: %v", ents)
	}
	if _, ok := c.Get(testKey(1)); !ok {
		t.Error("memory entry missing")
	}
}
