// Package cache memoizes exact-solver results behind canonical instance
// fingerprints: a content address derived from the DAG's structure, the
// packed game parameters, and the result-affecting subset of the search
// configuration, held in a bounded in-memory LRU with an optional
// file-backed store so results survive process restarts.
//
// The package is deliberately value-agnostic: entries hold `any` and a
// caller-supplied Codec serializes them for the file store, so cache
// does not import the solver package (internal/opt wraps it as
// SolveCached without an import cycle).
//
// What is and is not in a key. The fingerprint must change whenever the
// solver's answer could, and must NOT change when it provably cannot:
//
//   - In: the DAG's node count and edge set (dag.AppendCanonicalWords,
//     representation-stable), every pebble.Params field, the heuristic
//     mode, the dominance and witness switches, and — for complete-result
//     keys — the normalized state budget (a proven optimum found under
//     budget B must not be served to a caller whose budget B' < B would
//     have stopped the search short of proving it).
//   - Out: Workers and the engine Mode (optima are engine-invariant:
//     every worker count and both engines prove the same optimum, and
//     deterministic results are additionally byte-identical across
//     worker counts), the DAG's name and labels (cosmetic), and
//     wall-clock deadlines (a deadline stop is not a function of the
//     instance, so deadline/canceled results are never cached at all —
//     that is how "deadline-partiality enters the key": as a key that is
//     never written).
//
// Partial (budget-stopped) brackets are stored under a separate key
// domain (PartialKeyOf) that omits the budget; the entry records the
// budget it was computed under and Cache.GetPartial only serves it to
// callers with an equal-or-looser budget, so a cached wide-budget
// bracket can never launder a tighter bound than the caller's own
// budget justifies.
package cache

import (
	"fmt"

	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// keyVersion tags the canonical word layout. Bump it whenever the
// encoding changes so stale file-store blobs miss cleanly instead of
// decoding under the wrong semantics.
const keyVersion = 1

// Key domain tags, so a complete-result key and a partial-bracket key of
// the same instance can never collide.
const (
	tagComplete = 0x6f7074 // "opt"
	tagPartial  = 0x706172 // "par"
)

// keySeed is the word prepended for the second hash pass (an arbitrary
// odd constant, splitmix64's increment). Prepending — rather than
// appending — restarts the FNV fold from a different state, so the two
// 64-bit halves are independent functions of the whole word stream, not
// two finishes of the same 64-bit fold.
const keySeed = 0x9e3779b97f4a7c15

// Key is a 128-bit content address: two independently seeded
// hashtab.Hash passes over the same canonical words. 64 bits would make
// accidental collisions plausible over a long-lived file store; at 128
// they are negligible for any realistic corpus.
type Key struct {
	Hi, Lo uint64
}

// String renders the key as 32 hex digits — the file-store blob name.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }

// SolverConfig is the result-affecting subset of the exact solver's
// configuration: the fields that can change a Result's content, as
// opposed to how fast it is produced. Workers and the engine mode are
// deliberately absent (see the package comment).
type SolverConfig struct {
	// Heuristic is the admissible bound stack the search runs under
	// (opt.HeuristicMode's underlying value).
	Heuristic uint8
	// Dominance enables strictly-dominated-candidate pruning.
	Dominance bool
	// Witness requests move-sequence reconstruction.
	Witness bool
	// MaxStates is the state budget, 0 meaning unbounded. It enters
	// complete-result keys (a proven optimum is only reproducible by
	// budgets that let the search finish) and is carried on partial
	// entries for the equal-or-looser serve guard.
	MaxStates int
}

// Normalize collapses semantically identical configurations onto one
// key: the solver ignores Dominance in witness mode (shade
// canonicalization is off there, making the subset test unsound), and
// every non-positive budget means "unbounded".
func (sc SolverConfig) Normalize() SolverConfig {
	if sc.Witness {
		sc.Dominance = false
	}
	if sc.MaxStates < 0 {
		sc.MaxStates = 0
	}
	return sc
}

// KeyOf fingerprints (instance, config) for complete-result lookups.
// The canonical word stream is: seed slot, key version, domain tag, the
// DAG words, the Params words, then the config words including the
// normalized budget.
func KeyOf(in *pebble.Instance, sc SolverConfig) Key {
	return hashWords(appendKeyWords(in, sc, tagComplete, true))
}

// PartialKeyOf fingerprints (instance, config) for budget-stopped
// bracket lookups. The budget is omitted from the key — one instance has
// one partial slot, and the budget lives on the entry where GetPartial's
// serve guard can compare it against the caller's.
func PartialKeyOf(in *pebble.Instance, sc SolverConfig) Key {
	return hashWords(appendKeyWords(in, sc, tagPartial, false))
}

func appendKeyWords(in *pebble.Instance, sc SolverConfig, tag uint64, budgetInKey bool) []uint64 {
	sc = sc.Normalize()
	words := make([]uint64, 1, 16+in.Graph.M())
	words = append(words, keyVersion, tag)
	words = in.Graph.AppendCanonicalWords(words)
	words = in.Params.AppendWords(words)
	dom, wit := uint64(0), uint64(0)
	if sc.Dominance {
		dom = 1
	}
	if sc.Witness {
		wit = 1
	}
	words = append(words, uint64(sc.Heuristic), dom, wit)
	if budgetInKey {
		words = append(words, uint64(sc.MaxStates))
	}
	return words
}

// hashWords derives the 128-bit key from the canonical words: words[0]
// is the reserved seed slot, rewritten between the two passes.
func hashWords(words []uint64) Key {
	words[0] = 0
	lo := hashtab.Hash(words)
	words[0] = keySeed
	hi := hashtab.Hash(words)
	return Key{Hi: hi, Lo: lo}
}
