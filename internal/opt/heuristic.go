package opt

// I/O-aware admissible heuristic stack for the exact solver.
//
// Three modes, selected by Config.Heuristic:
//
//   - HeuristicFloor: the original compute floor ⌈|U|/k⌉·c, where U is the
//     set of never-computed nodes. Admissible because in any reachable
//     state every uncomputed node is still an ancestor of an unpebbled
//     sink, so it must appear in some future compute move, and one move
//     computes at most k nodes.
//   - HeuristicIO: a coupled compute/I-O bound. Beyond the compute floor
//     it charges (a) a critical-chain term — uncomputed nodes on a
//     directed path cannot share a compute move, (b) the necessary-loads
//     set B = direct predecessors of U that are computed but red nowhere:
//     each such value must be re-acquired before its uncomputed successor
//     can be computed, either by a read (if blue, g per k values) or by
//     recomputation (c per k values, folded into the compute term), with
//     the split x = "how many of the blue ones to read" minimized exactly,
//     (c) forced recomputations of computed sinks that hold no pebble at
//     all (they must become pebbled again to satisfy the goal), and (d) a
//     store floor: sinks not yet blue in excess of total red capacity k·r
//     must be written, k writes per move. In one-shot mode recomputation
//     is illegal, so a state with a recompute-only obligation is dead and
//     the heuristic reports that with a negative sentinel.
//   - HeuristicMax: the pointwise max of the two (max of admissibles is
//     admissible). This is the default.
//
// Both io and max are consistent (see DESIGN.md §6 for the per-move-kind
// argument), so the monotone bucket queue's forward-only cursor and the
// anytime LowerBound monotonicity are preserved.

import (
	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/pebble"
)

// HeuristicMode selects the admissible heuristic the exact search runs
// under. The zero value is HeuristicMax, the strongest stack — callers
// that construct a Config by hand get the recommended mode for free.
type HeuristicMode uint8

const (
	// HeuristicMax is the pointwise max of the floor and io bounds.
	HeuristicMax HeuristicMode = iota
	// HeuristicFloor is the compute floor ⌈uncomputed/k⌉·computeCost.
	HeuristicFloor
	// HeuristicIO is the coupled compute/I-O bound.
	HeuristicIO
)

// deadState is the sentinel hIO returns for states that provably cannot
// reach the goal (one-shot mode only): a value is needed again but is
// neither red anywhere nor blue, and recomputation is forbidden.
const deadState int64 = -1

func (m HeuristicMode) String() string {
	switch m {
	case HeuristicFloor:
		return "floor"
	case HeuristicIO:
		return "io"
	case HeuristicMax:
		return "max"
	}
	return "unknown"
}

// ParseHeuristicMode parses "floor", "io" or "max" (the flag spelling
// used by cmd/mppbench).
func ParseHeuristicMode(s string) (HeuristicMode, bool) {
	switch s {
	case "floor":
		return HeuristicFloor, true
	case "io":
		return HeuristicIO, true
	case "max":
		return HeuristicMax, true
	}
	return HeuristicMax, false
}

// initDerived builds the instance-derived lookup state the heuristics
// and the expander share: predecessor bitmasks, the sink mask, the full
// node mask, the topological order and the chain-DP scratch. Called once
// per search (and by RootLowerBound for a one-off evaluation). It fully
// overwrites every field it fills — including explicit zeroing of the
// accumulated masks — so it is safe on a pool-recycled solver that still
// carries a previous instance's values.
func (s *solver) initDerived() {
	g := s.in.Graph
	s.predMask = resizeU64(s.predMask, s.n)
	for v := 0; v < s.n; v++ {
		s.predMask[v] = 0
		for _, u := range g.Pred(dag.NodeID(v)) {
			s.predMask[v] |= 1 << uint(u)
		}
	}
	s.sinkMask = 0
	for _, v := range g.Sinks() {
		s.sinkMask |= 1 << uint(v)
	}
	if s.n == 64 {
		s.allMask = ^uint64(0)
	} else {
		s.allMask = 1<<uint(s.n) - 1
	}
	s.kr = s.in.K * s.in.R
	s.topo = g.Topo()
	if cap(s.chainDP) < s.n {
		s.chainDP = make([]int32, s.n)
	} else {
		s.chainDP = s.chainDP[:s.n]
	}
}

// h dispatches on the configured mode. A negative return is the
// dead-state sentinel (one-shot only); relax drops such candidates.
//
//mpp:hotpath
func (s *solver) h(w []uint64) int64 {
	switch s.cfg.Heuristic {
	case HeuristicFloor:
		return s.hFloor(s.computedWord(w))
	case HeuristicIO:
		return s.hIO(w)
	default:
		hi := s.hIO(w)
		if hi < 0 {
			return hi
		}
		if hf := s.hFloor(s.computedWord(w)); hf > hi {
			return hf
		}
		return hi
	}
}

// hFloor is the original compute floor, preserved bit-for-bit: every
// never-computed node must appear in some compute move, and one move
// computes at most k of them. For classic SPP (free computes) it is 0.
//
//mpp:hotpath
func (s *solver) hFloor(computed uint64) int64 {
	if s.in.ComputeCost == 0 {
		return 0
	}
	uncomputed := s.n - popcount(computed)
	if uncomputed <= 0 {
		return 0
	}
	k := s.in.K
	return int64((uncomputed+k-1)/k) * int64(s.in.ComputeCost)
}

// hIO is the coupled compute/I-O bound described in the file comment.
//
//mpp:hotpath
func (s *solver) hIO(w []uint64) int64 {
	k := s.in.K
	g := int64(s.in.G)
	c := int64(s.in.ComputeCost)
	blue := w[k]
	computed := w[k+1]
	var redAny uint64
	for _, r := range w[:k] {
		redAny |= r
	}

	// Store floor: sinks not yet blue beyond total red capacity must be
	// written out. At any goal state the ≤ k·r unwritten sinks all fit in
	// red, so the term vanishes exactly when it must.
	var hw int64
	if g > 0 {
		if wr := popcount(s.sinkMask&^blue) - s.kr; wr > 0 {
			hw = g * int64((wr+k-1)/k)
		}
	}

	// Forced recomputations: computed sinks holding no pebble at all.
	// They must be pebbled again for the goal, and (having no
	// successors) they are disjoint from the predecessor set B below.
	resink := s.sinkMask & computed &^ (redAny | blue)
	if s.in.OneShot && resink != 0 {
		return deadState
	}
	yForced := popcount(resink)

	uncomputed := s.allMask &^ computed
	u := popcount(uncomputed)
	if u == 0 && yForced == 0 {
		return hw
	}

	// Necessary loads: direct predecessors of U that are computed but red
	// nowhere. Each must be re-acquired (read if blue, recomputed
	// otherwise) before its uncomputed successor can be computed.
	// Restricting to *direct* predecessors keeps the bound admissible
	// under recomputation: an uncomputed predecessor is already charged
	// in U itself.
	var predU uint64
	um := uncomputed
	for um != 0 {
		v := trailingZeros(um)
		um &= um - 1
		predU |= s.predMask[v]
	}
	b := predU & computed &^ redAny
	bAll := popcount(b)
	bBlue := popcount(b & blue)
	if s.in.OneShot && bAll != bBlue {
		return deadState // recompute-only obligation, recompute illegal
	}

	// Critical chain: uncomputed nodes on a directed path serialize.
	// Redundant for k == 1 (⌈u/1⌉ = u ≥ chain) and irrelevant when
	// computes are free.
	chain := 0
	if c > 0 && k > 1 {
		chain = s.chainLen(uncomputed)
	}

	if s.in.OneShot {
		// No recomputation: every B value must be read.
		hc := int64((u + k - 1) / k)
		if int64(chain) > hc {
			hc = int64(chain)
		}
		return c*hc + g*int64((bAll+k-1)/k) + hw
	}

	// Choose x = number of B values re-acquired by reading (only the blue
	// ones are readable; the rest recompute). Each split is admissible
	// for the pebblings that use it, so the min over x is admissible.
	best := int64(1) << 62
	for x := 0; x <= bBlue; x++ {
		y := yForced + bAll - x
		hc := int64((u + y + k - 1) / k)
		if int64(chain) > hc {
			hc = int64(chain)
		}
		if v := c*hc + g*int64((x+k-1)/k); v < best {
			best = v
		}
	}
	return best + hw
}

// chainLen returns the length (in nodes) of the longest directed path
// consisting solely of uncomputed nodes — a DP over the precomputed
// topological order using the chainDP scratch array.
//
//mpp:hotpath
func (s *solver) chainLen(uncomputed uint64) int {
	best := int32(0)
	for _, v := range s.topo {
		bit := uint64(1) << uint(v)
		if uncomputed&bit == 0 {
			s.chainDP[v] = 0
			continue
		}
		d := int32(0)
		pm := s.predMask[v] & uncomputed
		for pm != 0 {
			u := trailingZeros(pm)
			pm &= pm - 1
			if s.chainDP[u] > d {
				d = s.chainDP[u]
			}
		}
		d++
		s.chainDP[v] = d
		if d > best {
			best = d
		}
	}
	return int(best)
}

// RootLowerBound evaluates the selected heuristic at the empty start
// configuration — an admissible lower bound on OPT obtained without
// expanding a single state. Experiment tables use it to tighten the
// lower end of anytime brackets. For instances beyond the 62-node
// packed-state limit it falls back to the equivalent structural bound
// from the bounds package (identical at the root by construction).
func RootLowerBound(in *pebble.Instance, mode HeuristicMode) int64 {
	n := in.Graph.N()
	if n == 0 {
		return 0
	}
	if n > 62 {
		if mode == HeuristicFloor {
			return bounds.Lemma1Lower(in)
		}
		return bounds.StructuralLower(in)
	}
	s := &solver{in: in, n: n, cfg: Config{Heuristic: mode}}
	s.initDerived()
	start := make([]uint64, stateWords(in.K))
	h := s.h(start)
	if h < 0 {
		return 0 // unreachable: the empty start has no obligations yet
	}
	return h
}
