package opt

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/pebble"
)

// drainSolverPool empties the package solver pool, returning everything
// it held. Tests drain before a scenario (isolation from earlier tests)
// and after (to inspect what release() chose to keep).
func drainSolverPool() []*solver {
	var out []*solver
	for {
		v := solverPool.Get()
		if v == nil {
			return out
		}
		out = append(out, v.(*solver))
	}
}

// TestReleaseDropsOversizedArenas is the pool-retention regression test:
// a batch mixing one huge search with small ones must not leave the
// huge search's arenas in the pool, where they would pin worst-case
// memory for the process lifetime. Against the pre-guard release() (an
// unconditional solverPool.Put) the drained solver still holds the big
// solve's arenas and the assertion fails; with the oversize guard the
// big arenas are dropped on release. GC can empty a sync.Pool at any
// time, which could only ever hide a failure, never fabricate one — the
// assertion is on what IS in the pool, and the Put→Get pairs below run
// back to back.
func TestReleaseDropsOversizedArenas(t *testing.T) {
	oldMax := maxPooledArenaBytes
	maxPooledArenaBytes = 256 << 10
	defer func() { maxPooledArenaBytes = oldMax }()
	drainSolverPool()

	// Floor heuristic, no dominance: the weakest configuration, so the
	// grid3x3 search genuinely exhausts its 20k-state budget (the
	// default stack proves this instance in a few dozen expansions).
	big := pebble.MustInstance(gen.Grid2D(3, 3), pebble.MPP(2, 4, 2))
	small := pebble.MustInstance(gen.Chain(5), pebble.MPP(2, 2, 3))
	cfg := Config{MaxStates: 20_000, Heuristic: HeuristicFloor, Workers: 1}

	ctx := context.Background()
	batch := SolveBatch(ctx, []*pebble.Instance{big, small, small}, cfg)
	bigRes := batch[0].Result
	if bigRes == nil || !errors.Is(batch[0].Err, ErrBudget) {
		t.Fatalf("big solve: want a budget-stopped partial, got result %v err %v", bigRes, batch[0].Err)
	}
	for i, br := range batch[1:] {
		if br.Err != nil {
			t.Fatalf("small solve %d: %v", i, br.Err)
		}
	}
	// Precondition: the big search's state table alone (every expanded
	// state is an inserted key of stateWords(k) words) must exceed the
	// lowered threshold, or the scenario stops exercising the guard.
	if minBytes := int64(bigRes.States) * int64(stateWords(big.K)) * 8; minBytes <= maxPooledArenaBytes {
		t.Fatalf("big solve expanded only %d states (≥%d table bytes) — below the %d-byte threshold; grow the instance or budget",
			bigRes.States, minBytes, maxPooledArenaBytes)
	}

	for _, s := range drainSolverPool() {
		if b := s.arenaBytes(); b > maxPooledArenaBytes {
			t.Errorf("pool retains a solver with %d arena bytes (threshold %d): oversized arenas must be dropped on release",
				b, maxPooledArenaBytes)
		}
	}
}

// TestReleaseKeepsModestArenas guards the other direction: ordinary
// solves stay pooled under the default threshold, so the recycling that
// batch_test.go's allocation budgets depend on still happens.
func TestReleaseKeepsModestArenas(t *testing.T) {
	drainSolverPool()
	in := pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3))
	res, err := Exact(in, budget)
	if err != nil || res.Status != StatusComplete {
		t.Fatalf("Exact: status %v, err %v", res.Status, err)
	}
	kept := drainSolverPool()
	if len(kept) == 0 {
		// A GC between release and drain can legitimately empty the
		// pool; don't fail on scheduling noise, just report.
		t.Skip("pool empty after solve (GC ran?); nothing to assert")
	}
	for _, s := range kept {
		if b := s.arenaBytes(); b > maxPooledArenaBytes {
			t.Errorf("modest solve pooled %d arena bytes > default threshold %d", b, maxPooledArenaBytes)
		}
	}
}
