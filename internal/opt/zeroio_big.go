package opt

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/hashtab"
)

// ZeroIOBig is ZeroIO for DAGs of arbitrary size, using bitsets instead
// of single-word masks. It is used by the hardness reductions, whose
// instances exceed 62 nodes. Same semantics as ZeroIO, including anytime
// behavior: on budget or cancellation it returns the explored-state count
// with an indeterminate verdict.
func ZeroIOBig(g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ZeroIOBigCtx
	return zeroIOBig(context.Background(), g, r, maxStates, nil)
}

// ZeroIOBigCtx is ZeroIOBig honoring a context: the search polls ctx and
// stops with an indeterminate partial result when it is canceled or its
// deadline passes.
func ZeroIOBigCtx(ctx context.Context, g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	return zeroIOBig(ctx, g, r, maxStates, nil)
}

// zeroIOBig runs the search. failed overrides the failure memo (tests
// pass the map-backed hashtab.Ref oracle); nil selects the
// open-addressing table. The memo is keyed on the raw words of the
// computed-set bitset, appended into a reusable buffer — no per-state
// string key is ever built.
func zeroIOBig(ctx context.Context, g *dag.Graph, r int, maxStates int, failed hashtab.Index) (*ZeroIOResult, error) {
	n := g.N()
	if n == 0 {
		return &ZeroIOResult{Feasible: true, Verdict: VerdictFeasible}, nil
	}
	if err := ctx.Err(); err != nil {
		return &ZeroIOResult{Verdict: VerdictIndeterminate, Status: StatusCanceled}, cancelErr(ctx, 0)
	}
	isSink := make([]bool, n)
	for _, v := range g.Sinks() {
		isSink[v] = true
	}

	computed := bitset.New(n)
	live := bitset.New(n)
	remSucc := make([]int, n)
	remPred := make([]int, n)
	for v := 0; v < n; v++ {
		remSucc[v] = g.OutDegree(dag.NodeID(v))
		remPred[v] = g.InDegree(dag.NodeID(v))
	}

	keyWords := len(computed.AppendWords(nil))
	if failed == nil {
		failed = hashtab.New(keyWords, 1024)
	}
	keyBuf := make([]uint64, 0, keyWords)
	states := 0
	var order []dag.NodeID

	// Incremental live tracking: when v is computed, v becomes live; each
	// predecessor u with all successors computed (and not a sink) dies.
	// Dead predecessors are recorded on a shared stack — a frame is just
	// (v, stack watermark), so apply/undo never allocate.
	type frame struct {
		v         dag.NodeID
		diedStart int
	}
	var diedStack []dag.NodeID

	apply := func(v dag.NodeID) frame {
		fr := frame{v: v, diedStart: len(diedStack)}
		computed.Add(int(v))
		live.Add(int(v))
		for _, u := range g.Pred(v) {
			remSucc[u]--
			if remSucc[u] == 0 && !isSink[u] {
				live.Remove(int(u))
				diedStack = append(diedStack, u)
			}
		}
		for _, w := range g.Succ(v) {
			remPred[w]--
		}
		return fr
	}
	undo := func(fr frame) {
		for _, w := range g.Succ(fr.v) {
			remPred[w]++
		}
		for _, u := range g.Pred(fr.v) {
			remSucc[u]++
		}
		for _, u := range diedStack[fr.diedStart:] {
			live.Add(int(u))
		}
		diedStack = diedStack[:fr.diedStart]
		live.Remove(int(fr.v))
		computed.Remove(int(fr.v))
	}

	// Twin canonicalization: nodes with identical predecessor and
	// successor lists are interchangeable; restrict schedules to compute
	// each twin class in ascending ID order. This is a pure symmetry
	// reduction (any schedule can be relabeled within a class).
	prevTwin := make([]dag.NodeID, n)
	{
		classes := map[string]dag.NodeID{}
		for v := 0; v < n; v++ {
			sig := make([]byte, 0, 4*(g.InDegree(dag.NodeID(v))+g.OutDegree(dag.NodeID(v))+1))
			for _, u := range g.Pred(dag.NodeID(v)) {
				sig = append(sig, byte(u), byte(u>>8), byte(u>>16), 'p')
			}
			sig = append(sig, '|')
			for _, w := range g.Succ(dag.NodeID(v)) {
				sig = append(sig, byte(w), byte(w>>8), byte(w>>16), 's')
			}
			key := string(sig)
			if prev, ok := classes[key]; ok {
				prevTwin[v] = prev
			} else {
				prevTwin[v] = -1
			}
			classes[key] = dag.NodeID(v)
		}
	}
	allowed := func(v int) bool {
		return prevTwin[v] < 0 || computed.Contains(int(prevTwin[v]))
	}

	// deaths returns how many pebbles computing v would free immediately.
	deaths := func(v dag.NodeID) int {
		d := 0
		for _, u := range g.Pred(v) {
			if remSucc[u] == 1 && !isSink[u] {
				d++
			}
		}
		return d
	}

	var rec func() (bool, error)
	rec = func() (bool, error) {
		if computed.Count() == n {
			return true, nil
		}
		keyBuf = computed.AppendWords(keyBuf[:0])
		if _, isFailed := failed.Find(keyBuf); isFailed {
			return false, nil
		}
		states++
		if states > maxStates {
			return false, budgetErr(states)
		}
		if states&ctxCheckMask == 0 && ctx.Err() != nil {
			return false, cancelErr(ctx, states)
		}
		liveCount := live.Count()
		// Dominance rule: a computable node whose computation immediately
		// frees at least one pebble (net ≤ 0) can always be scheduled
		// first — delaying it never helps (standard exchange argument:
		// moving it earlier only lowers the live profile of every later
		// prefix). Branch solely on the first such node when one exists.
		if liveCount+1 <= r {
			for v := 0; v < n; v++ {
				if computed.Contains(v) || remPred[v] != 0 || !allowed(v) || deaths(dag.NodeID(v)) == 0 {
					continue
				}
				fr := apply(dag.NodeID(v))
				ok, err := rec()
				if err != nil {
					undo(fr)
					return false, err
				}
				if ok {
					order = append(order, dag.NodeID(v))
				} else {
					// Deeper calls clobbered keyBuf; rebuild this state's
					// key (apply is still in effect, so undo first).
					undo(fr)
					keyBuf = computed.AppendWords(keyBuf[:0])
					failed.Insert(keyBuf)
					return false, nil
				}
				undo(fr)
				return true, nil
			}
		}
		for v := 0; v < n; v++ {
			if computed.Contains(v) || remPred[v] != 0 || !allowed(v) {
				continue
			}
			// Peak while computing v: current live + v's fresh pebble
			// (v's predecessors are all live: they have the uncomputed
			// successor v).
			if liveCount+1 > r {
				continue
			}
			fr := apply(dag.NodeID(v))
			ok, err := rec()
			if err != nil {
				undo(fr)
				return false, err
			}
			if ok {
				order = append(order, dag.NodeID(v))
				undo(fr)
				return true, nil
			}
			undo(fr)
		}
		keyBuf = computed.AppendWords(keyBuf[:0])
		failed.Insert(keyBuf)
		return false, nil
	}
	ok, err := rec()
	if err != nil {
		return &ZeroIOResult{States: states, Verdict: VerdictIndeterminate, Status: statusOfStop(err)}, err
	}
	res := &ZeroIOResult{Feasible: ok, States: states, Verdict: verdictOf(ok)}
	if ok {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		res.Order = order
	}
	return res, nil
}
