package opt

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dag"
)

// ZeroIOBig is ZeroIO for DAGs of arbitrary size, using bitsets instead
// of single-word masks. It is used by the hardness reductions, whose
// instances exceed 62 nodes. Same semantics as ZeroIO.
func ZeroIOBig(g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	n := g.N()
	if n == 0 {
		return &ZeroIOResult{Feasible: true}, nil
	}
	isSink := make([]bool, n)
	for _, v := range g.Sinks() {
		isSink[v] = true
	}

	// Incremental live tracking: when v is computed, v becomes live; each
	// predecessor u with all successors computed (and not a sink) dies.
	type frame struct {
		v    dag.NodeID
		died []dag.NodeID
	}
	computed := bitset.New(n)
	live := bitset.New(n)
	remSucc := make([]int, n)
	remPred := make([]int, n)
	for v := 0; v < n; v++ {
		remSucc[v] = g.OutDegree(dag.NodeID(v))
		remPred[v] = g.InDegree(dag.NodeID(v))
	}

	failed := map[string]bool{}
	states := 0
	var order []dag.NodeID

	apply := func(v dag.NodeID) frame {
		fr := frame{v: v}
		computed.Add(int(v))
		live.Add(int(v))
		for _, u := range g.Pred(v) {
			remSucc[u]--
			if remSucc[u] == 0 && !isSink[u] {
				live.Remove(int(u))
				fr.died = append(fr.died, u)
			}
		}
		for _, w := range g.Succ(v) {
			remPred[w]--
		}
		return fr
	}
	undo := func(fr frame) {
		for _, w := range g.Succ(fr.v) {
			remPred[w]++
		}
		for _, u := range g.Pred(fr.v) {
			remSucc[u]++
		}
		for _, u := range fr.died {
			live.Add(int(u))
		}
		live.Remove(int(fr.v))
		computed.Remove(int(fr.v))
	}
	key := func() string {
		words := computed.AppendWords(nil)
		buf := make([]byte, 0, len(words)*8)
		for _, w := range words {
			buf = appendU64(buf, w)
		}
		return string(buf)
	}

	// Twin canonicalization: nodes with identical predecessor and
	// successor lists are interchangeable; restrict schedules to compute
	// each twin class in ascending ID order. This is a pure symmetry
	// reduction (any schedule can be relabeled within a class).
	prevTwin := make([]dag.NodeID, n)
	{
		classes := map[string]dag.NodeID{}
		for v := 0; v < n; v++ {
			sig := make([]byte, 0, 4*(g.InDegree(dag.NodeID(v))+g.OutDegree(dag.NodeID(v))+1))
			for _, u := range g.Pred(dag.NodeID(v)) {
				sig = append(sig, byte(u), byte(u>>8), byte(u>>16), 'p')
			}
			sig = append(sig, '|')
			for _, w := range g.Succ(dag.NodeID(v)) {
				sig = append(sig, byte(w), byte(w>>8), byte(w>>16), 's')
			}
			key := string(sig)
			if prev, ok := classes[key]; ok {
				prevTwin[v] = prev
			} else {
				prevTwin[v] = -1
			}
			classes[key] = dag.NodeID(v)
		}
	}
	allowed := func(v int) bool {
		return prevTwin[v] < 0 || computed.Contains(int(prevTwin[v]))
	}

	// deaths returns how many pebbles computing v would free immediately.
	deaths := func(v dag.NodeID) int {
		d := 0
		for _, u := range g.Pred(v) {
			if remSucc[u] == 1 && !isSink[u] {
				d++
			}
		}
		return d
	}

	var rec func() (bool, error)
	rec = func() (bool, error) {
		if computed.Count() == n {
			return true, nil
		}
		k := key()
		if failed[k] {
			return false, nil
		}
		states++
		if states > maxStates {
			return false, fmt.Errorf("%w after %d states", ErrBudget, states)
		}
		liveCount := live.Count()
		// Dominance rule: a computable node whose computation immediately
		// frees at least one pebble (net ≤ 0) can always be scheduled
		// first — delaying it never helps (standard exchange argument:
		// moving it earlier only lowers the live profile of every later
		// prefix). Branch solely on the first such node when one exists.
		if liveCount+1 <= r {
			for v := 0; v < n; v++ {
				if computed.Contains(v) || remPred[v] != 0 || !allowed(v) || deaths(dag.NodeID(v)) == 0 {
					continue
				}
				fr := apply(dag.NodeID(v))
				ok, err := rec()
				if err != nil {
					undo(fr)
					return false, err
				}
				if ok {
					order = append(order, dag.NodeID(v))
				} else {
					failed[k] = true
				}
				undo(fr)
				return ok, nil
			}
		}
		for v := 0; v < n; v++ {
			if computed.Contains(v) || remPred[v] != 0 || !allowed(v) {
				continue
			}
			// Peak while computing v: current live + v's fresh pebble
			// (v's predecessors are all live: they have the uncomputed
			// successor v).
			if liveCount+1 > r {
				continue
			}
			fr := apply(dag.NodeID(v))
			ok, err := rec()
			if err != nil {
				undo(fr)
				return false, err
			}
			if ok {
				order = append(order, dag.NodeID(v))
				undo(fr)
				return true, nil
			}
			undo(fr)
		}
		failed[k] = true
		return false, nil
	}
	ok, err := rec()
	if err != nil {
		return nil, err
	}
	res := &ZeroIOResult{Feasible: ok, States: states}
	if ok {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		res.Order = order
	}
	return res, nil
}
