package opt

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pebble"
)

// Tests of the sharded wave-synchronous engine: byte-identical results
// across worker counts, oracle equivalence at each worker count, the
// anytime contract under sharding, and the incumbent-less LowerBound
// regression (ISSUE 5).

// workerSweep is the worker-count grid the determinism tests run: the
// inline path, two even splits, and a prime that exercises uneven
// shard ownership.
var workerSweep = []int{1, 2, 4, 7}

// TestExactWorkersMatchSequentialZoo locks the parallel solver to the
// single-worker run for every zoo case and worker count: Cost, States,
// Status, Incumbent, LowerBound and Pruned must all be byte-identical.
// Pruned is unconditional since the dead-state share started counting
// distinct dead states (order-independent) instead of improvement
// events — the ISSUE 6 stats unification.
func TestExactWorkersMatchSequentialZoo(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		cfg := DefaultConfig(budget)
		cfg.Workers = 1
		want, err := ExactWith(ctx, in, cfg)
		if err != nil {
			t.Fatalf("%s: workers=1: %v", c.name, err)
		}
		for _, w := range workerSweep[1:] {
			cfg.Workers = w
			got, err := ExactWith(ctx, in, cfg)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", c.name, w, err)
			}
			if got.Cost != want.Cost || got.States != want.States ||
				got.Status != want.Status || got.Incumbent != want.Incumbent ||
				got.LowerBound != want.LowerBound {
				t.Errorf("%s: workers=%d (cost %d states %d status %v inc %d lb %d) ≠ workers=1 (cost %d states %d status %v inc %d lb %d)",
					c.name, w, got.Cost, got.States, got.Status, got.Incumbent, got.LowerBound,
					want.Cost, want.States, want.Status, want.Incumbent, want.LowerBound)
			}
			if got.Pruned != want.Pruned {
				t.Errorf("%s: workers=%d pruned %d ≠ workers=1 pruned %d",
					c.name, w, got.Pruned, want.Pruned)
			}
		}
	}
}

// TestExactWorkersMatchOracleZoo runs table vs map-backed oracle at
// every worker count: the two implementations perform the identical
// operation sequence per shard, so every Result field (Pruned included)
// must match byte-for-byte.
func TestExactWorkersMatchOracleZoo(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		for _, w := range workerSweep {
			cfg := DefaultConfig(budget)
			cfg.Workers = w
			got, err := ExactWith(ctx, in, cfg)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", c.name, w, err)
			}
			want, err := ExactOracleWith(in, cfg)
			if err != nil {
				t.Fatalf("%s: workers=%d oracle: %v", c.name, w, err)
			}
			if got.Cost != want.Cost || got.States != want.States ||
				got.Pruned != want.Pruned || got.Incumbent != want.Incumbent ||
				got.LowerBound != want.LowerBound || got.Status != want.Status {
				t.Errorf("%s: workers=%d table (cost %d states %d pruned %d) ≠ oracle (cost %d states %d pruned %d)",
					c.name, w, got.Cost, got.States, got.Pruned, want.Cost, want.States, want.Pruned)
			}
		}
	}
}

// TestExactWorkersWitness checks the witness contract under sharding:
// the strategy must replay to exactly the (worker-count-invariant)
// optimal cost. The move sequence itself may differ across worker
// counts — parent ties resolve by apply order — so only cost and
// validity are asserted.
func TestExactWorkersWitness(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		var optCost int64 = -1
		for _, w := range workerSweep {
			cfg := DefaultConfig(budget)
			cfg.Witness = true
			cfg.Workers = w
			res, err := ExactWith(ctx, in, cfg)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", c.name, w, err)
			}
			if res.Strategy == nil {
				t.Fatalf("%s: workers=%d: no strategy", c.name, w)
			}
			rep, err := pebble.Replay(in, res.Strategy)
			if err != nil {
				t.Fatalf("%s: workers=%d: replay: %v", c.name, w, err)
			}
			if rep.Cost != res.Cost {
				t.Errorf("%s: workers=%d: strategy replays to %d, result says %d",
					c.name, w, rep.Cost, res.Cost)
			}
			if optCost < 0 {
				optCost = res.Cost
			} else if res.Cost != optCost {
				t.Errorf("%s: workers=%d: cost %d ≠ workers=1 cost %d", c.name, w, res.Cost, optCost)
			}
		}
	}
}

// TestExactPartialLowerBoundRegression is the ISSUE 5 bugfix test: a
// budget=1 stop sees no feasible pebbling, so Incumbent is -1 — and
// LowerBound must still report the non-negative frontier bound instead
// of being clamped toward the sentinel. Checked at every worker count.
func TestExactPartialLowerBoundRegression(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		for _, w := range workerSweep {
			cfg := DefaultConfig(1)
			cfg.Workers = w
			res, err := ExactWith(ctx, in, cfg)
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("%s: workers=%d: want ErrBudget, got %v", c.name, w, err)
			}
			if res.Status != StatusBudget {
				t.Errorf("%s: workers=%d: status %v, want budget", c.name, w, res.Status)
			}
			if res.Incumbent != -1 {
				t.Errorf("%s: workers=%d: budget=1 found incumbent %d, want -1", c.name, w, res.Incumbent)
			}
			if !(res.LowerBound >= 0 && res.LowerBound > res.Incumbent) {
				t.Errorf("%s: workers=%d: want LowerBound >= 0 > Incumbent, got lb=%d inc=%d",
					c.name, w, res.LowerBound, res.Incumbent)
			}
		}
	}
}

// TestExactParallelAnytimeBracket sweeps budgets at several worker
// counts: each partial bracket must contain the true optimum, and the
// bracket must be byte-identical to the single-worker bracket at the
// same budget (budget stops land on deterministic wave boundaries).
func TestExactParallelAnytimeBracket(t *testing.T) {
	ctx := context.Background()
	in := pebble.MustInstance(zooCases()[4].g, zooCases()[4].p) // grid2x3
	full, err := Exact(in, budget)
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	for _, max := range []int{1, 2, 10, 100} {
		cfg1 := DefaultConfig(max)
		cfg1.Workers = 1
		want, err1 := ExactWith(ctx, in, cfg1)
		for _, w := range workerSweep[1:] {
			cfg := DefaultConfig(max)
			cfg.Workers = w
			got, err := ExactWith(ctx, in, cfg)
			if (err == nil) != (err1 == nil) {
				t.Fatalf("budget %d: workers=%d err %v vs workers=1 err %v", max, w, err, err1)
			}
			if got.LowerBound != want.LowerBound || got.Incumbent != want.Incumbent ||
				got.States != want.States || got.Status != want.Status {
				t.Errorf("budget %d: workers=%d bracket [%d,%d] states %d ≠ workers=1 [%d,%d] states %d",
					max, w, got.LowerBound, got.Incumbent, got.States,
					want.LowerBound, want.Incumbent, want.States)
			}
			if got.LowerBound > full.Cost {
				t.Errorf("budget %d: workers=%d lower bound %d exceeds optimum %d",
					max, w, got.LowerBound, full.Cost)
			}
			if got.Incumbent >= 0 && got.Incumbent < full.Cost {
				t.Errorf("budget %d: workers=%d incumbent %d below optimum %d",
					max, w, got.Incumbent, full.Cost)
			}
		}
	}
}

// TestExactParallelCancel cancels before the search starts: every
// worker count must come back canceled with the no-incumbent sentinel.
func TestExactParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := pebble.MustInstance(zooCases()[4].g, zooCases()[4].p)
	for _, w := range workerSweep {
		cfg := DefaultConfig(budget)
		cfg.Workers = w
		res, err := ExactWith(ctx, in, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if res.Status != StatusCanceled {
			t.Errorf("workers=%d: status %v, want canceled", w, res.Status)
		}
		if res.Incumbent != -1 {
			t.Errorf("workers=%d: incumbent %d, want -1", w, res.Incumbent)
		}
		if res.LowerBound < 0 {
			t.Errorf("workers=%d: negative lower bound %d", w, res.LowerBound)
		}
	}
}

// TestExactUnboundedCompletes is the MaxStates≤0 regression: the Config
// docs promise "non-positive means unbounded", so a zero-budget config
// must run to the proven optimum instead of stopping after one state.
func TestExactUnboundedCompletes(t *testing.T) {
	in := pebble.MustInstance(zooCases()[4].g, zooCases()[4].p)
	want, err := Exact(in, budget)
	if err != nil {
		t.Fatalf("bounded: %v", err)
	}
	for _, max := range []int{0, -5} {
		res, err := ExactWith(context.Background(), in, Config{MaxStates: max, Dominance: true, Workers: 1})
		if err != nil {
			t.Fatalf("MaxStates=%d: %v", max, err)
		}
		if res.Status != StatusComplete || res.Cost != want.Cost {
			t.Errorf("MaxStates=%d: (status %v, cost %d), want complete cost %d",
				max, res.Status, res.Cost, want.Cost)
		}
	}
}

// TestExactWorkersDefaultResolution checks the Workers=0 path end to
// end (GOMAXPROCS resolution included) against the pinned sequential
// result.
func TestExactWorkersDefaultResolution(t *testing.T) {
	in := pebble.MustInstance(zooCases()[4].g, zooCases()[4].p)
	want, err := Exact(in, budget)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	got, err := ExactWith(context.Background(), in, DefaultConfig(budget))
	if err != nil {
		t.Fatalf("workers=0: %v", err)
	}
	if got.Cost != want.Cost || got.States != want.States {
		t.Errorf("workers=0 (cost %d, states %d) ≠ sequential (cost %d, states %d)",
			got.Cost, got.States, want.Cost, want.States)
	}
}
