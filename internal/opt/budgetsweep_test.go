package opt

import (
	"context"
	"testing"

	"repro/internal/pebble"
)

// TestBudgetSweepDeterminism samples the budget axis on every zoo case
// and pins the deterministic engine's partial-result contract off the
// wave grid: at each sampled MaxStates, Workers=4 must reproduce the
// Workers=1 Incumbent/States/LowerBound/Status exactly. This is the
// bounded successor of a PR 5 diagnostic that swept every third budget
// (thousands of solves, minutes of wall clock, dominating the package's
// shared test deadline); a spread of ~8 sample points per case catches
// the same class of wave-boundary regressions in a few seconds, and the
// dense sweep found nothing the samples miss.
func TestBudgetSweepDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		full, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s full: %v", c.name, err)
		}
		// Fixed small budgets hit the earliest waves; the proportional
		// points land mid-search and just shy of completion.
		budgets := []int{1, 2, 3, 5, 8,
			full.States / 3, 2 * full.States / 3, full.States - 1}
		for _, max := range budgets {
			if max < 1 || max >= full.States {
				continue
			}
			cfg1 := DefaultConfig(max)
			cfg1.Workers = 1
			w1, err1 := ExactWith(ctx, in, cfg1)
			cfg4 := DefaultConfig(max)
			cfg4.Workers = 4
			w4, err4 := ExactWith(ctx, in, cfg4)
			if (err1 == nil) != (err4 == nil) {
				t.Fatalf("%s budget=%d: w4 err %v vs w1 err %v", c.name, max, err4, err1)
			}
			if w4.Incumbent != w1.Incumbent || w4.States != w1.States ||
				w4.LowerBound != w1.LowerBound || w4.Status != w1.Status {
				t.Errorf("%s budget=%d: w4 (inc %d states %d lb %d st %v) != w1 (inc %d states %d lb %d st %v)",
					c.name, max, w4.Incumbent, w4.States, w4.LowerBound, w4.Status,
					w1.Incumbent, w1.States, w1.LowerBound, w1.Status)
			}
		}
	}
}
