package opt

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/hardness"
	"repro/internal/pebble"
)

// These tests lock the allocation-free search core to the map-backed
// oracle: the same traversal run against hashtab.Ref must return
// byte-identical results. Any divergence means the open-addressing table
// changed state identity (a hash/equality bug), which is exactly the
// class of bug a perf rewrite can introduce silently.

// zooCases is the DAG zoo × parameter grid the equivalence tests sweep.
func zooCases() []struct {
	name string
	g    *dag.Graph
	p    pebble.Params
} {
	return []struct {
		name string
		g    *dag.Graph
		p    pebble.Params
	}{
		{"chain5", gen.Chain(5), pebble.MPP(1, 2, 3)},
		{"2chains-k1", gen.IndependentChains(2, 3), pebble.MPP(1, 2, 3)},
		{"2chains-k2", gen.IndependentChains(2, 3), pebble.MPP(2, 2, 3)},
		{"intree-d2", gen.BinaryInTree(2), pebble.MPP(2, 3, 3)},
		{"grid2x3", gen.Grid2D(2, 3), pebble.MPP(2, 3, 2)},
		{"grid3x3-k1", gen.Grid2D(3, 3), pebble.MPP(1, 4, 2)},
		{"pyramid3", gen.Pyramid(3), pebble.MPP(1, 5, 2)},
		{"oneshot-chain", gen.Chain(4), pebble.OneShotSPP(2, 2)},
		{"spp-free-compute", gen.Grid2D(2, 2), pebble.SPP(3, 2)},
		{"twolayer", gen.TwoLayerRandom(3, 3, 0.5, 6), pebble.MPP(2, 4, 3)},
	}
}

func TestExactTableMatchesOracleZoo(t *testing.T) {
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		got, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want, err := ExactOracle(in, budget)
		if err != nil {
			t.Fatalf("%s: oracle: %v", c.name, err)
		}
		if got.Cost != want.Cost || got.States != want.States {
			t.Errorf("%s: table (cost %d, states %d) ≠ oracle (cost %d, states %d)",
				c.name, got.Cost, got.States, want.Cost, want.States)
		}
		// Witness mode runs without shade canonicalization — a different
		// state space, so it gets its own byte-identical comparison.
		gw, err := ExactWithStrategy(in, budget)
		if err != nil {
			t.Fatalf("%s: witness: %v", c.name, err)
		}
		ww, err := ExactWithStrategyOracle(in, budget)
		if err != nil {
			t.Fatalf("%s: witness oracle: %v", c.name, err)
		}
		if gw.Cost != ww.Cost || gw.States != ww.States {
			t.Errorf("%s: witness table (cost %d, states %d) ≠ oracle (cost %d, states %d)",
				c.name, gw.Cost, gw.States, ww.Cost, ww.States)
		}
		if gw.Cost != got.Cost {
			t.Errorf("%s: witness cost %d ≠ plain cost %d", c.name, gw.Cost, got.Cost)
		}
	}
}

// exactConfigs is the heuristic-mode × dominance grid the per-mode
// equivalence and agreement tests sweep.
func exactConfigs(maxStates int) []Config {
	var out []Config
	for _, mode := range []HeuristicMode{HeuristicFloor, HeuristicIO, HeuristicMax} {
		for _, dom := range []bool{false, true} {
			out = append(out, Config{MaxStates: maxStates, Heuristic: mode, Dominance: dom})
		}
	}
	return out
}

// TestExactModesMatchOracleZoo locks every heuristic mode × dominance
// combination to the map-backed oracle: the entire Result — cost, states
// expanded, pruned count, bracket — must be byte-identical, because the
// heuristic and pruning logic live in the shared solver and only the
// state-identity structure differs.
func TestExactModesMatchOracleZoo(t *testing.T) {
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		for _, cfg := range exactConfigs(budget) {
			tag := c.name + "/" + cfg.Heuristic.String()
			if cfg.Dominance {
				tag += "+dom"
			}
			got, err := ExactWith(context.Background(), in, cfg)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			want, err := ExactOracleWith(in, cfg)
			if err != nil {
				t.Fatalf("%s: oracle: %v", tag, err)
			}
			if got.Cost != want.Cost || got.States != want.States || got.Pruned != want.Pruned ||
				got.Incumbent != want.Incumbent || got.LowerBound != want.LowerBound {
				t.Errorf("%s: table (cost %d, states %d, pruned %d) ≠ oracle (cost %d, states %d, pruned %d)",
					tag, got.Cost, got.States, got.Pruned, want.Cost, want.States, want.Pruned)
			}
			if got.HeuristicMode != cfg.Heuristic {
				t.Errorf("%s: result reports mode %v", tag, got.HeuristicMode)
			}
		}
	}
}

// TestExactModesAgreeOnOptimum asserts that every heuristic mode, with
// and without dominance pruning, proves the same optimum on the zoo —
// and that witness runs per mode replay to that same cost. States
// expanded may (and should) differ; the optimum may not.
func TestExactModesAgreeOnOptimum(t *testing.T) {
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		ref, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, cfg := range exactConfigs(budget) {
			res, err := ExactWith(context.Background(), in, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, cfg.Heuristic, err)
			}
			if res.Cost != ref.Cost {
				t.Errorf("%s: mode %v (dom %v) proves cost %d, default proves %d",
					c.name, cfg.Heuristic, cfg.Dominance, res.Cost, ref.Cost)
			}
			wcfg := cfg
			wcfg.Witness = true
			wres, err := ExactWith(context.Background(), in, wcfg)
			if err != nil {
				t.Fatalf("%s/%s witness: %v", c.name, cfg.Heuristic, err)
			}
			if wres.Cost != ref.Cost {
				t.Errorf("%s: witness mode %v cost %d ≠ %d", c.name, cfg.Heuristic, wres.Cost, ref.Cost)
			}
			if wres.Strategy == nil {
				t.Fatalf("%s/%s: witness run returned no strategy", c.name, cfg.Heuristic)
			}
			rep, rerr := pebble.Replay(in, wres.Strategy)
			if rerr != nil {
				t.Fatalf("%s/%s: witness does not replay: %v", c.name, cfg.Heuristic, rerr)
			}
			if rep.Cost != ref.Cost {
				t.Errorf("%s/%s: witness replays to %d, optimum is %d", c.name, cfg.Heuristic, rep.Cost, ref.Cost)
			}
		}
	}
}

func TestExactTableMatchesOracleQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := gen.RandomDAG(n, 0.3, 2, seed)
		k := 1 + rng.Intn(2)
		r := g.MaxInDegree() + 1 + rng.Intn(2)
		io := 1 + rng.Intn(3)
		in := pebble.MustInstance(g, pebble.MPP(k, r, io))
		got, err := Exact(in, budget)
		if err != nil {
			return false
		}
		want, err := ExactOracle(in, budget)
		if err != nil {
			return false
		}
		if got.Cost != want.Cost || got.States != want.States {
			t.Logf("seed %d: table (%d, %d) ≠ oracle (%d, %d)",
				seed, got.Cost, got.States, want.Cost, want.States)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sameOrder(a, b []dag.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkZeroIOBigEquiv(t *testing.T, name string, g *dag.Graph, r int, max int) {
	t.Helper()
	got, err := ZeroIOBig(g, r, max)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want, err := ZeroIOBigOracle(g, r, max)
	if err != nil {
		t.Fatalf("%s: oracle: %v", name, err)
	}
	if got.Feasible != want.Feasible || got.States != want.States || !sameOrder(got.Order, want.Order) {
		t.Errorf("%s: table (feasible %v, states %d) ≠ oracle (feasible %v, states %d)",
			name, got.Feasible, got.States, want.Feasible, want.States)
	}
}

func TestZeroIOBigMatchesOracleZoo(t *testing.T) {
	cases := []struct {
		name string
		g    *dag.Graph
		r    int
	}{
		{"chain10-r2", gen.Chain(10), 2},
		{"chain10-r1", gen.Chain(10), 1},
		{"intree3-r5", gen.BinaryInTree(3), 5},
		{"intree3-r4", gen.BinaryInTree(3), 4},
		{"grid3x3-r4", gen.Grid2D(3, 3), 4},
		{"pyramid4-r6", gen.Pyramid(4), 6},
		{"pyramid4-r5", gen.Pyramid(4), 5},
	}
	for _, c := range cases {
		checkZeroIOBigEquiv(t, c.name, c.g, c.r, budget)
	}
}

// TestZeroIOBigMatchesOracleCliquePairs runs the equivalence on the E12
// matched clique pairs — the Theorem 2 reduction instances whose >62-node
// DAGs and multi-word memo keys exercise the table the hardest.
func TestZeroIOBigMatchesOracleCliquePairs(t *testing.T) {
	pairs := []struct {
		name  string
		graph *hardness.UGraph
	}{
		{"triangle+pendant", hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})},
		{"C4", hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})},
		{"bull", hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}})},
		{"C5", hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})},
	}
	const q = 3
	for _, pc := range pairs {
		red, err := hardness.BuildCliqueReduction(pc.graph, q)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		wantFeasible := pc.graph.HasClique(q)
		got, err := ZeroIOBig(red.Graph, red.R, 8_000_000)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		if got.Feasible != wantFeasible {
			t.Errorf("%s: feasible %v, want %v", pc.name, got.Feasible, wantFeasible)
		}
		checkZeroIOBigEquiv(t, pc.name, red.Graph, red.R, 8_000_000)
	}
}

// TestExactAllocationBudget pins the tentpole's point: a full Exact run
// on the grid benchmark instance must stay far below the old per-run
// allocation count (~13k allocs with the map/heap core). The bound is
// generous — it exists to catch a regression back to per-state
// allocation, not to freeze the exact constant.
func TestExactAllocationBudget(t *testing.T) {
	g := gen.Grid2D(3, 3)
	in := pebble.MustInstance(g, pebble.MPP(1, 4, 2))
	allocs := testing.AllocsPerRun(5, func() {
		//lint:ignore verdictcheck allocation probe: only the alloc count matters here
		if _, err := Exact(in, 10_000_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2000 {
		t.Errorf("Exact on grid3x3 allocates %v times per run; the allocation-free core should stay ≤ 2000", allocs)
	}
}
