package opt

import (
	"context"
	"testing"

	"repro/internal/pebble"
)

// Probe: sweep budgets densely; compare Workers=1 vs Workers=4 Incumbent/States/LowerBound.
func TestProbeBudgetSweepDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		full, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s full: %v", c.name, err)
		}
		for max := 1; max < full.States; max += 3 {
			cfg1 := DefaultConfig(max)
			cfg1.Workers = 1
			w1, _ := ExactWith(ctx, in, cfg1)
			for rep := 0; rep < 3; rep++ {
				cfg4 := DefaultConfig(max)
				cfg4.Workers = 4
				w4, _ := ExactWith(ctx, in, cfg4)
				if w4.Incumbent != w1.Incumbent || w4.States != w1.States || w4.LowerBound != w1.LowerBound || w4.Status != w1.Status {
					t.Errorf("%s budget=%d rep=%d: w4 (inc %d states %d lb %d st %v) != w1 (inc %d states %d lb %d st %v)",
						c.name, max, rep, w4.Incumbent, w4.States, w4.LowerBound, w4.Status,
						w1.Incumbent, w1.States, w1.LowerBound, w1.Status)
					break
				}
			}
		}
	}
}
