package opt

import (
	"context"

	"repro/internal/dag"
	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// Oracle variants of the exact solvers: the identical search code run
// against the map-backed hashtab.Ref instead of the open-addressing
// table. Because the traversal, tie-breaking (FIFO within each wave of
// the bucket queue) and pruning logic are shared and only the
// state-identity structure is swapped, an oracle run must return
// byte-identical results — (Cost,
// States) for Exact, (Feasible, States, Order) for ZeroIOBig. The
// equivalence tests assert exactly that on the DAG zoo and the Theorem 2
// reduction instances; the oracles are ordinary non-test code (no build
// tag) so the comparison compiles everywhere.

// ExactOracle is Exact backed by the map-based reference state table.
// Like Exact, it pins Workers to 1 so the pair stays comparable on any
// machine.
func ExactOracle(in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Workers = 1
	return ExactOracleWith(in, cfg)
}

// ExactOracleWith is ExactWith backed by the map-based reference state
// table, so every Config combination — heuristic mode, dominance,
// witness, worker count (each shard gets its own Ref) — can be locked
// byte-for-byte against the arena-backed run.
func ExactOracleWith(in *pebble.Instance, cfg Config) (*Result, error) {
	//lint:ignore ctxthread oracle runs are equivalence-test support and never deadline-bound
	return exact(context.Background(), in, cfg, func() hashtab.Index { return hashtab.NewRef(stateWords(in.K)) })
}

// ExactWithStrategyOracle is ExactWithStrategy backed by the map-based
// reference state table.
func ExactWithStrategyOracle(in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Witness = true
	cfg.Workers = 1
	return ExactOracleWith(in, cfg)
}

// ZeroIOBigOracle is ZeroIOBig backed by the map-based reference memo.
func ZeroIOBigOracle(g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	words := (g.N() + 63) / 64
	if words == 0 {
		words = 1
	}
	//lint:ignore ctxthread oracle runs are equivalence-test support and never deadline-bound
	return zeroIOBig(context.Background(), g, r, maxStates, hashtab.NewRef(words))
}
