package opt

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/gen"
	"repro/internal/hardness"
	"repro/internal/pebble"
)

// These tests pin the heuristic stack's contract: every mode is
// admissible (h(start) ≤ OPT, partial lower bounds ≤ OPT), the max mode
// dominates the floor, dominance pruning never changes the optimum, and
// complete results collapse their bracket exactly.

func TestHeuristicModeStrings(t *testing.T) {
	for _, c := range []struct {
		mode HeuristicMode
		s    string
	}{{HeuristicFloor, "floor"}, {HeuristicIO, "io"}, {HeuristicMax, "max"}} {
		if c.mode.String() != c.s {
			t.Errorf("%v.String() = %q, want %q", c.mode, c.mode.String(), c.s)
		}
		m, ok := ParseHeuristicMode(c.s)
		if !ok || m != c.mode {
			t.Errorf("ParseHeuristicMode(%q) = %v, %v", c.s, m, ok)
		}
	}
	if _, ok := ParseHeuristicMode("bogus"); ok {
		t.Error("ParseHeuristicMode accepted garbage")
	}
	var zero HeuristicMode
	if zero != HeuristicMax {
		t.Error("zero HeuristicMode is not HeuristicMax")
	}
}

// TestRootLowerBoundAdmissibleZoo: h(start) ≤ OPT for every mode on every
// zoo instance, the max mode dominates the floor pointwise, and the root
// bound matches the structural bound from the bounds package.
func TestRootLowerBoundAdmissibleZoo(t *testing.T) {
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		ref, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var floor, max int64
		for _, mode := range []HeuristicMode{HeuristicFloor, HeuristicIO, HeuristicMax} {
			h := RootLowerBound(in, mode)
			if h < 0 {
				t.Errorf("%s: RootLowerBound(%v) = %d < 0", c.name, mode, h)
			}
			if h > ref.Cost {
				t.Errorf("%s: RootLowerBound(%v) = %d exceeds OPT %d (inadmissible)",
					c.name, mode, h, ref.Cost)
			}
			switch mode {
			case HeuristicFloor:
				floor = h
			case HeuristicMax:
				max = h
			}
		}
		if max < floor {
			t.Errorf("%s: max root bound %d below floor %d", c.name, max, floor)
		}
		if sl := bounds.StructuralLower(in); max < sl {
			t.Errorf("%s: max root bound %d below structural bound %d", c.name, max, sl)
		}
		if l1 := bounds.Lemma1Lower(in); RootLowerBound(in, HeuristicFloor) != l1 {
			t.Errorf("%s: floor root bound %d ≠ Lemma 1 lower %d",
				c.name, RootLowerBound(in, HeuristicFloor), l1)
		}
	}
}

// TestRootLowerBoundAdmissibleQuick extends the admissibility property to
// random instances: for every mode, h(start) ≤ OPT.
func TestRootLowerBoundAdmissibleQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := gen.RandomDAG(n, 0.3, 2, seed)
		k := 1 + rng.Intn(2)
		r := g.MaxInDegree() + 1 + rng.Intn(2)
		io := 1 + rng.Intn(5)
		in := pebble.MustInstance(g, pebble.MPP(k, r, io))
		ref, err := Exact(in, budget)
		if err != nil {
			return false
		}
		for _, mode := range []HeuristicMode{HeuristicFloor, HeuristicIO, HeuristicMax} {
			if h := RootLowerBound(in, mode); h > ref.Cost {
				t.Logf("seed %d: mode %v root bound %d > OPT %d", seed, mode, h, ref.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRootLowerBoundCliquePairs evaluates the heuristics on the E12
// clique-reduction instances (one-shot SPP, free computes, ample red
// capacity): with c = 0, a single sink and r ≫ 1 every term of the stack
// must vanish, and on YES instances OPT itself is 0 — the bound is tight.
func TestRootLowerBoundCliquePairs(t *testing.T) {
	pairs := []struct {
		name  string
		graph *hardness.UGraph
	}{
		{"triangle+pendant", hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})},
		{"C4", hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})},
		{"bull", hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}})},
		{"C5", hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})},
	}
	const q = 3
	for _, pc := range pairs {
		red, err := hardness.BuildCliqueReduction(pc.graph, q)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		in := pebble.MustInstance(red.Graph, pebble.OneShotSPP(red.R, 4))
		for _, mode := range []HeuristicMode{HeuristicFloor, HeuristicIO, HeuristicMax} {
			h := RootLowerBound(in, mode)
			if h != 0 {
				t.Errorf("%s: mode %v root bound %d, want 0 (free computes, ample capacity)",
					pc.name, mode, h)
			}
		}
		// On YES instances a zero-I/O pebbling exists, so OPT = 0 and the
		// bound above is exactly tight; on NO instances OPT > 0 and 0 is
		// still trivially admissible — both sides sit under Lemma 1.
		if zres, err := ZeroIOBig(red.Graph, red.R, 8_000_000); err == nil && zres.Feasible {
			if ub := bounds.Lemma1Upper(in); ub < 0 {
				t.Errorf("%s: Lemma 1 upper bound overflowed: %d", pc.name, ub)
			}
		}
	}
}

// TestDominancePreservesOptimum: dominance pruning must never change the
// proven optimum, only the work done — swept over random instances where
// red capacity is tight enough to force deletions.
func TestDominancePreservesOptimum(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := gen.RandomDAG(n, 0.4, 2, seed)
		k := 1 + rng.Intn(2)
		r := g.MaxInDegree() + 1 // tightest legal capacity: deletes required
		io := 1 + rng.Intn(4)
		in := pebble.MustInstance(g, pebble.MPP(k, r, io))
		on, err := ExactWith(context.Background(), in, Config{MaxStates: budget, Dominance: true})
		if err != nil {
			return false
		}
		off, err := ExactWith(context.Background(), in, Config{MaxStates: budget, Dominance: false})
		if err != nil {
			return false
		}
		if on.Cost != off.Cost {
			t.Logf("seed %d: dominance on cost %d ≠ off cost %d", seed, on.Cost, off.Cost)
			return false
		}
		// States expanded usually shrink but are not monotone: pruning
		// shifts LIFO tie-breaking on the f = OPT plateau, so no ≤ claim.
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCompleteBracketInvariant: on StatusComplete the anytime bracket
// must collapse exactly — LowerBound == Cost == Incumbent — for every
// mode on every zoo instance.
func TestCompleteBracketInvariant(t *testing.T) {
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		for _, cfg := range exactConfigs(budget) {
			res, err := ExactWith(context.Background(), in, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", c.name, cfg.Heuristic, err)
			}
			if res.Status != StatusComplete {
				t.Fatalf("%s/%v: not complete", c.name, cfg.Heuristic)
			}
			if res.LowerBound != res.Cost || res.Incumbent != res.Cost {
				t.Errorf("%s/%v: complete bracket [%d, %d] does not collapse to cost %d",
					c.name, cfg.Heuristic, res.LowerBound, res.Incumbent, res.Cost)
			}
		}
	}
}

// TestPartialBracketAcrossZoo is the regression test for the anytime
// invariant under the stronger heuristics: on every partial result, over
// the whole zoo × a budget ladder × every mode, LowerBound must not
// exceed Incumbent (when one exists) nor the true optimum.
func TestPartialBracketAcrossZoo(t *testing.T) {
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		ref, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, cfg := range exactConfigs(0) {
			prevLB := int64(0)
			for _, max := range []int{1, 3, 10, 50, 250, 1000} {
				cfg.MaxStates = max
				res, err := ExactWith(context.Background(), in, cfg)
				if err == nil {
					break // completed under this budget; larger ones only repeat it
				}
				if !IsPartial(err) {
					t.Fatalf("%s/%v budget %d: %v", c.name, cfg.Heuristic, max, err)
				}
				tag := c.name + "/" + cfg.Heuristic.String()
				incumbentOK(t, tag, res, ref.Cost)
				if res.LowerBound < prevLB {
					t.Errorf("%s: lower bound retreated %d → %d at budget %d",
						tag, prevLB, res.LowerBound, max)
				}
				prevLB = res.LowerBound
			}
		}
	}
}
