package opt

// Dominance pruning over red configurations.
//
// A candidate state B is dominated by a settled (already expanded) state
// A when both have identical (blue, computed) words, A was settled at a
// strictly cheaper g-cost, and after shade canonicalization every
// per-processor red word of B is a subset of A's word at the same
// position. Any completion from B can then be simulated from A at no
// extra cost: A holds a superset of every value B holds, replayed moves
// stay legal (surplus red pebbles are deleted for free the moment a
// processor would overflow its memory), and blue/computed evolve
// identically — so dropping B before it is even hashed cannot lose the
// optimum. The cheaper-cost condition must be *strict*: with ties the
// delete-successors of a settled state (equal cost, subset reds) would
// all be pruned against their own parent, severing the memory-freeing
// moves the search needs. See DESIGN.md §6 for the full soundness sketch.
//
// Pruning is only enabled in non-witness mode, alongside shade
// canonicalization (a pruned state has no parent edge, and the subset
// test per canonical position is what makes the processor matching
// sound). "Settled" means expanded in an *earlier wave* of the layered
// search: solver.settleWave registers a wave's expansions at the wave
// boundary, so the dominator set any candidate is tested against is a
// pure function of the wave number — the property that keeps pruning
// byte-identical across worker counts (parallel.go). Settled states
// are indexed by a (blue, computed) hash in an
// open-addressing side table whose buckets chain all settled states
// sharing those two words; red words are fetched from the main state
// table's arena on demand, so the index itself stores three int32 arrays
// and two key words per slot — nothing else.

const domEmptySlot = int32(-1)

// domIndex maps (blue, computed) → chain of settled state indices. The
// slot array is open-addressing with linear probing; each occupied slot
// stores its 2-word key and the head of a singly linked list threaded
// through the entries arrays (one entry per settled state).
type domIndex struct {
	slots []int32  // head entry per slot, domEmptySlot when free
	keys  []uint64 // 2 words per slot: blue, computed
	mask  uint64
	used  int // occupied slots

	next  []int32 // entry → next entry in the same chain
	state []int32 // entry → settled state index in the main table
}

func newDomIndex() *domIndex {
	d := &domIndex{
		slots: make([]int32, 256),
		keys:  make([]uint64, 2*256),
		mask:  255,
	}
	for i := range d.slots {
		d.slots[i] = domEmptySlot
	}
	return d
}

// reset empties the index while keeping the slot array and entry
// capacity, so a pooled solver's dominance index is reusable across
// searches without reallocating.
func (d *domIndex) reset() {
	for i := range d.slots {
		d.slots[i] = domEmptySlot
	}
	d.used = 0
	d.next = d.next[:0]
	d.state = d.state[:0]
}

// domHash mixes the two identity words (splitmix64-style finalizer).
//
//mpp:hotpath
func domHash(blue, computed uint64) uint64 {
	x := blue ^ 0x9e3779b97f4a7c15
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x ^= computed
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bucket returns the head entry of the chain for (blue, computed), or
// domEmptySlot when no settled state has those words yet.
//
//mpp:hotpath
func (d *domIndex) bucket(blue, computed uint64) int32 {
	i := domHash(blue, computed) & d.mask
	for {
		h := d.slots[i]
		if h == domEmptySlot {
			return domEmptySlot
		}
		if d.keys[2*i] == blue && d.keys[2*i+1] == computed {
			return h
		}
		i = (i + 1) & d.mask
	}
}

// add registers a settled state under its (blue, computed) key.
//
//mpp:hotpath
func (d *domIndex) add(blue, computed uint64, stateIdx int32) {
	if 4*(d.used+1) > 3*len(d.slots) {
		d.grow()
	}
	i := domHash(blue, computed) & d.mask
	for {
		h := d.slots[i]
		if h == domEmptySlot {
			d.used++
			d.keys[2*i] = blue
			d.keys[2*i+1] = computed
			break
		}
		if d.keys[2*i] == blue && d.keys[2*i+1] == computed {
			break
		}
		i = (i + 1) & d.mask
	}
	e := int32(len(d.state))
	d.state = append(d.state, stateIdx)
	d.next = append(d.next, d.slots[i])
	d.slots[i] = e
}

// grow doubles the slot array and reinserts every occupied slot's chain
// head (entry chains are untouched — only the slot they hang off moves).
// Deliberately not a hot path: amortized over the fill factor.
func (d *domIndex) grow() {
	oldSlots, oldKeys := d.slots, d.keys
	n := 2 * len(oldSlots)
	d.slots = make([]int32, n)
	d.keys = make([]uint64, 2*n)
	d.mask = uint64(n - 1)
	for i := range d.slots {
		d.slots[i] = domEmptySlot
	}
	for i, h := range oldSlots {
		if h == domEmptySlot {
			continue
		}
		blue, computed := oldKeys[2*i], oldKeys[2*i+1]
		j := domHash(blue, computed) & d.mask
		for d.slots[j] != domEmptySlot {
			j = (j + 1) & d.mask
		}
		d.slots[j] = h
		d.keys[2*j] = blue
		d.keys[2*j+1] = computed
	}
}

// dominated reports whether the candidate words w (already
// canonicalized) at g-cost cost are strictly dominated by some settled
// state. Settled keys are read straight from the table arena — no
// copies. States are sharded by their (blue, computed) words (see
// parallel.go), so every potential dominator of w lives on this shard:
// the check needs no cross-shard traffic.
//
//mpp:hotpath
func (s *solver) dominated(w []uint64, cost int64) bool {
	k := s.in.K
	blue := w[k]
	computed := w[k+1]
	for e := s.dom.bucket(blue, computed); e != domEmptySlot; e = s.dom.next[e] {
		a := s.dom.state[e]
		if s.dist[a] >= cost {
			continue // strictness: equal-cost states never dominate
		}
		aw := s.tab.Key(int(a))
		dom := true
		for p := 0; p < k; p++ {
			if w[p]&^aw[p] != 0 {
				dom = false
				break
			}
		}
		if dom {
			return true
		}
	}
	return false
}
