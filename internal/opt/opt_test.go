package opt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

const budget = 2_000_000

func TestExactChain(t *testing.T) {
	// A chain with r ≥ 2 is pebbled with n computes and no I/O; with
	// compute cost 1, OPT = n.
	for _, n := range []int{1, 2, 5} {
		in := pebble.MustInstance(gen.Chain(n), pebble.MPP(1, 2, 3))
		res, err := Exact(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != int64(n) {
			t.Errorf("chain %d: OPT = %d, want %d", n, res.Cost, n)
		}
	}
}

func TestExactTwoChainsTwoProcs(t *testing.T) {
	// Two independent chains of length 3: one processor pays 6 computes
	// plus parking the first chain's sink (sinks must stay pebbled): with
	// r = 2 and g = 3, writing it costs 3 and recomputing the second
	// chain's prefix later also costs 3 — OPT(1) = 9 either way. Two
	// processors pay 3 parallel compute moves, keeping one sink red on
	// each shade.
	g := gen.IndependentChains(2, 3)
	in1 := pebble.MustInstance(g, pebble.MPP(1, 2, 3))
	r1, err := Exact(in1, budget)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != 9 {
		t.Errorf("OPT(1) = %d, want 9", r1.Cost)
	}
	in2 := pebble.MustInstance(g, pebble.MPP(2, 2, 3))
	r2, err := Exact(in2, budget)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cost != 3 {
		t.Errorf("OPT(2) = %d, want 3", r2.Cost)
	}
}

func TestExactDiamond(t *testing.T) {
	// Diamond 0→{1,2}→3 with r=3, k=1: computes 0,1,2 need 3 pebbles but
	// node 3 needs 1,2 red plus itself: compute 0, 1, 2 (0 still red),
	// delete 0, compute 3: 4 computes, no I/O. OPT = 4.
	b := dag.NewBuilder("diamond")
	v := b.AddNodes(4)
	b.AddEdge(v[0], v[1])
	b.AddEdge(v[0], v[2])
	b.AddEdge(v[1], v[3])
	b.AddEdge(v[2], v[3])
	g := b.MustBuild()
	in := pebble.MustInstance(g, pebble.MPP(1, 3, 5))
	res, err := Exact(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 4 {
		t.Errorf("diamond OPT = %d, want 4", res.Cost)
	}
}

func TestExactForcedIO(t *testing.T) {
	// A 2-layer DAG: 3 sources all feeding 2 sinks, r = 4, k = 1.
	// Computing sink 1 occupies 4 pebbles (3 sources + sink); the second
	// sink then needs the sources again. With r=4 one source must be
	// dropped... actually sink1's pebble can be written out (g) or the
	// dropped source recomputed (1). With recomputation allowed OPT
	// avoids I/O entirely: compute 3 sources, sink1, delete sink1? — no,
	// sinks must stay pebbled. OPT: compute s1,s2,s3,sink1 (4 red), write
	// sink1 (g) or... recompute path: delete a source, but then sink2
	// cannot be computed without it. So OPT = 5 computes + cheapest way
	// to park sink1 = min(g, impossible) → 5 + g with g small, or with
	// g large... there is no recompute alternative for parking a sink.
	// OPT = 5·1 + g.
	b := dag.NewBuilder("3to2")
	src := b.AddNodes(3)
	snk := b.AddNodes(2)
	for _, u := range src {
		for _, v := range snk {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	for _, ioCost := range []int{1, 4} {
		in := pebble.MustInstance(g, pebble.MPP(1, 4, ioCost))
		res, err := Exact(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(5 + ioCost)
		if res.Cost != want {
			t.Errorf("g=%d: OPT = %d, want %d", ioCost, res.Cost, want)
		}
	}
}

func TestExactRecomputationBeatsIO(t *testing.T) {
	// Same 3→2 bipartite but sinks feed a final collector so they need
	// not be parked... simpler: source shared by two far-apart consumers
	// in a chain; with huge g, recomputing the source is optimal; with
	// g=0 I/O is free. Verify OPT(g=0) ≤ OPT(g=10) and that with g=10
	// the optimum equals pure-compute cost with recomputation.
	//
	//   s → a1, s → a3;  chain a1→a2→a3  (r = 2... a3 needs a2 and s: Δin=2 → r≥3)
	b := dag.NewBuilder("recomp")
	s := b.AddNode()
	a1 := b.AddNode()
	a2 := b.AddNode()
	a3 := b.AddNode()
	b.AddEdge(s, a1)
	b.AddEdge(a1, a2)
	b.AddEdge(a2, a3)
	b.AddEdge(s, a3)
	g := b.MustBuild()
	// r=3: s,a1 red; a2 red; for a3 need a2,s: s can stay red the whole
	// time with r=3: s,a1 → s,a1,a2 → delete a1 → s,a2,a3. No I/O, no
	// recompute: OPT = 4 regardless of g.
	in := pebble.MustInstance(g, pebble.MPP(1, 3, 10))
	res, err := Exact(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 4 {
		t.Errorf("OPT = %d, want 4", res.Cost)
	}
}

func TestExactZipperRecomputation(t *testing.T) {
	// Zipper d=2 without tails, chain 3, r=d+2=4, k=1, g=5: recomputing
	// the 2 swapped-out inputs costs 2 per swap versus 2g=10 via I/O, so
	// the optimum recomputes. Pure compute cost: inputs 2d=4 computed
	// once + chain 3 + recomputations. Just assert OPT < any-I/O cost and
	// equals the exact solver across two g values (g only matters if I/O
	// is used; OPT must be identical for g=5 and g=50).
	g, _ := gen.Zipper(2, 3, 0)
	in5 := pebble.MustInstance(g, pebble.MPP(1, 4, 5))
	r5, err := Exact(in5, budget)
	if err != nil {
		t.Fatal(err)
	}
	in50 := pebble.MustInstance(g, pebble.MPP(1, 4, 50))
	r50, err := Exact(in50, budget)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Cost != r50.Cost {
		t.Errorf("OPT uses I/O despite cheap recomputation: g=5 → %d, g=50 → %d", r5.Cost, r50.Cost)
	}
}

func TestExactNeverAboveHeuristics(t *testing.T) {
	// Ground truth: OPT ≤ every heuristic on random small instances.
	schedulers := []sched.Scheduler{
		sched.Baseline{},
		sched.Greedy{},
		sched.Partitioned{Assign: sched.AssignAllToOne, AssignName: "one"},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := gen.RandomDAG(n, 0.3, 2, seed)
		k := 1 + rng.Intn(2)
		r := g.MaxInDegree() + 1 + rng.Intn(2)
		io := 1 + rng.Intn(3)
		in := pebble.MustInstance(g, pebble.MPP(k, r, io))
		res, err := Exact(in, budget)
		if err != nil {
			t.Logf("seed %d: exact failed: %v", seed, err)
			return false
		}
		lb := sched.LowerBoundCost(in)
		if res.Cost < lb {
			t.Logf("seed %d: OPT %d below trivial bound %d", seed, res.Cost, lb)
			return false
		}
		for _, s := range schedulers {
			rep, err := sched.Run(s, in)
			if err != nil {
				t.Logf("seed %d: %s: %v", seed, s.Name(), err)
				return false
			}
			if rep.Cost < res.Cost {
				t.Logf("seed %d: %s cost %d beat 'optimal' %d", seed, s.Name(), rep.Cost, res.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExactBudget(t *testing.T) {
	g := gen.Grid2D(4, 4)
	in := pebble.MustInstance(g, pebble.MPP(2, 3, 2))
	res, err := Exact(in, 10)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res == nil || res.Status != StatusBudget {
		t.Fatalf("res = %+v, want Status %v", res, StatusBudget)
	}
}

func TestExactEmptyAndTooBig(t *testing.T) {
	empty := dag.NewBuilder("e").MustBuild()
	in := pebble.MustInstance(empty, pebble.MPP(1, 1, 1))
	res, err := Exact(in, 10)
	if err != nil || res.Cost != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	big := gen.Chain(63)
	inBig := pebble.MustInstance(big, pebble.MPP(1, 2, 1))
	if res, err := Exact(inBig, budget); err == nil || res != nil {
		t.Fatal("63-node instance accepted")
	}
	// ZeroIO auto-dispatches beyond the word cap instead of refusing.
	if res, err := ZeroIO(big, 2, budget); err != nil || !res.Feasible {
		t.Fatalf("ZeroIO on 63 nodes should dispatch to bitset variant: %v %v", res, err)
	}
}

func TestZeroIOChainAndTree(t *testing.T) {
	if res, err := ZeroIO(gen.Chain(10), 2, budget); err != nil || !res.Feasible {
		t.Fatalf("chain r=2: %v %v", res, err)
	}
	if res, err := ZeroIO(gen.Chain(10), 1, budget); err != nil || res.Feasible {
		t.Fatalf("chain r=1 should be infeasible: %v %v", res, err)
	}
	// Complete binary in-tree of depth d needs r = d+2 pebbles for a
	// zero-I/O pebbling in the non-sliding rule set (computing a node
	// keeps both children pebbled during the step).
	tree := gen.BinaryInTree(3)
	if res, err := ZeroIO(tree, 5, budget); err != nil || !res.Feasible {
		t.Fatalf("tree r=5: %v %v", res, err)
	}
	if res, err := ZeroIO(tree, 4, budget); err != nil || res.Feasible {
		t.Fatalf("tree r=4 should be infeasible: %v %v", res, err)
	}
}

func TestZeroIOWitnessReplays(t *testing.T) {
	// Any feasible witness must replay as a valid one-shot SPP strategy
	// with zero I/O cost.
	graphs := []*dag.Graph{
		gen.Chain(8),
		gen.BinaryInTree(3),
		gen.Grid2D(3, 3),
		gen.Pyramid(4),
	}
	rs := []int{2, 5, 4, 6}
	for i, g := range graphs {
		res, err := ZeroIO(g, rs[i], budget)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("%s with r=%d infeasible", g.Name(), rs[i])
		}
		in := pebble.MustInstance(g, pebble.OneShotSPP(rs[i], 7))
		rep, err := pebble.Replay(in, ZeroIOStrategy(g, res.Order))
		if err != nil {
			t.Fatalf("%s: witness does not replay: %v", g.Name(), err)
		}
		if rep.IOActions != 0 || rep.Cost != 0 {
			t.Fatalf("%s: witness has I/O", g.Name())
		}
	}
}

func TestZeroIOMatchesExactOneShot(t *testing.T) {
	// Cross-validation: ZeroIO is feasible iff the exact one-shot SPP
	// solver finds OPT = 0.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := gen.RandomDAG(n, 0.35, 2, seed)
		r := g.MaxInDegree() + 1 + rng.Intn(2)
		zr, err := ZeroIO(g, r, budget)
		if err != nil {
			return false
		}
		in := pebble.MustInstance(g, pebble.OneShotSPP(r, 1))
		res, err := Exact(in, budget)
		if err != nil {
			return false
		}
		return zr.Feasible == (res.Cost == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroIOPyramidThreshold(t *testing.T) {
	// The 2-pyramid of height h requires exactly h+2 pebbles for a
	// zero-I/O pebbling in the non-sliding rule set (the classic bound is
	// h+1 with sliding moves; placing a fresh pebble costs one more).
	for h := 2; h <= 4; h++ {
		p := gen.Pyramid(h)
		ok, err := ZeroIO(p, h+2, budget)
		if err != nil || !ok.Feasible {
			t.Errorf("pyramid %d with r=%d: want feasible (%v, %v)", h, h+2, ok, err)
		}
		bad, err := ZeroIO(p, h+1, budget)
		if err != nil || bad.Feasible {
			t.Errorf("pyramid %d with r=%d: want infeasible", h, h+1)
		}
	}
}

func TestExactWithStrategyWitness(t *testing.T) {
	// The reconstructed optimal strategy must replay at exactly the
	// optimal cost, across a mix of tiny instances.
	cases := []struct {
		name string
		g    *dag.Graph
		p    pebble.Params
	}{
		{"chain", gen.Chain(5), pebble.MPP(1, 2, 3)},
		{"2chains-2proc", gen.IndependentChains(2, 3), pebble.MPP(2, 2, 3)},
		{"grid", gen.Grid2D(2, 3), pebble.MPP(2, 3, 2)},
		{"oneshot", gen.Chain(4), pebble.OneShotSPP(2, 2)},
		{"spp-free-compute", gen.Grid2D(2, 2), pebble.SPP(3, 2)},
	}
	for _, c := range cases {
		in := pebble.MustInstance(c.g, c.p)
		res, err := ExactWithStrategy(in, budget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Strategy == nil {
			t.Fatalf("%s: no witness", c.name)
		}
		rep, err := pebble.Replay(in, res.Strategy)
		if err != nil {
			t.Fatalf("%s: witness invalid: %v", c.name, err)
		}
		if rep.Cost != res.Cost {
			t.Errorf("%s: witness cost %d ≠ optimal %d", c.name, rep.Cost, res.Cost)
		}
		// Cross-check against the symmetric-collapsed search.
		plain, err := Exact(in, budget)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cost != res.Cost {
			t.Errorf("%s: witness-mode cost %d ≠ plain cost %d", c.name, res.Cost, plain.Cost)
		}
	}
}

func TestQuickWitnessMatchesPlain(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomDAG(3+rng.Intn(5), 0.3, 2, seed)
		k := 1 + rng.Intn(2)
		in := pebble.MustInstance(g, pebble.MPP(k, g.MaxInDegree()+1+rng.Intn(2), 1+rng.Intn(3)))
		w, err := ExactWithStrategy(in, budget)
		if err != nil {
			return false
		}
		p, err := Exact(in, budget)
		if err != nil {
			return false
		}
		rep, err := pebble.Replay(in, w.Strategy)
		if err != nil {
			return false
		}
		return w.Cost == p.Cost && rep.Cost == w.Cost
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
