// Package opt contains exact solvers for small pebbling instances:
//
//   - Exact: uniform-cost search over the configuration space, returning
//     the true optimum cost OPT of an MPP (or SPP) instance. Exponential;
//     intended for instances of ≤ ~12 nodes, where it serves as ground
//     truth for the heuristics and the gadget experiments.
//   - ZeroIO: a specialized decision procedure for "does a one-shot SPP
//     pebbling of I/O cost 0 exist?" — the question made NP-hard by
//     Theorem 2. It exploits that cost-0 one-shot pebblings are fully
//     described by a compute permutation with forced deletions.
//
// The search core is allocation-free on the hot path: states are packed
// uint64 words stored directly in an open-addressing hashtab.Table (the
// arena doubles as the state store), the frontier is a monotone bucket
// queue, and candidate expansion reuses scratch buffers — a rejected
// candidate touches the heap zero times. A map-backed oracle run of the
// same search (see oracle.go) locks the results byte-for-byte.
package opt

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/dag"
	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// Result is the outcome of an exact search.
//
// The search is anytime: when it stops early (state budget, deadline, or
// cancellation — Status reports which) the Result still carries the best
// incumbent found so far and an admissible lower bound taken at the
// frontier, so a blown budget degrades to a cost interval instead of
// discarding everything the search learned.
type Result struct {
	// Cost is the proven optimum when Status is StatusComplete; on a
	// partial result it equals Incumbent (-1 if no feasible pebbling was
	// seen before the stop).
	Cost   int64
	States int // states expanded

	// Status reports whether the search completed or why it stopped.
	Status Status
	// Incumbent is the cheapest feasible pebbling cost discovered, -1 if
	// none; equal to Cost on a complete run. OPT always lies in
	// [LowerBound, Incumbent].
	Incumbent int64
	// LowerBound is an admissible lower bound on the optimum: the proven
	// optimum on a complete run, otherwise the minimum f-value left on
	// the open frontier (g-cost plus the configured admissible
	// heuristic), clamped to never exceed Incumbent.
	LowerBound int64

	// Strategy is the reconstructed move sequence (present when the
	// search was run via ExactWithStrategy; nil from Exact). On a partial
	// result it replays to the incumbent cost, not the optimum.
	Strategy *pebble.Strategy

	// Pruned counts candidates discarded before hashing: states strictly
	// dominated by a settled state plus (one-shot mode) states the
	// heuristic proved dead. Zero when dominance is off and the instance
	// is not one-shot.
	Pruned int
	// HeuristicMode records which heuristic stack guided the search.
	HeuristicMode HeuristicMode
}

// Config selects the search variant. The zero value is a valid
// no-frills configuration (max heuristic, no dominance, no witness, but
// also no state budget); most callers want DefaultConfig.
type Config struct {
	// MaxStates bounds the number of distinct states expanded; exceeding
	// it stops the search with a partial Result and ErrBudget.
	MaxStates int
	// Heuristic selects the admissible bound stack (zero value:
	// HeuristicMax, the strongest).
	Heuristic HeuristicMode
	// Dominance enables pruning of strictly dominated candidates. It is
	// ignored in witness mode, where shade canonicalization is off and
	// the per-position subset test would be unsound.
	Dominance bool
	// Witness requests reconstruction of one optimal move sequence.
	Witness bool
}

// DefaultConfig is the configuration the plain Exact entry points run:
// the max heuristic with dominance pruning — the fastest sound setup.
func DefaultConfig(maxStates int) Config {
	return Config{MaxStates: maxStates, Heuristic: HeuristicMax, Dominance: true}
}

// Exact computes the exact optimum pebbling cost of the instance by A*
// search over configurations (processor shades are canonicalized, so
// symmetric configurations collapse) under DefaultConfig: the max of the
// compute-floor and I/O-aware admissible heuristics (see heuristic.go)
// plus dominance pruning (see dominate.go). maxStates bounds the number
// of distinct states visited; exceeding it returns a partial Result plus
// an error wrapping ErrBudget (see Result for the anytime contract).
//
// Exact handles every Params combination: multiprocessor parallel moves,
// zero compute costs (classic SPP, where Dijkstra's non-negative-edge
// requirement still holds), and one-shot mode (the computed set joins the
// search state).
func Exact(in *pebble.Instance, maxStates int) (*Result, error) {
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ExactCtx
	return exact(context.Background(), in, DefaultConfig(maxStates), nil)
}

// ExactCtx is Exact honoring a context: the search polls ctx and stops
// with a partial (anytime) result when it is canceled or its deadline
// passes, returning an error wrapping ctx.Err().
func ExactCtx(ctx context.Context, in *pebble.Instance, maxStates int) (*Result, error) {
	return exact(ctx, in, DefaultConfig(maxStates), nil)
}

// ExactWith is Exact under an explicit Config — heuristic mode,
// dominance pruning, witness reconstruction and the state budget are all
// caller-chosen. The benchmark harness and the per-mode equivalence
// tests use it; ordinary callers should prefer the plain entry points,
// which run DefaultConfig.
func ExactWith(ctx context.Context, in *pebble.Instance, cfg Config) (*Result, error) {
	return exact(ctx, in, cfg, nil)
}

// ExactWithStrategy is Exact additionally reconstructing one optimal
// strategy (via parent pointers); the result replays to exactly the
// optimal cost. Costs slightly more memory per state.
func ExactWithStrategy(in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Witness = true
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ExactWithStrategyCtx
	return exact(context.Background(), in, cfg, nil)
}

// ExactWithStrategyCtx is ExactWithStrategy honoring a context. On a
// partial stop the returned strategy (if any) replays to the incumbent
// cost.
func ExactWithStrategyCtx(ctx context.Context, in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Witness = true
	return exact(ctx, in, cfg, nil)
}

// exact runs the search. tab overrides the state table (tests pass the
// map-backed hashtab.Ref oracle); nil selects the open-addressing table.
func exact(ctx context.Context, in *pebble.Instance, cfg Config, tab hashtab.Index) (*Result, error) {
	n := in.Graph.N()
	if n == 0 {
		res := &Result{Cost: 0, Status: StatusComplete, HeuristicMode: cfg.Heuristic}
		if cfg.Witness {
			res.Strategy = &pebble.Strategy{}
		}
		return res, nil
	}
	if n > 62 {
		return nil, fmt.Errorf("opt: Exact supports at most 62 nodes, got %d", n)
	}
	if tab == nil {
		tab = hashtab.New(stateWords(in.K), 1024)
	}
	s := &solver{in: in, ctx: ctx, n: n, cfg: cfg, witness: cfg.Witness, tab: tab,
		useDom:    cfg.Dominance && !cfg.Witness,
		incumbent: math.MaxInt64, incumbentIdx: -1}
	return s.run()
}

// parentEdge records how a state was first reached at its best cost, for
// witness reconstruction.
type parentEdge struct {
	from int32
	move pebble.Move
}

type solver struct {
	in      *pebble.Instance
	ctx     context.Context
	n       int
	cfg     Config
	witness bool // == cfg.Witness, hoisted for the hot path
	useDom  bool // dominance pruning active (cfg.Dominance && !witness)

	// Anytime bookkeeping: the cheapest goal-state g-cost relaxed so far
	// (MaxInt64 until a feasible pebbling is seen) and, in witness mode,
	// its table index for incumbent-strategy reconstruction.
	incumbent    int64
	incumbentIdx int32

	predMask []uint64 // predecessor bitmask per node
	sinkMask uint64
	allMask  uint64       // low n bits set
	kr       int          // k·r, total red capacity
	topo     []dag.NodeID // precomputed topological order (shared with Graph)
	chainDP  []int32      // longest-uncomputed-chain DP scratch

	tab    hashtab.Index // state identity → dense index
	dist   []int64       // best g-cost per state index
	parent []parentEdge  // per state index; witness mode only
	bq     bucketQueue

	// Dominance pruning state (useDom only): which state indices have
	// been expanded, the (blue, computed) side index over them, and the
	// number of candidates dropped (reported as Result.Pruned together
	// with dead-state drops).
	settled []bool
	dom     *domIndex
	pruned  int

	curIdx int32 // index of the state being expanded

	// Scratch buffers, reused across the whole search so that expanding a
	// state and rejecting all its candidates performs zero allocations.
	cur                              []uint64 // copy of the expanding state
	cand                             []uint64 // candidate successor under construction
	choice                           []int    // per-processor pick inside product enumeration
	delChoice                        []int    // single-action choice vector for deletes
	computeOpts, readOpts, writeOpts [][]int
}

// Packed state layout accessors: words[0..k-1] red, words[k] blue,
// words[k+1] computed.
func (s *solver) blueWord(w []uint64) uint64     { return w[s.in.K] }
func (s *solver) computedWord(w []uint64) uint64 { return w[s.in.K+1] }

func (s *solver) run() (*Result, error) {
	k := s.in.K
	s.initDerived()
	if s.useDom {
		s.dom = newDomIndex()
	}

	w := stateWords(k)
	s.cur = make([]uint64, w)
	s.cand = make([]uint64, w)
	s.choice = make([]int, k)
	s.delChoice = make([]int, k)
	for p := range s.delChoice {
		s.delChoice[p] = -1
	}
	s.computeOpts = make([][]int, k)
	s.readOpts = make([][]int, k)
	s.writeOpts = make([][]int, k)

	// Seed: the empty configuration is state 0.
	start := make([]uint64, w)
	startIdx, _ := s.tab.Insert(start)
	s.dist = append(s.dist, 0)
	if s.witness {
		s.parent = append(s.parent, parentEdge{from: -1})
	}
	if s.useDom {
		s.settled = append(s.settled, false)
	}
	s.bq.push(s.h(start), int32(startIdx), 0)

	expanded := 0
	pops := 0
	for !s.bq.empty() {
		if pops&ctxCheckMask == 0 {
			if s.ctx.Err() != nil {
				return s.partial(StatusCanceled, expanded, -1), cancelErr(s.ctx, expanded)
			}
		}
		pops++
		e, _ := s.bq.pop()
		if e.g > s.dist[e.idx] {
			continue // stale queue entry
		}
		s.cur = append(s.cur[:0], s.tab.Key(int(e.idx))...)
		if s.isGoal(s.cur) {
			// Complete-run invariant: LowerBound == Cost == Incumbent.
			// The first goal popped is provably optimal, so all three are
			// e.g by construction — set explicitly rather than carrying
			// the incumbent field, which a stronger heuristic can leave
			// transiently above a frontier minimum mid-search.
			res := &Result{Cost: e.g, States: expanded,
				Status: StatusComplete, Incumbent: e.g, LowerBound: e.g,
				Pruned: s.pruned, HeuristicMode: s.cfg.Heuristic}
			if s.witness {
				strat, err := s.reconstruct(e.idx)
				if err != nil {
					return nil, err
				}
				res.Strategy = strat
			}
			return res, nil
		}
		expanded++
		if expanded > s.cfg.MaxStates {
			// The popped state was goal-checked but not expanded; its
			// f-value is still a valid frontier bound.
			poppedF := e.g + s.h(s.cur)
			return s.partial(StatusBudget, expanded, poppedF), budgetErr(expanded)
		}
		s.curIdx = e.idx
		if s.useDom {
			s.settle(e.idx)
		}
		s.expand(e.g)
	}
	return nil, fmt.Errorf("opt: no pebbling found (unreachable for valid instances)")
}

// partial assembles the anytime result of an early stop: the incumbent
// (best feasible cost relaxed so far, -1 if none) and the admissible
// frontier lower bound — the minimum f-value over the open queue plus,
// when a popped state went unexpanded, that state's f. OPT is guaranteed
// to lie in [LowerBound, Incumbent].
func (s *solver) partial(st Status, expanded int, poppedF int64) *Result {
	res := &Result{Cost: -1, States: expanded, Status: st, Incumbent: -1,
		Pruned: s.pruned, HeuristicMode: s.cfg.Heuristic}
	lb := int64(math.MaxInt64)
	if f, ok := s.bq.minF(); ok {
		lb = f
	}
	if poppedF >= 0 && poppedF < lb {
		lb = poppedF
	}
	if s.incumbent < math.MaxInt64 {
		res.Incumbent = s.incumbent
		res.Cost = s.incumbent
		if lb > s.incumbent {
			lb = s.incumbent
		}
		if s.witness && s.incumbentIdx >= 0 {
			if strat, err := s.reconstruct(s.incumbentIdx); err == nil {
				res.Strategy = strat
			}
		}
	}
	if lb == math.MaxInt64 {
		lb = 0 // empty frontier and no incumbent: nothing is known
	}
	res.LowerBound = lb
	return res
}

// reconstruct walks parent pointers from the goal back to state 0 (the
// initial configuration) and returns the move sequence.
func (s *solver) reconstruct(goal int32) (*pebble.Strategy, error) {
	var rev []pebble.Move
	for idx := goal; idx != 0; {
		e := s.parent[idx]
		if e.from < 0 {
			return nil, fmt.Errorf("opt: witness chain broken (internal error)")
		}
		rev = append(rev, e.move)
		idx = e.from
		if len(rev) > s.cfg.MaxStates {
			return nil, fmt.Errorf("opt: witness chain too long (internal error)")
		}
	}
	st := &pebble.Strategy{}
	for i := len(rev) - 1; i >= 0; i-- {
		st.Append(rev[i])
	}
	return st, nil
}

//mpp:hotpath
func (s *solver) isGoal(w []uint64) bool {
	pebbled := s.blueWord(w)
	for _, r := range w[:s.in.K] {
		pebbled |= r
	}
	return s.sinkMask&^pebbled == 0
}

// relax offers the candidate state in s.cand at the given g-cost. The
// move is materialized from (kind, choice) only in witness mode and only
// when the candidate actually improves — the rejected path allocates
// nothing (Insert on a present key is allocation-free).
//
//mpp:hotpath
func (s *solver) relax(cost int64, kind pebble.OpKind, choice []int) {
	if !s.witness {
		// Shade symmetry collapse is only sound when no move sequence
		// must be reconstructed (relabeling shades would desynchronize
		// the recorded moves' processor indices).
		canonicalizeRed(s.cand[:s.in.K])
		// A strictly dominated candidate is dropped before it is even
		// hashed — a settled state already covers everything it could
		// do, at lower cost. Goal candidates are never dominated (the
		// dominating state would itself be a goal, and goals are popped,
		// not settled), so the incumbent bookkeeping below is unharmed.
		if s.useDom && s.dominated(cost) {
			s.pruned++
			return
		}
	}
	idx, existed := s.tab.Insert(s.cand)
	if existed {
		if s.dist[idx] <= cost {
			return
		}
		s.dist[idx] = cost
	} else {
		s.dist = append(s.dist, cost)
		if s.witness {
			s.parent = append(s.parent, parentEdge{from: -1})
		}
		if s.useDom {
			s.settled = append(s.settled, false)
		}
	}
	if s.witness {
		s.parent[idx] = parentEdge{from: s.curIdx, move: moveOf(kind, choice)}
	}
	// Anytime incumbent: any goal state relaxed at cost c witnesses a
	// feasible pebbling of cost c, even though optimality is only proven
	// when the goal is popped. Both the table and the oracle run this
	// identically, so early-stop results stay byte-identical.
	if cost < s.incumbent && s.isGoal(s.cand) {
		s.incumbent = cost
		s.incumbentIdx = int32(idx)
	}
	h := s.h(s.cand)
	if h < 0 {
		// Dead state (one-shot): provably cannot reach the goal. It
		// stays in the table (so re-derivations are cheap) but is never
		// queued. Counted into Pruned alongside dominance drops.
		s.pruned++
		return
	}
	s.bq.push(cost+h, int32(idx), cost)
}

// expand generates every successor state of s.cur. Per-processor option
// lists are combined into parallel moves; since a parallel move costs the
// same as a single action of the same kind, one might hope only maximal
// combinations matter, but adding an extra legal action occupies memory,
// so the full product of per-processor choices is explored.
//
//mpp:hotpath
func (s *solver) expand(cost int64) {
	k := s.in.K
	gCost := int64(s.in.G)
	cCost := int64(s.in.ComputeCost)

	// Per-processor candidate actions for each move kind. -1 encodes
	// "idle" (processor not in the shaded selection).
	blue := s.blueWord(s.cur)
	computed := s.computedWord(s.cur)
	for p := 0; p < k; p++ {
		co := s.computeOpts[p][:0]
		ro := s.readOpts[p][:0]
		wo := s.writeOpts[p][:0]
		red := s.cur[p]
		for v := 0; v < s.n; v++ {
			bit := uint64(1) << uint(v)
			// Compute v on p: all preds red on p, v not red on p, memory ok.
			if s.predMask[v]&^red == 0 && red&bit == 0 {
				if !s.in.OneShot || computed&bit == 0 {
					co = append(co, v)
				}
			}
			// Read v into p: v blue, not already red on p.
			if blue&bit != 0 && red&bit == 0 {
				ro = append(ro, v)
			}
			// Write v from p: v red on p, not already blue.
			if red&bit != 0 && blue&bit == 0 {
				wo = append(wo, v)
			}
		}
		s.computeOpts[p], s.readOpts[p], s.writeOpts[p] = co, ro, wo
	}

	// Delete edges (cost 0): remove one red pebble. Blue deletions are
	// never beneficial (slow memory is unlimited), so they are skipped.
	// Under dominance pruning, deletes are additionally restricted to
	// *full* processors (lazy deletion): a move adds at most one red
	// pebble per processor, so one free slot is always enough, and any
	// pebbling reorders at equal cost into this normal form — surplus
	// pebbles never invalidate later moves and only help the goal.
	for p := 0; p < k; p++ {
		reds := s.cur[p]
		if s.useDom && popcount(reds) < s.in.R {
			continue
		}
		for reds != 0 {
			v := trailingZeros(reds)
			reds &= reds - 1
			copy(s.cand, s.cur)
			s.cand[p] &^= 1 << uint(v)
			s.delChoice[p] = v
			s.relax(cost, pebble.OpDelete, s.delChoice)
			s.delChoice[p] = -1
		}
	}

	s.product(s.computeOpts, pebble.OpCompute, cost+cCost)
	s.product(s.readOpts, pebble.OpRead, cost+gCost)
	s.product(s.writeOpts, pebble.OpWrite, cost+gCost)
}

// applyChoice builds the successor for s.choice under the given move kind
// into s.cand and relaxes it if legal.
//
//mpp:hotpath
func (s *solver) applyChoice(kind pebble.OpKind, newCost int64) {
	copy(s.cand, s.cur)
	switch kind {
	case pebble.OpCompute:
		var seen uint64
		for p, v := range s.choice {
			if v < 0 {
				continue
			}
			bit := uint64(1) << uint(v)
			if s.in.OneShot && seen&bit != 0 {
				return // two processors computing v at once would double-apply R3
			}
			seen |= bit
			s.cand[p] |= bit
			s.cand[s.in.K+1] |= bit
			if popcount(s.cand[p]) > s.in.R {
				return
			}
		}
	case pebble.OpRead:
		for p, v := range s.choice {
			if v < 0 {
				continue
			}
			s.cand[p] |= 1 << uint(v)
			if popcount(s.cand[p]) > s.in.R {
				return
			}
		}
	case pebble.OpWrite:
		for _, v := range s.choice {
			if v < 0 {
				continue
			}
			s.cand[s.in.K] |= 1 << uint(v)
		}
	}
	s.relax(newCost, kind, s.choice)
}

// moveOf converts a per-processor choice vector (-1 = idle) into a Move.
func moveOf(kind pebble.OpKind, choice []int) pebble.Move {
	m := pebble.Move{Kind: kind}
	for p, v := range choice {
		if v >= 0 {
			m.Actions = append(m.Actions, pebble.At(p, dag.NodeID(v)))
		}
	}
	return m
}

// product enumerates every non-empty combination of per-processor
// choices (-1 = idle) into s.choice and applies each. One-shot duplicates
// of the same node on different processors in a single compute move are
// rejected in applyChoice.
//
//mpp:hotpath
func (s *solver) product(opts [][]int, kind pebble.OpKind, newCost int64) {
	s.productRec(opts, kind, newCost, 0, false)
}

//mpp:hotpath
func (s *solver) productRec(opts [][]int, kind pebble.OpKind, newCost int64, p int, any bool) {
	if p == len(opts) {
		if any {
			s.applyChoice(kind, newCost)
		}
		return
	}
	s.choice[p] = -1
	s.productRec(opts, kind, newCost, p+1, any)
	for _, v := range opts[p] {
		s.choice[p] = v
		s.productRec(opts, kind, newCost, p+1, true)
	}
	s.choice[p] = -1
}

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
