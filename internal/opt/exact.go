// Package opt contains exact solvers for small pebbling instances:
//
//   - Exact: uniform-cost search over the configuration space, returning
//     the true optimum cost OPT of an MPP (or SPP) instance. Exponential;
//     intended for instances of ≤ ~12 nodes, where it serves as ground
//     truth for the heuristics and the gadget experiments.
//   - ZeroIO: a specialized decision procedure for "does a one-shot SPP
//     pebbling of I/O cost 0 exist?" — the question made NP-hard by
//     Theorem 2. It exploits that cost-0 one-shot pebblings are fully
//     described by a compute permutation with forced deletions.
//
// The search core is allocation-free on the hot path: states are packed
// uint64 words stored directly in an open-addressing hashtab.Table (the
// arena doubles as the state store), the frontier is a monotone bucket
// queue, and candidate expansion reuses scratch buffers — a rejected
// candidate touches the heap zero times. A map-backed oracle run of the
// same search (see oracle.go) locks the results byte-for-byte.
//
// The search is organized as a wave-synchronous A* over f-layers (see
// parallel.go): with Config.Workers > 1 the state space is hash-sharded
// across workers HDA*-style, and the layer barriers make the results
// byte-identical to the single-worker run regardless of worker count.
// Config.Mode = ModeAsync swaps the layer barriers for speculative
// asynchronous HDA* (see async.go): the optimum stays exact, but
// expansion counts and traces become timing-dependent.
//
// Solver arenas (table, queue, dominance index, scratch) are recycled
// through a package-level pool across searches (see batch.go); callers
// solving many instances back to back can use SolveBatch, but every
// entry point benefits automatically.
package opt

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/dag"
	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// Result is the outcome of an exact search.
//
// The search is anytime: when it stops early (state budget, deadline, or
// cancellation — Status reports which) the Result still carries the best
// incumbent found so far and an admissible lower bound taken at the
// frontier, so a blown budget degrades to a cost interval instead of
// discarding everything the search learned.
type Result struct {
	// Cost is the proven optimum when Status is StatusComplete; on a
	// partial result it equals Incumbent (-1 if no feasible pebbling was
	// seen before the stop).
	Cost int64
	// States counts charged expansions summed across shards: states
	// popped live from a frontier and expanded (each charged once against
	// Config.MaxStates). The meaning is identical in every engine —
	// inline, deterministic-sharded and async; in ModeDeterministic the
	// count is additionally invariant across worker counts, while in
	// ModeAsync it is timing-dependent (a state re-expanded after a
	// better-g reopening is charged again — see ReExpanded).
	States int

	// Status reports whether the search completed or why it stopped.
	Status Status
	// Incumbent is the cheapest feasible pebbling cost discovered, -1 if
	// none; equal to Cost on a complete run. OPT always lies in
	// [LowerBound, Incumbent].
	Incumbent int64
	// LowerBound is an admissible lower bound on the optimum: the proven
	// optimum on a complete run, otherwise the minimum f-value left on
	// the open frontier (g-cost plus the configured admissible
	// heuristic). When an incumbent exists it is clamped to never exceed
	// Incumbent; an incumbent-less partial result reports the frontier
	// bound unclamped — always ≥ 0, never dragged toward Incumbent's -1
	// sentinel.
	LowerBound int64

	// Strategy is the reconstructed move sequence (present when the
	// search was run via ExactWithStrategy; nil from Exact). On a partial
	// result it replays to the incumbent cost, not the optimum.
	Strategy *pebble.Strategy

	// Pruned counts candidates the search discarded instead of queuing:
	// states strictly dominated by a settled state (one count per
	// dominance rejection) plus, in one-shot mode, distinct states the
	// heuristic proved dead (counted once per dead state, on first
	// insertion — dead-ness is a pure function of the state, so this
	// share is order-independent). Zero when dominance is off and the
	// instance is not one-shot. The meaning is identical in every engine;
	// in ModeDeterministic the value is invariant across worker counts,
	// in ModeAsync it is timing-dependent like States.
	Pruned int
	// ReExpanded counts ModeAsync re-expansions: a speculatively expanded
	// state reopened by a later, cheaper path and expanded again (each
	// such expansion is also in States). Always 0 in ModeDeterministic —
	// the layer barriers make premature expansion impossible.
	ReExpanded int
	// HeuristicMode records which heuristic stack guided the search.
	HeuristicMode HeuristicMode
}

// Config selects the search variant. The zero value is a valid
// no-frills configuration (max heuristic, no dominance, no witness, no
// state budget, GOMAXPROCS workers); most callers want DefaultConfig.
type Config struct {
	// MaxStates bounds the number of distinct states expanded (summed
	// across workers); exceeding it stops the search with a partial
	// Result and ErrBudget. Non-positive means unbounded. Deterministic
	// engines check the budget at wave boundaries and let the stopping
	// wave finish — States may overshoot MaxStates by that wave's tail,
	// which is what keeps every partial-Result field a pure function of
	// the search graph (a mid-wave cut would expand a scheduling-
	// dependent subset). ModeAsync promises no such invariance and
	// enforces the cap exactly, per expansion.
	MaxStates int
	// Heuristic selects the admissible bound stack (zero value:
	// HeuristicMax, the strongest).
	Heuristic HeuristicMode
	// Dominance enables pruning of strictly dominated candidates. It is
	// ignored in witness mode, where shade canonicalization is off and
	// the per-position subset test would be unsound.
	Dominance bool
	// Witness requests reconstruction of one optimal move sequence.
	Witness bool
	// Workers is the number of search workers the state space is
	// hash-sharded across. 0 means GOMAXPROCS; 1 runs the engine inline
	// with no goroutines or channels. In ModeDeterministic results are
	// byte-identical for every worker count (States and Pruned included).
	Workers int
	// Mode selects the parallel engine's coordination discipline:
	// ModeDeterministic (the zero value) runs wave-synchronous layers
	// with worker-count-invariant results; ModeAsync drops the barriers
	// for raw throughput — the returned Cost/Status stay exact, but
	// States/Pruned/ReExpanded and the witness trace become
	// timing-dependent. See async.go.
	Mode Mode
}

// DefaultConfig is the configuration the plain Exact entry points run:
// the max heuristic with dominance pruning — the fastest sound setup.
// Workers is left 0 (GOMAXPROCS), so ExactWith callers inherit the
// sharded parallel search; the plain convenience entry points pin
// Workers to 1 (see Exact).
func DefaultConfig(maxStates int) Config {
	return Config{MaxStates: maxStates, Heuristic: HeuristicMax, Dominance: true}
}

// Exact computes the exact optimum pebbling cost of the instance by A*
// search over configurations (processor shades are canonicalized, so
// symmetric configurations collapse) under DefaultConfig: the max of the
// compute-floor and I/O-aware admissible heuristics (see heuristic.go)
// plus dominance pruning (see dominate.go). maxStates bounds the number
// of distinct states visited; exceeding it returns a partial Result plus
// an error wrapping ErrBudget (see Result for the anytime contract).
//
// Exact handles every Params combination: multiprocessor parallel moves,
// zero compute costs (classic SPP, where Dijkstra's non-negative-edge
// requirement still holds), and one-shot mode (the computed set joins the
// search state).
//
// The plain entry points run single-worker (results are byte-identical
// either way; one worker keeps the zero-goroutine allocation budget).
// Use ExactWith with Config.Workers for the sharded parallel search.
func Exact(in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Workers = 1
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ExactCtx
	return exact(context.Background(), in, cfg, nil)
}

// ExactCtx is Exact honoring a context: the search polls ctx and stops
// with a partial (anytime) result when it is canceled or its deadline
// passes, returning an error wrapping ctx.Err().
func ExactCtx(ctx context.Context, in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Workers = 1
	return exact(ctx, in, cfg, nil)
}

// ExactWith is Exact under an explicit Config — heuristic mode,
// dominance pruning, witness reconstruction, the state budget and the
// worker count are all caller-chosen. The benchmark harness, the
// experiment harness and the per-mode equivalence tests use it; with
// DefaultConfig it runs the sharded search across GOMAXPROCS workers.
func ExactWith(ctx context.Context, in *pebble.Instance, cfg Config) (*Result, error) {
	return exact(ctx, in, cfg, nil)
}

// ExactWithStrategy is Exact additionally reconstructing one optimal
// strategy (via parent pointers); the result replays to exactly the
// optimal cost. Costs slightly more memory per state. Single-worker,
// like Exact.
func ExactWithStrategy(in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Witness = true
	cfg.Workers = 1
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ExactWithStrategyCtx
	return exact(context.Background(), in, cfg, nil)
}

// ExactWithStrategyCtx is ExactWithStrategy honoring a context. On a
// partial stop the returned strategy (if any) replays to the incumbent
// cost.
func ExactWithStrategyCtx(ctx context.Context, in *pebble.Instance, maxStates int) (*Result, error) {
	cfg := DefaultConfig(maxStates)
	cfg.Witness = true
	cfg.Workers = 1
	return exact(ctx, in, cfg, nil)
}

// exact runs the search. newTab overrides the per-shard state table
// constructor (tests pass the map-backed hashtab.Ref oracle); nil
// selects the open-addressing table. A constructor rather than an
// instance: the sharded engine needs one single-owner table per worker.
//
// Runs with the default table recycle their solver arenas through the
// package pool (see batch.go); oracle runs stay pool-free so a Ref never
// masquerades as a reusable Table.
func exact(ctx context.Context, in *pebble.Instance, cfg Config, newTab func() hashtab.Index) (*Result, error) {
	n := in.Graph.N()
	if n == 0 {
		res := &Result{Cost: 0, Status: StatusComplete, HeuristicMode: cfg.Heuristic}
		if cfg.Witness {
			res.Strategy = &pebble.Strategy{}
		}
		return res, nil
	}
	if n > 62 {
		return nil, fmt.Errorf("opt: Exact supports at most 62 nodes, got %d", n)
	}
	pooled := newTab == nil
	if pooled {
		newTab = func() hashtab.Index { return hashtab.New(stateWords(in.K), 1024) }
	}
	eng := newEngine(ctx, in, cfg, newTab, pooled)
	res, err := eng.run()
	eng.release()
	return res, err
}

// stateRef names a state across shards: the shard that owns it plus its
// dense index in that shard's table. idx < 0 is the "none" sentinel.
type stateRef struct {
	shard int32
	idx   int32
}

// parentEdge records how a state was first reached at its best cost, for
// witness reconstruction. The parent may live on a different shard.
type parentEdge struct {
	from stateRef
	move pebble.Move
}

// solver is one shard's worker state: it owns a contiguous partition of
// the hash-sharded state space — its own table arena, distance and
// parent arrays, bucket queue and dominance index — and exchanges only
// candidate batches (see parallel.go) with other shards. With one
// worker there is exactly one solver holding the whole space.
type solver struct {
	in      *pebble.Instance
	ctx     context.Context
	n       int
	cfg     Config
	witness bool // == cfg.Witness, hoisted for the hot path
	useDom  bool // dominance pruning active (cfg.Dominance && !witness)
	async   bool // == (cfg.Mode == ModeAsync), hoisted for the hot path

	eng   *engine // shared search-wide state (incumbent, budget, routing)
	shard int32   // this solver's shard id

	predMask []uint64 // predecessor bitmask per node
	sinkMask uint64
	allMask  uint64       // low n bits set
	kr       int          // k·r, total red capacity
	topo     []dag.NodeID // precomputed topological order (shared with Graph)
	chainDP  []int32      // longest-uncomputed-chain DP scratch

	tab    hashtab.Index // state identity → dense index (this shard only)
	dist   []int64       // best g-cost per state index
	parent []parentEdge  // per state index; witness mode only
	bq     bucketQueue

	// expandedMark marks state indices this shard has expanded — the
	// within-layer dedupe (a state reappearing in a later wave of the
	// same f-layer via an equal-cost path must not expand twice) and the
	// settled-set definition for dominance pruning. In async mode the
	// mark is cleared again when a cheaper path reopens the state.
	expandedMark []bool
	// settledMark (async + dominance only) remembers states already
	// registered in the dominance index, so a reopened state is not
	// added twice on re-expansion.
	settledMark []bool
	dom         *domIndex
	pruned      int
	expanded    int // states expanded by this shard
	reopened    int // async: expanded states reopened by a better g
	pops        int // worklist entries examined, for ctx-poll throttling

	// Wave bookkeeping: the current wave's drained bucket contents and
	// the state indices expanded during it (settled into the dominance
	// index at the wave boundary — see parallel.go for why).
	worklist []bqEntry
	waveExp  []int32

	// Cross-shard routing state (Workers > 1 only): per-destination
	// outgoing batch under construction, per-source received batches for
	// the current wave, and the count of flush markers received.
	out      []*batch
	incoming [][]*batch
	markers  int

	curIdx int32 // index of the state being expanded

	// Scratch buffers, reused across the whole search so that expanding a
	// state and rejecting all its candidates performs zero allocations.
	cur                              []uint64 // copy of the expanding state
	cand                             []uint64 // candidate successor under construction
	choice                           []int    // per-processor pick inside product enumeration
	delChoice                        []int    // single-action choice vector for deletes
	computeOpts, readOpts, writeOpts [][]int
}

// Packed state layout accessors: words[0..k-1] red, words[k] blue,
// words[k+1] computed.
func (s *solver) blueWord(w []uint64) uint64     { return w[s.in.K] }
func (s *solver) computedWord(w []uint64) uint64 { return w[s.in.K+1] }

// initScratch sizes the per-shard scratch buffers, reusing capacity left
// by a previous search when the solver comes from the arena pool (see
// batch.go). Called once per search, before any expansion. Stale scratch
// content is harmless: every buffer is fully (re)written before it is
// read — cur/cand by copy/append, choice by productRec, delChoice below,
// and the option lists are always truncated to [:0] first.
func (s *solver) initScratch() {
	k := s.in.K
	w := stateWords(k)
	s.cur = resizeU64(s.cur, w)
	s.cand = resizeU64(s.cand, w)
	s.choice = resizeInts(s.choice, k)
	s.delChoice = resizeInts(s.delChoice, k)
	for p := range s.delChoice {
		s.delChoice[p] = -1
	}
	s.computeOpts = resizeOptLists(s.computeOpts, k)
	s.readOpts = resizeOptLists(s.readOpts, k)
	s.writeOpts = resizeOptLists(s.writeOpts, k)
}

// resizeU64 returns a slice of length n, reusing b's capacity if enough.
func resizeU64(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, n)
	}
	return b[:n]
}

func resizeInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// resizeOptLists keeps the inner option slices (and their capacities)
// alive across searches; entries are always reset to [:0] before use.
func resizeOptLists(b [][]int, n int) [][]int {
	if cap(b) < n {
		return make([][]int, n)
	}
	return b[:n]
}

//mpp:hotpath
func (s *solver) isGoal(w []uint64) bool {
	pebbled := s.blueWord(w)
	for _, r := range w[:s.in.K] {
		pebbled |= r
	}
	return s.sinkMask&^pebbled == 0
}

// offer routes the candidate state in s.cand at the given g-cost to its
// owning shard: applied immediately when this shard owns it, batched
// onto the owner's inbox otherwise. The move is materialized from
// (kind, choice) only in witness mode — lazily (only when the candidate
// improves) on the local path; eagerly when crossing shards, since the
// scratch choice vector cannot travel.
//
//mpp:hotpath
func (s *solver) offer(cost int64, kind pebble.OpKind, choice []int) {
	if !s.witness {
		// Shade symmetry collapse is only sound when no move sequence
		// must be reconstructed (relabeling shades would desynchronize
		// the recorded moves' processor indices). Ownership hashes only
		// the (blue, computed) words, so canonicalizing first does not
		// move the candidate across shards.
		canonicalizeRed(s.cand[:s.in.K])
	}
	if s.eng.nShards > 1 {
		if dst := s.eng.ownerOf(s.cand); dst != int(s.shard) {
			s.route(dst, cost, kind, choice)
			return
		}
	}
	if s.useDom && s.dominated(s.cand, cost) {
		s.pruned++
		return
	}
	idx, fresh := s.insert(s.cand, cost)
	if idx < 0 {
		return
	}
	if s.witness {
		s.parent[idx] = parentEdge{from: stateRef{shard: s.shard, idx: s.curIdx}, move: moveOf(kind, choice)}
	}
	s.enqueue(s.cand, cost, idx, fresh)
}

// applyRemote applies one candidate received from another shard — the
// deferred half of offer, run during the wave's apply phase. The words
// slice aliases the batch buffer; Insert copies it.
//
//mpp:hotpath
func (s *solver) applyRemote(w []uint64, cost int64, from stateRef, move pebble.Move) {
	if s.useDom && s.dominated(w, cost) {
		s.pruned++
		return
	}
	idx, fresh := s.insert(w, cost)
	if idx < 0 {
		return
	}
	if s.witness {
		s.parent[idx] = parentEdge{from: from, move: move}
	}
	s.enqueue(w, cost, idx, fresh)
}

// insert interns the candidate words and relaxes its distance, growing
// the per-state arrays on first sight. Returns the state index and
// whether the state was fresh (first time seen), or idx -1 when the
// candidate does not improve the known distance (the rejected path
// allocates nothing — Insert on a present key is allocation-free).
//
// In async mode an improving relaxation of an already-expanded state
// reopens it (the re-expansion rule, see async.go): the expanded mark is
// cleared so the state expands again with the better g. Impossible in
// deterministic mode, where layer barriers guarantee a state expands
// only at its final distance.
//
//mpp:hotpath
func (s *solver) insert(w []uint64, cost int64) (int32, bool) {
	idx, existed := s.tab.Insert(w)
	if existed {
		if s.dist[idx] <= cost {
			return -1, false
		}
		s.dist[idx] = cost
		if s.async && s.expandedMark[idx] {
			s.expandedMark[idx] = false
			s.reopened++
		}
		return int32(idx), false
	}
	s.dist = append(s.dist, cost)
	s.expandedMark = append(s.expandedMark, false)
	if s.async && s.useDom {
		s.settledMark = append(s.settledMark, false)
	}
	if s.witness {
		s.parent = append(s.parent, parentEdge{from: stateRef{idx: -1}})
	}
	return int32(idx), true
}

// enqueue finishes an improving relaxation: incumbent bookkeeping, the
// dead-state drop, and the frontier push.
//
//mpp:hotpath
func (s *solver) enqueue(w []uint64, cost int64, idx int32, fresh bool) {
	// Anytime incumbent: any goal state relaxed at cost c witnesses a
	// feasible pebbling of cost c, even though optimality is only proven
	// at the layer barrier. The incumbent is a search-wide atomic min,
	// so every worker count converges to the same value.
	if cost < s.eng.incumbentNow() && s.isGoal(w) {
		s.eng.offerIncumbent(cost, stateRef{shard: s.shard, idx: idx})
	}
	h := s.h(w)
	if h < 0 {
		// Dead state (one-shot): provably cannot reach the goal. It
		// stays in the table (so re-derivations are cheap) but is never
		// queued. Counted into Pruned alongside dominance drops — but
		// only on first insertion: dead-ness is a pure function of the
		// state words, so counting per state (not per improvement event)
		// keeps Pruned order-independent and hence worker-count-
		// invariant in deterministic mode.
		if fresh {
			s.pruned++
		}
		return
	}
	s.bq.push(cost+h, idx, cost)
}

// expand generates every successor state of s.cur. Per-processor option
// lists are combined into parallel moves; since a parallel move costs the
// same as a single action of the same kind, one might hope only maximal
// combinations matter, but adding an extra legal action occupies memory,
// so the full product of per-processor choices is explored.
//
//mpp:hotpath
func (s *solver) expand(cost int64) {
	k := s.in.K
	gCost := int64(s.in.G)
	cCost := int64(s.in.ComputeCost)

	// Per-processor candidate actions for each move kind. -1 encodes
	// "idle" (processor not in the shaded selection).
	blue := s.blueWord(s.cur)
	computed := s.computedWord(s.cur)
	for p := 0; p < k; p++ {
		co := s.computeOpts[p][:0]
		ro := s.readOpts[p][:0]
		wo := s.writeOpts[p][:0]
		red := s.cur[p]
		for v := 0; v < s.n; v++ {
			bit := uint64(1) << uint(v)
			// Compute v on p: all preds red on p, v not red on p, memory ok.
			if s.predMask[v]&^red == 0 && red&bit == 0 {
				if !s.in.OneShot || computed&bit == 0 {
					co = append(co, v)
				}
			}
			// Read v into p: v blue, not already red on p.
			if blue&bit != 0 && red&bit == 0 {
				ro = append(ro, v)
			}
			// Write v from p: v red on p, not already blue.
			if red&bit != 0 && blue&bit == 0 {
				wo = append(wo, v)
			}
		}
		s.computeOpts[p], s.readOpts[p], s.writeOpts[p] = co, ro, wo
	}

	// Delete edges (cost 0): remove one red pebble. Blue deletions are
	// never beneficial (slow memory is unlimited), so they are skipped.
	// Under dominance pruning, deletes are additionally restricted to
	// *full* processors (lazy deletion): a move adds at most one red
	// pebble per processor, so one free slot is always enough, and any
	// pebbling reorders at equal cost into this normal form — surplus
	// pebbles never invalidate later moves and only help the goal.
	for p := 0; p < k; p++ {
		reds := s.cur[p]
		if s.useDom && popcount(reds) < s.in.R {
			continue
		}
		for reds != 0 {
			v := trailingZeros(reds)
			reds &= reds - 1
			copy(s.cand, s.cur)
			s.cand[p] &^= 1 << uint(v)
			s.delChoice[p] = v
			s.offer(cost, pebble.OpDelete, s.delChoice)
			s.delChoice[p] = -1
		}
	}

	s.product(s.computeOpts, pebble.OpCompute, cost+cCost)
	s.product(s.readOpts, pebble.OpRead, cost+gCost)
	s.product(s.writeOpts, pebble.OpWrite, cost+gCost)
}

// applyChoice builds the successor for s.choice under the given move kind
// into s.cand and offers it if legal.
//
//mpp:hotpath
func (s *solver) applyChoice(kind pebble.OpKind, newCost int64) {
	copy(s.cand, s.cur)
	switch kind {
	case pebble.OpCompute:
		var seen uint64
		for p, v := range s.choice {
			if v < 0 {
				continue
			}
			bit := uint64(1) << uint(v)
			if s.in.OneShot && seen&bit != 0 {
				return // two processors computing v at once would double-apply R3
			}
			seen |= bit
			s.cand[p] |= bit
			s.cand[s.in.K+1] |= bit
			if popcount(s.cand[p]) > s.in.R {
				return
			}
		}
	case pebble.OpRead:
		for p, v := range s.choice {
			if v < 0 {
				continue
			}
			s.cand[p] |= 1 << uint(v)
			if popcount(s.cand[p]) > s.in.R {
				return
			}
		}
	case pebble.OpWrite:
		for _, v := range s.choice {
			if v < 0 {
				continue
			}
			s.cand[s.in.K] |= 1 << uint(v)
		}
	}
	s.offer(newCost, kind, s.choice)
}

// moveOf converts a per-processor choice vector (-1 = idle) into a Move.
func moveOf(kind pebble.OpKind, choice []int) pebble.Move {
	m := pebble.Move{Kind: kind}
	for p, v := range choice {
		if v >= 0 {
			m.Actions = append(m.Actions, pebble.At(p, dag.NodeID(v)))
		}
	}
	return m
}

// product enumerates every non-empty combination of per-processor
// choices (-1 = idle) into s.choice and applies each. One-shot duplicates
// of the same node on different processors in a single compute move are
// rejected in applyChoice.
//
//mpp:hotpath
func (s *solver) product(opts [][]int, kind pebble.OpKind, newCost int64) {
	s.productRec(opts, kind, newCost, 0, false)
}

//mpp:hotpath
func (s *solver) productRec(opts [][]int, kind pebble.OpKind, newCost int64, p int, any bool) {
	if p == len(opts) {
		if any {
			s.applyChoice(kind, newCost)
		}
		return
	}
	s.choice[p] = -1
	s.productRec(opts, kind, newCost, p+1, any)
	for _, v := range opts[p] {
		s.choice[p] = v
		s.productRec(opts, kind, newCost, p+1, true)
	}
	s.choice[p] = -1
}

func popcount(x uint64) int      { return bits.OnesCount64(x) }
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
