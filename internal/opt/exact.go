// Package opt contains exact solvers for small pebbling instances:
//
//   - Exact: uniform-cost search over the configuration space, returning
//     the true optimum cost OPT of an MPP (or SPP) instance. Exponential;
//     intended for instances of ≤ ~12 nodes, where it serves as ground
//     truth for the heuristics and the gadget experiments.
//   - ZeroIO: a specialized decision procedure for "does a one-shot SPP
//     pebbling of I/O cost 0 exist?" — the question made NP-hard by
//     Theorem 2. It exploits that cost-0 one-shot pebblings are fully
//     described by a compute permutation with forced deletions.
package opt

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// ErrBudget is wrapped in errors returned when a search exceeds its state
// budget.
var ErrBudget = fmt.Errorf("opt: state budget exhausted")

// Result is the outcome of an exact search.
type Result struct {
	Cost   int64 // optimal total cost
	States int   // states expanded

	// Strategy is the reconstructed optimal move sequence (present when
	// the search was run via ExactWithStrategy; nil from Exact).
	Strategy *pebble.Strategy
}

// Exact computes the exact optimum pebbling cost of the instance by A*
// search over configurations (processor shades are canonicalized, so
// symmetric configurations collapse). The heuristic is the admissible
// compute floor ⌈uncomputed/k⌉·computeCost — every remaining node costs
// at least one k-wide compute move. maxStates bounds the number of
// distinct states visited; exceeding it returns ErrBudget.
//
// Exact handles every Params combination: multiprocessor parallel moves,
// zero compute costs (classic SPP, where Dijkstra's non-negative-edge
// requirement still holds), and one-shot mode (the computed set joins the
// search state).
func Exact(in *pebble.Instance, maxStates int) (*Result, error) {
	return exact(in, maxStates, false)
}

// ExactWithStrategy is Exact additionally reconstructing one optimal
// strategy (via parent pointers); the result replays to exactly the
// optimal cost. Costs slightly more memory per state.
func ExactWithStrategy(in *pebble.Instance, maxStates int) (*Result, error) {
	return exact(in, maxStates, true)
}

func exact(in *pebble.Instance, maxStates int, witness bool) (*Result, error) {
	n := in.Graph.N()
	if n == 0 {
		res := &Result{Cost: 0}
		if witness {
			res.Strategy = &pebble.Strategy{}
		}
		return res, nil
	}
	if n > 62 {
		return nil, fmt.Errorf("opt: Exact supports at most 62 nodes, got %d", n)
	}
	s := &solver{in: in, n: n, maxStates: maxStates}
	if witness {
		s.parent = map[string]edge{}
	}
	return s.run()
}

// state packs a configuration (and in one-shot mode, the computed set)
// into comparable bitmasks. With n ≤ 62 each set fits one uint64.
type state struct {
	red      []uint64 // canonical order (sorted) when shades are symmetric
	blue     uint64
	computed uint64 // used only in one-shot mode
}

func (st state) key() string {
	buf := make([]byte, 0, 8*(len(st.red)+2))
	for _, r := range st.red {
		buf = appendU64(buf, r)
	}
	buf = appendU64(buf, st.blue)
	buf = appendU64(buf, st.computed)
	return string(buf)
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

type pqItem struct {
	st   state
	cost int64 // g-cost (cost so far)
	f    int64 // g + admissible heuristic
	idx  int
}

type pq []*pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].idx = i; p[j].idx = j }
func (p *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*p); *p = append(*p, it) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return it
}

// edge records how a state was first reached at its best cost, for
// witness reconstruction.
type edge struct {
	from string
	move pebble.Move
}

type solver struct {
	in        *pebble.Instance
	n         int
	maxStates int

	predMask []uint64 // predecessor bitmask per node
	succMask []uint64
	sinkMask uint64

	dist   map[string]int64
	parent map[string]edge // nil unless witness reconstruction is on
	q      pq

	cur state // state being expanded (for parent bookkeeping)
}

func (s *solver) run() (*Result, error) {
	g := s.in.Graph
	s.predMask = make([]uint64, s.n)
	s.succMask = make([]uint64, s.n)
	for v := 0; v < s.n; v++ {
		for _, u := range g.Pred(dag.NodeID(v)) {
			s.predMask[v] |= 1 << uint(u)
		}
		for _, w := range g.Succ(dag.NodeID(v)) {
			s.succMask[v] |= 1 << uint(w)
		}
	}
	for _, v := range g.Sinks() {
		s.sinkMask |= 1 << uint(v)
	}

	start := state{red: make([]uint64, s.in.K)}
	s.dist = map[string]int64{start.key(): 0}
	heap.Push(&s.q, &pqItem{st: start, cost: 0, f: s.heuristic(start)})
	expanded := 0
	for s.q.Len() > 0 {
		it := heap.Pop(&s.q).(*pqItem)
		if d, ok := s.dist[it.st.key()]; ok && it.cost > d {
			continue // stale queue entry
		}
		if s.isGoal(it.st) {
			res := &Result{Cost: it.cost, States: expanded}
			if s.parent != nil {
				strat, err := s.reconstruct(it.st)
				if err != nil {
					return nil, err
				}
				res.Strategy = strat
			}
			return res, nil
		}
		expanded++
		if expanded > s.maxStates {
			return nil, fmt.Errorf("%w after %d states", ErrBudget, expanded)
		}
		s.cur = it.st
		s.expand(it.st, it.cost)
	}
	return nil, fmt.Errorf("opt: no pebbling found (unreachable for valid instances)")
}

// reconstruct walks parent pointers from the goal back to the initial
// state and returns the move sequence.
func (s *solver) reconstruct(goal state) (*pebble.Strategy, error) {
	startKey := state{red: make([]uint64, s.in.K)}.key()
	var rev []pebble.Move
	key := goal.key()
	for key != startKey {
		e, ok := s.parent[key]
		if !ok {
			return nil, fmt.Errorf("opt: witness chain broken (internal error)")
		}
		rev = append(rev, e.move)
		key = e.from
		if len(rev) > s.maxStates {
			return nil, fmt.Errorf("opt: witness chain too long (internal error)")
		}
	}
	st := &pebble.Strategy{}
	for i := len(rev) - 1; i >= 0; i-- {
		st.Append(rev[i])
	}
	return st, nil
}

// heuristic returns an admissible lower bound on the cost to go: every
// node never yet computed must appear in some compute move, and one move
// computes at most k of them. For classic SPP (free computes) it is 0.
// It relies on st.computed, which is maintained in every mode.
func (s *solver) heuristic(st state) int64 {
	if s.in.ComputeCost == 0 {
		return 0
	}
	uncomputed := s.n - popcount(st.computed)
	if uncomputed <= 0 {
		return 0
	}
	k := s.in.K
	return int64((uncomputed+k-1)/k) * int64(s.in.ComputeCost)
}

func (s *solver) isGoal(st state) bool {
	pebbled := st.blue
	for _, r := range st.red {
		pebbled |= r
	}
	return s.sinkMask&^pebbled == 0
}

func (s *solver) relax(st state, cost int64, mv pebble.Move) {
	if s.parent == nil {
		// Shade symmetry collapse is only sound when no move sequence
		// must be reconstructed (relabeling shades would desynchronize
		// the recorded moves' processor indices).
		st = canonical(st)
	}
	k := st.key()
	if d, ok := s.dist[k]; ok && d <= cost {
		return
	}
	s.dist[k] = cost
	if s.parent != nil {
		s.parent[k] = edge{from: s.cur.key(), move: mv}
	}
	heap.Push(&s.q, &pqItem{st: st, cost: cost, f: cost + s.heuristic(st)})
}

// canonical sorts the red sets so permuting processor shades collapses to
// one state (all processors have identical r).
func canonical(st state) state {
	red := make([]uint64, len(st.red))
	copy(red, st.red)
	// insertion sort; k is tiny
	for i := 1; i < len(red); i++ {
		for j := i; j > 0 && red[j] < red[j-1]; j-- {
			red[j], red[j-1] = red[j-1], red[j]
		}
	}
	return state{red: red, blue: st.blue, computed: st.computed}
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// expand generates every successor state. Per-processor option lists are
// combined into parallel moves; since one parallel move costs the same as
// a single action of the same kind, only maximal combinations need not be
// enumerated — we enumerate all non-empty subsets of per-processor
// choices implicitly through a product construction, but prune by noting
// that adding an extra legal action to a move never hurts is NOT valid in
// general (it occupies memory), so the full product is explored.
func (s *solver) expand(st state, cost int64) {
	k := s.in.K
	gCost := int64(s.in.G)
	cCost := int64(s.in.ComputeCost)

	// Per-processor candidate actions for each move kind. -1 encodes
	// "idle" (processor not in the shaded selection).
	computeOpts := make([][]int, k)
	readOpts := make([][]int, k)
	writeOpts := make([][]int, k)
	for p := 0; p < k; p++ {
		for v := 0; v < s.n; v++ {
			bit := uint64(1) << uint(v)
			// Compute v on p: all preds red on p, v not red on p, memory ok.
			if s.predMask[v]&^st.red[p] == 0 && st.red[p]&bit == 0 {
				if !s.in.OneShot || st.computed&bit == 0 {
					computeOpts[p] = append(computeOpts[p], v)
				}
			}
			// Read v into p: v blue, not already red on p.
			if st.blue&bit != 0 && st.red[p]&bit == 0 {
				readOpts[p] = append(readOpts[p], v)
			}
			// Write v from p: v red on p, not already blue.
			if st.red[p]&bit != 0 && st.blue&bit == 0 {
				writeOpts[p] = append(writeOpts[p], v)
			}
		}
	}

	// Delete edges (cost 0): remove one red pebble. Blue deletions are
	// never beneficial (slow memory is unlimited), so they are skipped.
	for p := 0; p < k; p++ {
		reds := st.red[p]
		for reds != 0 {
			v := trailingZeros(reds)
			reds &= reds - 1
			ns := cloneState(st)
			ns.red[p] &^= 1 << uint(v)
			s.relax(ns, cost, pebble.Delete(pebble.At(p, dag.NodeID(v))))
		}
	}

	// Parallel compute moves.
	s.product(computeOpts, func(choice []int) {
		ns := cloneState(st)
		ok := true
		var seen uint64
		for p, v := range choice {
			if v < 0 {
				continue
			}
			bit := uint64(1) << uint(v)
			if s.in.OneShot && seen&bit != 0 {
				ok = false // two processors computing v at once would double-apply R3
			}
			seen |= bit
			ns.red[p] |= bit
			ns.computed |= bit
			if popcount(ns.red[p]) > s.in.R {
				ok = false
			}
		}
		if ok {
			s.relax(ns, cost+cCost, moveOf(pebble.OpCompute, choice))
		}
	})
	// Parallel read moves.
	s.product(readOpts, func(choice []int) {
		ns := cloneState(st)
		ok := true
		for p, v := range choice {
			if v < 0 {
				continue
			}
			ns.red[p] |= 1 << uint(v)
			if popcount(ns.red[p]) > s.in.R {
				ok = false
			}
		}
		if ok {
			s.relax(ns, cost+gCost, moveOf(pebble.OpRead, choice))
		}
	})
	// Parallel write moves.
	s.product(writeOpts, func(choice []int) {
		ns := cloneState(st)
		for p, v := range choice {
			if v < 0 {
				continue
			}
			_ = p
			ns.blue |= 1 << uint(v)
		}
		s.relax(ns, cost+gCost, moveOf(pebble.OpWrite, choice))
	})
}

// moveOf converts a per-processor choice vector (-1 = idle) into a Move.
func moveOf(kind pebble.OpKind, choice []int) pebble.Move {
	m := pebble.Move{Kind: kind}
	for p, v := range choice {
		if v >= 0 {
			m.Actions = append(m.Actions, pebble.At(p, dag.NodeID(v)))
		}
	}
	return m
}

func cloneState(st state) state {
	red := make([]uint64, len(st.red))
	copy(red, st.red)
	return state{red: red, blue: st.blue, computed: st.computed}
}

// product enumerates every non-empty combination of per-processor
// choices (-1 = idle) and invokes fn with each. One-shot duplicates of
// the same node on different processors in a single compute move are
// allowed by the rules and harmless here.
func (s *solver) product(opts [][]int, fn func(choice []int)) {
	k := len(opts)
	choice := make([]int, k)
	var rec func(p int, any bool)
	rec = func(p int, any bool) {
		if p == k {
			if any {
				fn(choice)
			}
			return
		}
		choice[p] = -1
		rec(p+1, any)
		for _, v := range opts[p] {
			choice[p] = v
			rec(p+1, true)
		}
		choice[p] = -1
	}
	rec(0, false)
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
