package opt

// Solver arena recycling and the multi-instance batch API.
//
// A search's dominant allocations are per-shard arenas: the state table,
// the distance/mark/parent arrays, the bucket queue's buckets, the
// dominance index and the expansion scratch. All of them reset in O(1)
// or O(capacity-touched) without releasing memory, so solvers are
// recycled through a package-level sync.Pool: every Exact entry point
// (and therefore cmd/mppexp -j, the exp helpers and the cmd/mppbench
// sweeps) reuses arenas from earlier searches automatically, and
// SolveBatch makes the pattern explicit for callers solving many
// instances back to back.
//
// Oracle runs (a caller-supplied table constructor, see exact.go) stay
// outside the pool: a map-backed hashtab.Ref is a test double, not a
// reusable arena, and pooling it would let one leak into a production
// search.
//
// bind is the single preparation path for fresh and recycled solvers
// alike — every field is either overwritten outright or explicitly
// reset, so a recycled solver is indistinguishable from a fresh one
// (batch_test.go locks this with byte-identical pooled-vs-fresh runs).

import (
	"context"
	"sync"

	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// solverPool recycles per-shard solver arenas across searches.
var solverPool sync.Pool

// maxPooledArenaBytes caps the retained arena capacity of a pooled
// solver. Arenas only ever grow (Reset keeps capacity — that is the
// point of the pool), so without a cap one huge budget-bounded search
// would pin its worst-case state table, queue and parent arrays on some
// pooled solver for the rest of the process, re-offered to every later
// solve however small. A solver past the cap is dropped on release and
// the next acquire starts fresh. 8 MiB keeps every benchmark-sized
// search pooled while letting million-state searches be reclaimed.
// A variable, not a const, so pool_test.go can lower it.
var maxPooledArenaBytes = int64(8 << 20)

// Per-element sizes for arenaBytes, matching the arena element types.
const (
	sliceHdrBytes   = 24 // slice header retained per held buffer
	bqEntryBytes    = 16 // bqEntry: int32 idx + int64 g, padded
	parentEdgeBytes = 40 // parentEdge: stateRef + Move header
)

// arenaBytes estimates the capacity this solver's recycled arenas pin:
// the state table, the per-state arrays, the bucket queue and the
// dominance index. Scratch buffers and cross-shard batches are O(n·k)
// and excluded. An estimate is all the retention cap needs.
func (s *solver) arenaBytes() int64 {
	var b int64
	if t, ok := s.tab.(*hashtab.Table); ok {
		b += t.ArenaBytes()
	}
	b += int64(cap(s.dist))*8 + sliceHdrBytes
	b += int64(cap(s.parent))*parentEdgeBytes + sliceHdrBytes
	b += int64(cap(s.expandedMark)) + sliceHdrBytes
	b += int64(cap(s.settledMark)) + sliceHdrBytes
	b += int64(cap(s.worklist))*bqEntryBytes + sliceHdrBytes
	b += int64(cap(s.waveExp))*4 + sliceHdrBytes
	for _, bucket := range s.bq.buckets {
		b += int64(cap(bucket))*bqEntryBytes + sliceHdrBytes
	}
	b += int64(cap(s.bq.buckets)) * sliceHdrBytes
	if s.dom != nil {
		b += int64(cap(s.dom.slots))*4 + int64(cap(s.dom.keys))*8
		b += int64(cap(s.dom.next))*4 + int64(cap(s.dom.state))*4
	}
	return b
}

// acquireSolver returns a recycled solver when pooling is on, a fresh
// one otherwise.
func acquireSolver(pooled bool) *solver {
	if pooled {
		if v := solverPool.Get(); v != nil {
			return v.(*solver)
		}
	}
	return &solver{}
}

// bind prepares this solver (fresh or recycled) as shard `shard` of
// engine e: instance-derived lookups, scratch buffers, and every arena
// reset to empty while keeping its capacity. The state table is reused
// only when it is the open-addressing kind with the right key width;
// otherwise the constructor runs.
func (s *solver) bind(e *engine, shard int32, newTab func() hashtab.Index, pooled bool) {
	in, cfg := e.in, e.cfg
	s.in, s.ctx, s.cfg = in, e.ctx, cfg
	s.n = in.Graph.N()
	s.witness = cfg.Witness
	s.useDom = cfg.Dominance && !cfg.Witness
	s.async = cfg.Mode == ModeAsync
	s.eng, s.shard = e, shard
	s.pruned, s.expanded, s.reopened, s.pops = 0, 0, 0, 0
	s.markers = 0
	s.curIdx = 0
	s.initDerived()
	s.initScratch()

	if t, ok := s.tab.(*hashtab.Table); pooled && ok && t.WordsPerKey() == stateWords(in.K) {
		t.Reset()
	} else {
		s.tab = newTab()
	}
	s.dist = s.dist[:0]
	s.expandedMark = s.expandedMark[:0]
	s.settledMark = s.settledMark[:0]
	s.parent = s.parent[:0]
	s.bq.reset()
	s.worklist = s.worklist[:0]
	s.waveExp = s.waveExp[:0]
	if s.useDom {
		if s.dom == nil {
			s.dom = newDomIndex()
		} else {
			s.dom.reset()
		}
	}
	if e.nShards > 1 {
		if len(s.out) == e.nShards {
			for i := range s.out {
				s.out[i] = nil
				s.incoming[i] = s.incoming[i][:0]
			}
		} else {
			s.out = make([]*batch, e.nShards)
			s.incoming = make([][]*batch, e.nShards)
		}
	} else {
		s.out, s.incoming = nil, nil
	}
}

// release returns the engine's solvers to the pool (no-op for oracle
// engines). Only called after run() fully assembled its Result, so no
// live memory escapes into the pool. References that would pin the
// instance or context alive are dropped; the arenas keep their capacity
// — that is the point — except past maxPooledArenaBytes, where the
// whole solver is dropped so one oversized search cannot pin its
// worst-case arenas on every later solve (pool_test.go regression).
func (e *engine) release() {
	if !e.pooled {
		return
	}
	for i, s := range e.shards {
		e.shards[i] = nil
		s.in, s.ctx = nil, nil
		s.eng = nil
		s.topo = nil
		if s.arenaBytes() > maxPooledArenaBytes {
			continue
		}
		solverPool.Put(s)
	}
}

// BatchResult pairs one instance's Result with the error of its solve,
// in input order. Consult Err (or Result.Status) before using Cost:
// a partial entry carries the anytime bracket, not a proven optimum.
type BatchResult struct {
	Result *Result
	Err    error
}

// SolveBatch solves many instances under one Config, reusing the same
// pooled solver arenas (state tables, bucket queues, dominance indexes,
// scratch) from one instance to the next instead of reallocating them.
// Results come back in input order, one per instance, each with the
// error its solve produced — a partial stop on one instance does not
// abort the others.
//
// Cancellation: when ctx is canceled mid-batch, the remaining instances
// return immediately with canceled partial results; the batch still
// yields len(ins) entries.
func SolveBatch(ctx context.Context, ins []*pebble.Instance, cfg Config) []BatchResult {
	out := make([]BatchResult, len(ins))
	for i, in := range ins {
		out[i].Result, out[i].Err = ExactWith(ctx, in, cfg)
	}
	return out
}
