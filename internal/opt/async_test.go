package opt

// Tests of the asynchronous fast mode (Config.Mode == ModeAsync). The
// contract under test is narrower than the deterministic engine's on
// purpose: Cost and Status must match the deterministic run exactly (at
// every worker count, under -race), witness strategies must replay to
// the optimum, and partial stops must return a sound anytime bracket —
// while States/Pruned/ReExpanded and traces are allowed to vary.
// scripts/verify.sh runs this file under -race as part of the full
// internal/opt race suite.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pebble"
)

// TestAsyncMatchesDeterministicZoo is the headline equivalence property:
// for every zoo case and every worker count, ModeAsync completes with
// exactly the deterministic optimum (Cost, Incumbent and LowerBound all
// equal, Status complete). Run under -race this also exercises the
// quiescence-termination protocol end to end.
func TestAsyncMatchesDeterministicZoo(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		want, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: deterministic: %v", c.name, err)
		}
		for _, w := range workerSweep {
			cfg := DefaultConfig(budget)
			cfg.Workers = w
			cfg.Mode = ModeAsync
			got, err := ExactWith(ctx, in, cfg)
			if err != nil {
				t.Fatalf("%s: async workers=%d: %v", c.name, w, err)
			}
			if got.Status != StatusComplete || got.Cost != want.Cost ||
				got.Incumbent != want.Cost || got.LowerBound != want.Cost {
				t.Errorf("%s: async workers=%d (status %v cost %d inc %d lb %d) ≠ deterministic optimum %d",
					c.name, w, got.Status, got.Cost, got.Incumbent, got.LowerBound, want.Cost)
			}
		}
	}
}

// TestAsyncWitnessReplays checks the witness contract in async mode: the
// reconstructed strategy must be valid and replay to the (deterministic)
// optimal cost at every worker count — the move sequence itself is
// timing-dependent and not asserted.
func TestAsyncWitnessReplays(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		want, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: deterministic: %v", c.name, err)
		}
		for _, w := range workerSweep {
			cfg := DefaultConfig(budget)
			cfg.Witness = true
			cfg.Workers = w
			cfg.Mode = ModeAsync
			res, err := ExactWith(ctx, in, cfg)
			if err != nil {
				t.Fatalf("%s: async witness workers=%d: %v", c.name, w, err)
			}
			if res.Strategy == nil {
				t.Fatalf("%s: async witness workers=%d: no strategy", c.name, w)
			}
			rep, err := pebble.Replay(in, res.Strategy)
			if err != nil {
				t.Fatalf("%s: async witness workers=%d: replay: %v", c.name, w, err)
			}
			if rep.Cost != want.Cost || res.Cost != want.Cost {
				t.Errorf("%s: async witness workers=%d: replay %d, result %d, optimum %d",
					c.name, w, rep.Cost, res.Cost, want.Cost)
			}
		}
	}
}

// TestAsyncPartialBudgetBracket sweeps tight budgets at every worker
// count: an async run under budget pressure must either complete at the
// true optimum (speculation can finish in fewer charged expansions than
// the wave engine) or stop with StatusBudget and a sound bracket —
// 0 ≤ LowerBound ≤ OPT, and any incumbent ≥ OPT. The bracket itself is
// timing-dependent; only its soundness is asserted.
func TestAsyncPartialBudgetBracket(t *testing.T) {
	ctx := context.Background()
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		full, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: full solve: %v", c.name, err)
		}
		for _, max := range []int{1, 2, 10, 100} {
			for _, w := range workerSweep {
				cfg := DefaultConfig(max)
				cfg.Workers = w
				cfg.Mode = ModeAsync
				res, err := ExactWith(ctx, in, cfg)
				if err == nil {
					if res.Status != StatusComplete || res.Cost != full.Cost {
						t.Errorf("%s: budget=%d workers=%d: clean return but (status %v, cost %d), want optimum %d",
							c.name, max, w, res.Status, res.Cost, full.Cost)
					}
					continue
				}
				if !errors.Is(err, ErrBudget) {
					t.Fatalf("%s: budget=%d workers=%d: want ErrBudget, got %v", c.name, max, w, err)
				}
				if res.Status != StatusBudget {
					t.Errorf("%s: budget=%d workers=%d: status %v, want budget", c.name, max, w, res.Status)
				}
				if res.LowerBound < 0 || res.LowerBound > full.Cost {
					t.Errorf("%s: budget=%d workers=%d: lower bound %d outside [0, OPT=%d]",
						c.name, max, w, res.LowerBound, full.Cost)
				}
				if res.Incumbent >= 0 && res.Incumbent < full.Cost {
					t.Errorf("%s: budget=%d workers=%d: incumbent %d below optimum %d",
						c.name, max, w, res.Incumbent, full.Cost)
				}
				if res.Incumbent >= 0 && res.LowerBound > res.Incumbent {
					t.Errorf("%s: budget=%d workers=%d: inverted bracket [%d, %d]",
						c.name, max, w, res.LowerBound, res.Incumbent)
				}
			}
		}
	}
}

// TestAsyncCancel covers both deadline-style stops: a context canceled
// before the search starts must come back canceled with the sentinel
// incumbent at every worker count, and a cancellation racing a running
// multi-worker search must still land on a sound result — complete at
// the optimum or canceled with a sound bracket, nothing else.
func TestAsyncCancel(t *testing.T) {
	in := pebble.MustInstance(zooCases()[4].g, zooCases()[4].p) // grid2x3
	full, err := Exact(in, budget)
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range workerSweep {
		cfg := DefaultConfig(budget)
		cfg.Workers = w
		cfg.Mode = ModeAsync
		res, err := ExactWith(ctx, in, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", w, err)
		}
		if res.Status != StatusCanceled || res.Incumbent != -1 || res.LowerBound < 0 {
			t.Errorf("workers=%d: canceled-at-entry result (status %v inc %d lb %d) unsound",
				w, res.Status, res.Incumbent, res.LowerBound)
		}
	}
	for rep := 0; rep < 5; rep++ {
		rctx, rcancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(rep) * 100 * time.Microsecond)
			rcancel()
		}()
		cfg := DefaultConfig(budget)
		cfg.Workers = 4
		cfg.Mode = ModeAsync
		res, err := ExactWith(rctx, in, cfg)
		rcancel()
		switch {
		case err == nil:
			if res.Status != StatusComplete || res.Cost != full.Cost {
				t.Errorf("rep %d: raced cancel completed with (status %v, cost %d), want optimum %d",
					rep, res.Status, res.Cost, full.Cost)
			}
		case errors.Is(err, context.Canceled):
			if res.LowerBound < 0 || res.LowerBound > full.Cost {
				t.Errorf("rep %d: raced cancel lower bound %d outside [0, OPT=%d]", rep, res.LowerBound, full.Cost)
			}
			if res.Incumbent >= 0 && res.Incumbent < full.Cost {
				t.Errorf("rep %d: raced cancel incumbent %d below optimum %d", rep, res.Incumbent, full.Cost)
			}
		default:
			t.Fatalf("rep %d: unexpected error %v", rep, err)
		}
	}
}

// TestAsyncStatsContract pins the statistics semantics of the two
// modes: deterministic runs never re-expand (the layer barriers make it
// impossible), and the async single-worker run — sequential A* with
// incumbent pruning and per-pop dominance settling — must not expand
// more states than the wave engine, whose waves pay a known expansion
// inflation for determinism (DESIGN.md §6 quantifies it on this very
// instance).
func TestAsyncStatsContract(t *testing.T) {
	ctx := context.Background()
	in := pebble.MustInstance(zooCases()[4].g, zooCases()[4].p) // grid2x3
	det, err := Exact(in, budget)
	if err != nil {
		t.Fatalf("deterministic: %v", err)
	}
	if det.ReExpanded != 0 {
		t.Errorf("deterministic run reports %d re-expansions, want 0", det.ReExpanded)
	}
	cfg := DefaultConfig(budget)
	cfg.Workers = 1
	cfg.Mode = ModeAsync
	as, err := ExactWith(ctx, in, cfg)
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if as.ReExpanded != 0 {
		t.Errorf("async workers=1 reports %d re-expansions, want 0 (single worker never speculates wrongly here)", as.ReExpanded)
	}
	if as.States > det.States {
		t.Errorf("async workers=1 expanded %d states, more than the wave engine's %d — the fast mode lost its reason to exist",
			as.States, det.States)
	}
}
