package opt

// Tests of SolveBatch and the solver arena pool behind it. The pool's
// correctness bar is byte-identity: a pool-recycled solver must be
// indistinguishable from a fresh one, which the map-backed oracle (never
// pooled, see batch.go) provides the clean baseline for.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pebble"
)

// TestSolveBatchMatchesOracleZoo runs the whole zoo (mixed k, so the
// packed key width changes between consecutive instances — the table-
// reuse guard's hard case) through SolveBatch three times over, at one
// and at four workers, and requires every Result to be byte-identical to
// the unpooled oracle run. The repetition is the point: from the second
// batch on, every solver is a recycled one.
func TestSolveBatchMatchesOracleZoo(t *testing.T) {
	ctx := context.Background()
	var ins []*pebble.Instance
	var names []string
	for _, c := range zooCases() {
		ins = append(ins, pebble.MustInstance(c.g, c.p))
		names = append(names, c.name)
	}
	for _, w := range []int{1, 4} {
		cfg := DefaultConfig(budget)
		cfg.Workers = w
		for round := 0; round < 3; round++ {
			got := SolveBatch(ctx, ins, cfg)
			if len(got) != len(ins) {
				t.Fatalf("workers=%d round=%d: %d results for %d instances", w, round, len(got), len(ins))
			}
			for i, br := range got {
				if br.Err != nil {
					t.Fatalf("%s: workers=%d round=%d: %v", names[i], w, round, br.Err)
				}
				want, err := ExactOracleWith(ins[i], cfg)
				if err != nil {
					t.Fatalf("%s: oracle: %v", names[i], err)
				}
				g := br.Result
				if g.Cost != want.Cost || g.States != want.States || g.Pruned != want.Pruned ||
					g.Incumbent != want.Incumbent || g.LowerBound != want.LowerBound ||
					g.Status != want.Status || g.ReExpanded != want.ReExpanded {
					t.Errorf("%s: workers=%d round=%d: pooled (cost %d states %d pruned %d) ≠ oracle (cost %d states %d pruned %d)",
						names[i], w, round, g.Cost, g.States, g.Pruned, want.Cost, want.States, want.Pruned)
				}
			}
		}
	}
}

// TestSolveBatchWitnessReuse recycles witness-mode solvers (the parent
// arrays join the arena reuse) and checks each reconstructed strategy
// still replays to its own instance's optimum.
func TestSolveBatchWitnessReuse(t *testing.T) {
	ctx := context.Background()
	var ins []*pebble.Instance
	for _, c := range zooCases() {
		ins = append(ins, pebble.MustInstance(c.g, c.p))
	}
	cfg := DefaultConfig(budget)
	cfg.Witness = true
	cfg.Workers = 1
	for round := 0; round < 2; round++ {
		for i, br := range SolveBatch(ctx, ins, cfg) {
			if br.Err != nil {
				t.Fatalf("round=%d instance=%d: %v", round, i, br.Err)
			}
			if br.Result.Strategy == nil {
				t.Fatalf("round=%d instance=%d: no strategy", round, i)
			}
			rep, err := pebble.Replay(ins[i], br.Result.Strategy)
			if err != nil {
				t.Fatalf("round=%d instance=%d: replay: %v", round, i, err)
			}
			if rep.Cost != br.Result.Cost {
				t.Errorf("round=%d instance=%d: strategy replays to %d, result says %d",
					round, i, rep.Cost, br.Result.Cost)
			}
		}
	}
}

// TestSolveBatchAsync runs the batch in async mode: every entry must
// land on the deterministic optimum.
func TestSolveBatchAsync(t *testing.T) {
	ctx := context.Background()
	var ins []*pebble.Instance
	var want []int64
	for _, c := range zooCases() {
		in := pebble.MustInstance(c.g, c.p)
		res, err := Exact(in, budget)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		ins = append(ins, in)
		want = append(want, res.Cost)
	}
	cfg := DefaultConfig(budget)
	cfg.Workers = 4
	cfg.Mode = ModeAsync
	for i, br := range SolveBatch(ctx, ins, cfg) {
		if br.Err != nil {
			t.Fatalf("instance %d: %v", i, br.Err)
		}
		if br.Result.Cost != want[i] {
			t.Errorf("instance %d: async batch cost %d, want %d", i, br.Result.Cost, want[i])
		}
	}
}

// TestSolveBatchCanceled: a canceled context must not shrink the batch —
// every instance reports its own canceled partial result.
func TestSolveBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ins []*pebble.Instance
	for _, c := range zooCases()[:3] {
		ins = append(ins, pebble.MustInstance(c.g, c.p))
	}
	got := SolveBatch(ctx, ins, DefaultConfig(budget))
	if len(got) != len(ins) {
		t.Fatalf("%d results for %d instances", len(got), len(ins))
	}
	for i, br := range got {
		if !errors.Is(br.Err, context.Canceled) {
			t.Errorf("instance %d: want context.Canceled, got %v", i, br.Err)
		}
		if br.Result == nil || br.Result.Status != StatusCanceled {
			t.Errorf("instance %d: missing canceled partial result", i)
		}
	}
}

// TestSolveBatchEmpty: no instances, no results, no panic.
func TestSolveBatchEmpty(t *testing.T) {
	if got := SolveBatch(context.Background(), nil, DefaultConfig(budget)); len(got) != 0 {
		t.Fatalf("want empty result set, got %d entries", len(got))
	}
}
