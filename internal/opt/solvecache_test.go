package opt

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/gen"
	"repro/internal/pebble"
)

// TestSolveCachedByteIdenticalZoo is the acceptance property: over the
// whole DAG zoo, plain and witness configs, a cache hit returns a Result
// byte-identical (reflect.DeepEqual) to the fresh deterministic solve it
// memoized — States, Pruned, LowerBound and Strategy included. Run under
// -race via scripts/verify.sh's internal/opt pass.
func TestSolveCachedByteIdenticalZoo(t *testing.T) {
	ctx := context.Background()
	for _, tc := range zooCases() {
		for _, mode := range []struct {
			name string
			cfg  Config
		}{
			{"plain", DefaultConfig(budget)},
			{"witness", Config{MaxStates: budget, Heuristic: HeuristicMax, Witness: true}},
		} {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				in := pebble.MustInstance(tc.g, tc.p)
				fresh, err := ExactWith(ctx, in, mode.cfg)
				if err != nil {
					t.Fatalf("fresh solve: %v", err)
				}
				sc := NewSolveCache(cache.Options{})
				if _, err := SolveCached(ctx, in, mode.cfg, sc); err != nil {
					t.Fatalf("priming solve: %v", err)
				}
				hit, err := SolveCached(ctx, in, mode.cfg, sc)
				if err != nil {
					t.Fatalf("cached solve: %v", err)
				}
				if !reflect.DeepEqual(hit, fresh) {
					t.Errorf("cache hit differs from fresh solve:\n hit:   %+v\n fresh: %+v", hit, fresh)
				}
				if st := sc.Stats(); st.Hits != 1 || st.Misses != 1 {
					t.Errorf("stats = %+v; want exactly 1 hit, 1 miss", st)
				}
			})
		}
	}
}

// partialCfg is a configuration under which grid3x3 at k=2 cannot finish:
// the weakest heuristic, no dominance, so the given budget genuinely
// stops the search with a StatusBudget bracket.
func partialCfg(maxStates int) Config {
	return Config{MaxStates: maxStates, Heuristic: HeuristicFloor, Workers: 1}
}

func grid3x3k2(t *testing.T) *pebble.Instance {
	t.Helper()
	return pebble.MustInstance(gen.Grid2D(3, 3), pebble.MPP(2, 4, 2))
}

// TestSolveCachedPartialEqualBudget: an equal-budget repeat of a
// budget-stopped solve hits the partial store and reproduces the fresh
// run byte-for-byte — Result AND error text (deterministic partials are
// pure functions of instance, config and budget).
func TestSolveCachedPartialEqualBudget(t *testing.T) {
	ctx := context.Background()
	in := grid3x3k2(t)
	cfg := partialCfg(1000)

	fresh, ferr := ExactWith(ctx, in, cfg)
	if !errors.Is(ferr, ErrBudget) || fresh.Status != StatusBudget {
		t.Fatalf("want a budget-stopped partial, got status %v err %v", fresh.Status, ferr)
	}

	sc := NewSolveCache(cache.Options{})
	if _, err := SolveCached(ctx, in, cfg, sc); !errors.Is(err, ErrBudget) {
		t.Fatalf("priming solve: %v", err)
	}
	hit, herr := SolveCached(ctx, in, cfg, sc)
	if !errors.Is(herr, ErrBudget) {
		t.Fatalf("cached partial: %v", herr)
	}
	if !reflect.DeepEqual(hit, fresh) {
		t.Errorf("partial hit differs from fresh partial:\n hit:   %+v\n fresh: %+v", hit, fresh)
	}
	if herr.Error() != ferr.Error() {
		t.Errorf("partial hit error %q, fresh error %q", herr, ferr)
	}
	if st := sc.Stats(); st.PartialHits != 1 {
		t.Errorf("stats = %+v; want 1 partial hit", st)
	}
}

// TestSolveCachedBudgetLaundering is the guard regression: a bracket
// cached under MaxStates=1000 must never be served to a MaxStates=8
// caller (whose own search would have stopped far earlier and learned
// less) — the tight request re-solves fresh under its own budget. The
// looser direction (budget 5000) is legitimately served the stored
// bracket: it is at most what that caller's own solve would have proven.
func TestSolveCachedBudgetLaundering(t *testing.T) {
	ctx := context.Background()
	in := grid3x3k2(t)

	sc := NewSolveCache(cache.Options{})
	primed, err := SolveCached(ctx, in, partialCfg(1000), sc)
	if !errors.Is(err, ErrBudget) || primed.Status != StatusBudget {
		t.Fatalf("want a budget-1000 partial, got status %v err %v", primed.Status, err)
	}

	// Looser caller first (the tight request below overwrites the single
	// partial slot with its own smaller bracket): served the stored one.
	loose, lerr := SolveCached(ctx, in, partialCfg(5000), sc)
	if !errors.Is(lerr, ErrBudget) {
		t.Fatalf("loose partial: %v", lerr)
	}
	if loose.States != primed.States {
		t.Errorf("loose caller got States=%d, want the stored bracket's %d", loose.States, primed.States)
	}
	if st := sc.Stats(); st.PartialHits != 1 {
		t.Errorf("after loose call: stats = %+v; want 1 partial hit", st)
	}

	// Tight caller: rejected by the guard, then byte-identical to its own
	// fresh budget-8 solve.
	freshTight, fterr := ExactWith(ctx, in, partialCfg(8))
	if !errors.Is(fterr, ErrBudget) {
		t.Fatalf("fresh tight solve: %v", fterr)
	}
	tight, terr := SolveCached(ctx, in, partialCfg(8), sc)
	if !errors.Is(terr, ErrBudget) {
		t.Fatalf("tight solve through cache: %v", terr)
	}
	if !reflect.DeepEqual(tight, freshTight) {
		t.Errorf("tight caller's result differs from its own fresh solve:\n got:   %+v\n fresh: %+v", tight, freshTight)
	}
	if tight.States >= primed.States {
		t.Errorf("tight caller expanded %d states, not fewer than the wide bracket's %d — laundering?", tight.States, primed.States)
	}
	if st := sc.Stats(); st.BudgetRejects != 1 {
		t.Errorf("stats = %+v; want exactly 1 budget reject", st)
	}
}

// TestSolveCachedCloneIsolation: callers own the Result a solve returns
// and may mutate it (exp.raiseLowerBound does); a mutation must never
// reach later hits.
func TestSolveCachedCloneIsolation(t *testing.T) {
	ctx := context.Background()
	in := pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3))
	cfg := Config{MaxStates: budget, Heuristic: HeuristicMax, Witness: true}

	sc := NewSolveCache(cache.Options{})
	first, err := SolveCached(ctx, in, cfg, sc)
	if err != nil {
		t.Fatalf("priming solve: %v", err)
	}
	want := cloneResult(first)

	first.LowerBound = -999
	if first.Strategy == nil || len(first.Strategy.Moves) == 0 {
		t.Fatal("witness solve returned no strategy")
	}
	first.Strategy.Moves[0] = pebble.Move{}

	second, err := SolveCached(ctx, in, cfg, sc)
	if err != nil {
		t.Fatalf("cached solve: %v", err)
	}
	if !reflect.DeepEqual(second, want) {
		t.Errorf("caller mutation leaked into the cache:\n got:  %+v\n want: %+v", second, want)
	}
}

// TestSolveCachedFileStore: results persist across SolveCache instances
// through the gob-coded file store, witness strategies included.
func TestSolveCachedFileStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	in := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
	cfg := Config{MaxStates: budget, Heuristic: HeuristicMax, Witness: true}

	fresh, err := ExactWith(ctx, in, cfg)
	if err != nil {
		t.Fatalf("fresh solve: %v", err)
	}
	sc1 := NewSolveCache(cache.Options{Dir: dir})
	if _, err := SolveCached(ctx, in, cfg, sc1); err != nil {
		t.Fatalf("priming solve: %v", err)
	}

	sc2 := NewSolveCache(cache.Options{Dir: dir})
	hit, err := SolveCached(ctx, in, cfg, sc2)
	if err != nil {
		t.Fatalf("disk-backed solve: %v", err)
	}
	if !reflect.DeepEqual(hit, fresh) {
		t.Errorf("disk hit differs from fresh solve:\n hit:   %+v\n fresh: %+v", hit, fresh)
	}
	st := sc2.Stats()
	if st.DiskHits != 1 || st.DiskErrors != 0 {
		t.Errorf("stats = %+v; want 1 disk hit, 0 disk errors", st)
	}
}

// TestSolveCachedAsyncPolicy: async runs never populate the cache (their
// statistics are timing-dependent) but may read deterministic hits.
func TestSolveCachedAsyncPolicy(t *testing.T) {
	ctx := context.Background()
	in := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
	det := DefaultConfig(budget)
	async := det
	async.Mode = ModeAsync

	sc := NewSolveCache(cache.Options{})
	if _, err := SolveCached(ctx, in, async, sc); err != nil {
		t.Fatalf("async solve: %v", err)
	}
	if st := sc.Stats(); st.Entries != 0 {
		t.Fatalf("async run populated the cache: %+v", st)
	}

	fresh, err := SolveCached(ctx, in, det, sc)
	if err != nil {
		t.Fatalf("deterministic solve: %v", err)
	}
	got, err := SolveCached(ctx, in, async, sc)
	if err != nil {
		t.Fatalf("async read: %v", err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Errorf("async reader got a different result than the deterministic entry")
	}
	if st := sc.Stats(); st.Hits != 1 {
		t.Errorf("stats = %+v; want the async read to count as 1 hit", st)
	}
}

// TestSolveCachedCanceledNotCached: a wall-clock stop is not a function
// of the instance, so canceled results never enter either store.
func TestSolveCachedCanceledNotCached(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := NewSolveCache(cache.Options{})
	res, err := SolveCached(ctx, grid3x3k2(t), partialCfg(1_000_000), sc)
	if err == nil {
		t.Fatalf("solve under a canceled context succeeded: %+v", res)
	}
	if res != nil && res.Status != StatusCanceled {
		t.Fatalf("status = %v, want canceled", res.Status)
	}
	if st := sc.Stats(); st.Entries != 0 {
		t.Errorf("canceled result was cached: %+v", st)
	}
}

// TestSolveCachedNilCache: a nil SolveCache degrades to plain ExactWith.
func TestSolveCachedNilCache(t *testing.T) {
	ctx := context.Background()
	in := pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3))
	fresh, err := ExactWith(ctx, in, DefaultConfig(budget))
	if err != nil {
		t.Fatalf("fresh solve: %v", err)
	}
	got, err := SolveCached(ctx, in, DefaultConfig(budget), nil)
	if err != nil {
		t.Fatalf("nil-cache solve: %v", err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Errorf("nil-cache SolveCached differs from ExactWith")
	}
}

// TestSolveBatchCached: duplicate instances inside one batch hit instead
// of re-searching, and results stay in input order.
func TestSolveBatchCached(t *testing.T) {
	ctx := context.Background()
	a := pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3))
	b := pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2))
	sc := NewSolveCache(cache.Options{})
	out := SolveBatchCached(ctx, []*pebble.Instance{a, b, a}, DefaultConfig(budget), sc)
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("batch[%d]: %v", i, br.Err)
		}
	}
	if !reflect.DeepEqual(out[0].Result, out[2].Result) {
		t.Errorf("repeat instance solved differently within one batch")
	}
	if st := sc.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v; want 1 hit, 2 misses", st)
	}
}

// TestSolveCachedConcurrent hammers one shared cache from many
// goroutines (run under -race): every call must return the correct
// optimum regardless of who primed the entry.
func TestSolveCachedConcurrent(t *testing.T) {
	ctx := context.Background()
	ins := []*pebble.Instance{
		pebble.MustInstance(gen.Chain(5), pebble.MPP(1, 2, 3)),
		pebble.MustInstance(gen.Grid2D(2, 3), pebble.MPP(2, 3, 2)),
		pebble.MustInstance(gen.Pyramid(3), pebble.MPP(1, 3, 2)),
	}
	want := make([]int64, len(ins))
	for i, in := range ins {
		res, err := ExactWith(ctx, in, DefaultConfig(budget))
		if err != nil {
			t.Fatalf("fresh solve %d: %v", i, err)
		}
		want[i] = res.Cost
	}
	sc := NewSolveCache(cache.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, in := range ins {
					res, err := SolveCached(ctx, in, DefaultConfig(budget), sc)
					if err != nil {
						t.Errorf("concurrent solve %d: %v", i, err)
						return
					}
					if res.Cost != want[i] {
						t.Errorf("concurrent solve %d: cost %d, want %d", i, res.Cost, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
