package opt

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudget is wrapped in errors returned when a search exceeds its state
// budget. Match with errors.Is, never by string.
var ErrBudget = errors.New("opt: state budget exhausted")

// Status describes how a search ended. Every solver is anytime: a search
// that stops early still returns its result struct (incumbent, bounds,
// explored-state count) alongside the error carrying the stop reason.
type Status uint8

const (
	// StatusComplete: the search ran to a proven optimum / definite verdict.
	StatusComplete Status = iota
	// StatusBudget: the state budget was exhausted first.
	StatusBudget
	// StatusCanceled: the context was canceled or its deadline expired.
	StatusCanceled
)

// Partial reports whether the search stopped before proving its answer.
func (s Status) Partial() bool { return s != StatusComplete }

func (s Status) String() string {
	switch s {
	case StatusComplete:
		return "complete"
	case StatusBudget:
		return "budget"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Verdict is the three-valued answer of a decision search: a search cut
// short by budget or cancellation has seen neither a witness nor an
// exhausted space, so its answer is indeterminate rather than "no".
type Verdict uint8

const (
	// VerdictIndeterminate: the search stopped before deciding.
	VerdictIndeterminate Verdict = iota
	// VerdictFeasible: a witness was found.
	VerdictFeasible
	// VerdictInfeasible: the (pruned) space was exhausted without one.
	VerdictInfeasible
)

func (v Verdict) String() string {
	switch v {
	case VerdictIndeterminate:
		return "indeterminate"
	case VerdictFeasible:
		return "feasible"
	case VerdictInfeasible:
		return "infeasible"
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// IsPartial reports whether err marks an early stop (state budget,
// deadline, or cancellation) rather than a hard failure. Callers that can
// degrade gracefully should treat partial errors as "use the incumbent",
// not as fatal.
func IsPartial(err error) bool {
	return errors.Is(err, ErrBudget) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// budgetErr is the single wrapping shared by all three solvers, so
// errors.Is(err, ErrBudget) holds on every budget-exceeded path.
func budgetErr(states int) error {
	return fmt.Errorf("%w after %d states", ErrBudget, states)
}

// cancelErr wraps the context's error so errors.Is(err,
// context.Canceled/DeadlineExceeded) holds on every cancellation path.
func cancelErr(ctx context.Context, states int) error {
	return fmt.Errorf("opt: search stopped after %d states: %w", states, ctx.Err())
}

// ctxCheckMask throttles context polls: the solvers check ctx.Err() once
// every ctxCheckMask+1 units of work, keeping cancellation latency in the
// microseconds without a syscall-per-state cost.
const ctxCheckMask = 1023

// verdictOf maps a completed decision search's boolean answer to a Verdict.
func verdictOf(feasible bool) Verdict {
	if feasible {
		return VerdictFeasible
	}
	return VerdictInfeasible
}

// statusOfStop classifies an early-stop error into the Status it implies.
func statusOfStop(err error) Status {
	switch {
	case err == nil:
		return StatusComplete
	case errors.Is(err, ErrBudget):
		return StatusBudget
	default:
		return StatusCanceled
	}
}
