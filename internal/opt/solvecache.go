package opt

// Content-addressable memoization of exact solves. SolveCached wraps
// ExactWith with a SolveCache: the (instance, result-affecting config)
// fingerprint (internal/cache) is looked up before searching, and
// deterministic-engine results are stored after. The contract is
// byte-identity: a cache hit returns exactly the Result (and error) the
// same deterministic solve would have produced fresh, which rests on
// two engine invariants — complete Results are pure functions of
// (instance, Heuristic, Dominance, Witness), and deterministic partials
// are additionally pure functions of MaxStates (budget stops happen at
// wave boundaries, PR 6). Hence the write policy:
//
//   - Only ModeDeterministic runs populate the cache. Async Results are
//     exact in Cost/Status but carry timing-dependent statistics; caching
//     them would poison determinism for later deterministic callers.
//     Async callers may still read hits (their statistics are
//     documented as timing-dependent, so deterministic values satisfy
//     the contract), and Workers/Mode are deliberately not in the key.
//   - Only StatusComplete results enter the complete-result store, and
//     only StatusBudget results the partial store. StatusCanceled
//     (deadline/cancel) results are never cached: a wall-clock stop is
//     not a function of the instance.
//   - The cache stores and serves clones. Callers own the Result a
//     solve returns and may mutate it (exp.raiseLowerBound does), so a
//     shared pointer would let one caller corrupt every later hit.

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/pebble"
)

// SolveCache memoizes exact-solver Results behind canonical instance
// fingerprints. Safe for concurrent use; share one per process (or per
// service) and pass it to SolveCached.
type SolveCache struct {
	c *cache.Cache
}

// NewSolveCache returns a SolveCache under the given options. When
// opts.Dir is set and no Codec is given, Results are serialized with
// the built-in gob codec.
func NewSolveCache(opts cache.Options) *SolveCache {
	if opts.Dir != "" && opts.Codec == nil {
		opts.Codec = resultCodec{}
	}
	return &SolveCache{c: cache.New(opts)}
}

// Stats returns a snapshot of the cache's hit/miss/eviction/bytes
// counters.
func (sc *SolveCache) Stats() cache.Stats { return sc.c.Stats() }

// solverSubset extracts the result-affecting subset of cfg — the
// fingerprint's config half. Workers and Mode are deliberately dropped
// (see the file comment).
func solverSubset(cfg Config) cache.SolverConfig {
	return cache.SolverConfig{
		Heuristic: uint8(cfg.Heuristic),
		Dominance: cfg.Dominance,
		Witness:   cfg.Witness,
		MaxStates: cfg.MaxStates,
	}.Normalize()
}

// SolveCached is ExactWith through a cache: a hit returns the memoized
// Result (cloned, with the same error a fresh solve would return)
// without searching; a miss solves and, when the run is deterministic
// and not deadline-stopped, stores the Result for the next caller. A
// nil sc degrades to a plain ExactWith. A hit never consults ctx — the
// work is already done.
func SolveCached(ctx context.Context, in *pebble.Instance, cfg Config, sc *SolveCache) (*Result, error) {
	if sc == nil {
		return ExactWith(ctx, in, cfg)
	}
	sub := solverSubset(cfg)
	key := cache.KeyOf(in, sub)
	if e, ok := sc.c.Get(key); ok {
		if res, ok := e.Value.(*Result); ok {
			return cloneResult(res), nil
		}
	}
	var pkey cache.Key
	if sub.MaxStates > 0 {
		pkey = cache.PartialKeyOf(in, sub)
		if e, ok := sc.c.GetPartial(pkey, sub.MaxStates); ok {
			if res, ok := e.Value.(*Result); ok {
				r := cloneResult(res)
				return r, budgetErr(r.States)
			}
		}
	}

	res, err := ExactWith(ctx, in, cfg)
	if res == nil || cfg.Mode != ModeDeterministic {
		return res, err
	}
	switch {
	case err == nil && res.Status == StatusComplete:
		sc.c.Put(key, cache.Entry{Value: cloneResult(res), Size: resultBytes(res)})
	case errors.Is(err, ErrBudget) && res.Status == StatusBudget && sub.MaxStates > 0:
		sc.c.Put(pkey, cache.Entry{Value: cloneResult(res), Size: resultBytes(res), Budget: sub.MaxStates})
	}
	return res, err
}

// SolveBatchCached is SolveBatch through a cache: each instance is
// solved via SolveCached under the shared config, so repeated instances
// inside (or across) batches hit instead of re-searching. Results come
// back in input order; like SolveBatch, one instance's partial stop
// does not abort the others.
func SolveBatchCached(ctx context.Context, ins []*pebble.Instance, cfg Config, sc *SolveCache) []BatchResult {
	out := make([]BatchResult, len(ins))
	for i, in := range ins {
		out[i].Result, out[i].Err = SolveCached(ctx, in, cfg, sc)
	}
	return out
}

// cloneResult returns a copy whose mutation cannot reach the original:
// a shallow struct copy plus a deep Strategy copy when present.
func cloneResult(r *Result) *Result {
	out := *r
	out.Strategy = r.Strategy.Clone()
	return &out
}

// resultBytes estimates a Result's retained heap bytes for the cache's
// byte bound: the struct itself plus the witness strategy's moves and
// action slices. An estimate is all the bound needs.
func resultBytes(r *Result) int64 {
	const (
		baseBytes   = 96 // Result struct
		moveBytes   = 32 // Move header (kind + actions slice header)
		actionBytes = 16 // Action (proc + node, padded)
	)
	b := int64(baseBytes)
	if r.Strategy != nil {
		b += 24 + moveBytes*int64(len(r.Strategy.Moves))
		for _, m := range r.Strategy.Moves {
			b += actionBytes * int64(len(m.Actions))
		}
	}
	return b
}

// resultCodec serializes *Result blobs for the file-backed store via
// encoding/gob (every field, Strategy included, is exported).
type resultCodec struct{}

func (resultCodec) Encode(v any) ([]byte, error) {
	res, ok := v.(*Result)
	if !ok {
		return nil, fmt.Errorf("opt: cache codec: unexpected value type %T", v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return nil, fmt.Errorf("opt: encoding cached result: %w", err)
	}
	return buf.Bytes(), nil
}

func (resultCodec) Decode(data []byte) (any, error) {
	res := new(Result)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(res); err != nil {
		return nil, fmt.Errorf("opt: decoding cached result: %w", err)
	}
	return res, nil
}
