package opt

// Wave-synchronous sharded A* — the deterministic parallel engine under
// every Exact entry point.
//
// The state space is hash-partitioned (HDA*-style) by the (blue,
// computed) words of a packed configuration: hashtab.ShardOf over the
// same domHash the dominance index keys on, so a candidate and every
// state that could dominate it — dominance requires identical (blue,
// computed) — land on the same shard, and shade canonicalization (which
// permutes only red words) never moves a state across shards. Each
// shard owns its table arena, distance/parent arrays, bucket queue and
// dominance index outright; nothing per-state is ever shared, so the
// workers run lock-free on their hot paths.
//
// Determinism across worker counts comes from bulk-synchronous layers
// instead of asynchronous HDA* racing:
//
//   - A *layer* is the global minimum f-value F over all shard queues.
//   - A layer runs as *waves*. In a wave every shard drains its own
//     bucket F and expands the drained states, routing candidates to
//     their owners (local ones apply immediately, remote ones batch
//     over bounded channels). A flush-marker barrier ends the wave:
//     each shard sends one marker to every shard after its batches, and
//     applies buffered batches only after all markers arrived — per-
//     sender channel FIFO makes the marker a completeness proof. States
//     relaxed *to* f == F during a wave form the next wave; an empty
//     layer advances F.
//   - The set of states expanded in each wave is a pure function of the
//     search graph (induction over waves: wave 0 of a layer is the
//     bucket-F contents at layer entry; relaxation outcomes are min
//     operations, so apply order within a wave cannot change any
//     distance, and a consistent heuristic rules out same-layer
//     re-improvement). Worker count only changes *where* states live,
//     never *which* states expand — so States, LowerBound, Cost and the
//     incumbent are byte-identical for every worker count. The one
//     exception: in one-shot mode the dead-state share of Pruned counts
//     improvement events, whose within-wave order is worker-dependent
//     (Result.Pruned documents this).
//   - The incumbent is a search-wide atomic min (offerIncumbent); a
//     layer whose F reaches the incumbent proves it optimal — the goal
//     check that a sequential A* does at pop time happens here at the
//     layer barrier, which is what keeps it worker-count-invariant.
//
// Termination detection is the coordinator's: workers only ever run one
// wave per command, so "all queues empty" and "incumbent ≤ F" are
// evaluated between waves on quiescent state (the command/report
// channel pair establishes the happens-before edges). Early stops
// (budget, cancellation) raise a flag that workers poll per expansion;
// an aborting wave still completes its flush/apply barrier, so no
// worker ever blocks on a peer that quit — and the budget is a single
// atomic counter, naturally "split across shards".
//
// Workers == 1 runs the identical wave engine inline (no goroutines, no
// channels, no batches) — that path is the sequential solver, and the
// map-backed oracle (oracle.go) runs through it too, so the
// cross-implementation byte-for-byte equivalence tests cover the wave
// semantics at every worker count.
//
// Config.Mode == ModeAsync swaps this wave discipline for speculative
// asynchronous HDA* (async.go): same sharding, same routing batches and
// atomics, no barriers — exact optima, relaxed determinism.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashtab"
	"repro/internal/pebble"
)

const (
	// maxWorkers caps resolved worker counts; beyond this, per-shard
	// queue scans and barrier fan-out dominate any conceivable gain on
	// ≤ 62-node instances.
	maxWorkers = 64
	// batchStates is the number of candidates a router batch carries
	// before it is shipped; bounds memory without per-candidate sends.
	batchStates = 64
	// inboxDepth bounds each shard's inbox channel. Senders facing a
	// full inbox drain their own inbox while waiting (see send), so the
	// bound throttles memory without deadlock.
	inboxDepth = 8
)

// batch is the router's unit of cross-shard transfer: up to batchStates
// candidate relaxations (packed words + g-cost, plus parent ref and
// move in witness mode), or a flush marker ending a sender's wave.
// Batches are pooled and reused across waves.
type batch struct {
	src   int32
	flush bool
	n     int
	words []uint64
	costs []int64
	froms []stateRef    // witness mode only
	moves []pebble.Move // witness mode only
}

// engine is the shared search-wide state: the shards, their inboxes,
// the atomic incumbent/budget/stop words, and the configuration.
type engine struct {
	in      *pebble.Instance
	ctx     context.Context
	cfg     Config
	nShards int
	limit   int64 // expansion budget; MaxInt64 when MaxStates is non-positive
	pooled  bool  // shards come from / return to the package arena pool

	shards []*solver
	inbox  []chan *batch
	pool   sync.Pool // *batch

	expandedTotal int64  // atomic: expansions across all shards
	incumbent     int64  // atomic: cheapest feasible cost seen, MaxInt64 if none
	stopFlag      uint32 // atomic: 0 = running, else uint32(Status) of the stop

	// Async-mode quiescence detection (see async.go): the number of
	// shards currently holding work, the number of shipped batches not
	// yet applied by their receiver, an epoch bumped on every idle→busy
	// transition, and the all-shards-quiescent flag.
	busy     int64  // atomic
	inflight int64  // atomic
	activity int64  // atomic
	doneFlag uint32 // atomic: 1 once quiescence was proven

	// leftover collects batches whose receiver may already have quit
	// (async early stop); the coordinator applies them after the workers
	// exit so the anytime LowerBound sees the complete frontier.
	leftMu   sync.Mutex
	leftover []*batch // mpp:guardedby leftMu

	incMu    sync.Mutex // guards incRef alongside the incumbent store
	incRef   stateRef   // mpp:guardedby incMu
	startRef stateRef   // owner/index of the seed state
}

func newEngine(ctx context.Context, in *pebble.Instance, cfg Config, newTab func() hashtab.Index, pooled bool) *engine {
	w := resolveWorkers(cfg.Workers)
	limit := int64(math.MaxInt64)
	if cfg.MaxStates > 0 {
		limit = int64(cfg.MaxStates)
	}
	e := &engine{in: in, ctx: ctx, cfg: cfg, nShards: w, limit: limit, pooled: pooled,
		incumbent: math.MaxInt64, incRef: stateRef{idx: -1}}
	e.pool.New = func() any { return new(batch) }
	e.shards = make([]*solver, w)
	e.inbox = make([]chan *batch, w)
	for i := range e.shards {
		s := acquireSolver(pooled)
		s.bind(e, int32(i), newTab, pooled)
		if w > 1 {
			e.inbox[i] = make(chan *batch, inboxDepth)
		}
		e.shards[i] = s
	}
	return e
}

// resolveWorkers maps Config.Workers to an effective shard count:
// non-positive means GOMAXPROCS, clamped to maxWorkers.
func resolveWorkers(w int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// ownerOf returns the shard owning a packed state: a pure function of
// its (blue, computed) words, shared with the dominance index's key.
//
//mpp:hotpath
func (e *engine) ownerOf(w []uint64) int {
	k := e.in.K
	return hashtab.ShardOf(domHash(w[k], w[k+1]), e.nShards)
}

func (e *engine) incumbentNow() int64 { return atomic.LoadInt64(&e.incumbent) }

// offerIncumbent lowers the search-wide incumbent to cost if it
// improves, remembering the goal state's ref for witness reconstruction.
// Cold path: goal relaxations are rare.
func (e *engine) offerIncumbent(cost int64, ref stateRef) {
	e.incMu.Lock()
	if cost < atomic.LoadInt64(&e.incumbent) {
		atomic.StoreInt64(&e.incumbent, cost)
		e.incRef = ref
	}
	e.incMu.Unlock()
}

// requestStop records the first early-stop reason; later requests lose.
// StatusComplete (0) is never requested — 0 means "running".
func (e *engine) requestStop(st Status) {
	atomic.CompareAndSwapUint32(&e.stopFlag, 0, uint32(st))
}

//mpp:hotpath
func (e *engine) stopStatus() Status { return Status(atomic.LoadUint32(&e.stopFlag)) }

// countExpansion charges one expansion against the shared budget,
// raising the budget stop (and un-charging) when it would exceed it.
// Async-engine only: a per-expansion cut is scheduling-dependent, which
// the async mode's contract allows and the deterministic one does not —
// deterministic engines charge unconditionally (chargeExpansion) and
// stop at wave boundaries (budgetSpent).
//
//mpp:hotpath
func (s *solver) countExpansion() bool {
	n := atomic.AddInt64(&s.eng.expandedTotal, 1)
	if n > s.eng.limit {
		atomic.AddInt64(&s.eng.expandedTotal, -1)
		s.eng.requestStop(StatusBudget)
		return false
	}
	return true
}

// chargeExpansion records one deterministic-engine expansion. No limit
// check: the wave in progress always completes (its expansion set must
// stay a pure function of the search graph), and the coordinator stops
// the search at the next wave boundary once budgetSpent reports the
// budget gone.
//
//mpp:hotpath
func (s *solver) chargeExpansion() { atomic.AddInt64(&s.eng.expandedTotal, 1) }

// budgetSpent reports whether the expansion budget is exhausted —
// consulted between waves, never inside one.
func (e *engine) budgetSpent() bool { return atomic.LoadInt64(&e.expandedTotal) >= e.limit }

func (e *engine) statesTotal() int { return int(atomic.LoadInt64(&e.expandedTotal)) }

func (e *engine) prunedTotal() int {
	total := 0
	for _, s := range e.shards {
		total += s.pruned
	}
	return total
}

func (e *engine) reopenedTotal() int {
	total := 0
	for _, s := range e.shards {
		total += s.reopened
	}
	return total
}

// run seeds the start state and dispatches to the mode's inline or
// parallel driver.
func (e *engine) run() (*Result, error) {
	start := make([]uint64, stateWords(e.in.K))
	owner := 0
	if e.nShards > 1 {
		owner = e.ownerOf(start)
	}
	s := e.shards[owner]
	idx, fresh := s.insert(start, 0)
	e.startRef = stateRef{shard: int32(owner), idx: idx}
	s.enqueue(start, 0, idx, fresh)
	if e.cfg.Mode == ModeAsync {
		if e.nShards == 1 {
			return e.runAsyncInline()
		}
		return e.runAsync()
	}
	if e.nShards == 1 {
		return e.runInline()
	}
	return e.runParallel()
}

// runInline is the single-worker driver: the same layer/wave structure
// with the one shard's phases executed in place.
//
//mpp:deterministic
func (e *engine) runInline() (*Result, error) {
	s := e.shards[0]
	for {
		f, ok := s.bq.minF()
		if !ok {
			return e.drained()
		}
		for { // waves of layer f
			if e.incumbentNow() <= f {
				return e.complete()
			}
			if e.ctx.Err() != nil {
				e.requestStop(StatusCanceled)
			}
			if st := e.stopStatus(); st != StatusComplete {
				return e.partialResult(st, f, false)
			}
			if e.budgetSpent() {
				return e.partialResult(StatusBudget, f, false)
			}
			s.expandWave(f)
			if st := e.stopStatus(); st != StatusComplete {
				return e.partialResult(st, f, true)
			}
			if len(s.worklist) == 0 {
				break // layer exhausted; advance to the next f
			}
			s.settleWave()
		}
	}
}

// runParallel is the multi-worker driver: one goroutine per shard, each
// running exactly one wave per command, with the coordinator (this
// goroutine) owning layer advancement, termination detection and result
// assembly. The command send and report receive bracket every wave, so
// all cross-shard reads below (queues, counters, parents) happen on
// quiescent memory.
//
//mpp:deterministic
func (e *engine) runParallel() (*Result, error) {
	w := e.nShards
	cmds := make([]chan int64, w)
	reps := make(chan struct{}, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		cmds[i] = make(chan int64, 1)
		wg.Add(1)
		go func(s *solver, cmd <-chan int64) {
			defer wg.Done()
			for f := range cmd {
				s.expandWave(f)
				s.flushAndMark()
				s.applyWave()
				s.settleWave()
				reps <- struct{}{}
			}
		}(e.shards[i], cmds[i])
	}
	stopWorkers := func() {
		for _, c := range cmds {
			close(c)
		}
		wg.Wait()
	}

	for {
		f, ok := e.globalMinF()
		if !ok {
			stopWorkers()
			return e.drained()
		}
		for { // waves of layer f
			if e.incumbentNow() <= f {
				stopWorkers()
				return e.complete()
			}
			if e.ctx.Err() != nil {
				e.requestStop(StatusCanceled)
			}
			if st := e.stopStatus(); st != StatusComplete {
				stopWorkers()
				return e.partialResult(st, f, false)
			}
			if e.budgetSpent() {
				stopWorkers()
				return e.partialResult(StatusBudget, f, false)
			}
			for i := 0; i < w; i++ {
				cmds[i] <- f
			}
			for i := 0; i < w; i++ {
				<-reps
			}
			if st := e.stopStatus(); st != StatusComplete {
				stopWorkers()
				return e.partialResult(st, f, true)
			}
			if !e.anyBucket(f) {
				break // no shard refilled bucket f; layer exhausted
			}
		}
	}
}

func (e *engine) globalMinF() (int64, bool) {
	min := int64(math.MaxInt64)
	any := false
	for _, s := range e.shards {
		if m, ok := s.bq.minF(); ok && m < min {
			min, any = m, true
		}
	}
	return min, any
}

func (e *engine) anyBucket(f int64) bool {
	for _, s := range e.shards {
		if s.bq.hasBucket(f) {
			return true
		}
	}
	return false
}

// expandWave drains this shard's bucket f and expands every live entry,
// routing candidates to their owners. Stale entries (superseded g) and
// already-expanded states are skipped without counting; goal entries
// are skipped too — goals are proven at the layer barrier, never
// expanded (and never settled, so dominance stays sound). An early-stop
// flag abandons the remaining worklist; the drained entries' f == F
// floor is restored by partialResult's midWave bound.
func (s *solver) expandWave(f int64) {
	e := s.eng
	s.worklist = s.bq.takeBucket(f, s.worklist)
	for _, ent := range s.worklist {
		if e.stopStatus() != StatusComplete {
			break
		}
		if ent.g > s.dist[ent.idx] || s.expandedMark[ent.idx] {
			continue
		}
		s.cur = append(s.cur[:0], s.tab.Key(int(ent.idx))...)
		if s.isGoal(s.cur) {
			continue
		}
		s.pops++
		if s.pops&ctxCheckMask == 0 && s.ctx.Err() != nil {
			e.requestStop(StatusCanceled)
			break
		}
		s.chargeExpansion()
		s.expandedMark[ent.idx] = true
		s.expanded++
		s.waveExp = append(s.waveExp, ent.idx)
		s.curIdx = ent.idx
		s.expand(ent.g)
	}
}

// settleWave registers the wave's expanded states in the dominance
// index. Settling at the wave boundary (not per expansion) is what
// makes the dominator set visible to any candidate a pure function of
// the wave number — identical for every worker count. Soundness is
// unaffected: a smaller dominator set only prunes less.
func (s *solver) settleWave() {
	if s.useDom {
		k := s.in.K
		for _, idx := range s.waveExp {
			w := s.tab.Key(int(idx))
			s.dom.add(w[k], w[k+1], idx)
		}
	}
	s.waveExp = s.waveExp[:0]
}

// route appends a candidate to the outgoing batch for shard dst,
// shipping the batch when full. Batches are pooled; the append targets
// pooled capacity, so steady-state routing does not allocate.
//
//mpp:hotpath
func (s *solver) route(dst int, cost int64, kind pebble.OpKind, choice []int) {
	b := s.out[dst]
	if b == nil {
		b = s.eng.getBatch(s.shard)
		s.out[dst] = b
	}
	b.words = append(b.words, s.cand...)
	b.costs = append(b.costs, cost)
	if s.witness {
		b.froms = append(b.froms, stateRef{shard: s.shard, idx: s.curIdx})
		b.moves = append(b.moves, moveOf(kind, choice))
	}
	b.n++
	if b.n >= batchStates {
		s.out[dst] = nil
		if s.async {
			s.asyncShip(dst, b)
		} else {
			s.send(dst, b)
		}
	}
}

// send delivers a batch to dst's inbox. When the inbox is full the
// sender drains its *own* inbox (buffering, not applying) instead of
// blocking — a blocked sender that keeps its inbox empty can never
// participate in a circular wait, so the bounded channels cannot
// deadlock.
func (s *solver) send(dst int, b *batch) {
	e := s.eng
	for {
		select {
		case e.inbox[dst] <- b:
			return
		default:
			if !s.drainOne() {
				runtime.Gosched()
			}
		}
	}
}

// drainOne buffers one pending inbox batch, if any.
func (s *solver) drainOne() bool {
	select {
	case b := <-s.eng.inbox[s.shard]:
		s.accept(b)
		return true
	default:
		return false
	}
}

// accept buffers a received batch by source shard, or counts a flush
// marker.
func (s *solver) accept(b *batch) {
	if b.flush {
		s.markers++
		s.eng.putBatch(b)
		return
	}
	s.incoming[b.src] = append(s.incoming[b.src], b)
}

// flushAndMark ships this shard's partial batches and then one flush
// marker to every shard (itself included — uniformity keeps the marker
// count a plain W). Channel FIFO per sender means a received marker
// proves all of that sender's wave batches arrived first.
func (s *solver) flushAndMark() {
	for dst, b := range s.out {
		if b != nil {
			s.out[dst] = nil
			if b.n > 0 {
				s.send(dst, b)
			} else {
				s.eng.putBatch(b)
			}
		}
	}
	for dst := 0; dst < s.eng.nShards; dst++ {
		m := s.eng.getBatch(s.shard)
		m.flush = true
		s.send(dst, m)
	}
}

// applyWave receives until every shard's flush marker arrived, then
// applies the buffered batches in source-shard order (and per-source
// FIFO). The order is fixed for reproducibility's sake, but no Result
// field depends on it: relaxation is a min, so any apply order yields
// the same distances, queue-bucket sets and incumbent.
func (s *solver) applyWave() {
	e := s.eng
	for s.markers < e.nShards {
		s.accept(<-e.inbox[s.shard])
	}
	s.markers = 0
	wpk := stateWords(s.in.K)
	for src := range s.incoming {
		for _, b := range s.incoming[src] {
			for i := 0; i < b.n; i++ {
				var from stateRef
				var mv pebble.Move
				if s.witness {
					from, mv = b.froms[i], b.moves[i]
				}
				s.applyRemote(b.words[i*wpk:(i+1)*wpk], b.costs[i], from, mv)
			}
			e.putBatch(b)
		}
		s.incoming[src] = s.incoming[src][:0]
	}
}

func (e *engine) getBatch(src int32) *batch {
	b := e.pool.Get().(*batch)
	b.src = src
	return b
}

func (e *engine) putBatch(b *batch) {
	b.n, b.flush = 0, false
	b.words = b.words[:0]
	b.costs = b.costs[:0]
	b.froms = b.froms[:0]
	b.moves = b.moves[:0]
	e.pool.Put(b)
}

// drained handles an exhausted frontier: with an incumbent the search
// is complete (every remaining path was pruned or dominated at ≥ the
// incumbent's cost); without one the instance had no pebbling, which
// valid instances cannot exhibit.
func (e *engine) drained() (*Result, error) {
	if e.incumbentNow() < math.MaxInt64 {
		return e.complete()
	}
	return nil, fmt.Errorf("opt: no pebbling found (unreachable for valid instances)")
}

// complete assembles the proven-optimal result: the layer barrier
// reached the incumbent, so Cost == Incumbent == LowerBound.
func (e *engine) complete() (*Result, error) {
	inc := e.incumbentNow()
	res := &Result{Cost: inc, States: e.statesTotal(), Status: StatusComplete,
		Incumbent: inc, LowerBound: inc,
		Pruned: e.prunedTotal(), ReExpanded: e.reopenedTotal(),
		HeuristicMode: e.cfg.Heuristic}
	if e.cfg.Witness {
		strat, err := e.reconstruct(e.witnessRef())
		if err != nil {
			return nil, err
		}
		res.Strategy = strat
	}
	return res, nil
}

// partialResult assembles the anytime result of an early stop: the
// incumbent (best feasible cost relaxed so far, -1 if none) and the
// admissible frontier lower bound — the minimum f-value over *live*
// queue entries across all shards, floored by the current layer's F
// when the stop interrupted a wave (drained-but-unexpanded worklist
// entries all have f == F). OPT is guaranteed to lie in [LowerBound,
// Incumbent]; the incumbent clamp applies only when an incumbent
// exists, so an incumbent-less partial reports the true frontier bound
// (≥ 0) instead of being dragged to the -1 sentinel.
func (e *engine) partialResult(st Status, f int64, midWave bool) (*Result, error) {
	states := e.statesTotal()
	res := &Result{Cost: -1, States: states, Status: st, Incumbent: -1,
		Pruned: e.prunedTotal(), ReExpanded: e.reopenedTotal(),
		HeuristicMode: e.cfg.Heuristic}
	lb := int64(math.MaxInt64)
	for _, s := range e.shards {
		if m, ok := s.liveMinF(); ok && m < lb {
			lb = m
		}
	}
	if midWave && f < lb {
		lb = f
	}
	if inc := e.incumbentNow(); inc < math.MaxInt64 {
		res.Incumbent, res.Cost = inc, inc
		if lb > inc {
			lb = inc
		}
		if e.cfg.Witness {
			if strat, err := e.reconstruct(e.witnessRef()); err == nil {
				res.Strategy = strat
			}
		}
	}
	if lb == math.MaxInt64 || lb < 0 {
		lb = 0 // nothing is known beyond non-negativity
	}
	res.LowerBound = lb

	if st == StatusBudget {
		return res, budgetErr(states)
	}
	return res, cancelErr(e.ctx, states)
}

// liveMinF scans this shard's queue for the smallest f-bucket holding a
// live entry — one whose g still matches the state's distance and whose
// state is unexpanded. Stale duplicates (superseded relaxations) are
// queue garbage whose presence depends on within-wave apply order, so
// the anytime LowerBound must not see them; filtering keeps the bound
// both admissible and worker-count-invariant. Cold path: runs once, at
// an early stop.
func (s *solver) liveMinF() (int64, bool) {
	for fi := s.bq.cur; fi < len(s.bq.buckets); fi++ {
		for _, ent := range s.bq.buckets[fi] {
			if ent.g == s.dist[ent.idx] && !s.expandedMark[ent.idx] {
				return int64(fi), true
			}
		}
	}
	return 0, false
}

// witnessRef reads the incumbent's state ref under the same lock its
// writers hold.
func (e *engine) witnessRef() stateRef {
	e.incMu.Lock()
	ref := e.incRef
	e.incMu.Unlock()
	return ref
}

// reconstruct walks parent refs from the goal back to the seed state,
// hopping shards as needed, and returns the move sequence. Only called
// after all workers stopped, so the cross-shard reads are quiescent.
func (e *engine) reconstruct(goal stateRef) (*pebble.Strategy, error) {
	if goal.idx < 0 {
		return nil, fmt.Errorf("opt: witness chain broken (internal error)")
	}
	limit := 0
	for _, s := range e.shards {
		limit += s.tab.Len()
	}
	var rev []pebble.Move
	for ref := goal; ref != e.startRef; {
		pe := e.shards[ref.shard].parent[ref.idx]
		if pe.from.idx < 0 {
			return nil, fmt.Errorf("opt: witness chain broken (internal error)")
		}
		rev = append(rev, pe.move)
		ref = pe.from
		if len(rev) > limit {
			return nil, fmt.Errorf("opt: witness chain too long (internal error)")
		}
	}
	st := &pebble.Strategy{}
	for i := len(rev) - 1; i >= 0; i-- {
		st.Append(rev[i])
	}
	return st, nil
}
