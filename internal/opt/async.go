package opt

// Asynchronous HDA* — the speculative "fast mode" engine selected by
// Config.Mode == ModeAsync.
//
// Sharding, routing batches, the atomic incumbent/budget/stop words and
// the admissible heuristic + dominance stack are all shared with the
// deterministic wave engine (parallel.go). What changes is the
// coordination discipline: there are no layers, no waves and no flush
// markers. Each shard loops pop → expand → route at full speed on
// whatever its queue holds, draining its inbox opportunistically. This
// removes the barrier stalls *and* the wave-synchronous expansion
// inflation (a wave must expand every same-f state before any cheaper
// successor information propagates; the async engine, like a sequential
// A*, sees relaxations as soon as they arrive).
//
// Exactness is kept by two rules:
//
//   - Re-expansion rule: a shard may expand a state before its final
//     distance is known (speculation). When a later relaxation improves
//     an already-expanded state's g, insert clears its expanded mark and
//     the state re-enters the queue to be expanded again with the better
//     g (Result.ReExpanded counts these). Since every improving path is
//     re-propagated, the usual A* invariant — when the global minimum
//     open f reaches the incumbent, no cheaper completion exists — still
//     holds; only the "each state expands once" efficiency guarantee is
//     given up.
//   - Termination by quiescence, not by layer barrier: the incumbent is
//     proven optimal when every queue entry below it is exhausted —
//     detected as "all shards idle and no batch in flight" below. At
//     that point the frontier minimum is ≥ the incumbent everywhere (an
//     idle shard, by definition, has no live entry below the incumbent),
//     which is exactly the deterministic engine's layer-barrier
//     optimality proof.
//
// Dominance pruning stays sound: a state is settled into the dominance
// index at its (first) expansion instead of at a wave boundary. The
// strict-inequality test reads the dominator's *current* g dynamically,
// so a dominator that is later improved only prunes more; pruning never
// removes a state whose completions cannot be simulated (dominate.go).
//
// Quiescence detection — the busy/inflight/activity protocol:
//
//	busy      number of shards currently processing work
//	inflight  number of shipped batches not yet applied by a receiver
//	activity  epoch counter, bumped on every idle→busy transition
//
// Ordering rules: a sender increments inflight *before* the batch is
// placed in an inbox; a parked shard that receives a batch increments
// busy and activity *before* applying it, and decrements inflight only
// *after* the batch is fully applied. A parked shard declares global
// quiescence only after the four-step check (read activity; see busy ==
// 0; see inflight == 0; re-read activity unchanged): any batch applied
// concurrently either still counts in inflight, or its receiver's busy
// increment is visible, or the activity epoch moved — so "done" is never
// declared while work exists anywhere. Once declared, no shard can
// become busy again (inflight == 0 and no busy shard means nothing can
// be sent), so the flag is stable.
//
// Early stops (budget, cancellation) reuse the PR 5 atomics; the anytime
// [LowerBound, Incumbent] bracket stays sound because no frontier entry
// is ever lost: a popped entry is re-pushed when its expansion is
// refused, quitting shards divert unflushed/unapplied batches to the
// engine's leftover list instead of blocking on possibly-dead receivers,
// and the coordinator applies every leftover after the workers exit,
// before the bracket is assembled from the live queue minima.
//
// What is traded away, exactly: States, Pruned, ReExpanded, the witness
// trace and the partial-run bracket become timing-dependent (run-to-run
// and across worker counts). Cost, Status and — on complete runs — the
// optimality of the witness cost are unchanged; the async zoo
// equivalence test (async_test.go) locks ModeAsync to ModeDeterministic
// on exactly those fields under -race.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pebble"
)

// Mode selects the parallel engine's coordination discipline (see
// Config.Mode).
type Mode uint8

const (
	// ModeDeterministic is the wave-synchronous engine: results are
	// byte-identical for every worker count. The default.
	ModeDeterministic Mode = iota
	// ModeAsync is the speculative asynchronous engine: exact optima,
	// higher throughput, timing-dependent statistics and traces.
	ModeAsync
)

func (m Mode) String() string {
	switch m {
	case ModeAsync:
		return "async"
	default:
		return "deterministic"
	}
}

// ParseMode parses "deterministic" or "async" (the flag spelling used by
// cmd/mppbench and cmd/mppexp).
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "deterministic":
		return ModeDeterministic, true
	case "async":
		return ModeAsync, true
	}
	return ModeDeterministic, false
}

// expandOutcome is asyncExpand's verdict on one popped entry.
type expandOutcome uint8

const (
	expandOK      expandOutcome = iota // expanded (or charged and expanded)
	expandSkipped                      // stale / already expanded / goal
	expandStopped                      // refused: budget or cancel; entry re-pushed
)

// runAsyncInline is the single-worker async driver: a plain sequential
// A* with incumbent pruning — no goroutines, no channels, no batches.
// It exists for the same reason runInline does (zero-concurrency
// allocation budget) and doubles as the reference semantics for the
// worker loop: runAsync with W shards interleaves W of these.
func (e *engine) runAsyncInline() (*Result, error) {
	if e.ctx.Err() != nil {
		e.requestStop(StatusCanceled)
		return e.partialResult(StatusCanceled, 0, false)
	}
	s := e.shards[0]
	for {
		f, ok := s.bq.minF()
		if !ok {
			return e.drained()
		}
		if e.incumbentNow() <= f {
			return e.complete()
		}
		if st := e.stopStatus(); st != StatusComplete {
			return e.partialResult(st, 0, false)
		}
		ent, ok := s.bq.popBucket(f)
		if !ok {
			continue
		}
		if s.asyncExpand(ent, f) == expandStopped {
			return e.partialResult(e.stopStatus(), 0, false)
		}
	}
}

// asyncExpand processes one popped queue entry: skip it if stale,
// already expanded or a goal; otherwise charge the budget and expand.
// When the charge is refused (budget exhausted or context canceled) the
// entry is pushed back so the frontier — and with it the anytime
// LowerBound — stays complete.
//
//mpp:hotpath
func (s *solver) asyncExpand(ent bqEntry, f int64) expandOutcome {
	if ent.g > s.dist[ent.idx] || s.expandedMark[ent.idx] {
		return expandSkipped
	}
	s.cur = append(s.cur[:0], s.tab.Key(int(ent.idx))...)
	if s.isGoal(s.cur) {
		// Goals are never expanded: their relaxation already offered the
		// incumbent, and expanding one could only find costlier states.
		return expandSkipped
	}
	s.pops++
	if s.pops&ctxCheckMask == 0 && s.ctx.Err() != nil {
		s.eng.requestStop(StatusCanceled)
		s.bq.push(f, ent.idx, ent.g)
		return expandStopped
	}
	if !s.countExpansion() {
		s.bq.push(f, ent.idx, ent.g)
		return expandStopped
	}
	s.expandedMark[ent.idx] = true
	s.expanded++
	if s.useDom && !s.settledMark[ent.idx] {
		// Settle at first expansion (the wave engine settles at wave
		// boundaries): sound either way, and the mark keeps a reopened
		// state from entering the dominance index twice.
		s.settledMark[ent.idx] = true
		k := s.in.K
		s.dom.add(s.cur[k], s.cur[k+1], ent.idx)
	}
	s.curIdx = ent.idx
	s.expand(ent.g)
	return expandOK
}

// runAsync is the multi-worker async driver: one free-running goroutine
// per shard, coordinated only through the inboxes and the quiescence
// atomics. The coordinator just waits, then sweeps up leftovers and
// assembles the result from quiescent memory.
func (e *engine) runAsync() (*Result, error) {
	if e.ctx.Err() != nil {
		e.requestStop(StatusCanceled)
		return e.partialResult(StatusCanceled, 0, false)
	}
	atomic.StoreInt64(&e.busy, int64(e.nShards))
	var wg sync.WaitGroup
	for i := 0; i < e.nShards; i++ {
		wg.Add(1)
		go func(s *solver) {
			defer wg.Done()
			s.asyncLoop()
		}(e.shards[i])
	}
	wg.Wait()
	e.applyLeftovers()
	if atomic.LoadUint32(&e.doneFlag) != 0 {
		// Quiescence proven: every open entry is at f ≥ the incumbent
		// (or the space is exhausted), which is the optimality proof.
		return e.drained()
	}
	st := e.stopStatus()
	if st == StatusComplete {
		st = StatusCanceled // unreachable: workers exit only on done or stop
	}
	return e.partialResult(st, 0, false)
}

// asyncLoop is one shard's free-running worker: drain the inbox, pop the
// cheapest live entry below the incumbent, expand, repeat; park when out
// of useful work.
func (s *solver) asyncLoop() {
	e := s.eng
	for {
		s.asyncReceive()
		if e.asyncStopped() {
			s.asyncQuit()
			return
		}
		f, ok := s.bq.minF()
		if !ok || e.incumbentNow() <= f {
			// Nothing below the incumbent here: flush partial batches so
			// receivers (and the quiescence check) see them, then park.
			s.asyncFlush()
			if !s.asyncPark() {
				s.asyncQuit()
				return
			}
			continue
		}
		ent, ok := s.bq.popBucket(f)
		if !ok {
			continue
		}
		if s.asyncExpand(ent, f) == expandStopped {
			s.asyncQuit()
			return
		}
	}
}

// asyncReceive applies every batch currently waiting in this shard's
// inbox.
//
//mpp:hotpath
func (s *solver) asyncReceive() {
	for s.asyncDrainOne() {
	}
}

// asyncDrainOne applies one pending inbox batch, if any.
//
//mpp:hotpath
func (s *solver) asyncDrainOne() bool {
	select {
	case b := <-s.eng.inbox[s.shard]:
		s.asyncAccept(b)
		return true
	default:
		return false
	}
}

// asyncAccept applies a received batch and retires its inflight count.
// The inflight decrement must come last: until the batch's relaxations
// are queued, the quiescence check must still see the batch as work.
//
//mpp:hotpath
func (s *solver) asyncAccept(b *batch) {
	e := s.eng
	wpk := stateWords(s.in.K)
	for i := 0; i < b.n; i++ {
		var from stateRef
		var mv pebble.Move
		if s.witness {
			from, mv = b.froms[i], b.moves[i]
		}
		s.applyRemote(b.words[i*wpk:(i+1)*wpk], b.costs[i], from, mv)
	}
	e.putBatch(b)
	atomic.AddInt64(&e.inflight, -1)
}

// asyncFlush ships every partially filled outgoing batch.
func (s *solver) asyncFlush() {
	for dst, b := range s.out {
		if b == nil {
			continue
		}
		s.out[dst] = nil
		if b.n > 0 {
			s.asyncShip(dst, b)
		} else {
			s.eng.putBatch(b)
		}
	}
}

// asyncShip delivers a batch to dst's inbox, draining this shard's own
// inbox while the destination is full (the same no-circular-wait
// argument as send). If the search stops first, the batch goes to the
// engine's leftover list — the receiver may already have quit, and the
// coordinator applies leftovers after the workers exit.
func (s *solver) asyncShip(dst int, b *batch) {
	e := s.eng
	atomic.AddInt64(&e.inflight, 1)
	for {
		select {
		case e.inbox[dst] <- b:
			return
		default:
		}
		if e.asyncStopped() {
			atomic.AddInt64(&e.inflight, -1)
			e.addLeftover(b)
			return
		}
		if !s.asyncDrainOne() {
			runtime.Gosched()
		}
	}
}

// asyncPark marks this shard idle and waits for new work (true), or for
// the search to end (false) — either by the quiescence this shard just
// made possible or by an early stop. The four-step check is the
// termination protocol documented at the top of the file.
func (s *solver) asyncPark() bool {
	e := s.eng
	atomic.AddInt64(&e.busy, -1)
	for {
		select {
		case b := <-e.inbox[s.shard]:
			atomic.AddInt64(&e.busy, 1)
			atomic.AddInt64(&e.activity, 1)
			s.asyncAccept(b)
			return true
		default:
		}
		if e.asyncStopped() {
			return false
		}
		a1 := atomic.LoadInt64(&e.activity)
		if atomic.LoadInt64(&e.busy) == 0 &&
			atomic.LoadInt64(&e.inflight) == 0 &&
			atomic.LoadInt64(&e.activity) == a1 {
			atomic.StoreUint32(&e.doneFlag, 1)
			return false
		}
		runtime.Gosched()
	}
}

// asyncStopped reports whether the search has ended, by proven
// quiescence or by an early-stop request.
func (e *engine) asyncStopped() bool {
	return atomic.LoadUint32(&e.doneFlag) != 0 || e.stopStatus() != StatusComplete
}

// asyncQuit hands this shard's undelivered work to the coordinator: the
// partial outgoing batches and whatever still sits in its inbox. Nothing
// is applied here — the coordinator does that on quiescent memory — but
// nothing is dropped either, which is what keeps the anytime LowerBound
// admissible.
func (s *solver) asyncQuit() {
	e := s.eng
	for dst, b := range s.out {
		if b == nil {
			continue
		}
		s.out[dst] = nil
		if b.n > 0 {
			e.addLeftover(b)
		} else {
			e.putBatch(b)
		}
	}
	for {
		select {
		case b := <-e.inbox[s.shard]:
			e.addLeftover(b)
		default:
			return
		}
	}
}

// addLeftover parks a batch for the coordinator's post-exit sweep.
func (e *engine) addLeftover(b *batch) {
	e.leftMu.Lock()
	e.leftover = append(e.leftover, b)
	e.leftMu.Unlock()
}

// applyLeftovers drains every inbox and the leftover list and applies
// the batches to their owning shards. Runs on the coordinator after all
// workers exited, so the memory is quiescent — but the leftover list
// is still touched under leftMu (uncontended here, essentially free)
// so its guarded-by discipline holds at every site rather than relying
// on the join for visibility. The destination shard is recomputed from
// each candidate's words — ownerOf is a pure function, so this matches
// where the batch was headed.
func (e *engine) applyLeftovers() {
	e.leftMu.Lock()
	defer e.leftMu.Unlock()
	for i := range e.inbox {
		if e.inbox[i] == nil {
			continue
		}
		for drained := false; !drained; {
			select {
			case b := <-e.inbox[i]:
				e.leftover = append(e.leftover, b)
			default:
				drained = true
			}
		}
	}
	wpk := stateWords(e.in.K)
	for _, b := range e.leftover {
		for i := 0; i < b.n; i++ {
			w := b.words[i*wpk : (i+1)*wpk]
			dst := e.shards[e.ownerOf(w)]
			var from stateRef
			var mv pebble.Move
			if e.cfg.Witness {
				from, mv = b.froms[i], b.moves[i]
			}
			dst.applyRemote(w, b.costs[i], from, mv)
		}
		e.putBatch(b)
	}
	e.leftover = nil
}
