package opt

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/pebble"
)

// These tests pin the anytime contract: an interrupted search must
// return a usable partial result — an incumbent/lower-bound bracket for
// Exact, an explicit indeterminate verdict for the zero-I/O deciders —
// behind a typed error, and the partial trajectory must stay
// byte-identical between the open-addressing table and the map-backed
// oracle.

// incumbentOK checks the bracket invariants of a partial Result against
// the proven optimum of a completed run.
func incumbentOK(t *testing.T, tag string, res *Result, optCost int64) {
	t.Helper()
	if res == nil {
		t.Fatalf("%s: partial stop returned nil result", tag)
	}
	if !res.Status.Partial() {
		t.Errorf("%s: status %v is not partial", tag, res.Status)
	}
	if res.LowerBound > optCost {
		t.Errorf("%s: lower bound %d exceeds OPT %d (inadmissible)", tag, res.LowerBound, optCost)
	}
	if res.Incumbent >= 0 {
		if res.Incumbent < optCost {
			t.Errorf("%s: incumbent %d beats OPT %d (replay would be invalid)", tag, res.Incumbent, optCost)
		}
		if res.LowerBound > res.Incumbent {
			t.Errorf("%s: inverted bracket [%d, %d]", tag, res.LowerBound, res.Incumbent)
		}
		if res.Cost != res.Incumbent {
			t.Errorf("%s: partial Cost %d ≠ Incumbent %d", tag, res.Cost, res.Incumbent)
		}
	}
}

func TestExactAnytimeBudget(t *testing.T) {
	g := gen.Grid2D(2, 3)
	in := pebble.MustInstance(g, pebble.MPP(2, 3, 2))
	full, err := Exact(in, budget)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != StatusComplete || full.Status.Partial() {
		t.Fatalf("complete run has status %v", full.Status)
	}
	if full.Incumbent != full.Cost || full.LowerBound != full.Cost {
		t.Fatalf("complete run bracket [%d, %d] should collapse to cost %d",
			full.LowerBound, full.Incumbent, full.Cost)
	}

	// Increasing budgets: every stop is typed, every bracket valid, the
	// incumbent never worsens and the lower bound never retreats as the
	// search sees more (the traversal is deterministic, so a larger
	// budget explores a superset).
	prevInc := int64(-1)
	prevLB := int64(0)
	for _, max := range []int{1, 2, 10, 100, 1000} {
		res, err := Exact(in, max)
		if err == nil {
			if max >= full.States {
				break
			}
			t.Fatalf("budget %d (< %d states) unexpectedly completed", max, full.States)
		}
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: error %v does not wrap ErrBudget", max, err)
		}
		if !IsPartial(err) {
			t.Fatalf("budget %d: IsPartial false for %v", max, err)
		}
		if res.Status != StatusBudget {
			t.Errorf("budget %d: status %v, want StatusBudget", max, res.Status)
		}
		incumbentOK(t, "budget", res, full.Cost)
		if prevInc >= 0 && (res.Incumbent < 0 || res.Incumbent > prevInc) {
			t.Errorf("budget %d: incumbent worsened %d → %d", max, prevInc, res.Incumbent)
		}
		if res.LowerBound < prevLB {
			t.Errorf("budget %d: lower bound retreated %d → %d", max, prevLB, res.LowerBound)
		}
		prevInc, prevLB = res.Incumbent, res.LowerBound
	}

	// Witness mode under budget: any strategy handed back must replay to
	// the incumbent, not to garbage.
	res, err := ExactWithStrategy(in, 200)
	if errors.Is(err, ErrBudget) && res.Strategy != nil {
		rep, rerr := pebble.Replay(in, res.Strategy)
		if rerr != nil {
			t.Fatalf("partial witness does not replay: %v", rerr)
		}
		if rep.Cost != res.Incumbent {
			t.Errorf("partial witness replays to %d, incumbent says %d", rep.Cost, res.Incumbent)
		}
	}
}

func TestExactAnytimeCancel(t *testing.T) {
	g := gen.Grid2D(2, 3)
	in := pebble.MustInstance(g, pebble.MPP(2, 3, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExactCtx(ctx, in, budget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: error %v does not wrap context.Canceled", err)
	}
	if !IsPartial(err) {
		t.Fatalf("cancelled ctx: IsPartial false for %v", err)
	}
	if res == nil || res.Status != StatusCanceled {
		t.Fatalf("cancelled ctx: result %+v, want StatusCanceled", res)
	}
	if res.Incumbent != -1 {
		t.Errorf("cancelled-before-start run found incumbent %d", res.Incumbent)
	}
}

// TestExactOraclePartialEquivalence locks the anytime trajectory itself
// to the oracle: an early budget stop must leave both state tables at a
// byte-identical (Cost, States, Incumbent, LowerBound, Status).
func TestExactOraclePartialEquivalence(t *testing.T) {
	g := gen.Grid2D(3, 3)
	in := pebble.MustInstance(g, pebble.MPP(1, 4, 2))
	for _, max := range []int{1, 5, 50, 500, 5000} {
		got, gerr := Exact(in, max)
		want, werr := ExactOracle(in, max)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("budget %d: table err %v, oracle err %v", max, gerr, werr)
		}
		if got.Cost != want.Cost || got.States != want.States ||
			got.Incumbent != want.Incumbent || got.LowerBound != want.LowerBound ||
			got.Status != want.Status {
			t.Errorf("budget %d: table (cost %d, states %d, inc %d, lb %d, %v) ≠ oracle (cost %d, states %d, inc %d, lb %d, %v)",
				max, got.Cost, got.States, got.Incumbent, got.LowerBound, got.Status,
				want.Cost, want.States, want.Incumbent, want.LowerBound, want.Status)
		}
	}
}

func TestZeroIOAnytime(t *testing.T) {
	g := gen.Pyramid(4)
	const r = 5 // tight: forces real search before the infeasible verdict

	res, err := ZeroIO(g, r, 1)
	if !errors.Is(err, ErrBudget) || !IsPartial(err) {
		t.Fatalf("budget 1: error %v does not wrap ErrBudget", err)
	}
	if res == nil || res.Verdict != VerdictIndeterminate || res.Status != StatusBudget {
		t.Fatalf("budget 1: result %+v, want indeterminate/StatusBudget", res)
	}
	if res.Feasible || res.Order != nil {
		t.Errorf("budget 1: partial result claims a witness: %+v", res)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = ZeroIOCtx(ctx, g, r, budget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: error %v does not wrap context.Canceled", err)
	}
	if res == nil || res.Verdict != VerdictIndeterminate || res.Status != StatusCanceled {
		t.Fatalf("cancelled ctx: result %+v, want indeterminate/StatusCanceled", res)
	}

	// Complete runs carry definite verdicts both ways.
	res, err = ZeroIO(g, r, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictInfeasible || res.Status != StatusComplete {
		t.Fatalf("pyramid4 r=%d: %+v, want infeasible/complete", r, res)
	}
	res, err = ZeroIO(g, r+1, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFeasible || !res.Feasible {
		t.Fatalf("pyramid4 r=%d: %+v, want feasible", r+1, res)
	}
}

func TestZeroIOBigAnytime(t *testing.T) {
	g := gen.Pyramid(4)
	const r = 5

	res, err := ZeroIOBig(g, r, 1)
	if !errors.Is(err, ErrBudget) || !IsPartial(err) {
		t.Fatalf("budget 1: error %v does not wrap ErrBudget", err)
	}
	if res == nil || res.Verdict != VerdictIndeterminate || res.Status != StatusBudget {
		t.Fatalf("budget 1: result %+v, want indeterminate/StatusBudget", res)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = ZeroIOBigCtx(ctx, g, r, budget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: error %v does not wrap context.Canceled", err)
	}
	if res == nil || res.Verdict != VerdictIndeterminate || res.Status != StatusCanceled {
		t.Fatalf("cancelled ctx: result %+v, want indeterminate/StatusCanceled", res)
	}

	// Small-mask and bitset variants agree on the decision and on the
	// explored-state count for an in-capacity DAG.
	small, err := ZeroIO(g, r, budget)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ZeroIOBig(g, r, budget)
	if err != nil {
		t.Fatal(err)
	}
	if small.Feasible != big.Feasible {
		t.Errorf("variants disagree: word %v, bitset %v", small.Feasible, big.Feasible)
	}
}

// TestZeroIOWordBoundary sweeps the single-word capacity edge: n = 61
// and 62 stay on the uint64-mask fast path, n = 63 and 64 must silently
// dispatch to the bitset variant and still decide correctly.
func TestZeroIOWordBoundary(t *testing.T) {
	for _, n := range []int{61, 62, 63, 64} {
		g := gen.Chain(n)
		// r = 2 suffices for a chain (live set is the frontier node plus
		// its successor); r = 1 cannot even hold an edge.
		res, err := ZeroIO(g, 2, budget)
		if err != nil {
			t.Fatalf("chain%d r=2: %v", n, err)
		}
		if !res.Feasible || res.Verdict != VerdictFeasible {
			t.Errorf("chain%d r=2: %+v, want feasible", n, res)
		}
		if len(res.Order) != n {
			t.Errorf("chain%d: witness order has %d nodes", n, len(res.Order))
		}
		if s := ZeroIOStrategy(g, res.Order); s != nil {
			in := pebble.MustInstance(g, pebble.OneShotSPP(2, 1))
			rep, rerr := pebble.Replay(in, s)
			if rerr != nil {
				t.Errorf("chain%d: witness strategy invalid: %v", n, rerr)
			} else if rep.IOMoves != 0 {
				t.Errorf("chain%d: witness strategy pays %d I/O moves", n, rep.IOMoves)
			}
		}
		res2, err := ZeroIO(g, 1, budget)
		if err != nil {
			t.Fatalf("chain%d r=1: %v", n, err)
		}
		if res2.Feasible || res2.Verdict != VerdictInfeasible {
			t.Errorf("chain%d r=1: %+v, want infeasible", n, res2)
		}
		// Above capacity the dispatch target is ZeroIOBig; the two entry
		// points must agree exactly.
		if n > zeroIOWordCap {
			big, err := ZeroIOBig(g, 2, budget)
			if err != nil {
				t.Fatal(err)
			}
			if big.Feasible != res.Feasible || big.States != res.States || !sameOrder(big.Order, res.Order) {
				t.Errorf("chain%d: ZeroIO dispatch (states %d) ≠ ZeroIOBig (states %d)",
					n, res.States, big.States)
			}
		}
	}
}
