package opt

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// ZeroIOResult reports the outcome of the zero-I/O decision procedure.
type ZeroIOResult struct {
	Feasible bool
	// Order is a witness compute order when Feasible (nil otherwise).
	Order []dag.NodeID
	// States is the number of distinct computed-sets explored.
	States int
}

// ZeroIO decides whether a one-shot SPP pebbling of I/O cost 0 exists for
// the DAG with fast memory r — the NP-hard decision problem at the heart
// of Theorem 2.
//
// A zero-cost one-shot pebbling uses no blue pebbles at all, and (as the
// proof of Theorem 2 observes) deletions are forced: a red pebble should
// be deleted exactly when all out-neighbors have been computed, except on
// sinks, which must keep their pebble to the end. A pebbling is therefore
// exactly a permutation of the compute steps, and the memory bound must
// hold after every prefix, where the pebbles alive after a prefix C are
//
//	live(C) = {v ∈ C : some successor ∉ C} ∪ {v ∈ C : v is a sink}.
//
// The search memoizes failed computed-sets; worst-case exponential, as it
// must be unless P = NP. maxStates bounds the number of distinct sets
// explored; exceeding it returns ErrBudget.
func ZeroIO(g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	n := g.N()
	if n > 62 {
		return nil, fmt.Errorf("opt: ZeroIO supports at most 62 nodes, got %d", n)
	}
	if n == 0 {
		return &ZeroIOResult{Feasible: true}, nil
	}

	predMask := make([]uint64, n)
	succMask := make([]uint64, n)
	var sinkMask uint64
	for v := 0; v < n; v++ {
		for _, u := range g.Pred(dag.NodeID(v)) {
			predMask[v] |= 1 << uint(u)
		}
		for _, w := range g.Succ(dag.NodeID(v)) {
			succMask[v] |= 1 << uint(w)
		}
	}
	for _, v := range g.Sinks() {
		sinkMask |= 1 << uint(v)
	}
	full := uint64(1)<<uint(n) - 1

	// liveSet returns the mask of pebbles alive after computing exactly
	// the set C (with forced deletions applied). An incremental version
	// would be faster, but the closed form keeps the search obviously
	// correct; instances here are small by NP-hardness.
	liveSet := func(c uint64) uint64 {
		live := c & sinkMask
		rest := c &^ sinkMask
		for rest != 0 {
			v := trailingZeros(rest)
			rest &= rest - 1
			if succMask[v]&^c != 0 {
				live |= 1 << uint(v)
			}
		}
		return live
	}

	failed := hashtab.New(1, 256)
	var failedKey [1]uint64
	states := 0
	var order []dag.NodeID
	var rec func(c uint64) (bool, error)
	rec = func(c uint64) (bool, error) {
		if c == full {
			return true, nil
		}
		failedKey[0] = c
		if _, isFailed := failed.Find(failedKey[:]); isFailed {
			return false, nil
		}
		states++
		if states > maxStates {
			return false, fmt.Errorf("%w after %d states", ErrBudget, states)
		}
		live := liveSet(c)
		for v := 0; v < n; v++ {
			bit := uint64(1) << uint(v)
			if c&bit != 0 || predMask[v]&^c != 0 {
				continue
			}
			// Peak occupancy while computing v: everything alive before
			// the step (this includes all predecessors of v, which have
			// the uncomputed successor v) plus v's fresh pebble; forced
			// deletions only happen after the step.
			if popcount(live|bit) > r {
				continue
			}
			nc := c | bit
			ok, err := rec(nc)
			if err != nil {
				return false, err
			}
			if ok {
				order = append(order, dag.NodeID(v))
				return true, nil
			}
		}
		failedKey[0] = c
		failed.Insert(failedKey[:])
		return false, nil
	}

	ok, err := rec(0)
	if err != nil {
		return nil, err
	}
	res := &ZeroIOResult{Feasible: ok, States: states}
	if ok {
		// order was accumulated in reverse (post-order of the successful
		// spine); reverse it into execution order.
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		res.Order = order
	}
	return res, nil
}

// ZeroIOStrategy converts a witness order from ZeroIO into an executable
// one-shot SPP strategy (computes in order, deleting pebbles as soon as
// they die), suitable for validation via pebble.Replay.
func ZeroIOStrategy(g *dag.Graph, order []dag.NodeID) *pebble.Strategy {
	n := g.N()
	remSucc := make([]int, n)
	isSink := make([]bool, n)
	for v := 0; v < n; v++ {
		remSucc[v] = g.OutDegree(dag.NodeID(v))
	}
	for _, v := range g.Sinks() {
		isSink[v] = true
	}
	s := &pebble.Strategy{}
	for _, v := range order {
		s.Append(pebble.Compute(pebble.At(0, v)))
		for _, u := range g.Pred(v) {
			remSucc[u]--
			if remSucc[u] == 0 && !isSink[u] {
				s.Append(pebble.Delete(pebble.At(0, u)))
			}
		}
	}
	return s
}
