package opt

import (
	"context"

	"repro/internal/dag"
	"repro/internal/hashtab"
	"repro/internal/pebble"
)

// ZeroIOResult reports the outcome of the zero-I/O decision procedure.
type ZeroIOResult struct {
	// Feasible is true when a witness was found. On a partial run it is
	// false but means "not decided" — check Verdict, not this field, when
	// the search may have stopped early.
	Feasible bool
	// Verdict is the three-valued answer: feasible, infeasible, or
	// indeterminate when the search stopped on budget or cancellation.
	Verdict Verdict
	// Order is a witness compute order when feasible (nil otherwise).
	Order []dag.NodeID
	// States is the number of distinct computed-sets explored, including
	// the ones explored before an early stop.
	States int
	// Status reports whether the search completed or why it stopped.
	Status Status
}

// ZeroIO decides whether a one-shot SPP pebbling of I/O cost 0 exists for
// the DAG with fast memory r — the NP-hard decision problem at the heart
// of Theorem 2.
//
// A zero-cost one-shot pebbling uses no blue pebbles at all, and (as the
// proof of Theorem 2 observes) deletions are forced: a red pebble should
// be deleted exactly when all out-neighbors have been computed, except on
// sinks, which must keep their pebble to the end. A pebbling is therefore
// exactly a permutation of the compute steps, and the memory bound must
// hold after every prefix, where the pebbles alive after a prefix C are
//
//	live(C) = {v ∈ C : some successor ∉ C} ∪ {v ∈ C : v is a sink}.
//
// The search memoizes failed computed-sets; worst-case exponential, as it
// must be unless P = NP. maxStates bounds the number of distinct sets
// explored; exceeding it returns a partial result (explored-state count,
// indeterminate verdict) plus an error wrapping ErrBudget.
//
// DAGs beyond the single-word mask capacity (62 nodes) are dispatched to
// the bitset-backed ZeroIOBig automatically; the two variants decide the
// same predicate.
func ZeroIO(g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ZeroIOCtx
	return ZeroIOCtx(context.Background(), g, r, maxStates)
}

// ZeroIOCtx is ZeroIO honoring a context: the search polls ctx and stops
// with an indeterminate partial result when it is canceled or its
// deadline passes.
func ZeroIOCtx(ctx context.Context, g *dag.Graph, r int, maxStates int) (*ZeroIOResult, error) {
	n := g.N()
	if n > zeroIOWordCap {
		// A single uint64 mask cannot hold the computed-set; fall through
		// to the bitset variant instead of truncating or refusing.
		return zeroIOBig(ctx, g, r, maxStates, nil)
	}
	if n == 0 {
		return &ZeroIOResult{Feasible: true, Verdict: VerdictFeasible}, nil
	}

	predMask := make([]uint64, n)
	succMask := make([]uint64, n)
	var sinkMask uint64
	for v := 0; v < n; v++ {
		for _, u := range g.Pred(dag.NodeID(v)) {
			predMask[v] |= 1 << uint(u)
		}
		for _, w := range g.Succ(dag.NodeID(v)) {
			succMask[v] |= 1 << uint(w)
		}
	}
	for _, v := range g.Sinks() {
		sinkMask |= 1 << uint(v)
	}
	full := uint64(1)<<uint(n) - 1

	// liveSet returns the mask of pebbles alive after computing exactly
	// the set C (with forced deletions applied). An incremental version
	// would be faster, but the closed form keeps the search obviously
	// correct; instances here are small by NP-hardness.
	liveSet := func(c uint64) uint64 {
		live := c & sinkMask
		rest := c &^ sinkMask
		for rest != 0 {
			v := trailingZeros(rest)
			rest &= rest - 1
			if succMask[v]&^c != 0 {
				live |= 1 << uint(v)
			}
		}
		return live
	}

	failed := hashtab.New(1, 256)
	var failedKey [1]uint64
	states := 0
	var order []dag.NodeID
	var rec func(c uint64) (bool, error)
	rec = func(c uint64) (bool, error) {
		if c == full {
			return true, nil
		}
		failedKey[0] = c
		if _, isFailed := failed.Find(failedKey[:]); isFailed {
			return false, nil
		}
		states++
		if states > maxStates {
			return false, budgetErr(states)
		}
		if states&ctxCheckMask == 0 && ctx.Err() != nil {
			return false, cancelErr(ctx, states)
		}
		live := liveSet(c)
		for v := 0; v < n; v++ {
			bit := uint64(1) << uint(v)
			if c&bit != 0 || predMask[v]&^c != 0 {
				continue
			}
			// Peak occupancy while computing v: everything alive before
			// the step (this includes all predecessors of v, which have
			// the uncomputed successor v) plus v's fresh pebble; forced
			// deletions only happen after the step.
			if popcount(live|bit) > r {
				continue
			}
			nc := c | bit
			ok, err := rec(nc)
			if err != nil {
				return false, err
			}
			if ok {
				order = append(order, dag.NodeID(v))
				return true, nil
			}
		}
		failedKey[0] = c
		failed.Insert(failedKey[:])
		return false, nil
	}

	if err := ctx.Err(); err != nil {
		return &ZeroIOResult{Verdict: VerdictIndeterminate, Status: StatusCanceled}, cancelErr(ctx, 0)
	}
	ok, err := rec(0)
	if err != nil {
		return &ZeroIOResult{States: states, Verdict: VerdictIndeterminate, Status: statusOfStop(err)}, err
	}
	res := &ZeroIOResult{Feasible: ok, States: states, Verdict: verdictOf(ok)}
	if ok {
		// order was accumulated in reverse (post-order of the successful
		// spine); reverse it into execution order.
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		res.Order = order
	}
	return res, nil
}

// zeroIOWordCap is the largest node count the single-uint64-mask solver
// accepts. 62 leaves headroom below the 64-bit word so `1<<n` arithmetic
// can never overflow, matching the Exact solver's packed-state cap;
// larger DAGs auto-dispatch to the bitset variant.
const zeroIOWordCap = 62

// ZeroIOStrategy converts a witness order from ZeroIO into an executable
// one-shot SPP strategy (computes in order, deleting pebbles as soon as
// they die), suitable for validation via pebble.Replay.
func ZeroIOStrategy(g *dag.Graph, order []dag.NodeID) *pebble.Strategy {
	n := g.N()
	remSucc := make([]int, n)
	isSink := make([]bool, n)
	for v := 0; v < n; v++ {
		remSucc[v] = g.OutDegree(dag.NodeID(v))
	}
	for _, v := range g.Sinks() {
		isSink[v] = true
	}
	s := &pebble.Strategy{}
	for _, v := range order {
		s.Append(pebble.Compute(pebble.At(0, v)))
		for _, u := range g.Pred(v) {
			remSucc[u]--
			if remSucc[u] == 0 && !isSink[u] {
				s.Append(pebble.Delete(pebble.At(0, u)))
			}
		}
	}
	return s
}
