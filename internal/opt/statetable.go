package opt

// This file holds the allocation-free machinery under the exact solver:
// the packed word layout of a search state and the monotone bucket
// priority queue that replaces container/heap.
//
// A state is k+2 consecutive uint64 words — red[0..k-1], blue, computed —
// stored directly as a hashtab key, so the table's arena doubles as the
// state store and a state's identity is its dense table index. No string
// key, no per-state struct, no boxing.

// stateWords returns the packed width of a state for k processors.
func stateWords(k int) int { return k + 2 }

// canonicalizeRed sorts the red words in place so permuting processor
// shades collapses to one state (insertion sort; k is tiny). Only sound
// when no move sequence must be reconstructed.
//
//mpp:hotpath
func canonicalizeRed(red []uint64) {
	for i := 1; i < len(red); i++ {
		for j := i; j > 0 && red[j] < red[j-1]; j-- {
			red[j], red[j-1] = red[j-1], red[j]
		}
	}
}

// bqEntry is one queue element: a state's table index plus the g-cost it
// was pushed with (stale entries are detected by comparing g to dist).
type bqEntry struct {
	idx int32
	g   int64
}

// bucketQueue is a monotone bucket (calendar) priority queue over integer
// f-values. A* with an admissible, consistent heuristic (every mode of
// the heuristic stack qualifies) pops f in non-decreasing order, so a
// single forward-moving cursor over an array of buckets replaces the
// binary heap: push is an append, pop is a slice shrink, and nothing is
// boxed through an interface. The wave-synchronous driver consumes ties
// within a bucket in push (FIFO) order via takeBucket, which is
// deterministic — the oracle solvers share this queue so expansion order
// (hence States counts) matches exactly.
type bucketQueue struct {
	buckets [][]bqEntry
	cur     int // lowest possibly-non-empty f; only moves forward in pop
	size    int
}

// growBuckets widens the bucket array to cover f-value fi. The I/O-aware
// heuristics scale f with g, so the key range is up to g times wider than
// under the bare compute floor; geometric growth with headroom keeps this
// off the hot path (it runs O(log maxF) times per search).
func (q *bucketQueue) growBuckets(fi int) {
	want := 2 * len(q.buckets)
	if want <= fi {
		want = fi + 1
	}
	q.buckets = append(q.buckets, make([][]bqEntry, want-len(q.buckets))...)
}

//mpp:hotpath
func (q *bucketQueue) push(f int64, idx int32, g int64) {
	fi := int(f)
	if fi >= len(q.buckets) {
		q.growBuckets(fi)
	}
	if fi < q.cur {
		// Unreachable with a consistent heuristic; kept so the queue
		// stays correct (not just monotone-correct) under any heuristic.
		q.cur = fi
	}
	q.buckets[fi] = append(q.buckets[fi], bqEntry{idx: idx, g: g})
	q.size++
}

// takeBucket removes every entry currently in bucket f and appends them
// to into[:0], returning the slice. The wave-synchronous driver drains a
// whole f-layer bucket at once: copying into a caller-owned worklist is
// what lets same-f candidates generated mid-wave land in the (now empty)
// bucket again and form the next wave instead of extending this one.
// Entries come back in push (FIFO) order. Buckets below the queue cursor
// are already empty, so f outside the allocated range returns into[:0].
//
//mpp:hotpath
func (q *bucketQueue) takeBucket(f int64, into []bqEntry) []bqEntry {
	into = into[:0]
	fi := int(f)
	if fi >= len(q.buckets) {
		return into
	}
	b := q.buckets[fi]
	if len(b) == 0 {
		return into
	}
	into = append(into, b...)
	q.buckets[fi] = b[:0]
	q.size -= len(into)
	return into
}

// popBucket removes and returns one entry from bucket f (false when the
// bucket is empty or out of range). The asynchronous engine pops one
// entry at a time instead of draining whole waves; within a bucket the
// order is LIFO, which keeps the speculative search depth-first across
// an f-plateau — successors of the newest same-f state are tried first,
// reaching goal states (and hence incumbent pruning) sooner.
//
//mpp:hotpath
func (q *bucketQueue) popBucket(f int64) (bqEntry, bool) {
	fi := int(f)
	if fi >= len(q.buckets) || len(q.buckets[fi]) == 0 {
		return bqEntry{}, false
	}
	b := q.buckets[fi]
	ent := b[len(b)-1]
	q.buckets[fi] = b[:len(b)-1]
	q.size--
	return ent, true
}

// reset empties the queue while keeping every bucket's capacity, so a
// pooled solver's queue is reusable across searches without reallocating.
func (q *bucketQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.cur = 0
	q.size = 0
}

// hasBucket reports whether bucket f currently holds any entry (live or
// stale) — the wave driver's "does this layer need another wave" test.
func (q *bucketQueue) hasBucket(f int64) bool {
	fi := int(f)
	return fi < len(q.buckets) && len(q.buckets[fi]) > 0
}

// minF returns the smallest f-value currently queued (false when empty).
// With the consistent heuristic this is an admissible lower bound on any
// solution still undiscovered — the anytime bound reported by an early
// stop. Advancing cur past drained buckets is safe: f only grows.
//
//mpp:hotpath
func (q *bucketQueue) minF() (int64, bool) {
	if q.size == 0 {
		return 0, false
	}
	for len(q.buckets[q.cur]) == 0 {
		q.cur++
	}
	return int64(q.cur), true
}
