package pebble

import (
	"fmt"

	"repro/internal/dag"
)

// Builder incrementally constructs a Strategy while tracking the resulting
// configuration, so hand-crafted gadget strategies (the ones the paper's
// proofs describe) can be written as straight-line code. Builder methods
// panic on rule violations — a violation in a proof-encoded strategy is a
// programming error — but every strategy produced here is additionally
// validated by Replay in tests and experiments.
//
// The Builder mirrors each Red set with a cached cardinality so the
// memory-bound check and FreeSlots are O(1) instead of a popcount over
// n/64 words — at 10^6 nodes the popcount would dominate every move.
type Builder struct {
	in       *Instance
	cfg      *Config
	s        Strategy
	redCount []int // redCount[p] == cfg.Red[p].Count(), maintained exactly
}

// NewBuilder returns a Builder over the given instance starting from the
// empty configuration.
func NewBuilder(in *Instance) *Builder {
	return &Builder{
		in:       in,
		cfg:      NewConfig(in.Graph.N(), in.K),
		redCount: make([]int, in.K),
	}
}

// Config returns the current configuration (live; do not modify).
func (b *Builder) Config() *Config { return b.cfg }

// Strategy returns the accumulated strategy.
func (b *Builder) Strategy() *Strategy { return &Strategy{Moves: b.s.Moves} }

// Raw appends a move without tracking; use only for moves whose effect is
// re-established by later tracked moves. Most callers should not need it.
func (b *Builder) Raw(m Move) { b.s.Append(m) }

// fail panics with the builder's diagnostic: a rule violation in a
// proof-encoded strategy is a programmer error (see the type comment),
// and every builder-produced strategy is re-validated by Replay anyway.
func (b *Builder) fail(format string, args ...any) {
	panic(fmt.Sprintf("pebble.Builder: "+format, args...))
}

// addRed inserts v into shade p's red set, keeping the cached count exact.
func (b *Builder) addRed(p int, v dag.NodeID) {
	if b.cfg.Red[p].TestAndSet(int(v)) {
		b.redCount[p]++
	}
}

// removeRed deletes v from shade p's red set, keeping the cached count
// exact; reports whether v was present.
func (b *Builder) removeRed(p int, v dag.NodeID) bool {
	if b.cfg.Red[p].TestAndClear(int(v)) {
		b.redCount[p]--
		return true
	}
	return false
}

// Compute issues a compute move: processor p computes each node in vs
// (one move per node when len(vs) > 1 would break injectivity, so this
// issues len(vs) sequential moves, all on p).
func (b *Builder) Compute(p int, vs ...dag.NodeID) {
	for _, v := range vs {
		for _, u := range b.in.Graph.Pred(v) {
			if !b.cfg.Red[p].Contains(int(u)) {
				b.fail("compute v%d on p%d: predecessor v%d not red", v, p, u)
			}
		}
		b.addRed(p, v)
		if b.redCount[p] > b.in.R {
			b.fail("compute v%d on p%d: memory bound r=%d exceeded", v, p, b.in.R)
		}
		b.s.Append(Compute(At(p, v)))
	}
}

// ComputeParallel issues one compute move in which each listed action's
// processor computes its node simultaneously.
func (b *Builder) ComputeParallel(actions ...Action) {
	for i, a := range actions {
		for j := 0; j < i; j++ {
			if actions[j].Proc == a.Proc {
				b.fail("parallel compute selects p%d twice", a.Proc)
			}
		}
		for _, u := range b.in.Graph.Pred(a.Node) {
			if !b.cfg.Red[a.Proc].Contains(int(u)) {
				b.fail("parallel compute v%d on p%d: predecessor v%d not red", a.Node, a.Proc, u)
			}
		}
	}
	for _, a := range actions {
		b.addRed(a.Proc, a.Node)
		if b.redCount[a.Proc] > b.in.R {
			b.fail("parallel compute: p%d exceeds r=%d", a.Proc, b.in.R)
		}
	}
	b.s.Append(Compute(actions...))
}

// Write issues one write move storing each action's node to slow memory.
func (b *Builder) Write(actions ...Action) {
	for _, a := range actions {
		if !b.cfg.Red[a.Proc].Contains(int(a.Node)) {
			b.fail("write v%d: not red on p%d", a.Node, a.Proc)
		}
		b.cfg.Blue.Add(int(a.Node))
	}
	b.s.Append(Write(actions...))
}

// Read issues one read move loading each action's node from slow memory.
func (b *Builder) Read(actions ...Action) {
	for _, a := range actions {
		if !b.cfg.Blue.Contains(int(a.Node)) {
			b.fail("read v%d: no blue pebble", a.Node)
		}
		b.addRed(a.Proc, a.Node)
		if b.redCount[a.Proc] > b.in.R {
			b.fail("read v%d: p%d exceeds r=%d", a.Node, a.Proc, b.in.R)
		}
	}
	b.s.Append(Read(actions...))
}

// Delete issues one delete move removing each action's pebble.
func (b *Builder) Delete(actions ...Action) {
	for _, a := range actions {
		if a.Proc == BlueProc {
			if !b.cfg.Blue.Contains(int(a.Node)) {
				b.fail("delete blue v%d: absent", a.Node)
			}
			b.cfg.Blue.Remove(int(a.Node))
			continue
		}
		if !b.removeRed(a.Proc, a.Node) {
			b.fail("delete v%d: not red on p%d", a.Node, a.Proc)
		}
	}
	b.s.Append(Delete(actions...))
}

// DropRed deletes the shade-p red pebbles on vs (skipping absent ones),
// as a single free move. No-op if none present.
func (b *Builder) DropRed(p int, vs ...dag.NodeID) {
	var acts []Action
	for _, v := range vs {
		if b.removeRed(p, v) {
			acts = append(acts, At(p, v))
		}
	}
	if len(acts) > 0 {
		b.s.Append(Delete(acts...))
	}
}

// DropAllRed deletes every shade-p red pebble except those in keep.
func (b *Builder) DropAllRed(p int, keep ...dag.NodeID) {
	keepSet := map[dag.NodeID]bool{}
	for _, v := range keep {
		keepSet[v] = true
	}
	var acts []Action
	b.cfg.Red[p].ForEach(func(i int) bool {
		if !keepSet[dag.NodeID(i)] {
			acts = append(acts, At(p, dag.NodeID(i)))
		}
		return true
	})
	for _, a := range acts {
		b.removeRed(a.Proc, a.Node)
	}
	if len(acts) > 0 {
		b.s.Append(Delete(acts...))
	}
}

// EnsureRed makes v red on p: a no-op if already red, a Read if v is blue;
// panics otherwise.
func (b *Builder) EnsureRed(p int, v dag.NodeID) {
	if b.cfg.Red[p].Contains(int(v)) {
		return
	}
	if !b.cfg.Blue.Contains(int(v)) {
		b.fail("EnsureRed v%d on p%d: neither red nor blue", v, p)
	}
	b.Read(At(p, v))
}

// Save writes v to slow memory if it is not already blue.
func (b *Builder) Save(p int, v dag.NodeID) {
	if b.cfg.Blue.Contains(int(v)) {
		return
	}
	b.Write(At(p, v))
}

// FreeSlots returns r − |R^p|, the remaining fast-memory capacity of p.
func (b *Builder) FreeSlots(p int) int { return b.in.R - b.redCount[p] }
