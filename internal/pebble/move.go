package pebble

import (
	"fmt"
	"strings"

	"repro/internal/dag"
)

// OpKind identifies the transition rule a Move applies.
type OpKind uint8

const (
	// OpWrite is rule (R1-M): red → blue (store to slow memory), cost g.
	OpWrite OpKind = iota
	// OpRead is rule (R2-M): blue → red (load from slow memory), cost g.
	OpRead
	// OpCompute is rule (R3-M): place a red pebble on a node whose
	// predecessors all carry same-shade red pebbles, cost ComputeCost.
	OpCompute
	// OpDelete is rule (R4-M): remove pebbles, free.
	OpDelete
)

// String returns the rule mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpCompute:
		return "compute"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// BlueProc is the Proc value in a Delete action that removes a blue
// pebble rather than a red one.
const BlueProc = -1

// Action is one processor's part of a Move: processor Proc operates on
// node Node. In a Delete move, Proc == BlueProc removes the blue pebble on
// Node instead of a red one.
type Action struct {
	Proc int
	Node dag.NodeID
}

// Move applies one transition rule via a shaded selection of processors:
// all Actions execute simultaneously and the whole move incurs the rule's
// cost once. In Write, Read and Compute moves each processor may appear at
// most once (the selection is injective); Delete moves are unrestricted
// since they are free.
type Move struct {
	Kind    OpKind
	Actions []Action
}

// Write builds an (R1-M) move storing each (proc, node) pair's red pebble
// to slow memory.
func Write(actions ...Action) Move { return Move{Kind: OpWrite, Actions: actions} }

// Read builds an (R2-M) move loading a blue pebble into each listed
// processor's fast memory.
func Read(actions ...Action) Move { return Move{Kind: OpRead, Actions: actions} }

// Compute builds an (R3-M) move computing each (proc, node) pair.
func Compute(actions ...Action) Move { return Move{Kind: OpCompute, Actions: actions} }

// Delete builds an (R4-M) move removing the listed pebbles.
func Delete(actions ...Action) Move { return Move{Kind: OpDelete, Actions: actions} }

// At is shorthand for Action{Proc: p, Node: v}.
func At(p int, v dag.NodeID) Action { return Action{Proc: p, Node: v} }

// Blue is shorthand for a delete-blue action on v.
func Blue(v dag.NodeID) Action { return Action{Proc: BlueProc, Node: v} }

// Cost returns the cost of the move under parameters p.
func (m Move) Cost(p Params) int64 {
	switch m.Kind {
	case OpWrite, OpRead:
		return int64(p.G)
	case OpCompute:
		return int64(p.ComputeCost)
	default:
		return 0
	}
}

// String renders the move compactly, e.g. "compute[p0:v3 p1:v7]".
func (m Move) String() string {
	var b strings.Builder
	b.WriteString(m.Kind.String())
	b.WriteByte('[')
	for i, a := range m.Actions {
		if i > 0 {
			b.WriteByte(' ')
		}
		if a.Proc == BlueProc {
			fmt.Fprintf(&b, "blue:v%d", a.Node)
		} else {
			fmt.Fprintf(&b, "p%d:v%d", a.Proc, a.Node)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Strategy is a pebbling strategy: the sequence of moves applied to the
// initial (empty) configuration.
type Strategy struct {
	Moves []Move
}

// Append adds moves to the strategy.
func (s *Strategy) Append(moves ...Move) { s.Moves = append(s.Moves, moves...) }

// Len returns the number of moves.
func (s *Strategy) Len() int { return len(s.Moves) }

// Clone returns a deep copy of the strategy: mutating the copy's moves
// or action slices cannot affect s (and vice versa). A nil strategy
// clones to nil. The solve cache serves clones so a cached witness is
// never aliased by two callers.
func (s *Strategy) Clone() *Strategy {
	if s == nil {
		return nil
	}
	out := &Strategy{Moves: make([]Move, len(s.Moves))}
	for i, m := range s.Moves {
		cm := Move{Kind: m.Kind}
		if len(m.Actions) > 0 {
			cm.Actions = append([]Action(nil), m.Actions...)
		}
		out.Moves[i] = cm
	}
	return out
}

// Concat returns a new strategy running s then t.
func (s *Strategy) Concat(t *Strategy) *Strategy {
	out := &Strategy{Moves: make([]Move, 0, len(s.Moves)+len(t.Moves))}
	out.Moves = append(out.Moves, s.Moves...)
	out.Moves = append(out.Moves, t.Moves...)
	return out
}

// Cost returns the total cost of the strategy under parameters p without
// validating it (see Replay for validated cost).
func (s *Strategy) Cost(p Params) int64 {
	var c int64
	for _, m := range s.Moves {
		c += m.Cost(p)
	}
	return c
}

// String renders up to 40 moves, eliding the middle of long strategies.
func (s *Strategy) String() string {
	const limit = 40
	var b strings.Builder
	fmt.Fprintf(&b, "strategy(%d moves)", len(s.Moves))
	n := len(s.Moves)
	if n == 0 {
		return b.String()
	}
	b.WriteString(": ")
	if n <= limit {
		for i, m := range s.Moves {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(m.String())
		}
		return b.String()
	}
	for i := 0; i < limit/2; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(s.Moves[i].String())
	}
	fmt.Fprintf(&b, "; … %d elided …; ", n-limit)
	for i := n - limit/2; i < n; i++ {
		b.WriteString(s.Moves[i].String())
		if i != n-1 {
			b.WriteString("; ")
		}
	}
	return b.String()
}
