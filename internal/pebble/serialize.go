package pebble

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dag"
)

// jsonMove is the wire form of a Move: a one-letter kind plus [proc,node]
// action pairs (proc −1 encodes a blue deletion).
type jsonMove struct {
	K string     `json:"k"`
	A [][2]int32 `json:"a"`
}

var kindLetter = map[OpKind]string{
	OpWrite:   "w",
	OpRead:    "r",
	OpCompute: "c",
	OpDelete:  "d",
}

var letterKind = map[string]OpKind{
	"w": OpWrite,
	"r": OpRead,
	"c": OpCompute,
	"d": OpDelete,
}

// WriteJSON streams the strategy as one JSON array of moves.
func (s *Strategy) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	moves := make([]jsonMove, len(s.Moves))
	for i, m := range s.Moves {
		jm := jsonMove{K: kindLetter[m.Kind], A: make([][2]int32, len(m.Actions))}
		for j, a := range m.Actions {
			jm.A[j] = [2]int32{int32(a.Proc), int32(a.Node)}
		}
		moves[i] = jm
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(moves); err != nil {
		return fmt.Errorf("pebble: encoding strategy: %w", err)
	}
	return bw.Flush()
}

// ReadJSON parses a strategy written by WriteJSON. The result is not
// validated against any instance; run Replay to check it.
func ReadJSON(r io.Reader) (*Strategy, error) {
	var moves []jsonMove
	dec := json.NewDecoder(r)
	if err := dec.Decode(&moves); err != nil {
		return nil, fmt.Errorf("pebble: decoding strategy: %w", err)
	}
	s := &Strategy{}
	for i, jm := range moves {
		kind, ok := letterKind[jm.K]
		if !ok {
			return nil, fmt.Errorf("pebble: move %d has unknown kind %q", i, jm.K)
		}
		m := Move{Kind: kind, Actions: make([]Action, len(jm.A))}
		for j, a := range jm.A {
			m.Actions[j] = Action{Proc: int(a[0]), Node: dag.NodeID(a[1])}
		}
		s.Append(m)
	}
	return s, nil
}
