package pebble

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestStrategyJSONRoundTrip(t *testing.T) {
	b := dag.NewBuilder("g")
	b.AddNewChain(3)
	g := b.MustBuild()
	in := MustInstance(g, MPP(2, 2, 3))
	sb := NewBuilder(in)
	sb.Compute(0, 0)
	sb.Save(0, 0)
	sb.Read(At(1, 0))
	sb.Compute(1, 1)
	sb.DropRed(1, 0)
	sb.Compute(1, 2)
	sb.Delete(Blue(0))
	s := sb.Strategy()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip: %d moves, want %d", got.Len(), s.Len())
	}
	for i := range s.Moves {
		if s.Moves[i].String() != got.Moves[i].String() {
			t.Fatalf("move %d mismatch: %s vs %s", i, s.Moves[i], got.Moves[i])
		}
	}
	// The round-tripped strategy must still replay identically.
	want, err := Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	have, err := Replay(in, got)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cost != have.Cost || want.IOActions != have.IOActions {
		t.Fatal("round-tripped strategy replays differently")
	}
}

func TestStrategyJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"k":"x","a":[[0,0]]}]`)); err == nil {
		t.Error("unknown kind accepted")
	}
	// Valid JSON, invalid semantics: replay is the gatekeeper.
	s, err := ReadJSON(strings.NewReader(`[{"k":"c","a":[[0,99]]}]`))
	if err != nil {
		t.Fatal(err)
	}
	b := dag.NewBuilder("g")
	b.AddNewChain(2)
	in := MustInstance(b.MustBuild(), MPP(1, 2, 1))
	if _, err := Replay(in, s); err == nil {
		t.Error("out-of-range strategy passed replay")
	}
}
