package pebble

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dag"
)

// fig1 builds the example DAG of Figure 1:
//
//	v1,v2 → v3;  (two fresh sources) → v4;  v3,v4 → v5
//	(mirror subtree) → v6;  v5,v6 → v7
//
// Node IDs: v1=0 v2=1 v3=2 a=3 b=4 v4=5 v5=6 c=7 d=8 e=9 f=10 g=11 h=12
// We re-create it exactly as the paper describes: two binary subtrees of
// depth 2 rooted at v5 and v6, joined at v7.
func fig1(t testing.TB) (*dag.Graph, map[string]dag.NodeID) {
	b := dag.NewBuilder("fig1")
	ids := map[string]dag.NodeID{}
	add := func(name string) dag.NodeID {
		id := b.AddLabeledNode(name)
		ids[name] = id
		return id
	}
	v1, v2 := add("v1"), add("v2")
	v3 := add("v3")
	b.AddEdge(v1, v3)
	b.AddEdge(v2, v3)
	u1, u2 := add("u1"), add("u2")
	v4 := add("v4")
	b.AddEdge(u1, v4)
	b.AddEdge(u2, v4)
	v5 := add("v5")
	b.AddEdge(v3, v5)
	b.AddEdge(v4, v5)
	// mirror subtree rooted at v6
	w1, w2 := add("w1"), add("w2")
	x3 := add("x3")
	b.AddEdge(w1, x3)
	b.AddEdge(w2, x3)
	y1, y2 := add("y1"), add("y2")
	x4 := add("x4")
	b.AddEdge(y1, x4)
	b.AddEdge(y2, x4)
	v6 := add("v6")
	b.AddEdge(x3, v6)
	b.AddEdge(x4, v6)
	v7 := add("v7")
	b.AddEdge(v5, v7)
	b.AddEdge(v6, v7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

// pebbleSubtree pebbles one fig1 subtree (root with children c1, c2 whose
// own children are the four sources) on processor p with r=3, writing the
// intermediate child to slow memory exactly as the paper's walkthrough
// does. Leaves a red pebble on root; uses 2 I/O moves.
func pebbleSubtree(b *Builder, p int, srcs [4]dag.NodeID, c1, c2, root dag.NodeID) {
	b.Compute(p, srcs[0], srcs[1])
	b.Compute(p, c1)
	b.DropRed(p, srcs[0], srcs[1])
	b.Save(p, c1) // I/O #1
	b.DropRed(p, c1)
	b.Compute(p, srcs[2], srcs[3])
	b.Compute(p, c2)
	b.DropRed(p, srcs[2], srcs[3])
	b.EnsureRed(p, c1) // I/O #2
	b.Compute(p, root)
	b.DropRed(p, c1, c2)
}

// TestFig1SingleProcessor reproduces the paper's single-processor
// walkthrough: r=3 suffices, with 2 I/Os per subtree plus 2 more to spill
// and reload v5 while the other subtree is computed — 6 I/O actions total
// (the walkthrough counts: 2 for v3, then blue on v5, mirror subtree, red
// back on v5).
func TestFig1SingleProcessor(t *testing.T) {
	g, id := fig1(t)
	in := MustInstance(g, MPP(1, 3, 1))
	b := NewBuilder(in)
	pebbleSubtree(b, 0, [4]dag.NodeID{id["v1"], id["v2"], id["u1"], id["u2"]}, id["v3"], id["v4"], id["v5"])
	b.Save(0, id["v5"])
	b.DropRed(0, id["v5"])
	pebbleSubtree(b, 0, [4]dag.NodeID{id["w1"], id["w2"], id["y1"], id["y2"]}, id["x3"], id["x4"], id["v6"])
	b.EnsureRed(0, id["v5"])
	b.Compute(0, id["v7"])

	rep, err := Replay(in, b.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOActions != 6 {
		t.Errorf("IOActions = %d, want 6 (2 per subtree + spill/reload v5)", rep.IOActions)
	}
	if rep.ComputeActions != 15 {
		t.Errorf("ComputeActions = %d, want 15 (every node once)", rep.ComputeActions)
	}
	if rep.Recomputations != 0 {
		t.Errorf("Recomputations = %d", rep.Recomputations)
	}
	if rep.MaxRedInUse[0] > 3 {
		t.Errorf("MaxRedInUse = %d > r", rep.MaxRedInUse[0])
	}
	if rep.Cost != 6*1+15 {
		t.Errorf("Cost = %d, want 21", rep.Cost)
	}
}

// TestFig1TwoProcessors reproduces the two-processor walkthrough: each
// subtree on its own processor in parallel, then v5 handed from p0 to p1
// via slow memory (2 I/O moves), and v7 computed on p1.
func TestFig1TwoProcessors(t *testing.T) {
	g, id := fig1(t)
	in := MustInstance(g, MPP(2, 3, 1))
	b := NewBuilder(in)

	// Parallel mirror of pebbleSubtree on both processors.
	pair := func(f func(p int) Action) []Action { return []Action{f(0), f(1)} }
	l := map[int][7]dag.NodeID{
		0: {id["v1"], id["v2"], id["u1"], id["u2"], id["v3"], id["v4"], id["v5"]},
		1: {id["w1"], id["w2"], id["y1"], id["y2"], id["x3"], id["x4"], id["v6"]},
	}
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][0]) })...)
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][1]) })...)
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][4]) })...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][0], l[p][1])
	}
	b.Write(pair(func(p int) Action { return At(p, l[p][4]) })...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][4])
	}
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][2]) })...)
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][3]) })...)
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][5]) })...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][2], l[p][3])
	}
	b.Read(pair(func(p int) Action { return At(p, l[p][4]) })...)
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][6]) })...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][4], l[p][5])
	}

	// Communicate v5 from p0 to p1 via shared memory.
	b.Write(At(0, id["v5"]))
	b.Read(At(1, id["v5"]))
	b.Compute(1, id["v7"])

	rep, err := Replay(in, b.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	// 2 parallel I/O moves for the subtrees + 2 for the handover.
	if rep.IOMoves != 4 {
		t.Errorf("IOMoves = %d, want 4", rep.IOMoves)
	}
	// 7 parallel compute moves for the subtrees + 1 for v7.
	if rep.ComputeMoves != 8 {
		t.Errorf("ComputeMoves = %d, want 8", rep.ComputeMoves)
	}
	if rep.Cost != 4+8 {
		t.Errorf("Cost = %d, want 12 (vs 21 sequential)", rep.Cost)
	}
	for p := 0; p < 2; p++ {
		if rep.MaxRedInUse[p] > 3 {
			t.Errorf("p%d MaxRedInUse = %d > r", p, rep.MaxRedInUse[p])
		}
	}
}

func chainInstance(t testing.TB, n int, p Params) *Instance {
	t.Helper()
	b := dag.NewBuilder("chain")
	b.AddNewChain(n)
	in, err := NewInstance(b.MustBuild(), p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestParamValidation(t *testing.T) {
	b := dag.NewBuilder("v")
	v := b.AddNodes(3)
	b.AddEdge(v[0], v[2])
	b.AddEdge(v[1], v[2])
	g := b.MustBuild()

	cases := []struct {
		name string
		p    Params
	}{
		{"k=0", Params{K: 0, R: 3, G: 1, ComputeCost: 1}},
		{"r=0", Params{K: 1, R: 0, G: 1, ComputeCost: 1}},
		{"g<0", Params{K: 1, R: 3, G: -1, ComputeCost: 1}},
		{"compute<0", Params{K: 1, R: 3, G: 1, ComputeCost: -2}},
		{"r<Δin+1", Params{K: 1, R: 2, G: 1, ComputeCost: 1}}, // Δin=2 needs r≥3
	}
	for _, c := range cases {
		if _, err := NewInstance(g, c.p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewInstance(nil, MPP(1, 2, 1)); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewInstance(g, MPP(2, 3, 1)); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestReplayRejections(t *testing.T) {
	in := chainInstance(t, 3, MPP(2, 2, 1))
	cases := []struct {
		name   string
		moves  []Move
		substr string
	}{
		{"compute without pred", []Move{Compute(At(0, 1))}, "predecessor"},
		{"read without blue", []Move{Read(At(0, 0))}, "no blue"},
		{"write without red", []Move{Write(At(0, 0))}, "no shade-0 red"},
		{"delete absent red", []Move{Delete(At(0, 0))}, "no shade-0 red"},
		{"delete absent blue", []Move{Delete(Blue(0))}, "no blue"},
		{"proc out of range", []Move{Compute(At(5, 0))}, "out of range"},
		{"node out of range", []Move{Compute(At(0, 99))}, "out of range"},
		{"non-injective selection", []Move{Compute(At(0, 0), At(0, 1))}, "injective"},
		{"too many actions", []Move{Compute(At(0, 0), At(1, 0), At(0, 1))}, "exceed"},
		{"empty move", []Move{{Kind: OpCompute}}, "empty"},
		{"memory bound", []Move{
			Compute(At(0, 0)), Compute(At(0, 1)), Compute(At(0, 2)),
		}, "memory bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Replay(in, &Strategy{Moves: c.moves})
			if err == nil {
				t.Fatal("accepted")
			}
			var re *RuleError
			if !errors.As(err, &re) {
				t.Fatalf("error %v is not a RuleError", err)
			}
			if !strings.Contains(err.Error(), c.substr) {
				t.Errorf("error %q does not mention %q", err, c.substr)
			}
		})
	}
}

func TestReplayNotTerminal(t *testing.T) {
	in := chainInstance(t, 2, MPP(1, 2, 1))
	_, err := Replay(in, &Strategy{Moves: []Move{Compute(At(0, 0))}})
	if !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("err = %v, want ErrNotTerminal", err)
	}
	// ReplayPartial accepts the same prefix.
	rep, cfg, err := ReplayPartial(in, &Strategy{Moves: []Move{Compute(At(0, 0))}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != 1 || !cfg.Red[0].Contains(0) {
		t.Error("partial replay state wrong")
	}
}

func TestOneShotRejectsRecompute(t *testing.T) {
	in := chainInstance(t, 2, OneShotSPP(2, 1))
	s := &Strategy{Moves: []Move{
		Compute(At(0, 0)), Compute(At(0, 1)), Delete(At(0, 0)), Compute(At(0, 0)),
	}}
	if _, err := Replay(in, s); err == nil || !strings.Contains(err.Error(), "one-shot") {
		t.Fatalf("one-shot recompute not rejected: %v", err)
	}
	// Same strategy legal when OneShot is off, and counted as recompute.
	in2 := chainInstance(t, 2, SPP(2, 1))
	rep, err := Replay(in2, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recomputations != 1 {
		t.Errorf("Recomputations = %d, want 1", rep.Recomputations)
	}
}

func TestCostAccounting(t *testing.T) {
	in := chainInstance(t, 3, MPP(1, 2, 7))
	b := NewBuilder(in)
	b.Compute(0, 0, 1)
	b.DropRed(0, 0)
	b.Save(0, 1) // write: cost 7
	b.Compute(0, 2)
	rep, err := Replay(in, b.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOCost != 7 || rep.ComputeCost != 3 || rep.Cost != 10 {
		t.Fatalf("costs = io %d compute %d total %d", rep.IOCost, rep.ComputeCost, rep.Cost)
	}
	if got := rep.Surplus(3, 1); got != 7 {
		t.Errorf("Surplus = %v, want 7", got)
	}
	if rep.PerProcComputed[0] != 3 || rep.PerProcIO[0] != 1 {
		t.Error("per-proc accounting wrong")
	}
}

func TestClassicSPPComputeFree(t *testing.T) {
	in := chainInstance(t, 3, SPP(3, 2))
	b := NewBuilder(in)
	b.Compute(0, 0, 1, 2)
	rep, err := Replay(in, b.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != 0 {
		t.Fatalf("classic SPP compute-only cost = %d, want 0", rep.Cost)
	}
}

func TestStrategyCostMatchesReplay(t *testing.T) {
	g, id := fig1(t)
	in := MustInstance(g, MPP(1, 3, 3))
	b := NewBuilder(in)
	pebbleSubtree(b, 0, [4]dag.NodeID{id["v1"], id["v2"], id["u1"], id["u2"]}, id["v3"], id["v4"], id["v5"])
	s := b.Strategy()
	rep, _, err := ReplayPartial(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost(in.Params) != rep.Cost {
		t.Fatalf("Strategy.Cost = %d, Replay cost = %d", s.Cost(in.Params), rep.Cost)
	}
}

func TestConcatAndString(t *testing.T) {
	a := &Strategy{Moves: []Move{Compute(At(0, 0))}}
	b := &Strategy{Moves: []Move{Write(At(0, 0))}}
	c := a.Concat(b)
	if c.Len() != 2 {
		t.Fatal("Concat length")
	}
	if !strings.Contains(c.String(), "compute[p0:v0]") {
		t.Errorf("String = %q", c.String())
	}
	long := &Strategy{}
	for i := 0; i < 100; i++ {
		long.Append(Compute(At(0, 0)))
	}
	if !strings.Contains(long.String(), "elided") {
		t.Error("long strategy not elided")
	}
	if Delete(Blue(3)).String() != "delete[blue:v3]" {
		t.Errorf("Delete string = %q", Delete(Blue(3)).String())
	}
}

func TestSequentializeLemma5(t *testing.T) {
	// Build the two-processor fig1 strategy, sequentialize, and check it
	// is valid for K=1, R=k·r with I/O moves ≤ k × parallel I/O moves.
	g, id := fig1(t)
	in := MustInstance(g, MPP(2, 3, 1))
	b := NewBuilder(in)
	pair := func(f func(p int) Action) []Action { return []Action{f(0), f(1)} }
	l := map[int][7]dag.NodeID{
		0: {id["v1"], id["v2"], id["u1"], id["u2"], id["v3"], id["v4"], id["v5"]},
		1: {id["w1"], id["w2"], id["y1"], id["y2"], id["x3"], id["x4"], id["v6"]},
	}
	for _, i := range []int{0, 1, 4} {
		i := i
		b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][i]) })...)
	}
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][0], l[p][1])
	}
	b.Write(pair(func(p int) Action { return At(p, l[p][4]) })...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][4])
	}
	for _, i := range []int{2, 3, 5} {
		i := i
		b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][i]) })...)
	}
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][2], l[p][3])
	}
	b.Read(pair(func(p int) Action { return At(p, l[p][4]) })...)
	b.ComputeParallel(pair(func(p int) Action { return At(p, l[p][6]) })...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][4], l[p][5])
	}
	b.Write(At(0, id["v5"]))
	b.Read(At(1, id["v5"]))
	b.Compute(1, id["v7"])

	par := b.Strategy()
	parRep, err := Replay(in, par)
	if err != nil {
		t.Fatal(err)
	}

	seq := Sequentialize(in, par)
	seqIn := MustInstance(g, Params{K: 1, R: in.K * in.R, G: in.G, ComputeCost: in.ComputeCost})
	seqRep, err := Replay(seqIn, seq)
	if err != nil {
		t.Fatalf("sequentialized strategy invalid: %v", err)
	}
	if seqRep.IOMoves > in.K*parRep.IOMoves {
		t.Errorf("sequential I/O moves %d > k × parallel I/O moves %d",
			seqRep.IOMoves, in.K*parRep.IOMoves)
	}
	if seqRep.ComputeActions > parRep.ComputeActions {
		t.Errorf("sequential computes %d > parallel computes %d",
			seqRep.ComputeActions, parRep.ComputeActions)
	}
}

func TestBuilderPanicsOnViolation(t *testing.T) {
	in := chainInstance(t, 3, MPP(1, 2, 1))
	cases := []func(b *Builder){
		func(b *Builder) { b.Compute(0, 1) },                       // pred not red
		func(b *Builder) { b.Read(At(0, 0)) },                      // no blue
		func(b *Builder) { b.Write(At(0, 0)) },                     // not red
		func(b *Builder) { b.EnsureRed(0, 2) },                     // neither red nor blue
		func(b *Builder) { b.Delete(At(0, 1)) },                    // absent
		func(b *Builder) { b.Compute(0, 0, 1, 2) },                 // memory bound (r=2, chain keeps preds)
		func(b *Builder) { b.ComputeParallel(At(0, 0), At(0, 0)) }, // non-injective
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn(NewBuilder(in))
		}()
	}
}

func TestBuilderHelpers(t *testing.T) {
	in := chainInstance(t, 3, MPP(1, 2, 1))
	b := NewBuilder(in)
	if b.FreeSlots(0) != 2 {
		t.Fatal("FreeSlots")
	}
	b.Compute(0, 0, 1)
	if b.FreeSlots(0) != 0 {
		t.Fatal("FreeSlots after compute")
	}
	b.Save(0, 1)
	b.Save(0, 1) // idempotent, no second write
	b.DropAllRed(0, 1)
	if b.Config().Red[0].Count() != 1 || !b.Config().Red[0].Contains(1) {
		t.Fatal("DropAllRed keep set wrong")
	}
	b.EnsureRed(0, 1) // already red: no move
	b.Compute(0, 2)
	rep, err := Replay(in, b.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOActions != 1 {
		t.Fatalf("IOActions = %d, want 1 (Save must be idempotent)", rep.IOActions)
	}
}

func TestConfigHelpers(t *testing.T) {
	c := NewConfig(4, 2)
	c.Red[0].Add(1)
	c.Blue.Add(2)
	if !c.HasAnyPebble(1) || !c.HasAnyPebble(2) || c.HasAnyPebble(3) {
		t.Error("HasAnyPebble wrong")
	}
	if !c.Valid(1) || c.Valid(0) {
		t.Error("Valid wrong")
	}
	d := c.Clone()
	if !c.Equal(d) {
		t.Error("clone not equal")
	}
	d.Red[1].Add(0)
	if c.Equal(d) {
		t.Error("mutated clone equal")
	}
	if c.RedCount(0) != 1 || c.RedCount(1) != 0 {
		t.Error("RedCount wrong")
	}
	if !strings.Contains(c.String(), "B={2}") {
		t.Errorf("String = %q", c.String())
	}
}
