package pebble

import (
	"errors"
	"fmt"

	"repro/internal/dag"
)

// RuleError reports a strategy that violates a transition rule or the
// memory bound. It pinpoints the offending move and action.
type RuleError struct {
	MoveIndex   int
	ActionIndex int // -1 when the violation is move-level (e.g. memory bound)
	Move        Move
	Reason      string
}

func (e *RuleError) Error() string {
	if e.ActionIndex < 0 {
		return fmt.Sprintf("pebble: move %d (%s): %s", e.MoveIndex, e.Move, e.Reason)
	}
	return fmt.Sprintf("pebble: move %d (%s), action %d: %s",
		e.MoveIndex, e.Move, e.ActionIndex, e.Reason)
}

// ErrNotTerminal is returned (wrapped) when a strategy is rule-legal but
// ends before every sink is pebbled.
var ErrNotTerminal = errors.New("pebble: final configuration is not terminal")

// Report summarizes a validated strategy.
type Report struct {
	Cost        int64 // total cost Σ c(tᵢ)
	IOCost      int64 // cost of Write+Read moves
	ComputeCost int64 // cost of Compute moves

	IOMoves        int // number of Write+Read moves (parallel steps)
	IOActions      int // total I/O operations summed over processors
	ComputeMoves   int // number of Compute moves (parallel steps)
	ComputeActions int // nodes computed, counting recomputations
	DeleteMoves    int

	Recomputations int // ComputeActions − distinct nodes computed

	PerProcComputed []int // nodes computed by each processor
	PerProcIO       []int // I/O actions performed by each processor
	MaxRedInUse     []int // peak |R^j| per processor

	Final *Config // final configuration (owned by the caller)
}

// Surplus returns the surplus cost C − n/k of Definition 1.
func (r *Report) Surplus(n, k int) float64 {
	return float64(r.Cost) - float64(n)/float64(k)
}

// Replay validates the strategy move by move against the instance and
// returns the cost report. The initial configuration is empty; the final
// configuration must be terminal (every sink pebbled). Use ReplayPartial
// to validate a prefix without the terminal check.
func Replay(in *Instance, s *Strategy) (*Report, error) {
	rep, cfg, err := replay(in, s)
	if err != nil {
		return nil, err
	}
	if !cfg.Terminal(in.Graph) {
		return nil, fmt.Errorf("%w: %d of %d sinks pebbled",
			ErrNotTerminal, countPebbledSinks(in.Graph, cfg), len(in.Graph.Sinks()))
	}
	rep.Final = cfg
	return rep, nil
}

// ReplayPartial validates the strategy without requiring the final
// configuration to be terminal, returning the report and final
// configuration. Useful for composing gadget strategies.
func ReplayPartial(in *Instance, s *Strategy) (*Report, *Config, error) {
	rep, cfg, err := replay(in, s)
	if err != nil {
		return nil, nil, err
	}
	rep.Final = cfg
	return rep, cfg, nil
}

func countPebbledSinks(g *dag.Graph, c *Config) int {
	n := 0
	for _, s := range g.Sinks() {
		if c.HasAnyPebble(s) {
			n++
		}
	}
	return n
}

func replay(in *Instance, s *Strategy) (*Report, *Config, error) {
	n := in.Graph.N()
	k := in.K
	cfg := NewConfig(n, k)
	rep := &Report{
		PerProcComputed: make([]int, k),
		PerProcIO:       make([]int, k),
		MaxRedInUse:     make([]int, k),
	}
	var computed []bool
	computed = make([]bool, n)
	// redCount[j] mirrors cfg.Red[j].Count() incrementally: the memory-bound
	// check below runs after every move, and a popcount there would make
	// validation quadratic on million-move strategies.
	redCount := make([]int, k)
	procSeen := make([]int, k) // move index +1 when last used; enforces injective selections
	for i, m := range s.Moves {
		if len(m.Actions) == 0 {
			return nil, nil, &RuleError{MoveIndex: i, ActionIndex: -1, Move: m, Reason: "empty move"}
		}
		if m.Kind != OpDelete {
			if len(m.Actions) > k {
				return nil, nil, &RuleError{MoveIndex: i, ActionIndex: -1, Move: m,
					Reason: fmt.Sprintf("%d actions exceed k=%d processors", len(m.Actions), k)}
			}
			for ai, a := range m.Actions {
				if a.Proc < 0 || a.Proc >= k {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("processor %d out of range [0,%d)", a.Proc, k)}
				}
				if procSeen[a.Proc] == i+1 {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("processor %d selected twice (selection must be injective)", a.Proc)}
				}
				procSeen[a.Proc] = i + 1
				if a.Node < 0 || int(a.Node) >= n {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("node %d out of range [0,%d)", a.Node, n)}
				}
			}
		}

		switch m.Kind {
		case OpWrite:
			// Check all preconditions against the pre-move configuration,
			// then apply: simultaneous semantics.
			for ai, a := range m.Actions {
				if !cfg.Red[a.Proc].Contains(int(a.Node)) {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("node %d has no shade-%d red pebble to write", a.Node, a.Proc)}
				}
			}
			for _, a := range m.Actions {
				cfg.Blue.Add(int(a.Node))
				rep.PerProcIO[a.Proc]++
			}
			rep.IOMoves++
			rep.IOActions += len(m.Actions)
			rep.IOCost += int64(in.G)

		case OpRead:
			for ai, a := range m.Actions {
				if !cfg.Blue.Contains(int(a.Node)) {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("node %d has no blue pebble to read", a.Node)}
				}
			}
			for _, a := range m.Actions {
				if cfg.Red[a.Proc].TestAndSet(int(a.Node)) {
					redCount[a.Proc]++
				}
				rep.PerProcIO[a.Proc]++
			}
			rep.IOMoves++
			rep.IOActions += len(m.Actions)
			rep.IOCost += int64(in.G)

		case OpCompute:
			for ai, a := range m.Actions {
				for _, u := range in.Graph.Pred(a.Node) {
					if !cfg.Red[a.Proc].Contains(int(u)) {
						return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
							Reason: fmt.Sprintf("predecessor %d of node %d lacks a shade-%d red pebble", u, a.Node, a.Proc)}
					}
				}
				if in.OneShot && computed[a.Node] {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("node %d recomputed in one-shot mode", a.Node)}
				}
			}
			for _, a := range m.Actions {
				if cfg.Red[a.Proc].TestAndSet(int(a.Node)) {
					redCount[a.Proc]++
				}
				rep.PerProcComputed[a.Proc]++
				if computed[a.Node] {
					rep.Recomputations++
				}
				computed[a.Node] = true
			}
			rep.ComputeMoves++
			rep.ComputeActions += len(m.Actions)
			rep.ComputeCost += int64(in.ComputeCost)

		case OpDelete:
			for ai, a := range m.Actions {
				if a.Node < 0 || int(a.Node) >= n {
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("node %d out of range [0,%d)", a.Node, n)}
				}
				switch {
				case a.Proc == BlueProc:
					if !cfg.Blue.Contains(int(a.Node)) {
						return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
							Reason: fmt.Sprintf("node %d has no blue pebble to delete", a.Node)}
					}
					cfg.Blue.Remove(int(a.Node))
				case a.Proc >= 0 && a.Proc < k:
					if !cfg.Red[a.Proc].Contains(int(a.Node)) {
						return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
							Reason: fmt.Sprintf("node %d has no shade-%d red pebble to delete", a.Node, a.Proc)}
					}
					cfg.Red[a.Proc].Remove(int(a.Node))
					redCount[a.Proc]--
				default:
					return nil, nil, &RuleError{MoveIndex: i, ActionIndex: ai, Move: m,
						Reason: fmt.Sprintf("processor %d out of range", a.Proc)}
				}
			}
			rep.DeleteMoves++

		default:
			return nil, nil, &RuleError{MoveIndex: i, ActionIndex: -1, Move: m,
				Reason: fmt.Sprintf("unknown move kind %d", m.Kind)}
		}

		// Memory bound: the post-move configuration must be valid.
		for j := 0; j < k; j++ {
			c := redCount[j]
			if c > rep.MaxRedInUse[j] {
				rep.MaxRedInUse[j] = c
			}
			if c > in.R {
				return nil, nil, &RuleError{MoveIndex: i, ActionIndex: -1, Move: m,
					Reason: fmt.Sprintf("processor %d exceeds memory bound: %d red pebbles > r=%d", j, c, in.R)}
			}
		}
	}
	rep.Cost = rep.IOCost + rep.ComputeCost
	return rep, cfg, nil
}

// Sequentialize converts a k-processor strategy into an equivalent
// 1-processor strategy over fast memory k·r, implementing the simulation
// of Lemma 5: each parallel move becomes ≤ k sequential single-action
// moves, and shade-j red pebbles map into the single processor's memory.
// The resulting strategy is valid for an instance with K=1, R=k·r and the
// same g (pebbles of different former shades on the same node collapse —
// the simulation only ever needs one).
func Sequentialize(in *Instance, s *Strategy) *Strategy {
	// The single processor holds the multiset union of all shades. A node
	// may hold red pebbles of several shades; the sequential processor
	// tracks each (shade, node) slot separately by keeping its own shadow
	// occupancy count so deletions free the right amount of memory. Since
	// classic SPP sets cannot express multiplicity, we emulate: keep the
	// red pebble while any shade holds it.
	n := in.Graph.N()
	mult := make([]int, n)
	out := &Strategy{}
	for _, m := range s.Moves {
		switch m.Kind {
		case OpWrite:
			for _, a := range m.Actions {
				out.Append(Write(At(0, a.Node)))
			}
		case OpRead:
			for _, a := range m.Actions {
				if mult[a.Node] == 0 {
					out.Append(Read(At(0, a.Node)))
				}
				mult[a.Node]++
			}
		case OpCompute:
			for _, a := range m.Actions {
				if mult[a.Node] == 0 {
					out.Append(Compute(At(0, a.Node)))
				}
				mult[a.Node]++
			}
		case OpDelete:
			for _, a := range m.Actions {
				if a.Proc == BlueProc {
					out.Append(Delete(Blue(a.Node)))
					continue
				}
				mult[a.Node]--
				if mult[a.Node] == 0 {
					out.Append(Delete(At(0, a.Node)))
				}
			}
		}
	}
	return out
}
