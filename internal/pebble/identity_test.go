package pebble

import (
	"reflect"
	"testing"
)

// TestParamsAppendWords pins the packed layout (K, R, G, ComputeCost,
// one-shot bit) and the identity property the fingerprint relies on: two
// Params encode identically iff they are ==.
func TestParamsAppendWords(t *testing.T) {
	p := Params{K: 2, R: 3, G: 5, ComputeCost: 1, OneShot: true}
	got := p.AppendWords([]uint64{7})
	want := []uint64{7, 2, 3, 5, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendWords = %v, want %v", got, want)
	}

	base := MPP(2, 3, 5)
	flips := []struct {
		name string
		q    Params
	}{
		{"K", Params{K: 3, R: 3, G: 5, ComputeCost: 1}},
		{"R", Params{K: 2, R: 4, G: 5, ComputeCost: 1}},
		{"G", Params{K: 2, R: 3, G: 6, ComputeCost: 1}},
		{"ComputeCost", Params{K: 2, R: 3, G: 5, ComputeCost: 0}},
		{"OneShot", Params{K: 2, R: 3, G: 5, ComputeCost: 1, OneShot: true}},
	}
	baseWords := base.AppendWords(nil)
	for _, f := range flips {
		if reflect.DeepEqual(f.q.AppendWords(nil), baseWords) {
			t.Errorf("flipping %s did not change the packed words", f.name)
		}
	}
	if !reflect.DeepEqual(base.AppendWords(nil), MPP(2, 3, 5).AppendWords(nil)) {
		t.Errorf("equal Params encode differently")
	}
}

// TestStrategyClone: a deep copy — mutating the clone's moves or actions
// never reaches the original, and nil clones to nil.
func TestStrategyClone(t *testing.T) {
	var nilStrat *Strategy
	if nilStrat.Clone() != nil {
		t.Error("nil.Clone() != nil")
	}

	orig := &Strategy{Moves: []Move{
		{Kind: OpCompute, Actions: []Action{{Proc: 0, Node: 1}, {Proc: 1, Node: 2}}},
		{Kind: OpWrite, Actions: []Action{{Proc: 0, Node: 1}}},
	}}
	snapshot := &Strategy{Moves: []Move{
		{Kind: OpCompute, Actions: []Action{{Proc: 0, Node: 1}, {Proc: 1, Node: 2}}},
		{Kind: OpWrite, Actions: []Action{{Proc: 0, Node: 1}}},
	}}

	c := orig.Clone()
	if !reflect.DeepEqual(c, orig) {
		t.Fatalf("Clone = %+v, want %+v", c, orig)
	}
	c.Moves[0].Kind = OpRead
	c.Moves[0].Actions[0].Node = 99
	if !reflect.DeepEqual(orig, snapshot) {
		t.Errorf("mutating the clone reached the original:\n got:  %+v\n want: %+v", orig, snapshot)
	}
}
