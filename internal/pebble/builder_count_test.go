package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/gen"
)

// TestBuilderRedCountStaysExact drives a Builder through random valid
// move sequences and asserts the cached per-processor cardinality (the
// thing FreeSlots and the memory-bound check now read) never drifts
// from a full popcount of the tracked red sets.
func TestBuilderRedCountStaysExact(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomDAG(24, 0.2, 3, seed)
		in := &Instance{Graph: g, Params: Params{K: 2, R: g.MaxInDegree() + 3, G: 2, ComputeCost: 1}}
		b := NewBuilder(in)
		topo := g.Topo()
		// makeRoom evicts arbitrary residents of p that are not
		// predecessors of v until at least `want` slots are free.
		makeRoom := func(p int, v dag.NodeID, want int) bool {
			for b.FreeSlots(p) < want {
				victim := -1
				b.Config().Red[p].ForEach(func(i int) bool {
					for _, u := range g.Pred(v) {
						if int(u) == i {
							return true
						}
					}
					victim = i
					return false
				})
				if victim < 0 {
					return false // r too tight for this draw
				}
				b.Save(p, dag.NodeID(victim))
				b.Delete(At(p, dag.NodeID(victim)))
			}
			return true
		}
		for _, v := range topo {
			p := rng.Intn(in.K)
			for _, u := range g.Pred(v) {
				if !makeRoom(p, v, 1) {
					return true // vacuous draw
				}
				b.EnsureRed(p, u)
			}
			if !makeRoom(p, v, 1) {
				return true
			}
			b.Compute(p, v)
			// Always publish so predecessors computed on other shades
			// stay reachable via Read; drop locally at random.
			b.Save(p, v)
			if rng.Intn(4) == 0 {
				b.DropRed(p, v)
			}
			for q := 0; q < in.K; q++ {
				if b.FreeSlots(q) != in.R-b.Config().Red[q].Count() {
					return false
				}
			}
		}
		for p := 0; p < in.K; p++ {
			b.DropAllRed(p)
			if b.FreeSlots(p) != in.R {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
