package pebble

// AsyncMakespan evaluates a strategy under the asynchronous relaxation
// discussed in Section 3.3: instead of globally synchronous moves, each
// processor executes its own actions back to back on a private timeline
// (an I/O action occupies its processor for G time units, a compute
// action for ComputeCost), subject to data availability:
//
//   - a read of v cannot start before some write of v has finished,
//   - a compute of v on p cannot start before all the events that made
//     v's inputs red on p have finished.
//
// Deletions are free and instantaneous. The result is the makespan — the
// moment the last action finishes. For any valid strategy the makespan is
// at most the synchronous cost (the relaxation only removes waiting); the
// paper notes the improvement from asynchrony is bounded by a factor 2
// for optimal schedules.
func AsyncMakespan(in *Instance, s *Strategy) int64 {
	n := in.Graph.N()
	k := in.K
	avail := make([]int64, k)   // processor timelines
	blueAt := make([]int64, n)  // when the blue pebble became available
	hasBlue := make([]bool, n)  // whether v has ever been written
	redAt := make([][]int64, k) // when v last became red on p
	for p := range redAt {
		redAt[p] = make([]int64, n)
		for i := range redAt[p] {
			redAt[p][i] = -1
		}
	}
	var makespan int64
	gCost, cCost := int64(in.G), int64(in.ComputeCost)

	for _, m := range s.Moves {
		switch m.Kind {
		case OpWrite:
			for _, a := range m.Actions {
				start := max64(avail[a.Proc], redAt[a.Proc][a.Node])
				fin := start + gCost
				avail[a.Proc] = fin
				if !hasBlue[a.Node] || fin < blueAt[a.Node] {
					blueAt[a.Node] = fin
					hasBlue[a.Node] = true
				}
				makespan = max64(makespan, fin)
			}
		case OpRead:
			for _, a := range m.Actions {
				start := max64(avail[a.Proc], blueAt[a.Node])
				fin := start + gCost
				avail[a.Proc] = fin
				redAt[a.Proc][a.Node] = fin
				makespan = max64(makespan, fin)
			}
		case OpCompute:
			for _, a := range m.Actions {
				start := avail[a.Proc]
				for _, u := range in.Graph.Pred(a.Node) {
					start = max64(start, redAt[a.Proc][u])
				}
				fin := start + cCost
				avail[a.Proc] = fin
				redAt[a.Proc][a.Node] = fin
				makespan = max64(makespan, fin)
			}
		case OpDelete:
			// Free and instantaneous; availability times are unaffected
			// (a deleted pebble's historical ready time is never consulted
			// again by a valid strategy without an intervening re-acquire,
			// which overwrites redAt/blueAt).
		}
	}
	return makespan
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
