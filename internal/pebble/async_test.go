package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func asyncChain(t *testing.T, n int) (*Instance, *Strategy) {
	t.Helper()
	b := dag.NewBuilder("chain")
	b.AddNewChain(n)
	in := MustInstance(b.MustBuild(), MPP(1, 2, 3))
	sb := NewBuilder(in)
	for i := 0; i < n; i++ {
		sb.Compute(0, dag.NodeID(i))
		if i > 0 {
			sb.DropRed(0, dag.NodeID(i-1))
		}
	}
	return in, sb.Strategy()
}

func TestAsyncMakespanChainEqualsSync(t *testing.T) {
	// A single processor has no asynchrony to exploit: makespan = cost.
	in, s := asyncChain(t, 10)
	rep, err := Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := AsyncMakespan(in, s); got != rep.Cost {
		t.Fatalf("makespan = %d, want sync cost %d", got, rep.Cost)
	}
}

func TestAsyncMakespanHidesUnbalancedWork(t *testing.T) {
	// Two processors; p0 computes a 6-chain while p1 computes a single
	// node spread across the same global moves. Sync: 6 compute moves;
	// async: still 6 (p0 is critical) — but if p1's work is issued as
	// separate singleton moves, sync pays 7 while async stays at 6.
	b := dag.NewBuilder("unbalanced")
	chain := b.AddNewChain(6)
	lone := b.AddNode()
	g := b.MustBuild()
	in := MustInstance(g, MPP(2, 2, 3))
	sb := NewBuilder(in)
	sb.Compute(1, lone) // singleton move: sync cost 1
	for i, v := range chain {
		sb.Compute(0, v)
		if i > 0 {
			sb.DropRed(0, chain[i-1])
		}
	}
	s := sb.Strategy()
	rep, err := Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != 7 {
		t.Fatalf("sync cost = %d, want 7", rep.Cost)
	}
	if got := AsyncMakespan(in, s); got != 6 {
		t.Fatalf("async makespan = %d, want 6 (lone node hidden)", got)
	}
}

func TestAsyncRespectsBlueDependency(t *testing.T) {
	// p1 reads a value p0 writes; the read cannot start before the write
	// finishes even though p1 is otherwise idle.
	b := dag.NewBuilder("dep")
	v := b.AddNode()
	w := b.AddNode()
	b.AddEdge(v, w)
	g := b.MustBuild()
	in := MustInstance(g, MPP(2, 2, 5))
	sb := NewBuilder(in)
	sb.Compute(0, v)
	sb.Write(At(0, v))
	sb.Read(At(1, v))
	sb.Compute(1, w)
	s := sb.Strategy()
	// p0: compute (1) + write (5) = 6; p1: read starts at 6, ends 11,
	// compute ends 12.
	if got := AsyncMakespan(in, s); got != 12 {
		t.Fatalf("makespan = %d, want 12", got)
	}
}

func TestQuickAsyncNeverExceedsSync(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := dag.NewBuilder("rand")
		b.AddNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					b.AddEdge(dag.NodeID(u), dag.NodeID(v))
				}
			}
		}
		g := b.MustBuild()
		in := MustInstance(g, MPP(1+rng.Intn(3), g.MaxInDegree()+2, 1+rng.Intn(4)))
		// Baseline-style strategy through the Builder.
		sb := NewBuilder(in)
		p := 0
		for _, v := range g.Topo() {
			for _, u := range g.Pred(v) {
				sb.EnsureRed(p, u)
			}
			sb.Compute(p, v)
			sb.Save(p, v)
			sb.DropAllRed(p)
			p = (p + 1) % in.K
		}
		s := sb.Strategy()
		rep, err := Replay(in, s)
		if err != nil {
			return false
		}
		ms := AsyncMakespan(in, s)
		return ms <= rep.Cost && ms > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
