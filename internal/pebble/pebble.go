// Package pebble implements the multiprocessor red-blue pebble game (MPP)
// of Böhnlein, Papp and Yzelman (SPAA 2024), together with its k=1
// specialization, the classic single-processor red-blue pebble game (SPP).
//
// An Instance couples a computational DAG with the game parameters: k
// processors, r red pebbles (fast-memory slots) per processor, and the I/O
// cost g. A Strategy is a sequence of Moves; each Move applies one of the
// transition rules (R1-M)–(R4-M) to a shaded selection of processors:
//
//	Write   (R1-M): each selected processor p turns a red pebble of shade p
//	                into an additional blue pebble (store to slow memory).
//	Read    (R2-M): each selected processor p places a red pebble of shade p
//	                on a node holding a blue pebble (load from slow memory).
//	Compute (R3-M): each selected processor p places a red pebble of shade p
//	                on a node whose predecessors all hold shade-p red
//	                pebbles.
//	Delete  (R4-M): remove red or blue pebbles (free).
//
// A Write or Read move costs g regardless of how many processors
// participate; a Compute move costs ComputeCost (1 in the paper's MPP, 0 in
// classic SPP); a Delete move is free. The Replay engine validates a
// strategy against the rules and the per-processor memory bound and
// produces a cost Report.
package pebble

import (
	"fmt"

	"repro/internal/dag"
)

// Params holds the game parameters of an MPP instance.
type Params struct {
	K int // number of processors (shades); K = 1 gives SPP
	R int // red pebbles (fast memory slots) per processor
	G int // cost of one I/O move (rule R1-M / R2-M)

	// ComputeCost is the cost of one Compute move. The paper's MPP fixes
	// this to 1; classic SPP (Hong–Kung) uses 0, turning the objective
	// into pure I/O minimization.
	ComputeCost int

	// OneShot, when true, forbids computing the same node twice — the
	// "one-shot" SPP variant used by the inapproximability construction
	// (Theorem 2).
	OneShot bool
}

// AppendWords appends the packed identity of the parameters — K, R, G,
// ComputeCost, and the one-shot bit, one word each — to dst and returns
// the extended slice. Two Params values encode identically iff they are
// ==, making the words usable as the parameter half of an instance
// fingerprint (see internal/cache); the layout mirrors Config.AppendWords.
func (p Params) AppendWords(dst []uint64) []uint64 {
	oneShot := uint64(0)
	if p.OneShot {
		oneShot = 1
	}
	return append(dst, uint64(p.K), uint64(p.R), uint64(p.G), uint64(p.ComputeCost), oneShot)
}

// MPP returns the paper's standard parameterization: compute cost 1,
// recomputation allowed.
func MPP(k, r, g int) Params { return Params{K: k, R: r, G: g, ComputeCost: 1} }

// SPP returns classic Hong–Kung single-processor parameters: one
// processor, compute steps free, recomputation allowed.
func SPP(r, g int) Params { return Params{K: 1, R: r, G: g, ComputeCost: 0} }

// OneShotSPP returns the one-shot SPP variant (free compute, every node
// computed exactly once) used in Theorem 2.
func OneShotSPP(r, g int) Params {
	return Params{K: 1, R: r, G: g, ComputeCost: 0, OneShot: true}
}

// Instance is a DAG together with game parameters.
type Instance struct {
	Graph *dag.Graph
	Params
}

// NewInstance validates the parameters against the DAG and returns the
// instance. It enforces r ≥ Δ_in + 1, the necessary and sufficient
// condition for a valid pebbling to exist (Section 4).
func NewInstance(g *dag.Graph, p Params) (*Instance, error) {
	if g == nil {
		return nil, fmt.Errorf("pebble: nil graph")
	}
	if p.K < 1 {
		return nil, fmt.Errorf("pebble: k = %d, want ≥ 1", p.K)
	}
	if p.R < 1 {
		return nil, fmt.Errorf("pebble: r = %d, want ≥ 1", p.R)
	}
	if p.G < 0 {
		return nil, fmt.Errorf("pebble: g = %d, want ≥ 0", p.G)
	}
	if p.ComputeCost < 0 {
		return nil, fmt.Errorf("pebble: compute cost = %d, want ≥ 0", p.ComputeCost)
	}
	if p.R < g.MaxInDegree()+1 {
		return nil, fmt.Errorf("pebble: r = %d < Δ_in+1 = %d; no valid pebbling exists",
			p.R, g.MaxInDegree()+1)
	}
	return &Instance{Graph: g, Params: p}, nil
}

// MustInstance is NewInstance but panics on error.
func MustInstance(g *dag.Graph, p Params) *Instance {
	in, err := NewInstance(g, p)
	if err != nil {
		panic(err)
	}
	return in
}

// N returns the node count of the instance's DAG.
func (in *Instance) N() int { return in.Graph.N() }

// WithParams returns a copy of the instance with different parameters,
// re-validated.
func (in *Instance) WithParams(p Params) (*Instance, error) {
	return NewInstance(in.Graph, p)
}

// String summarizes the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("instance{%s, k=%d, r=%d, g=%d, compute=%d, oneshot=%v}",
		in.Graph.Name(), in.K, in.R, in.G, in.ComputeCost, in.OneShot)
}
