package pebble

import "testing"

func TestConfigAppendWordsWidth(t *testing.T) {
	// n=70 → 2 words per set; k=3 shades + blue → 8 words total.
	c := NewConfig(70, 3)
	words := c.AppendWords(nil)
	if len(words) != 8 {
		t.Fatalf("AppendWords returned %d words, want 8", len(words))
	}
}

func TestConfigHashEqualIffEqual(t *testing.T) {
	a := NewConfig(10, 2)
	b := NewConfig(10, 2)
	a.Red[0].Add(3)
	a.Blue.Add(7)
	b.Red[0].Add(3)
	b.Blue.Add(7)
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Fatalf("equal configs: Equal=%v hashes %x vs %x", a.Equal(b), a.Hash(), b.Hash())
	}
	// Shade order is part of the identity: moving the pebble to the other
	// shade must change the hash (hash is over ordered words).
	c := NewConfig(10, 2)
	c.Red[1].Add(3)
	c.Blue.Add(7)
	if a.Hash() == c.Hash() {
		t.Fatal("shade permutation did not change the hash")
	}
	// Red vs blue placement differs too.
	d := NewConfig(10, 2)
	d.Red[0].Add(3)
	d.Red[0].Add(7)
	if a.Hash() == d.Hash() {
		t.Fatal("red/blue swap did not change the hash")
	}
}

func TestConfigHashNoAlloc(t *testing.T) {
	// Up to k+1 = 8 total word-sets of one word each, Hash must not
	// allocate (the scratch buffer covers it).
	c := NewConfig(60, 4)
	c.Red[2].Add(11)
	c.Blue.Add(1)
	allocs := testing.AllocsPerRun(100, func() { _ = c.Hash() })
	if allocs != 0 {
		t.Fatalf("Hash allocated %v times per run", allocs)
	}
}
