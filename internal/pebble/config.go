package pebble

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/hashtab"
)

// Config is a pebbling configuration: one red-pebble set per processor
// shade plus the shared blue-pebble set. It corresponds to the tuple
// (R¹, …, Rᵏ, B) of the paper.
type Config struct {
	Red  []*bitset.Set // Red[j] is R^j, the shade-j red pebbles
	Blue *bitset.Set
}

// NewConfig returns the empty initial configuration C₀ for k processors
// over an n-node DAG.
func NewConfig(n, k int) *Config {
	c := &Config{Red: make([]*bitset.Set, k), Blue: bitset.New(n)}
	for j := range c.Red {
		c.Red[j] = bitset.New(n)
	}
	return c
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{Red: make([]*bitset.Set, len(c.Red)), Blue: c.Blue.Clone()}
	for j, r := range c.Red {
		out.Red[j] = r.Clone()
	}
	return out
}

// Valid reports whether every shade respects the memory bound r.
func (c *Config) Valid(r int) bool {
	for _, rs := range c.Red {
		if rs.Count() > r {
			return false
		}
	}
	return true
}

// Terminal reports whether every sink of g holds a pebble of any color —
// the termination condition S ⊆ B ∪ ⋃ⱼ Rʲ.
func (c *Config) Terminal(g *dag.Graph) bool {
	for _, s := range g.Sinks() {
		if !c.HasAnyPebble(s) {
			return false
		}
	}
	return true
}

// HasAnyPebble reports whether v holds a blue pebble or a red pebble of
// any shade.
func (c *Config) HasAnyPebble(v dag.NodeID) bool {
	if c.Blue.Contains(int(v)) {
		return true
	}
	for _, r := range c.Red {
		if r.Contains(int(v)) {
			return true
		}
	}
	return false
}

// RedCount returns the number of red pebbles of shade j in use.
func (c *Config) RedCount(j int) int { return c.Red[j].Count() }

// Equal reports whether two configurations hold identical pebbles.
func (c *Config) Equal(d *Config) bool {
	if len(c.Red) != len(d.Red) || !c.Blue.Equal(d.Blue) {
		return false
	}
	for j := range c.Red {
		if !c.Red[j].Equal(d.Red[j]) {
			return false
		}
	}
	return true
}

// AppendWords appends the packed identity of the configuration — each
// shade's red words in shade order, then the blue words — to dst and
// returns the extended slice. Configurations that are Equal produce
// identical words; the result is a ready-made key for a hashtab table
// (pass a reused buffer to stay allocation-free).
func (c *Config) AppendWords(dst []uint64) []uint64 {
	for _, r := range c.Red {
		dst = r.AppendWords(dst)
	}
	return c.Blue.AppendWords(dst)
}

// Hash returns a 64-bit hash of the configuration. Equal configurations
// hash identically; shade order is significant (permuting processor
// shades is a different configuration unless a caller canonicalizes
// first).
func (c *Config) Hash() uint64 {
	var scratch [8]uint64
	return hashtab.Hash(c.AppendWords(scratch[:0]))
}

// String renders the configuration, e.g. "R0={1, 2} R1={} B={3}".
func (c *Config) String() string {
	var b strings.Builder
	for j, r := range c.Red {
		fmt.Fprintf(&b, "R%d=%s ", j, r)
	}
	fmt.Fprintf(&b, "B=%s", c.Blue)
	return b.String()
}
