package pebble

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dag"
)

// Config is a pebbling configuration: one red-pebble set per processor
// shade plus the shared blue-pebble set. It corresponds to the tuple
// (R¹, …, Rᵏ, B) of the paper.
type Config struct {
	Red  []*bitset.Set // Red[j] is R^j, the shade-j red pebbles
	Blue *bitset.Set
}

// NewConfig returns the empty initial configuration C₀ for k processors
// over an n-node DAG.
func NewConfig(n, k int) *Config {
	c := &Config{Red: make([]*bitset.Set, k), Blue: bitset.New(n)}
	for j := range c.Red {
		c.Red[j] = bitset.New(n)
	}
	return c
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	out := &Config{Red: make([]*bitset.Set, len(c.Red)), Blue: c.Blue.Clone()}
	for j, r := range c.Red {
		out.Red[j] = r.Clone()
	}
	return out
}

// Valid reports whether every shade respects the memory bound r.
func (c *Config) Valid(r int) bool {
	for _, rs := range c.Red {
		if rs.Count() > r {
			return false
		}
	}
	return true
}

// Terminal reports whether every sink of g holds a pebble of any color —
// the termination condition S ⊆ B ∪ ⋃ⱼ Rʲ.
func (c *Config) Terminal(g *dag.Graph) bool {
	for _, s := range g.Sinks() {
		if !c.HasAnyPebble(s) {
			return false
		}
	}
	return true
}

// HasAnyPebble reports whether v holds a blue pebble or a red pebble of
// any shade.
func (c *Config) HasAnyPebble(v dag.NodeID) bool {
	if c.Blue.Contains(int(v)) {
		return true
	}
	for _, r := range c.Red {
		if r.Contains(int(v)) {
			return true
		}
	}
	return false
}

// RedCount returns the number of red pebbles of shade j in use.
func (c *Config) RedCount(j int) int { return c.Red[j].Count() }

// Equal reports whether two configurations hold identical pebbles.
func (c *Config) Equal(d *Config) bool {
	if len(c.Red) != len(d.Red) || !c.Blue.Equal(d.Blue) {
		return false
	}
	for j := range c.Red {
		if !c.Red[j].Equal(d.Red[j]) {
			return false
		}
	}
	return true
}

// String renders the configuration, e.g. "R0={1, 2} R1={} B={3}".
func (c *Config) String() string {
	var b strings.Builder
	for j, r := range c.Red {
		fmt.Fprintf(&b, "R%d=%s ", j, r)
	}
	fmt.Fprintf(&b, "B=%s", c.Blue)
	return b.String()
}
