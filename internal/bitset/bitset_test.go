package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if got := s.Count(); got != 0 {
		t.Fatalf("Count() = %d, want 0", got)
	}
	if !s.Empty() {
		t.Fatal("new set not Empty()")
	}
	if s.Cap() != 130 {
		t.Fatalf("Cap() = %d, want 130", s.Cap())
	}
	for i := 0; i < 130; i++ {
		if s.Contains(i) {
			t.Fatalf("new set Contains(%d)", i)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(200)
	ids := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false after Add", id)
		}
	}
	if got := s.Count(); got != len(ids) {
		t.Fatalf("Count() = %d, want %d", got, len(ids))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove")
	}
	s.Remove(64) // removing absent id is a no-op
	if got := s.Count(); got != len(ids)-1 {
		t.Fatalf("Count() = %d, want %d", got, len(ids)-1)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count() = %d after double Add, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Add(10) },
		func() { New(10).Add(-1) },
		func() { New(10).Contains(10) },
		func() { New(10).Remove(99) },
		func() { New(-1) },
		func() { New(10).UnionWith(New(11)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 50, 99})
	b := FromSlice(100, []int{2, 3, 4, 99})

	if got := a.Union(b).Slice(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 50, 99}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Slice(); !reflect.DeepEqual(got, []int{2, 3, 99}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b).Slice(); !reflect.DeepEqual(got, []int{1, 50}) {
		t.Errorf("Subtract = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.ContainsAll(b) {
		t.Error("ContainsAll = true; 4 is missing from a")
	}
	if !a.Union(b).ContainsAll(a) {
		t.Error("union does not contain operand")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := FromSlice(70, []int{0, 69, 33})
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not Equal")
	}
	c.Add(1)
	if a.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if a.Contains(1) {
		t.Fatal("mutating clone mutated original")
	}
	if a.Equal(New(71)) {
		t.Fatal("Equal across capacities")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice(40, []int{5, 6})
	b := FromSlice(40, []int{7})
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(100, []int{10, 20, 30})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{10, 20}) {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestNextAndMin(t *testing.T) {
	s := FromSlice(300, []int{5, 64, 200})
	cases := []struct{ from, want int }{
		{-5, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 200}, {201, -1}, {300, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := s.Min(); got != 5 {
		t.Errorf("Min() = %d, want 5", got)
	}
	if got := New(8).Min(); got != -1 {
		t.Errorf("empty Min() = %d, want -1", got)
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(128, []int{0, 127})
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements")
	}
	if s.Cap() != 128 {
		t.Fatal("Clear changed capacity")
	}
}

func TestHashEqualSets(t *testing.T) {
	a := FromSlice(256, []int{1, 100, 255})
	b := FromSlice(256, []int{255, 1, 100})
	if a.Hash() != b.Hash() {
		t.Fatal("equal sets hash differently")
	}
	b.Add(2)
	if a.Hash() == b.Hash() {
		t.Fatal("distinct sets collide (astronomically unlikely)")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{3, 1}).String(); got != "{1, 3}" {
		t.Errorf("String() = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

// mapSet is the oracle implementation used by the property tests.
type mapSet map[int]bool

func randomPair(rng *rand.Rand, n int) (*Set, mapSet) {
	s := New(n)
	m := mapSet{}
	for i := 0; i < n/2; i++ {
		id := rng.Intn(n)
		s.Add(id)
		m[id] = true
	}
	return s, m
}

func (m mapSet) slice() []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func TestQuickAgainstMapOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		a, ma := randomPair(rng, n)
		b, mb := randomPair(rng, n)

		u := a.Union(b)
		mu := mapSet{}
		for k := range ma {
			mu[k] = true
		}
		for k := range mb {
			mu[k] = true
		}
		if !reflect.DeepEqual(u.Slice(), mu.slice()) {
			return false
		}

		in := a.Intersect(b)
		mi := mapSet{}
		for k := range ma {
			if mb[k] {
				mi[k] = true
			}
		}
		if !reflect.DeepEqual(in.Slice(), mi.slice()) {
			return false
		}

		d := a.Subtract(b)
		md := mapSet{}
		for k := range ma {
			if !mb[k] {
				md[k] = true
			}
		}
		if !reflect.DeepEqual(d.Slice(), md.slice()) {
			return false
		}
		return u.Count() == len(mu) && in.Count() == len(mi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| + |A ∩ B| == |A| + |B|
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, _ := randomPair(rng, n)
		b, _ := randomPair(rng, n)
		return a.Union(b).Count()+a.Intersect(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractDisjoint(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, _ := randomPair(rng, n)
		b, _ := randomPair(rng, n)
		return !a.Subtract(b).Intersects(b) || a.Subtract(b).Empty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, _ := randomPair(rng, 1024)
	y, _ := randomPair(rng, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkForEach1024(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, _ := randomPair(rng, 1024)
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(id int) bool { sum += id; return true })
	}
	_ = sum
}

func TestTestAndSetClear(t *testing.T) {
	s := New(130)
	if !s.TestAndSet(7) {
		t.Error("TestAndSet on absent element reported no change")
	}
	if s.TestAndSet(7) {
		t.Error("TestAndSet on present element reported a change")
	}
	if !s.Contains(7) {
		t.Error("TestAndSet did not insert")
	}
	if !s.TestAndClear(7) {
		t.Error("TestAndClear on present element reported no change")
	}
	if s.TestAndClear(7) {
		t.Error("TestAndClear on absent element reported a change")
	}
	if s.Contains(7) {
		t.Error("TestAndClear did not remove")
	}
}

func TestQuickTestAndSetTracksCount(t *testing.T) {
	// A counter driven purely by TestAndSet/TestAndClear return values
	// must agree with Count at every step — the invariant the pebble
	// Builder's O(1) FreeSlots relies on.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		count := 0
		for i := 0; i < 200; i++ {
			id := rng.Intn(n)
			if rng.Intn(2) == 0 {
				if s.TestAndSet(id) {
					count++
				}
			} else if s.TestAndClear(id) {
				count--
			}
			if count != s.Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
