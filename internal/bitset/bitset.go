// Package bitset provides a dense, fixed-capacity bitset used as the hot
// data structure throughout the pebbling engine: red-pebble sets (one per
// processor shade), the blue-pebble set, visited sets in the exact solver,
// and reachability masks in DAG analysis all store node IDs in bitsets.
//
// The zero value of Set is an empty set with capacity 0; use New to create
// a set able to hold IDs in [0, n). All operations panic if an ID is out of
// range, mirroring slice indexing: in this codebase an out-of-range node ID
// is always a programming error, never an input error.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over IDs [0, n). Sets with the same capacity can be
// combined with the binary operations; combining sets of different capacity
// panics.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for IDs in [0, n). A negative
// capacity panics — a programmer error, like a negative make() length.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a set of capacity n containing the given IDs.
func FromSlice(n int, ids []int) *Set {
	s := New(n)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Cap returns the capacity (the exclusive upper bound on member IDs).
func (s *Set) Cap() int { return s.n }

// check panics when id i is outside the set's capacity — the bitset
// equivalent of an index-out-of-range programmer error.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: id %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// TestAndSet inserts i and reports whether the set changed (i was
// absent). It lets callers that mirror a set with a cardinality counter
// stay exact without a separate Contains probe.
func (s *Set) TestAndSet(i int) bool {
	s.check(i)
	w := i / wordBits
	m := uint64(1) << (uint(i) % wordBits)
	old := s.words[w]
	s.words[w] = old | m
	return old&m == 0
}

// TestAndClear removes i and reports whether the set changed (i was
// present) — the removal counterpart of TestAndSet.
func (s *Set) TestAndClear(i int) bool {
	s.check(i)
	w := i / wordBits
	m := uint64(1) << (uint(i) % wordBits)
	old := s.words[w]
	s.words[w] = old &^ m
	return old&m != 0
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of t. Capacities must match.
func (s *Set) CopyFrom(t *Set) {
	s.sameCap(t)
	copy(s.words, t.words)
}

// sameCap panics when the two sets' capacities differ — mixing universes
// in a set operation is a programmer error.
func (s *Set) sameCap(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.sameCap(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.sameCap(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// SubtractWith removes every element of t from s.
func (s *Set) SubtractWith(t *Set) {
	s.sameCap(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Union returns a new set holding s ∪ t.
func (s *Set) Union(t *Set) *Set {
	out := s.Clone()
	out.UnionWith(t)
	return out
}

// Intersect returns a new set holding s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	out := s.Clone()
	out.IntersectWith(t)
	return out
}

// Subtract returns a new set holding s \ t.
func (s *Set) Subtract(t *Set) *Set {
	out := s.Clone()
	out.SubtractWith(t)
	return out
}

// ContainsAll reports whether every element of t is in s.
func (s *Set) ContainsAll(t *Set) bool {
	s.sameCap(t)
	for i, w := range t.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	s.sameCap(t)
	for i, w := range t.words {
		if w&s.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t hold exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Next returns the smallest element >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits) << (uint(i) % wordBits)
	for {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = s.words[wi]
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int { return s.Next(0) }

// Hash returns a 64-bit FNV-1a style hash of the set contents. Sets that
// are Equal hash identically.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		h ^= w
		h *= prime
	}
	return h
}

// AppendWords appends the raw words of the set to dst and returns the
// extended slice; used to build hash keys spanning several sets.
func (s *Set) AppendWords(dst []uint64) []uint64 {
	return append(dst, s.words...)
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
