package dag

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || !reflect.DeepEqual(g2.Edges(), g.Edges()) || g2.Name() != g.Name() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
}

func TestJSONLabels(t *testing.T) {
	b := NewBuilder("lab")
	v := b.AddLabeledNode("x")
	w := b.AddNode()
	b.AddEdge(v, w)
	g := b.MustBuild()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Label(v) != "x" {
		t.Fatal("label lost in round trip")
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := FromJSON([]byte(`{"n": 1, "edges": [[0, 7]]}`)); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := FromJSON([]byte(`{"n": 2, "edges": [], "labels": [{"id": 9, "label": "x"}]}`)); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.Edges(), g.Edges()) || g2.Name() != "diamond" {
		t.Fatal("text round trip mismatch")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"edge 0 1",          // edge before nodes
		"nodes 2\nedge 0",   // malformed edge
		"nodes 2\nfoo",      // unknown directive
		"nodes 2\nnodes 3",  // duplicate nodes
		"",                  // missing nodes
		"nodes x",           // bad count
		"nodes 2\nedge 0 5", // out of range (caught at Build)
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nname g\nnodes 2\n edge 0 1 \n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatal("comment handling broke parse")
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "0 -> 1", "2 -> 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestStringSummary(t *testing.T) {
	g := diamond(t)
	s := g.String()
	for _, want := range []string{"n=4", "m=4", "0→1,2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestUnionAndSerial(t *testing.T) {
	g := diamond(t)
	u, off := Union("u", g, g)
	if u.N() != 8 || u.M() != 8 {
		t.Fatalf("union n=%d m=%d", u.N(), u.M())
	}
	if off[1] != 4 {
		t.Fatalf("union offsets = %v", off)
	}
	if !u.HasEdge(4, 5) {
		t.Error("union missing shifted edge")
	}

	s, soff := Serial("s", g, g)
	if s.N() != 8 || s.M() != 9 { // 4+4 edges + 1 sink→source bridge
		t.Fatalf("serial n=%d m=%d", s.N(), s.M())
	}
	if !s.HasEdge(soff[0]+3, soff[1]+0) {
		t.Error("serial missing bridge edge")
	}
	if got := s.CriticalPathLength(); got != 6 {
		t.Fatalf("serial depth = %d", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond(t)
	sub, remap := InducedSubgraph("sub", g, []NodeID{0, 1, 3})
	if sub.N() != 3 || sub.M() != 2 { // edges 0→1 and 1→3 survive
		t.Fatalf("sub n=%d m=%d", sub.N(), sub.M())
	}
	if remap[2] != -1 || remap[0] == -1 {
		t.Fatalf("remap = %v", remap)
	}
	// duplicate keep entries are tolerated
	sub2, _ := InducedSubgraph("sub2", g, []NodeID{1, 1, 1})
	if sub2.N() != 1 {
		t.Fatalf("dup keep n=%d", sub2.N())
	}
}
