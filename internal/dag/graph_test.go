package dag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// diamond builds the 4-node diamond 0→{1,2}→3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	v := b.AddNodes(4)
	b.AddEdge(v[0], v[1])
	b.AddEdge(v[0], v[2])
	b.AddEdge(v[1], v[3])
	b.AddEdge(v[2], v[3])
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDiamondBasics(t *testing.T) {
	g := diamond(t)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if got := g.Succ(0); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Errorf("Succ(0) = %v", got)
	}
	if got := g.Pred(3); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Errorf("Pred(3) = %v", got)
	}
	if g.InDegree(3) != 2 || g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Error("degree mismatch")
	}
	if g.MaxInDegree() != 2 || g.MaxOutDegree() != 2 {
		t.Error("max degree mismatch")
	}
	if got := g.Sources(); !reflect.DeepEqual(got, []NodeID{0}) {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []NodeID{3}) {
		t.Errorf("Sinks = %v", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Error("HasEdge mismatch")
	}
	if !g.IsSource(0) || !g.IsSink(3) || g.IsSink(0) {
		t.Error("IsSource/IsSink mismatch")
	}
}

func TestTopoIsValidAndDeterministic(t *testing.T) {
	g := diamond(t)
	topo := g.Topo()
	if !reflect.DeepEqual(topo, []NodeID{0, 1, 2, 3}) {
		t.Fatalf("Topo = %v", topo)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder("c")
		v := b.AddNodes(3)
		b.AddEdge(v[0], v[1])
		b.AddEdge(v[1], v[2])
		b.AddEdge(v[2], v[0])
		if _, err := b.Build(); err == nil {
			t.Fatal("cycle accepted")
		}
	})
	t.Run("self-loop", func(t *testing.T) {
		b := NewBuilder("s")
		v := b.AddNode()
		b.AddEdge(v, v)
		if _, err := b.Build(); err == nil {
			t.Fatal("self-loop accepted")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		b := NewBuilder("d")
		v := b.AddNodes(2)
		b.AddEdge(v[0], v[1])
		b.AddEdge(v[0], v[1])
		if _, err := b.Build(); err == nil {
			t.Fatal("duplicate edge accepted")
		}
	})
	t.Run("out of range", func(t *testing.T) {
		b := NewBuilder("o")
		b.AddNode()
		b.AddEdge(0, 5)
		if _, err := b.Build(); err == nil {
			t.Fatal("out-of-range edge accepted")
		}
	})
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder("empty").MustBuild()
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph not empty")
	}
	if got := g.CriticalPathLength(); got != 0 {
		t.Fatalf("depth of empty = %d", got)
	}
}

func TestChainHelpers(t *testing.T) {
	b := NewBuilder("chain")
	ids := b.AddNewChain(5)
	g := b.MustBuild()
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("chain n=%d m=%d", g.N(), g.M())
	}
	if got := g.CriticalPathLength(); got != 5 {
		t.Fatalf("chain depth = %d", got)
	}
	if ids[0] != 0 || ids[4] != 4 {
		t.Fatalf("chain ids = %v", ids)
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	lvl, depth := g.Levels()
	if !reflect.DeepEqual(lvl, []int{0, 1, 1, 2}) || depth != 3 {
		t.Fatalf("Levels = %v depth=%d", lvl, depth)
	}
	sets := g.LevelSets()
	if len(sets) != 3 || !reflect.DeepEqual(sets[1], []NodeID{1, 2}) {
		t.Fatalf("LevelSets = %v", sets)
	}
	if g.WidestLevel() != 2 {
		t.Fatalf("WidestLevel = %d", g.WidestLevel())
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond(t)
	if got := g.Ancestors(3).Slice(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Ancestors(3) = %v", got)
	}
	if got := g.Descendants(0).Slice(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Descendants(0) = %v", got)
	}
	if !g.Ancestors(0).Empty() || !g.Descendants(3).Empty() {
		t.Error("source has ancestors / sink has descendants")
	}
}

func TestAncestorCounts(t *testing.T) {
	g := diamond(t)
	if got := g.AncestorCounts(); !reflect.DeepEqual(got, []int{0, 1, 1, 3}) {
		t.Errorf("AncestorCounts(diamond) = %v, want [0 1 1 3]", got)
	}
	if st := g.ComputeStats(); st.MaxAncestors != 3 {
		t.Errorf("MaxAncestors = %d, want 3", st.MaxAncestors)
	}
	// Property: the sweep-based counts agree with per-node Ancestors.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := randomDAG(rng, n, 0.4)
		counts := g.AncestorCounts()
		for v := 0; v < n; v++ {
			if counts[v] != g.Ancestors(NodeID(v)).Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCountPaths(t *testing.T) {
	g := diamond(t)
	if got := g.CountPaths(1 << 40); got != 2 {
		t.Fatalf("CountPaths(diamond) = %d", got)
	}
	// Chain of diamonds multiplies path counts: serial composition of 3
	// diamonds has 2^3 = 8 paths.
	s, _ := Serial("3diamonds", g, g, g)
	if got := s.CountPaths(1 << 40); got != 8 {
		t.Fatalf("CountPaths(serial) = %d", got)
	}
}

func TestClassPredicates(t *testing.T) {
	// Star 0→1, 0→2, 0→3 is 2-layer and... out-degree 3, so not in-tree.
	b := NewBuilder("star")
	v := b.AddNodes(4)
	for i := 1; i < 4; i++ {
		b.AddEdge(v[0], v[i])
	}
	star := b.MustBuild()
	if !star.IsTwoLayer() {
		t.Error("star not 2-layer")
	}
	if star.IsInTree() {
		t.Error("star claimed in-tree")
	}

	// In-star 1→0, 2→0, 3→0 is an in-tree.
	b2 := NewBuilder("instar")
	w := b2.AddNodes(4)
	for i := 1; i < 4; i++ {
		b2.AddEdge(w[i], w[0])
	}
	instar := b2.MustBuild()
	if !instar.IsInTree() {
		t.Error("in-star not in-tree")
	}

	d := diamond(t)
	if d.IsTwoLayer() {
		t.Error("diamond claimed 2-layer")
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder("lab")
	v := b.AddLabeledNode("input")
	w := b.AddNode()
	b.AddEdge(v, w)
	g := b.MustBuild()
	if g.Label(v) != "input" || g.Label(w) != "" {
		t.Fatal("labels mismatch")
	}
}

func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder("rand")
	b.AddNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

func TestQuickTopoRespectsEdges(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), rng.Float64()*0.4)
		pos := make([]int, g.N())
		for i, v := range g.Topo() {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return len(g.Topo()) == g.N()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreesSumToEdges(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(50), rng.Float64()*0.5)
		in, out := 0, 0
		for v := 0; v < g.N(); v++ {
			in += g.InDegree(NodeID(v))
			out += g.OutDegree(NodeID(v))
		}
		return in == g.M() && out == g.M()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(30), rng.Float64()*0.5)
		rr := Reverse("rr", Reverse("r", g))
		return reflect.DeepEqual(g.Edges(), rr.Edges())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
