package dag

import "repro/internal/bitset"

// Levels returns, for each node, the length of the longest path from any
// source to the node (sources are level 0). The second result is the number
// of distinct levels (i.e. the length of the longest path + 1).
func (g *Graph) Levels() ([]int, int) {
	lvl := make([]int, g.N())
	maxLvl := 0
	for _, v := range g.Topo() {
		for _, u := range g.Pred(v) {
			if lvl[u]+1 > lvl[v] {
				lvl[v] = lvl[u] + 1
			}
		}
		if lvl[v] > maxLvl {
			maxLvl = lvl[v]
		}
	}
	if g.N() == 0 {
		return lvl, 0
	}
	return lvl, maxLvl + 1
}

// CriticalPathLength returns the number of nodes on a longest directed path
// (for unit-cost nodes this is the minimum possible number of parallel
// compute steps, regardless of processor count).
func (g *Graph) CriticalPathLength() int {
	_, depth := g.Levels()
	return depth
}

// LevelSets groups node IDs by level; index i holds the nodes at level i.
func (g *Graph) LevelSets() [][]NodeID {
	lvl, depth := g.Levels()
	out := make([][]NodeID, depth)
	for v := 0; v < g.N(); v++ {
		out[lvl[v]] = append(out[lvl[v]], NodeID(v))
	}
	return out
}

// Ancestors returns the set of nodes from which v is reachable (excluding v
// itself).
func (g *Graph) Ancestors(v NodeID) *bitset.Set {
	s := bitset.New(g.N())
	stack := []NodeID{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Pred(x) {
			if !s.Contains(int(u)) {
				s.Add(int(u))
				stack = append(stack, u)
			}
		}
	}
	return s
}

// AncestorCounts returns, for each node, the number of distinct ancestors
// (nodes from which it is reachable, excluding itself). Computed in one
// topological sweep with bitset unions, so it is cheap enough to run at
// solver init; the exact solver's I/O-aware heuristic and the DAG stats
// both use it.
func (g *Graph) AncestorCounts() []int {
	counts := make([]int, g.N())
	sets := make([]*bitset.Set, g.N())
	for _, v := range g.Topo() {
		s := bitset.New(g.N())
		for _, u := range g.Pred(v) {
			s.Add(int(u))
			s.UnionWith(sets[u])
		}
		sets[v] = s
		counts[v] = s.Count()
	}
	return counts
}

// Descendants returns the set of nodes reachable from v (excluding v).
func (g *Graph) Descendants(v NodeID) *bitset.Set {
	s := bitset.New(g.N())
	stack := []NodeID{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succ(x) {
			if !s.Contains(int(w)) {
				s.Add(int(w))
				stack = append(stack, w)
			}
		}
	}
	return s
}

// CountPaths returns the number of distinct source→sink paths, capped at
// cap (pass a large cap such as 1<<60 for an exact count on small DAGs).
func (g *Graph) CountPaths(cap int64) int64 {
	paths := make([]int64, g.N())
	topo := g.Topo()
	var total int64
	for _, v := range topo {
		if g.IsSource(v) {
			paths[v] = 1
		}
		for _, u := range g.Pred(v) {
			paths[v] += paths[u]
			if paths[v] > cap {
				paths[v] = cap
			}
		}
		if g.IsSink(v) {
			total += paths[v]
			if total > cap {
				total = cap
			}
		}
	}
	return total
}

// IsTwoLayer reports whether the longest path has length ≤ 1 (every edge
// goes from a source to a sink) — the "2-layer DAG" class of Lemma 2.
func (g *Graph) IsTwoLayer() bool {
	return g.CriticalPathLength() <= 2
}

// IsInTree reports whether every node has out-degree ≤ 1 — the "in-tree"
// class of Lemma 2 (a forest of in-trees).
func (g *Graph) IsInTree() bool {
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(NodeID(v)) > 1 {
			return false
		}
	}
	return true
}

// WidestLevel returns the size of the largest level — an upper bound on
// exploitable per-step parallelism under level-synchronous execution.
func (g *Graph) WidestLevel() int {
	w := 0
	for _, l := range g.LevelSets() {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// Stats bundles the headline shape metrics of a DAG.
type Stats struct {
	Name         string
	N, M         int
	Sources      int
	Sinks        int
	MaxIn        int
	MaxOut       int
	Depth        int // critical path length in nodes
	WidestLevel  int
	MaxAncestors int // largest ancestor set of any node
}

// maxAncestorsCap is the largest graph for which ComputeStats computes
// MaxAncestors: AncestorCounts holds Θ(n²/64) bitset words, which is fine
// at solver scale but reaches gigabytes past ~10⁵ nodes. Above the cap
// the field is reported as -1 (not computed).
const maxAncestorsCap = 1 << 14

// ComputeStats gathers the Stats of g. On graphs larger than
// maxAncestorsCap nodes MaxAncestors is -1: the ancestor sweep is
// quadratic in memory and the headline stats must stay O(n) so the
// CLIs can print them for million-node instances.
func (g *Graph) ComputeStats() Stats {
	maxAnc := -1
	if g.N() <= maxAncestorsCap {
		maxAnc = 0
		for _, c := range g.AncestorCounts() {
			if c > maxAnc {
				maxAnc = c
			}
		}
	}
	return Stats{
		Name:         g.name,
		N:            g.N(),
		M:            g.M(),
		Sources:      len(g.sources),
		Sinks:        len(g.sinks),
		MaxIn:        g.maxIn,
		MaxOut:       g.maxOut,
		Depth:        g.CriticalPathLength(),
		WidestLevel:  g.WidestLevel(),
		MaxAncestors: maxAnc,
	}
}
