package dag

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Name   string           `json:"name,omitempty"`
	N      int              `json:"n"`
	Edges  [][2]NodeID      `json:"edges"`
	Labels map[string]int32 `json:"-"` // unused; kept for clarity
	Label  []labeledNode    `json:"labels,omitempty"`
}

type labeledNode struct {
	ID    NodeID `json:"id"`
	Label string `json:"label"`
}

// MarshalJSON encodes the graph as {"name", "n", "edges", "labels"}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name, N: g.N(), Edges: g.Edges()}
	if g.labels != nil {
		for v, l := range g.labels {
			if l != "" {
				jg.Label = append(jg.Label, labeledNode{NodeID(v), l})
			}
		}
	}
	return json.Marshal(jg)
}

// FromJSON decodes a graph previously encoded with MarshalJSON.
func FromJSON(data []byte) (*Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("dag: decoding JSON: %w", err)
	}
	b := NewBuilder(jg.Name)
	b.AddNodes(jg.N)
	for _, e := range jg.Edges {
		b.AddEdge(e[0], e[1])
	}
	for _, l := range jg.Label {
		if l.ID < 0 || int(l.ID) >= jg.N {
			return nil, fmt.Errorf("dag: JSON label on out-of-range node %d", l.ID)
		}
		b.SetLabel(l.ID, l.Label)
	}
	return b.Build()
}

// WriteDOT writes the graph in Graphviz DOT format.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", dotName(g.name))
	for v := 0; v < g.N(); v++ {
		if l := g.Label(NodeID(v)); l != "" {
			fmt.Fprintf(bw, "  %d [label=%q];\n", v, l)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -> %d;\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func dotName(s string) string {
	if s == "" {
		return "dag"
	}
	return s
}

// WriteText writes the simple line-oriented text format:
//
//	# comment
//	name <name>
//	nodes <n>
//	edge <u> <v>
//
// Lines may appear in any order except that nodes must precede edges.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if g.name != "" {
		fmt.Fprintf(bw, "name %s\n", g.name)
	}
	fmt.Fprintf(bw, "nodes %d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// ReadText parses the text format written by WriteText.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	name := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: name wants 1 argument", lineNo)
			}
			name = fields[1]
		case "nodes":
			if b != nil {
				return nil, fmt.Errorf("dag: line %d: duplicate nodes directive", lineNo)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: bad nodes directive", lineNo)
			}
			b = NewBuilder(name)
			b.AddNodes(n)
		case "edge":
			if b == nil {
				return nil, fmt.Errorf("dag: line %d: edge before nodes", lineNo)
			}
			var u, v NodeID
			if len(fields) != 3 {
				return nil, fmt.Errorf("dag: line %d: edge wants 2 arguments", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("dag: line %d: bad edge endpoints", lineNo)
			}
			b.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dag: reading: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dag: missing nodes directive")
	}
	return b.Build()
}

// String renders a compact human-readable summary plus the adjacency of
// small graphs (full adjacency only when N ≤ 32).
func (g *Graph) String() string {
	st := g.ComputeStats()
	var b strings.Builder
	fmt.Fprintf(&b, "dag %q: n=%d m=%d sources=%d sinks=%d Δin=%d depth=%d",
		st.Name, st.N, st.M, st.Sources, st.Sinks, st.MaxIn, st.Depth)
	if g.N() <= 32 {
		b.WriteString(" {")
		first := true
		for u := 0; u < g.N(); u++ {
			if g.OutDegree(NodeID(u)) == 0 {
				continue
			}
			if !first {
				b.WriteString("; ")
			}
			first = false
			succs := make([]string, 0, g.OutDegree(NodeID(u)))
			for _, v := range g.Succ(NodeID(u)) {
				succs = append(succs, fmt.Sprint(v))
			}
			sort.Strings(succs)
			fmt.Fprintf(&b, "%d→%s", u, strings.Join(succs, ","))
		}
		b.WriteString("}")
	}
	return b.String()
}
