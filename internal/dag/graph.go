// Package dag implements the computational DAGs that red-blue pebbling
// operates on: directed acyclic graphs whose nodes are unit operations and
// whose edges are data dependencies.
//
// Graphs are built through a Builder, which accumulates nodes and edges and
// performs validation (duplicate edges, self-loops, cycles) at Build time.
// The built Graph is immutable; all analysis (topological order, levels,
// degrees, critical path) is computed on demand and cached.
//
// Node IDs are dense integers [0, N). Generators in package gen assign IDs
// in a deterministic order so experiments are reproducible.
package dag

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in a Graph. IDs are dense in [0, N).
type NodeID = int32

// Graph is an immutable directed acyclic graph. Use NewBuilder to create
// one. Parallel edges and self-loops are rejected at Build time.
type Graph struct {
	name string

	// CSR-style adjacency: succ[succOff[v]:succOff[v+1]] are the
	// out-neighbors of v, in ascending order; likewise pred for
	// in-neighbors.
	succOff []int32
	succ    []NodeID
	predOff []int32
	pred    []NodeID

	labels []string // optional node labels; nil when no node is labeled

	topo    []NodeID // cached topological order (index-ascending tiebreak)
	sources []NodeID
	sinks   []NodeID
	maxIn   int
	maxOut  int
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.succOff) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.succ) }

// Name returns the graph's descriptive name (may be empty).
func (g *Graph) Name() string { return g.name }

// Succ returns the out-neighbors of v in ascending order. The returned
// slice is shared; callers must not modify it.
func (g *Graph) Succ(v NodeID) []NodeID { return g.succ[g.succOff[v]:g.succOff[v+1]] }

// Pred returns the in-neighbors of v in ascending order. The returned
// slice is shared; callers must not modify it.
func (g *Graph) Pred(v NodeID) []NodeID { return g.pred[g.predOff[v]:g.predOff[v+1]] }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int { return int(g.predOff[v+1] - g.predOff[v]) }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.succOff[v+1] - g.succOff[v]) }

// MaxInDegree returns Δ_in, the largest in-degree in the graph.
func (g *Graph) MaxInDegree() int { return g.maxIn }

// MaxOutDegree returns the largest out-degree in the graph.
func (g *Graph) MaxOutDegree() int { return g.maxOut }

// Sources returns the nodes with in-degree 0, ascending. Shared slice.
func (g *Graph) Sources() []NodeID { return g.sources }

// Sinks returns the nodes with out-degree 0, ascending. Shared slice.
func (g *Graph) Sinks() []NodeID { return g.sinks }

// IsSource reports whether v has no predecessors.
func (g *Graph) IsSource(v NodeID) bool { return g.InDegree(v) == 0 }

// IsSink reports whether v has no successors.
func (g *Graph) IsSink(v NodeID) bool { return g.OutDegree(v) == 0 }

// Label returns the label of v, or "" if unlabeled.
func (g *Graph) Label(v NodeID) string {
	if g.labels == nil {
		return ""
	}
	return g.labels[v]
}

// HasEdge reports whether the edge (u,v) exists, in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	s := g.Succ(u)
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Topo returns a topological order of the nodes (smallest-ID-first among
// ready nodes, so the order is deterministic). Shared slice.
func (g *Graph) Topo() []NodeID { return g.topo }

// Edges returns all edges as (u,v) pairs in u-ascending order.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(NodeID(u)) {
			out = append(out, [2]NodeID{NodeID(u), v})
		}
	}
	return out
}

// Builder accumulates nodes and edges for a Graph.
type Builder struct {
	name   string
	n      int
	edges  [][2]NodeID
	labels map[NodeID]string
}

// NewBuilder returns a Builder for a graph with the given descriptive name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: map[NodeID]string{}}
}

// AddNode appends one node and returns its ID. The node count is capped
// at 2³¹−1 because NodeID is an int32 (and the CSR offset arrays built by
// Build are int32 too); exceeding the cap panics — a programmer error at
// the call site, guarded upstream by the size validators in package gen.
func (b *Builder) AddNode() NodeID {
	if b.n >= math.MaxInt32 {
		panic(fmt.Sprintf("dag: node count %d exceeds the 2^31-1 int32 NodeID limit", b.n))
	}
	id := NodeID(b.n)
	b.n++
	return id
}

// AddNodes appends c nodes and returns their IDs.
func (b *Builder) AddNodes(c int) []NodeID {
	ids := make([]NodeID, c)
	for i := range ids {
		ids[i] = b.AddNode()
	}
	return ids
}

// AddLabeledNode appends one node with a label and returns its ID.
func (b *Builder) AddLabeledNode(label string) NodeID {
	id := b.AddNode()
	b.labels[id] = label
	return id
}

// SetLabel sets the label of an existing node.
func (b *Builder) SetLabel(v NodeID, label string) { b.labels[v] = label }

// AddEdge records the directed edge u → v. Validation happens at Build.
// Like AddNode, the edge count is capped at 2³¹−1 (the CSR offsets are
// int32); exceeding it panics — a programmer error at the call site.
func (b *Builder) AddEdge(u, v NodeID) {
	if len(b.edges) >= math.MaxInt32 {
		panic(fmt.Sprintf("dag: edge count %d exceeds the 2^31-1 int32 offset limit", len(b.edges)))
	}
	b.edges = append(b.edges, [2]NodeID{u, v})
}

// AddChain adds edges v0→v1→…→vk along the given nodes.
func (b *Builder) AddChain(nodes ...NodeID) {
	for i := 0; i+1 < len(nodes); i++ {
		b.AddEdge(nodes[i], nodes[i+1])
	}
}

// AddNewChain appends length fresh nodes joined into a chain and returns
// them. A length of 0 returns nil.
func (b *Builder) AddNewChain(length int) []NodeID {
	ids := b.AddNodes(length)
	b.AddChain(ids...)
	return ids
}

// N returns the number of nodes added so far.
func (b *Builder) N() int { return b.n }

// Build validates the accumulated graph and returns it. It returns an
// error if an edge endpoint is out of range, an edge is duplicated, a
// self-loop exists, or the edge set contains a cycle.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	for _, e := range b.edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("dag %q: edge (%d,%d) out of range [0,%d)", b.name, e[0], e[1], n)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("dag %q: self-loop at node %d", b.name, e[0])
		}
	}

	edges := make([][2]NodeID, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for i := 1; i < len(edges); i++ {
		if edges[i] == edges[i-1] {
			return nil, fmt.Errorf("dag %q: duplicate edge (%d,%d)", b.name, edges[i][0], edges[i][1])
		}
	}

	g := &Graph{name: b.name}
	g.succOff = make([]int32, n+1)
	g.succ = make([]NodeID, len(edges))
	g.predOff = make([]int32, n+1)
	g.pred = make([]NodeID, len(edges))

	for _, e := range edges {
		g.succOff[e[0]+1]++
		g.predOff[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		g.succOff[v+1] += g.succOff[v]
		g.predOff[v+1] += g.predOff[v]
	}
	fillS := make([]int32, n)
	fillP := make([]int32, n)
	for _, e := range edges {
		g.succ[g.succOff[e[0]]+fillS[e[0]]] = e[1]
		fillS[e[0]]++
		g.pred[g.predOff[e[1]]+fillP[e[1]]] = e[0]
		fillP[e[1]]++
	}
	// pred lists must be sorted ascending; edges were sorted by (u,v) so
	// succ lists are already ascending, pred lists are not.
	for v := 0; v < n; v++ {
		p := g.pred[g.predOff[v]:g.predOff[v+1]]
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}

	if len(b.labels) > 0 {
		g.labels = make([]string, n)
		for id, l := range b.labels {
			if int(id) >= n || id < 0 {
				return nil, fmt.Errorf("dag %q: label on out-of-range node %d", b.name, id)
			}
			g.labels[id] = l
		}
	}

	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo

	for v := 0; v < n; v++ {
		if d := g.InDegree(NodeID(v)); d > g.maxIn {
			g.maxIn = d
		}
		if d := g.OutDegree(NodeID(v)); d > g.maxOut {
			g.maxOut = d
		}
		if g.InDegree(NodeID(v)) == 0 {
			g.sources = append(g.sources, NodeID(v))
		}
		if g.OutDegree(NodeID(v)) == 0 {
			g.sinks = append(g.sinks, NodeID(v))
		}
	}
	return g, nil
}

// MustBuild is Build but panics on error. It is reserved for generators
// whose output is correct by construction (a cycle or dangling edge
// there is a bug in the generator, not bad input); anything building a
// graph from external data — files, CLI flags, network — must call
// Build and return the error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dag: MustBuild on invalid generator output (programmer error): %v", err))
	}
	return g
}

// computeTopo runs Kahn's algorithm with a min-heap on node ID so the
// produced order is deterministic. Returns an error if a cycle remains.
func (g *Graph) computeTopo() ([]NodeID, error) {
	n := g.N()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(NodeID(v)))
	}
	var heap nodeHeap
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.push(NodeID(v))
		}
	}
	order := make([]NodeID, 0, n)
	for heap.len() > 0 {
		v := heap.pop()
		order = append(order, v)
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				heap.push(w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag %q: cycle detected (%d of %d nodes ordered)", g.name, len(order), n)
	}
	return order, nil
}

// nodeHeap is a minimal binary min-heap of NodeIDs (avoiding the
// container/heap interface indirection on this hot path).
type nodeHeap struct{ a []NodeID }

func (h *nodeHeap) len() int { return len(h.a) }

func (h *nodeHeap) push(v NodeID) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nodeHeap) pop() NodeID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.a[l] < h.a[s] {
			s = l
		}
		if r < last && h.a[r] < h.a[s] {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}
