package dag

import "fmt"

// Union returns the disjoint union of the given graphs: nodes of graphs[i]
// are shifted by the total node count of graphs[0..i-1]. The second return
// value gives the ID offset applied to each input graph.
func Union(name string, graphs ...*Graph) (*Graph, []NodeID) {
	b := NewBuilder(name)
	offsets := make([]NodeID, len(graphs))
	for i, g := range graphs {
		offsets[i] = NodeID(b.N())
		b.AddNodes(g.N())
		for u := 0; u < g.N(); u++ {
			if l := g.Label(NodeID(u)); l != "" {
				b.SetLabel(offsets[i]+NodeID(u), l)
			}
			for _, v := range g.Succ(NodeID(u)) {
				b.AddEdge(offsets[i]+NodeID(u), offsets[i]+v)
			}
		}
	}
	return b.MustBuild(), offsets
}

// Serial composes graphs sequentially: every sink of graphs[i] gains an
// edge to every source of graphs[i+1]. Returns the composed graph and the
// per-graph ID offsets.
func Serial(name string, graphs ...*Graph) (*Graph, []NodeID) {
	g, off := Union(name+"-union", graphs...)
	b := NewBuilder(name)
	b.AddNodes(g.N())
	for u := 0; u < g.N(); u++ {
		if l := g.Label(NodeID(u)); l != "" {
			b.SetLabel(NodeID(u), l)
		}
		for _, v := range g.Succ(NodeID(u)) {
			b.AddEdge(NodeID(u), v)
		}
	}
	for i := 0; i+1 < len(graphs); i++ {
		for _, s := range graphs[i].Sinks() {
			for _, t := range graphs[i+1].Sources() {
				b.AddEdge(off[i]+s, off[i+1]+t)
			}
		}
	}
	return b.MustBuild(), off
}

// InducedSubgraph returns the subgraph induced by keep (which must be
// closed under nothing in particular — edges with an endpoint outside keep
// are dropped). The second result maps old IDs to new IDs (-1 if
// dropped). A keep ID outside g panics — a programmer error, like
// indexing out of range.
func InducedSubgraph(name string, g *Graph, keep []NodeID) (*Graph, []NodeID) {
	remap := make([]NodeID, g.N())
	for i := range remap {
		remap[i] = -1
	}
	b := NewBuilder(name)
	for _, v := range keep {
		if v < 0 || int(v) >= g.N() {
			panic(fmt.Sprintf("dag: InducedSubgraph node %d out of range", v))
		}
		if remap[v] != -1 {
			continue
		}
		remap[v] = b.AddNode()
		if l := g.Label(v); l != "" {
			b.SetLabel(remap[v], l)
		}
	}
	for u := 0; u < g.N(); u++ {
		if remap[u] == -1 {
			continue
		}
		for _, v := range g.Succ(NodeID(u)) {
			if remap[v] != -1 {
				b.AddEdge(remap[u], remap[v])
			}
		}
	}
	return b.MustBuild(), remap
}

// Reverse returns the graph with every edge direction flipped (sources
// become sinks and vice versa). Node IDs are preserved.
func Reverse(name string, g *Graph) *Graph {
	b := NewBuilder(name)
	b.AddNodes(g.N())
	for u := 0; u < g.N(); u++ {
		if l := g.Label(NodeID(u)); l != "" {
			b.SetLabel(NodeID(u), l)
		}
		for _, v := range g.Succ(NodeID(u)) {
			b.AddEdge(v, NodeID(u))
		}
	}
	return b.MustBuild()
}
