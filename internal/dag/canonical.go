package dag

// Canonical structural encoding, the DAG half of an instance fingerprint
// (see internal/cache). Two graphs with the same node count and edge set
// must encode identically no matter how they were assembled — Builder
// insertion order, generator, or a spec string — and any structural
// difference (one node, one edge) must change the words.

// AppendCanonicalWords appends a representation-stable packed encoding
// of the graph's structure to dst and returns the extended slice: the
// node count, the edge count, then every edge as one word (u<<32 | v)
// in (u,v)-ascending order. The order is canonical by construction:
// Build sorts the edge set before laying out the CSR arrays, so the
// successor walk below visits edges identically for every insertion
// order. The descriptive name and node labels are deliberately
// excluded — they never affect pebbling costs, and two differently
// named copies of the same DAG must fingerprint the same.
func (g *Graph) AppendCanonicalWords(dst []uint64) []uint64 {
	dst = append(dst, uint64(g.N()), uint64(g.M()))
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succ(NodeID(u)) {
			dst = append(dst, uint64(uint32(u))<<32|uint64(uint32(v)))
		}
	}
	return dst
}
