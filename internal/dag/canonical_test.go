package dag

import (
	"reflect"
	"testing"
)

func buildChain3(t *testing.T, name string, reversed bool, label string) *Graph {
	t.Helper()
	b := NewBuilder(name)
	ids := b.AddNodes(3)
	if label != "" {
		b.SetLabel(ids[1], label)
	}
	if reversed {
		b.AddEdge(ids[1], ids[2])
		b.AddEdge(ids[0], ids[1])
	} else {
		b.AddEdge(ids[0], ids[1])
		b.AddEdge(ids[1], ids[2])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestAppendCanonicalWordsLayout pins the exact word layout the cache
// fingerprint depends on: node count, edge count, then each edge packed
// as u<<32|v in u-ascending (Build-sorted) order.
func TestAppendCanonicalWordsLayout(t *testing.T) {
	g := buildChain3(t, "chain3", false, "")
	got := g.AppendCanonicalWords(nil)
	want := []uint64{3, 2, 0<<32 | 1, 1<<32 | 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendCanonicalWords = %v, want %v", got, want)
	}
	// Appends to dst rather than replacing it.
	got = g.AppendCanonicalWords([]uint64{99})
	if !reflect.DeepEqual(got, append([]uint64{99}, want...)) {
		t.Errorf("AppendCanonicalWords with prefix = %v", got)
	}
}

// TestAppendCanonicalWordsInvariance: the words are a function of the
// structure only — edge insertion order, graph name and node labels must
// not show through.
func TestAppendCanonicalWordsInvariance(t *testing.T) {
	base := buildChain3(t, "a", false, "").AppendCanonicalWords(nil)
	if got := buildChain3(t, "b (different name)", true, "mid").AppendCanonicalWords(nil); !reflect.DeepEqual(got, base) {
		t.Errorf("cosmetic differences changed the canonical words: %v vs %v", got, base)
	}
}

// TestAppendCanonicalWordsDistinguishes: structurally different graphs
// with equal node/edge counts produce different words.
func TestAppendCanonicalWordsDistinguishes(t *testing.T) {
	chain := buildChain3(t, "chain", false, "").AppendCanonicalWords(nil)

	b := NewBuilder("fork")
	ids := b.AddNodes(3)
	b.AddEdge(ids[0], ids[1])
	b.AddEdge(ids[0], ids[2])
	fork, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := fork.AppendCanonicalWords(nil); reflect.DeepEqual(got, chain) {
		t.Errorf("chain and fork share canonical words: %v", got)
	}
}
