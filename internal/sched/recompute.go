package sched

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// RecomputeGreedy extends Greedy with the recomputation option the paper's
// model allows (Section 3.3): when a processor needs a missing input whose
// recomputation closure is cheaper than streaming it from slow memory
// (closure cost · computeCost < g), it recomputes the input instead of
// reading it. On tail-less gadgets like the Figure 2 zipper this matches
// the recomputation optimum that the pure greedy class — which never
// recomputes — misses by a Θ(g) factor.
type RecomputeGreedy struct {
	Greedy
	// MaxClosure bounds the size of a recomputation closure considered
	// worthwhile (0 means 1: only sources are recomputed).
	MaxClosure int
}

// Name implements Scheduler.
func (r RecomputeGreedy) Name() string {
	return fmt.Sprintf("recompute-%s", r.Greedy.Name())
}

// Schedule implements Scheduler.
func (r RecomputeGreedy) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	e := newGreedyEngine(in, r.Greedy)
	maxClosure := r.MaxClosure
	if maxClosure <= 0 {
		maxClosure = 1
	}
	// added tracks nodes the hook pinned on top of the fetch's working
	// set, so a rejected closure can roll its pins back and a completed
	// one knows which intermediates were not already fetch-pinned.
	var added []dag.NodeID
	e.recompute = func(p int, u dag.NodeID) bool {
		closure, boundary, ok := recomputeClosure(in.Graph, u, e.b.Config().Red[p], maxClosure)
		if !ok || len(closure)*in.ComputeCost >= in.G {
			return false
		}
		// The closure, its already-red boundary, and the pinned working
		// set must all stay resident simultaneously. closure and boundary
		// are disjoint, so the union size is the live pin count plus the
		// not-yet-pinned members of each.
		extra := 0
		for _, v := range closure {
			if !e.pinnedNow(v) {
				extra++
			}
		}
		for _, v := range boundary {
			if !e.pinnedNow(v) {
				extra++
			}
		}
		if e.pinCount+extra > in.R {
			return false
		}
		// Closure nodes must stay resident while later closure nodes
		// consume them, and the boundary must not be evicted either, so
		// both join the pinned set for the duration.
		added = added[:0]
		for _, v := range boundary {
			if e.pin(v) {
				added = append(added, v)
			}
		}
		for _, w := range closure {
			if err := e.makeRoom(p, 1); err != nil {
				// Reject, leaving any side-effect moves in place (the
				// oracle behaves the same); restore the fetch's pins.
				for _, v := range added {
					e.unpin(v)
				}
				return false
			}
			e.b.Compute(p, w)
			e.residentAdd(p, w)
			if e.pin(w) {
				added = append(added, w)
			}
		}
		// Drop intermediate closure nodes: everything but u itself that
		// was not already pinned by the fetch (i.e. that the hook pinned).
		for _, w := range closure {
			if w == u {
				continue
			}
			hookPinned := false
			for _, v := range added {
				if v == w {
					hookPinned = true
					break
				}
			}
			if hookPinned {
				e.b.DropRed(p, w)
				e.residentDrop(p, w)
			}
		}
		for _, v := range added {
			e.unpin(v)
		}
		return true
	}
	return e.run()
}

// recomputeClosure returns a topologically ordered list of uncached
// ancestors (plus u itself) that suffices to recompute u on a processor
// currently holding the red set 'have', together with the boundary: the
// already-red nodes the closure reads. Returns ok=false if the closure
// exceeds max nodes.
func recomputeClosure(g *dag.Graph, u dag.NodeID, have interface{ Contains(int) bool }, max int) (closure, boundary []dag.NodeID, ok bool) {
	needed := map[dag.NodeID]bool{}
	onBoundary := map[dag.NodeID]bool{}
	var visit func(v dag.NodeID) bool
	visit = func(v dag.NodeID) bool {
		if needed[v] {
			return true
		}
		if have.Contains(int(v)) {
			onBoundary[v] = true
			return true
		}
		if len(needed) >= max {
			return false
		}
		needed[v] = true
		for _, w := range g.Pred(v) {
			if !visit(w) {
				return false
			}
		}
		return true
	}
	if !visit(u) {
		return nil, nil, false
	}
	// Topological order restricted to the closure.
	for _, v := range g.Topo() {
		if needed[v] {
			closure = append(closure, v)
		}
	}
	for v := range onBoundary {
		boundary = append(boundary, v)
	}
	return closure, boundary, true
}
