package sched

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/pebble"
)

// Improve applies cost-reducing peephole passes to a valid strategy until
// a fixpoint, re-validating the result (the returned strategy always
// passes pebble.Replay and its cost never exceeds the input's):
//
//  1. no-op elision: reads of already-red nodes, writes of already-blue
//     nodes and recomputations of already-red nodes are dropped.
//  2. dead-write elision: writes whose blue pebble is never read later
//     and is not needed for terminal sink coverage are dropped.
//  3. parallel packing: adjacent moves of the same costed kind touching
//     disjoint processor sets merge into one move, halving their cost —
//     the transformation that turns sequential single-action I/O into the
//     parallel moves the MPP cost function rewards.
//
// Improve returns the improved strategy with its validated report.
func Improve(in *pebble.Instance, s *pebble.Strategy) (*pebble.Strategy, *pebble.Report, error) {
	cur := s
	curRep, err := pebble.Replay(in, cur)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: Improve input invalid: %w", err)
	}
	for {
		next := elideNoOps(in, cur)
		next = elideDeadWrites(in, next)
		next = packParallel(in, next)
		next = repack(in, next)
		rep, err := pebble.Replay(in, next)
		if err != nil {
			// A pass produced an invalid strategy: a bug; fail loudly in
			// tests, but never hand the caller a broken strategy.
			return nil, nil, fmt.Errorf("sched: Improve pass broke the strategy: %w", err)
		}
		better := rep.Cost < curRep.Cost ||
			(rep.Cost == curRep.Cost && next.Len() < cur.Len())
		if !better {
			return cur, curRep, nil
		}
		cur, curRep = next, rep
	}
}

// elideNoOps walks the strategy tracking the configuration and drops
// actions with no effect (read of red, write of blue, compute of red on
// the same shade); moves left with no actions disappear.
func elideNoOps(in *pebble.Instance, s *pebble.Strategy) *pebble.Strategy {
	n, k := in.Graph.N(), in.K
	cfg := pebble.NewConfig(n, k)
	out := &pebble.Strategy{}
	for _, m := range s.Moves {
		var kept []pebble.Action
		for _, a := range m.Actions {
			switch m.Kind {
			case pebble.OpRead, pebble.OpCompute:
				if cfg.Red[a.Proc].Contains(int(a.Node)) {
					continue // already red on this shade
				}
				cfg.Red[a.Proc].Add(int(a.Node))
			case pebble.OpWrite:
				if cfg.Blue.Contains(int(a.Node)) {
					continue // already blue
				}
				cfg.Blue.Add(int(a.Node))
			case pebble.OpDelete:
				if a.Proc == pebble.BlueProc {
					cfg.Blue.Remove(int(a.Node))
				} else {
					cfg.Red[a.Proc].Remove(int(a.Node))
				}
			}
			kept = append(kept, a)
		}
		if len(kept) > 0 {
			out.Append(pebble.Move{Kind: m.Kind, Actions: kept})
		}
	}
	return out
}

// elideDeadWrites drops write actions whose node is never read afterwards
// and is not a sink relying on the blue pebble for terminal coverage.
// Conservative: if any blue deletion of the node appears anywhere, the
// write is kept.
func elideDeadWrites(in *pebble.Instance, s *pebble.Strategy) *pebble.Strategy {
	n := in.Graph.N()
	blueDeleted := bitset.New(n)
	for _, m := range s.Moves {
		if m.Kind == pebble.OpDelete {
			for _, a := range m.Actions {
				if a.Proc == pebble.BlueProc {
					blueDeleted.Add(int(a.Node))
				}
			}
		}
	}
	// lastRead[v]: index of the last read of v; -1 if none.
	lastRead := make([]int, n)
	for i := range lastRead {
		lastRead[i] = -1
	}
	for i, m := range s.Moves {
		if m.Kind == pebble.OpRead {
			for _, a := range m.Actions {
				lastRead[a.Node] = i
			}
		}
	}
	// Sinks that end red on some shade do not need their blue pebble.
	endRed := endRedSet(in, s)
	isSink := bitset.New(n)
	for _, v := range in.Graph.Sinks() {
		isSink.Add(int(v))
	}
	out := &pebble.Strategy{}
	for i, m := range s.Moves {
		if m.Kind != pebble.OpWrite {
			out.Append(m)
			continue
		}
		var kept []pebble.Action
		for _, a := range m.Actions {
			v := int(a.Node)
			needed := lastRead[v] > i || blueDeleted.Contains(v) ||
				(isSink.Contains(v) && !endRed.Contains(v))
			if needed {
				kept = append(kept, a)
			}
		}
		if len(kept) > 0 {
			out.Append(pebble.Move{Kind: m.Kind, Actions: kept})
		}
	}
	return out
}

// endRedSet returns the nodes holding a red pebble (any shade) at the end
// of the strategy.
func endRedSet(in *pebble.Instance, s *pebble.Strategy) *bitset.Set {
	n, k := in.Graph.N(), in.K
	red := make([]*bitset.Set, k)
	for j := range red {
		red[j] = bitset.New(n)
	}
	for _, m := range s.Moves {
		switch m.Kind {
		case pebble.OpRead, pebble.OpCompute:
			for _, a := range m.Actions {
				red[a.Proc].Add(int(a.Node))
			}
		case pebble.OpDelete:
			for _, a := range m.Actions {
				if a.Proc != pebble.BlueProc {
					red[a.Proc].Remove(int(a.Node))
				}
			}
		}
	}
	out := bitset.New(n)
	for j := range red {
		out.UnionWith(red[j])
	}
	return out
}

// packParallel merges moves of the same costed kind into earlier moves
// when only free Delete moves lie between them and the merge provably
// preserves validity:
//
//   - the merged action's processor does not already act in the target
//     move (injective selection);
//   - no intervening delete touches a pebble the action needs or creates
//     (only deletes can occur in the window, so enabling state at the
//     earlier position is a superset of the current one otherwise);
//   - the processor's red count at the earlier position plus the new
//     pebble still respects r (reads/computes add a pebble that now
//     lives through the window).
func packParallel(in *pebble.Instance, s *pebble.Strategy) *pebble.Strategy {
	out := &pebble.Strategy{}
	red := make([]int, in.K) // current red counts per processor

	lastCosted := -1 // index in out.Moves of the last costed move
	// Window trackers since the last costed move (only deletes occur in
	// the window):
	deletedSince := make([]int, in.K)    // red deletions per proc
	deletedRed := map[[2]int32]bool{}    // (proc, node) red deletions
	deletedBlue := map[dag.NodeID]bool{} // blue deletions
	resetWindow := func() {
		for p := range deletedSince {
			deletedSince[p] = 0
		}
		deletedRed = map[[2]int32]bool{}
		deletedBlue = map[dag.NodeID]bool{}
	}
	applyCounts := func(m pebble.Move) {
		switch m.Kind {
		case pebble.OpRead, pebble.OpCompute:
			for _, a := range m.Actions {
				red[a.Proc]++
			}
		case pebble.OpDelete:
			for _, a := range m.Actions {
				if a.Proc != pebble.BlueProc {
					red[a.Proc]--
				}
			}
		}
	}

	for _, m := range s.Moves {
		if m.Kind == pebble.OpDelete {
			for _, a := range m.Actions {
				if a.Proc == pebble.BlueProc {
					deletedBlue[a.Node] = true
				} else {
					deletedSince[a.Proc]++
					deletedRed[[2]int32{int32(a.Proc), int32(a.Node)}] = true
				}
			}
			applyCounts(m)
			out.Append(m)
			continue
		}
		merged := false
		if lastCosted >= 0 && out.Moves[lastCosted].Kind == m.Kind {
			target := &out.Moves[lastCosted]
			ok := len(target.Actions)+len(m.Actions) <= in.K
			procs := map[int]bool{}
			nodes := map[dag.NodeID]bool{}
			for _, a := range target.Actions {
				procs[a.Proc] = true
				nodes[a.Node] = true
			}
			for _, a := range m.Actions {
				if !ok {
					break
				}
				if procs[a.Proc] {
					ok = false
					break
				}
				switch m.Kind {
				case pebble.OpCompute:
					// Avoid creating recomputation inside one move, and
					// make sure neither the output slot nor any input was
					// deleted in the window; capacity at the earlier
					// position must admit the extra pebble.
					if nodes[a.Node] || deletedRed[[2]int32{int32(a.Proc), int32(a.Node)}] {
						ok = false
						break
					}
					for _, u := range in.Graph.Pred(a.Node) {
						if deletedRed[[2]int32{int32(a.Proc), int32(u)}] {
							ok = false
							break
						}
					}
					if red[a.Proc]+deletedSince[a.Proc]+1 > in.R {
						ok = false
					}
				case pebble.OpRead:
					if deletedBlue[a.Node] || deletedRed[[2]int32{int32(a.Proc), int32(a.Node)}] {
						ok = false
						break
					}
					if red[a.Proc]+deletedSince[a.Proc]+1 > in.R {
						ok = false
					}
				case pebble.OpWrite:
					// Needs (proc, node) red at the earlier position: reds
					// only shrink through the window, so being red now
					// suffices. An intervening blue deletion of the node
					// would erase the relocated write's effect.
					if deletedBlue[a.Node] {
						ok = false
					}
				}
			}
			if ok {
				target.Actions = append(target.Actions, m.Actions...)
				applyCounts(m)
				merged = true
			}
		}
		if !merged {
			applyCounts(m)
			out.Append(m)
			lastCosted = out.Len() - 1
			resetWindow()
		}
	}
	return out
}
