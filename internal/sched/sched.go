// Package sched provides schedulers that produce pebbling strategies for
// MPP instances:
//
//   - Baseline: the naive strategy from the proof of Lemma 1, establishing
//     the (g·(Δ_in+1)+1)·n upper bound.
//   - Greedy: the paper's greedy class from Lemma 4 — each processor
//     repeatedly computes the node with the most (or largest fraction of)
//     in-neighbors holding its red pebbles — with pluggable tie-breaking
//     and eviction policies.
//   - Partitioned: a static owner-computes scheduler: nodes are assigned
//     to processors by a partition function, each processor pebbles its
//     nodes in topological order with exact Belady eviction, and
//     cross-processor values travel through slow memory.
//
// All schedulers return strategies that pass pebble.Replay; experiments
// always re-validate.
package sched

import (
	"fmt"

	"repro/internal/pebble"
)

// Scheduler produces a pebbling strategy for an instance.
type Scheduler interface {
	// Name identifies the scheduler (and its policies) in reports.
	Name() string
	// Schedule computes a valid pebbling strategy for the instance.
	Schedule(in *pebble.Instance) (*pebble.Strategy, error)
}

// Run schedules and replays in one step, returning the validated report.
func Run(s Scheduler, in *pebble.Instance) (*pebble.Report, error) {
	strat, err := s.Schedule(in)
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %w", s.Name(), err)
	}
	rep, err := pebble.Replay(in, strat)
	if err != nil {
		return nil, fmt.Errorf("sched: %s produced invalid strategy: %w", s.Name(), err)
	}
	return rep, nil
}
