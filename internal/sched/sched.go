// Package sched provides schedulers that produce pebbling strategies for
// MPP instances:
//
//   - Baseline: the naive strategy from the proof of Lemma 1, establishing
//     the (g·(Δ_in+1)+1)·n upper bound.
//   - Greedy: the paper's greedy class from Lemma 4 — each processor
//     repeatedly computes the node with the most (or largest fraction of)
//     in-neighbors holding its red pebbles — with pluggable tie-breaking
//     and eviction policies.
//   - Partitioned: a static owner-computes scheduler: nodes are assigned
//     to processors by a partition function, each processor pebbles its
//     nodes in topological order with exact Belady eviction, and
//     cross-processor values travel through slow memory.
//
// All schedulers return strategies that pass pebble.Replay; experiments
// always re-validate.
package sched

import (
	"context"
	"fmt"

	"repro/internal/pebble"
)

// Scheduler produces a pebbling strategy for an instance.
type Scheduler interface {
	// Name identifies the scheduler (and its policies) in reports.
	Name() string
	// Schedule computes a valid pebbling strategy for the instance.
	Schedule(in *pebble.Instance) (*pebble.Strategy, error)
}

// CtxScheduler is implemented by schedulers that honor deadlines and
// cancellation. ScheduleCtx either returns the best strategy found before
// the context expired (anytime behavior, preferred) or the context's
// error when nothing valid was produced in time.
type CtxScheduler interface {
	Scheduler
	ScheduleCtx(ctx context.Context, in *pebble.Instance) (*pebble.Strategy, error)
}

// ScheduleCtx runs s under ctx: context-aware schedulers get the context
// forwarded; plain schedulers run to completion as before (the one-shot
// greedy and partitioned schedulers are effectively instant — only
// iterative schedulers need the seam).
func ScheduleCtx(ctx context.Context, s Scheduler, in *pebble.Instance) (*pebble.Strategy, error) {
	if cs, ok := s.(CtxScheduler); ok {
		return cs.ScheduleCtx(ctx, in)
	}
	return s.Schedule(in)
}

// Run schedules and replays in one step, returning the validated report.
func Run(s Scheduler, in *pebble.Instance) (*pebble.Report, error) {
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use RunCtx
	return RunCtx(context.Background(), s, in)
}

// RunCtx is Run honoring a context (see ScheduleCtx).
func RunCtx(ctx context.Context, s Scheduler, in *pebble.Instance) (*pebble.Report, error) {
	strat, err := ScheduleCtx(ctx, s, in)
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %w", s.Name(), err)
	}
	rep, err := pebble.Replay(in, strat)
	if err != nil {
		return nil, fmt.Errorf("sched: %s produced invalid strategy: %w", s.Name(), err)
	}
	return rep, nil
}
