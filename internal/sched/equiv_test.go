package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pebble"
)

// The equivalence suite: the CSR-native engines must produce
// byte-identical strategies to the frozen map-backed oracles in
// oracle_test.go, across the DAG zoo, k ∈ {1,2,4,7}, every greedy
// policy combination, recomputation, random restarts, and every
// partitioned assignment × worker count. verify.sh runs this package's
// full suite under -race, which additionally exercises the parallel
// phase-A fan-out.

type equivParams struct{ k, rExtra, g int }

var equivParamSets = []equivParams{
	{1, 1, 2},
	{2, 1, 2},
	{4, 2, 3},
	{7, 3, 1},
}

func equivInstance(t *testing.T, name string, k, rExtra, g int) *pebble.Instance {
	t.Helper()
	gr := zoo()[name]
	in, err := pebble.NewInstance(gr, pebble.MPP(k, gr.MaxInDegree()+1+rExtra, g))
	if err != nil {
		t.Fatalf("instance %s: %v", name, err)
	}
	return in
}

// assertSame compares an engine run against its oracle run: identical
// strategies, or both failing.
func assertSame(t *testing.T, got *pebble.Strategy, gotErr error, want *pebble.Strategy, wantErr error) {
	t.Helper()
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("error mismatch: engine=%v oracle=%v", gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if !reflect.DeepEqual(got.Moves, want.Moves) {
		if len(got.Moves) != len(want.Moves) {
			t.Fatalf("move count mismatch: engine=%d oracle=%d", len(got.Moves), len(want.Moves))
		}
		for i := range got.Moves {
			if !reflect.DeepEqual(got.Moves[i], want.Moves[i]) {
				t.Fatalf("first divergence at move %d: engine=%+v oracle=%+v", i, got.Moves[i], want.Moves[i])
			}
		}
		t.Fatalf("strategies differ")
	}
}

func TestGreedyMatchesOracle(t *testing.T) {
	policies := []Greedy{}
	for _, sel := range []SelectRule{SelectCount, SelectFraction} {
		for _, tie := range []TieBreak{TieLowID, TieHighID} {
			for _, ev := range []EvictRule{EvictLRU, EvictFewestUses} {
				policies = append(policies, Greedy{Select: sel, Tie: tie, Evict: ev})
			}
		}
	}
	for name := range zoo() {
		for _, ps := range equivParamSets {
			in := equivInstance(t, name, ps.k, ps.rExtra, ps.g)
			for _, pol := range policies {
				t.Run(fmt.Sprintf("%s/k%d/%s", name, ps.k, pol.Name()), func(t *testing.T) {
					got, gotErr := pol.Schedule(in)
					want, wantErr := oracleGreedySchedule(in, pol)
					assertSame(t, got, gotErr, want, wantErr)
				})
			}
		}
	}
}

func TestRecomputeGreedyMatchesOracle(t *testing.T) {
	for name := range zoo() {
		for _, ps := range equivParamSets {
			in := equivInstance(t, name, ps.k, ps.rExtra, ps.g)
			for _, mc := range []int{1, 3} {
				for _, tie := range []TieBreak{TieLowID, TieHighID} {
					pol := RecomputeGreedy{Greedy: Greedy{Tie: tie}, MaxClosure: mc}
					t.Run(fmt.Sprintf("%s/k%d/mc%d/tie%s", name, ps.k, mc, tie), func(t *testing.T) {
						got, gotErr := pol.Schedule(in)
						want, wantErr := oracleRecomputeSchedule(in, pol)
						assertSame(t, got, gotErr, want, wantErr)
					})
				}
			}
		}
	}
}

func TestRandomRestartGreedyMatchesOracle(t *testing.T) {
	for name := range zoo() {
		for _, ps := range equivParamSets {
			in := equivInstance(t, name, ps.k, ps.rExtra, ps.g)
			for _, seed := range []int64{1, 7} {
				pol := RandomRestartGreedy{Seed: seed, Restarts: 3}
				t.Run(fmt.Sprintf("%s/k%d/seed%d", name, ps.k, seed), func(t *testing.T) {
					got, gotErr := pol.Schedule(in)
					want, wantErr := oracleRandomSchedule(in, pol)
					assertSame(t, got, gotErr, want, wantErr)
				})
			}
		}
	}
}

// TestPartitionedMatchesOracle asserts the two-phase parallel engine is
// byte-identical to the frozen sequential engine for every assignment
// family and every worker count — the merge-determinism half of the
// tentpole. Run under -race (verify.sh does) this also checks the
// phase-A fan-out for data races.
func TestPartitionedMatchesOracle(t *testing.T) {
	assigns := []struct {
		name string
		fn   AssignFunc
	}{
		{"levels", AssignLevelRoundRobin},
		{"blocks", AssignTopoBlocks},
		{"components", AssignComponents},
	}
	for name := range zoo() {
		for _, ps := range equivParamSets {
			in := equivInstance(t, name, ps.k, ps.rExtra, ps.g)
			for _, as := range assigns {
				want, wantErr := oraclePartSchedule(in, as.fn(in.Graph, in.K))
				for _, workers := range []int{0, 1, 2, 4, 7} {
					pol := Partitioned{Assign: as.fn, AssignName: as.name, Workers: workers}
					t.Run(fmt.Sprintf("%s/k%d/%s/w%d", name, ps.k, as.name, workers), func(t *testing.T) {
						got, gotErr := pol.Schedule(in)
						assertSame(t, got, gotErr, want, wantErr)
					})
				}
			}
		}
	}
}
