package sched

import (
	"repro/internal/dag"
	"repro/internal/pebble"
)

// repack reschedules a strategy's actions into maximally parallel moves.
// It preserves (a) each processor's own action order and (b) the
// blue-pebble data dependencies (every read of v stays after the write
// that feeds it). Any interleaving with those two properties is valid:
//
//   - per-processor red-pebble counts depend only on that processor's own
//     action prefix, so every memory bound still holds;
//   - compute and write preconditions only involve the acting processor's
//     shade, which evolves in the original order;
//   - read preconditions (blue pebbles) are protected by the write→read
//     edges, and blue pebbles only accumulate.
//
// Strategies that delete blue pebbles are returned unchanged (the
// reordering analysis above would need per-node barriers; no scheduler in
// this repository emits blue deletions).
//
// The pass turns sequential schedules — e.g. Baseline's one-action moves
// on round-robin processors — into parallel ones, dividing I/O and
// compute cost by up to k.
func repack(in *pebble.Instance, s *pebble.Strategy) *pebble.Strategy {
	k := in.K
	type action struct {
		kind pebble.OpKind
		a    pebble.Action
		dep  int // index into acts of the write this read depends on; -1 otherwise
		done bool
	}
	var acts []action
	perProc := make([][]int, k) // indices into acts, in program order
	lastWrite := map[dag.NodeID]int{}
	for _, m := range s.Moves {
		for _, act := range m.Actions {
			if m.Kind == pebble.OpDelete && act.Proc == pebble.BlueProc {
				return s // blue deletions: bail out, keep the original
			}
			idx := len(acts)
			dep := -1
			if m.Kind == pebble.OpRead {
				if w, ok := lastWrite[act.Node]; ok {
					dep = w
				}
			}
			acts = append(acts, action{kind: m.Kind, a: act, dep: dep})
			if m.Kind == pebble.OpWrite {
				lastWrite[act.Node] = idx
			}
			perProc[act.Proc] = append(perProc[act.Proc], idx)
		}
	}

	ptr := make([]int, k)
	out := &pebble.Strategy{}
	remaining := len(acts)

	// ready returns the index of processor p's next action if its blue
	// dependency (when any) is satisfied, else -1.
	ready := func(p int) int {
		if ptr[p] >= len(perProc[p]) {
			return -1
		}
		idx := perProc[p][ptr[p]]
		if d := acts[idx].dep; d >= 0 && !acts[d].done {
			return -1
		}
		return idx
	}
	complete := func(idx, p int) {
		acts[idx].done = true
		ptr[p]++
		remaining--
	}

	for remaining > 0 {
		progress := false
		// Free deletes first, repeatedly (they may unblock nothing but
		// cost nothing and keep per-proc order flowing).
		for {
			var dels []pebble.Action
			for p := 0; p < k; p++ {
				for {
					idx := ready(p)
					if idx < 0 || acts[idx].kind != pebble.OpDelete {
						break
					}
					dels = append(dels, acts[idx].a)
					complete(idx, p)
				}
			}
			if len(dels) == 0 {
				break
			}
			out.Append(pebble.Delete(dels...))
			progress = true
		}
		// One move per costed kind per round; writes before reads so a
		// same-round write→read pair still observes its dependency
		// through separate sequential moves.
		for _, kind := range []pebble.OpKind{pebble.OpWrite, pebble.OpRead, pebble.OpCompute} {
			var batch []pebble.Action
			var idxs []int
			nodes := map[dag.NodeID]bool{}
			for p := 0; p < k; p++ {
				idx := ready(p)
				if idx < 0 || acts[idx].kind != kind {
					continue
				}
				if kind == pebble.OpCompute && nodes[acts[idx].a.Node] {
					continue // defer same-node co-computation to the next round
				}
				nodes[acts[idx].a.Node] = true
				batch = append(batch, acts[idx].a)
				idxs = append(idxs, idx)
			}
			for bi, idx := range idxs {
				complete(idx, batch[bi].Proc)
			}
			if len(batch) > 0 {
				out.Append(pebble.Move{Kind: kind, Actions: batch})
				progress = true
			}
		}
		if !progress {
			// Should be impossible (original order witnesses feasibility);
			// fall back to the input rather than loop forever.
			return s
		}
	}
	return out
}
