package sched

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// Partitioned is a static owner-computes scheduler: an AssignFunc
// partitions the nodes among the k processors; each processor pebbles its
// own nodes in global topological order with exact Belady (furthest next
// local use) eviction; values crossing the partition travel through slow
// memory — the producer publishes (writes) them right after computing,
// the consumer reads them on demand. Rounds batch one action per
// processor into shared write, read and compute moves, so k-way
// parallelism costs one move per round per move kind.
type Partitioned struct {
	Assign     AssignFunc
	AssignName string
}

// Name implements Scheduler.
func (p Partitioned) Name() string { return fmt.Sprintf("partitioned(%s)", p.AssignName) }

// Schedule implements Scheduler.
func (p Partitioned) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	assign := p.Assign(in.Graph, in.K)
	if len(assign) != in.N() {
		return nil, fmt.Errorf("partitioned: assignment covers %d of %d nodes", len(assign), in.N())
	}
	for v, a := range assign {
		if a < 0 || a >= in.K {
			return nil, fmt.Errorf("partitioned: node %d assigned to processor %d outside [0,%d)", v, a, in.K)
		}
	}
	e := newPartEngine(in, assign)
	return e.run()
}

type microOp struct {
	kind pebble.OpKind
	node dag.NodeID
}

type partEngine struct {
	in     *pebble.Instance
	b      *pebble.Builder
	assign []int
	k      int

	order [][]dag.NodeID // per-processor nodes in global topo order
	ptr   []int          // next index into order[p]
	queue [][]microOp    // per-processor pending micro-ops for the current node

	// uses[p][u] lists the positions in order[p] whose node has u as a
	// predecessor; usePtr[p][u] indexes the first position not yet
	// consumed — exact Belady next-use lookup.
	uses          []map[dag.NodeID][]int
	usePtr        []map[dag.NodeID]int
	pinned        []map[dag.NodeID]bool
	isSink        []bool
	computedCount int
	computed      []bool
	crossOut      []bool // node has a successor owned by another processor
}

func newPartEngine(in *pebble.Instance, assign []int) *partEngine {
	n, k := in.Graph.N(), in.K
	e := &partEngine{
		in: in, b: pebble.NewBuilder(in), assign: assign, k: k,
		order: make([][]dag.NodeID, k), ptr: make([]int, k),
		queue: make([][]microOp, k),
		uses:  make([]map[dag.NodeID][]int, k), usePtr: make([]map[dag.NodeID]int, k),
		pinned: make([]map[dag.NodeID]bool, k),
		isSink: make([]bool, n), computed: make([]bool, n),
		crossOut: make([]bool, n),
	}
	for p := 0; p < k; p++ {
		e.uses[p] = map[dag.NodeID][]int{}
		e.usePtr[p] = map[dag.NodeID]int{}
		e.pinned[p] = map[dag.NodeID]bool{}
	}
	for _, v := range in.Graph.Topo() {
		p := assign[v]
		pos := len(e.order[p])
		e.order[p] = append(e.order[p], v)
		for _, u := range in.Graph.Pred(v) {
			e.uses[p][u] = append(e.uses[p][u], pos)
		}
	}
	for _, s := range in.Graph.Sinks() {
		e.isSink[s] = true
	}
	for v := 0; v < n; v++ {
		for _, w := range in.Graph.Succ(dag.NodeID(v)) {
			if assign[w] != assign[v] {
				e.crossOut[v] = true
				break
			}
		}
	}
	return e
}

// nextUse returns the position of the next use of u on processor p at or
// after order position 'from', or a large sentinel if none remains.
func (e *partEngine) nextUse(p int, u dag.NodeID, from int) int {
	const inf = 1 << 30
	us := e.uses[p][u]
	i := e.usePtr[p][u]
	for i < len(us) && us[i] < from {
		i++
	}
	e.usePtr[p][u] = i
	if i == len(us) {
		return inf
	}
	return us[i]
}

// globallyDead reports whether every successor of u is computed.
func (e *partEngine) globallyDead(u dag.NodeID) bool {
	for _, w := range e.in.Graph.Succ(u) {
		if !e.computed[w] {
			return false
		}
	}
	return true
}

// planNext prepares the micro-op queue of processor p for its next node,
// if its inputs are available. Returns false if p must stall this round.
func (e *partEngine) planNext(p int) bool {
	v := e.order[p][e.ptr[p]]
	cfg := e.b.Config()
	var ops []microOp
	for _, u := range e.in.Graph.Pred(v) {
		if cfg.Red[p].Contains(int(u)) {
			continue
		}
		if !cfg.Blue.Contains(int(u)) {
			return false // producer has not published u yet
		}
		ops = append(ops, microOp{pebble.OpRead, u})
	}
	ops = append(ops, microOp{pebble.OpCompute, v})
	if e.crossOut[v] {
		ops = append(ops, microOp{pebble.OpWrite, v})
	}
	e.queue[p] = ops
	// Pin the inputs and output for the duration of this node.
	pin := e.pinned[p]
	for u := range pin {
		delete(pin, u)
	}
	for _, u := range e.in.Graph.Pred(v) {
		pin[u] = true
	}
	pin[v] = true
	return true
}

// evictOne frees one slot on p by exact-Belady choice. Returns the write
// action if the victim must be spilled first (nil otherwise), and whether
// a victim was found.
func (e *partEngine) evictOne(p int) (spill *pebble.Action, ok bool) {
	cfg := e.b.Config()
	const inf = 1 << 30
	victim := dag.NodeID(-1)
	victimFree := false
	victimUse := -1
	cfg.Red[p].ForEach(func(i int) bool {
		u := dag.NodeID(i)
		if e.pinned[p][u] {
			return true
		}
		blue := cfg.Blue.Contains(i)
		free := blue || (e.globallyDead(u) && (!e.isSink[u] || blue))
		use := e.nextUse(p, u, e.ptr[p])
		if e.isSink[u] && !blue {
			use = inf // unsaved sinks are "needed forever": spill them last
		}
		better := false
		switch {
		case victim == -1:
			better = true
		case free != victimFree:
			better = free
		default:
			better = use > victimUse
		}
		if better {
			victim, victimFree, victimUse = u, free, use
		}
		return true
	})
	if victim == -1 {
		return nil, false
	}
	if !victimFree && !cfg.Blue.Contains(int(victim)) {
		// Live (or sink) and unsaved: must spill before deletion.
		a := pebble.At(p, victim)
		return &a, true
	}
	e.b.Delete(pebble.At(p, victim))
	return nil, true
}

func (e *partEngine) run() (*pebble.Strategy, error) {
	n := e.in.Graph.N()
	for e.computedCount < n {
		// Gather this round's action per processor.
		var writes, reads, computes []pebble.Action
		computedThisRound := []dag.NodeID{}
		progress := false
		for p := 0; p < e.k; p++ {
			if len(e.queue[p]) == 0 {
				if e.ptr[p] >= len(e.order[p]) {
					continue // processor finished
				}
				if !e.planNext(p) {
					continue // stalled on an unpublished input
				}
			}
			op := e.queue[p][0]
			switch op.kind {
			case pebble.OpRead, pebble.OpCompute:
				// Ensure a slot is available; a required spill consumes
				// this processor's action for the round.
				if e.b.FreeSlots(p) < 1 && !e.b.Config().Red[p].Contains(int(op.node)) {
					spill, ok := e.evictOne(p)
					if !ok {
						return nil, fmt.Errorf("partitioned: processor %d wedged: no evictable pebble (r=%d)", p, e.in.R)
					}
					if spill != nil {
						writes = append(writes, *spill)
						progress = true
						continue // retry the read/compute next round
					}
					// Free eviction happened; fall through to act now.
				}
				if op.kind == pebble.OpRead {
					reads = append(reads, pebble.At(p, op.node))
				} else {
					computes = append(computes, pebble.At(p, op.node))
					computedThisRound = append(computedThisRound, op.node)
				}
				e.queue[p] = e.queue[p][1:]
				progress = true
			case pebble.OpWrite:
				writes = append(writes, pebble.At(p, op.node))
				e.queue[p] = e.queue[p][1:]
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("partitioned: deadlock with %d of %d nodes computed", e.computedCount, n)
		}
		// Emit the round: spilled writes and publishes first, then reads,
		// then computes. Spill deletions follow their writes immediately.
		if len(writes) > 0 {
			e.b.Write(writes...)
			// Delete spilled victims now that they are safe in slow
			// memory — but only those that were spills (not publishes).
			// A publish keeps its red pebble (it is the freshly computed
			// node, often needed by the same processor next).
			var dels []pebble.Action
			for _, w := range writes {
				if e.pinned[w.Proc][w.Node] {
					continue // publish of a pinned (just computed) node
				}
				dels = append(dels, w)
			}
			for _, d := range dels {
				e.b.Delete(d)
			}
		}
		if len(reads) > 0 {
			e.b.Read(reads...)
		}
		if len(computes) > 0 {
			e.b.ComputeParallel(computes...)
		}
		for _, v := range computedThisRound {
			e.computed[v] = true
			e.computedCount++
		}
		// Advance processors whose node is fully handled.
		for p := 0; p < e.k; p++ {
			if len(e.queue[p]) == 0 && e.ptr[p] < len(e.order[p]) && e.computed[e.order[p][e.ptr[p]]] {
				e.ptr[p]++
			}
		}
	}
	return e.b.Strategy(), nil
}
