package sched

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// Partitioned is a static owner-computes scheduler: an AssignFunc
// partitions the nodes among the k processors; each processor pebbles its
// own nodes in global topological order with exact Belady (furthest next
// local use) eviction; values crossing the partition travel through slow
// memory — the producer publishes (writes) them right after computing,
// the consumer reads them on demand. Rounds batch one action per
// processor into shared write, read and compute moves, so k-way
// parallelism costs one move per round per move kind.
//
// Scheduling itself runs in two phases. Phase A simulates each
// partition's micro-op stream independently — every local decision
// (read set, Belady victim, spill-vs-free eviction) is a function of
// the partition's own state alone, because blue pebbles are monotone,
// a non-blue resident is always locally owned with only local
// consumers, and cross-partition traffic only delays when a block
// starts, never what it does — so the k simulations fan out across
// Workers goroutines. Phase B merges the streams round by round in
// processor order, reproducing the sequential engine's move sequence
// byte-for-byte for every worker count (equiv_test.go asserts this
// under -race).
type Partitioned struct {
	Assign     AssignFunc
	AssignName string
	// Workers bounds the phase-A simulation fan-out; 0 means
	// min(k, GOMAXPROCS). The resulting strategy is identical for every
	// value.
	Workers int
}

// Name implements Scheduler.
func (p Partitioned) Name() string { return fmt.Sprintf("partitioned(%s)", p.AssignName) }

// Schedule implements Scheduler.
func (p Partitioned) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	assign := p.Assign(in.Graph, in.K)
	if len(assign) != in.N() {
		return nil, fmt.Errorf("partitioned: assignment covers %d of %d nodes", len(assign), in.N())
	}
	for v, a := range assign {
		if a < 0 || a >= in.K {
			return nil, fmt.Errorf("partitioned: node %d assigned to processor %d outside [0,%d)", v, a, in.K)
		}
	}
	e := newPartEngine(in, assign, p.Workers)
	return e.run()
}

// Event kinds of a partition's local micro-op stream. A peRead/peCompute
// event may carry an attached free eviction (del ≥ 0) that the merge
// emits as an immediate single-action delete, exactly where the
// sequential engine emitted it; a peSpill event is a standalone
// write+delete that consumes the processor's whole round.
const (
	peRead uint8 = iota
	peCompute
	pePublish
	peSpill
)

type partEvent struct {
	node dag.NodeID
	del  dag.NodeID // free-eviction victim attached to this event, -1 none
	kind uint8
}

// partBlock is the event range of one owned node: its reads (which
// double as the cross-partition gate — every read target must be blue
// before the block may start), interleaved spills, the compute, and the
// publish if the node has foreign consumers.
type partBlock struct {
	evStart, evEnd int32
}

// partStream is one partition's fully simulated micro-op stream. err is
// non-nil when the simulation wedged (no evictable pebble); the merge
// surfaces it at the exact round the sequential engine would have.
type partStream struct {
	events []partEvent
	blocks []partBlock
	err    error
}

// pslot is a resident red pebble in the phase-A simulation: the node and
// whether it is backed by a blue pebble (read-origin residents always
// are; compute-origin residents become blue at their publish event).
type pslot struct {
	node dag.NodeID
	blue bool
}

type partEngine struct {
	in      *pebble.Instance
	b       *pebble.Builder
	assign  []int
	k       int
	workers int

	order    [][]dag.NodeID // per-processor nodes in global topo order
	isSink   []bool
	crossOut []bool // node has a successor owned by another processor

	streams []partStream

	// Phase-B merge cursors.
	bi      []int // current block per processor
	ei      []int // current event per processor
	planned []bool

	computed      []bool
	computedCount int
}

func newPartEngine(in *pebble.Instance, assign []int, workers int) *partEngine {
	n, k := in.Graph.N(), in.K
	e := &partEngine{
		in: in, b: pebble.NewBuilder(in), assign: assign, k: k,
		workers: workers,
		order:   make([][]dag.NodeID, k),
		isSink:  make([]bool, n), crossOut: make([]bool, n),
		streams: make([]partStream, k),
		bi:      make([]int, k), ei: make([]int, k), planned: make([]bool, k),
		computed: make([]bool, n),
	}
	for _, v := range in.Graph.Topo() {
		p := assign[v]
		e.order[p] = append(e.order[p], v)
	}
	for _, s := range in.Graph.Sinks() {
		e.isSink[s] = true
	}
	for v := 0; v < n; v++ {
		for _, w := range in.Graph.Succ(dag.NodeID(v)) {
			if assign[w] != assign[v] {
				e.crossOut[v] = true
				break
			}
		}
	}
	return e
}

// simulatePartition runs processor p's whole schedule against local
// state only and returns its micro-op stream. Correctness of the local
// view: blue pebbles are never deleted, so a gate that passes stays
// passed; every non-blue resident was computed locally, is not
// cross-out (the publish is consumed, pinned, before the next block
// begins) and unspilled, so its global deadness equals "no remaining
// local use"; and the Belady comparator is a total order (free status,
// then furthest next use, then smallest ID), so victim choice cannot
// depend on scan order. Stalls on unpublished inputs shift rounds, not
// decisions, and the merge re-applies the round timing.
//
//mpp:deterministic
func (e *partEngine) simulatePartition(p int) partStream {
	g := e.in.Graph
	n := g.N()
	order := e.order[p]
	var st partStream

	// Local next-use lists in CSR layout: useOff[u]..useOff[u+1] index
	// the order positions consuming u, ascending.
	useOff := make([]int32, n+1)
	for _, v := range order {
		for _, u := range g.Pred(v) {
			useOff[u+1]++
		}
	}
	for u := 0; u < n; u++ {
		useOff[u+1] += useOff[u]
	}
	useList := make([]int32, useOff[n])
	useCur := make([]int32, n)
	copy(useCur, useOff[:n])
	fill := make([]int32, n)
	copy(fill, useOff[:n])
	for pos, v := range order {
		for _, u := range g.Pred(v) {
			useList[fill[u]] = int32(pos)
			fill[u]++
		}
	}

	const inf = 1 << 30
	nextUse := func(u dag.NodeID, from int) int {
		i := useCur[u]
		for i < useOff[u+1] && useList[i] < int32(from) {
			i++
		}
		useCur[u] = i
		if i == useOff[u+1] {
			return inf
		}
		return int(useList[i])
	}

	slots := make([]pslot, 0, e.in.R)
	slotOf := make([]int32, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	free := e.in.R
	pinStamp := make([]int32, n)
	for i := range pinStamp {
		pinStamp[i] = -1
	}

	addSlot := func(u dag.NodeID, blue bool) {
		slotOf[u] = int32(len(slots))
		slots = append(slots, pslot{u, blue})
		free--
	}
	dropSlot := func(u dag.NodeID) {
		i := slotOf[u]
		last := int32(len(slots) - 1)
		slots[i] = slots[last]
		slotOf[slots[i].node] = i
		slots = slots[:last]
		slotOf[u] = -1
		free++
	}

	// evict frees one slot by exact-Belady choice: returns the victim
	// and whether it must be spilled (written before deletion); victim
	// -1 means the simulation is wedged.
	evict := func(pos int, epoch int32) (victim dag.NodeID, spill bool) {
		victim = -1
		victimFree := false
		victimUse := -1
		for i := range slots {
			u := slots[i].node
			if pinStamp[u] == epoch {
				continue
			}
			blue := slots[i].blue
			use := nextUse(u, pos)
			// For an unpinned non-blue resident every consumer is local
			// (see the function comment), so "no remaining local use"
			// is exactly global deadness.
			uFree := blue || (!e.isSink[u] && use == inf)
			if e.isSink[u] && !blue {
				use = inf // unsaved sinks are "needed forever": spill them last
			}
			better := false
			switch {
			case victim == -1:
				better = true
			case uFree != victimFree:
				better = uFree
			case use != victimUse:
				better = use > victimUse
			default:
				better = u < victim
			}
			if better {
				victim, victimFree, victimUse = u, uFree, use
			}
		}
		if victim == -1 {
			return -1, false
		}
		return victim, !victimFree && !slots[slotOf[victim]].blue
	}

	for pos, v := range order {
		epoch := int32(pos)
		for _, u := range g.Pred(v) {
			pinStamp[u] = epoch
		}
		pinStamp[v] = epoch
		blk := partBlock{evStart: int32(len(st.events))}

		// fire emits one read/compute event, preceded by spill rounds
		// and/or an attached free eviction if the slot table is full.
		fire := func(kind uint8, node dag.NodeID) bool {
			del := dag.NodeID(-1)
			if free < 1 && slotOf[node] < 0 {
				victim, spill := evict(pos, epoch)
				if victim < 0 {
					st.err = fmt.Errorf("partitioned: processor %d wedged: no evictable pebble (r=%d)", p, e.in.R)
					return false
				}
				if spill {
					// A spill consumes the round; the op retries next
					// round with the slot now free.
					slots[slotOf[victim]].blue = true
					dropSlot(victim)
					st.events = append(st.events, partEvent{node: victim, del: -1, kind: peSpill})
				} else {
					dropSlot(victim)
					del = victim
				}
			}
			if slotOf[node] < 0 {
				addSlot(node, kind == peRead)
			}
			st.events = append(st.events, partEvent{node: node, del: del, kind: kind})
			return true
		}

		wedged := false
		for _, u := range g.Pred(v) {
			if slotOf[u] >= 0 {
				continue
			}
			if !fire(peRead, u) {
				wedged = true
				break
			}
		}
		if !wedged && fire(peCompute, v) && e.crossOut[v] {
			slots[slotOf[v]].blue = true
			st.events = append(st.events, partEvent{node: v, del: -1, kind: pePublish})
		}
		blk.evEnd = int32(len(st.events))
		st.blocks = append(st.blocks, blk)
		if st.err != nil {
			return st
		}
	}
	return st
}

// run merges the per-partition streams into the sequential engine's
// round structure: per round, processor-ascending, each non-stalled
// processor contributes one event; free-eviction deletes are emitted
// inline during the gather, then one batched write (spills before their
// deletes, publishes kept), one batched read, and one parallel compute.
// Blue updates land in the emission phase, so gates observed during a
// round's gather see the end of the previous round — exactly the
// sequential semantics.
//
//mpp:deterministic
func (e *partEngine) run() (*pebble.Strategy, error) {
	// Phase A: simulate partitions concurrently (bounded fan-out). The
	// result is indexed by processor, so scheduling order is irrelevant.
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.k {
		workers = e.k
	}
	if workers <= 1 {
		for p := 0; p < e.k; p++ {
			e.streams[p] = e.simulatePartition(p)
		}
	} else {
		var wg sync.WaitGroup
		procs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range procs {
					e.streams[p] = e.simulatePartition(p)
				}
			}()
		}
		for p := 0; p < e.k; p++ {
			procs <- p
		}
		close(procs)
		wg.Wait()
	}

	// Phase B: deterministic round merge.
	n := e.in.Graph.N()
	blue := e.b.Config().Blue
	for e.computedCount < n {
		var writes, reads, computes []pebble.Action
		var writeSpill []bool
		progress := false
		for p := 0; p < e.k; p++ {
			st := &e.streams[p]
			if e.bi[p] >= len(st.blocks) {
				continue // processor finished
			}
			blk := st.blocks[e.bi[p]]
			if !e.planned[p] {
				// Gate: every read target of the block must be blue.
				gated := false
				for i := blk.evStart; i < blk.evEnd; i++ {
					ev := st.events[i]
					if ev.kind == peRead && !blue.Contains(int(ev.node)) {
						gated = true
						break
					}
				}
				if gated {
					continue // stalled on an unpublished input
				}
				e.planned[p] = true
			}
			if e.ei[p] >= int(blk.evEnd) {
				// The stream wedged mid-block: surface the error at the
				// round the sequential engine would have.
				return nil, st.err
			}
			ev := st.events[e.ei[p]]
			if ev.del >= 0 {
				// Free eviction: emitted immediately during the gather,
				// before the batched moves.
				e.b.Delete(pebble.At(p, ev.del))
			}
			switch ev.kind {
			case peSpill:
				writes = append(writes, pebble.At(p, ev.node))
				writeSpill = append(writeSpill, true)
			case peRead:
				reads = append(reads, pebble.At(p, ev.node))
			case peCompute:
				computes = append(computes, pebble.At(p, ev.node))
			case pePublish:
				writes = append(writes, pebble.At(p, ev.node))
				writeSpill = append(writeSpill, false)
			}
			e.ei[p]++
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("partitioned: deadlock with %d of %d nodes computed", e.computedCount, n)
		}
		// Emit the round: spilled writes and publishes first, then reads,
		// then computes. Spill deletions follow their writes immediately;
		// publishes keep their red pebble.
		if len(writes) > 0 {
			e.b.Write(writes...)
			for i, w := range writes {
				if writeSpill[i] {
					e.b.Delete(w)
				}
			}
		}
		if len(reads) > 0 {
			e.b.Read(reads...)
		}
		if len(computes) > 0 {
			e.b.ComputeParallel(computes...)
		}
		for _, a := range computes {
			e.computed[a.Node] = true
			e.computedCount++
		}
		// Advance processors whose block is fully consumed. A wedged
		// stream's final (truncated) block is never advanced past: its
		// error must surface in the next round p is gathered, exactly
		// when the sequential engine would have hit the wall.
		for p := 0; p < e.k; p++ {
			st := &e.streams[p]
			if st.err != nil && e.bi[p] == len(st.blocks)-1 {
				continue
			}
			if e.planned[p] && e.bi[p] < len(st.blocks) && e.ei[p] >= int(st.blocks[e.bi[p]].evEnd) {
				e.bi[p]++
				e.planned[p] = false
			}
		}
	}
	return e.b.Strategy(), nil
}
