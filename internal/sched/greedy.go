package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// SelectRule chooses how a greedy processor scores candidate nodes.
type SelectRule int

const (
	// SelectCount scores a candidate by the number of its in-neighbors
	// holding the processor's red pebbles.
	SelectCount SelectRule = iota
	// SelectFraction scores by the fraction of in-neighbors holding the
	// processor's red pebbles (sources score 0 under both rules).
	SelectFraction
)

func (s SelectRule) String() string {
	if s == SelectFraction {
		return "fraction"
	}
	return "count"
}

// TieBreak disambiguates equal greedy scores.
type TieBreak int

const (
	// TieLowID prefers the smallest node ID.
	TieLowID TieBreak = iota
	// TieHighID prefers the largest node ID.
	TieHighID
)

func (t TieBreak) String() string {
	if t == TieHighID {
		return "high"
	}
	return "low"
}

// EvictRule chooses the eviction victim when fast memory is full.
// Regardless of rule, dead nodes (no uncomputed successors, not an
// unsaved sink) are always evicted first since dropping them is free.
type EvictRule int

const (
	// EvictLRU evicts the least recently touched red pebble.
	EvictLRU EvictRule = iota
	// EvictFewestUses evicts the red pebble with the fewest uncomputed
	// successors remaining.
	EvictFewestUses
)

func (e EvictRule) String() string {
	if e == EvictFewestUses {
		return "fewest"
	}
	return "lru"
}

// Greedy implements the greedy strategy class analyzed in Lemmas 3 and 4:
// in every round, each processor p claims the yet-uncomputed ready node
// with the best Select score for p, fetches missing inputs through slow
// memory (writing them out from whichever processor holds them if
// necessary), and all claimed nodes are computed in one parallel move.
// Greedy never recomputes a node and spills live pebbles before eviction,
// so it is a "non-idle greedy schedule" in the sense of Lemma 3.
type Greedy struct {
	Select SelectRule
	Tie    TieBreak
	Evict  EvictRule
}

// Name implements Scheduler.
func (g Greedy) Name() string {
	return fmt.Sprintf("greedy(%s,%s,%s)", g.Select, g.Tie, g.Evict)
}

// Schedule implements Scheduler.
func (g Greedy) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	e := newGreedyEngine(in, g)
	return e.run()
}

// redSlot is one resident red pebble of a processor: the node and the
// round it was last touched (the LRU eviction key). The per-processor
// slot table holds at most r entries, so eviction scans O(r) residents
// instead of an n/64-word bitset sweep.
type redSlot struct {
	node  dag.NodeID
	touch int64
}

// scoreEntry is a (score, node) snapshot in a processor's lazy max-heap.
// Entries are never updated in place: every score change pushes a fresh
// snapshot and pick discards stale ones at pop time.
type scoreEntry struct {
	score float64
	node  dag.NodeID
}

// greedyEngine is the CSR-native greedy scheduler core. Everything is a
// dense index array over node IDs — no per-node maps anywhere — and all
// steady-state work routes through the //mpp:hotpath-annotated methods
// below, which hotalloc keeps allocation-free:
//
//   - redPreds[p][v] counts v's predecessors currently red on p, updated
//     incrementally as pebbles appear/disappear (redAdd/redDrop), so a
//     candidate's greedy score is O(1) instead of an in-neighbor scan;
//   - heaps[p] is a lazy max-heap of score snapshots: every score change
//     pushes, pick pops and discards entries whose node is computed,
//     claimed this round, or whose snapshot no longer matches the live
//     score — replacing the full ready-list rescan per processor per
//     round;
//   - slots[p]/slotOf[p] mirror the Builder's red sets as an O(r) slot
//     table carrying last-touch rounds, replacing the k×n lastTouch
//     matrix and making eviction an O(r) scan;
//   - claimStamp/pinStamp are round- and epoch-stamped arrays standing in
//     for the per-round claimed map and per-fetch pinned map.
//
// The engine is byte-identical to the frozen map-backed oracle in
// oracle_test.go for every policy (equiv_test.go asserts it): the
// eviction comparator is a total order with a smallest-ID tie-break, so
// the slot-table scan order cannot change the victim, and the heap
// discipline returns exactly the linear scan's argmax.
type greedyEngine struct {
	in   *pebble.Instance
	pol  Greedy
	b    *pebble.Builder
	n, k int

	computed []bool
	remSuccs []int32 // uncomputed successors per node
	remPreds []int32 // uncomputed predecessors per node (readiness)
	ready    []dag.NodeID
	readyPos []int32 // position in ready slice, -1 if absent
	isSink   []bool
	left     int   // uncomputed nodes
	clock    int64 // round counter; doubles as the claim epoch

	redPreds [][]int32   // redPreds[p][v]: predecessors of v red on p
	slots    [][]redSlot // resident red pebbles per shade (≤ r each)
	slotOf   [][]int32   // slotOf[p][v]: index into slots[p], -1 absent
	heaps    [][]scoreEntry

	claimStamp []int64      // claimStamp[v] == clock ⇒ claimed this round
	targets    []dag.NodeID // per-processor claim of the current round

	pinStamp []int64 // pinStamp[v] == pinEpoch ⇒ pinned in current fetch
	pinEpoch int64
	pinCount int

	// recompute, when non-nil, may satisfy a missing input by
	// recomputing it (RecomputeGreedy); it returns false to fall back to
	// the slow-memory path. Pins are managed through pin/unpin.
	recompute func(p int, u dag.NodeID) bool

	// randomTie, when non-nil, replaces deterministic tie-breaking with
	// uniform draws among maximum-score candidates (RandomRestartGreedy).
	randomTie *rand.Rand
	pool      []dag.NodeID // randomPick scratch
}

func newGreedyEngine(in *pebble.Instance, pol Greedy) *greedyEngine {
	n, k := in.Graph.N(), in.K
	e := &greedyEngine{
		in: in, pol: pol, b: pebble.NewBuilder(in),
		n: n, k: k,
		computed:   make([]bool, n),
		remSuccs:   make([]int32, n),
		remPreds:   make([]int32, n),
		readyPos:   make([]int32, n),
		isSink:     make([]bool, n),
		left:       n,
		redPreds:   make([][]int32, k),
		slots:      make([][]redSlot, k),
		slotOf:     make([][]int32, k),
		heaps:      make([][]scoreEntry, k),
		claimStamp: make([]int64, n),
		targets:    make([]dag.NodeID, k),
		pinStamp:   make([]int64, n),
	}
	slotCap := in.R
	if slotCap > n {
		slotCap = n
	}
	for p := 0; p < k; p++ {
		e.redPreds[p] = make([]int32, n)
		e.slotOf[p] = make([]int32, n)
		for i := range e.slotOf[p] {
			e.slotOf[p][i] = -1
		}
		e.slots[p] = make([]redSlot, 0, slotCap)
	}
	for v := 0; v < n; v++ {
		e.remSuccs[v] = int32(in.Graph.OutDegree(dag.NodeID(v)))
		e.remPreds[v] = int32(in.Graph.InDegree(dag.NodeID(v)))
		e.readyPos[v] = -1
		e.pinStamp[v] = -1
	}
	for _, s := range in.Graph.Sinks() {
		e.isSink[s] = true
	}
	for v := 0; v < n; v++ {
		if e.remPreds[v] == 0 {
			e.pushReady(dag.NodeID(v))
		}
	}
	return e
}

// scoreOf returns the live greedy score of candidate v for processor p
// in O(1) from the incremental red-predecessor counter.
//
//mpp:hotpath
func (e *greedyEngine) scoreOf(p int, v dag.NodeID) float64 {
	indeg := e.in.Graph.InDegree(v)
	if indeg == 0 {
		return 0
	}
	red := e.redPreds[p][v]
	if e.pol.Select == SelectFraction {
		return float64(red) / float64(indeg)
	}
	return float64(red)
}

// entryBefore reports whether heap entry a outranks b: higher score
// first, then the policy's ID tie-break.
//
//mpp:hotpath
func (e *greedyEngine) entryBefore(a, b scoreEntry) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if e.pol.Tie == TieLowID {
		return a.node < b.node
	}
	return a.node > b.node
}

//mpp:hotpath
func (e *greedyEngine) heapPush(p int, sc float64, v dag.NodeID) {
	h := append(e.heaps[p], scoreEntry{sc, v})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.entryBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heaps[p] = h
}

//mpp:hotpath
func (e *greedyEngine) siftDown(h []scoreEntry, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && e.entryBefore(h[r], h[l]) {
			best = r
		}
		if !e.entryBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// rebuildHeap compacts p's heap back to one live snapshot per ready
// node; pick triggers it when stale entries outnumber live ones 4:1.
//
//mpp:hotpath
func (e *greedyEngine) rebuildHeap(p int) {
	h := e.heaps[p][:0]
	for _, v := range e.ready {
		h = append(h, scoreEntry{e.scoreOf(p, v), v})
	}
	e.heaps[p] = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		e.siftDown(h, i)
	}
}

// pick returns the best unclaimed ready node for p, or -1. It pops the
// lazy heap, discarding snapshots that are computed, already claimed
// this round, or stale (score no longer live); the first live snapshot
// is the same argmax the oracle's linear rescan finds, because every
// score transition pushes a fresh snapshot.
//
//mpp:hotpath
func (e *greedyEngine) pick(p int) dag.NodeID {
	if len(e.heaps[p]) > 4*len(e.ready)+64 {
		e.rebuildHeap(p)
	}
	h := e.heaps[p]
	for len(h) > 0 {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		e.siftDown(h, 0)
		v := top.node
		if e.readyPos[v] >= 0 && e.claimStamp[v] != e.clock && top.score == e.scoreOf(p, v) {
			e.heaps[p] = h
			return v
		}
	}
	e.heaps[p] = h
	return -1
}

//mpp:hotpath
func (e *greedyEngine) pushReady(v dag.NodeID) {
	e.readyPos[v] = int32(len(e.ready))
	e.ready = append(e.ready, v)
	for p := 0; p < e.k; p++ {
		e.heapPush(p, e.scoreOf(p, v), v)
	}
}

//mpp:hotpath
func (e *greedyEngine) dropReady(v dag.NodeID) {
	pos := e.readyPos[v]
	last := len(e.ready) - 1
	e.ready[pos] = e.ready[last]
	e.readyPos[e.ready[pos]] = pos
	e.ready = e.ready[:last]
	e.readyPos[v] = -1
}

// redAdd records that u became red on p: bump the red-predecessor count
// of every successor and refresh ready candidates' heap snapshots.
//
//mpp:hotpath
func (e *greedyEngine) redAdd(p int, u dag.NodeID) {
	for _, w := range e.in.Graph.Succ(u) {
		e.redPreds[p][w]++
		if e.readyPos[w] >= 0 {
			e.heapPush(p, e.scoreOf(p, w), w)
		}
	}
}

// redDrop is the removal counterpart of redAdd. Downward score moves
// push snapshots too — pick's staleness check needs the live value
// present in the heap, whichever direction the score moved.
//
//mpp:hotpath
func (e *greedyEngine) redDrop(p int, u dag.NodeID) {
	for _, w := range e.in.Graph.Succ(u) {
		e.redPreds[p][w]--
		if e.readyPos[w] >= 0 {
			e.heapPush(p, e.scoreOf(p, w), w)
		}
	}
}

// residentAdd mirrors a Builder red-pebble insertion into the slot
// table, stamped with the current round as its touch time.
//
//mpp:hotpath
func (e *greedyEngine) residentAdd(p int, u dag.NodeID) {
	e.slotOf[p][u] = int32(len(e.slots[p]))
	e.slots[p] = append(e.slots[p], redSlot{u, e.clock})
	e.redAdd(p, u)
}

// residentDrop mirrors a Builder red-pebble removal (swap-remove).
//
//mpp:hotpath
func (e *greedyEngine) residentDrop(p int, u dag.NodeID) {
	sl := e.slots[p]
	i := e.slotOf[p][u]
	last := int32(len(sl) - 1)
	sl[i] = sl[last]
	e.slotOf[p][sl[i].node] = i
	e.slots[p] = sl[:last]
	e.slotOf[p][u] = -1
	e.redDrop(p, u)
}

// touch refreshes u's LRU stamp on p (u must be resident).
//
//mpp:hotpath
func (e *greedyEngine) touch(p int, u dag.NodeID) {
	e.slots[p][e.slotOf[p][u]].touch = e.clock
}

// dead reports whether u's red pebble on any processor can be dropped for
// free: all successors computed, and either not a sink or already saved.
//
//mpp:hotpath
func (e *greedyEngine) dead(u dag.NodeID) bool {
	if e.remSuccs[u] > 0 {
		return false
	}
	if e.isSink[u] && !e.b.Config().Blue.Contains(int(u)) {
		return false
	}
	return true
}

// newPinEpoch starts a fresh pinned set (O(1) — stamps from prior
// epochs are implicitly unpinned).
//
//mpp:hotpath
func (e *greedyEngine) newPinEpoch() {
	e.pinEpoch++
	e.pinCount = 0
}

// pin adds v to the current pinned set; reports whether v was newly
// pinned.
//
//mpp:hotpath
func (e *greedyEngine) pin(v dag.NodeID) bool {
	if e.pinStamp[v] == e.pinEpoch {
		return false
	}
	e.pinStamp[v] = e.pinEpoch
	e.pinCount++
	return true
}

//mpp:hotpath
func (e *greedyEngine) unpin(v dag.NodeID) {
	if e.pinStamp[v] == e.pinEpoch {
		e.pinStamp[v] = -1
		e.pinCount--
	}
}

//mpp:hotpath
func (e *greedyEngine) pinnedNow(v dag.NodeID) bool {
	return e.pinStamp[v] == e.pinEpoch
}

// makeRoom evicts pebbles from p until at least want slots are free,
// never touching pinned nodes. Live, unsaved victims are spilled (write)
// before deletion. The comparator is a total order — dead first, then
// blue-backed, then smallest key, then smallest ID — so the O(r) slot
// scan picks the same victim the oracle's ascending bitset sweep does.
func (e *greedyEngine) makeRoom(p, want int) error {
	for e.b.FreeSlots(p) < want {
		victim := dag.NodeID(-1)
		victimDead := false
		victimBlue := false
		var victimKey int64
		blue := e.b.Config().Blue
		sl := e.slots[p]
		for i := range sl {
			u := sl[i].node
			if e.pinStamp[u] == e.pinEpoch {
				continue
			}
			d := e.dead(u)
			bl := blue.Contains(int(u))
			var key int64
			if e.pol.Evict == EvictLRU {
				key = sl[i].touch
			} else {
				key = int64(e.remSuccs[u])
			}
			// Preference order: dead > blue-backed > live; within a class,
			// smaller key first, then smaller ID.
			better := false
			switch {
			case victim == -1:
				better = true
			case d != victimDead:
				better = d
			case bl != victimBlue:
				better = bl
			case key != victimKey:
				better = key < victimKey
			default:
				better = u < victim
			}
			if better {
				victim, victimDead, victimBlue, victimKey = u, d, bl, key
			}
		}
		if victim == -1 {
			return fmt.Errorf("greedy: processor %d cannot free %d slots (r=%d too small for pinned set %d)",
				p, want, e.in.R, e.pinCount)
		}
		if !victimDead && !victimBlue {
			e.b.Write(pebble.At(p, victim))
		}
		e.b.Delete(pebble.At(p, victim))
		e.residentDrop(p, victim)
	}
	return nil
}

// fetch ensures all predecessors of v are red on p, spilling/reading
// through slow memory as needed. Returns an error on broken invariants.
func (e *greedyEngine) fetch(p int, v dag.NodeID) error {
	preds := e.in.Graph.Pred(v)
	e.newPinEpoch()
	for _, u := range preds {
		e.pin(u)
	}
	e.pin(v)
	cfg := e.b.Config()
	for _, u := range preds {
		if e.slotOf[p][u] >= 0 {
			e.touch(p, u)
			continue
		}
		if e.recompute != nil && !e.in.OneShot && e.recompute(p, u) {
			e.touch(p, u)
			continue
		}
		if !cfg.Blue.Contains(int(u)) {
			// Some other processor must hold it red; make it blue first.
			owner := -1
			for q := 0; q < e.k; q++ {
				if e.slotOf[q][u] >= 0 {
					owner = q
					break
				}
			}
			if owner == -1 {
				return fmt.Errorf("greedy: computed node %d has no pebble anywhere", u)
			}
			e.b.Write(pebble.At(owner, u))
		}
		if err := e.makeRoom(p, 1); err != nil {
			return err
		}
		e.b.Read(pebble.At(p, u))
		e.residentAdd(p, u)
	}
	return e.makeRoom(p, 1)
}

//mpp:hotpath
func (e *greedyEngine) markComputed(v dag.NodeID) {
	e.computed[v] = true
	e.left--
	e.dropReady(v)
	for _, u := range e.in.Graph.Pred(v) {
		e.remSuccs[u]--
	}
	for _, w := range e.in.Graph.Succ(v) {
		e.remPreds[w]--
		if e.remPreds[w] == 0 {
			e.pushReady(w)
		}
	}
}

func (e *greedyEngine) run() (*pebble.Strategy, error) {
	for e.left > 0 {
		e.clock++
		if len(e.ready) == 0 {
			return nil, fmt.Errorf("greedy: no ready node with %d nodes uncomputed", e.left)
		}
		// Claim phase: claimStamp doubles as the per-round claimed set.
		live := 0
		for p := 0; p < e.k; p++ {
			if e.randomTie != nil {
				e.targets[p] = e.randomPick(p)
			} else {
				e.targets[p] = e.pick(p)
			}
			if e.targets[p] >= 0 {
				e.claimStamp[e.targets[p]] = e.clock
				live++
			}
		}
		if live == 0 {
			return nil, fmt.Errorf("greedy: stalled round with %d nodes uncomputed", e.left)
		}
		// Fetch phase (sequential per processor; I/O moves are emitted as
		// single-action moves — the analysis of Lemmas 3-4 does not rely
		// on I/O batching).
		for p := 0; p < e.k; p++ {
			if e.targets[p] < 0 {
				continue
			}
			if err := e.fetch(p, e.targets[p]); err != nil {
				return nil, err
			}
		}
		// Compute phase: one parallel move for all claimed nodes. The
		// action slice must be freshly allocated — the Builder stores it
		// in the emitted move.
		acts := make([]pebble.Action, 0, live)
		for p := 0; p < e.k; p++ {
			if e.targets[p] >= 0 {
				acts = append(acts, pebble.At(p, e.targets[p]))
			}
		}
		e.b.ComputeParallel(acts...)
		for _, a := range acts {
			e.residentAdd(a.Proc, a.Node)
			e.markComputed(a.Node)
		}
	}
	// Save any sink that holds only red pebbles? Not needed: sinks keep
	// their red pebble unless evicted, and eviction spills unsaved sinks.
	return e.b.Strategy(), nil
}
