package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// SelectRule chooses how a greedy processor scores candidate nodes.
type SelectRule int

const (
	// SelectCount scores a candidate by the number of its in-neighbors
	// holding the processor's red pebbles.
	SelectCount SelectRule = iota
	// SelectFraction scores by the fraction of in-neighbors holding the
	// processor's red pebbles (sources score 0 under both rules).
	SelectFraction
)

func (s SelectRule) String() string {
	if s == SelectFraction {
		return "fraction"
	}
	return "count"
}

// TieBreak disambiguates equal greedy scores.
type TieBreak int

const (
	// TieLowID prefers the smallest node ID.
	TieLowID TieBreak = iota
	// TieHighID prefers the largest node ID.
	TieHighID
)

func (t TieBreak) String() string {
	if t == TieHighID {
		return "high"
	}
	return "low"
}

// EvictRule chooses the eviction victim when fast memory is full.
// Regardless of rule, dead nodes (no uncomputed successors, not an
// unsaved sink) are always evicted first since dropping them is free.
type EvictRule int

const (
	// EvictLRU evicts the least recently touched red pebble.
	EvictLRU EvictRule = iota
	// EvictFewestUses evicts the red pebble with the fewest uncomputed
	// successors remaining.
	EvictFewestUses
)

func (e EvictRule) String() string {
	if e == EvictFewestUses {
		return "fewest"
	}
	return "lru"
}

// Greedy implements the greedy strategy class analyzed in Lemmas 3 and 4:
// in every round, each processor p claims the yet-uncomputed ready node
// with the best Select score for p, fetches missing inputs through slow
// memory (writing them out from whichever processor holds them if
// necessary), and all claimed nodes are computed in one parallel move.
// Greedy never recomputes a node and spills live pebbles before eviction,
// so it is a "non-idle greedy schedule" in the sense of Lemma 3.
type Greedy struct {
	Select SelectRule
	Tie    TieBreak
	Evict  EvictRule
}

// Name implements Scheduler.
func (g Greedy) Name() string {
	return fmt.Sprintf("greedy(%s,%s,%s)", g.Select, g.Tie, g.Evict)
}

// Schedule implements Scheduler.
func (g Greedy) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	e := newGreedyEngine(in, g)
	return e.run()
}

type greedyEngine struct {
	in   *pebble.Instance
	pol  Greedy
	b    *pebble.Builder
	n, k int

	computed  []bool
	remSuccs  []int // uncomputed successors per node
	remPreds  []int // uncomputed predecessors per node (readiness)
	ready     []dag.NodeID
	readyPos  []int // position in ready slice, -1 if absent
	lastTouch [][]int64
	clock     int64
	isSink    []bool
	left      int // uncomputed nodes

	// recompute, when non-nil, may satisfy a missing input by
	// recomputing it (RecomputeGreedy); it returns false to fall back to
	// the slow-memory path.
	recompute func(p int, u dag.NodeID, pinned map[dag.NodeID]bool) bool

	// randomTie, when non-nil, replaces deterministic tie-breaking with
	// uniform draws among maximum-score candidates (RandomRestartGreedy).
	randomTie *rand.Rand
}

func newGreedyEngine(in *pebble.Instance, pol Greedy) *greedyEngine {
	n, k := in.Graph.N(), in.K
	e := &greedyEngine{
		in: in, pol: pol, b: pebble.NewBuilder(in),
		n: n, k: k,
		computed: make([]bool, n),
		remSuccs: make([]int, n),
		remPreds: make([]int, n),
		readyPos: make([]int, n),
		isSink:   make([]bool, n),
		left:     n,
	}
	e.lastTouch = make([][]int64, k)
	for p := range e.lastTouch {
		e.lastTouch[p] = make([]int64, n)
	}
	for v := 0; v < n; v++ {
		e.remSuccs[v] = in.Graph.OutDegree(dag.NodeID(v))
		e.remPreds[v] = in.Graph.InDegree(dag.NodeID(v))
		e.readyPos[v] = -1
	}
	for _, s := range in.Graph.Sinks() {
		e.isSink[s] = true
	}
	for v := 0; v < n; v++ {
		if e.remPreds[v] == 0 {
			e.pushReady(dag.NodeID(v))
		}
	}
	return e
}

func (e *greedyEngine) pushReady(v dag.NodeID) {
	e.readyPos[v] = len(e.ready)
	e.ready = append(e.ready, v)
}

func (e *greedyEngine) dropReady(v dag.NodeID) {
	pos := e.readyPos[v]
	last := len(e.ready) - 1
	e.ready[pos] = e.ready[last]
	e.readyPos[e.ready[pos]] = pos
	e.ready = e.ready[:last]
	e.readyPos[v] = -1
}

// score returns the greedy score of candidate v for processor p.
func (e *greedyEngine) score(p int, v dag.NodeID) float64 {
	preds := e.in.Graph.Pred(v)
	if len(preds) == 0 {
		return 0
	}
	red := 0
	for _, u := range preds {
		if e.b.Config().Red[p].Contains(int(u)) {
			red++
		}
	}
	if e.pol.Select == SelectFraction {
		return float64(red) / float64(len(preds))
	}
	return float64(red)
}

// pick returns the best unclaimed ready node for p, or -1.
func (e *greedyEngine) pick(p int, claimed map[dag.NodeID]bool) dag.NodeID {
	best := dag.NodeID(-1)
	bestScore := -1.0
	for _, v := range e.ready {
		if claimed[v] {
			continue
		}
		sc := e.score(p, v)
		better := sc > bestScore
		if sc == bestScore && best >= 0 {
			if e.pol.Tie == TieLowID {
				better = v < best
			} else {
				better = v > best
			}
		}
		if better {
			best, bestScore = v, sc
		}
	}
	return best
}

// dead reports whether u's red pebble on any processor can be dropped for
// free: all successors computed, and either not a sink or already saved.
func (e *greedyEngine) dead(u dag.NodeID) bool {
	if e.remSuccs[u] > 0 {
		return false
	}
	if e.isSink[u] && !e.b.Config().Blue.Contains(int(u)) {
		return false
	}
	return true
}

// makeRoom evicts pebbles from p until at least want slots are free,
// never touching pinned nodes. Live, unsaved victims are spilled (write)
// before deletion.
func (e *greedyEngine) makeRoom(p, want int, pinned map[dag.NodeID]bool) error {
	for e.b.FreeSlots(p) < want {
		victim := dag.NodeID(-1)
		victimDead := false
		victimBlue := false
		var victimKey int64
		cfg := e.b.Config()
		cfg.Red[p].ForEach(func(i int) bool {
			u := dag.NodeID(i)
			if pinned[u] {
				return true
			}
			d := e.dead(u)
			bl := cfg.Blue.Contains(i)
			var key int64
			if e.pol.Evict == EvictLRU {
				key = e.lastTouch[p][u]
			} else {
				key = int64(e.remSuccs[u])
			}
			// Preference order: dead > blue-backed > live; within a class,
			// smaller key first.
			better := false
			switch {
			case victim == -1:
				better = true
			case d != victimDead:
				better = d
			case bl != victimBlue:
				better = bl
			default:
				better = key < victimKey
			}
			if better {
				victim, victimDead, victimBlue, victimKey = u, d, bl, key
			}
			return true
		})
		if victim == -1 {
			return fmt.Errorf("greedy: processor %d cannot free %d slots (r=%d too small for pinned set %d)",
				p, want, e.in.R, len(pinned))
		}
		if !victimDead && !victimBlue {
			e.b.Write(pebble.At(p, victim))
		}
		e.b.Delete(pebble.At(p, victim))
	}
	return nil
}

// fetch ensures all predecessors of v are red on p, spilling/reading
// through slow memory as needed. Returns an error on broken invariants.
func (e *greedyEngine) fetch(p int, v dag.NodeID) error {
	preds := e.in.Graph.Pred(v)
	pinned := make(map[dag.NodeID]bool, len(preds)+1)
	for _, u := range preds {
		pinned[u] = true
	}
	pinned[v] = true
	cfg := e.b.Config()
	for _, u := range preds {
		if cfg.Red[p].Contains(int(u)) {
			e.lastTouch[p][u] = e.clock
			continue
		}
		if e.recompute != nil && !e.in.OneShot && e.recompute(p, u, pinned) {
			e.lastTouch[p][u] = e.clock
			continue
		}
		if !cfg.Blue.Contains(int(u)) {
			// Some other processor must hold it red; make it blue first.
			owner := -1
			for q := 0; q < e.k; q++ {
				if cfg.Red[q].Contains(int(u)) {
					owner = q
					break
				}
			}
			if owner == -1 {
				return fmt.Errorf("greedy: computed node %d has no pebble anywhere", u)
			}
			e.b.Write(pebble.At(owner, u))
		}
		if err := e.makeRoom(p, 1, pinned); err != nil {
			return err
		}
		e.b.Read(pebble.At(p, u))
		e.lastTouch[p][u] = e.clock
	}
	return e.makeRoom(p, 1, pinned)
}

func (e *greedyEngine) markComputed(v dag.NodeID) {
	e.computed[v] = true
	e.left--
	e.dropReady(v)
	for _, u := range e.in.Graph.Pred(v) {
		e.remSuccs[u]--
	}
	for _, w := range e.in.Graph.Succ(v) {
		e.remPreds[w]--
		if e.remPreds[w] == 0 {
			e.pushReady(w)
		}
	}
}

func (e *greedyEngine) run() (*pebble.Strategy, error) {
	for e.left > 0 {
		e.clock++
		if len(e.ready) == 0 {
			return nil, fmt.Errorf("greedy: no ready node with %d nodes uncomputed", e.left)
		}
		// Claim phase.
		claimed := map[dag.NodeID]bool{}
		targets := make([]dag.NodeID, e.k)
		for p := 0; p < e.k; p++ {
			if e.randomTie != nil {
				targets[p] = e.randomPick(p, claimed)
			} else {
				targets[p] = e.pick(p, claimed)
			}
			if targets[p] >= 0 {
				claimed[targets[p]] = true
			}
		}
		// Fetch phase (sequential per processor; I/O moves are emitted as
		// single-action moves — the analysis of Lemmas 3-4 does not rely
		// on I/O batching).
		for p := 0; p < e.k; p++ {
			if targets[p] < 0 {
				continue
			}
			if err := e.fetch(p, targets[p]); err != nil {
				return nil, err
			}
		}
		// Compute phase: one parallel move for all claimed nodes.
		var acts []pebble.Action
		for p := 0; p < e.k; p++ {
			if targets[p] >= 0 {
				acts = append(acts, pebble.At(p, targets[p]))
			}
		}
		if len(acts) == 0 {
			return nil, fmt.Errorf("greedy: stalled round with %d nodes uncomputed", e.left)
		}
		e.b.ComputeParallel(acts...)
		for _, a := range acts {
			e.lastTouch[a.Proc][a.Node] = e.clock
			e.markComputed(a.Node)
		}
	}
	// Save any sink that holds only red pebbles? Not needed: sinks keep
	// their red pebble unless evicted, and eviction spills unsaved sinks.
	return e.b.Strategy(), nil
}
