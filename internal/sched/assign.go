package sched

import (
	"sort"

	"repro/internal/dag"
)

// AssignFunc maps every node of a DAG to an owning processor in [0, k).
type AssignFunc func(g *dag.Graph, k int) []int

// AssignAllToOne places every node on processor 0 — turning Partitioned
// into a single-processor scheduler with exact Belady eviction (a strong
// SPP heuristic).
func AssignAllToOne(g *dag.Graph, k int) []int {
	return make([]int, g.N())
}

// AssignComponents assigns weakly-connected components to processors,
// largest component first onto the currently lightest processor
// (longest-processing-time bin packing). Disconnected workloads such as
// independent chains parallelize perfectly under this assignment.
func AssignComponents(g *dag.Graph, k int) []int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var sizes []int
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		id := len(sizes)
		size := 0
		stack := []dag.NodeID{dag.NodeID(v)}
		comp[v] = id
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, w := range g.Succ(x) {
				if comp[w] == -1 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
			for _, w := range g.Pred(x) {
				if comp[w] == -1 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		sizes = append(sizes, size)
	}
	// LPT packing of components onto processors.
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	compProc := make([]int, len(sizes))
	load := make([]int, k)
	for _, c := range order {
		best := 0
		for p := 1; p < k; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		compProc[c] = best
		load[best] += sizes[c]
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = compProc[comp[v]]
	}
	return out
}

// AssignLevelRoundRobin deals the nodes of each level out to processors
// round-robin — a classic level-synchronous parallelization that trades
// heavy communication for perfect per-level balance.
func AssignLevelRoundRobin(g *dag.Graph, k int) []int {
	out := make([]int, g.N())
	for _, level := range g.LevelSets() {
		for i, v := range level {
			out[v] = i % k
		}
	}
	return out
}

// AssignTopoBlocks splits the topological order into k contiguous blocks,
// one per processor — low communication for layered DAGs, no parallelism
// for chains.
func AssignTopoBlocks(g *dag.Graph, k int) []int {
	n := g.N()
	out := make([]int, n)
	if n == 0 {
		return out
	}
	for i, v := range g.Topo() {
		p := i * k / n
		if p >= k {
			p = k - 1
		}
		out[v] = p
	}
	return out
}
