package sched

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/pebble"
)

func TestImproveNeverWorseAndAlwaysValid(t *testing.T) {
	for name, g := range zoo() {
		for _, k := range []int{1, 2, 4} {
			in := pebble.MustInstance(g, pebble.MPP(k, g.MaxInDegree()+2, 3))
			for _, s := range allSchedulers() {
				strat, err := s.Schedule(in)
				if err != nil {
					t.Fatalf("%s on %s: %v", s.Name(), name, err)
				}
				before, err := pebble.Replay(in, strat)
				if err != nil {
					t.Fatal(err)
				}
				improved, after, err := Improve(in, strat)
				if err != nil {
					t.Fatalf("%s on %s: Improve: %v", s.Name(), name, err)
				}
				if after.Cost > before.Cost {
					t.Errorf("%s on %s k=%d: Improve raised cost %d → %d",
						s.Name(), name, k, before.Cost, after.Cost)
				}
				if _, err := pebble.Replay(in, improved); err != nil {
					t.Errorf("%s on %s: improved strategy invalid: %v", s.Name(), name, err)
				}
			}
		}
	}
}

func TestImprovePacksBaselineIO(t *testing.T) {
	// Baseline emits strictly sequential singleton moves on round-robin
	// processors; on a wide DAG (independent nodes land on different
	// processors) the repacking pass must merge a substantial share of
	// them into parallel moves.
	g := gen.TwoLayerRandom(8, 24, 0.2, 1)
	in := pebble.MustInstance(g, pebble.MPP(4, g.MaxInDegree()+1, 5))
	strat, err := Baseline{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := pebble.Replay(in, strat)
	_, after, err := Improve(in, strat)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cost >= before.Cost {
		t.Errorf("no improvement: %d → %d", before.Cost, after.Cost)
	}
	if float64(after.Cost) > 0.5*float64(before.Cost) {
		t.Errorf("packing too weak: %d → %d", before.Cost, after.Cost)
	}
	// Pipelined case: consecutive chain nodes alternate processors, so
	// only pipeline overlap is available; Improve must still help.
	gc := gen.IndependentChains(4, 8)
	inc := pebble.MustInstance(gc, pebble.MPP(4, 3, 5))
	sc, err := Baseline{}.Schedule(inc)
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := pebble.Replay(inc, sc)
	_, ac, err := Improve(inc, sc)
	if err != nil {
		t.Fatal(err)
	}
	if ac.Cost >= bc.Cost {
		t.Errorf("no pipeline improvement on chains: %d → %d", bc.Cost, ac.Cost)
	}
}

func TestImproveDropsPlantedWaste(t *testing.T) {
	// Hand-build a strategy with obvious waste: double writes, reads of
	// red nodes, and a write never used.
	g := gen.Chain(3)
	in := pebble.MustInstance(g, pebble.MPP(1, 3, 4))
	s := &pebble.Strategy{}
	s.Append(
		pebble.Compute(pebble.At(0, 0)),
		pebble.Write(pebble.At(0, 0)), // dead: never read, not a sink in need
		pebble.Compute(pebble.At(0, 1)),
		pebble.Write(pebble.At(0, 1)),
		pebble.Write(pebble.At(0, 1)), // duplicate write
		pebble.Read(pebble.At(0, 1)),  // read of an already-red node
		pebble.Compute(pebble.At(0, 2)),
	)
	before, err := pebble.Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	improved, after, err := Improve(in, s)
	if err != nil {
		t.Fatal(err)
	}
	// All four I/O moves are waste: the chain pebbles through compute
	// moves alone. Expected final cost: 3 computes.
	if after.Cost != 3 {
		t.Errorf("cost = %d after improvement, want 3 (before %d); strategy: %s",
			after.Cost, before.Cost, improved)
	}
}

func TestImproveKeepsNeededWrites(t *testing.T) {
	// A sink whose only pebble at the end is blue must keep its write.
	g := gen.Chain(2)
	in := pebble.MustInstance(g, pebble.MPP(1, 2, 4))
	s := &pebble.Strategy{}
	s.Append(
		pebble.Compute(pebble.At(0, 0)),
		pebble.Compute(pebble.At(0, 1)),
		pebble.Write(pebble.At(0, 1)),
		pebble.Delete(pebble.At(0, 0), pebble.At(0, 1)),
	)
	improved, after, err := Improve(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if after.IOActions != 1 {
		t.Errorf("needed sink write was dropped: %s", improved)
	}
}

func TestQuickImproveOnRandomGreedy(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomDAG(8+rng.Intn(30), 0.15, 3, seed)
		k := 1 + rng.Intn(4)
		in := pebble.MustInstance(g, pebble.MPP(k, g.MaxInDegree()+2, 1+rng.Intn(5)))
		strat, err := (Greedy{}).Schedule(in)
		if err != nil {
			return false
		}
		before, err := pebble.Replay(in, strat)
		if err != nil {
			return false
		}
		improved, after, err := Improve(in, strat)
		if err != nil {
			return false
		}
		if _, err := pebble.Replay(in, improved); err != nil {
			return false
		}
		return after.Cost <= before.Cost
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeGreedyBeatsGreedyOnZipper(t *testing.T) {
	// Tail-less zipper with expensive I/O: recomputing the swapped-out
	// group (all sources) costs d per chain node; plain greedy pays d·g.
	d, n0, ioCost := 4, 24, 8
	g, _ := gen.Zipper(d, n0, 0)
	in := pebble.MustInstance(g, pebble.MPP(1, d+2, ioCost))
	plain, err := Run(Greedy{}, in)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(RecomputeGreedy{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cost >= plain.Cost {
		t.Fatalf("recompute greedy %d not below plain greedy %d", rec.Cost, plain.Cost)
	}
	if rec.Recomputations == 0 {
		t.Error("recompute greedy never recomputed")
	}
	// Should be within 2× of the recomputation optimum ≈ n + (d+1)·chain.
	optApprox := int64(g.N() + (d+1)*(n0-1))
	if rec.Cost > 2*optApprox {
		t.Errorf("recompute greedy cost %d far above recompute optimum ≈ %d", rec.Cost, optApprox)
	}
}

func TestRecomputeGreedyValidOnZoo(t *testing.T) {
	for name, g := range zoo() {
		in := pebble.MustInstance(g, pebble.MPP(2, g.MaxInDegree()+2, 4))
		rep, err := Run(RecomputeGreedy{MaxClosure: 3}, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.ComputeActions < g.N() {
			t.Errorf("%s: only %d of %d nodes computed", name, rep.ComputeActions, g.N())
		}
	}
}

func TestRandomRestartGreedy(t *testing.T) {
	for name, g := range zoo() {
		in := pebble.MustInstance(g, pebble.MPP(2, g.MaxInDegree()+2, 3))
		rep, err := Run(RandomRestartGreedy{Seed: 1, Restarts: 4}, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.ComputeActions < g.N() {
			t.Errorf("%s: incomplete computation", name)
		}
	}
	// Determinism for a fixed seed.
	g := gen.RandomDAG(30, 0.15, 3, 4)
	in := pebble.MustInstance(g, pebble.MPP(3, g.MaxInDegree()+2, 3))
	a, err := Run(RandomRestartGreedy{Seed: 7}, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RandomRestartGreedy{Seed: 7}, in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("same seed, different costs: %d vs %d", a.Cost, b.Cost)
	}
	// Never worse than the best deterministic greedy by more than noise;
	// often better. Just sanity-check it is within the Lemma 1 bounds.
	if a.Cost > UpperBoundCost(in) || a.Cost < LowerBoundCost(in) {
		t.Errorf("random greedy cost %d outside Lemma 1 bounds", a.Cost)
	}
}

func TestRandomRestartGreedyCancellation(t *testing.T) {
	g := gen.RandomDAG(40, 0.1, 3, 2)
	in := pebble.MustInstance(g, pebble.MPP(2, g.MaxInDegree()+2, 3))

	// Already-cancelled context, no completed restart: typed error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (RandomRestartGreedy{Seed: 1}).ScheduleCtx(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from cancelled ctx, got %v", err)
	}

	// ScheduleCtx with a live context matches the plain Schedule result
	// (anytime must not perturb the deterministic restart sequence).
	full, err := Run(RandomRestartGreedy{Seed: 3, Restarts: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RandomRestartGreedy{Seed: 3, Restarts: 4}.ScheduleCtx(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pebble.Replay(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != full.Cost {
		t.Errorf("ScheduleCtx cost %d != Schedule cost %d", rep.Cost, full.Cost)
	}

	// ScheduleCtx dispatch: a plain Scheduler without ctx support still runs.
	if _, err := ScheduleCtx(context.Background(), Baseline{}, in); err != nil {
		t.Fatalf("ScheduleCtx(Baseline): %v", err)
	}
}

func TestRepackPreservesWriteReadDependency(t *testing.T) {
	// A write and its dependent read on different processors must stay
	// ordered even when repacking pulls everything as early as possible.
	g := gen.Chain(2)
	in := pebble.MustInstance(g, pebble.MPP(2, 2, 3))
	s := &pebble.Strategy{}
	s.Append(
		pebble.Compute(pebble.At(0, 0)),
		pebble.Write(pebble.At(0, 0)),
		pebble.Read(pebble.At(1, 0)),
		pebble.Compute(pebble.At(1, 1)),
	)
	improved, rep, err := Improve(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pebble.Replay(in, improved); err != nil {
		t.Fatalf("repacked strategy invalid: %v", err)
	}
	if rep.Cost > 8 {
		t.Errorf("cost %d unexpectedly high", rep.Cost)
	}
}

func TestImproveIdempotent(t *testing.T) {
	g := gen.FFT(3)
	in := pebble.MustInstance(g, pebble.MPP(2, 4, 3))
	s, err := Baseline{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	once, r1, err := Improve(in, s)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := Improve(in, once)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cost != r1.Cost {
		t.Errorf("Improve not idempotent: %d then %d", r1.Cost, r2.Cost)
	}
}
