package sched

// This file preserves the pre-rewrite, map-backed greedy and partitioned
// engines verbatim (modulo renames) as test-only oracles, mirroring the
// hashtab Ref-oracle pattern: the CSR-native engines in greedy.go /
// partition.go must produce byte-identical strategies to these for every
// policy, instance, and worker count (see equiv_test.go). Do not "fix" or
// optimize this code — its value is that it is the old semantics, frozen.

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/pebble"
)

type oracleGreedyEngine struct {
	in   *pebble.Instance
	pol  Greedy
	b    *pebble.Builder
	n, k int

	computed  []bool
	remSuccs  []int // uncomputed successors per node
	remPreds  []int // uncomputed predecessors per node (readiness)
	ready     []dag.NodeID
	readyPos  []int // position in ready slice, -1 if absent
	lastTouch [][]int64
	clock     int64
	isSink    []bool
	left      int // uncomputed nodes

	recompute func(p int, u dag.NodeID, pinned map[dag.NodeID]bool) bool
	randomTie *rand.Rand
}

func newOracleGreedyEngine(in *pebble.Instance, pol Greedy) *oracleGreedyEngine {
	n, k := in.Graph.N(), in.K
	e := &oracleGreedyEngine{
		in: in, pol: pol, b: pebble.NewBuilder(in),
		n: n, k: k,
		computed: make([]bool, n),
		remSuccs: make([]int, n),
		remPreds: make([]int, n),
		readyPos: make([]int, n),
		isSink:   make([]bool, n),
		left:     n,
	}
	e.lastTouch = make([][]int64, k)
	for p := range e.lastTouch {
		e.lastTouch[p] = make([]int64, n)
	}
	for v := 0; v < n; v++ {
		e.remSuccs[v] = in.Graph.OutDegree(dag.NodeID(v))
		e.remPreds[v] = in.Graph.InDegree(dag.NodeID(v))
		e.readyPos[v] = -1
	}
	for _, s := range in.Graph.Sinks() {
		e.isSink[s] = true
	}
	for v := 0; v < n; v++ {
		if e.remPreds[v] == 0 {
			e.pushReady(dag.NodeID(v))
		}
	}
	return e
}

func (e *oracleGreedyEngine) pushReady(v dag.NodeID) {
	e.readyPos[v] = len(e.ready)
	e.ready = append(e.ready, v)
}

func (e *oracleGreedyEngine) dropReady(v dag.NodeID) {
	pos := e.readyPos[v]
	last := len(e.ready) - 1
	e.ready[pos] = e.ready[last]
	e.readyPos[e.ready[pos]] = pos
	e.ready = e.ready[:last]
	e.readyPos[v] = -1
}

func (e *oracleGreedyEngine) score(p int, v dag.NodeID) float64 {
	preds := e.in.Graph.Pred(v)
	if len(preds) == 0 {
		return 0
	}
	red := 0
	for _, u := range preds {
		if e.b.Config().Red[p].Contains(int(u)) {
			red++
		}
	}
	if e.pol.Select == SelectFraction {
		return float64(red) / float64(len(preds))
	}
	return float64(red)
}

func (e *oracleGreedyEngine) pick(p int, claimed map[dag.NodeID]bool) dag.NodeID {
	best := dag.NodeID(-1)
	bestScore := -1.0
	for _, v := range e.ready {
		if claimed[v] {
			continue
		}
		sc := e.score(p, v)
		better := sc > bestScore
		if sc == bestScore && best >= 0 {
			if e.pol.Tie == TieLowID {
				better = v < best
			} else {
				better = v > best
			}
		}
		if better {
			best, bestScore = v, sc
		}
	}
	return best
}

func (e *oracleGreedyEngine) dead(u dag.NodeID) bool {
	if e.remSuccs[u] > 0 {
		return false
	}
	if e.isSink[u] && !e.b.Config().Blue.Contains(int(u)) {
		return false
	}
	return true
}

func (e *oracleGreedyEngine) makeRoom(p, want int, pinned map[dag.NodeID]bool) error {
	for e.b.FreeSlots(p) < want {
		victim := dag.NodeID(-1)
		victimDead := false
		victimBlue := false
		var victimKey int64
		cfg := e.b.Config()
		cfg.Red[p].ForEach(func(i int) bool {
			u := dag.NodeID(i)
			if pinned[u] {
				return true
			}
			d := e.dead(u)
			bl := cfg.Blue.Contains(i)
			var key int64
			if e.pol.Evict == EvictLRU {
				key = e.lastTouch[p][u]
			} else {
				key = int64(e.remSuccs[u])
			}
			better := false
			switch {
			case victim == -1:
				better = true
			case d != victimDead:
				better = d
			case bl != victimBlue:
				better = bl
			default:
				better = key < victimKey
			}
			if better {
				victim, victimDead, victimBlue, victimKey = u, d, bl, key
			}
			return true
		})
		if victim == -1 {
			return fmt.Errorf("greedy: processor %d cannot free %d slots (r=%d too small for pinned set %d)",
				p, want, e.in.R, len(pinned))
		}
		if !victimDead && !victimBlue {
			e.b.Write(pebble.At(p, victim))
		}
		e.b.Delete(pebble.At(p, victim))
	}
	return nil
}

func (e *oracleGreedyEngine) fetch(p int, v dag.NodeID) error {
	preds := e.in.Graph.Pred(v)
	pinned := make(map[dag.NodeID]bool, len(preds)+1)
	for _, u := range preds {
		pinned[u] = true
	}
	pinned[v] = true
	cfg := e.b.Config()
	for _, u := range preds {
		if cfg.Red[p].Contains(int(u)) {
			e.lastTouch[p][u] = e.clock
			continue
		}
		if e.recompute != nil && !e.in.OneShot && e.recompute(p, u, pinned) {
			e.lastTouch[p][u] = e.clock
			continue
		}
		if !cfg.Blue.Contains(int(u)) {
			owner := -1
			for q := 0; q < e.k; q++ {
				if cfg.Red[q].Contains(int(u)) {
					owner = q
					break
				}
			}
			if owner == -1 {
				return fmt.Errorf("greedy: computed node %d has no pebble anywhere", u)
			}
			e.b.Write(pebble.At(owner, u))
		}
		if err := e.makeRoom(p, 1, pinned); err != nil {
			return err
		}
		e.b.Read(pebble.At(p, u))
		e.lastTouch[p][u] = e.clock
	}
	return e.makeRoom(p, 1, pinned)
}

func (e *oracleGreedyEngine) markComputed(v dag.NodeID) {
	e.computed[v] = true
	e.left--
	e.dropReady(v)
	for _, u := range e.in.Graph.Pred(v) {
		e.remSuccs[u]--
	}
	for _, w := range e.in.Graph.Succ(v) {
		e.remPreds[w]--
		if e.remPreds[w] == 0 {
			e.pushReady(w)
		}
	}
}

func (e *oracleGreedyEngine) run() (*pebble.Strategy, error) {
	for e.left > 0 {
		e.clock++
		if len(e.ready) == 0 {
			return nil, fmt.Errorf("greedy: no ready node with %d nodes uncomputed", e.left)
		}
		claimed := map[dag.NodeID]bool{}
		targets := make([]dag.NodeID, e.k)
		for p := 0; p < e.k; p++ {
			if e.randomTie != nil {
				targets[p] = e.randomPick(p, claimed)
			} else {
				targets[p] = e.pick(p, claimed)
			}
			if targets[p] >= 0 {
				claimed[targets[p]] = true
			}
		}
		for p := 0; p < e.k; p++ {
			if targets[p] < 0 {
				continue
			}
			if err := e.fetch(p, targets[p]); err != nil {
				return nil, err
			}
		}
		var acts []pebble.Action
		for p := 0; p < e.k; p++ {
			if targets[p] >= 0 {
				acts = append(acts, pebble.At(p, targets[p]))
			}
		}
		if len(acts) == 0 {
			return nil, fmt.Errorf("greedy: stalled round with %d nodes uncomputed", e.left)
		}
		e.b.ComputeParallel(acts...)
		for _, a := range acts {
			e.lastTouch[a.Proc][a.Node] = e.clock
			e.markComputed(a.Node)
		}
	}
	return e.b.Strategy(), nil
}

func (e *oracleGreedyEngine) randomPick(p int, claimed map[dag.NodeID]bool) dag.NodeID {
	bestScore := -1.0
	var pool []dag.NodeID
	for _, v := range e.ready {
		if claimed[v] {
			continue
		}
		sc := e.score(p, v)
		switch {
		case sc > bestScore:
			bestScore = sc
			pool = pool[:0]
			pool = append(pool, v)
		case sc == bestScore:
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		return -1
	}
	return pool[e.randomTie.Intn(len(pool))]
}

// oracleGreedySchedule runs the frozen greedy engine for a plain Greedy
// policy.
func oracleGreedySchedule(in *pebble.Instance, pol Greedy) (*pebble.Strategy, error) {
	return newOracleGreedyEngine(in, pol).run()
}

// oracleRecomputeSchedule runs the frozen engine with the pre-rewrite
// RecomputeGreedy hook (map-based pinned sets).
func oracleRecomputeSchedule(in *pebble.Instance, r RecomputeGreedy) (*pebble.Strategy, error) {
	e := newOracleGreedyEngine(in, r.Greedy)
	maxClosure := r.MaxClosure
	if maxClosure <= 0 {
		maxClosure = 1
	}
	e.recompute = func(p int, u dag.NodeID, pinned map[dag.NodeID]bool) bool {
		closure, boundary, ok := recomputeClosure(in.Graph, u, e.b.Config().Red[p], maxClosure)
		if !ok || len(closure)*in.ComputeCost >= in.G {
			return false
		}
		union := make(map[dag.NodeID]bool, len(pinned)+len(closure)+len(boundary))
		for v := range pinned {
			union[v] = true
		}
		for _, v := range closure {
			union[v] = true
		}
		for _, v := range boundary {
			union[v] = true
		}
		if len(union) > in.R {
			return false
		}
		pinAll := make(map[dag.NodeID]bool, len(union))
		for v := range pinned {
			pinAll[v] = true
		}
		for _, v := range boundary {
			pinAll[v] = true
		}
		for _, w := range closure {
			if err := e.makeRoom(p, 1, pinAll); err != nil {
				return false
			}
			e.b.Compute(p, w)
			e.lastTouch[p][w] = e.clock
			pinAll[w] = true
		}
		for _, w := range closure {
			if w != u && !pinned[w] {
				e.b.DropRed(p, w)
			}
		}
		return true
	}
	return e.run()
}

// oracleRandomSchedule reproduces the pre-rewrite RandomRestartGreedy
// restart loop on the frozen engine.
func oracleRandomSchedule(in *pebble.Instance, r RandomRestartGreedy) (*pebble.Strategy, error) {
	restarts := r.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	rng := rand.New(rand.NewSource(r.Seed))
	var best *pebble.Strategy
	var bestCost int64 = -1
	var lastErr error
	for i := 0; i < restarts; i++ {
		e := newOracleGreedyEngine(in, Greedy{Select: r.Select, Evict: r.Evict})
		e.randomTie = rand.New(rand.NewSource(rng.Int63()))
		s, err := e.run()
		if err != nil {
			lastErr = err
			continue
		}
		rep, err := pebble.Replay(in, s)
		if err != nil {
			lastErr = err
			continue
		}
		if bestCost < 0 || rep.Cost < bestCost {
			best, bestCost = s, rep.Cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: all %d random restarts failed: %w", restarts, lastErr)
	}
	return best, nil
}

type oracleMicroOp struct {
	kind pebble.OpKind
	node dag.NodeID
}

type oraclePartEngine struct {
	in     *pebble.Instance
	b      *pebble.Builder
	assign []int
	k      int

	order [][]dag.NodeID // per-processor nodes in global topo order
	ptr   []int          // next index into order[p]
	queue [][]oracleMicroOp

	uses          []map[dag.NodeID][]int
	usePtr        []map[dag.NodeID]int
	pinned        []map[dag.NodeID]bool
	isSink        []bool
	computedCount int
	computed      []bool
	crossOut      []bool
}

func newOraclePartEngine(in *pebble.Instance, assign []int) *oraclePartEngine {
	n, k := in.Graph.N(), in.K
	e := &oraclePartEngine{
		in: in, b: pebble.NewBuilder(in), assign: assign, k: k,
		order: make([][]dag.NodeID, k), ptr: make([]int, k),
		queue: make([][]oracleMicroOp, k),
		uses:  make([]map[dag.NodeID][]int, k), usePtr: make([]map[dag.NodeID]int, k),
		pinned: make([]map[dag.NodeID]bool, k),
		isSink: make([]bool, n), computed: make([]bool, n),
		crossOut: make([]bool, n),
	}
	for p := 0; p < k; p++ {
		e.uses[p] = map[dag.NodeID][]int{}
		e.usePtr[p] = map[dag.NodeID]int{}
		e.pinned[p] = map[dag.NodeID]bool{}
	}
	for _, v := range in.Graph.Topo() {
		p := assign[v]
		pos := len(e.order[p])
		e.order[p] = append(e.order[p], v)
		for _, u := range in.Graph.Pred(v) {
			e.uses[p][u] = append(e.uses[p][u], pos)
		}
	}
	for _, s := range in.Graph.Sinks() {
		e.isSink[s] = true
	}
	for v := 0; v < n; v++ {
		for _, w := range in.Graph.Succ(dag.NodeID(v)) {
			if assign[w] != assign[v] {
				e.crossOut[v] = true
				break
			}
		}
	}
	return e
}

func (e *oraclePartEngine) nextUse(p int, u dag.NodeID, from int) int {
	const inf = 1 << 30
	us := e.uses[p][u]
	i := e.usePtr[p][u]
	for i < len(us) && us[i] < from {
		i++
	}
	e.usePtr[p][u] = i
	if i == len(us) {
		return inf
	}
	return us[i]
}

func (e *oraclePartEngine) globallyDead(u dag.NodeID) bool {
	for _, w := range e.in.Graph.Succ(u) {
		if !e.computed[w] {
			return false
		}
	}
	return true
}

func (e *oraclePartEngine) planNext(p int) bool {
	v := e.order[p][e.ptr[p]]
	cfg := e.b.Config()
	var ops []oracleMicroOp
	for _, u := range e.in.Graph.Pred(v) {
		if cfg.Red[p].Contains(int(u)) {
			continue
		}
		if !cfg.Blue.Contains(int(u)) {
			return false // producer has not published u yet
		}
		ops = append(ops, oracleMicroOp{pebble.OpRead, u})
	}
	ops = append(ops, oracleMicroOp{pebble.OpCompute, v})
	if e.crossOut[v] {
		ops = append(ops, oracleMicroOp{pebble.OpWrite, v})
	}
	e.queue[p] = ops
	pin := e.pinned[p]
	for u := range pin {
		delete(pin, u)
	}
	for _, u := range e.in.Graph.Pred(v) {
		pin[u] = true
	}
	pin[v] = true
	return true
}

func (e *oraclePartEngine) evictOne(p int) (spill *pebble.Action, ok bool) {
	cfg := e.b.Config()
	const inf = 1 << 30
	victim := dag.NodeID(-1)
	victimFree := false
	victimUse := -1
	cfg.Red[p].ForEach(func(i int) bool {
		u := dag.NodeID(i)
		if e.pinned[p][u] {
			return true
		}
		blue := cfg.Blue.Contains(i)
		free := blue || (e.globallyDead(u) && (!e.isSink[u] || blue))
		use := e.nextUse(p, u, e.ptr[p])
		if e.isSink[u] && !blue {
			use = inf
		}
		better := false
		switch {
		case victim == -1:
			better = true
		case free != victimFree:
			better = free
		default:
			better = use > victimUse
		}
		if better {
			victim, victimFree, victimUse = u, free, use
		}
		return true
	})
	if victim == -1 {
		return nil, false
	}
	if !victimFree && !cfg.Blue.Contains(int(victim)) {
		a := pebble.At(p, victim)
		return &a, true
	}
	e.b.Delete(pebble.At(p, victim))
	return nil, true
}

func (e *oraclePartEngine) run() (*pebble.Strategy, error) {
	n := e.in.Graph.N()
	for e.computedCount < n {
		var writes, reads, computes []pebble.Action
		computedThisRound := []dag.NodeID{}
		progress := false
		for p := 0; p < e.k; p++ {
			if len(e.queue[p]) == 0 {
				if e.ptr[p] >= len(e.order[p]) {
					continue
				}
				if !e.planNext(p) {
					continue
				}
			}
			op := e.queue[p][0]
			switch op.kind {
			case pebble.OpRead, pebble.OpCompute:
				if e.b.FreeSlots(p) < 1 && !e.b.Config().Red[p].Contains(int(op.node)) {
					spill, ok := e.evictOne(p)
					if !ok {
						return nil, fmt.Errorf("partitioned: processor %d wedged: no evictable pebble (r=%d)", p, e.in.R)
					}
					if spill != nil {
						writes = append(writes, *spill)
						progress = true
						continue
					}
				}
				if op.kind == pebble.OpRead {
					reads = append(reads, pebble.At(p, op.node))
				} else {
					computes = append(computes, pebble.At(p, op.node))
					computedThisRound = append(computedThisRound, op.node)
				}
				e.queue[p] = e.queue[p][1:]
				progress = true
			case pebble.OpWrite:
				writes = append(writes, pebble.At(p, op.node))
				e.queue[p] = e.queue[p][1:]
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("partitioned: deadlock with %d of %d nodes computed", e.computedCount, n)
		}
		if len(writes) > 0 {
			e.b.Write(writes...)
			var dels []pebble.Action
			for _, w := range writes {
				if e.pinned[w.Proc][w.Node] {
					continue
				}
				dels = append(dels, w)
			}
			for _, d := range dels {
				e.b.Delete(d)
			}
		}
		if len(reads) > 0 {
			e.b.Read(reads...)
		}
		if len(computes) > 0 {
			e.b.ComputeParallel(computes...)
		}
		for _, v := range computedThisRound {
			e.computed[v] = true
			e.computedCount++
		}
		for p := 0; p < e.k; p++ {
			if len(e.queue[p]) == 0 && e.ptr[p] < len(e.order[p]) && e.computed[e.order[p][e.ptr[p]]] {
				e.ptr[p]++
			}
		}
	}
	return e.b.Strategy(), nil
}

// oraclePartSchedule runs the frozen partitioned engine on an assignment
// produced the same way Partitioned.Schedule produces it.
func oraclePartSchedule(in *pebble.Instance, assign []int) (*pebble.Strategy, error) {
	if len(assign) != in.N() {
		return nil, fmt.Errorf("partitioned: assignment covers %d of %d nodes", len(assign), in.N())
	}
	for v, a := range assign {
		if a < 0 || a >= in.K {
			return nil, fmt.Errorf("partitioned: node %d assigned to processor %d outside [0,%d)", v, a, in.K)
		}
	}
	return newOraclePartEngine(in, assign).run()
}
