package sched

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
)

// TestSchedSmoke is the million-node scale gate: with SCHED_SMOKE=1 it
// schedules 10⁵- and 10⁶-node DAGs with both heuristic engines, validates
// every strategy by full replay, and checks the measured cost against the
// certified lower bound. It is skipped by default because the 10⁶-node
// instances take a few seconds each and verify.sh runs it as a dedicated
// step rather than inside the -race sweep.
func TestSchedSmoke(t *testing.T) {
	if os.Getenv("SCHED_SMOKE") == "" {
		t.Skip("set SCHED_SMOKE=1 to run the large-instance smoke test")
	}
	cases := []struct {
		name  string
		build func() *dag.Graph
	}{
		{"grid-1e5", func() *dag.Graph { return gen.Grid2D(320, 320) }},
		{"wavefront-1e5", func() *dag.Graph { return gen.Wavefront(500, 200) }},
		{"wavefront-1e6", func() *dag.Graph { return gen.Wavefront(2000, 500) }},
	}
	const k = 4
	for _, tc := range cases {
		g := tc.build()
		in, err := pebble.NewInstance(g, pebble.MPP(k, g.MaxInDegree()+2, 3))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		lower, term := bounds.CertifiedLower(in)
		if lower <= 0 {
			t.Fatalf("%s: certified lower bound %d not positive", tc.name, lower)
		}
		scheds := []Scheduler{
			Greedy{},
			Partitioned{Assign: AssignLevelRoundRobin, AssignName: "levels"},
		}
		for _, s := range scheds {
			t.Run(fmt.Sprintf("%s/%s", tc.name, s.Name()), func(t *testing.T) {
				start := time.Now()
				strat, err := s.Schedule(in)
				elapsed := time.Since(start)
				if err != nil {
					t.Fatalf("schedule failed after %v: %v", elapsed, err)
				}
				rep, err := pebble.Replay(in, strat)
				if err != nil {
					t.Fatalf("invalid strategy: %v", err)
				}
				if rep.Cost < lower {
					t.Fatalf("cost %d below certified lower %d (term %s): bound unsound",
						rep.Cost, lower, term)
				}
				n := g.N()
				t.Logf("n=%d m=%d: scheduled in %v (%.0f ns/node), cost=%d lower=%d (%s) gap=%.1f%%",
					n, g.M(), elapsed, float64(elapsed.Nanoseconds())/float64(n),
					rep.Cost, lower, term, 100*bounds.Gap(lower, rep.Cost))
			})
		}
	}
}
