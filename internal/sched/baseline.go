package sched

import (
	"repro/internal/dag"
	"repro/internal/pebble"
)

// Baseline is the naive strategy from the proof of Lemma 1: walk the nodes
// in topological order; for each node, load its (already slow-memory-
// resident) predecessors into one processor, compute it, store it back,
// and drop all red pebbles. Each node costs at most (Δ_in+1)·g + 1, so the
// total cost is at most (g·(Δ_in+1)+1)·n, matching the lemma's upper
// bound.
//
// Processors are used round-robin, which changes nothing about the cost
// but exercises all shades.
type Baseline struct{}

// Name implements Scheduler.
func (Baseline) Name() string { return "baseline" }

// Schedule implements Scheduler.
func (Baseline) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	g := in.Graph
	s := &pebble.Strategy{}
	p := 0
	for _, v := range g.Topo() {
		// Load predecessors from slow memory (every previously computed
		// node was stored).
		for _, u := range g.Pred(v) {
			s.Append(pebble.Read(pebble.At(p, u)))
		}
		s.Append(pebble.Compute(pebble.At(p, v)))
		s.Append(pebble.Write(pebble.At(p, v)))
		// Drop the red pebbles; the blue copy of v persists, and sinks
		// end up blue, satisfying the terminal condition.
		acts := make([]pebble.Action, 0, g.InDegree(v)+1)
		for _, u := range g.Pred(v) {
			acts = append(acts, pebble.At(p, u))
		}
		acts = append(acts, pebble.At(p, v))
		s.Append(pebble.Delete(acts...))
		p = (p + 1) % in.K
	}
	if g.N() == 0 {
		return s, nil
	}
	return s, nil
}

// UpperBoundCost returns the Lemma 1 analytic upper bound
// (g·(Δ_in+1)+1)·n for the instance.
func UpperBoundCost(in *pebble.Instance) int64 {
	return (int64(in.G)*int64(in.Graph.MaxInDegree()+1) + int64(in.ComputeCost)) * int64(in.N())
}

// LowerBoundCost returns the Lemma 1 analytic lower bound ⌈n/k⌉·computeCost
// — with the paper's ComputeCost = 1 this is the ⌈n/k⌉ compute-move bound.
func LowerBoundCost(in *pebble.Instance) int64 {
	n := int64(in.N())
	k := int64(in.K)
	return (n + k - 1) / k * int64(in.ComputeCost)
}

// evictActions is a small helper used by several schedulers: build delete
// actions for proc p over nodes vs.
func evictActions(p int, vs []dag.NodeID) []pebble.Action {
	acts := make([]pebble.Action, len(vs))
	for i, v := range vs {
		acts[i] = pebble.At(p, v)
	}
	return acts
}
