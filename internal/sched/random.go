package sched

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// RandomRestartGreedy runs the greedy engine Restarts times with
// randomized tie-breaking (every node choice among near-best scores is
// drawn from a seeded RNG) and keeps the cheapest valid strategy. It is
// the portfolio's stochastic member: on instances where deterministic
// tie-breaking walks into a trap, some restart usually walks around it.
type RandomRestartGreedy struct {
	Select   SelectRule
	Evict    EvictRule
	Seed     int64
	Restarts int // default 8
}

// Name implements Scheduler.
func (r RandomRestartGreedy) Name() string {
	return fmt.Sprintf("random-greedy(%s,%s,seed=%d)", r.Select, r.Evict, r.Seed)
}

// Schedule implements Scheduler.
func (r RandomRestartGreedy) Schedule(in *pebble.Instance) (*pebble.Strategy, error) {
	//lint:ignore ctxthread deliberate non-ctx convenience API; deadline-aware callers use ScheduleCtx
	return r.ScheduleCtx(context.Background(), in)
}

// ScheduleCtx implements CtxScheduler: the restart loop is anytime — when
// the context expires it returns the cheapest strategy found so far, and
// errors only if not a single restart completed in time.
func (r RandomRestartGreedy) ScheduleCtx(ctx context.Context, in *pebble.Instance) (*pebble.Strategy, error) {
	restarts := r.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	rng := rand.New(rand.NewSource(r.Seed))
	var best *pebble.Strategy
	var bestCost int64 = -1
	var lastErr error
	for i := 0; i < restarts; i++ {
		if err := ctx.Err(); err != nil {
			if best != nil {
				return best, nil
			}
			return nil, fmt.Errorf("sched: random restarts canceled before any completed: %w", err)
		}
		e := newGreedyEngine(in, Greedy{Select: r.Select, Evict: r.Evict})
		e.randomTie = rand.New(rand.NewSource(rng.Int63()))
		s, err := e.run()
		if err != nil {
			lastErr = err
			continue
		}
		rep, err := pebble.Replay(in, s)
		if err != nil {
			lastErr = err
			continue
		}
		if bestCost < 0 || rep.Cost < bestCost {
			best, bestCost = s, rep.Cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: all %d random restarts failed: %w", restarts, lastErr)
	}
	return best, nil
}

// randomPick replaces the deterministic tie-break: collect all candidates
// with the maximum score and draw uniformly. The scan stays a linear pass
// over the ready slice (scores are O(1) now) because seed-reproducibility
// pins both the pool order and the Intn draw sequence.
//
//mpp:hotpath
func (e *greedyEngine) randomPick(p int) dag.NodeID {
	bestScore := -1.0
	pool := e.pool[:0]
	for _, v := range e.ready {
		if e.claimStamp[v] == e.clock {
			continue
		}
		sc := e.scoreOf(p, v)
		switch {
		case sc > bestScore:
			bestScore = sc
			pool = pool[:0]
			pool = append(pool, v)
		case sc == bestScore:
			pool = append(pool, v)
		}
	}
	e.pool = pool
	if len(pool) == 0 {
		return -1
	}
	return pool[e.randomTie.Intn(len(pool))]
}
