package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
)

// zoo returns a mix of small DAG families for exhaustive scheduler
// validation.
func zoo() map[string]*dag.Graph {
	z := map[string]*dag.Graph{
		"chain":    gen.Chain(20),
		"chains4":  gen.IndependentChains(4, 8),
		"intree":   gen.BinaryInTree(4),
		"grid":     gen.Grid2D(5, 5),
		"pyramid":  gen.Pyramid(6),
		"fft":      gen.FFT(3),
		"matmul":   gen.MatMul(2),
		"twolayer": gen.TwoLayerRandom(6, 10, 0.3, 1),
		"random":   gen.RandomDAG(40, 0.15, 4, 2),
	}
	zg, _ := gen.Zipper(3, 12, 0)
	z["zipper"] = zg
	fc, _ := gen.FanChain(3, 10, 0)
	z["fanchain"] = fc
	br, _ := gen.SharedPrefixBroom(3, 2, 5)
	z["broom"] = br
	tg, _ := gen.GreedyTrapG(2, 6)
	z["trapg"] = tg
	return z
}

func allSchedulers() []Scheduler {
	return []Scheduler{
		Baseline{},
		Greedy{Select: SelectCount, Tie: TieLowID, Evict: EvictLRU},
		Greedy{Select: SelectCount, Tie: TieHighID, Evict: EvictFewestUses},
		Greedy{Select: SelectFraction, Tie: TieLowID, Evict: EvictLRU},
		Greedy{Select: SelectFraction, Tie: TieHighID, Evict: EvictFewestUses},
		Partitioned{Assign: AssignAllToOne, AssignName: "one"},
		Partitioned{Assign: AssignComponents, AssignName: "components"},
		Partitioned{Assign: AssignLevelRoundRobin, AssignName: "levels"},
		Partitioned{Assign: AssignTopoBlocks, AssignName: "blocks"},
	}
}

// TestAllSchedulersValidOnZoo cross-products schedulers × DAG zoo ×
// (k, r, g) choices; every strategy must pass Replay and land within the
// Lemma 1 bounds.
func TestAllSchedulersValidOnZoo(t *testing.T) {
	type params struct{ k, rExtra, g int }
	paramSets := []params{{1, 1, 1}, {2, 1, 2}, {3, 4, 3}, {4, 2, 1}}
	for name, g := range zoo() {
		for _, ps := range paramSets {
			r := g.MaxInDegree() + 1 + ps.rExtra
			in := pebble.MustInstance(g, pebble.MPP(ps.k, r, ps.g))
			for _, s := range allSchedulers() {
				rep, err := Run(s, in)
				if err != nil {
					t.Errorf("%s on %s (k=%d r=%d g=%d): %v", s.Name(), name, ps.k, r, ps.g, err)
					continue
				}
				lo, hi := LowerBoundCost(in), UpperBoundCost(in)
				if rep.Cost < lo {
					t.Errorf("%s on %s: cost %d below Lemma 1 lower bound %d", s.Name(), name, rep.Cost, lo)
				}
				if rep.Cost > hi {
					t.Errorf("%s on %s: cost %d above Lemma 1 upper bound %d", s.Name(), name, rep.Cost, hi)
				}
			}
		}
	}
}

func TestBaselineCostFormula(t *testing.T) {
	// Baseline on a chain: node 0 costs 1 compute + 1 write; node i > 0
	// adds 1 read. Check exact accounting.
	in := pebble.MustInstance(gen.Chain(10), pebble.MPP(1, 2, 3))
	rep, err := Run(Baseline{}, in)
	if err != nil {
		t.Fatal(err)
	}
	wantIO := int64(3) * int64(10+9) // 10 writes + 9 reads
	if rep.IOCost != wantIO {
		t.Errorf("IOCost = %d, want %d", rep.IOCost, wantIO)
	}
	if rep.ComputeCost != 10 {
		t.Errorf("ComputeCost = %d, want 10", rep.ComputeCost)
	}
}

func TestGreedyChainNoIO(t *testing.T) {
	// A single chain with r ≥ 2 needs no I/O under greedy: the pebble
	// walks down the chain.
	in := pebble.MustInstance(gen.Chain(30), pebble.MPP(1, 2, 5))
	rep, err := Run(Greedy{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOActions != 0 {
		t.Errorf("greedy chain IOActions = %d, want 0", rep.IOActions)
	}
	if rep.ComputeActions != 30 {
		t.Errorf("ComputeActions = %d", rep.ComputeActions)
	}
}

func TestGreedyNeverRecomputes(t *testing.T) {
	for name, g := range zoo() {
		in := pebble.MustInstance(g, pebble.MPP(2, g.MaxInDegree()+2, 2))
		rep, err := Run(Greedy{}, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Recomputations != 0 {
			t.Errorf("%s: greedy recomputed %d times", name, rep.Recomputations)
		}
		if rep.ComputeActions != g.N() {
			t.Errorf("%s: computed %d of %d nodes", name, rep.ComputeActions, g.N())
		}
	}
}

func TestPartitionedComponentsPerfectSpeedup(t *testing.T) {
	// k independent chains under the components assignment: zero I/O and
	// exactly length compute moves (perfect factor-k speedup; the Lemma 7
	// equality case).
	k, length := 4, 25
	g := gen.IndependentChains(k, length)
	in := pebble.MustInstance(g, pebble.MPP(k, 2, 3))
	rep, err := Run(Partitioned{Assign: AssignComponents, AssignName: "components"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOActions != 0 {
		t.Errorf("IOActions = %d, want 0", rep.IOActions)
	}
	if rep.ComputeMoves != length {
		t.Errorf("ComputeMoves = %d, want %d", rep.ComputeMoves, length)
	}
	if rep.Cost != int64(length) {
		t.Errorf("Cost = %d, want %d", rep.Cost, length)
	}
}

func TestPartitionedSingleProcBeladyOnZipper(t *testing.T) {
	// Zipper with r = 2d+2: everything fits; Belady keeps both groups
	// resident and the chain costs zero I/O.
	d := 3
	g, _ := gen.Zipper(d, 20, 0)
	in := pebble.MustInstance(g, pebble.MPP(1, 2*d+2, 5))
	rep, err := Run(Partitioned{Assign: AssignAllToOne, AssignName: "one"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOActions != 0 {
		t.Errorf("zipper with ample memory: IOActions = %d, want 0", rep.IOActions)
	}
	if rep.Cost != int64(g.N()) {
		t.Errorf("Cost = %d, want n = %d", rep.Cost, g.N())
	}
}

func TestPartitionedZipperTightMemoryPaysIO(t *testing.T) {
	// Zipper with r = d+2: the groups no longer fit together; every
	// second chain node forces group swaps, so I/O must appear.
	d := 3
	g, _ := gen.Zipper(d, 20, 0)
	in := pebble.MustInstance(g, pebble.MPP(1, d+2, 5))
	rep, err := Run(Partitioned{Assign: AssignAllToOne, AssignName: "one"}, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOActions == 0 {
		t.Error("tight zipper came out I/O-free; memory accounting broken")
	}
}

func TestGreedyLemma3Bound(t *testing.T) {
	// Greedy must stay within 2·(g(Δin+1)+1) of the trivial lower bound
	// n/k — a weaker but checkable form of Lemma 3 (OPT ≥ n/k).
	for name, g := range zoo() {
		for _, k := range []int{1, 2, 4} {
			in := pebble.MustInstance(g, pebble.MPP(k, g.MaxInDegree()+2, 3))
			rep, err := Run(Greedy{}, in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			factor := 2 * (int64(in.G)*int64(g.MaxInDegree()+1) + 1)
			bound := factor * LowerBoundCost(in)
			if bound == 0 {
				bound = factor
			}
			if rep.Cost > bound {
				t.Errorf("%s k=%d: greedy cost %d exceeds 2(g(Δ+1)+1)·⌈n/k⌉ = %d",
					name, k, rep.Cost, bound)
			}
		}
	}
}

func TestAssignFunctions(t *testing.T) {
	g := gen.IndependentChains(3, 5)
	for _, tc := range []struct {
		name string
		fn   AssignFunc
	}{
		{"one", AssignAllToOne},
		{"components", AssignComponents},
		{"levels", AssignLevelRoundRobin},
		{"blocks", AssignTopoBlocks},
	} {
		a := tc.fn(g, 3)
		if len(a) != g.N() {
			t.Errorf("%s: wrong length", tc.name)
		}
		for v, p := range a {
			if p < 0 || p >= 3 {
				t.Errorf("%s: node %d → processor %d out of range", tc.name, v, p)
			}
		}
	}
	// components keeps each chain whole
	a := AssignComponents(g, 3)
	for c := 0; c < 3; c++ {
		base := a[c*5]
		for i := 1; i < 5; i++ {
			if a[c*5+i] != base {
				t.Error("components split a chain")
			}
		}
	}
	// all-to-one really is all-to-one
	for _, p := range AssignAllToOne(g, 3) {
		if p != 0 {
			t.Error("AssignAllToOne strayed")
		}
	}
}

func TestPartitionedRejectsBadAssignment(t *testing.T) {
	g := gen.Chain(4)
	in := pebble.MustInstance(g, pebble.MPP(2, 2, 1))
	bad := Partitioned{Assign: func(*dag.Graph, int) []int { return []int{0, 1} }, AssignName: "short"}
	if _, err := bad.Schedule(in); err == nil {
		t.Error("short assignment accepted")
	}
	oob := Partitioned{Assign: func(g *dag.Graph, k int) []int { return []int{0, 5, 0, 0} }, AssignName: "oob"}
	if _, err := oob.Schedule(in); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestSchedulerNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allSchedulers() {
		n := s.Name()
		if n == "" {
			t.Error("empty scheduler name")
		}
		if seen[n] {
			t.Errorf("duplicate scheduler name %q", n)
		}
		seen[n] = true
	}
}

// TestQuickRandomDAGsAllSchedulers is the main property test: on random
// DAGs with random parameters, every scheduler yields a Replay-valid
// strategy whose cost respects the Lemma 1 sandwich.
func TestQuickRandomDAGsAllSchedulers(t *testing.T) {
	schedulers := allSchedulers()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		maxIn := 1 + rng.Intn(4)
		g := gen.RandomDAG(n, 0.1+rng.Float64()*0.3, maxIn, seed)
		k := 1 + rng.Intn(4)
		r := g.MaxInDegree() + 1 + rng.Intn(4)
		io := 1 + rng.Intn(5)
		in := pebble.MustInstance(g, pebble.MPP(k, r, io))
		for _, s := range schedulers {
			rep, err := Run(s, in)
			if err != nil {
				t.Logf("seed %d: %s failed: %v", seed, s.Name(), err)
				return false
			}
			if rep.Cost < LowerBoundCost(in) || rep.Cost > UpperBoundCost(in) {
				t.Logf("seed %d: %s cost %d outside bounds", seed, s.Name(), rep.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
