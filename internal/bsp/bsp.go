// Package bsp implements DAG scheduling in the bulk-synchronous parallel
// model with shared-memory communication, the problem the paper proves
// MPP generalizes ("with r = ∞ and minor adjustments, MPP also becomes
// equivalent to DAG scheduling in the BSP model", Section 3.3).
//
// A Schedule assigns every node a processor and a superstep. Within a
// superstep each processor computes its nodes (respecting local
// precedence); values needed by another processor travel through shared
// memory in the communication phase at the end of the producing
// superstep. The BSP cost of a schedule is
//
//	Σ_s ( W_s + g·(h_out_s + h_in_s) )
//
// where W_s is the maximum per-processor work in superstep s and
// h_out/h_in are the maximum number of values any processor stores/loads
// in the communication phases — exactly the cost the same schedule incurs
// when mechanically translated to MPP moves with unbounded fast memory,
// which Convert + pebble.Replay verifies.
package bsp

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/pebble"
)

// Schedule maps each node to a processor and a superstep.
type Schedule struct {
	K         int
	Proc      []int // per node
	Superstep []int // per node
}

// Validate checks the BSP precedence rules: an edge (u, v) requires
// step(u) < step(v) when the processors differ and step(u) ≤ step(v)
// (with topological consistency within a step handled at conversion) when
// they match.
func (s *Schedule) Validate(g *dag.Graph) error {
	if len(s.Proc) != g.N() || len(s.Superstep) != g.N() {
		return fmt.Errorf("bsp: schedule covers %d/%d nodes for %d-node DAG",
			len(s.Proc), len(s.Superstep), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if s.Proc[v] < 0 || s.Proc[v] >= s.K {
			return fmt.Errorf("bsp: node %d on processor %d outside [0,%d)", v, s.Proc[v], s.K)
		}
		if s.Superstep[v] < 0 {
			return fmt.Errorf("bsp: node %d in negative superstep", v)
		}
		for _, u := range g.Pred(dag.NodeID(v)) {
			switch {
			case s.Proc[u] == s.Proc[v]:
				if s.Superstep[u] > s.Superstep[v] {
					return fmt.Errorf("bsp: edge (%d,%d) goes backward in supersteps", u, v)
				}
			default:
				if s.Superstep[u] >= s.Superstep[v] {
					return fmt.Errorf("bsp: cross-processor edge (%d,%d) needs a strictly earlier superstep", u, v)
				}
			}
		}
	}
	return nil
}

// comm describes the value movements of a schedule: sends[s][p] lists the
// values processor p stores to shared memory in the communication phase
// of superstep s; recvs[s][p] lists the values p loads at the start of
// work in superstep s (modeled as part of the previous comm phase's
// cost, matching the h-relation accounting).
type comm struct {
	sends [][][]dag.NodeID
	recvs [][][]dag.NodeID
	steps int
}

func (s *Schedule) plan(g *dag.Graph) comm {
	steps := 0
	for _, ss := range s.Superstep {
		if ss+1 > steps {
			steps = ss + 1
		}
	}
	c := comm{steps: steps}
	c.sends = make([][][]dag.NodeID, steps)
	c.recvs = make([][][]dag.NodeID, steps)
	for i := range c.sends {
		c.sends[i] = make([][]dag.NodeID, s.K)
		c.recvs[i] = make([][]dag.NodeID, s.K)
	}
	sent := make([]bool, g.N())
	recvKey := map[[2]int]bool{} // (node, proc) already delivered
	type need struct {
		node dag.NodeID
		proc int
		step int
	}
	var needs []need
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Pred(dag.NodeID(v)) {
			if s.Proc[u] != s.Proc[v] {
				needs = append(needs, need{u, s.Proc[v], s.Superstep[v]})
			}
		}
	}
	sort.Slice(needs, func(i, j int) bool {
		if needs[i].step != needs[j].step {
			return needs[i].step < needs[j].step
		}
		if needs[i].node != needs[j].node {
			return needs[i].node < needs[j].node
		}
		return needs[i].proc < needs[j].proc
	})
	for _, nd := range needs {
		u := nd.node
		if !sent[u] {
			ps := s.Superstep[u]
			c.sends[ps][s.Proc[u]] = append(c.sends[ps][s.Proc[u]], u)
			sent[u] = true
		}
		key := [2]int{int(u), nd.proc}
		if !recvKey[key] {
			// Deliver in the comm phase right before the consumer's
			// superstep (i.e. accounted at superstep step−1's exchange).
			c.recvs[nd.step][nd.proc] = append(c.recvs[nd.step][nd.proc], u)
			recvKey[key] = true
		}
	}
	return c
}

// Cost returns the BSP cost Σ_s (W_s + g·(h_out_s + h_in_s)). Receives
// scheduled at the start of superstep s are accounted in that superstep.
func (s *Schedule) Cost(g *dag.Graph, ioCost int) int64 {
	c := s.plan(g)
	work := make([][]int, c.steps)
	for i := range work {
		work[i] = make([]int, s.K)
	}
	for v := 0; v < g.N(); v++ {
		work[s.Superstep[v]][s.Proc[v]]++
	}
	var total int64
	for st := 0; st < c.steps; st++ {
		w, hOut, hIn := 0, 0, 0
		for p := 0; p < s.K; p++ {
			if work[st][p] > w {
				w = work[st][p]
			}
			if len(c.sends[st][p]) > hOut {
				hOut = len(c.sends[st][p])
			}
			if len(c.recvs[st][p]) > hIn {
				hIn = len(c.recvs[st][p])
			}
		}
		total += int64(w) + int64(ioCost)*int64(hOut+hIn)
	}
	return total
}

// Convert translates the schedule into an MPP strategy for an instance
// with sufficiently large r (r ≥ n always suffices): per superstep, first
// the delivery reads of this superstep, then the work lists zipped into
// parallel compute moves, then the send writes. Replaying the result on
// an unbounded-memory instance yields exactly Cost().
func (s *Schedule) Convert(g *dag.Graph) *pebble.Strategy {
	c := s.plan(g)
	// Per-processor work lists in global topological order.
	work := make([][][]dag.NodeID, c.steps)
	for i := range work {
		work[i] = make([][]dag.NodeID, s.K)
	}
	for _, v := range g.Topo() {
		work[s.Superstep[v]][s.Proc[v]] = append(work[s.Superstep[v]][s.Proc[v]], v)
	}
	out := &pebble.Strategy{}
	zip := func(lists [][]dag.NodeID, mk func(acts ...pebble.Action) pebble.Move) {
		max := 0
		for _, l := range lists {
			if len(l) > max {
				max = len(l)
			}
		}
		for t := 0; t < max; t++ {
			var acts []pebble.Action
			for p, l := range lists {
				if t < len(l) {
					acts = append(acts, pebble.At(p, l[t]))
				}
			}
			if len(acts) > 0 {
				out.Append(mk(acts...))
			}
		}
	}
	for st := 0; st < c.steps; st++ {
		zip(c.recvs[st], pebble.Read)
		zip(work[st], pebble.Compute)
		zip(c.sends[st], pebble.Write)
	}
	return out
}

// LevelSchedule builds the classic level-synchronous schedule: superstep
// = level, nodes of each level dealt round-robin over the processors.
func LevelSchedule(g *dag.Graph, k int) *Schedule {
	s := &Schedule{K: k, Proc: make([]int, g.N()), Superstep: make([]int, g.N())}
	for lvl, nodes := range g.LevelSets() {
		for i, v := range nodes {
			s.Proc[v] = i % k
			s.Superstep[v] = lvl
		}
	}
	return s
}

// ComponentSchedule places each weakly-connected component on one
// processor (LPT packing) in a single superstep per component-internal
// level; since no edge crosses processors, the whole DAG fits in one
// superstep with zero communication.
func ComponentSchedule(g *dag.Graph, k int, assign func(*dag.Graph, int) []int) *Schedule {
	s := &Schedule{K: k, Proc: assign(g, k), Superstep: make([]int, g.N())}
	return s
}
