package bsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

func TestLevelScheduleValidates(t *testing.T) {
	for name, g := range map[string]*dag.Graph{
		"fft":     gen.FFT(3),
		"grid":    gen.Grid2D(4, 4),
		"pyramid": gen.Pyramid(5),
		"chains":  gen.IndependentChains(3, 6),
	} {
		for _, k := range []int{1, 2, 4} {
			s := LevelSchedule(g, k)
			if err := s.Validate(g); err != nil {
				t.Errorf("%s k=%d: %v", name, k, err)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	g := gen.Chain(3)
	// Cross-processor edge within one superstep.
	bad := &Schedule{K: 2, Proc: []int{0, 1, 0}, Superstep: []int{0, 0, 1}}
	if err := bad.Validate(g); err == nil {
		t.Error("cross-processor same-superstep edge accepted")
	}
	// Backward superstep on same processor.
	back := &Schedule{K: 1, Proc: []int{0, 0, 0}, Superstep: []int{1, 0, 2}}
	if err := back.Validate(g); err == nil {
		t.Error("backward superstep accepted")
	}
	// Out-of-range processor.
	oob := &Schedule{K: 2, Proc: []int{0, 5, 0}, Superstep: []int{0, 1, 2}}
	if err := oob.Validate(g); err == nil {
		t.Error("out-of-range processor accepted")
	}
	short := &Schedule{K: 1, Proc: []int{0}, Superstep: []int{0}}
	if err := short.Validate(g); err == nil {
		t.Error("short schedule accepted")
	}
}

func TestComponentScheduleZeroComm(t *testing.T) {
	g := gen.IndependentChains(4, 10)
	s := ComponentSchedule(g, 4, sched.AssignComponents)
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	// One superstep, max work = 10, no communication.
	if got := s.Cost(g, 7); got != 10 {
		t.Errorf("Cost = %d, want 10", got)
	}
}

// TestConvertCostMatchesBSPCost is the E15 equivalence property: the
// analytic BSP cost of a schedule equals the replayed MPP cost of its
// converted strategy with unbounded fast memory.
func TestConvertCostMatchesBSPCost(t *testing.T) {
	graphs := map[string]*dag.Graph{
		"fft":    gen.FFT(3),
		"grid":   gen.Grid2D(4, 5),
		"chains": gen.IndependentChains(3, 5),
		"random": gen.RandomDAG(30, 0.2, 3, 11),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3} {
			for _, ioCost := range []int{1, 4} {
				s := LevelSchedule(g, k)
				if err := s.Validate(g); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want := s.Cost(g, ioCost)
				in := pebble.MustInstance(g, pebble.MPP(k, g.N()+1, ioCost))
				rep, err := pebble.Replay(in, s.Convert(g))
				if err != nil {
					t.Fatalf("%s k=%d: converted strategy invalid: %v", name, k, err)
				}
				if rep.Cost != want {
					t.Errorf("%s k=%d g=%d: BSP cost %d ≠ MPP replay cost %d",
						name, k, ioCost, want, rep.Cost)
				}
			}
		}
	}
}

func TestQuickConvertEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomDAG(5+rng.Intn(25), 0.1+rng.Float64()*0.3, 3, seed)
		k := 1 + rng.Intn(4)
		ioCost := 1 + rng.Intn(4)
		s := LevelSchedule(g, k)
		if err := s.Validate(g); err != nil {
			return false
		}
		in := pebble.MustInstance(g, pebble.MPP(k, g.N()+1, ioCost))
		rep, err := pebble.Replay(in, s.Convert(g))
		if err != nil {
			return false
		}
		return rep.Cost == s.Cost(g, ioCost)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBSPCostMoreProcsNeverWorseOnWideDAG(t *testing.T) {
	// Level schedules of a wide DAG: more processors strictly reduce the
	// work term; communication may grow, but for a 2-layer bipartite DAG
	// with tiny g the trade favors parallelism.
	g := gen.TwoLayerRandom(8, 32, 0.2, 3)
	c1 := LevelSchedule(g, 1).Cost(g, 1)
	c4 := LevelSchedule(g, 4).Cost(g, 1)
	if c4 >= c1 {
		t.Errorf("k=4 cost %d not below k=1 cost %d on wide DAG", c4, c1)
	}
}
