package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppression checks pragma handling end-to-end on the suppress
// testdata package: well-formed pragmas (trailing and line-above) silence
// their errcmp findings, while malformed pragmas — missing reason,
// unknown analyzer — suppress nothing and are reported under the
// reserved "pragma" analyzer. Expected lines are located by scanning the
// fixture source, so edits to it do not silently invalidate the test.
func TestSuppression(t *testing.T) {
	pkg := loadTestdata(t, "suppress")
	diags, err := Run([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatalf("lint testdata/suppress: %v", err)
	}

	src := filepath.Join(testLoader(t).ModuleRoot, "internal", "lint", "testdata", "src", "suppress", "suppress.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	lineWhere := func(pred func(string) bool, desc string) int {
		t.Helper()
		for i, l := range lines {
			if pred(l) {
				return i + 1
			}
		}
		t.Fatalf("fixture marker not found: %s", desc)
		return 0
	}
	missingReasonPragma := lineWhere(func(l string) bool {
		return strings.TrimSpace(l) == "//lint:ignore errcmp"
	}, "reason-less pragma")
	unknownPragma := lineWhere(func(l string) bool {
		return strings.HasPrefix(strings.TrimSpace(l), "//lint:ignore nosuchcheck")
	}, "unknown-analyzer pragma")
	missingReasonCmp := lineWhere(func(l string) bool {
		return strings.Contains(l, "MARK:unsuppressed-missing-reason")
	}, "comparison under reason-less pragma")
	unknownCmp := lineWhere(func(l string) bool {
		return strings.Contains(l, "MARK:unsuppressed-unknown-analyzer")
	}, "comparison under unknown-analyzer pragma")

	type finding struct {
		analyzer string
		line     int
	}
	got := make(map[finding]string)
	for _, d := range diags {
		if base := filepath.Base(d.Pos.Filename); base != "suppress.go" {
			t.Errorf("diagnostic outside fixture file: %s", d)
			continue
		}
		got[finding{d.Analyzer, d.Pos.Line}] = d.Message
	}
	expect := map[finding]string{
		{"pragma", missingReasonPragma}: "missing a reason",
		{"pragma", unknownPragma}:       "unknown analyzer nosuchcheck",
		{"errcmp", missingReasonCmp}:    "use errors.Is",
		{"errcmp", unknownCmp}:          "use errors.Is",
	}
	for f, substr := range expect {
		msg, ok := got[f]
		if !ok {
			t.Errorf("missing %s diagnostic at line %d", f.analyzer, f.line)
			continue
		}
		if !strings.Contains(msg, substr) {
			t.Errorf("%s at line %d: message %q does not contain %q", f.analyzer, f.line, msg, substr)
		}
	}
	for f, msg := range got {
		if _, ok := expect[f]; !ok {
			t.Errorf("unexpected diagnostic (suppression failed?): %s line %d: %s", f.analyzer, f.line, msg)
		}
	}
}
