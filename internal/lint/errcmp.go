package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp forbids comparing error values with == or != (except against
// nil). Sentinels like opt.ErrBudget are deliberately wrapped by the
// solvers ("%w after %d states"), so a == comparison that happens to work
// today silently breaks the moment a wrap is added — exactly the bug
// errors.Is exists to prevent. Switch statements over an error tag are
// the same comparison in disguise and are flagged per case value.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc: "sentinel errors must be matched with errors.Is, never ==/!= " +
		"(nil comparisons are fine)",
	Run: runErrCmp,
}

func runErrCmp(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrorExpr(info, n.X) && isErrorExpr(info, n.Y) {
					pass.Reportf(n.Pos(), "error compared with %s: use errors.Is", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(info, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if isErrorExpr(info, e) {
							pass.Reportf(e.Pos(), "switch on error compares with ==: use errors.Is")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrorExpr reports whether e has a type implementing error and is not
// the nil literal.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorInterface())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
