package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The golden harness: each testdata/src/<name> package seeds deliberate
// violations annotated with `// want "regexp"` comments. The full
// analyzer suite runs over the package and the findings must match the
// expectations one-to-one — same file, same line, regexp matched against
// "analyzer: message" — so a want also proves no other analyzer fires at
// that line.

var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

// testLoader shares one Loader (and its stdlib source importer cache)
// across the whole test binary; the loader is not safe for concurrent
// use, so none of these tests call t.Parallel.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedL, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedL
}

// loadTestdata loads internal/lint/testdata/src/<name> as one package
// under the synthetic import path "testdata/<name>" (it lives outside
// the module's package tree, so the path cannot be derived).
func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	dir := filepath.Join(l.ModuleRoot, "internal", "lint", "testdata", "src", name)
	pkg, err := l.LoadDir(dir, "testdata/"+name)
	if err != nil {
		t.Fatalf("load testdata/%s: %v", name, err)
	}
	return pkg
}

// want is one parsed expectation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

// collectWants parses `// want "regexp"` comments out of a package.
// Several quoted regexps after one want keyword expect several
// diagnostics on that line.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantQuoted.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("package %s has no // want expectations", pkg.Path)
	}
	return wants
}

// runGolden lints one testdata package with the full suite and matches
// findings against its want expectations one-to-one.
func runGolden(t *testing.T, name string) {
	t.Helper()
	pkg := loadTestdata(t, name)
	diags, err := Run([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatalf("lint testdata/%s: %v", name, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		rendered := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestGoldenCtxThread(t *testing.T)      { runGolden(t, "ctxthread") }
func TestGoldenErrCmp(t *testing.T)         { runGolden(t, "errcmp") }
func TestGoldenPanicCheck(t *testing.T)     { runGolden(t, "paniccheck") }
func TestGoldenVerdictCheck(t *testing.T)   { runGolden(t, "verdictcheck") }
func TestGoldenHotAlloc(t *testing.T)       { runGolden(t, "hotalloc") }
func TestGoldenAtomicField(t *testing.T)    { runGolden(t, "atomicfield") }
func TestGoldenLockGuard(t *testing.T)      { runGolden(t, "lockguard") }
func TestGoldenPoolCheck(t *testing.T)      { runGolden(t, "poolcheck") }
func TestGoldenGoroutineCheck(t *testing.T) { runGolden(t, "goroutinecheck") }
func TestGoldenDetCheck(t *testing.T)       { runGolden(t, "detcheck") }
