package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the allocation-free discipline of the packed-state
// search core. Functions carrying the `//mpp:hotpath` directive (the
// solver expand/relax loop, the bucket queue, the hashtab probe path)
// were measured and written to touch the heap zero times per rejected
// candidate; this analyzer keeps refactors from quietly regressing that.
//
// Inside an annotated function it reports:
//
//   - make and new calls;
//   - slice and map composite literals;
//   - function literals (a closure is an allocation when it captures);
//   - append whose destination is a slice local to the function — a
//     fresh backing array every call. Appending to struct fields,
//     parameters, or locals that alias them (x := s.buf[:0]) is the
//     sanctioned reuse pattern and stays legal.
//
// The check is lexical: callees are not followed (annotate them too),
// and amortized growth of long-lived field slices is deliberately
// allowed.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//mpp:hotpath functions may not allocate: no make/new, no " +
		"slice or map literals, no closures, no append to fresh local slices",
	Run: runHotAlloc,
}

// hotPathDirective is the comment marking a function as hot.
const hotPathDirective = "//mpp:hotpath"

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc group carries the
// directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathDirective {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	locals := localSliceOrigins(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "make"):
				pass.Reportf(n.Pos(), "make in hot path %s", fd.Name.Name)
			case isBuiltin(info, n.Fun, "new"):
				pass.Reportf(n.Pos(), "new in hot path %s", fd.Name.Name)
			case isBuiltin(info, n.Fun, "append"):
				checkAppend(pass, info, fd, n, locals)
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path %s", fd.Name.Name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path %s", fd.Name.Name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path %s", fd.Name.Name)
		}
		return true
	})
}

// checkAppend flags append calls whose destination is a function-local
// slice with a fresh backing array.
func checkAppend(pass *Pass, info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr, locals map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	base := rootExpr(call.Args[0])
	id, ok := base.(*ast.Ident)
	if !ok {
		return // field or derived expression: reused storage
	}
	obj := info.Uses[id]
	if obj == nil || !locals[obj] {
		return
	}
	pass.Reportf(call.Pos(), "append to function-local slice %s in hot path %s: reuse a field or parameter buffer", id.Name, fd.Name.Name)
}

// rootExpr strips parens, slicing and indexing down to the storage-owning
// expression: append(x[:0], …), append(q.buckets[fi], …) and friends all
// resolve to the underlying identifier or selector.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return e
		}
	}
}

// localSliceOrigins collects the objects of slice-typed variables
// declared inside fd whose storage is fresh — declared with var and no
// initializer, or initialized from make/append/literals. Locals that
// alias existing storage (x := s.buf[:0], x := param) are excluded.
// Parameters and the receiver are never local.
func localSliceOrigins(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) && aliasesExistingStorage(n.Rhs[i]) {
					continue
				}
				fresh[obj] = true
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil || !isSliceType(obj.Type()) {
						continue
					}
					if len(vs.Values) == len(vs.Names) && aliasesExistingStorage(vs.Values[i]) {
						continue
					}
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// aliasesExistingStorage reports whether the initializer expression
// derives from storage that already exists (slicing, selecting or
// indexing something) rather than allocating fresh backing.
func aliasesExistingStorage(e ast.Expr) bool {
	switch rootExpr(e).(type) {
	case *ast.SelectorExpr, *ast.Ident:
		// x := s.buf[:0], x := other — aliases whatever that was.
		return true
	default:
		return false
	}
}
