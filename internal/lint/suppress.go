package lint

import (
	"go/token"
	"strings"
)

// Suppression pragma syntax, modeled on staticcheck's:
//
//	//lint:ignore <analyzer> <reason>
//
// The pragma suppresses diagnostics of the named analyzer on its own
// line and on the line directly below it, so it works both as a trailing
// comment on the offending line and as a standalone comment above it.
// The reason is mandatory: an undocumented suppression is itself a
// finding, reported under the reserved analyzer name "pragma", as is a
// pragma naming an analyzer that does not exist.

const pragmaPrefix = "//lint:ignore"

// pragma is one parsed suppression comment.
type pragma struct {
	file     string
	line     int
	analyzer string
}

// collectPragmas scans every comment in the package for ignore pragmas.
// Well-formed pragmas are returned for filtering; malformed ones come
// back as diagnostics.
func collectPragmas(pkg *Package, analyzers []*Analyzer) ([]pragma, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var pragmas []pragma
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Analyzer: "pragma", Pos: pkg.Fset.Position(pos), Message: msg})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "ignore pragma missing analyzer name and reason")
					continue
				}
				if !known[fields[0]] {
					report(c.Pos(), "ignore pragma names unknown analyzer "+fields[0])
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "ignore pragma for "+fields[0]+" missing a reason")
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				pragmas = append(pragmas, pragma{file: p.Filename, line: p.Line, analyzer: fields[0]})
			}
		}
	}
	return pragmas, bad
}

// filterSuppressed drops diagnostics covered by a pragma on the same
// line or the line above.
func filterSuppressed(diags []Diagnostic, pragmas []pragma) []Diagnostic {
	if len(pragmas) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool, 2*len(pragmas))
	for _, p := range pragmas {
		covered[key{p.file, p.line, p.analyzer}] = true
		covered[key{p.file, p.line + 1, p.analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}
