package lint

import (
	"go/ast"
	"go/types"
)

// VerdictCheck guards the three-valued anytime contract of the exact
// solvers: a search cut short by budget or deadline has answered neither
// yes nor no, so the caller must look at Status/Verdict (or hand the
// result to something that does) before trusting Cost or Feasible.
//
// For every call to a solver entry point (opt.Exact*, opt.ZeroIO*, and
// their facade re-exports) the analyzer requires that the returned
// result is (a) not discarded — not an expression statement, not
// assigned to _ — and (b) consulted: at least one use of the result
// variable reads .Status or .Verdict, checks the paired error, or lets
// the value escape (passed to a call, returned, stored, compared),
// which conservatively counts as consultation. Reading only .Cost or
// .Feasible off a possibly-partial result is exactly the bug this
// analyzer exists to catch.
var VerdictCheck = &Analyzer{
	Name: "verdictcheck",
	Doc: "solver results must not be discarded, and their Status/Verdict " +
		"(or paired error) must be consulted before Cost/Feasible is trusted",
	Run: runVerdictCheck,
}

// verdictFuncs lists the functions whose results carry a Status/Verdict,
// keyed by defining package path.
var verdictFuncs = map[string]map[string]bool{
	"repro/internal/opt": {
		"Exact": true, "ExactCtx": true,
		"ExactWithStrategy": true, "ExactWithStrategyCtx": true,
		"ExactOracle": true, "ExactWithStrategyOracle": true,
		"ZeroIO": true, "ZeroIOCtx": true,
		"ZeroIOBig": true, "ZeroIOBigCtx": true, "ZeroIOBigOracle": true,
	},
	"repro": {
		"Exact": true, "ExactCtx": true,
		"ZeroIO": true, "ZeroIOCtx": true,
	},
}

// consultedFields are the result fields whose read satisfies the
// contract.
var consultedFields = map[string]bool{"Status": true, "Verdict": true}

func runVerdictCheck(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		par := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := solverCall(info, call)
			if !ok {
				return true
			}
			checkSolverCall(pass, info, par, call, name)
			return true
		})
	}
	return nil
}

// solverCall resolves call's callee and reports whether it is a tracked
// solver entry point.
func solverCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	names, ok := verdictFuncs[obj.Pkg().Path()]
	if !ok || !names[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

func checkSolverCall(pass *Pass, info *types.Info, par map[ast.Node]ast.Node, call *ast.CallExpr, name string) {
	// Climb past parentheses to the node that consumes the call value.
	parent := par[ast.Node(call)]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = par[ast.Node(p)]
	}
	switch stmt := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s discarded: its Status/Verdict reports whether the search completed", name)
		return
	case *ast.AssignStmt:
		// res, err := solver(...) — the call must be the sole RHS.
		if len(stmt.Rhs) != 1 || removeParens(stmt.Rhs[0]) != ast.Expr(call) || len(stmt.Lhs) != 2 {
			return // call feeds a larger expression: escapes, fine
		}
		checkResultVar(pass, info, par, call, stmt.Lhs[0], stmt.Lhs[1], name)
	case *ast.ValueSpec:
		if len(stmt.Values) != 1 || len(stmt.Names) != 2 {
			return
		}
		checkResultVar(pass, info, par, call, stmt.Names[0], stmt.Names[1], name)
	default:
		// Return statement, call argument, composite literal, …: the
		// result escapes to a consumer; conservatively fine.
	}
}

func removeParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// checkResultVar inspects how the (result, error) pair bound from the
// solver call is used inside the enclosing function.
func checkResultVar(pass *Pass, info *types.Info, par map[ast.Node]ast.Node, call *ast.CallExpr, lhs, errLHS ast.Expr, name string) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return // stored through a selector/index: escapes, fine
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "result of %s assigned to _: its Status/Verdict reports whether the search completed", name)
		return
	}
	// A named error binding is necessarily used (or the package would not
	// compile), and the solvers return a non-nil error exactly when the
	// result is partial — checking err is consulting the status. The
	// strict Status/Verdict requirement bites when err is discarded.
	if errID, ok := errLHS.(*ast.Ident); ok && errID.Name != "_" {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id] // plain = assignment to an existing variable
	}
	if obj == nil {
		return
	}
	fd := enclosingFuncDecl(par, call)
	if fd == nil || fd.Body == nil {
		return
	}
	consulted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if consulted {
			return false
		}
		use, ok := n.(*ast.Ident)
		if !ok || use == id || info.Uses[use] != obj {
			return true
		}
		sel, ok := par[ast.Node(use)].(*ast.SelectorExpr)
		if ok && sel.X == ast.Expr(use) {
			if consultedFields[sel.Sel.Name] {
				consulted = true
			}
			return true // other field reads alone do not consult
		}
		// Any non-selector use — passed as an argument, returned,
		// stored, compared against nil — hands the result to code we
		// do not see; count it as consulted.
		consulted = true
		return false
	})
	if !consulted {
		pass.Reportf(call.Pos(), "Status/Verdict of %s result %s never consulted and its error is discarded: a partial search answers neither yes nor no", name, id.Name)
	}
}
