package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineCheck requires every goroutine launched by library code to
// carry a termination witness — syntactic evidence that it stops. The
// PR-4 engine leaked result-sender goroutines for exactly the lack of
// one: a worker blocked on an unbuffered send with nobody left to
// receive lives until process exit, pinning its whole closed-set. The
// accepted witnesses, any one of which suffices in the goroutine body:
//
//   - a sync.WaitGroup.Done call (the body is join-tracked);
//   - a select or receive involving ctx.Done() or a channel whose name
//     says stop/done/quit (the body is cancellable);
//   - ranging over a channel (the body drains until close).
//
// The body is the go statement's function literal, or the declaration
// of the named function it calls, resolved through the facts layer —
// so `go e.worker(i)` is checked against the worker's declaration in
// whatever package declares it. Dynamically dispatched launches
// (interface methods, function values) have no resolvable body and are
// findings themselves: if the launch is dynamic, the witness cannot be
// audited. Package main and _test.go files are exempt — both have
// process- or test-bounded lifetimes enforced from outside.
var GoroutineCheck = &Analyzer{
	Name: "goroutinecheck",
	Doc: "every go statement in library code needs a termination " +
		"witness: WaitGroup.Done, a ctx.Done()/stop-channel select or " +
		"receive, or a channel-range drain in the goroutine body",
	Run: runGoroutineCheck,
}

func runGoroutineCheck(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs)
			return true
		})
	}
	return nil
}

// checkGoStmt resolves the goroutine body and looks for a witness.
func checkGoStmt(pass *Pass, gs *ast.GoStmt) {
	body, bodyInfo := goroutineBody(pass, gs)
	if body == nil {
		pass.Reportf(gs.Pos(), "go statement launches a dynamically resolved function: its termination cannot be audited, launch a literal or named function instead")
		return
	}
	if hasTerminationWitness(bodyInfo, body) {
		return
	}
	pass.Reportf(gs.Pos(), "go statement has no termination witness (WaitGroup.Done, ctx.Done()/stop-channel select, or channel-range drain) in the goroutine body")
}

// goroutineBody returns the launched body and the types.Info it was
// checked under: the literal's body for `go func(){...}()`, the
// declaration's body (possibly in another package) for `go f(...)`.
func goroutineBody(pass *Pass, gs *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, pass.Pkg.Info
	}
	fn := calleeFunc(pass.Pkg.Info, gs.Call)
	if fn == nil {
		return nil, nil
	}
	fact := pass.Facts.Funcs[fn.FullName()]
	if fact == nil || fact.Decl.Body == nil {
		return nil, nil
	}
	return fact.Decl.Body, fact.Pkg.Info
}

// hasTerminationWitness scans a goroutine body for any accepted witness.
func hasTerminationWitness(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "(*sync.WaitGroup).Done" {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isStopChannel(info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isStopChannel reports whether e is a cancellation-shaped channel
// expression: a ctx.Done()-style call or a channel whose rendered name
// contains stop, done, quit or cancel.
func isStopChannel(info *types.Info, e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true // ctx.Done() or equivalent
		}
		return false
	}
	name := strings.ToLower(exprPath(e))
	for _, w := range []string{"stop", "done", "quit", "cancel"} {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}
