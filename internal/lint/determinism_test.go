package lint

import (
	"bytes"
	"testing"
)

// The lint gate's output feeds diffs, golden files and CI logs, so it
// must be byte-identical run to run — independent of package load
// order, map iteration inside the analyzers, and the interleaving of
// per-package and module-wide passes.

// runSuiteText lints the given packages and renders the text report.
func runSuiteText(t *testing.T, pkgs []*Package) string {
	t.Helper()
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, diags, ""); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

// TestOutputDeterministic runs the full suite over a finding-rich
// package set in forward, reversed, and rotated order, twice each: all
// six reports must be byte-identical.
func TestOutputDeterministic(t *testing.T) {
	names := []string{"atomicfield", "lockguard", "poolcheck", "goroutinecheck", "detcheck", "errcmp"}
	var pkgs []*Package
	for _, n := range names {
		pkgs = append(pkgs, loadTestdata(t, n))
	}

	reversed := make([]*Package, len(pkgs))
	for i, p := range pkgs {
		reversed[len(pkgs)-1-i] = p
	}
	rotated := append(append([]*Package{}, pkgs[2:]...), pkgs[:2]...)

	ref := runSuiteText(t, pkgs)
	if ref == "" {
		t.Fatal("expected findings from the testdata packages, got a clean report")
	}
	for i, order := range [][]*Package{pkgs, reversed, rotated} {
		for round := 0; round < 2; round++ {
			if got := runSuiteText(t, order); got != ref {
				t.Errorf("order %d round %d: output differs from reference\n--- ref ---\n%s--- got ---\n%s", i, round, ref, got)
			}
		}
	}
}
