package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked compilation unit: the directory's
// library files plus its in-package _test.go files (external foo_test
// packages become a second Package with path suffixed "_test").
type Package struct {
	Path  string // import path, e.g. "repro/internal/opt"
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module. Module-local
// imports resolve recursively through the loader itself; standard-library
// imports resolve through the stdlib source importer, so the whole
// pipeline needs nothing but GOROOT sources — no build cache, no export
// data, no third-party loader.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	std     types.ImporterFrom
	pkgs    map[string]*Package // library units (what importers see), by import path
	apkgs   map[string]*Package // analysis units (library + in-package tests)
	parsed  map[string]*dirFiles
	loading map[string]bool // cycle detection
}

// dirFiles caches one directory's parse, split into the library unit,
// in-package test files, and external-test-package files.
type dirFiles struct {
	lib, inTest, extTest []*ast.File
}

// NewLoader returns a loader rooted at the module containing dir (the
// nearest ancestor with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		apkgs:      make(map[string]*Package),
		parsed:     make(map[string]*dirFiles),
		loading:    make(map[string]bool),
	}, nil
}

// findModuleRoot walks up from dir to the nearest directory with go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves one package pattern: "./..." (every package under the
// module root, skipping testdata), "dir/..." (every package under dir),
// or a single directory path. Directories without Go files are skipped
// silently in wildcard mode and rejected in single-directory mode.
func (l *Loader) Load(pattern string) ([]*Package, error) {
	switch {
	case pattern == "./..." || pattern == "...":
		return l.loadTree(l.ModuleRoot)
	case strings.HasSuffix(pattern, "/..."):
		return l.loadTree(strings.TrimSuffix(pattern, "/..."))
	default:
		pkg, err := l.LoadDir(pattern, "")
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	}
}

// loadTree loads every package in the directory tree rooted at dir.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped, matching the go tool's package-walking rules.
func (l *Loader) loadTree(dir string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		pkg, err := l.LoadDir(path, "")
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDir parses and type-checks the package in dir for analysis: the
// library files plus in-package _test.go files in one unit, so analyzers
// see test code too. importPath overrides the computed path (used for
// testdata packages that live outside the module's package tree); pass
// "" to derive it from the module root.
//
// Importers of the package never see this unit — they resolve against
// the library-only unit (libUnit), matching go's semantics where test
// files exist only at the root of their own test binary. That split is
// what keeps mutually test-importing packages (opt's tests import
// hardness, hardness's tests import opt) from looking like a cycle.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		importPath, err = l.importPathFor(abs)
		if err != nil {
			return nil, err
		}
	}
	if pkg, ok := l.apkgs[importPath]; ok {
		return pkg, nil
	}
	// Establish the library unit first: it validates the imports and is
	// what any dependent package (including our own test files' imports,
	// transitively) will resolve against.
	libPkg, err := l.libUnit(abs, importPath)
	if err != nil {
		return nil, err
	}
	df, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	// External foo_test files would need a third unit importing this
	// one. The repo keeps all tests in-package, so external test
	// packages are rejected loudly rather than silently skipped.
	if len(df.extTest) > 0 {
		return nil, fmt.Errorf("lint: %s has an external _test package (unsupported)", dir)
	}
	pkg := libPkg
	if len(df.inTest) > 0 {
		files := append(append([]*ast.File{}, df.lib...), df.inTest...)
		pkg, err = l.check(importPath, abs, files)
		if err != nil {
			return nil, err
		}
	}
	l.apkgs[importPath] = pkg
	return pkg, nil
}

// libUnit type-checks the library (non-test) files of the package in
// abs, memoized by import path. This is the unit importers resolve to.
func (l *Loader) libUnit(abs, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	df, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(df.lib) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", abs)
	}
	pkg, err := l.check(importPath, abs, df.lib)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// check runs the type checker over one unit of files.
func (l *Loader) check(importPath, abs string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: &loaderImporter{l: l}}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses every .go file in dir (cached), splitting the library
// unit from in-package test files and external-test-package files.
func (l *Loader) parseDir(dir string) (*dirFiles, error) {
	if df, ok := l.parsed[dir]; ok {
		return df, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	df := &dirFiles{}
	for _, n := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasSuffix(file.Name.Name, "_test"):
			df.extTest = append(df.extTest, file)
		case strings.HasSuffix(n, "_test.go"):
			df.inTest = append(df.inTest, file)
		default:
			df.lib = append(df.lib, file)
		}
	}
	l.parsed[dir] = df
	return df, nil
}

// loaderImporter adapts the loader to go/types: module-local paths
// recurse into LoadDir, everything else falls through to the stdlib
// source importer.
type loaderImporter struct {
	l *Loader
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := li.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		abs, err := filepath.Abs(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		pkg, err := l.libUnit(abs, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
