package lint

import (
	"go/token"
	"sort"
)

// AtomicField enforces the all-or-nothing rule of sync/atomic: a struct
// field that is accessed atomically anywhere in the module must be
// accessed atomically at every site. The async engine's quiescence
// protocol (busy/inflight/activity/doneFlag) and the shared
// incumbent/budget/stop words are exactly such fields — one plain read
// slipped in by a refactor is a data race the type system cannot see
// and -race only catches on the schedules it happens to run.
//
// Exemptions, both deliberate:
//
//   - Composite-literal keys (`&engine{incumbent: math.MaxInt64}`):
//     construction precedes publication, so keyed initialization is not
//     an access site at all.
//   - Sites in _test.go files: tests legitimately inspect quiescent
//     state after the goroutines they launched have been joined.
//
// The check is module-wide (RunModule): the atomic sites may live in a
// different package than the plain ones, which is precisely why the
// per-package analyzers could never express it.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be " +
		"accessed atomically at every site, module-wide; plain " +
		"reads/writes of such fields are findings",
	RunModule: runAtomicField,
}

func runAtomicField(mp *ModulePass) error {
	facts := mp.Facts
	keys := make([]int, 0, len(facts.Fields))
	for pos := range facts.Fields {
		keys = append(keys, int(pos))
	}
	sort.Ints(keys)
	for _, pos := range keys {
		ff := facts.Fields[token.Pos(pos)]
		if ff.Atomic == 0 {
			continue
		}
		for _, site := range ff.Sites {
			if site.Kind == AccessAtomic || site.Test {
				continue
			}
			verb := "read"
			if site.Kind == AccessWrite {
				verb = "write"
			}
			mp.Reportf(site.Pkg, site.Pos,
				"plain %s of %s, which is accessed with sync/atomic elsewhere: every access must be atomic",
				verb, ff.Name)
		}
	}
	return nil
}
