// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the stdlib go/ast, go/parser and go/types
// stack (the repo is dependency-free, so x/tools is off the table).
//
// The framework mirrors the shape of go/analysis at a fraction of its
// surface: an Analyzer is a named check with a Run function, a Pass gives
// it one type-checked package plus a Reportf sink, and Run drives a suite
// of analyzers over a set of packages, applies `//lint:ignore` pragma
// suppression, and returns position-sorted diagnostics.
//
// The analyzers in this package encode invariants of this codebase that
// the compiler cannot check — the anytime-search contracts threaded
// through internal/opt, internal/sched and internal/exp (contexts
// propagated, sentinel errors matched with errors.Is, three-valued
// Verdicts consulted, panics confined to documented programmer-error
// paths) and the allocation-free discipline of the packed-state search
// core (functions marked `//mpp:hotpath` may not allocate). cmd/mpplint
// is the command-line driver; scripts/verify.sh runs it as a gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named static check. Exactly one of Run and
// RunModule is set: Run inspects one package at a time (with the merged
// facts available for cross-package lookups), RunModule runs once over
// the whole loaded package set — the shape for invariants that only
// exist module-wide, like atomicfield's "atomic somewhere means atomic
// everywhere" and detcheck's call-graph reachability.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore pragmas.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
	// RunModule inspects the whole package set via the merged facts.
	RunModule func(*ModulePass) error
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass connects one analyzer run to one package. Facts carries the
// whole-program fact set (pass 1) so package-local analyzers can
// resolve cross-package references (e.g. goroutinecheck following a
// `go pkg.Worker()` call into its declaring package).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Facts    *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// A ModulePass connects one module-wide analyzer run to the whole
// loaded package set.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Facts    *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos, resolved through the package the
// site belongs to (all packages of one loader share a FileSet, but the
// site's package keeps the attribution explicit).
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in registration (alphabetical) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicField, CtxThread, DetCheck, ErrCmp, GoroutineCheck,
		HotAlloc, LockGuard, PanicCheck, PoolCheck, VerdictCheck,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes every analyzer over every package — pass 1 collects the
// whole-program facts, pass 2 runs package-local analyzers per package
// and module-wide analyzers once — filters the findings through
// `//lint:ignore` pragmas, and returns them sorted by (file, line, col,
// analyzer, message). Malformed or unknown-analyzer pragmas are
// themselves reported under the reserved analyzer name "pragma".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := CollectFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Facts: facts, diags: &diags}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("lint: %s (module-wide): %w", a.Name, err)
		}
	}
	var pragmas []pragma
	var bad []Diagnostic
	for _, pkg := range pkgs {
		p, b := collectPragmas(pkg, analyzers)
		pragmas = append(pragmas, p...)
		bad = append(bad, b...)
	}
	diags = append(filterSuppressed(diags, pragmas), bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// parents maps every AST node in a file to its parent, so analyzers can
// climb from an expression to its enclosing statement or declaration.
// go/ast offers only downward traversal; this is the upward index.
func parents(file *ast.File) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}

// enclosingFuncDecl climbs the parent index to the function declaration
// containing n, or nil at file scope.
func enclosingFuncDecl(par map[ast.Node]ast.Node, n ast.Node) *ast.FuncDecl {
	for n != nil {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd
		}
		n = par[n]
	}
	return nil
}
