package lint

// The whole-program facts layer. The original five analyzers are
// package-local: each invariant is visible inside one type-checked
// unit. The concurrency and determinism invariants of the parallel
// solver stack are not — whether a struct field must be accessed
// atomically depends on every access site in the module, and whether a
// function is transitively reachable from a deterministic-engine entry
// point depends on the module's call graph. So Run now works in two
// passes: pass 1 (CollectFacts) walks every loaded package once and
// records per-package facts into one merged Facts value; pass 2 runs
// the analyzers, with the module-wide analyzers (RunModule) consuming
// the merged facts and the package-local ones (Run) free to consult
// them too.
//
// Facts recorded:
//
//   - Field access sites: every selector access to a struct field,
//     classified as atomic (the `&x.f` argument of a sync/atomic call),
//     plain read, or plain write. Composite-literal keys are deliberately
//     not access sites: construction precedes publication, so
//     `&engine{incumbent: ...}` style initialization is exempt.
//   - Field annotations: `mpp:guardedby <mu>` on a struct field names
//     the sibling mutex that must be held around every access.
//   - The static call graph: one node per function declaration (keyed
//     by types.Func.FullName, which is stable across the library-unit /
//     analysis-unit split), edges for every statically resolvable call.
//     Interface dispatch and calls through function values are not
//     resolvable and produce no edge — a documented soundness limit.
//   - Determinism violations per function (map ranges, time.Now,
//     math/rand calls, multi-receive selects) and `//mpp:deterministic`
//     root markers, consumed by detcheck's reachability pass.
//
// Identity across type-checking units: the loader parses each file
// exactly once (parseDir memoizes), so the library unit and the
// library+test analysis unit share ast.File pointers and token.Pos
// values. Field objects are therefore keyed by declaration position and
// functions by FullName — both stable however a reference resolves.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Directives recognized by the facts layer (a space after `//` is
// tolerated; `//mpp:hotpath` keeps its exact-match rule in hotalloc).
const (
	detRootDirective = "mpp:deterministic"
	guardedDirective = "mpp:guardedby"
	lockedDirective  = "mpp:locked"
)

// directiveArgs scans a comment group for `//mpp:<name>` (or
// `// mpp:<name>`) and returns its argument string.
func directiveArgs(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == name {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, name+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// AccessKind classifies one field access site.
type AccessKind uint8

const (
	// AccessRead is a plain (non-atomic) read of the field.
	AccessRead AccessKind = iota
	// AccessWrite is a plain write: assignment target, IncDec, or the
	// operand of a non-atomic address-of.
	AccessWrite
	// AccessAtomic is an access through a sync/atomic call taking &x.f.
	AccessAtomic
)

// FieldSite is one recorded access to a struct field.
type FieldSite struct {
	Pkg  *Package
	Pos  token.Pos
	Kind AccessKind
	Test bool // site lies in a _test.go file
}

// FieldFact aggregates everything known about one struct field,
// module-wide. Keyed by the field identifier's declaration position.
type FieldFact struct {
	Name      string // "struct.field" for messages
	DeclPkg   *Package
	DeclPos   token.Pos
	GuardedBy string // mutex field name from mpp:guardedby, "" if none
	// GuardKnown reports whether GuardedBy names a sibling field of a
	// sync mutex type; lockguard reports annotations where it is false.
	GuardKnown bool
	Atomic     int // number of AccessAtomic sites
	Sites      []FieldSite
}

// DetViolation is one determinism hazard inside a function body.
type DetViolation struct {
	Pos token.Pos
	Msg string // e.g. "ranges over a map", "calls time.Now"
}

// FuncFact is one call-graph node: a function declaration with its
// statically resolved callees and its determinism hazards.
type FuncFact struct {
	Key     string // types.Func.FullName()
	Display string // short human name, e.g. "(*engine).runInline"
	Pkg     *Package
	Decl    *ast.FuncDecl
	DetRoot bool // carries //mpp:deterministic
	Callees []string
	Det     []DetViolation
}

// Facts is the merged whole-program fact set for one Run invocation.
type Facts struct {
	Fields map[token.Pos]*FieldFact
	Funcs  map[string]*FuncFact
}

// CollectFacts runs pass 1 over every package.
func CollectFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Fields: make(map[token.Pos]*FieldFact),
		Funcs:  make(map[string]*FuncFact),
	}
	for _, pkg := range pkgs {
		f.collectStructs(pkg)
	}
	for _, pkg := range pkgs {
		f.collectAccesses(pkg)
		f.collectFuncs(pkg)
	}
	return f
}

// collectStructs registers every field of every named struct type, with
// its mpp:guardedby annotation when present.
func (f *Facts) collectStructs(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := mutexFieldNames(pkg.Info, st)
			for _, field := range st.Fields.List {
				guard, hasGuard := directiveArgs(field.Doc, guardedDirective)
				if !hasGuard {
					guard, hasGuard = directiveArgs(field.Comment, guardedDirective)
				}
				for _, name := range field.Names {
					ff := f.fieldAt(name.Pos())
					ff.Name = ts.Name.Name + "." + name.Name
					ff.DeclPkg = pkg
					if hasGuard {
						ff.GuardedBy = guard
						ff.GuardKnown = mutexes[guard]
					}
				}
			}
			return true
		})
	}
}

// mutexFieldNames returns the names of st's fields whose type is a sync
// mutex (sync.Mutex or sync.RWMutex).
func mutexFieldNames(info *types.Info, st *ast.StructType) map[string]bool {
	out := make(map[string]bool)
	for _, field := range st.Fields.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isSyncMutex(t) {
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// fieldAt returns (creating if needed) the fact for the field declared
// at pos.
func (f *Facts) fieldAt(pos token.Pos) *FieldFact {
	ff, ok := f.Fields[pos]
	if !ok {
		ff = &FieldFact{DeclPos: pos}
		f.Fields[pos] = ff
	}
	return ff
}

// collectAccesses records every selector access to a struct field in
// pkg, classified atomic / read / write. Composite-literal keys never
// appear as selectors, so initialization is exempt by construction.
func (f *Facts) collectAccesses(pkg *Package) {
	info := pkg.Info
	for _, file := range pkg.Files {
		inTest := strings.HasSuffix(pkg.Fset.Position(file.Pos()).Filename, "_test.go")
		par := parents(file)
		atomicSel := atomicArgSelectors(info, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !obj.IsField() {
				return true
			}
			ff := f.fieldAt(obj.Pos())
			if ff.Name == "" {
				ff.Name = obj.Name() // field of an unregistered (e.g. external) struct
			}
			kind := AccessRead
			switch {
			case atomicSel[sel]:
				kind = AccessAtomic
				ff.Atomic++
			case isWriteTarget(par, sel):
				kind = AccessWrite
			}
			ff.Sites = append(ff.Sites, FieldSite{Pkg: pkg, Pos: sel.Sel.Pos(), Kind: kind, Test: inTest})
			return true
		})
	}
}

// atomicArgSelectors finds every SelectorExpr appearing as `&x.f` inside
// a call to a sync/atomic function — those accesses are atomic.
func atomicArgSelectors(info *types.Info, file *ast.File) map[*ast.SelectorExpr]bool {
	marked := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if sel, ok := un.X.(*ast.SelectorExpr); ok {
				marked[sel] = true
			}
		}
		return true
	})
	return marked
}

// isAtomicCall reports whether call invokes a function of sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isWriteTarget reports whether sel is written: the target of an
// assignment or IncDec, or the operand of a (non-atomic) address-of —
// once the address escapes, any write through it is out of sight, so
// taking it counts as one.
func isWriteTarget(par map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := par[sel].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == ast.Expr(sel)
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// collectFuncs records one call-graph node per function declaration.
func (f *Facts) collectFuncs(pkg *Package) {
	info := pkg.Info
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			_, isRoot := directiveArgs(fd.Doc, detRootDirective)
			fact := &FuncFact{
				Key:     fn.FullName(),
				Display: funcDisplayName(fd),
				Pkg:     pkg,
				Decl:    fd,
				DetRoot: isRoot,
			}
			collectBody(info, fd.Body, fact)
			f.Funcs[fact.Key] = fact
		}
	}
}

// collectBody walks one function body for call edges and determinism
// hazards. Function literals nested in the body are attributed to the
// enclosing declaration: a violation inside a worker closure is the
// spawner's violation.
func collectBody(info *types.Info, body *ast.BlockStmt, fact *FuncFact) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if v := bannedCall(fn); v != "" {
				fact.Det = append(fact.Det, DetViolation{Pos: n.Pos(), Msg: "calls " + v})
				return true
			}
			fact.Callees = append(fact.Callees, fn.FullName())
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					fact.Det = append(fact.Det, DetViolation{Pos: n.Pos(), Msg: "ranges over a map"})
				}
			}
		case *ast.SelectStmt:
			if c := resultCarryingCases(n); c >= 2 {
				fact.Det = append(fact.Det, DetViolation{
					Pos: n.Pos(),
					Msg: "selects over " + itoa(c) + " result-carrying channels",
				})
			}
		}
		return true
	})
}

// calleeFunc statically resolves a call's target function, or nil for
// dynamic calls (function values, interface methods resolve to the
// interface's method object, which has no body in the graph and simply
// dangles — a documented limitation).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// bannedCall names the determinism hazard a stdlib callee represents,
// or "" for harmless calls.
func bannedCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if fn.Name() == "Now" {
			return "time.Now"
		}
	case "math/rand", "math/rand/v2":
		return pkg.Path() + "." + fn.Name()
	}
	return ""
}

// resultCarryingCases counts select cases that receive a value into a
// variable — the scheduling-dependent kind. Pure synchronization
// receives (`<-done`) and sends do not count.
func resultCarryingCases(sel *ast.SelectStmt) int {
	n := 0
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if un, ok := as.Rhs[0].(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				n++
			}
		}
	}
	return n
}

// funcDisplayName renders a short human-readable name for a function
// declaration: "name" or "(recv).name".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var buf bytes.Buffer
	buf.WriteByte('(')
	printer.Fprint(&buf, token.NewFileSet(), fd.Recv.List[0].Type)
	buf.WriteString(").")
	buf.WriteString(fd.Name.Name)
	return buf.String()
}

// exprPath renders a selector/identifier chain ("e", "s.eng") for
// matching guarded-field roots against mutex lock receivers. Any other
// expression shape yields "", which never matches — conservative.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	}
	return ""
}

// itoa is strconv.Itoa for tiny non-negative ints, avoiding an import
// for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
