package lint

import "sort"

// DetCheck guards the deterministic engine's core promise: byte-
// identical Results for any worker count. That promise dies quietly —
// a map iteration feeding the result order, a time.Now sneaking into a
// tie-break, a select racing two result channels — so every function
// transitively reachable from a `//mpp:deterministic` root (the wave
// engine's entry points) is checked for the three hazards:
//
//   - ranging over a map (iteration order is randomized; iterate
//     sorted keys instead);
//   - calling time.Now or anything in math/rand (wall clock and
//     randomness are not functions of the instance);
//   - selecting over two or more result-carrying channels (which
//     result arrives first is the scheduler's choice; pure
//     synchronization receives like `<-done` are exempt).
//
// Reachability runs over the facts layer's static call graph. Dynamic
// calls — interface methods (the solver's hashtab.Index), function
// values, closures called through variables — produce no edge, so code
// behind them must be annotated as its own root if it matters; this is
// the documented soundness limit of a stdlib-only call graph.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc: "functions reachable from //mpp:deterministic roots may not " +
		"range over maps, call time.Now/math/rand, or select over " +
		"multiple result-carrying channels",
	RunModule: runDetCheck,
}

func runDetCheck(mp *ModulePass) error {
	facts := mp.Facts
	var roots []string
	for key, fn := range facts.Funcs {
		if fn.DetRoot {
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)

	// BFS from the roots in sorted order; the first root to discover a
	// function owns the attribution, which keeps messages stable.
	rootOf := make(map[string]string)
	var order []string
	for _, root := range roots {
		if _, seen := rootOf[root]; seen {
			continue
		}
		queue := []string{root}
		rootOf[root] = root
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			order = append(order, key)
			fn := facts.Funcs[key]
			if fn == nil {
				continue // dangling edge: dynamic or out-of-set callee
			}
			for _, callee := range fn.Callees {
				if _, seen := rootOf[callee]; !seen {
					rootOf[callee] = rootOf[root]
					queue = append(queue, callee)
				}
			}
		}
	}

	for _, key := range order {
		fn := facts.Funcs[key]
		if fn == nil {
			continue
		}
		rootFn := facts.Funcs[rootOf[key]]
		for _, v := range fn.Det {
			mp.Reportf(fn.Pkg, v.Pos,
				"%s in deterministic code (%s is reachable from //mpp:deterministic root %s)",
				v.Msg, fn.Display, rootFn.Display)
		}
	}
	return nil
}
