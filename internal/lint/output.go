package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// JSONDiagnostic is the stable machine-readable form of a finding, one
// object per diagnostic. File paths are emitted relative to the given
// root so output does not depend on where the checkout lives.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// ToJSON converts diagnostics to their wire form, relativizing file
// paths against root (pass "" to keep them as-is).
func ToJSON(diags []Diagnostic, root string) []JSONDiagnostic {
	out := make([]JSONDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
	}
	return out
}

// WriteJSON emits the diagnostics as a JSON array (always an array, "[]"
// when clean, so consumers never need a null check).
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(diags, root))
}

// WriteText emits one file:line:col: analyzer: message line per finding.
func WriteText(w io.Writer, diags []Diagnostic, root string) error {
	for _, d := range diags {
		_, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if err != nil {
			return err
		}
	}
	return nil
}

func relPath(root, path string) string {
	if root == "" {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || filepath.IsAbs(rel) {
		return path
	}
	return filepath.ToSlash(rel)
}
