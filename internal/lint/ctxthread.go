package lint

import (
	"go/ast"
	"go/types"
)

// CtxThread enforces the anytime-search context contract introduced in
// the deadline-aware rework of the solvers:
//
//  1. Library code (any non-main package, non-test file) must not mint
//     fresh contexts with context.Background() or context.TODO() — a
//     root context belongs to the caller (cmd/ binaries, examples,
//     tests). Deliberate convenience wrappers document themselves with
//     a //lint:ignore pragma.
//  2. A function that accepts a context.Context parameter must actually
//     use it (propagate it to callees or poll it); a dropped context
//     silently severs cancellation for everything downstream.
var CtxThread = &Analyzer{
	Name: "ctxthread",
	Doc: "context.Context must be propagated, not re-rooted: no " +
		"context.Background()/TODO() in library packages, and declared " +
		"ctx parameters must be used",
	Run: runCtxThread,
}

func runCtxThread(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil // binaries own their root context
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue // tests are entry points; fresh contexts are fine
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := contextRootCall(info, n); ok {
					pass.Reportf(n.Pos(), "context.%s() in library code: accept and propagate a caller context instead", name)
				}
			case *ast.FuncDecl:
				checkCtxParamUsed(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// contextRootCall reports whether call is context.Background() or
// context.TODO(), resolved through the type checker (an unrelated
// package named context does not count).
func contextRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if name := obj.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// checkCtxParamUsed flags context.Context parameters that the function
// body never references. Bodyless declarations (assembly stubs,
// interface methods) are exempt.
func checkCtxParamUsed(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "unnamed context.Context parameter in %s cannot be propagated", fd.Name.Name)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(), "context.Context parameter in %s is dropped (named _)", fd.Name.Name)
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if !identUsed(info, fd.Body, obj) {
				pass.Reportf(name.Pos(), "context.Context parameter %s in %s is never used: propagate it or poll it", name.Name, fd.Name.Name)
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// identUsed reports whether any identifier under root resolves to obj.
func identUsed(info *types.Info, root ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(root, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
