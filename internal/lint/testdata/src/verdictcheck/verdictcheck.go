// Package verdicttest seeds verdictcheck violations: solver results
// discarded or used without consulting Status/Verdict or the paired
// error.
package verdicttest

import (
	"repro/internal/dag"
	"repro/internal/opt"
	"repro/internal/pebble"
)

// Discarded drops the solver result on the floor.
func Discarded(in *pebble.Instance) {
	opt.Exact(in, 10) // want "verdictcheck: result of Exact discarded"
}

// Blank binds the result to the blank identifier.
func Blank(g *dag.Graph) error {
	_, err := opt.ZeroIO(g, 2, 10) // want "verdictcheck: result of ZeroIO assigned to _"
	return err
}

// CostOnly reads Cost off a possibly-partial result and drops the error.
func CostOnly(in *pebble.Instance) int64 {
	res, _ := opt.Exact(in, 10) // want "verdictcheck: Status/Verdict of Exact result res never consulted"
	return res.Cost
}

// FeasibleOnly trusts Feasible without checking the Verdict.
func FeasibleOnly(g *dag.Graph) bool {
	res, _ := opt.ZeroIO(g, 2, 10) // want "verdictcheck: Status/Verdict of ZeroIO result res never consulted"
	return res.Feasible
}

// StatusRead consults Status; no finding.
func StatusRead(in *pebble.Instance) int64 {
	res, _ := opt.Exact(in, 10)
	if res.Status != opt.StatusComplete {
		return -1
	}
	return res.Cost
}

// VerdictRead consults Verdict; no finding.
func VerdictRead(g *dag.Graph) bool {
	res, _ := opt.ZeroIO(g, 2, 10)
	return res.Verdict == opt.VerdictFeasible
}

// ErrChecked relies on the paired error, which is non-nil exactly when
// the result is partial; no finding.
func ErrChecked(in *pebble.Instance) (int64, error) {
	res, err := opt.Exact(in, 10)
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

// Escapes hands the result to a consumer we cannot see; no finding.
func Escapes(in *pebble.Instance) *opt.Result {
	res, _ := opt.Exact(in, 10)
	return res
}
