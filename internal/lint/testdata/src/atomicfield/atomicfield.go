// Package atomictest seeds atomicfield violations: struct fields
// accessed with sync/atomic at one site and plainly at another.
package atomictest

import "sync/atomic"

// counter mixes access disciplines: n and ops are atomic fields, cold
// is plain-only.
type counter struct {
	n    int64
	ops  int64
	cold int64
}

// Bump accesses n and ops atomically — the sites that make them atomic
// fields module-wide.
func (c *counter) Bump() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.ops, 1)
}

// Read reads n plainly: a data race against Bump.
func (c *counter) Read() int64 {
	return c.n // want "atomicfield: plain read of counter.n"
}

// Reset writes n plainly while keeping ops atomic.
func (c *counter) Reset() {
	c.n = 0 // want "atomicfield: plain write of counter.n"
	atomic.StoreInt64(&c.ops, 0)
}

// Cold only ever touches cold plainly: no finding.
func (c *counter) Cold() int64 {
	c.cold++
	return c.cold
}

// NewCounter initializes by keyed composite literal: construction
// precedes publication, so this is not an access site.
func NewCounter() *counter {
	return &counter{n: 0, ops: 0, cold: 0}
}
