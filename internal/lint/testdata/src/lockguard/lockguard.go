// Package locktest seeds lockguard violations around mpp:guardedby
// fields: unguarded accesses, escaped critical sections, leaked locks
// and a bad annotation.
package locktest

import "sync"

// store guards items and count with mu; the name annotation is broken
// on purpose (label is not a mutex field).
type store struct {
	mu    sync.Mutex
	items []int // mpp:guardedby mu
	count int   // mpp:guardedby mu
	// mpp:guardedby label
	name  string // want "lockguard: mpp:guardedby on store.name names \"label\""
	label string
}

// Unlocked reads items without the mutex.
func (s *store) Unlocked() int {
	return len(s.items) // want "lockguard: store.items \\(mpp:guardedby mu\\) accessed without s.mu held"
}

// Locked is correct: deferred Unlock covers the whole body.
func (s *store) Locked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Sequential is correct: positional Lock/Unlock bracket the accesses.
func (s *store) Sequential(v int) {
	s.mu.Lock()
	s.items = append(s.items, v)
	s.count++
	s.mu.Unlock()
}

// EarlyReturn escapes the critical section with the lock still held.
func (s *store) EarlyReturn(v int) bool {
	s.mu.Lock()
	if v < 0 {
		return false // want "lockguard: return with s.mu held"
	}
	s.items = append(s.items, v)
	s.mu.Unlock()
	return true
}

// Leak takes the lock and never releases it.
func (s *store) Leak(v int) {
	s.mu.Lock() // want "lockguard: s.mu.Lock\\(\\) in Leak has no matching Unlock"
	s.items = append(s.items, v)
}

// Stale reads count again after the release.
func (s *store) Stale() int {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	return n + s.count // want "lockguard: store.count \\(mpp:guardedby mu\\) accessed without s.mu held"
}

// grow is documented as called with mu held: accesses inside are clean.
//
//mpp:locked mu
func (s *store) grow(v int) {
	s.items = append(s.items, v)
	s.count++
}

// Grow is the locked entry point pairing with grow.
func (s *store) Grow(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(v)
}

// NewStore initializes by keyed composite literal: exempt.
func NewStore() *store {
	return &store{items: nil, count: 0}
}
