// Package ctxtest seeds ctxthread violations: re-rooted contexts in
// library code and context parameters that are never propagated.
package ctxtest

import "context"

// Bad mints a fresh root context inside library code.
func Bad() error {
	ctx := context.Background() // want "ctxthread: context.Background\\(\\) in library code"
	return work(ctx)
}

// BadTODO reaches for context.TODO instead.
func BadTODO() error {
	return work(context.TODO()) // want "ctxthread: context.TODO\\(\\) in library code"
}

// Dropped declares a context it never touches.
func Dropped(ctx context.Context, n int) int { // want "ctxthread: context.Context parameter ctx in Dropped is never used"
	return n + 1
}

// Blank discards the context by naming it _.
func Blank(_ context.Context, n int) int { // want "ctxthread: context.Context parameter in Blank is dropped"
	return n
}

// Unnamed cannot propagate a parameter it cannot name.
func Unnamed(context.Context) {} // want "ctxthread: unnamed context.Context parameter in Unnamed"

// Good propagates its context; no finding.
func Good(ctx context.Context) error {
	return work(ctx)
}

// Polled uses the context directly; no finding.
func Polled(ctx context.Context) error {
	return ctx.Err()
}

func work(ctx context.Context) error { return ctx.Err() }
