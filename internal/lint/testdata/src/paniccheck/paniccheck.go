// Package panictest seeds paniccheck violations: panics outside the
// sanctioned Must* / documented-programmer-error / _test.go homes.
package panictest

import "fmt"

// Parse should return an error for bad input, not panic.
func Parse(s string) (int, error) {
	if s == "" {
		panic("empty input") // want "paniccheck: panic in Parse"
	}
	return len(s), nil
}

// MustParse panics by contract: Must* names are the sanctioned wrapper.
func MustParse(s string) int {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// validate panics when the builder is misused — a programmer error, not
// an input error, so the panic is sanctioned by documentation.
func validate(ok bool) {
	if !ok {
		panic("misuse")
	}
}

// Deep panics inside a closure; the enclosing function is undocumented,
// so the finding attaches to it.
func Deep(run func()) {
	defer func() {
		f := func() {
			panic("closure panic") // want "paniccheck: panic in Deep"
		}
		f()
	}()
	validate(run != nil)
	run()
	_ = fmt.Sprintf("keep fmt imported")
}
