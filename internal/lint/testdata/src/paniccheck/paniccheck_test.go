package panictest

// Panics in _test.go files are exempt: no findings in this file.

func helperThatPanics() {
	panic("test helper")
}
