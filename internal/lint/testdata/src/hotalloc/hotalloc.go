// Package hottest seeds hotalloc violations inside a //mpp:hotpath
// function, alongside the sanctioned buffer-reuse patterns that must
// stay legal.
package hottest

type ring struct {
	scratch []int
	out     []int
}

// hot allocates in every way the analyzer knows about.
//
//mpp:hotpath
func (r *ring) hot(n int) int {
	tmp := make([]int, 0, n) // want "hotalloc: make in hot path hot"
	for i := 0; i < n; i++ {
		tmp = append(tmp, i) // want "hotalloc: append to function-local slice tmp in hot path hot"
	}
	p := new(int)                // want "hotalloc: new in hot path hot"
	lits := []int{1, 2, 3}       // want "hotalloc: slice literal in hot path hot"
	m := map[int]bool{n: true}   // want "hotalloc: map literal in hot path hot"
	f := func() int { return n } // want "hotalloc: closure in hot path hot"

	// Sanctioned reuse: appending to a field, and to a local that aliases
	// field storage, keeps the long-lived backing array.
	r.out = append(r.out, tmp...)
	re := r.scratch[:0]
	re = append(re, n)
	r.scratch = re
	return len(lits) + len(m) + *p + f()
}

// cold is not annotated: the same code produces no findings.
func (r *ring) cold(n int) []int {
	tmp := make([]int, 0, n)
	return append(tmp, n)
}
