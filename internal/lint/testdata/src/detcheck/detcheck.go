// Package dettest seeds detcheck violations: scheduling- and
// environment-dependent constructs reachable from a deterministic root.
package dettest

import (
	"math/rand"
	"time"
)

// Solve is the deterministic entry point; everything it reaches is
// checked.
//
//mpp:deterministic
func Solve(xs map[int]int, a, b chan int) int {
	total := 0
	for k := range xs { // want "detcheck: ranges over a map in deterministic code \\(Solve is reachable"
		total += k
	}
	return total + helper() + race(a, b)
}

// helper is one call deep: its hazards are attributed to Solve's root.
func helper() int {
	return int(time.Now().UnixNano()) + pick(3) // want "detcheck: calls time.Now in deterministic code \\(helper is reachable"
}

// pick is two calls deep: transitively reachable.
func pick(n int) int {
	return rand.Intn(n) // want "detcheck: calls math/rand.Intn in deterministic code \\(pick is reachable"
}

// race merges two result channels: which arrives first is the
// scheduler's choice.
func race(a, b chan int) int {
	select { // want "detcheck: selects over 2 result-carrying channels in deterministic code \\(race is reachable"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// free is reachable from no root: the same hazards are allowed here.
func free() int64 {
	return time.Now().Unix()
}

var _ = free
