// Package pooltest seeds poolcheck violations: sync.Pool objects
// leaked, discarded, and used after their Put.
package pooltest

import "sync"

type buffer struct {
	data []byte
}

var bufPool = sync.Pool{New: func() any { return new(buffer) }}

// Leak binds the pooled object and forgets it: never Put, never handed
// off.
func Leak() int {
	b := bufPool.Get().(*buffer) // want "poolcheck: b from Pool.Get\\(\\) is neither Put back nor handed off in Leak"
	return len(b.data)
}

// Discard drops the result on the floor without even binding it.
func Discard() {
	bufPool.Get() // want "poolcheck: result of Pool.Get\\(\\) is discarded"
}

// Stale touches the object after returning it to the pool.
func Stale() int {
	b := bufPool.Get().(*buffer)
	n := len(b.data)
	bufPool.Put(b)
	return n + len(b.data) // want "poolcheck: use of b after it was Put back to the pool"
}

// Roundtrip is correct: the deferred Put runs at exit, so every use in
// the body precedes it.
func Roundtrip() int {
	b := bufPool.Get().(*buffer)
	defer bufPool.Put(b)
	b.data = b.data[:0]
	return len(b.data)
}

// Handoff transfers ownership to the caller directly.
func Handoff() *buffer {
	return bufPool.Get().(*buffer)
}

// HandoffLocal prepares a bound local and returns it: the caller owns
// it from here.
func HandoffLocal() *buffer {
	b := bufPool.Get().(*buffer)
	b.data = b.data[:0]
	return b
}

// DropExplicit documents the drop with a blank assignment.
func DropExplicit() {
	_ = bufPool.Get()
}
