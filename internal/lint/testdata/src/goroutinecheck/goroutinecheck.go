// Package goroutinetest seeds goroutinecheck violations: goroutines
// launched in library code with no syntactic evidence they stop.
package goroutinetest

import (
	"context"
	"sync"
)

// Leaky launches a sender nothing can stop: blocked forever once the
// receiver quits.
func Leaky(ch chan int) {
	go func() { // want "goroutinecheck: go statement has no termination witness"
		for {
			ch <- 1
		}
	}()
}

// Dynamic launches through a function value: the body cannot be
// resolved, so the witness cannot be audited.
func Dynamic(f func()) {
	go f() // want "goroutinecheck: go statement launches a dynamically resolved function"
}

// Tracked is joined through a WaitGroup.
func Tracked(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 1
	}()
}

// Cancellable selects on ctx.Done alongside its sends.
func Cancellable(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ch <- 1:
			}
		}
	}()
}

// Stoppable blocks on a stop channel.
func Stoppable(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// Drainer launches a named function whose declaration carries the
// witness: a channel range drains until close.
func Drainer(in chan int) {
	go drain(in)
}

// drain consumes in until the sender closes it.
func drain(in chan int) {
	for range in {
	}
}
