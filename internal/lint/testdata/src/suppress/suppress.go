// Package suppresstest exercises //lint:ignore pragma handling: valid
// pragmas silence the named analyzer on their own line and the line
// below; malformed pragmas suppress nothing and are themselves reported
// under the reserved analyzer name "pragma". suppress_test.go asserts
// the exact diagnostic set, locating lines by the marker comments.
package suppresstest

import "errors"

var errSentinel = errors.New("fixture")

// SameLine suppresses a finding with a trailing pragma.
func SameLine(err error) bool {
	return err == errSentinel //lint:ignore errcmp fixture: identity comparison is the point here
}

// LineAbove suppresses with a pragma on the preceding line.
func LineAbove(err error) bool {
	//lint:ignore errcmp fixture: identity comparison is the point here
	return err != errSentinel
}

// MissingReason carries a pragma with no reason: nothing is suppressed
// and the pragma is reported.
func MissingReason(err error) bool {
	//lint:ignore errcmp
	return err == errSentinel // MARK:unsuppressed-missing-reason
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer(err error) bool {
	//lint:ignore nosuchcheck fixture: reason present but analyzer unknown
	return err != errSentinel // MARK:unsuppressed-unknown-analyzer
}
