// Package errcmptest seeds errcmp violations: sentinel errors compared
// with == / != and switched over, instead of errors.Is.
package errcmptest

import "errors"

// ErrSentinel plays the role of opt.ErrBudget.
var ErrSentinel = errors.New("sentinel")

// Eq compares a sentinel with ==.
func Eq(err error) bool {
	return err == ErrSentinel // want "errcmp: error compared with ==: use errors.Is"
}

// Neq compares a sentinel with !=.
func Neq(err error) bool {
	return err != ErrSentinel // want "errcmp: error compared with !=: use errors.Is"
}

// Switched hides the comparison in a switch.
func Switched(err error) int {
	switch err {
	case ErrSentinel: // want "errcmp: switch on error compares with ==: use errors.Is"
		return 1
	case nil:
		return 0
	}
	return -1
}

// NilChecks are fine; no findings.
func NilChecks(err error) bool {
	if err == nil {
		return true
	}
	return err != nil && errors.Is(err, ErrSentinel)
}
