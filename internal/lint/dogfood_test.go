package lint

import "testing"

// TestDogfoodRepoClean is the in-process equivalent of
// `go run ./cmd/mpplint ./...`: the repository's own packages must lint
// clean. A failure here means a change reintroduced a violation (or an
// analyzer grew a false positive — either way, fix it before merging).
func TestDogfoodRepoClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern walk looks broken", len(pkgs))
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("lint ./...: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s", d)
	}
}
