package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGuard enforces mutex discipline on annotated fields. A struct
// field carrying `// mpp:guardedby mu` (mu a sibling field of type
// sync.Mutex or sync.RWMutex) may only be accessed while mu is held on
// the syntactic path — a `mu.Lock()` earlier in the function with no
// intervening non-deferred `mu.Unlock()` — and every `Lock` must pair
// with an `Unlock` (deferred or positional) with no `return` escaping
// the critical section.
//
// Functions that are called with the lock already held document that
// contract with `//mpp:locked mu` on their declaration; inside them mu
// counts as held throughout. (Call sites of such functions are not
// verified — the annotation is a documented trust point, the same
// trade-off //mpp:hotpath makes by not following callees.)
//
// The analysis is syntactic and positional, not path-sensitive: a Lock
// in one branch does not cover an access in a sibling branch, and the
// cache-quiescence pattern ("all workers joined, locks unnecessary")
// needs an explicit `//lint:ignore lockguard <reason>` — which is the
// point: every lock-free access to a guarded field should carry its
// proof in writing. Composite-literal keys are exempt (construction
// precedes publication), as are sites in _test.go files (tests inspect
// quiescent state).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated mpp:guardedby mu may only be accessed with " +
		"mu held on the syntactic path; Lock must pair with Unlock on " +
		"every return path",
	Run: runLockGuard,
}

// lockEvent is one mutex operation inside a function body.
type lockEvent struct {
	path     string // rendered receiver chain, e.g. "c.mu"
	pos      token.Pos
	lock     bool // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

// mutexMethods maps the sync mutex method set to lock/unlock.
var mutexMethods = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.Mutex).Unlock":    false,
	"(*sync.RWMutex).Unlock":  false,
	"(*sync.RWMutex).RUnlock": false,
}

func runLockGuard(pass *Pass) error {
	reportBadAnnotations(pass)
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockedFunc(pass, fd)
		}
	}
	return nil
}

// reportBadAnnotations flags mpp:guardedby annotations (declared in
// this package) naming no sibling mutex field.
func reportBadAnnotations(pass *Pass) {
	var bad []*FieldFact
	for _, ff := range pass.Facts.Fields {
		if ff.DeclPkg == pass.Pkg && ff.GuardedBy != "" && !ff.GuardKnown {
			bad = append(bad, ff)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].DeclPos < bad[j].DeclPos })
	for _, ff := range bad {
		pass.Reportf(ff.DeclPos, "mpp:guardedby on %s names %q, which is not a sibling sync.Mutex/RWMutex field", ff.Name, ff.GuardedBy)
	}
}

// checkLockedFunc evaluates one function: every guarded-field access
// must be under its mutex, and every Lock must be released.
func checkLockedFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	events, returns := collectLockEvents(info, fd.Body)
	heldPaths := lockedAnnotationPaths(fd)

	// Guarded accesses, in source order.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return true
		}
		ff := pass.Facts.Fields[obj.Pos()]
		if ff == nil || ff.GuardedBy == "" || !ff.GuardKnown {
			return true
		}
		base := exprPath(sel.X)
		muPath := base + "." + ff.GuardedBy
		if base == "" {
			muPath = "<expr>." + ff.GuardedBy
		}
		if heldPaths[muPath] || heldAt(events, muPath, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "%s (mpp:guardedby %s) accessed without %s held", ff.Name, ff.GuardedBy, muPath)
		return true
	})

	checkLockPairing(pass, fd, events, returns)
}

// lockedAnnotationPaths expands a `//mpp:locked mu1 mu2` directive into
// the receiver-qualified mutex paths held throughout the function.
func lockedAnnotationPaths(fd *ast.FuncDecl) map[string]bool {
	args, ok := directiveArgs(fd.Doc, lockedDirective)
	if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	recv := fd.Recv.List[0].Names[0].Name
	out := make(map[string]bool)
	for _, mu := range strings.Fields(args) {
		out[recv+"."+mu] = true
	}
	return out
}

// collectLockEvents gathers the body's mutex Lock/Unlock calls (with
// defer attribution) and its return statements, each in source order.
func collectLockEvents(info *types.Info, body *ast.BlockStmt) ([]lockEvent, []token.Pos) {
	var events []lockEvent
	var returns []token.Pos
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			isLock, known := mutexMethods[fn.FullName()]
			if !known {
				return true
			}
			events = append(events, lockEvent{
				path:     exprPath(sel.X),
				pos:      n.Pos(),
				lock:     isLock,
				deferred: deferredCalls[n],
			})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	sort.Slice(returns, func(i, j int) bool { return returns[i] < returns[j] })
	return events, returns
}

// heldAt reports whether muPath is held at pos under the positional
// model: some Lock before pos with no non-deferred Unlock in between.
func heldAt(events []lockEvent, muPath string, pos token.Pos) bool {
	held := false
	for _, ev := range events {
		if ev.pos >= pos || ev.path != muPath {
			continue
		}
		if ev.lock {
			held = true
		} else if !ev.deferred {
			held = false
		}
	}
	return held
}

// checkLockPairing verifies, per mutex path, that a taken lock is
// released: a deferred Unlock covers everything after its registration;
// otherwise a positional Unlock must follow, with no return statement
// inside the open critical section.
func checkLockPairing(pass *Pass, fd *ast.FuncDecl, events []lockEvent, returns []token.Pos) {
	paths := make(map[string]bool)
	for _, ev := range events {
		paths[ev.path] = true
	}
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, path := range sorted {
		held, deferCover := false, false
		var lastLock token.Pos
		hasUnlock := false
		i := 0 // next unprocessed return
		advance := func(upto token.Pos) {
			for i < len(returns) && returns[i] < upto {
				if held && !deferCover {
					pass.Reportf(returns[i], "return with %s held: release it or defer the Unlock", path)
				}
				i++
			}
		}
		for _, ev := range events {
			if ev.path != path {
				continue
			}
			advance(ev.pos)
			if ev.lock {
				held, lastLock = true, ev.pos
			} else {
				hasUnlock = true
				if ev.deferred {
					deferCover = true
				} else {
					held = false
				}
			}
		}
		advance(token.Pos(1 << 40))
		if held && !deferCover && !hasUnlock {
			pass.Reportf(lastLock, "%s.Lock() in %s has no matching Unlock", path, fd.Name.Name)
		}
	}
}
