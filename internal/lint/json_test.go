package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONOutput pins the machine-readable schema: an array of objects
// with exactly the keys analyzer/file/line/col/message, file paths
// relative to the module root with forward slashes, 1-based positions.
func TestJSONOutput(t *testing.T) {
	pkg := loadTestdata(t, "errcmp")
	diags, err := Run([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatalf("lint testdata/errcmp: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("errcmp fixture produced no diagnostics")
	}
	root := testLoader(t).ModuleRoot

	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags, root); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(diags) {
		t.Fatalf("decoded %d objects, want %d", len(decoded), len(diags))
	}
	wantKeys := []string{"analyzer", "file", "line", "col", "message"}
	for i, obj := range decoded {
		if len(obj) != len(wantKeys) {
			t.Errorf("object %d has %d keys, want %d: %v", i, len(obj), len(wantKeys), obj)
		}
		for _, k := range wantKeys {
			if _, ok := obj[k]; !ok {
				t.Errorf("object %d missing key %q", i, k)
			}
		}
		file, _ := obj["file"].(string)
		if strings.HasPrefix(file, "/") || strings.Contains(file, `\`) {
			t.Errorf("object %d: file %q is not a slash-separated relative path", i, file)
		}
		if line, _ := obj["line"].(float64); line < 1 {
			t.Errorf("object %d: line %v is not 1-based", i, obj["line"])
		}
		if col, _ := obj["col"].(float64); col < 1 {
			t.Errorf("object %d: col %v is not 1-based", i, obj["col"])
		}
		if a, _ := obj["analyzer"].(string); a != "errcmp" {
			t.Errorf("object %d: analyzer %q, want errcmp", i, a)
		}
	}

	// Clean runs must still emit an array, never null.
	buf.Reset()
	if err := WriteJSON(&buf, nil, root); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}
}
