package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck tracks the lifecycle of sync.Pool objects, the shape behind
// the batch-arena retention bug: an object taken with Get must either
// go back with Put, be handed off (returned, stored, sent, or passed to
// a callee that owns it from then on), or be dropped explicitly with
// `_ =`. And once an object has been Put, it belongs to the pool again
// — any later use of the variable is a use-after-free the runtime will
// happily turn into cross-request data corruption.
//
// The tracking is per-function and syntactic: a Get bound to a local is
// followed through that local's uses; a Get whose result immediately
// escapes (return value, call argument, field store) transfers
// ownership and is not followed further. Aliases taken before the Put
// (`buf := x.data; pool.Put(x); use(buf)`) are beyond a syntactic
// analysis — the defense there is Put-side scrubbing, which this
// analyzer cannot check and the pool helpers must guarantee. Deferred
// Puts run at function exit, so they satisfy the Put requirement
// without making every later use a use-after-Put. Sites in _test.go
// files are exempt (a test leaking a pooled object costs recycling,
// not correctness).
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc: "every sync.Pool.Get result must be Put back, handed off, or " +
		"explicitly dropped; no use of the variable may follow the Put",
	Run: runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		par := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPoolMethod(pass.Pkg.Info, call, "Get") {
				return true
			}
			checkGet(pass, par, call)
			return true
		})
	}
	return nil
}

// isPoolMethod reports whether call invokes (*sync.Pool).<name>.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "(*sync.Pool)."+name
}

// checkGet classifies where one Get's result lands and, when it is
// bound to a local, verifies the local's lifecycle.
func checkGet(pass *Pass, par map[ast.Node]ast.Node, get *ast.CallExpr) {
	// Climb through type assertions and parens to the consuming node.
	n := ast.Node(get)
	p := par[n]
	for {
		switch pp := p.(type) {
		case *ast.TypeAssertExpr:
			n, p = p, par[p]
			continue
		case *ast.ParenExpr:
			n, p = p, par[p]
			continue
		case *ast.ExprStmt:
			pass.Reportf(get.Pos(), "result of Pool.Get() is discarded: Put it back, bind it, or drop it with _ =")
			return
		case *ast.AssignStmt:
			id := bindingIdent(pp, n)
			if id == nil {
				return // stored into a field/element: ownership transferred
			}
			if id.Name == "_" {
				return // explicit drop
			}
			obj := pass.Pkg.Info.Defs[id]
			if obj == nil {
				obj = pass.Pkg.Info.Uses[id]
			}
			if obj != nil {
				checkPooledLocal(pass, par, get, id, obj)
			}
			return
		case *ast.ValueSpec:
			for i, v := range pp.Values {
				if v == n && i < len(pp.Names) {
					if obj := pass.Pkg.Info.Defs[pp.Names[i]]; obj != nil {
						checkPooledLocal(pass, par, get, pp.Names[i], obj)
					}
				}
			}
			return
		default:
			// Return value, call argument, composite-literal element,
			// channel send, …: the result escapes immediately and the
			// consumer owns it.
			return
		}
	}
}

// bindingIdent returns the identifier as which the assignment binds
// value, or nil when the target is not a plain identifier.
func bindingIdent(as *ast.AssignStmt, value ast.Node) *ast.Ident {
	for i, rhs := range as.Rhs {
		if ast.Node(rhs) != value {
			continue
		}
		lhs := as.Lhs[0]
		if len(as.Lhs) == len(as.Rhs) {
			lhs = as.Lhs[i]
		}
		id, _ := lhs.(*ast.Ident)
		return id
	}
	return nil
}

// checkPooledLocal follows one Get-bound local through its enclosing
// function: it must be Put or handed off somewhere, and never used
// after a non-deferred Put.
func checkPooledLocal(pass *Pass, par map[ast.Node]ast.Node, get *ast.CallExpr, bind *ast.Ident, obj types.Object) {
	fd := enclosingFuncDecl(par, get)
	if fd == nil || fd.Body == nil {
		return
	}
	info := pass.Pkg.Info

	deferredCalls := make(map[*ast.CallExpr]bool)
	var putEnd token.Pos // end of the first non-deferred Put, or NoPos
	resolved := false
	var lateUses []*ast.Ident

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[ds.Call] = true
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == bind || info.Uses[id] != obj {
			return true
		}
		// Climb through type assertions and parens: `return v.(*T)` is a
		// handoff of v exactly like `return v`.
		use := ast.Node(id)
		p := par[use]
		for {
			if _, ok := p.(*ast.TypeAssertExpr); ok {
				use, p = p, par[p]
				continue
			}
			if _, ok := p.(*ast.ParenExpr); ok {
				use, p = p, par[p]
				continue
			}
			break
		}
		switch p := p.(type) {
		case *ast.CallExpr:
			if argExpr, ok := use.(ast.Expr); ok && argOf(p, argExpr) {
				if isPoolMethod(info, p, "Put") {
					resolved = true
					if !deferredCalls[p] && (putEnd == token.NoPos || p.End() < putEnd) {
						putEnd = p.End()
					}
				} else {
					resolved = true // handed to a callee that owns it now
				}
				if putEnd != token.NoPos && id.Pos() > putEnd {
					lateUses = append(lateUses, id)
				}
				return true
			}
		case *ast.ReturnStmt:
			resolved = true
		case *ast.SendStmt:
			if p.Value == use {
				resolved = true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if ast.Node(rhs) == use {
					resolved = true // re-aliased; the alias carries ownership
				}
			}
		case *ast.KeyValueExpr, *ast.CompositeLit:
			resolved = true
		}
		if putEnd != token.NoPos && id.Pos() > putEnd {
			lateUses = append(lateUses, id)
		}
		return true
	})

	if !resolved {
		pass.Reportf(get.Pos(), "%s from Pool.Get() is neither Put back nor handed off in %s", bind.Name, fd.Name.Name)
	}
	for _, id := range lateUses {
		pass.Reportf(id.Pos(), "use of %s after it was Put back to the pool", id.Name)
	}
}

// argOf reports whether e appears as a direct argument of call.
func argOf(call *ast.CallExpr, e ast.Expr) bool {
	for _, a := range call.Args {
		if a == e {
			return true
		}
	}
	return false
}
