package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicCheck confines panic to the codebase's three sanctioned uses:
//
//   - Must* constructors (MustBuild, MustInstance, MustUGraph, …), whose
//     entire point is converting an error into a panic at a call site
//     that has statically guaranteed validity;
//   - functions whose doc comment explicitly says "programmer error" (or
//     "programming error"), the convention established for generator
//     parameter validation and builder rule violations;
//   - _test.go files.
//
// Everything else must return an error — the spec.ParseDAG precedent:
// user-reachable inputs get errors, not crashes.
var PanicCheck = &Analyzer{
	Name: "paniccheck",
	Doc: "panic only in Must* functions, functions documented as " +
		"programmer-error-only, or _test.go files; user-reachable paths " +
		"return errors",
	Run: runPanicCheck,
}

func runPanicCheck(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		par := parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "panic") {
				return true
			}
			fd := enclosingFuncDecl(par, call)
			if fd == nil {
				pass.Reportf(call.Pos(), "panic at package scope")
				return true
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				return true
			}
			if docSaysProgrammerError(fd.Doc) {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in %s: allowed only in Must* functions or functions documented \"programmer error\" — return an error instead",
				fd.Name.Name)
			return true
		})
	}
	return nil
}

// docSaysProgrammerError reports whether the doc comment declares the
// function's panics to be programmer-error-only.
func docSaysProgrammerError(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := strings.ToLower(doc.Text())
	return strings.Contains(text, "programmer error") || strings.Contains(text, "programming error")
}

// isBuiltin reports whether fun resolves to the named predeclared
// function (shadowed identifiers do not count).
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
