package bounds

import (
	"fmt"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// TestCertifiedLowerBelowMeasuredCost is the soundness safeguard for the
// gap reports: on every workload × parameter combination a scheduler can
// solve, the certified lower bound must not exceed the measured cost of
// any valid strategy (which is an upper bound on OPT). A violation here
// means a term in CertifiedLower is not actually a lower bound.
func TestCertifiedLowerBelowMeasuredCost(t *testing.T) {
	graphs := []*dag.Graph{
		gen.FFT(3), gen.FFT(4), gen.FFT(5), gen.FFT(6),
		gen.MatMul(2), gen.MatMul(3), gen.MatMul(4),
		gen.Grid2D(8, 8), gen.Wavefront(6, 10),
		gen.Pyramid(6), gen.Chain(20), gen.RandomDAG(60, 0.1, 3, 1),
		// Many-source shapes exercise the load floor: an in-tree is all
		// sources at the leaves, a wide two-layer graph has both source
		// and sink counts far beyond k·r.
		gen.BinaryInTree(5), gen.TwoLayerRandom(24, 24, 0.2, 7),
	}
	for _, g := range graphs {
		for _, k := range []int{1, 2, 4} {
			for _, rExtra := range []int{1, 3} {
				in, err := pebble.NewInstance(g, pebble.MPP(k, g.MaxInDegree()+1+rExtra, 3))
				if err != nil {
					t.Fatalf("%s: %v", g.Name(), err)
				}
				lower, term := CertifiedLower(in)
				if lower <= 0 {
					t.Fatalf("%s k=%d: certified lower %d not positive", g.Name(), k, lower)
				}
				for _, s := range []sched.Scheduler{
					sched.Greedy{},
					sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"},
				} {
					t.Run(fmt.Sprintf("%s/k%d/re%d/%s", g.Name(), k, rExtra, s.Name()), func(t *testing.T) {
						strat, err := s.Schedule(in)
						if err != nil {
							t.Skipf("scheduler failed (not a bounds problem): %v", err)
						}
						rep, err := pebble.Replay(in, strat)
						if err != nil {
							t.Fatalf("invalid strategy: %v", err)
						}
						if lower > rep.Cost {
							t.Fatalf("certified lower %d (term %s) exceeds measured cost %d",
								lower, term, rep.Cost)
						}
					})
				}
			}
		}
	}
}

// TestLoadFloorNotCertifiedInMPP pins the finding that keeps the
// blue-start load floor out of CertifiedLower: in this game rule (R3-M)
// admits computing a source (its compute precondition is vacuous, and
// the initial configuration holds no blue pebbles to load from), so the
// greedy scheduler acquires the in-tree's 32 leaves by compute moves and
// produces a valid strategy strictly cheaper than compute+store+load —
// a "certified" bound including the load floor would not be a lower
// bound. If this test ever fails, the game's source rule changed and
// the load floor can move into StructuralLower.
func TestLoadFloorNotCertifiedInMPP(t *testing.T) {
	g := gen.BinaryInTree(5)
	in, err := pebble.NewInstance(g, pebble.MPP(1, g.MaxInDegree()+2, 3))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := sched.Greedy{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pebble.Replay(in, strat)
	if err != nil {
		t.Fatal(err)
	}
	if bs := BlueStartLower(in); bs <= rep.Cost {
		t.Fatalf("blue-start bound %d no longer exceeds greedy's measured %d; "+
			"the load floor may have become certifiable — revisit StructuralLower",
			bs, rep.Cost)
	}
	if lower, term := CertifiedLower(in); lower > rep.Cost {
		t.Fatalf("certified lower %d (term %s) exceeds measured cost %d", lower, term, rep.Cost)
	}
}

func TestCertifiedLowerTermSelection(t *testing.T) {
	// A plain grid never gets a Corollary 1 term.
	g := gen.Grid2D(10, 10)
	in, err := pebble.NewInstance(g, pebble.MPP(2, g.MaxInDegree()+2, 3))
	if err != nil {
		t.Fatal(err)
	}
	lower, term := CertifiedLower(in)
	if term != "structural" || lower != StructuralLower(in) {
		t.Fatalf("grid: got (%d, %s), want structural bound %d", lower, term, StructuralLower(in))
	}

	// A large FFT with scarce memory must be bound by the Hong–Kung term.
	f := gen.FFT(10)
	in, err = pebble.NewInstance(f, pebble.MPP(2, f.MaxInDegree()+1, 5))
	if err != nil {
		t.Fatal(err)
	}
	lower, term = CertifiedLower(in)
	if term != "corollary1-fft" {
		t.Fatalf("fft-1024: binding term %s (lower %d), want corollary1-fft", term, lower)
	}
	if lower <= StructuralLower(in) {
		t.Fatalf("fft-1024: corollary1 term %d does not improve on structural %d",
			lower, StructuralLower(in))
	}

	// Matmul with scarce memory must be bound by the Kwasniewski term.
	m := gen.MatMul(8)
	in, err = pebble.NewInstance(m, pebble.MPP(2, m.MaxInDegree()+1, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, term = CertifiedLower(in)
	if term != "corollary1-mmm" {
		t.Fatalf("matmul-8: binding term %s, want corollary1-mmm", term)
	}
}

func TestStructuralLowerFromMatchesInstanceForm(t *testing.T) {
	for _, g := range []*dag.Graph{gen.FFT(4), gen.Grid2D(7, 9), gen.Pyramid(5)} {
		st := g.ComputeStats()
		for _, k := range []int{1, 3} {
			r := g.MaxInDegree() + 2
			in, err := pebble.NewInstance(g, pebble.MPP(k, r, 4))
			if err != nil {
				t.Fatal(err)
			}
			want := StructuralLower(in)
			got := StructuralLowerFrom(int64(st.N), int64(st.Depth),
				0, int64(len(g.Sinks())), k, r, 4, in.ComputeCost)
			if got != want {
				t.Fatalf("%s k=%d: StructuralLowerFrom=%d, StructuralLower=%d", g.Name(), k, got, want)
			}
			wantBS := BlueStartLower(in)
			gotBS := StructuralLowerFrom(int64(st.N), int64(st.Depth),
				int64(st.Sources), int64(len(g.Sinks())), k, r, 4, in.ComputeCost)
			if gotBS != wantBS {
				t.Fatalf("%s k=%d: blue-start StructuralLowerFrom=%d, BlueStartLower=%d",
					g.Name(), k, gotBS, wantBS)
			}
			if wantBS < want {
				t.Fatalf("%s k=%d: BlueStartLower %d below StructuralLower %d",
					g.Name(), k, wantBS, want)
			}
		}
	}
}
