package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

func TestLemma1Sandwich(t *testing.T) {
	g := gen.Grid2D(4, 4)
	in := pebble.MustInstance(g, pebble.MPP(2, 4, 3))
	lo, hi := Lemma1Lower(in), Lemma1Upper(in)
	if lo != 8 { // ⌈16/2⌉
		t.Errorf("lower = %d, want 8", lo)
	}
	if hi != (3*3+1)*16 {
		t.Errorf("upper = %d, want %d", hi, (3*3+1)*16)
	}
	rep, err := sched.Run(sched.Baseline{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost < lo || rep.Cost > hi {
		t.Errorf("baseline cost %d outside [%d, %d]", rep.Cost, lo, hi)
	}
}

func TestStructuralLower(t *testing.T) {
	// Grid 4x4, k=2, r=4, g=3: depth 7 beats ⌈16/2⌉ = 8? No — 8 > 7, so
	// the compute floor wins; 1 sink ≤ k·r, so no store term.
	g := gen.Grid2D(4, 4)
	in := pebble.MustInstance(g, pebble.MPP(2, 4, 3))
	if got := StructuralLower(in); got != 8 {
		t.Errorf("StructuralLower(grid4x4 k2) = %d, want 8", got)
	}
	// Chain 16, k=4: depth 16 beats ⌈16/4⌉ = 4.
	in2 := pebble.MustInstance(gen.Chain(16), pebble.MPP(4, 2, 3))
	if got := StructuralLower(in2); got != 16 {
		t.Errorf("StructuralLower(chain16 k4) = %d, want 16", got)
	}
	// Two-layer with many sinks and tiny capacity: store floor kicks in.
	// 3 sources → 12 sinks, k=1, r=5, g=2: computes = 15, sinks beyond
	// capacity = 12 − 5 = 7 writes → 15 + 2·7 = 29... depth 2 < 15.
	tl := gen.TwoLayerRandom(3, 12, 1.0, 1) // p=1: complete bipartite
	in3 := pebble.MustInstance(tl, pebble.MPP(1, 5, 2))
	if got := StructuralLower(in3); got != 15+2*7 {
		t.Errorf("StructuralLower(twolayer) = %d, want %d", got, 15+2*7)
	}
	// Many sources never raise the certified bound — sources are
	// computable in this game — but the blue-start convention charges
	// them as loads: a depth-5 binary in-tree has 32 source leaves and
	// one sink. k=1, r=3, g=2: computes = 63 (n = 63, depth 6), no store
	// term (1 sink); blue-start adds 32 − 3 = 29 loads → 63 + 2·29 = 121.
	it := gen.BinaryInTree(5)
	in4 := pebble.MustInstance(it, pebble.MPP(1, 3, 2))
	if got := StructuralLower(in4); got != 63 {
		t.Errorf("StructuralLower(intree5) = %d, want 63", got)
	}
	if got := BlueStartLower(in4); got != 63+2*29 {
		t.Errorf("BlueStartLower(intree5) = %d, want %d", got, 63+2*29)
	}
	// Ample capacity switches the load term off: k=2, r=17 → k·r = 34 ≥ 32.
	in5 := pebble.MustInstance(it, pebble.MPP(2, 17, 2))
	if got, want := BlueStartLower(in5), StructuralLower(in5); got != want || got != 32 {
		t.Errorf("BlueStartLower(intree5 ample) = %d, want structural %d = 32", got, want)
	}
	// Never exceeds the trivial upper bound, and ≥ Lemma 1 lower.
	for _, in := range []*pebble.Instance{in, in2, in3} {
		if sl := StructuralLower(in); sl < Lemma1Lower(in) || sl > Lemma1Upper(in) {
			t.Errorf("StructuralLower %d outside [%d, %d]", sl, Lemma1Lower(in), Lemma1Upper(in))
		}
	}
}

func TestLemma5AndCorollary1(t *testing.T) {
	if got := Lemma5IO(100, 4); got != 25 {
		t.Errorf("Lemma5IO = %v", got)
	}
	// Corollary 1 with L=100, n=1000, k=4, g=2: 2·100/4 + 1000/4 = 300.
	if got := Corollary1Cost(100, 1000, 4, 2); got != 300 {
		t.Errorf("Corollary1Cost = %v", got)
	}
}

func TestHongKungFFTShape(t *testing.T) {
	// Monotone decreasing in s, increasing in n.
	if HongKungFFT(1024, 16) <= HongKungFFT(1024, 64) {
		t.Error("bound not decreasing in fast memory")
	}
	if HongKungFFT(2048, 16) <= HongKungFFT(1024, 16) {
		t.Error("bound not increasing in n")
	}
	// n log n / log s exactly: 1024·10/4 for s=16.
	if got, want := HongKungFFT(1024, 16), 1024.0*10/4; math.Abs(got-want) > 1e-9 {
		t.Errorf("HongKungFFT = %v, want %v", got, want)
	}
	if HongKungFFT(1, 16) != 0 || HongKungFFT(16, 1) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func TestKwasniewskiMMMShape(t *testing.T) {
	// 2n³/√s + n² exactly for n=4, s=16: 2·64/4 + 16 = 48.
	if got := KwasniewskiMMM(4, 16); math.Abs(got-48) > 1e-9 {
		t.Errorf("KwasniewskiMMM = %v, want 48", got)
	}
	if KwasniewskiMMM(8, 4) <= KwasniewskiMMM(8, 16) {
		t.Error("bound not decreasing in fast memory")
	}
}

func TestCostLowerBoundInstantiations(t *testing.T) {
	// FFT: (n/k)(g·logn/log(rk)+1), n=1024,k=2,r=8,g=3 → 512·(3·10/4+1)=4352.
	if got := FFTCostLowerBound(1024, 2, 8, 3); math.Abs(got-4352) > 1e-9 {
		t.Errorf("FFTCostLowerBound = %v, want 4352", got)
	}
	// MMM: (n/k)(g(2n²/√(rk)+n)+1): n=4,k=2,r=8,g=1 → 2·(2·16/4+4+1) = 26.
	if got := MMMCostLowerBound(4, 2, 8, 1); math.Abs(got-26) > 1e-9 {
		t.Errorf("MMMCostLowerBound = %v, want 26", got)
	}
}

func TestSurplusCost(t *testing.T) {
	if got := SurplusCost(10, 8, 2); got != 6 {
		t.Errorf("SurplusCost = %v, want 6", got)
	}
	if got := SurplusCost(5, 10, 2); got != 0 {
		t.Errorf("SurplusCost = %v, want 0", got)
	}
}

// TestQuickSchedulersRespectFFTBound checks the load-bearing property of
// Lemma 5: measured MPP I/O moves of any valid strategy on the FFT DAG
// are at least the translated bound L/k — using the *actual pebbled size*
// (our FFT DAG has n·(log n+1) nodes but the classic bound is for the
// n-point transform; we check against the conservative per-instance form
// with the instance's total fast memory).
func TestQuickSchedulersRespectFFTBound(t *testing.T) {
	prop := func(rSeed uint8) bool {
		logN := 3
		n := 1 << logN
		g := gen.FFT(logN)
		k := 1 + int(rSeed%2)
		r := 3 + int(rSeed%3)
		in := pebble.MustInstance(g, pebble.MPP(k, r, 2))
		rep, err := sched.Run(sched.Greedy{}, in)
		if err != nil {
			return false
		}
		// The classic bound counts I/O for the n-point FFT when s is far
		// smaller than n log n; at these toy sizes it is weak, so only
		// sanity-check non-negativity and that it does not exceed the
		// measured I/O by more than the constant slack factor 8 in this
		// regime (shape check, not constant check).
		bound := Lemma5IO(HongKungFFT(n, r*k), k)
		return bound >= 0 && float64(rep.IOMoves)*8 >= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGap(t *testing.T) {
	cases := []struct {
		lower, incumbent int64
		want             float64
	}{
		{10, 10, 0},           // proven optimal
		{10, 15, 0.5},         // 50% gap
		{10, 11, 0.1},         // 10% gap
		{0, 0, 0},             // trivially optimal at zero
		{10, -1, math.Inf(1)}, // no incumbent
		{0, 7, math.Inf(1)},   // no usable lower bound
		{-1, 7, math.Inf(1)},  // no lower bound at all
		{10, 5, math.Inf(1)},  // inconsistent bracket
	}
	for _, c := range cases {
		got := Gap(c.lower, c.incumbent)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("Gap(%d, %d) = %v, want +Inf", c.lower, c.incumbent, got)
			}
		} else if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Gap(%d, %d) = %v, want %v", c.lower, c.incumbent, got, c.want)
		}
	}
}

func TestFormatGap(t *testing.T) {
	cases := []struct {
		lower, incumbent int64
		want             string
	}{
		{-1, -1, "OPT unknown"},
		{0, -1, "OPT unknown"},
		{12, -1, "OPT ≥ 12 (no incumbent)"},
		{12, 12, "OPT = 12"},
		{0, 9, "OPT ≤ 9 (no lower bound)"},
		{10, 15, "OPT ∈ [10, 15] (gap 50.0%)"},
	}
	for _, c := range cases {
		if got := FormatGap(c.lower, c.incumbent); got != c.want {
			t.Errorf("FormatGap(%d, %d) = %q, want %q", c.lower, c.incumbent, got, c.want)
		}
	}
}
