// Package bounds collects the analytic cost bounds the paper uses:
// the trivial Lemma 1 sandwich, the Lemma 5 / Corollary 1 translation of
// single-processor I/O lower bounds to multiprocessor cost lower bounds,
// and the classic per-workload I/O lower bounds the paper cites — the
// Hong–Kung FFT bound and the Kwasniewski et al. matrix-multiplication
// bound.
package bounds

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/pebble"
)

// Lemma1Lower returns the trivial lower bound ⌈n/k⌉ · computeCost on the
// optimal pebbling cost (each compute move handles at most k nodes).
func Lemma1Lower(in *pebble.Instance) int64 {
	n, k := int64(in.N()), int64(in.K)
	return (n + k - 1) / k * int64(in.ComputeCost)
}

// Lemma1Upper returns the trivial upper bound (g·(Δ_in+1) + c) · n on the
// optimal pebbling cost, achieved by the Baseline scheduler.
func Lemma1Upper(in *pebble.Instance) int64 {
	return (int64(in.G)*int64(in.Graph.MaxInDegree()+1) + int64(in.ComputeCost)) * int64(in.N())
}

// Lemma5IO translates a single-processor I/O lower bound into the
// multiprocessor setting: if every SPP pebbling with fast memory k·r
// needs at least L I/O operations, every MPP pebbling with k processors
// of fast memory r needs at least ⌈L/k⌉ I/O moves.
func Lemma5IO(L float64, k int) float64 {
	return L / float64(k)
}

// Corollary1Cost combines Lemma 5 with the compute bound: a cost lower
// bound of g·L/k + n/k for MPP given an SPP(k·r) I/O lower bound L.
func Corollary1Cost(L float64, n, k, g int) float64 {
	return float64(g)*L/float64(k) + float64(n)/float64(k)
}

// StructuralLower returns a purely structural cost lower bound valid for
// any instance size: the compute floor c·max(⌈n/k⌉, depth) — one move
// computes at most k nodes, and nodes on a directed path can never share
// a move — plus the store floor g·⌈(sinks − k·r)⁺/k⌉ — sinks that cannot
// all be held red at the end must reach blue, k writes per move. It
// matches the exact solver's `max` heuristic evaluated at the empty start
// configuration (the solver's form only tightens mid-search), so it is
// the lower bound of record for instances too large to search.
//
// Deliberately absent is a symmetric load floor on sources: in this
// game's rule (R3-M) a source has no predecessors, so its compute
// precondition holds vacuously and a source is always acquired by a
// compute move (already counted in the compute floor), never by a
// forced load — the initial configuration holds no blue pebbles at all,
// so a load of a source before some write is not even legal. Any
// positive source-count term therefore over-bounds real strategies (the
// greedy scheduler beats compute+load on a binary in-tree;
// TestLoadFloorNotCertifiedInMPP pins the counterexample). The
// blue-start convention of the classic I/O lower bounds, where inputs
// originate in slow memory and must be loaded, is available as
// StructuralLowerFrom with the instance's source count — see
// BlueStartLower.
func StructuralLower(in *pebble.Instance) int64 {
	return StructuralLowerFrom(int64(in.N()), int64(in.Graph.CriticalPathLength()),
		0, int64(len(in.Graph.Sinks())), in.K, in.R, in.G, in.ComputeCost)
}

// BlueStartLower is the structural bound read in the blue-start I/O
// convention of the classic lower bounds (Hong–Kung, Kwasniewski et
// al.): source operands originate in slow memory, so sources beyond the
// machine's k·r red slots are each charged one load, k reads per move —
// the load floor g·⌈(sources − k·r)⁺/k⌉ on top of StructuralLower. It
// is the right yardstick when an MPP schedule stands in for a real
// machine whose inputs genuinely start in slow memory, and the honest
// capacity-planning form for sizing runs; it is NOT a certified lower
// bound on this game's OPT (sources are computable here — see
// StructuralLower), so CertifiedLower never uses it.
func BlueStartLower(in *pebble.Instance) int64 {
	return StructuralLowerFrom(int64(in.N()), int64(in.Graph.CriticalPathLength()),
		int64(len(in.Graph.Sources())), int64(len(in.Graph.Sinks())), in.K, in.R, in.G, in.ComputeCost)
}

// StructuralLowerFrom is the structural-bound formula computed from
// pre-extracted graph statistics (node count, critical-path length,
// source count, sink count), for callers sizing instances they have not
// — or deliberately will not — materialize as a pebble.Instance. A
// positive sources count adds the blue-start load floor
// g·⌈(sources − k·r)⁺/k⌉ (see BlueStartLower for when that convention
// applies); sources = 0 gives the game-certified compute+store form
// (StructuralLower, the exact solver's root heuristic).
func StructuralLowerFrom(n, depth, sources, sinks int64, k, r, g, c int) int64 {
	if n <= 0 {
		return 0
	}
	k64 := int64(k)
	computes := (n + k64 - 1) / k64
	if depth > computes {
		computes = depth
	}
	lb := computes * int64(c)
	if w := sinks - k64*int64(r); w > 0 {
		lb += (w + k64 - 1) / k64 * int64(g)
	}
	if l := sources - k64*int64(r); l > 0 {
		lb += (l + k64 - 1) / k64 * int64(g)
	}
	return lb
}

// sizedName extracts the integer size suffix of a generator-produced
// graph name such as "fft-16" or "matmul-8".
func sizedName(name, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// CertifiedLower returns the strongest analytic cost lower bound this
// package can certify for the instance, together with the name of the
// binding term. Every instance gets the structural bound; DAGs whose
// name marks them as one of the paper's Section 4 workloads ("fft-N" for
// the N-point FFT from gen.FFT, "matmul-N" for the n×n MMM from
// gen.MatMul) additionally get the Lemma 5 / Corollary 1 translation of
// the matching single-processor I/O lower bound — Hong–Kung for FFT,
// Kwasniewski et al. for MMM, evaluated at fast memory r·k — charged as
// g·⌈L/k⌉ I/O cost on top of the compute floor c·⌈n/k⌉. Compute moves
// and I/O moves are disjoint, so the two floors add. The result is a
// valid lower bound on the optimal pebbling cost: gap percentages a
// report prints against it bracket OPT, they are not heuristic guesses.
func CertifiedLower(in *pebble.Instance) (int64, string) {
	lb, term := StructuralLower(in), "structural"
	n64, k64 := int64(in.N()), int64(in.K)
	if n64 == 0 {
		return lb, term
	}
	computeFloor := (n64 + k64 - 1) / k64 * int64(in.ComputeCost)
	addIO := func(L float64, name string) {
		if L <= 0 {
			return
		}
		ioMoves := (int64(math.Ceil(L)) + k64 - 1) / k64 // ⌈L/k⌉, Lemma 5
		if cand := computeFloor + ioMoves*int64(in.G); cand > lb {
			lb, term = cand, name
		}
	}
	if pts, ok := sizedName(in.Graph.Name(), "fft-"); ok {
		addIO(HongKungFFT(pts, in.R*in.K), "corollary1-fft")
	}
	if n, ok := sizedName(in.Graph.Name(), "matmul-"); ok {
		addIO(KwasniewskiMMM(n, in.R*in.K), "corollary1-mmm")
	}
	return lb, term
}

// HongKungFFT returns the Hong–Kung I/O lower bound Ω(n·log n / log s)
// for the n-point FFT DAG pebbled with fast memory s (as used in
// Section 4 of the paper, with s = r·k). It returns the bound without
// the asymptotic constant, i.e. n·log₂n / log₂s; callers compare shapes,
// not constants. For s < 2 the bound is meaningless and 0 is returned.
func HongKungFFT(n, s int) float64 {
	if n < 2 || s < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n)) / math.Log2(float64(s))
}

// KwasniewskiMMM returns the matrix-multiplication I/O lower bound
// 2n³/√s + n² of Kwasniewski et al. for multiplying two n×n matrices
// with fast memory s.
func KwasniewskiMMM(n, s int) float64 {
	if s < 1 {
		return 0
	}
	nn := float64(n)
	return 2*nn*nn*nn/math.Sqrt(float64(s)) + nn*nn
}

// FFTCostLowerBound instantiates Corollary 1 for the n-point FFT:
// (n/k)·(g·log n/log(rk) + 1), the form displayed in Section 4.
func FFTCostLowerBound(n, k, r, g int) float64 {
	if n < 2 || r*k < 2 {
		return 0
	}
	return float64(n) / float64(k) * (float64(g)*math.Log2(float64(n))/math.Log2(float64(r*k)) + 1)
}

// MMMCostLowerBound instantiates Corollary 1 for n×n matrix
// multiplication: (n/k)·(g·(2n²/√(rk) + n) + 1), the form displayed in
// Section 4.
func MMMCostLowerBound(n, k, r, g int) float64 {
	nn := float64(n)
	return nn / float64(k) * (float64(g)*(2*nn*nn/math.Sqrt(float64(r*k))+nn) + 1)
}

// SurplusCost returns the surplus cost C − n/k of Definition 1 for a
// measured cost C.
func SurplusCost(cost int64, n, k int) float64 {
	return float64(cost) - float64(n)/float64(k)
}

// Gap returns the relative optimality gap (incumbent − lower) / lower of
// an anytime search's bracket OPT ∈ [lower, incumbent]. A gap of 0 means
// the incumbent is proven optimal. Degenerate brackets: no incumbent
// (incumbent < 0) or no information (lower ≤ 0 with no matching
// incumbent) report +Inf; a zero lower bound with a zero incumbent is an
// exact match.
func Gap(lower, incumbent int64) float64 {
	if incumbent < 0 || incumbent < lower {
		return math.Inf(1)
	}
	if lower <= 0 {
		if incumbent == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(incumbent-lower) / float64(lower)
}

// FormatGap renders an anytime bracket for reports: "OPT ∈ [lo, inc]
// (gap p%)", or the open-ended forms when one side is missing.
func FormatGap(lower, incumbent int64) string {
	switch {
	case incumbent < 0 && lower <= 0:
		return "OPT unknown"
	case incumbent < 0:
		return fmt.Sprintf("OPT ≥ %d (no incumbent)", lower)
	case Gap(lower, incumbent) == 0:
		return fmt.Sprintf("OPT = %d", incumbent)
	case math.IsInf(Gap(lower, incumbent), 1):
		return fmt.Sprintf("OPT ≤ %d (no lower bound)", incumbent)
	}
	return fmt.Sprintf("OPT ∈ [%d, %d] (gap %.1f%%)", lower, incumbent, 100*Gap(lower, incumbent))
}
