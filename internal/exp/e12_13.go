package exp

import (
	"context"
	"fmt"

	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/pebble"
)

// e12Pairs returns the matched instance pairs used by E12: same vertex
// and edge counts (hence byte-identical gadget sizes and budget R), but
// one contains a q-clique and the other does not — so any feasibility
// difference is attributable purely to the clique structure.
func e12Pairs() []struct {
	name    string
	yes, no *hardness.UGraph
} {
	return []struct {
		name    string
		yes, no *hardness.UGraph
	}{
		{
			"N4-M4",
			hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}}), // triangle + pendant
			hardness.MustUGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), // C4
		},
		{
			"N5-M5",
			hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 4}}), // bull
			hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}), // C5
		},
		{
			"N5-M6",
			hardness.MustUGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}), // two triangles
			hardness.MustUGraph(5, [][2]int{{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}}), // K2,3
		},
	}
}

// E12CliqueReduction reproduces the computational core of Theorem 2 /
// Figures 3-4: the tower-and-squeeze construction turns "does G′ contain
// a q-clique?" into "does a zero-I/O one-shot pebbling within budget R
// exist?". We verify both directions on matched instance pairs and
// validate every YES witness by replaying it under the one-shot rules.
func E12CliqueReduction(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Theorem 2 / Figures 3-4: clique reduction",
		Claim:   "Deciding whether one-shot SPP admits a pebbling of I/O cost 0 is NP-hard (reduction from q-clique via tower/level gadgets); hence the optimal I/O cannot be approximated to any finite factor.",
		Columns: []string{"pair", "graph", "clique?", "dag n", "budget R", "zero-I/O feasible", "states"},
	}
	const q = 3
	budget := 30_000_000
	pairs := e12Pairs()
	if cfg.Quick {
		pairs = pairs[:2]
		budget = 8_000_000
	}
	allMatch := true
	for _, pair := range pairs {
		for _, side := range []struct {
			g   *hardness.UGraph
			tag string
		}{{pair.yes, "with-clique"}, {pair.no, "no-clique"}} {
			red, err := hardness.BuildCliqueReduction(side.g, q)
			if err != nil {
				return nil, err
			}
			stage := fmt.Sprintf("E12 %s/%s", pair.name, side.tag)
			zres, zerr := opt.ZeroIOBigCtx(ctx, red.Graph, red.R, cfg.states(budget))
			res, ok, err := zeroIOIn(t, stage, zres, zerr)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", stage, err)
			}
			want := side.g.HasClique(q)
			if !ok {
				// Indeterminate verdict: the pair can't confirm or refute
				// the claim; record what was explored and move on.
				t.AddRow(pair.name, side.tag, boolMark(want), di(red.Graph.N()), di(red.R),
					res.Verdict.String(), di(res.States))
				continue
			}
			if res.Feasible != want {
				allMatch = false
			}
			if res.Feasible {
				in := pebble.MustInstance(red.Graph, pebble.OneShotSPP(red.R, 1))
				rep, err := pebble.Replay(in, opt.ZeroIOStrategy(red.Graph, res.Order))
				if err != nil || rep.IOActions != 0 {
					return nil, fmt.Errorf("E12 %s/%s: witness replay failed: %v", pair.name, side.tag, err)
				}
			}
			t.AddRow(pair.name, side.tag, boolMark(want), di(red.Graph.N()), di(red.R),
				boolMark(res.Feasible), di(res.States))
		}
	}
	t.AddCheck("feasibility ⟺ q-clique", allMatch,
		"on every matched pair (identical N, M, hence identical construction and budget), zero-I/O feasibility tracks exactly the presence of a 3-clique")
	t.AddNote("gadget sizes are this reproduction's re-derivation of the paper's towers; instances with M = C(q,2) exactly (too few edges for the endgame wall to bind) are out of scope and excluded")
	return t, nil
}

// E13VertexCover reproduces the Lemma 11 / Theorem 1 coupling between
// pebbling and vertex cover on 3-regular graphs (the APX-hard class): we
// solve minimum vertex cover through pebbling-feasibility queries alone
// (vc(G) = N − max-clique(Ḡ), each clique query answered by the Theorem 2
// construction) and match brute force exactly — the L-reduction direction
// that makes approximating pebbling cost NP-hard.
func E13VertexCover(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Theorem 1 / Lemma 11: vertex-cover coupling",
		Claim:   "SPP with computation costs is APX-hard via an L-reduction to vertex cover on 3-regular graphs; pebbling optimization therefore decides vertex cover.",
		Columns: []string{"graph", "N", "M", "vc (brute force)", "vc (via pebbling queries)", "queries", "match"},
	}
	corpus := []struct {
		name string
		g    *hardness.UGraph
	}{
		{"k4", hardness.CubicCorpus()["k4"]},
		{"prism", hardness.CubicCorpus()["prism"]},
	}
	if !cfg.Quick {
		corpus = append(corpus, struct {
			name string
			g    *hardness.UGraph
		}{"k33", hardness.CubicCorpus()["k33"]})
	}
	allMatch := true
	for _, tc := range corpus {
		comp := tc.g.Complement()
		want := tc.g.MinVertexCover()
		// vc(G) = N − α(G) = N − ω(Ḡ): find ω(Ḡ) by pebbling queries for
		// q = 2, 3, … (a query is feasible iff Ḡ has a q-clique).
		queries := 0
		omega := 1 // every non-empty graph has a 1-clique
		partial := false
		for qq := 2; qq <= comp.N; qq++ {
			feasible, usedQuery, err := cliqueQuery(ctx, cfg, comp, qq)
			if err != nil {
				if opt.IsPartial(err) {
					// An undecided query breaks the ω(Ḡ) ascent; report
					// the graph as unresolved instead of guessing.
					t.MarkPartial(fmt.Sprintf("E13 %s q=%d", tc.name, qq), err)
					partial = true
					break
				}
				return nil, fmt.Errorf("E13 %s q=%d: %w", tc.name, qq, err)
			}
			if usedQuery {
				queries++
			}
			if !feasible {
				break
			}
			omega = qq
		}
		if partial {
			t.AddRow(tc.name, di(tc.g.N), di(tc.g.M()), di(want), "undecided", di(queries), "—")
			continue
		}
		got := tc.g.N - omega
		match := got == want
		allMatch = allMatch && match
		t.AddRow(tc.name, di(tc.g.N), di(tc.g.M()), di(want), di(got), di(queries), boolMark(match))
	}
	t.AddCheck("pebbling queries solve vertex cover", allMatch,
		"minimum vertex cover on every 3-regular test graph is recovered exactly from zero-I/O pebbling feasibility queries")
	t.AddNote("degenerate query sizes (q = 2, or M ≤ C(q,2), where a q-clique would need every edge) are answered by O(M) structural checks; all others run the Theorem 2 construction")
	return t, nil
}

// cliqueQuery answers "does g contain a q-clique?" through the pebbling
// reduction where the construction's scope applies, and through O(M)
// structural shortcuts in the degenerate regimes (q = 2 ⟺ any edge;
// M < C(q,2) ⟺ no; M = C(q,2) ⟺ the edges form exactly a K_q). The
// second result reports whether a pebbling search was actually used.
// Partial-stop errors (budget/deadline) propagate for the caller to
// classify via opt.IsPartial.
func cliqueQuery(ctx context.Context, cfg Config, g *hardness.UGraph, q int) (feasible, usedQuery bool, err error) {
	need := q * (q - 1) / 2
	switch {
	case q == 2:
		return g.M() >= 1, false, nil
	case g.M() < need:
		return false, false, nil
	case g.M() == need:
		// All edges must form a K_q: q vertices of degree q−1 each.
		deg := map[int]int{}
		for _, e := range g.Edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		if len(deg) != q {
			return false, false, nil
		}
		for _, d := range deg {
			if d != q-1 {
				return false, false, nil
			}
		}
		return true, false, nil
	}
	red, err := hardness.BuildCliqueReduction(g, q)
	if err != nil {
		return false, false, err
	}
	res, err := opt.ZeroIOBigCtx(ctx, red.Graph, red.R, cfg.states(30_000_000))
	if err != nil {
		return false, false, err
	}
	if res.Feasible {
		// Sanity: replay the witness under the one-shot rules.
		in := pebble.MustInstance(red.Graph, pebble.OneShotSPP(red.R, 1))
		if _, err := pebble.Replay(in, opt.ZeroIOStrategy(red.Graph, res.Order)); err != nil {
			return false, false, fmt.Errorf("witness replay: %w", err)
		}
	}
	return res.Feasible, true, nil
}
