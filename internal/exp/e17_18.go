package exp

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/internal/hardness"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// E17AsyncRelaxation quantifies the Section 3.3 discussion of synchrony:
// evaluating each scheduler's strategy under the asynchronous relaxation
// (per-processor timelines, data-availability constraints) never makes it
// slower, and the gain stays within the factor-2 limit the paper cites
// from [29] — here measured per strategy across the zoo.
func E17AsyncRelaxation(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Section 3.3: synchronous vs asynchronous execution",
		Claim:   "MPP assumes synchronous moves; the improvement available from an asynchronous schedule is limited to a factor 2.",
		Columns: []string{"dag", "k", "scheduler", "sync cost", "async makespan", "sync/async"},
	}
	type workload struct {
		name string
		mk   func() *pebble.Instance
	}
	size := 6
	if cfg.Quick {
		size = 5
	}
	zoo := []workload{
		{"grid", func() *pebble.Instance {
			return pebble.MustInstance(gen.Grid2D(size, size), pebble.MPP(2, 4, 3))
		}},
		{"fft", func() *pebble.Instance {
			return pebble.MustInstance(gen.FFT(3), pebble.MPP(4, 4, 2))
		}},
		{"chains", func() *pebble.Instance {
			return pebble.MustInstance(gen.IndependentChains(4, 10), pebble.MPP(4, 2, 3))
		}},
		{"random", func() *pebble.Instance {
			g := gen.RandomDAG(40, 0.12, 3, 5)
			return pebble.MustInstance(g, pebble.MPP(3, g.MaxInDegree()+2, 3))
		}},
	}
	schedulers := []sched.Scheduler{
		sched.Baseline{},
		sched.Greedy{},
		sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"},
	}
	allSound := true
	withinTwo := true
	for _, w := range zoo {
		in := w.mk()
		bestCost := int64(-1)
		var bestRatio float64
		for _, s := range schedulers {
			strat, err := sched.ScheduleCtx(ctx, s, in)
			if err != nil {
				return nil, fmt.Errorf("E17 %s/%s: %w", w.name, s.Name(), err)
			}
			rep, err := pebble.Replay(in, strat)
			if err != nil {
				return nil, err
			}
			ms := pebble.AsyncMakespan(in, strat)
			if ms > rep.Cost {
				allSound = false
			}
			rt := float64(rep.Cost) / float64(ms)
			if bestCost == -1 || rep.Cost < bestCost {
				bestCost, bestRatio = rep.Cost, rt
			}
			t.AddRow(w.name, di(in.K), s.Name(), d64(rep.Cost), d64(ms), f2(rt))
		}
		if bestRatio > 2.0+1e-9 {
			withinTwo = false
		}
	}
	t.AddCheck("relaxation is sound", allSound,
		"the asynchronous makespan never exceeds the synchronous cost of the same strategy")
	t.AddCheck("factor-2 limit on good schedules", withinTwo,
		"the cheapest synchronous strategy per workload gains at most 2× from asynchrony, matching the bound the paper cites for optima")
	t.AddNote("the deliberately sequential Baseline can gain up to k× — the factor-2 statement concerns (near-)optimal schedules, where idle synchronous slots are already packed")
	return t, nil
}

// E18SurplusInapprox demonstrates Corollary 2: surplus cost (Definition 1)
// cannot be approximated to any finite factor. On the Theorem 2 reduction
// instances, a q-clique yields an MPP pebbling of surplus exactly 0, while
// its matched clique-free twin provably has surplus ≥ 1 (the exhaustive
// zero-I/O search rules out every perfect schedule) — so distinguishing
// surplus 0 from surplus > 0 already solves clique.
func E18SurplusInapprox(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Corollary 2: surplus-cost inapproximability",
		Claim:   "In MPP it is NP-hard to approximate the optimal surplus cost to any finite multiplicative factor (0 vs > 0 separation).",
		Columns: []string{"pair", "graph", "clique?", "surplus-0 schedule exists", "certified surplus"},
	}
	const q = 3
	pairs := e12Pairs()
	if cfg.Quick {
		pairs = pairs[:1]
	}
	allMatch := true
	for _, pair := range pairs {
		for _, side := range []struct {
			g   *hardness.UGraph
			tag string
		}{{pair.yes, "with-clique"}, {pair.no, "no-clique"}} {
			red, err := hardness.BuildCliqueReduction(side.g, q)
			if err != nil {
				return nil, err
			}
			// A k=1 MPP pebbling has surplus 0 iff it computes every node
			// exactly once with zero I/O — i.e. iff a zero-I/O one-shot
			// schedule exists.
			zres, zerr := opt.ZeroIOBigCtx(ctx, red.Graph, red.R, cfg.states(30_000_000))
			res, ok, err := zeroIOIn(t, fmt.Sprintf("E18 %s/%s", pair.name, side.tag), zres, zerr)
			if err != nil {
				return nil, err
			}
			if !ok {
				t.AddRow(pair.name, side.tag, boolMark(side.g.HasClique(q)),
					res.Verdict.String(), "—")
				continue
			}
			certified := ">= 1"
			if res.Feasible {
				// Convert the witness into an MPP strategy and certify
				// surplus 0 by replay under full MPP cost accounting.
				in := pebble.MustInstance(red.Graph, pebble.MPP(1, red.R, 4))
				rep, err := pebble.Replay(in, opt.ZeroIOStrategy(red.Graph, res.Order))
				if err != nil {
					return nil, err
				}
				sur := rep.Surplus(red.Graph.N(), 1)
				certified = f1(sur)
				if sur != 0 {
					allMatch = false
				}
			}
			if res.Feasible != side.g.HasClique(q) {
				allMatch = false
			}
			t.AddRow(pair.name, side.tag, boolMark(side.g.HasClique(q)),
				boolMark(res.Feasible), certified)
		}
	}
	t.AddCheck("surplus 0 ⟺ q-clique", allMatch,
		"surplus-0 MPP schedules exist exactly on the clique side of every matched pair; the clique-free twins are certified surplus ≥ 1 by exhaustive search")
	t.AddNote("the paper amplifies the gap to an additive n^(1-ε) via padding; the 0-vs-positive separation shown here is what makes any finite-factor approximation impossible")
	return t, nil
}
