package exp

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/bsp"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// E14HardClasses illustrates Lemma 2: MPP is NP-hard already on 2-layer
// DAGs and on in-trees. We cannot test NP-hardness directly; instead we
// measure the two observable consequences on exactly those classes: the
// exact solver's explored state space grows exponentially, and greedy
// leaves a real optimality gap even on these structurally trivial DAGs.
func E14HardClasses(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Lemma 2: NP-hard DAG classes",
		Claim:   "MPP is already NP-hard on 2-layer DAGs and on in-trees.",
		Columns: []string{"class", "n", "k", "exact OPT", "states explored", "greedy", "gap"},
	}
	type shape struct{ sources, sinks int }
	sizes := []shape{{3, 3}, {4, 3}, {4, 4}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	var twoLayerStates []int
	anyGap := false
	for _, sz := range sizes {
		g := gen.TwoLayerRandom(sz.sources, sz.sinks, 0.5, int64(sz.sources+sz.sinks))
		if !g.IsTwoLayer() {
			return nil, fmt.Errorf("E14: generator produced non-2-layer DAG")
		}
		in := pebble.MustInstance(g, pebble.MPP(2, g.MaxInDegree()+1, 3))
		res, ok, err := exactInCfg(ctx, cfg, t, in, e14Cfg(cfg))
		if err != nil {
			return nil, err
		}
		if !ok {
			t.AddRow("2-layer", di(g.N()), "2", "undecided", di(res.States), "—",
				bounds.FormatGap(res.LowerBound, res.Incumbent))
			continue
		}
		twoLayerStates = append(twoLayerStates, res.States)
		rep, err := sched.Run(sched.Greedy{}, in)
		if err != nil {
			return nil, err
		}
		if rep.Cost > res.Cost {
			anyGap = true
		}
		t.AddRow("2-layer", di(g.N()), "2", d64(res.Cost), di(res.States), d64(rep.Cost), f2(ratio(rep.Cost, res.Cost)))
	}
	trees := map[string]*dag.Graph{
		"intree-d2":   gen.BinaryInTree(2),
		"caterpillar": caterpillarInTree(8),
	}
	for name, g := range trees {
		if !g.IsInTree() {
			return nil, fmt.Errorf("E14: %s is not an in-tree", name)
		}
		in := pebble.MustInstance(g, pebble.MPP(2, 3, 3))
		res, ok, err := exactInCfg(ctx, cfg, t, in, e14Cfg(cfg))
		if err != nil {
			return nil, err
		}
		if !ok {
			t.AddRow("in-tree", di(g.N()), "2", "undecided", di(res.States), "—",
				bounds.FormatGap(res.LowerBound, res.Incumbent))
			continue
		}
		rep, err := sched.Run(sched.Greedy{}, in)
		if err != nil {
			return nil, err
		}
		if rep.Cost > res.Cost {
			anyGap = true
		}
		t.AddRow("in-tree", di(g.N()), "2", d64(res.Cost), di(res.States), d64(rep.Cost), f2(ratio(rep.Cost, res.Cost)))
	}
	grewFast := len(twoLayerStates) >= 2 &&
		twoLayerStates[len(twoLayerStates)-1] >= 4*twoLayerStates[0]
	for i := 1; i < len(twoLayerStates); i++ {
		if twoLayerStates[i] <= twoLayerStates[i-1] {
			grewFast = false
		}
	}
	t.AddCheck("state space explodes on 2-layer DAGs", grewFast,
		"explored exact-solver states grow steeply with size: %v", twoLayerStates)
	t.AddCheck("heuristics leave gaps on hard classes", anyGap,
		"greedy is strictly above the exact optimum on at least one instance of the NP-hard classes")
	return t, nil
}

// e14Cfg pins E14's exact runs to the bare compute floor without
// dominance pruning: the experiment's point is how fast the *raw* search
// space grows on the NP-hard classes, so the stronger default stack
// would measure the pruning instead of the hardness. (Partial rows still
// print brackets tightened by the max heuristic via exactInCfg.)
func e14Cfg(cfg Config) opt.Config {
	return opt.Config{MaxStates: cfg.states(30_000_000), Heuristic: opt.HeuristicFloor}
}

// caterpillarInTree builds an n-node in-tree shaped like a caterpillar:
// a spine v1←v2←…, each spine node with one extra leaf child.
func caterpillarInTree(n int) *dag.Graph {
	b := dag.NewBuilder("caterpillar")
	spineLen := n / 2
	spine := b.AddNodes(spineLen)
	for i := 1; i < spineLen; i++ {
		b.AddEdge(spine[i], spine[i-1])
	}
	for i := 0; i < n-spineLen; i++ {
		leaf := b.AddNode()
		b.AddEdge(leaf, spine[i%spineLen])
	}
	return b.MustBuild()
}

// E15BSPEquiv verifies the Section 3.3 equivalence: with r = ∞ (any
// r ≥ n), a BSP DAG schedule's analytic cost equals the replayed MPP cost
// of its mechanical translation, on a zoo of DAGs and parameters.
func E15BSPEquiv(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Section 3.3: MPP(r=∞) ≡ BSP DAG scheduling",
		Claim:   "With r = ∞ and minor adjustments, MPP becomes equivalent to DAG scheduling in the BSP model.",
		Columns: []string{"dag", "k", "g", "BSP cost (analytic)", "MPP replay cost", "equal"},
	}
	zoo := map[string]func() *dag.Graph{
		"fft":    func() *dag.Graph { return gen.FFT(3) },
		"grid":   func() *dag.Graph { return gen.Grid2D(5, 4) },
		"chains": func() *dag.Graph { return gen.IndependentChains(4, 6) },
		"random": func() *dag.Graph { return gen.RandomDAG(40, 0.15, 4, 21) },
	}
	allEq := true
	for name, mk := range zoo {
		if ctxDone(ctx, t, "E15 zoo") {
			return t, nil
		}
		g := mk()
		for _, k := range []int{2, 3} {
			for _, ioCost := range []int{1, 5} {
				s := bsp.LevelSchedule(g, k)
				if err := s.Validate(g); err != nil {
					return nil, err
				}
				want := s.Cost(g, ioCost)
				in := pebble.MustInstance(g, pebble.MPP(k, g.N()+1, ioCost))
				rep, err := pebble.Replay(in, s.Convert(g))
				if err != nil {
					return nil, err
				}
				eq := rep.Cost == want
				allEq = allEq && eq
				t.AddRow(name, di(k), di(ioCost), d64(want), d64(rep.Cost), boolMark(eq))
			}
		}
	}
	t.AddCheck("cost equivalence", allEq,
		"Σ_s(W_s + g·(h_out+h_in)) equals the replayed MPP cost for every schedule in the zoo")
	return t, nil
}

// E16EvictionAblation ablates the greedy scheduler's policy plugins
// (selection rule, tie-break, eviction) across workloads — motivating the
// design choice of making Lemma 4's greedy class fully parameterized.
func E16EvictionAblation(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Ablation: greedy policy choices",
		Claim:   "(design ablation, not a paper claim) The Lemma 4 greedy class is policy-parameterized; eviction and tie-breaking change costs materially.",
		Columns: []string{"dag", "policy", "cost", "io-actions", "vs best"},
	}
	type workload struct {
		name string
		g    *dag.Graph
		k    int
	}
	zg, _ := gen.Zipper(4, 24, 0)
	fft := gen.FFT(4)
	if cfg.Quick {
		fft = gen.FFT(3)
	}
	workloads := []workload{
		{"zipper", zg, 1},
		{"fft", fft, 2},
		{"grid", gen.Grid2D(6, 6), 2},
	}
	spread := false
	for _, w := range workloads {
		in := pebble.MustInstance(w.g, pebble.MPP(w.k, w.g.MaxInDegree()+2, 3))
		best := int64(-1)
		costs := map[string]*pebble.Report{}
		for _, gv := range greedyVariants() {
			rep, err := sched.RunCtx(ctx, gv, in)
			if err != nil {
				return nil, err
			}
			costs[gv.Name()] = rep
			if best == -1 || rep.Cost < best {
				best = rep.Cost
			}
		}
		worst := int64(0)
		for _, gv := range greedyVariants() {
			rep := costs[gv.Name()]
			if rep.Cost > worst {
				worst = rep.Cost
			}
			t.AddRow(w.name, gv.Name(), d64(rep.Cost), di(rep.IOActions), f2(ratio(rep.Cost, best)))
		}
		if worst > best {
			spread = true
		}
	}
	t.AddCheck("policies differ", spread,
		"at least one workload separates the greedy policy variants")
	return t, nil
}
