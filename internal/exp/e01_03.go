package exp

import (
	"context"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/proofs"
	"repro/internal/sched"
)

// E01Figure1 reproduces the Section 1 walkthrough on the Figure 1 DAG:
// the single-processor strategy with r = 3 (6 I/O operations, cost 21)
// and the two-processor strategy that halves the parallel steps and needs
// only the v5 handover (cost 12).
func E01Figure1(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E01",
		Title:   "Figure 1 walkthrough",
		Claim:   "On the example DAG, k=2 processors with r=3 each execute both subtrees in parallel, reducing compute and I/O steps by a factor 2, with one v5 handover through shared memory.",
		Columns: []string{"setting", "strategy", "cost", "io-moves", "compute-moves", "io-actions"},
	}
	g, ids := gen.Figure1()

	in1 := pebble.MustInstance(g, pebble.MPP(1, 3, 1))
	s1 := proofs.Figure1Single(in1, ids)
	rep1, err := pebble.Replay(in1, s1)
	if err != nil {
		return nil, err
	}
	t.AddRow("k=1 r=3 g=1", "paper walkthrough", d64(rep1.Cost), di(rep1.IOMoves), di(rep1.ComputeMoves), di(rep1.IOActions))

	in2 := pebble.MustInstance(g, pebble.MPP(2, 3, 1))
	s2 := proofs.Figure1Double(in2, ids)
	rep2, err := pebble.Replay(in2, s2)
	if err != nil {
		return nil, err
	}
	t.AddRow("k=2 r=3 g=1", "paper walkthrough", d64(rep2.Cost), di(rep2.IOMoves), di(rep2.ComputeMoves), di(rep2.IOActions))

	name1, best1, err := bestOf(ctx, t, in1, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("k=1 r=3 g=1", "best heuristic: "+name1, d64(best1.Cost), di(best1.IOMoves), di(best1.ComputeMoves), di(best1.IOActions))
	name2, best2, err := bestOf(ctx, t, in2, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("k=2 r=3 g=1", "best heuristic: "+name2, d64(best2.Cost), di(best2.IOMoves), di(best2.ComputeMoves), di(best2.IOActions))

	t.AddCheck("single-proc walkthrough", rep1.IOActions == 6 && rep1.Cost == 21,
		"6 I/O actions and cost 21 as narrated (got io=%d cost=%d)", rep1.IOActions, rep1.Cost)
	t.AddCheck("two-proc parallel win", rep2.ComputeMoves*2 >= rep1.ComputeMoves && rep2.Cost < rep1.Cost,
		"compute moves %d→%d (≈×2 reduction), cost %d→%d", rep1.ComputeMoves, rep2.ComputeMoves, rep1.Cost, rep2.Cost)
	t.AddCheck("handover through shared memory", rep2.IOMoves == 4,
		"2 subtree spills + write/read handover of v5 (got %d I/O moves)", rep2.IOMoves)
	return t, nil
}

// E02Lemma1 verifies the Lemma 1 sandwich n/k ≤ OPT ≤ (g(Δin+1)+1)·n on a
// DAG zoo, using the exact solver where feasible and the best heuristic
// otherwise, and confirms the Baseline scheduler realizes the upper bound
// argument.
func E02Lemma1(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E02",
		Title:   "Lemma 1: trivial cost bounds",
		Claim:   "For any MPP instance, n/k ≤ OPT ≤ (g·(Δin+1)+1)·n.",
		Columns: []string{"dag", "n", "k", "r", "g", "lower n/k", "cost", "via", "upper", "within"},
	}
	type inst struct {
		name string
		g    *dag.Graph
		k, r int
	}
	zoo := []inst{}
	add := func(name string, gr *dag.Graph, k, rExtra int) {
		zoo = append(zoo, inst{name, gr, k, gr.MaxInDegree() + 1 + rExtra})
	}
	size := 6
	if cfg.Quick {
		size = 4
	}
	add("grid", gen.Grid2D(size, size), 2, 1)
	add("fft", gen.FFT(3), 2, 2)
	add("intree", gen.BinaryInTree(4), 3, 1)
	add("pyramid", gen.Pyramid(size), 2, 2)
	add("chains", gen.IndependentChains(4, 8), 4, 1)
	zg, _ := gen.Zipper(3, 12, 0)
	add("zipper", zg, 2, 0)
	add("random", gen.RandomDAG(36, 0.15, 4, 7), 3, 2)
	add("tiny-exact", gen.RandomDAG(7, 0.3, 2, 9), 2, 1)

	allWithin := true
	baselineAtBound := true
	for _, z := range zoo {
		ioCost := 3
		in := pebble.MustInstance(z.g, pebble.MPP(z.k, z.r, ioCost))
		lo, hi := bounds.Lemma1Lower(in), bounds.Lemma1Upper(in)
		var cost int64
		via := ""
		if z.g.N() <= 8 {
			res, ok, err := exactIn(ctx, cfg, t, in, 4_000_000)
			if err != nil {
				return nil, err
			}
			if ok {
				cost, via = res.Cost, "exact"
			}
		}
		if via == "" {
			// Too big for the exact solver, or the exact run stopped
			// early: fall back to the heuristic portfolio.
			name, rep, err := bestOf(ctx, t, in, nil)
			if err != nil {
				return nil, err
			}
			cost, via = rep.Cost, name
		}
		within := cost >= lo && cost <= hi
		allWithin = allWithin && within
		// Baseline must stay at or below the analytic upper bound.
		bl, err := sched.Run(sched.Baseline{}, in)
		if err != nil {
			return nil, err
		}
		if bl.Cost > hi {
			baselineAtBound = false
		}
		t.AddRow(z.name, di(z.g.N()), di(z.k), di(z.r), di(ioCost), d64(lo), d64(cost), via, d64(hi), boolMark(within))
	}
	t.AddCheck("sandwich holds", allWithin, "every measured cost lies in [n/k, (g(Δin+1)+1)n]")
	t.AddCheck("baseline realizes upper-bound argument", baselineAtBound,
		"the Lemma 1 strategy never exceeds the analytic upper bound")
	return t, nil
}

// E03GreedyUpper verifies Lemma 3: any non-idle greedy schedule is within
// a 2(g(Δin+1)+1) factor of the optimum. On small instances the ratio is
// taken against the exact optimum, elsewhere against the n/k lower bound
// (which only makes the test stricter for the claim's direction).
func E03GreedyUpper(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E03",
		Title:   "Lemma 3: greedy upper bound",
		Claim:   "Any non-idle greedy pebbling is a 2·(g·(Δin+1)+1)-approximation of the optimum.",
		Columns: []string{"dag", "k", "g", "greedy", "reference", "kind", "ratio", "factor bound"},
	}
	type inst struct {
		name string
		g    *dag.Graph
		k    int
	}
	zoo := []inst{
		{"tiny-random", gen.RandomDAG(7, 0.3, 2, 3), 2},
		{"tiny-grid", gen.Grid2D(2, 3), 1},
		{"grid", gen.Grid2D(5, 5), 2},
		{"fft", gen.FFT(3), 2},
		{"intree", gen.BinaryInTree(4), 2},
		{"chains", gen.IndependentChains(3, 9), 3},
	}
	if !cfg.Quick {
		zoo = append(zoo,
			inst{"fft16", gen.FFT(4), 4},
			inst{"random", gen.RandomDAG(60, 0.1, 4, 5), 3},
		)
	}
	allOK := true
	for _, z := range zoo {
		ioCost := 2
		r := z.g.MaxInDegree() + 2
		in := pebble.MustInstance(z.g, pebble.MPP(z.k, r, ioCost))
		rep, err := sched.Run(sched.Greedy{}, in)
		if err != nil {
			return nil, err
		}
		var ref int64
		kind := ""
		if z.g.N() <= 8 {
			res, ok, err := exactIn(ctx, cfg, t, in, 4_000_000)
			if err != nil {
				return nil, err
			}
			if ok {
				ref, kind = res.Cost, "exact OPT"
			}
		}
		if kind == "" {
			// No exact optimum in time: the n/k bound is a weaker
			// reference, which only makes the claim's check stricter.
			ref, kind = bounds.Lemma1Lower(in), "n/k bound"
		}
		factor := 2 * (float64(ioCost)*float64(z.g.MaxInDegree()+1) + 1)
		rt := ratio(rep.Cost, ref)
		ok := rt <= factor
		allOK = allOK && ok
		t.AddRow(z.name, di(z.k), di(ioCost), d64(rep.Cost), d64(ref), kind, f2(rt), f1(factor))
	}
	t.AddCheck("greedy within Lemma 3 factor", allOK,
		"greedy/reference ≤ 2(g(Δin+1)+1) on every instance")
	return t, nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
