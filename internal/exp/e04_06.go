package exp

import (
	"context"
	"math"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/proofs"
	"repro/internal/sched"
)

// greedyVariants is the policy sweep standing in for Lemma 4's "any such
// greedy" quantifier.
func greedyVariants() []sched.Greedy {
	return []sched.Greedy{
		{Select: sched.SelectCount, Tie: sched.TieLowID, Evict: sched.EvictLRU},
		{Select: sched.SelectCount, Tie: sched.TieHighID, Evict: sched.EvictLRU},
		{Select: sched.SelectCount, Tie: sched.TieLowID, Evict: sched.EvictFewestUses},
		{Select: sched.SelectCount, Tie: sched.TieHighID, Evict: sched.EvictFewestUses},
		{Select: sched.SelectFraction, Tie: sched.TieLowID, Evict: sched.EvictLRU},
		{Select: sched.SelectFraction, Tie: sched.TieHighID, Evict: sched.EvictFewestUses},
	}
}

// E04GreedyTraps reproduces Lemma 4: families where every greedy variant
// is asymptotically worse than the optimum — by ≈ Δin−1 ≥ Δin/5−1 on the
// tail-less zipper with g = d (greedy reloads what the optimum cheaply
// recomputes), and by ≈ 2g/3+1 on the bait gadget (greedy computes every
// bait eagerly and pays 2g per block to park it).
func E04GreedyTraps(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E04",
		Title:   "Lemma 4: greedy adversarial families",
		Claim:   "There are DAGs where any most-red-predecessors greedy is worse than OPT by ≈ Δin/5−1, and others where it is worse by ≈ 2g/3+1.",
		Columns: []string{"family", "param", "worst greedy", "min greedy", "reference", "ratio", "lemma factor"},
	}
	n0 := 40
	m := 30
	if cfg.Quick {
		n0, m = 16, 10
	}

	// Family A: tail-less zipper, g = d, r = d+2 — Δin-factor trap.
	deltaOK := true
	var lastRatioA float64
	for _, d := range []int{2, 4, 6} {
		g, ids := gen.Zipper(d, n0, 0)
		in := pebble.MustInstance(g, pebble.MPP(1, d+2, d))
		ref, err := pebble.Replay(in, proofs.ZipperRecompute(in, ids))
		if err != nil {
			return nil, err
		}
		worst, least := int64(0), int64(math.MaxInt64)
		for _, gv := range greedyVariants() {
			rep, err := sched.RunCtx(ctx, gv, in)
			if err != nil {
				return nil, err
			}
			if rep.Cost > worst {
				worst = rep.Cost
			}
			if rep.Cost < least {
				least = rep.Cost
			}
		}
		rt := ratio(least, ref.Cost) // least: the claim quantifies over ALL greedy variants
		lastRatioA = rt
		lemma := float64(d+1)/5 - 1 // Δin = d+1
		if rt < lemma {
			deltaOK = false
		}
		t.AddRow("zipper (Δin trap)", "d="+di(d)+" g="+di(d), d64(worst), d64(least), d64(ref.Cost), f2(rt), f2(lemma))
	}
	t.AddCheck("Δin-factor trap", deltaOK && lastRatioA > 2,
		"every greedy variant is ≥ Δin/5−1 and ≫ 1 worse than the recompute optimum (last ratio %.2f)", lastRatioA)

	// Family B: bait gadget, d = 2, r = d+5 — g-factor trap. Our gadget
	// spends 4 compute steps per block (the paper's unpublished version
	// manages 3, giving 2g/3+1); its own asymptote is therefore 1 + g/2 —
	// the same Θ(g) separation.
	gOK := true
	var ratiosB []float64
	var lastAsymB float64
	for _, ioCost := range []int{2, 4, 8} {
		g, ids := gen.GreedyTrapG(2, m)
		in := pebble.MustInstance(g, pebble.MPP(1, 2+5, ioCost))
		ref, err := pebble.Replay(in, proofs.TrapGOptimal(in, ids))
		if err != nil {
			return nil, err
		}
		worst, least := int64(0), int64(math.MaxInt64)
		for _, gv := range greedyVariants() {
			rep, err := sched.RunCtx(ctx, gv, in)
			if err != nil {
				return nil, err
			}
			if rep.Cost > worst {
				worst = rep.Cost
			}
			if rep.Cost < least {
				least = rep.Cost
			}
		}
		rt := ratio(least, ref.Cost)
		ratiosB = append(ratiosB, rt)
		lastAsymB = 1 + float64(ioCost)/2
		if rt < 0.7*lastAsymB {
			gOK = false
		}
		t.AddRow("bait gadget (g trap)", "g="+di(ioCost)+" m="+di(m), d64(worst), d64(least), d64(ref.Cost),
			f2(rt), f2(lastAsymB)+" (paper: "+f2(1+2*float64(ioCost)/3)+")")
	}
	for i := 1; i < len(ratiosB); i++ {
		if ratiosB[i] <= ratiosB[i-1] {
			gOK = false
		}
	}
	t.AddCheck("g-factor trap", gOK && ratiosB[len(ratiosB)-1] > 2,
		"every greedy variant is Θ(g) worse than the interleaved optimum and the gap grows with g (last ratio %.2f vs asymptote %.2f)",
		ratiosB[len(ratiosB)-1], lastAsymB)
	t.AddNote("'min greedy' is the best policy in the sweep — the lemma quantifies over all greedy variants, so the ratio uses it")
	return t, nil
}

// E05LowerBounds instantiates Lemma 5 / Corollary 1: the Hong–Kung FFT
// bound and the Kwasniewski MMM bound, translated to MPP, against the
// measured I/O of our best strategies. Measured I/O must upper-bound the
// translated lower bound shape (constants differ; the check allows the
// classic bounds' constant slack).
func E05LowerBounds(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E05",
		Title:   "Lemma 5 / Corollary 1: translated I/O lower bounds",
		Claim:   "An SPP I/O lower bound L for fast memory k·r gives an MPP I/O bound L/k and a cost bound g·L/k + n/k (FFT: Hong–Kung; MMM: Kwasniewski et al.).",
		Columns: []string{"workload", "n", "k", "r", "measured io-moves", "bound L/k", "meas/bound", "measured cost", "cost bound"},
	}
	logNs := []int{3, 4, 5}
	mmNs := []int{2, 3, 4}
	if cfg.Quick {
		logNs = []int{3, 4}
		mmNs = []int{2, 3}
	}
	ioCost := 2
	fftOK, mmOK := true, true
	var fftRatios []float64
	for _, logN := range logNs {
		n := 1 << logN
		g := gen.FFT(logN)
		for _, k := range []int{1, 2} {
			r := 4
			in := pebble.MustInstance(g, pebble.MPP(k, r, ioCost))
			_, rep, err := bestOf(ctx, t, in, nil)
			if err != nil {
				return nil, err
			}
			bound := bounds.Lemma5IO(bounds.HongKungFFT(n, r*k), k)
			costBound := bounds.FFTCostLowerBound(n, k, r, ioCost)
			rt := float64(rep.IOMoves) / bound
			fftRatios = append(fftRatios, rt)
			t.AddRow("fft", di(g.N()), di(k), di(r), di(rep.IOMoves), f1(bound), f2(rt),
				d64(rep.Cost), f1(costBound))
		}
	}
	// Shape check: measured I/O grows at least like the bound across n
	// (ratios stay within a modest band rather than collapsing).
	for _, rt := range fftRatios {
		if rt < 0.1 {
			fftOK = false
		}
	}
	var mmRatios []float64
	for _, n := range mmNs {
		g, mmIDs := gen.MatMulWithIDs(n)
		for _, k := range []int{1, 2} {
			r := 6 // ≥ 3b²+2 at b=1, so the tiled schedule applies
			in := pebble.MustInstance(g, pebble.MPP(k, r, ioCost))
			extra := map[string]*pebble.Strategy{}
			if k == 1 {
				extra["tiled(proof)"] = proofs.MatMulTiled(in, mmIDs)
			}
			_, rep, err := bestOf(ctx, t, in, extra)
			if err != nil {
				return nil, err
			}
			bound := bounds.Lemma5IO(bounds.KwasniewskiMMM(n, r*k), k)
			costBound := bounds.MMMCostLowerBound(n, k, r, ioCost)
			rt := float64(rep.IOMoves) / bound
			mmRatios = append(mmRatios, rt)
			t.AddRow("matmul", di(g.N()), di(k), di(r), di(rep.IOMoves), f1(bound), f2(rt),
				d64(rep.Cost), f1(costBound))
		}
	}
	for _, rt := range mmRatios {
		if rt < 0.1 {
			mmOK = false
		}
	}
	t.AddCheck("FFT bound shape", fftOK,
		"measured I/O tracks n·log n/log(rk)/k within constant factors across n and k")
	t.AddCheck("MMM bound shape", mmOK,
		"measured I/O tracks (2n³/√(rk)+n²)/k within constant factors across n and k")
	t.AddNote("the classic bounds omit leading constants; ratios are expected to sit in a constant band, not at exactly 1")
	t.AddNote("matmul k=1 rows include the blocked schedule of proofs.MatMulTiled, whose I/O volume 2n³/Θ(√r)+n² realizes the bound's shape")
	return t, nil
}

// E06Tightness demonstrates Lemma 6: instances where the Corollary 1
// bound g·L/k + n/k is matched up to a constant — k independent FFT
// copies, each pebbled by one processor.
func E06Tightness(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E06",
		Title:   "Lemma 6: tightness of the translated bound",
		Claim:   "There are DAGs with OPT ≤ g·L/k + n/k + O(1), i.e. the Corollary 1 lower bound is essentially achievable.",
		Columns: []string{"copies k", "n", "r", "g", "measured cost", "g·L/k + n/k", "ratio"},
	}
	logN := 4
	if cfg.Quick {
		logN = 3
	}
	ioCost := 2
	allTight := true
	for _, k := range []int{1, 2, 4} {
		one := gen.FFT(logN)
		parts := make([]*dag.Graph, k)
		for i := range parts {
			parts[i] = one
		}
		g, _ := dag.Union("fft-copies", parts...)
		r := 4
		in := pebble.MustInstance(g, pebble.MPP(k, r, ioCost))
		_, rep, err := bestOf(ctx, t, in, nil)
		if err != nil {
			return nil, err
		}
		// L is the SPP(k·r) bound for the whole k-copy DAG: k copies of
		// the single-copy bound (the partition argument applies per copy).
		L := float64(k) * bounds.HongKungFFT(1<<logN, r*k)
		bound := bounds.Corollary1Cost(L, g.N(), k, ioCost)
		rt := float64(rep.Cost) / bound
		if rt > 12 { // constant-factor band
			allTight = false
		}
		t.AddRow(di(k), di(g.N()), di(r), di(ioCost), d64(rep.Cost), f1(bound), f2(rt))
	}
	t.AddCheck("bound achieved up to constants", allTight,
		"measured cost stays within a constant factor of g·L/k + n/k as k grows")
	return t, nil
}
