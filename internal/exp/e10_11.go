package exp

import (
	"context"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/proofs"
)

// E10Superlinear reproduces Lemma 10 and the Section 4 zipper discussion:
// in the practical comparison (same r per processor), doubling the
// processors on the zipper yields a speedup approaching (Δin−1)/2 — i.e.
// superlinear in k for large d.
func E10Superlinear(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Lemma 10: superlinear speedup (zipper)",
		Claim:   "In the practical case, OPT(1)/OPT(2) can reach (Δin−1)/2 − ε: k=2 turns the zipper's d·g+1 per-node cost into 2g+1.",
		Columns: []string{"d", "g", "cost(1)", "cost(2)", "speedup", "(Δin−1)/2", "per-node 1p", "per-node 2p"},
	}
	n0 := 40
	if cfg.Quick {
		n0 = 16
	}
	ioCost := 4
	growing := true
	var speedups []float64
	for _, d := range []int{4, 8, 12} {
		g, ids := gen.Zipper(d, n0, 2*ioCost)
		in1 := pebble.MustInstance(g, pebble.MPP(1, d+2, ioCost))
		_, rep1, err := bestOf(ctx, t, in1, map[string]*pebble.Strategy{
			"swap(proof)": proofs.ZipperSwap(in1, ids),
		})
		if err != nil {
			return nil, err
		}
		in2 := pebble.MustInstance(g, pebble.MPP(2, d+2, ioCost))
		_, rep2, err := bestOf(ctx, t, in2, map[string]*pebble.Strategy{
			"parallel(proof)": proofs.ZipperParallel(in2, ids),
		})
		if err != nil {
			return nil, err
		}
		sp := ratio(rep1.Cost, rep2.Cost)
		speedups = append(speedups, sp)
		perNode1 := float64(rep1.Cost) / float64(n0)
		perNode2 := float64(rep2.Cost) / float64(n0)
		t.AddRow(di(d), di(ioCost), d64(rep1.Cost), d64(rep2.Cost), f2(sp), f1(float64(d)/2), f1(perNode1), f1(perNode2))
	}
	for i := 1; i < len(speedups); i++ {
		if speedups[i] <= speedups[i-1] {
			growing = false
		}
	}
	t.AddCheck("superlinear for k=2", speedups[len(speedups)-1] > 2,
		"doubling processors speeds up by %.2f ≫ 2 at d=12", speedups[len(speedups)-1])
	t.AddCheck("speedup grows with Δin", growing,
		"speedup increases with d, tracking (Δin−1)/2 as the lemma predicts")
	return t, nil
}

// E11IOJumps reproduces the Section 5 observations: the optimal number of
// I/O steps can jump from 0 to Θ(n) when going from 1 to 2 processors
// (fair zipper) and, more surprisingly, from Θ(n) to 0 (shared-prefix
// broom, where one processor's recomputation replaces all communication).
func E11IOJumps(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Section 5: I/O-count jumps in both directions",
		Claim:   "DAGs exist with OPT_IO(1)=0 but OPT_IO(2)=Θ(n), and with OPT_IO(1)=Θ(n) but OPT_IO(2)=0.",
		Columns: []string{"gadget", "k", "r", "best cost", "io-actions of best", "via"},
	}
	// Direction 1: zipper, fair split. r0 = 2d+4 holds both groups at
	// k=1 (zero I/O); at k=2 each processor holds one group and the
	// chain is communicated — Θ(n) I/O and still cheaper than any
	// no-I/O alternative (recomputation costs d+1 > 2g+1 per node).
	d, n0, ioCost := 8, 30, 3
	if cfg.Quick {
		n0 = 14
	}
	g1, ids1 := gen.Zipper(d, n0, 0)
	r0 := 2*d + 4
	inA1 := pebble.MustInstance(g1, pebble.MPP(1, r0, ioCost))
	nameA1, repA1, err := bestOf(ctx, t, inA1, map[string]*pebble.Strategy{
		"ample(proof)": proofs.ZipperAmple(inA1, ids1),
	})
	if err != nil {
		return nil, err
	}
	inA2 := pebble.MustInstance(g1, pebble.MPP(2, r0/2, ioCost))
	nameA2, repA2, err := bestOf(ctx, t, inA2, map[string]*pebble.Strategy{
		"parallel(proof)":  proofs.ZipperParallel(inA2, ids1),
		"recompute(proof)": zipperRecomputeAs(inA2, ids1),
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("zipper (fair)", "1", di(r0), d64(repA1.Cost), di(repA1.IOActions), nameA1)
	t.AddRow("zipper (fair)", "2", di(r0/2), d64(repA2.Cost), di(repA2.IOActions), nameA2)
	t.AddCheck("I/O jumps up 0 → Θ(n)", repA1.IOActions == 0 && repA2.IOActions >= n0,
		"k=1 best uses %d I/O, k=2 best uses %d ≥ n0=%d", repA1.IOActions, repA2.IOActions, n0)

	// Direction 2: shared-prefix broom. At k=1 the best strategy stores
	// and reloads each shared value (Θ(t) I/O, cheaper than recomputing
	// length-(2g+1) prefixes); at k=2 both processors recompute every
	// prefix privately in lock-step and no I/O remains.
	tt, stride := 8, 3
	if cfg.Quick {
		tt = 4
	}
	L := 2*ioCost + 1
	g2, ids2 := gen.SharedPrefixBroom(tt, stride, L)
	inB1 := pebble.MustInstance(g2, pebble.MPP(1, 3, ioCost))
	nameB1, repB1, err := bestOf(ctx, t, inB1, map[string]*pebble.Strategy{
		"serial(proof)": proofs.BroomSerial(inB1, ids2),
	})
	if err != nil {
		return nil, err
	}
	inB2 := pebble.MustInstance(g2, pebble.MPP(2, 3, ioCost))
	nameB2, repB2, err := bestOf(ctx, t, inB2, map[string]*pebble.Strategy{
		"parallel-recompute(proof)": proofs.BroomParallel(inB2, ids2),
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("broom", "1", "3", d64(repB1.Cost), di(repB1.IOActions), nameB1)
	t.AddRow("broom", "2", "3", d64(repB2.Cost), di(repB2.IOActions), nameB2)
	t.AddCheck("I/O jumps down Θ(n) → 0", repB1.IOActions >= tt && repB2.IOActions == 0,
		"k=1 best uses %d I/O (≥ t=%d), k=2 best uses %d (recomputation hides inside parallel steps)",
		repB1.IOActions, tt, repB2.IOActions)

	// Exact confirmation on a miniature broom that the k=1 optimum truly
	// needs I/O while the k=2 optimum does not (skipped in quick mode for
	// time).
	if !cfg.Quick {
		tg, tids := gen.SharedPrefixBroom(2, 1, 2*2+1)
		tIn1 := pebble.MustInstance(tg, pebble.MPP(1, 3, 2))
		res1, ok, err := exactIn(ctx, cfg, t, tIn1, 6_000_000)
		if err != nil {
			return nil, err
		}
		if ok {
			// Zero-I/O single-processor alternative: recompute prefixes.
			// Compare exact OPT against the crafted I/O strategy cost.
			crafted, err2 := pebble.Replay(tIn1, proofs.BroomSerial(tIn1, tids))
			if err2 != nil {
				return nil, err2
			}
			t.AddCheck("exact miniature k=1 optimum uses I/O-level cost", res1.Cost <= crafted.Cost,
				"exact OPT(1)=%d ≤ crafted I/O strategy %d", res1.Cost, crafted.Cost)
		}
	}
	return t, nil
}

// zipperRecomputeAs adapts the single-processor recompute strategy for use
// as a k≥1 alternative (other processors idle).
func zipperRecomputeAs(in *pebble.Instance, ids *gen.ZipperIDs) *pebble.Strategy {
	return proofs.ZipperRecompute(in, ids)
}
