package exp

import (
	"context"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode;
// each must complete and every shape check must pass. RunSafe is the
// production entry point, so panic isolation is exercised too.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := RunSafe(context.Background(), e, Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.Partial {
				t.Errorf("%s unexpectedly partial without any budget: %v", e.ID, tab.Notes)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID %q ≠ experiment ID %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			if len(tab.Checks) == 0 {
				t.Errorf("%s has no shape checks", e.ID)
			}
			for _, c := range tab.Checks {
				if !c.Pass {
					t.Errorf("%s check %q failed: %s", e.ID, c.Name, c.Detail)
				}
			}
		})
	}
}

func TestRegistryAndByID(t *testing.T) {
	reg := Registry()
	if len(reg) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, ok := ByID("e05"); !ok {
		t.Error("ByID case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID found a ghost")
	}
}

func TestRenderers(t *testing.T) {
	tab := &Table{
		ID: "EXX", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddCheck("chk", true, "fine %d", 42)
	tab.AddNote("note %s", "here")
	var txt, md strings.Builder
	Render(&txt, tab)
	RenderMarkdown(&md, tab)
	for _, want := range []string{"EXX", "PASS", "fine 42", "note here"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text render missing %q", want)
		}
	}
	for _, want := range []string{"## EXX", "| a | bb |", "✅", "**chk**"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown render missing %q", want)
		}
	}
	if !tab.Pass() {
		t.Error("Pass() false with passing checks")
	}
	tab.AddCheck("bad", false, "nope")
	if tab.Pass() {
		t.Error("Pass() true with failing check")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{ID: "EXX", Columns: []string{"a", "b"}}
	tab.AddRow("1", "x,y") // comma must be quoted
	var b strings.Builder
	if err := RenderCSV(&b, tab); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}
