package exp

import (
	"context"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// E19Sequentialize executes the simulation argument behind Lemma 5: any
// k-processor pebbling can be replayed by a single processor with fast
// memory k·r, turning each parallel move into at most k sequential
// single-action moves. We run the mechanical transform
// (pebble.Sequentialize) on real scheduler output across the zoo and
// verify the two properties the proof needs: the sequential strategy is
// valid for (k·r)-memory SPP, and its I/O move count is at most k times
// the parallel I/O move count.
func E19Sequentialize(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "Lemma 5: the k-to-1 simulation, executed",
		Claim:   "An MPP pebbling with k processors of memory r simulates on one processor with memory k·r using at most k sequential rules per parallel rule — the transfer that turns SPP I/O lower bounds into MPP bounds.",
		Columns: []string{"dag", "k", "parallel io-moves", "sequential io-moves", "ratio", "≤ k"},
	}
	type inst struct {
		name string
		mk   func() *pebble.Instance
	}
	size := 5
	if cfg.Quick {
		size = 4
	}
	zoo := []inst{
		{"fft", func() *pebble.Instance {
			return pebble.MustInstance(gen.FFT(3), pebble.MPP(2, 4, 2))
		}},
		{"grid", func() *pebble.Instance {
			return pebble.MustInstance(gen.Grid2D(size, size), pebble.MPP(4, 4, 3))
		}},
		{"zipper", func() *pebble.Instance {
			g, _ := gen.Zipper(4, 16, 0)
			return pebble.MustInstance(g, pebble.MPP(2, 6, 3))
		}},
		{"random", func() *pebble.Instance {
			g := gen.RandomDAG(30, 0.15, 3, 9)
			return pebble.MustInstance(g, pebble.MPP(3, g.MaxInDegree()+2, 2))
		}},
	}
	allOK := true
	for _, z := range zoo {
		in := z.mk()
		strat, err := sched.ScheduleCtx(ctx, sched.Greedy{}, in)
		if err != nil {
			return nil, err
		}
		parRep, err := pebble.Replay(in, strat)
		if err != nil {
			return nil, err
		}
		seq := pebble.Sequentialize(in, strat)
		seqIn, err := pebble.NewInstance(in.Graph, pebble.Params{
			K: 1, R: in.K * in.R, G: in.G, ComputeCost: in.ComputeCost,
		})
		if err != nil {
			return nil, err
		}
		seqRep, err := pebble.Replay(seqIn, seq)
		if err != nil {
			return nil, err // the simulation must be valid — this is the lemma
		}
		ok := seqRep.IOMoves <= in.K*parRep.IOMoves
		allOK = allOK && ok
		rt := 0.0
		if parRep.IOMoves > 0 {
			rt = float64(seqRep.IOMoves) / float64(parRep.IOMoves)
		}
		t.AddRow(z.name, di(in.K), di(parRep.IOMoves), di(seqRep.IOMoves), f2(rt), boolMark(ok))
	}
	t.AddCheck("simulation valid and k-bounded", allOK,
		"every sequentialized strategy replays under SPP(k·r) with at most k sequential I/O moves per parallel one")
	return t, nil
}
