// Package exp is the experiment harness: one experiment per figure and
// per quantitative lemma of the paper, each regenerating the construction,
// running schedulers / proof strategies / exact solvers, and checking that
// the claimed shape (who wins, by what factor, where crossovers fall)
// holds. cmd/mppexp renders the tables recorded in EXPERIMENTS.md; the
// root bench_test.go exposes each experiment as a benchmark.
package exp

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/opt"
	"repro/internal/pebble"
	"repro/internal/sched"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks instance sizes so the whole suite runs in seconds
	// (used by tests); full mode is the default for cmd/mppexp.
	Quick bool
	// Timeout bounds one experiment's wall-clock time (0 = unbounded).
	// RunSafe applies it; an expired deadline yields a partial table, not
	// an error.
	Timeout time.Duration
	// MaxStates caps each exact-solver call's explored states, overriding
	// the experiment's built-in budget (0 = keep the built-in budget).
	MaxStates int
	// Async switches every exact-solver call to opt.ModeAsync: same
	// proven optima, faster multicore wall-clock, but States/Pruned and
	// witness traces stop being run-to-run deterministic (see DESIGN.md
	// §6). mppexp -async sets it.
	Async bool
	// Cache, when non-nil, memoizes every exact-solver call behind its
	// instance fingerprint (opt.SolveCached): experiments sharing
	// instances — and repeated suite runs against a file-backed cache —
	// skip re-searching. mppexp -cache sets it.
	Cache *opt.SolveCache
}

// solver applies the config's solver-wide toggles (currently just the
// async engine mode) on top of an experiment's own opt.Config. Every
// exact call in the suite funnels through exactInCfg, which applies it.
func (cfg Config) solver(ocfg opt.Config) opt.Config {
	if cfg.Async {
		ocfg.Mode = opt.ModeAsync
	}
	return ocfg
}

// states resolves a solver call's state budget: the config override when
// set, else the experiment's default for that call.
func (cfg Config) states(def int) int {
	if cfg.MaxStates > 0 {
		return cfg.MaxStates
	}
	return def
}

// Check is one verified claim inside an experiment.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Table is an experiment's rendered result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]string
	Checks  []Check
	Notes   []string
	// Partial marks that at least one solver call inside the experiment
	// stopped early (budget, deadline, or cancellation), so the recorded
	// rows/checks cover only what was decided in time. A partial table is
	// a degraded result, not a failure: Pass() still reflects the checks
	// that did run.
	Partial bool
}

// MarkPartial records an early-stopped stage: the table is flagged
// Partial and the stop reason is kept as a note.
func (t *Table) MarkPartial(stage string, err error) {
	t.Partial = true
	t.AddNote("partial: %s stopped early: %v", stage, err)
}

// Pass reports whether every check passed.
func (t *Table) Pass() bool {
	for _, c := range t.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddCheck records a shape check.
func (t *Table) AddCheck(name string, pass bool, format string, args ...any) {
	t.Checks = append(t.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// AddNote appends a free-form note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Experiment regenerates one paper artifact. Run must honor ctx: when the
// deadline passes mid-experiment, it returns the table built so far with
// Partial set (via the exactIn/zeroIO helpers) rather than an error.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, cfg Config) (*Table, error)
}

// RunSafe executes one experiment with the config's per-experiment
// deadline applied and panics isolated: a panicking experiment becomes an
// error identifying the experiment, never a crashed process. This is the
// entry point cmd/mppexp and the tests use.
func RunSafe(ctx context.Context, e Experiment, cfg Config) (t *Table, err error) {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("exp: %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(ctx, cfg)
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		{"E01", "Figure 1 walkthrough", E01Figure1},
		{"E02", "Lemma 1: trivial cost bounds", E02Lemma1},
		{"E03", "Lemma 3: greedy upper bound", E03GreedyUpper},
		{"E04", "Lemma 4: greedy adversarial families", E04GreedyTraps},
		{"E05", "Lemma 5 / Corollary 1: translated I/O lower bounds", E05LowerBounds},
		{"E06", "Lemma 6: tightness of the translated bound", E06Tightness},
		{"E07", "Lemma 7: fair-comparison speedup limit", E07FairSpeedup},
		{"E08", "Lemma 8: fair-comparison cost blowup", E08FairBlowup},
		{"E09", "Lemma 9: non-monotonicity in k", E09NonMonotone},
		{"E10", "Lemma 10: superlinear speedup (zipper)", E10Superlinear},
		{"E11", "Section 5: I/O-count jumps in both directions", E11IOJumps},
		{"E12", "Theorem 2 / Figures 3-4: clique reduction", E12CliqueReduction},
		{"E13", "Theorem 1 / Lemma 11: vertex-cover coupling", E13VertexCover},
		{"E14", "Lemma 2: NP-hard DAG classes", E14HardClasses},
		{"E15", "Section 3.3: MPP(r=∞) ≡ BSP DAG scheduling", E15BSPEquiv},
		{"E16", "Ablation: greedy policy choices", E16EvictionAblation},
		{"E17", "Section 3.3: sync vs async execution", E17AsyncRelaxation},
		{"E18", "Corollary 2: surplus-cost inapproximability", E18SurplusInapprox},
		{"E19", "Lemma 5: the k-to-1 simulation, executed", E19Sequentialize},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render writes the table as aligned text.
func Render(w io.Writer, t *Table) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, c := range t.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// RenderMarkdown writes the table as GitHub-flavored markdown (used to
// regenerate EXPERIMENTS.md).
func RenderMarkdown(w io.Writer, t *Table) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "**Paper claim.** %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, c := range t.Checks {
		mark := "✅"
		if !c.Pass {
			mark = "❌"
		}
		fmt.Fprintf(w, "- %s **%s** — %s\n", mark, c.Name, c.Detail)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "- note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// heuristics returns the scheduler portfolio used when "best found
// strategy" stands in for OPT at sizes the exact solver cannot reach.
func heuristics() []sched.Scheduler {
	return []sched.Scheduler{
		sched.Greedy{Select: sched.SelectCount, Tie: sched.TieLowID, Evict: sched.EvictLRU},
		sched.Greedy{Select: sched.SelectCount, Tie: sched.TieHighID, Evict: sched.EvictFewestUses},
		sched.Greedy{Select: sched.SelectFraction, Tie: sched.TieLowID, Evict: sched.EvictLRU},
		sched.Partitioned{Assign: sched.AssignAllToOne, AssignName: "one"},
		sched.Partitioned{Assign: sched.AssignComponents, AssignName: "components"},
		sched.Partitioned{Assign: sched.AssignLevelRoundRobin, AssignName: "levels"},
		sched.Partitioned{Assign: sched.AssignTopoBlocks, AssignName: "blocks"},
	}
}

// bestOf runs the heuristic portfolio concurrently on a pool of at most
// GOMAXPROCS goroutines (the schedulers share nothing but the read-only
// instance), considers any extra pre-built strategies, post-optimizes
// the winner with sched.Improve, and returns the name and report of the
// cheapest valid result. The pool is bounded so that experiment-level
// concurrency (mppexp -j) multiplied by the portfolio does not
// oversubscribe the machine the sharded exact solver also runs on.
//
// Per-scheduler failures and panics are never silent: each is recovered
// in its own goroutine and recorded as a note on t (when non-nil), so a
// crashing heuristic degrades the portfolio visibly instead of vanishing
// from it. ctx is forwarded to context-aware schedulers, whose anytime
// best-so-far result still competes after a deadline.
func bestOf(ctx context.Context, t *Table, in *pebble.Instance, extra map[string]*pebble.Strategy) (string, *pebble.Report, error) {
	type outcome struct {
		name    string
		strat   *pebble.Strategy
		rep     *pebble.Report
		failure string // non-empty when the scheduler errored or panicked
	}
	hs := heuristics()
	results := make(chan outcome, len(hs))
	jobs := make(chan sched.Scheduler, len(hs))
	for _, s := range hs {
		jobs <- s
	}
	close(jobs)
	pool := runtime.GOMAXPROCS(0)
	if pool > len(hs) {
		pool = len(hs)
	}
	runOne := func(s sched.Scheduler) {
		defer func() {
			if r := recover(); r != nil {
				results <- outcome{name: s.Name(), failure: fmt.Sprintf("panic: %v", r)}
			}
		}()
		strat, err := sched.ScheduleCtx(ctx, s, in)
		if err != nil {
			results <- outcome{name: s.Name(), failure: err.Error()}
			return
		}
		rep, err := pebble.Replay(in, strat)
		if err != nil {
			results <- outcome{name: s.Name(), failure: fmt.Sprintf("invalid strategy: %v", err)}
			return
		}
		results <- outcome{name: s.Name(), strat: strat, rep: rep}
	}
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				runOne(s)
			}
		}()
	}
	wg.Wait()
	close(results)

	// Deterministic winner among ties: sort by (cost, name).
	var all []outcome
	var failures []string
	for o := range results {
		if o.failure != "" {
			failures = append(failures, o.name+": "+o.failure)
			continue
		}
		all = append(all, o)
	}
	sort.Strings(failures)
	if t != nil {
		for _, f := range failures {
			t.AddNote("portfolio: %s", f)
		}
	}
	for name, s := range extra {
		rep, err := pebble.Replay(in, s)
		if err != nil {
			return "", nil, fmt.Errorf("exp: crafted strategy %q invalid: %w", name, err)
		}
		all = append(all, outcome{name: name, strat: s, rep: rep})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rep.Cost != all[j].rep.Cost {
			return all[i].rep.Cost < all[j].rep.Cost
		}
		return all[i].name < all[j].name
	})
	bestName := ""
	var best *pebble.Report
	var bestStrat *pebble.Strategy
	if len(all) > 0 {
		bestName, best, bestStrat = all[0].name, all[0].rep, all[0].strat
	}
	if best == nil {
		return "", nil, fmt.Errorf("exp: no scheduler produced a valid strategy for %s (failures: %s)",
			in, strings.Join(failures, "; "))
	}
	if _, improved, err := sched.Improve(in, bestStrat); err == nil && improved.Cost < best.Cost {
		bestName, best = bestName+"+improve", improved
	}
	return bestName, best, nil
}

// ctxDone polls ctx at a loop boundary. When the deadline has passed it
// marks the table partial (the experiment contract: return what was
// built, not an error) and tells the caller to stop iterating.
func ctxDone(ctx context.Context, t *Table, stage string) bool {
	if err := ctx.Err(); err != nil {
		t.MarkPartial(stage, err)
		return true
	}
	return false
}

// exactIn runs the default exact search under the config's budget
// override. A partial stop (budget/deadline/cancel) marks the table and
// returns ok=false with the anytime result — callers skip the row or
// report the incumbent; any other error propagates.
func exactIn(ctx context.Context, cfg Config, t *Table, in *pebble.Instance, defStates int) (*opt.Result, bool, error) {
	return exactInCfg(ctx, cfg, t, in, opt.DefaultConfig(cfg.states(defStates)))
}

// exactInCfg is exactIn under an explicit solver Config — experiments
// that must pin a heuristic mode (e.g. E14's raw-state-space measurement
// runs the bare compute floor) pass their own; cfg.solver layers the
// suite-wide toggles (async mode) on top. Partial results get their
// lower bound raised to the max-heuristic root bound first, so gap
// brackets printed from weaker-mode or early-stopped runs don't start
// from a needlessly loose floor.
func exactInCfg(ctx context.Context, cfg Config, t *Table, in *pebble.Instance, ocfg opt.Config) (*opt.Result, bool, error) {
	res, err := opt.SolveCached(ctx, in, cfg.solver(ocfg), cfg.Cache)
	if err != nil {
		if opt.IsPartial(err) {
			raiseLowerBound(res, in)
			t.MarkPartial("Exact("+in.String()+")", err)
			return res, false, nil
		}
		return nil, false, err
	}
	return res, true, nil
}

// raiseLowerBound lifts a partial result's frontier lower bound to the
// max-heuristic evaluated at the root, clamped to the incumbent. For a
// search that already ran the max heuristic this is a no-op (consistency
// keeps the frontier minimum at or above the root value); for floor-mode
// runs and very early stops it tightens the printed bracket for free.
func raiseLowerBound(res *opt.Result, in *pebble.Instance) {
	if res == nil {
		return
	}
	lb := opt.RootLowerBound(in, opt.HeuristicMax)
	if res.Incumbent >= 0 && lb > res.Incumbent {
		lb = res.Incumbent
	}
	if lb > res.LowerBound {
		res.LowerBound = lb
	}
}

// zeroIOIn is exactIn for the zero-I/O decision procedure: pass it the
// (result, error) pair of an opt.ZeroIOCtx/ZeroIOBigCtx call. An early
// stop marks the table partial and yields ok=false with the indeterminate
// result; other errors propagate.
func zeroIOIn(t *Table, stage string, res *opt.ZeroIOResult, err error) (*opt.ZeroIOResult, bool, error) {
	if err != nil {
		if opt.IsPartial(err) {
			t.MarkPartial(stage, err)
			return res, false, nil
		}
		return nil, false, err
	}
	return res, true, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
func di(v int) string     { return fmt.Sprintf("%d", v) }
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RenderCSV writes the table's rows as CSV (RFC 4180), one file-worth per
// table, preceded by a header row. Claims, checks and notes are omitted —
// CSV output is meant for plotting pipelines.
func RenderCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
