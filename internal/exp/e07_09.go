package exp

import (
	"context"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/proofs"
)

// E07FairSpeedup reproduces Lemma 7: in the fair comparison (total fast
// memory fixed at r0, split r = r0/k), the optimum improves by at most a
// factor k, and k independent chains achieve exactly that factor.
func E07FairSpeedup(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E07",
		Title:   "Lemma 7: fair-comparison speedup limit",
		Claim:   "In the fair case OPT(k)/OPT(1) ≥ 1/k, with equality on k independent chains.",
		Columns: []string{"dag", "k", "r(k)", "cost(1)", "cost(k)", "cost(k)/cost(1)", "1/k"},
	}
	length := 30
	if cfg.Quick {
		length = 12
	}
	ioCost := 3
	equalityOK := true
	for _, k := range []int{2, 4} {
		r0 := 2 * k
		g := gen.IndependentChains(k, length)
		in1 := pebble.MustInstance(g, pebble.MPP(1, r0, ioCost))
		_, rep1, err := bestOf(ctx, t, in1, nil)
		if err != nil {
			return nil, err
		}
		inK := pebble.MustInstance(g, pebble.MPP(k, r0/k, ioCost))
		_, repK, err := bestOf(ctx, t, inK, nil)
		if err != nil {
			return nil, err
		}
		rt := ratio(repK.Cost, rep1.Cost)
		// Equality up to the O(1) sink-parking slack of the k=1 run.
		if rt < 1.0/float64(k)*0.8 || rt > 1.0/float64(k)*1.5 {
			equalityOK = false
		}
		t.AddRow("chains×"+di(k), di(k), di(r0/k), d64(rep1.Cost), d64(repK.Cost), f2(rt), f2(1.0/float64(k)))
	}
	// Lower-bound direction on a zoo: cost(k) ≥ cost(1)/k − slack must
	// hold for ANY strategy pair where cost(1) is optimal; we verify with
	// exact costs on tiny instances.
	lbOK := true
	tiny := gen.RandomDAG(7, 0.3, 2, 13)
	for _, k := range []int{2} {
		r0 := 2 * (tiny.MaxInDegree() + 1)
		in1 := pebble.MustInstance(tiny, pebble.MPP(1, r0, ioCost))
		res1, ok1, err := exactIn(ctx, cfg, t, in1, 4_000_000)
		if err != nil {
			return nil, err
		}
		inK := pebble.MustInstance(tiny, pebble.MPP(k, r0/k, ioCost))
		resK, okK, err := exactIn(ctx, cfg, t, inK, 4_000_000)
		if err != nil {
			return nil, err
		}
		if !ok1 || !okK {
			// The floor check needs both true optima; without them the
			// row is skipped and the table stays partial.
			continue
		}
		rt := ratio(resK.Cost, res1.Cost)
		if rt < 1.0/float64(k)-1e-9 {
			lbOK = false
		}
		t.AddRow("tiny-random (exact)", di(k), di(r0/k), d64(res1.Cost), d64(resK.Cost), f2(rt), f2(1.0/float64(k)))
	}
	t.AddCheck("factor-k ceiling attained on chains", equalityOK,
		"independent chains realize cost(k)/cost(1) ≈ 1/k")
	t.AddCheck("1/k floor (exact)", lbOK, "exact OPT(k)/OPT(1) never drops below 1/k")
	return t, nil
}

// E08FairBlowup reproduces Lemma 8: in the fair comparison the optimum
// can grow by ≈ (k−1)/k·g·(Δin−1)+1 when the per-processor split r0/k can
// no longer hold the working set (cyclic fan chain gadget).
func E08FairBlowup(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E08",
		Title:   "Lemma 8: fair-comparison cost blowup",
		Claim:   "In the fair case there are DAGs with OPT(k)/OPT(1) ≥ (k−1)/k·g·(Δin−1)+1−o(1).",
		Columns: []string{"k", "D", "δ=Δin−1", "g", "cost(1)", "cost(k)", "ratio", "lemma formula"},
	}
	n0 := 60
	if cfg.Quick {
		n0 = 20
	}
	shapeOK := true
	for _, tc := range []struct{ k, D, delta, g int }{
		{2, 10, 2, 4},
		{2, 14, 3, 6},
		{4, 14, 1, 6},
	} {
		r0 := tc.D + 2
		gdag, ids := gen.CyclicFanChain(tc.D, tc.delta, n0, tc.delta)
		in1 := pebble.MustInstance(gdag, pebble.MPP(1, r0, tc.g))
		rep1, err := pebble.Replay(in1, proofs.CyclicResident(in1, ids))
		if err != nil {
			return nil, err
		}
		rk := r0 / tc.k
		inK := pebble.MustInstance(gdag, pebble.MPP(tc.k, rk, tc.g))
		starved := proofs.CyclicStarved(inK, ids, tc.delta, tc.delta)
		_, repK, err := bestOf(ctx, t, inK, map[string]*pebble.Strategy{"starved(proof)": starved})
		if err != nil {
			return nil, err
		}
		rt := ratio(repK.Cost, rep1.Cost)
		formula := float64(tc.k-1)/float64(tc.k)*float64(tc.g)*float64(tc.delta) + 1
		// The measured ratio should be a significant fraction of the
		// lemma's target (residency savings and finite size shave it).
		if rt < 0.25*formula || rt <= 1 {
			shapeOK = false
		}
		t.AddRow(di(tc.k), di(tc.D), di(tc.delta), di(tc.g), d64(rep1.Cost), d64(repK.Cost), f2(rt), f2(formula))
	}
	t.AddCheck("fair split inflates cost multiplicatively", shapeOK,
		"cost(k)/cost(1) grows with g·(Δin−1) as the lemma's formula predicts (up to residency slack)")
	t.AddNote("cost(1) is the zero-I/O resident strategy (provably optimal: it meets the n/1 compute floor)")
	return t, nil
}

// E09NonMonotone reproduces Lemma 9: the fair-case optimum is not
// monotone in k — on two cyclic fan chains, k=2 beats both k=1 and k=4.
func E09NonMonotone(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E09",
		Title:   "Lemma 9: non-monotonicity in k",
		Claim:   "In the fair case there are DAGs with OPT(2) < OPT(1) and OPT(2) < OPT(4).",
		Columns: []string{"k", "r=r0/k", "best cost", "via"},
	}
	D, delta, n0 := 10, 2, 40
	if cfg.Quick {
		n0 = 16
	}
	ioCost := 3
	r0 := 2 * (D + 2)
	gdag, ids := gen.MultiCyclicFanChain(2, D, delta, n0, delta)

	in1 := pebble.MustInstance(gdag, pebble.MPP(1, r0, ioCost))
	n1, rep1, err := bestOf(ctx, t, in1, map[string]*pebble.Strategy{
		"serial(proof)": proofs.MultiCyclicSerial(in1, ids),
	})
	if err != nil {
		return nil, err
	}
	in2 := pebble.MustInstance(gdag, pebble.MPP(2, r0/2, ioCost))
	n2, rep2, err := bestOf(ctx, t, in2, map[string]*pebble.Strategy{
		"per-chain(proof)": proofs.MultiCyclicPerChain(in2, ids),
	})
	if err != nil {
		return nil, err
	}
	in4 := pebble.MustInstance(gdag, pebble.MPP(4, r0/4, ioCost))
	n4, rep4, err := bestOf(ctx, t, in4, map[string]*pebble.Strategy{
		"starved(proof)": proofs.MultiCyclicStarved(in4, ids, delta, delta),
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("1", di(r0), d64(rep1.Cost), n1)
	t.AddRow("2", di(r0/2), d64(rep2.Cost), n2)
	t.AddRow("4", di(r0/4), d64(rep4.Cost), n4)
	t.AddCheck("k=2 beats k=1", rep2.Cost < rep1.Cost, "cost(2)=%d < cost(1)=%d", rep2.Cost, rep1.Cost)
	t.AddCheck("k=2 beats k=4", rep2.Cost < rep4.Cost, "cost(2)=%d < cost(4)=%d", rep2.Cost, rep4.Cost)
	t.AddNote("cost(2) meets the n/2 compute floor exactly, so OPT(2) is certified; cost(1) and cost(4) are best-found upper bounds whose floors (n and n/4) already separate them in the checked directions")
	return t, nil
}
