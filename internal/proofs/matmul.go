package proofs

import (
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
)

// MatMulTileSize returns the tile edge the tiled schedule uses for fast
// memory r: the largest b with 3b² + 2 ≤ r (an A-tile, a B-tile, the
// C-tile accumulators, plus one transient product and one fresh sum).
func MatMulTileSize(r int) int {
	b := 1
	for (b+1)*(b+1)*3+2 <= r {
		b++
	}
	return b
}

// MatMulTiled is the classic blocked matrix-multiplication pebbling on a
// single processor: C is processed tile by tile; for each C-tile the
// schedule streams the matching A- and B-tiles through fast memory while
// the b² partial sums stay resident. Input entries are computed on first
// use and written to slow memory once; each reuse is a read. The
// resulting I/O volume is ≈ 2n³/b + n² with b = Θ(√r) — matching the
// Kwasniewski et al. lower bound 2n³/√r + n² up to the tiling constant,
// which is how the paper's Section 4 expects the bound to be met.
func MatMulTiled(in *pebble.Instance, ids *gen.MatMulIDs) *pebble.Strategy {
	n := ids.N
	b := MatMulTileSize(in.R)
	if b > n {
		b = n
	}
	sb := pebble.NewBuilder(in)
	const p = 0
	written := make(map[dag.NodeID]bool, 2*n*n)

	// acquire makes an input entry red: first use computes the source and
	// backs it up; later uses read the slow-memory copy.
	acquire := func(v dag.NodeID) {
		if !written[v] {
			sb.Compute(p, v)
			sb.Write(pebble.At(p, v))
			written[v] = true
			return
		}
		sb.Read(pebble.At(p, v))
	}
	tileRange := func(t0 int) (int, int) {
		hi := t0 + b
		if hi > n {
			hi = n
		}
		return t0, hi
	}

	for i0 := 0; i0 < n; i0 += b {
		iLo, iHi := tileRange(i0)
		for j0 := 0; j0 < n; j0 += b {
			jLo, jHi := tileRange(j0)
			for l0 := 0; l0 < n; l0 += b {
				lLo, lHi := tileRange(l0)
				// Stream in the A(I,L) and B(L,J) tiles.
				var aTile, bTile []dag.NodeID
				for i := iLo; i < iHi; i++ {
					for l := lLo; l < lHi; l++ {
						acquire(ids.A[i][l])
						aTile = append(aTile, ids.A[i][l])
					}
				}
				for l := lLo; l < lHi; l++ {
					for j := jLo; j < jHi; j++ {
						acquire(ids.B[l][j])
						bTile = append(bTile, ids.B[l][j])
					}
				}
				// Update the resident C accumulators.
				for i := iLo; i < iHi; i++ {
					for j := jLo; j < jHi; j++ {
						for l := lLo; l < lHi; l++ {
							sb.Compute(p, ids.P[i][j][l])
							if l == 0 {
								// Acc[i][j][0] is the product itself.
								continue
							}
							sb.Compute(p, ids.Acc[i][j][l])
							sb.DropRed(p, ids.P[i][j][l], ids.Acc[i][j][l-1])
						}
					}
				}
				sb.DropRed(p, aTile...)
				sb.DropRed(p, bTile...)
			}
			// Retire the finished C-tile: park the sinks in slow memory.
			for i := iLo; i < iHi; i++ {
				for j := jLo; j < jHi; j++ {
					sink := ids.Acc[i][j][n-1]
					sb.Save(p, sink)
					sb.DropRed(p, sink)
				}
			}
		}
	}
	return sb.Strategy()
}
