package proofs

import (
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
)

// fig1Subtree pebbles one Figure 1 subtree on processor p with r = 3,
// spilling the first child through slow memory exactly as the paper's
// walkthrough does (2 I/O operations); leaves a red pebble on the root.
func fig1Subtree(b *pebble.Builder, p int, s1, s2, c1, s3, s4, c2, root dag.NodeID) {
	b.Compute(p, s1, s2)
	b.Compute(p, c1)
	b.DropRed(p, s1, s2)
	b.Save(p, c1)
	b.DropRed(p, c1)
	b.Compute(p, s3, s4)
	b.Compute(p, c2)
	b.DropRed(p, s3, s4)
	b.EnsureRed(p, c1)
	b.Compute(p, root)
	b.DropRed(p, c1, c2)
}

// Figure1Single is the paper's single-processor walkthrough (Section 1):
// r = 3 red pebbles, 6 I/O operations, every node computed once.
func Figure1Single(in *pebble.Instance, ids *gen.Fig1IDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	fig1Subtree(b, 0, ids.V1, ids.V2, ids.V3, ids.U1, ids.U2, ids.V4, ids.V5)
	b.Save(0, ids.V5)
	b.DropRed(0, ids.V5)
	fig1Subtree(b, 0, ids.W1, ids.W2, ids.X3, ids.Y1, ids.Y2, ids.X4, ids.V6)
	b.EnsureRed(0, ids.V5)
	b.Compute(0, ids.V7)
	return b.Strategy()
}

// Figure1Double is the paper's two-processor walkthrough: the subtrees
// run in parallel on separate shades, then v5 is handed from p0 to p1
// through shared memory.
func Figure1Double(in *pebble.Instance, ids *gen.Fig1IDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	l := [2][7]dag.NodeID{
		{ids.V1, ids.V2, ids.U1, ids.U2, ids.V3, ids.V4, ids.V5},
		{ids.W1, ids.W2, ids.Y1, ids.Y2, ids.X3, ids.X4, ids.V6},
	}
	both := func(idx int) []pebble.Action {
		return []pebble.Action{pebble.At(0, l[0][idx]), pebble.At(1, l[1][idx])}
	}
	for _, i := range []int{0, 1, 4} {
		b.ComputeParallel(both(i)...)
	}
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][0], l[p][1])
	}
	b.Write(both(4)...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][4])
	}
	for _, i := range []int{2, 3, 5} {
		b.ComputeParallel(both(i)...)
	}
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][2], l[p][3])
	}
	b.Read(both(4)...)
	b.ComputeParallel(both(6)...)
	for p := 0; p < 2; p++ {
		b.DropRed(p, l[p][4], l[p][5])
	}
	b.Write(pebble.At(0, ids.V5))
	b.Read(pebble.At(1, ids.V5))
	b.Compute(1, ids.V7)
	return b.Strategy()
}

// ZipperRecompute is the cheap-recomputation strategy for the tail-less
// zipper with r = d+2 on one processor: instead of reloading the swapped-
// out input group through slow memory (d·g per chain node), the group's
// source nodes are recomputed (d compute steps per chain node) — the
// strategy the paper notes makes tail-less recomputation dominate, and
// the reference optimum for the Lemma 4 Δ_in-factor greedy trap (the
// greedy class never recomputes, so with g ≈ d it pays ≈ d·g = d² per
// node versus ≈ d+1 here).
func ZipperRecompute(in *pebble.Instance, ids *gen.ZipperIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	group := func(i int) []dag.NodeID {
		if (i+1)%2 == 1 {
			return ids.S1
		}
		return ids.S2
	}
	for _, u := range ids.S1 {
		b.Compute(p, u)
	}
	for i, v := range ids.Chain {
		if i > 0 {
			b.DropRed(p, group(i-1)...)
			for _, u := range group(i) {
				b.Compute(p, u) // recompute: tail-less inputs are sources
			}
		}
		b.Compute(p, v)
		if i > 0 {
			b.DropRed(p, ids.Chain[i-1])
		}
	}
	return b.Strategy()
}
