// Package proofs encodes the explicit pebbling strategies that the
// paper's proofs construct for its gadget DAGs. Each function returns the
// exact move sequence a proof describes; experiments validate every
// strategy with pebble.Replay, so the costs the paper claims are checked,
// not assumed.
//
// Builders panic (via pebble.Builder) if a strategy violates the rules —
// that would be a bug in the encoded proof, not an input error.
package proofs

import (
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/pebble"
)

// computeInput computes one zipper/fanchain input node together with its
// anti-recompute tail (if any) on processor p, leaving a red pebble on
// the input only. Uses 2 transient slots plus the input's slot.
func computeInput(b *pebble.Builder, p int, g *dag.Graph, u dag.NodeID) {
	preds := g.Pred(u)
	if len(preds) == 0 {
		b.Compute(p, u)
		return
	}
	// Walk up the tail chain to its source, then compute down.
	var chain []dag.NodeID
	cur := u
	for {
		chain = append(chain, cur)
		ps := g.Pred(cur)
		if len(ps) == 0 {
			break
		}
		cur = ps[0]
	}
	// chain is [u, ..., tailSource]; compute in reverse.
	for i := len(chain) - 1; i >= 0; i-- {
		b.Compute(p, chain[i])
		if i < len(chain)-1 {
			b.DropRed(p, chain[i+1])
		}
	}
}

// ZipperAmple is the proof strategy for the zipper with ample memory
// (r ≥ 2d+2): park both input groups in fast memory and walk the chain
// with the two remaining pebbles — zero I/O.
func ZipperAmple(in *pebble.Instance, ids *gen.ZipperIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	for _, u := range ids.S1 {
		computeInput(b, p, in.Graph, u)
	}
	for _, u := range ids.S2 {
		computeInput(b, p, in.Graph, u)
	}
	for i, v := range ids.Chain {
		b.Compute(p, v)
		if i > 0 {
			b.DropRed(p, ids.Chain[i-1])
		}
	}
	return b.Strategy()
}

// ZipperSwap is the proof strategy for the zipper with tight memory
// (r = d+2) on a single processor: the non-active group's pebbles are
// repeatedly written out and read back, costing ≈ d·g + 1 per chain node
// (the paper's Figure 2 discussion).
func ZipperSwap(in *pebble.Instance, ids *gen.ZipperIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	group := func(i int) []dag.NodeID { // group used by chain node i (0-indexed)
		if (i+1)%2 == 1 {
			return ids.S1
		}
		return ids.S2
	}
	s2Computed := false

	// Compute S1 (+tails), keep red, back it up to slow memory.
	for _, u := range ids.S1 {
		computeInput(b, p, in.Graph, u)
		b.Save(p, u)
	}
	for i, v := range ids.Chain {
		cur := group(i)
		if i > 0 {
			prevGroup := group(i - 1)
			// Swap: drop the previous group, bring in the current one.
			b.DropRed(p, prevGroup...)
			if cur[0] == ids.S2[0] && !s2Computed {
				// First time S2 is needed: compute it (and back it up).
				for _, u := range ids.S2 {
					computeInput(b, p, in.Graph, u)
					b.Save(p, u)
				}
				s2Computed = true
			} else {
				for _, u := range cur {
					b.EnsureRed(p, u)
				}
			}
		}
		b.Compute(p, v)
		if i > 0 {
			b.DropRed(p, ids.Chain[i-1])
		}
	}
	return b.Strategy()
}

// ZipperParallel is the Lemma 10 proof strategy: two processors with
// r = d+2 each park one input group, compute alternating chain nodes, and
// hand each chain value over through slow memory — ≈ 2g+1 per chain node,
// a superlinear speedup over ZipperSwap's ≈ d·g+1 for large d.
func ZipperParallel(in *pebble.Instance, ids *gen.ZipperIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	d := len(ids.S1)
	// Both processors build their groups; tails advance in parallel where
	// lengths allow (sequential interleave is also fine cost-wise only if
	// batched — so batch the input computations pairwise).
	// For simplicity and to realize the claimed parallel cost, compute
	// pairwise: input i of S1 on p0 simultaneously with input i of S2 on
	// p1, walking both tails in lock-step.
	for i := 0; i < d; i++ {
		u0, u1 := ids.S1[i], ids.S2[i]
		chain0 := tailChain(in.Graph, u0)
		chain1 := tailChain(in.Graph, u1)
		// Tails have equal length by construction.
		for j := 0; j < len(chain0); j++ {
			b.ComputeParallel(pebble.At(0, chain0[j]), pebble.At(1, chain1[j]))
			if j > 0 {
				b.DropRed(0, chain0[j-1])
				b.DropRed(1, chain1[j-1])
			}
		}
		last0, last1 := chain0[len(chain0)-1], chain1[len(chain1)-1]
		if last0 != u0 {
			b.ComputeParallel(pebble.At(0, u0), pebble.At(1, u1))
			b.DropRed(0, last0)
			b.DropRed(1, last1)
		}
	}
	// Walk the chain: odd chain nodes (S1) on p0, even on p1.
	for i, v := range ids.Chain {
		owner := i % 2 // chain node 1 (index 0) uses S1 → p0
		if i > 0 {
			prev := ids.Chain[i-1]
			b.Write(pebble.At(1-owner, prev))
			b.Read(pebble.At(owner, prev))
			b.DropRed(1-owner, prev)
		}
		b.Compute(owner, v)
		if i > 0 {
			b.DropRed(owner, ids.Chain[i-1])
		}
	}
	return b.Strategy()
}

// tailChain returns the path from the tail source down to u (inclusive);
// for tail-less inputs it returns [u].
func tailChain(g *dag.Graph, u dag.NodeID) []dag.NodeID {
	var rev []dag.NodeID
	cur := u
	for {
		rev = append(rev, cur)
		ps := g.Pred(cur)
		if len(ps) == 0 {
			break
		}
		cur = ps[0]
	}
	out := make([]dag.NodeID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// CyclicResident pebbles a CyclicFanChain with the whole pool parked in
// fast memory (requires r ≥ D+2): zero I/O, cost exactly n — the
// one-processor side of Lemma 8's fair comparison.
func CyclicResident(in *pebble.Instance, ids *gen.CyclicIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	for _, u := range ids.Pool {
		b.Compute(p, u)
	}
	for i, v := range ids.Chain {
		b.Compute(p, v)
		if i > 0 {
			b.DropRed(p, ids.Chain[i-1])
		}
	}
	return b.Strategy()
}

// CyclicStarved pebbles a CyclicFanChain on one (of possibly many)
// processors whose fast memory r < D+2 cannot hold the pool: a prefix of
// ρ = r−δ−2 pool nodes stays resident, the rest streams in per chain
// node — realizing the ≈ g·(Δ_in−1)·(1−ρ/D) + 1 per-node cost that
// Lemma 8's lower bound says is unavoidable in the fair comparison.
func CyclicStarved(in *pebble.Instance, ids *gen.CyclicIDs, delta, stride int) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	D := len(ids.Pool)
	rho := in.R - delta - 2
	if rho < 0 {
		rho = 0
	}
	if rho > D {
		rho = D
	}
	resident := map[dag.NodeID]bool{}
	// Compute the pool: residents stay red; the rest is written to slow
	// memory and dropped.
	for idx, u := range ids.Pool {
		b.Compute(p, u)
		if idx < rho {
			resident[u] = true
			continue
		}
		b.Save(p, u)
		b.DropRed(p, u)
	}
	for i, v := range ids.Chain {
		var transient []dag.NodeID
		for _, j := range ids.Subset(i, delta, stride) {
			u := ids.Pool[j]
			if resident[u] {
				continue
			}
			b.EnsureRed(p, u)
			transient = append(transient, u)
		}
		b.Compute(p, v)
		b.DropRed(p, transient...)
		if i > 0 {
			b.DropRed(p, ids.Chain[i-1])
		}
	}
	return b.Strategy()
}

// MultiCyclicSerial pebbles c CyclicFanChain copies on one processor with
// r ≥ D+3: copies run one after another with zero I/O, earlier sinks
// staying red (Lemma 9's k = 1 case; r₀ = 2(D+2) ≥ D+2+c for c = 2).
func MultiCyclicSerial(in *pebble.Instance, ids *gen.MultiCyclicIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	for _, c := range ids.Copies {
		for _, u := range c.Pool {
			b.Compute(p, u)
		}
		for i, v := range c.Chain {
			b.Compute(p, v)
			if i > 0 {
				b.DropRed(p, c.Chain[i-1])
			}
		}
		// Retire the copy, keeping only its sink.
		b.DropRed(p, c.Pool...)
	}
	return b.Strategy()
}

// MultiCyclicPerChain pebbles c copies on c processors simultaneously
// (processor j owns copy j), all moves in lock-step parallel: zero I/O
// and exactly (D + chainLen) compute moves — Lemma 9's k = 2 sweet spot.
func MultiCyclicPerChain(in *pebble.Instance, ids *gen.MultiCyclicIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	c := len(ids.Copies)
	D := len(ids.Copies[0].Pool)
	for idx := 0; idx < D; idx++ {
		acts := make([]pebble.Action, c)
		for j := range ids.Copies {
			acts[j] = pebble.At(j, ids.Copies[j].Pool[idx])
		}
		b.ComputeParallel(acts...)
	}
	for i := range ids.Copies[0].Chain {
		acts := make([]pebble.Action, c)
		for j := range ids.Copies {
			acts[j] = pebble.At(j, ids.Copies[j].Chain[i])
		}
		b.ComputeParallel(acts...)
		if i > 0 {
			for j := range ids.Copies {
				b.DropRed(j, ids.Copies[j].Chain[i-1])
			}
		}
	}
	return b.Strategy()
}

// MultiCyclicStarved pebbles c copies with one active processor per copy
// (processors c..k−1 idle) under starved memory r < D+2: per chain node,
// the active processors stream their missing pool inputs with reads
// batched across processors — the Lemma 9 k = 4 regime where the fair
// memory split makes everything slower than k = 2.
func MultiCyclicStarved(in *pebble.Instance, ids *gen.MultiCyclicIDs, delta, stride int) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	c := len(ids.Copies)
	D := len(ids.Copies[0].Pool)
	rho := in.R - delta - 2
	if rho < 0 {
		rho = 0
	}
	if rho > D {
		rho = D
	}
	// Pool phase: lock-step computes; non-residents written (batched) and
	// dropped.
	for idx := 0; idx < D; idx++ {
		acts := make([]pebble.Action, c)
		for j := range ids.Copies {
			acts[j] = pebble.At(j, ids.Copies[j].Pool[idx])
		}
		b.ComputeParallel(acts...)
		if idx >= rho {
			b.Write(acts...)
			for _, a := range acts {
				b.DropRed(a.Proc, a.Node)
			}
		}
	}
	for i := range ids.Copies[0].Chain {
		// Gather per-copy missing inputs; all copies share the same
		// subset pattern, so the missing lists have equal length and zip
		// into shared read moves.
		missing := make([][]dag.NodeID, c)
		for j, cp := range ids.Copies {
			for _, poolIdx := range cp.Subset(i, delta, stride) {
				if poolIdx >= rho {
					missing[j] = append(missing[j], cp.Pool[poolIdx])
				}
			}
		}
		for t := 0; t < len(missing[0]); t++ {
			acts := make([]pebble.Action, c)
			for j := range ids.Copies {
				acts[j] = pebble.At(j, missing[j][t])
			}
			b.Read(acts...)
		}
		acts := make([]pebble.Action, c)
		for j := range ids.Copies {
			acts[j] = pebble.At(j, ids.Copies[j].Chain[i])
		}
		b.ComputeParallel(acts...)
		for j := range ids.Copies {
			b.DropRed(j, missing[j]...)
			if i > 0 {
				b.DropRed(j, ids.Copies[j].Chain[i-1])
			}
		}
	}
	return b.Strategy()
}
