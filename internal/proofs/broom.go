package proofs

import (
	"repro/internal/gen"
	"repro/internal/pebble"
)

// BroomSerial is the single-processor strategy for the SharedPrefixBroom
// gadget (Section 5, I/O-jump-down): each shared value x_j is computed
// once, backed up to slow memory (1 write), consumed immediately by chain
// A, and read back later for chain B (1 read) — Θ(t) I/O in total, which
// beats recomputing the length-L prefixes whenever 2g < L.
func BroomSerial(in *pebble.Instance, ids *gen.BroomIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	t := len(ids.Shared)
	stride := len(ids.A) / t

	// Phase A: interleave prefix computation with chain A.
	for j := 0; j < t; j++ {
		prefix := ids.Shared[j]
		for i, x := range prefix {
			b.Compute(p, x)
			if i > 0 {
				b.DropRed(p, prefix[i-1])
			}
		}
		xj := prefix[len(prefix)-1]
		b.Save(p, xj) // 1 write: x_j parked for chain B
		for s := 0; s < stride; s++ {
			idx := j*stride + s
			b.Compute(p, ids.A[idx])
			if idx > 0 {
				b.DropRed(p, ids.A[idx-1])
			}
			if s == 0 {
				b.DropRed(p, xj)
			}
		}
	}
	// Park chain A's sink so its slot frees up for phase B.
	aLast := ids.A[len(ids.A)-1]
	b.Save(p, aLast)
	b.DropRed(p, aLast)

	// Phase B: read each x_j back.
	for j := 0; j < t; j++ {
		xj := ids.Shared[j][len(ids.Shared[j])-1]
		b.EnsureRed(p, xj) // 1 read
		for s := 0; s < stride; s++ {
			idx := j*stride + s
			b.Compute(p, ids.B[idx])
			if idx > 0 {
				b.DropRed(p, ids.B[idx-1])
			}
			if s == 0 {
				b.DropRed(p, xj)
			}
		}
	}
	return b.Strategy()
}

// BroomParallel is the two-processor strategy for the SharedPrefixBroom:
// processor 0 owns chain A, processor 1 owns chain B, and *both*
// recompute every shared prefix privately in lock-step compute moves —
// the duplicated work hides inside shared parallel steps and the
// pebbling uses zero I/O (the paper's "recomputation instead of I/O"
// phenomenon that makes OPT_IO drop from Θ(n) to 0 as k goes 1 → 2).
func BroomParallel(in *pebble.Instance, ids *gen.BroomIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	t := len(ids.Shared)
	stride := len(ids.A) / t
	for j := 0; j < t; j++ {
		prefix := ids.Shared[j]
		for i, x := range prefix {
			b.ComputeParallel(pebble.At(0, x), pebble.At(1, x))
			if i > 0 {
				b.DropRed(0, prefix[i-1])
				b.DropRed(1, prefix[i-1])
			}
		}
		xj := prefix[len(prefix)-1]
		for s := 0; s < stride; s++ {
			idx := j*stride + s
			b.ComputeParallel(pebble.At(0, ids.A[idx]), pebble.At(1, ids.B[idx]))
			if idx > 0 {
				b.DropRed(0, ids.A[idx-1])
				b.DropRed(1, ids.B[idx-1])
			}
			if s == 0 {
				b.DropRed(0, xj)
				b.DropRed(1, xj)
			}
		}
	}
	return b.Strategy()
}

// TrapGOptimal is the interleaved zero-I/O reference strategy for the
// GreedyTrapG gadget on one processor with r ≥ d+5: the persistent group
// S stays resident; per block, c_i, t_i, w_i are computed back-to-back so
// every bait t_i dies immediately — total cost n, versus greedy's
// n + ≈2g·m (Lemma 4, second bullet).
func TrapGOptimal(in *pebble.Instance, ids *gen.TrapGIDs) *pebble.Strategy {
	b := pebble.NewBuilder(in)
	const p = 0
	for _, u := range ids.S {
		b.Compute(p, u)
	}
	m := len(ids.C)
	for i := 0; i < m; i++ {
		b.Compute(p, ids.C[i])
		b.Compute(p, ids.T[i])
		if i > 0 {
			b.DropRed(p, ids.C[i-1])
		}
		b.Compute(p, ids.E[i])
		b.Compute(p, ids.W[i])
		if i > 0 {
			b.DropRed(p, ids.W[i-1])
		}
		b.DropRed(p, ids.T[i], ids.E[i])
	}
	// Terminal: w_m (the only sink) holds a red pebble.
	return b.Strategy()
}
