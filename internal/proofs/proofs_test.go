package proofs

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/pebble"
	"repro/internal/sched"
)

func replayOK(t *testing.T, in *pebble.Instance, s *pebble.Strategy) *pebble.Report {
	t.Helper()
	rep, err := pebble.Replay(in, s)
	if err != nil {
		t.Fatalf("proof strategy invalid: %v", err)
	}
	return rep
}

func TestZipperAmpleZeroIO(t *testing.T) {
	for _, tail := range []int{0, 4} {
		d, n0 := 3, 15
		g, ids := gen.Zipper(d, n0, tail)
		in := pebble.MustInstance(g, pebble.MPP(1, 2*d+2, 5))
		rep := replayOK(t, in, ZipperAmple(in, ids))
		if rep.IOActions != 0 {
			t.Errorf("tail=%d: IOActions = %d, want 0", tail, rep.IOActions)
		}
		if rep.Cost != int64(g.N()) {
			t.Errorf("tail=%d: cost = %d, want n = %d", tail, rep.Cost, g.N())
		}
		if rep.Recomputations != 0 {
			t.Errorf("tail=%d: recomputations = %d", tail, rep.Recomputations)
		}
	}
}

func TestZipperSwapCostFormula(t *testing.T) {
	d, n0, ioCost := 3, 12, 4
	g, ids := gen.Zipper(d, n0, 2*ioCost) // tails of length 2g per the paper
	in := pebble.MustInstance(g, pebble.MPP(1, d+2, ioCost))
	rep := replayOK(t, in, ZipperSwap(in, ids))
	// I/O: 2d backup writes + (n0−2)·d reload reads.
	wantIOActions := 2*d + (n0-2)*d
	if rep.IOActions != wantIOActions {
		t.Errorf("IOActions = %d, want %d", rep.IOActions, wantIOActions)
	}
	if rep.ComputeActions != g.N() {
		t.Errorf("ComputeActions = %d, want %d (no recomputation)", rep.ComputeActions, g.N())
	}
	// Per-chain-node asymptotic cost ≈ d·g + 1.
	perNode := float64(rep.Cost-int64(g.N()-n0)) / float64(n0)
	ideal := float64(d*ioCost + 1)
	if perNode < ideal*0.7 || perNode > ideal*1.3 {
		t.Errorf("per-node cost %.1f far from d·g+1 = %.1f", perNode, ideal)
	}
}

func TestZipperParallelSuperlinear(t *testing.T) {
	d, n0, ioCost := 6, 20, 4
	g, ids := gen.Zipper(d, n0, 2*ioCost)
	in1 := pebble.MustInstance(g, pebble.MPP(1, d+2, ioCost))
	rep1 := replayOK(t, in1, ZipperSwap(in1, ids))

	in2 := pebble.MustInstance(g, pebble.MPP(2, d+2, ioCost))
	rep2 := replayOK(t, in2, ZipperParallel(in2, ids))

	// Lemma 10: speedup approaches (Δin−1)/2 = d/2 for large g; with
	// finite parameters expect clearly superlinear (> 2) speedup here.
	speedup := float64(rep1.Cost) / float64(rep2.Cost)
	if speedup <= 2.0 {
		t.Errorf("speedup = %.2f, want > 2 (superlinear for k=2)", speedup)
	}
	// Per-chain-node cost of the parallel strategy ≈ 2g+1.
	if rep2.IOActions < 2*(n0-1) {
		t.Errorf("parallel zipper IOActions = %d, want ≥ %d handover ops", rep2.IOActions, 2*(n0-1))
	}
}

func TestCyclicResidentAndStarved(t *testing.T) {
	D, delta, n0, stride := 12, 3, 20, 3
	g, ids := gen.CyclicFanChain(D, delta, n0, stride)
	inFull := pebble.MustInstance(g, pebble.MPP(1, D+2, 3))
	repFull := replayOK(t, inFull, CyclicResident(inFull, ids))
	if repFull.IOActions != 0 || repFull.Cost != int64(g.N()) {
		t.Errorf("resident: io=%d cost=%d want 0/%d", repFull.IOActions, repFull.Cost, g.N())
	}

	// Fair split across k=2: r = (D+2)/2 = 7 ≥ δ+2 = 5.
	inHalf := pebble.MustInstance(g, pebble.MPP(1, (D+2)/2, 3))
	repHalf := replayOK(t, inHalf, CyclicStarved(inHalf, ids, delta, stride))
	if repHalf.IOActions == 0 {
		t.Error("starved strategy used no I/O; gadget not starving")
	}
	if repHalf.Cost <= repFull.Cost {
		t.Errorf("starved cost %d not above resident cost %d", repHalf.Cost, repFull.Cost)
	}
	if repHalf.Recomputations != 0 {
		t.Error("starved strategy recomputed")
	}
}

func TestMultiCyclicLemma9Shape(t *testing.T) {
	// Lemma 9 non-monotonicity: cost(k=2) < cost(k=1) and < cost(k=4)
	// under the fair memory split r = r0/k with r0 = 2(D+2).
	D, delta, n0, stride := 10, 2, 24, 2
	g, ids := gen.MultiCyclicFanChain(2, D, delta, n0, stride)
	r0 := 2 * (D + 2)

	in1 := pebble.MustInstance(g, pebble.MPP(1, r0, 3))
	rep1 := replayOK(t, in1, MultiCyclicSerial(in1, ids))
	if rep1.IOActions != 0 {
		t.Errorf("serial: io=%d, want 0", rep1.IOActions)
	}
	if rep1.Cost != int64(g.N()) {
		t.Errorf("serial cost = %d, want %d", rep1.Cost, g.N())
	}

	in2 := pebble.MustInstance(g, pebble.MPP(2, r0/2, 3))
	rep2 := replayOK(t, in2, MultiCyclicPerChain(in2, ids))
	if rep2.IOActions != 0 {
		t.Errorf("per-chain: io=%d, want 0", rep2.IOActions)
	}
	if rep2.Cost != int64(g.N()/2) {
		t.Errorf("per-chain cost = %d, want %d", rep2.Cost, g.N()/2)
	}

	in4 := pebble.MustInstance(g, pebble.MPP(4, r0/4, 3))
	rep4 := replayOK(t, in4, MultiCyclicStarved(in4, ids, delta, stride))
	if rep4.Cost <= rep2.Cost {
		t.Errorf("starved k=4 cost %d not above k=2 cost %d (non-monotonicity broken)",
			rep4.Cost, rep2.Cost)
	}
	if rep1.Cost <= rep2.Cost {
		t.Errorf("k=1 cost %d not above k=2 cost %d", rep1.Cost, rep2.Cost)
	}
}

func TestBroomSerialIOCount(t *testing.T) {
	tt, stride, ioCost := 5, 3, 2
	L := 2*ioCost + 1 // prefix longer than a round trip
	g, ids := gen.SharedPrefixBroom(tt, stride, L)
	in := pebble.MustInstance(g, pebble.MPP(1, 3, ioCost))
	rep := replayOK(t, in, BroomSerial(in, ids))
	// t writes + t reads + 1 sink parking.
	if rep.IOActions != 2*tt+1 {
		t.Errorf("IOActions = %d, want %d", rep.IOActions, 2*tt+1)
	}
	if rep.Recomputations != 0 {
		t.Error("serial broom recomputed")
	}
}

func TestBroomParallelZeroIO(t *testing.T) {
	tt, stride, ioCost := 5, 3, 2
	L := 2*ioCost + 1
	g, ids := gen.SharedPrefixBroom(tt, stride, L)
	in2 := pebble.MustInstance(g, pebble.MPP(2, 3, ioCost))
	rep2 := replayOK(t, in2, BroomParallel(in2, ids))
	if rep2.IOActions != 0 {
		t.Errorf("parallel broom IOActions = %d, want 0", rep2.IOActions)
	}
	// Every prefix node recomputed once (by the second processor).
	if rep2.Recomputations != tt*L {
		t.Errorf("Recomputations = %d, want %d", rep2.Recomputations, tt*L)
	}
	// And the parallel strategy must be cheaper than the serial one.
	in1 := pebble.MustInstance(g, pebble.MPP(1, 3, ioCost))
	rep1 := replayOK(t, in1, BroomSerial(in1, ids))
	if rep2.Cost >= rep1.Cost {
		t.Errorf("parallel cost %d not below serial cost %d", rep2.Cost, rep1.Cost)
	}
}

func TestTrapGOptimalZeroIO(t *testing.T) {
	d, m := 2, 10
	g, ids := gen.GreedyTrapG(d, m)
	in := pebble.MustInstance(g, pebble.MPP(1, d+5, 6))
	rep := replayOK(t, in, TrapGOptimal(in, ids))
	if rep.IOActions != 0 {
		t.Errorf("IOActions = %d, want 0", rep.IOActions)
	}
	if rep.Cost != int64(g.N()) {
		t.Errorf("cost = %d, want n = %d", rep.Cost, g.N())
	}
}

func TestMatMulTileSize(t *testing.T) {
	cases := map[int]int{5: 1, 13: 1, 14: 2, 28: 2, 29: 3, 50: 4}
	for r, want := range cases {
		if got := MatMulTileSize(r); got != want {
			t.Errorf("MatMulTileSize(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestMatMulTiledValidAndNearBound(t *testing.T) {
	for _, tc := range []struct{ n, r int }{{2, 5}, {4, 14}, {4, 29}, {6, 14}} {
		g, ids := gen.MatMulWithIDs(tc.n)
		in := pebble.MustInstance(g, pebble.MPP(1, tc.r, 2))
		rep := replayOK(t, in, MatMulTiled(in, ids))
		if rep.ComputeActions != g.N() {
			t.Errorf("n=%d r=%d: computed %d of %d nodes", tc.n, tc.r, rep.ComputeActions, g.N())
		}
		if rep.Recomputations != 0 {
			t.Errorf("n=%d r=%d: unexpected recomputation", tc.n, tc.r)
		}
		// I/O volume ≈ 2n³/b + n² (+ 2n² one-time input writes). Check
		// within a factor 4 of the analytic tiling volume.
		b := MatMulTileSize(tc.r)
		if b > tc.n {
			b = tc.n
		}
		n3 := tc.n * tc.n * tc.n
		predicted := 2*n3/b + 3*tc.n*tc.n
		if rep.IOActions > 4*predicted || rep.IOActions < predicted/4 {
			t.Errorf("n=%d r=%d: IOActions = %d, tiling analysis predicts ≈ %d",
				tc.n, tc.r, rep.IOActions, predicted)
		}
	}
}

func TestMatMulTiledBeatsPortfolioMemoryPressure(t *testing.T) {
	// Under memory pressure the tiled schedule should use far less I/O
	// than the naive baseline.
	n, r := 6, 14
	g, ids := gen.MatMulWithIDs(n)
	in := pebble.MustInstance(g, pebble.MPP(1, r, 2))
	tiled := replayOK(t, in, MatMulTiled(in, ids))
	base, err := sched.Run(sched.Baseline{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.IOActions*2 > base.IOActions {
		t.Errorf("tiled I/O %d not ≪ baseline I/O %d", tiled.IOActions, base.IOActions)
	}
}
