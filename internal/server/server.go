package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/opt"
)

// Options configures a Server. The zero value is usable: in-memory
// store, no solve cache, GOMAXPROCS workers, a 1024-deep queue.
type Options struct {
	// Store persists jobs; nil means a fresh MemStore.
	Store JobStore
	// Cache is the shared solve cache every worker solves through; nil
	// disables memoization (each solve runs fresh).
	Cache *opt.SolveCache
	// Workers bounds concurrent solves; 0 means GOMAXPROCS (resolved by
	// the scheduler at Start).
	Workers int
	// QueueDepth bounds jobs waiting beyond the ones being solved;
	// submissions past the bound are rejected with 429, not blocked.
	// 0 means 1024.
	QueueDepth int
}

// Server is the HTTP/JSON job API over the exact solver. Construct with
// New, launch the worker pool with Start, serve Handler.
type Server struct {
	store   JobStore
	cache   *opt.SolveCache
	sched   *Scheduler
	metrics *Metrics
	workers int
	mux     *http.ServeMux

	mu     sync.Mutex
	nextID int64 // mpp:guardedby mu
}

// New builds a server (routes wired, workers not yet started).
func New(o Options) *Server {
	if o.Store == nil {
		o.Store = NewMemStore()
	}
	m := NewMetrics()
	s := &Server{
		store:   o.Store,
		cache:   o.Cache,
		sched:   NewScheduler(o.Store, o.Cache, m, o.QueueDepth),
		metrics: m,
		workers: o.Workers,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Start launches the worker pool bound to ctx (cancel it to stop all
// solves); Wait joins the workers afterwards.
func (s *Server) Start(ctx context.Context) {
	s.sched.Start(ctx, s.workers)
}

// Wait blocks until every worker has exited.
func (s *Server) Wait() { s.sched.Wait() }

// Handler returns the API's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// newID allocates the next job ID.
func (s *Server) newID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("j%06d", s.nextID)
}

// writeJSON writes v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeErr writes a JSON error envelope.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit validates the request, stores the job and enqueues it.
// Validation failures are 400; a full queue is 429. Accepted jobs get
// 202 with the initial view — bracket already populated from the root
// heuristic bound.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	in, cfg, timeout, err := req.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := &Job{
		ID:        s.newID(),
		Req:       req,
		State:     StateQueued,
		Submitted: time.Now(),
		DAGName:   in.Graph.Name(),
		N:         in.N(),
		K:         in.K,
		R:         in.R,
		G:         in.G,
		RootLower: opt.RootLowerBound(in, cfg.Heuristic),
	}
	if err := s.store.Put(j); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := s.sched.Submit(j.ID, in, cfg, timeout); err != nil {
		if errors.Is(err, ErrQueueFull) {
			writeErr(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, ViewOf(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs, err := s.store.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	views := make([]View, len(jobs))
	for i := range jobs {
		views[i] = ViewOf(&jobs[i])
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		s.storeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ViewOf(&j))
}

// handleResult serves the full canonical Result document of a finished
// job. A job still queued or running is 409 (poll the status endpoint);
// a failed job has no Result and reports its error instead.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		s.storeErr(w, err)
		return
	}
	if !j.State.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; poll GET /v1/jobs/%s until terminal",
			j.ID, j.State, j.ID)
		return
	}
	if j.Result == nil {
		writeErr(w, http.StatusConflict, "job %s %s without a result: %s", j.ID, j.State, j.Err)
		return
	}
	body, err := EncodeResult(j.Result)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Cancel(r.PathValue("id"))
	if err != nil {
		s.storeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ViewOf(&j))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g := Gauges{QueueDepth: s.sched.QueueDepth(), Running: s.sched.Running()}
	if s.cache != nil {
		g.Cache = s.cache.Stats()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.WriteTo(w, g)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = fmt.Fprintln(w, "ok")
}

// storeErr maps store errors to HTTP codes.
func (s *Server) storeErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}
