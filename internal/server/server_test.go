package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/opt"
)

// startServer wires a full server (workers running) behind an
// httptest.Server and tears both down with the test.
func startServer(t *testing.T, o Options) *httptest.Server {
	t.Helper()
	s := New(o)
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.Wait()
	})
	return ts
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest) (View, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	var v View
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatalf("bad submit response %q: %v", out, err)
		}
	}
	return v, resp.StatusCode
}

func getView(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getView(t, ts, id)
		if State(v.State).Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return View{}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return out, resp.StatusCode
}

// TestSubmitSolveResult drives the happy path: accepted with a root
// bracket, solved to completion, and the result document byte-identical
// to a local opt.SolveCached run of the same request.
func TestSubmitSolveResult(t *testing.T) {
	ts := startServer(t, Options{Workers: 2, Cache: opt.NewSolveCache(cache.Options{})})
	req := SubmitRequest{DAG: "grid:3,3", K: 2, G: 3}
	v, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if v.ID == "" || v.LowerBound <= 0 || v.Incumbent != -1 {
		t.Fatalf("initial view lacks a root bracket: %+v", v)
	}
	if !strings.Contains(v.Bracket, "OPT") {
		t.Fatalf("bracket not rendered: %+v", v)
	}

	fin := waitTerminal(t, ts, v.ID)
	if fin.State != string(StateDone) || fin.ResultStatus != "complete" {
		t.Fatalf("final view: %+v", fin)
	}
	if fin.LowerBound != fin.Incumbent {
		t.Fatalf("complete bracket did not collapse: %+v", fin)
	}

	got, code := fetchResult(t, ts, v.ID)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, got)
	}
	in, cfg, _, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.SolveCached(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server result differs from local solve:\nserver: %s\nlocal:  %s", got, want)
	}
}

// TestWitnessResultCarriesStrategy checks the witness round-trip: a
// witness job's result embeds a strategy document, byte-identical to
// the local reconstruction.
func TestWitnessResultCarriesStrategy(t *testing.T) {
	ts := startServer(t, Options{Workers: 1})
	req := SubmitRequest{DAG: "chain:6", K: 1, G: 2, Witness: true}
	v, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitTerminal(t, ts, v.ID)
	got, code := fetchResult(t, ts, v.ID)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	var doc struct {
		Status   string          `json:"status"`
		Strategy json.RawMessage `json:"strategy"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "complete" || len(doc.Strategy) == 0 {
		t.Fatalf("witness result lacks a strategy: %s", got)
	}
	in, cfg, _, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.SolveCached(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("witness result differs from local solve")
	}
}

// TestBudgetJobTypedPartial: a state-budget stop is StateDone with a
// "budget" result whose bracket is valid — not a failure.
func TestBudgetJobTypedPartial(t *testing.T) {
	ts := startServer(t, Options{Workers: 1})
	v, code := submit(t, ts, SubmitRequest{DAG: "grid:4,4", K: 2, G: 3, MaxStates: 3})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != string(StateDone) || fin.ResultStatus != "budget" {
		t.Fatalf("budget job: %+v", fin)
	}
	if fin.Error == "" || !strings.Contains(fin.Error, "budget") {
		t.Fatalf("budget job should carry the stop reason, got %q", fin.Error)
	}
	if fin.LowerBound < 0 || (fin.Incumbent != -1 && fin.Incumbent < fin.LowerBound) {
		t.Fatalf("invalid partial bracket: %+v", fin)
	}
}

// TestDeadlineJobTypedPartial: a deadline stop is StateDone with a
// "canceled" result — the per-job timeout travels the context plumbing.
func TestDeadlineJobTypedPartial(t *testing.T) {
	ts := startServer(t, Options{Workers: 1})
	v, code := submit(t, ts, SubmitRequest{DAG: "grid:6,6", K: 2, G: 3, TimeoutMS: 30})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != string(StateDone) || fin.ResultStatus != "canceled" {
		t.Fatalf("deadline job: %+v", fin)
	}
	if fin.LowerBound < 0 || (fin.Incumbent != -1 && fin.Incumbent < fin.LowerBound) {
		t.Fatalf("invalid partial bracket: %+v", fin)
	}
}

// TestCancelQueuedJob: with no workers running, a queued job cancels
// immediately.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Options{}) // workers never started
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	v, code := submit(t, ts, SubmitRequest{DAG: "chain:4", K: 1, G: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cv View
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	if cv.State != string(StateCanceled) {
		t.Fatalf("canceled queued job state = %s", cv.State)
	}
}

// TestCancelRunningJob: canceling mid-solve lands the job in
// StateCanceled with the solver's typed partial attached.
func TestCancelRunningJob(t *testing.T) {
	ts := startServer(t, Options{Workers: 1})
	v, code := submit(t, ts, SubmitRequest{DAG: "grid:6,6", K: 2, G: 3})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Wait for the worker to pick it up, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if getView(t, ts, v.ID).State == string(StateRunning) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, v.ID)
	if fin.State != string(StateCanceled) {
		t.Fatalf("canceled running job state = %s", fin.State)
	}
	if fin.ResultStatus != "canceled" {
		t.Fatalf("canceled running job result status = %q", fin.ResultStatus)
	}
}

// TestQueueFullRejects: with no workers draining, submissions beyond
// the queue bound get 429 and leave no job record behind.
func TestQueueFullRejects(t *testing.T) {
	s := New(Options{QueueDepth: 1}) // workers never started
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, code := submit(t, ts, SubmitRequest{DAG: "chain:4", K: 1, G: 1}); code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", code)
	}
	if _, code := submit(t, ts, SubmitRequest{DAG: "chain:4", K: 1, G: 1}); code != http.StatusTooManyRequests {
		t.Fatalf("second submit: HTTP %d, want 429", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 {
		t.Fatalf("rejected submission left a record: %d jobs listed", len(views))
	}
}

// TestSubmitValidation: every malformed request is a 400 with a JSON
// error envelope, never a stored job.
func TestSubmitValidation(t *testing.T) {
	ts := startServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"no dag", `{"k":1,"g":1}`},
		{"both dags", `{"dag":"chain:3","dag_json":{"name":"x"},"k":1,"g":1}`},
		{"bad spec", `{"dag":"nosuch:9","k":1,"g":1}`},
		{"r too small", `{"dag":"grid:3,3","k":1,"r":1,"g":1}`},
		{"bad heuristic", `{"dag":"chain:3","k":1,"g":1,"heuristic":"bogus"}`},
		{"bad mode", `{"dag":"chain:3","k":1,"g":1,"mode":"bogus"}`},
		{"negative timeout", `{"dag":"chain:3","k":1,"g":1,"timeout_ms":-5}`},
		{"unknown field", `{"dag":"chain:3","k":1,"g":1,"bogus":true}`},
		{"negative k", `{"dag":"chain:3","k":-2,"g":1}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", resp.StatusCode)
			}
			var env map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env["error"] == "" {
				t.Fatalf("missing error envelope: %v", err)
			}
		})
	}
}

// TestJobNotFoundAndResultConflict covers the remaining error paths:
// unknown IDs are 404 everywhere, a result fetched before the job is
// terminal is 409.
func TestJobNotFoundAndResultConflict(t *testing.T) {
	s := New(Options{QueueDepth: 4}) // workers never started
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	v, _ := submit(t, ts, SubmitRequest{DAG: "chain:4", K: 1, G: 1})
	if _, code := fetchResult(t, ts, v.ID); code != http.StatusConflict {
		t.Fatalf("result of queued job: HTTP %d, want 409", code)
	}
}

// TestMetricsEndpoint: after one completed solve the counters and the
// histogram must be non-zero, and the cache counters present.
func TestMetricsEndpoint(t *testing.T) {
	ts := startServer(t, Options{Workers: 1, Cache: opt.NewSolveCache(cache.Options{})})
	v, _ := submit(t, ts, SubmitRequest{DAG: "chain:5", K: 1, G: 1})
	waitTerminal(t, ts, v.ID)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"mpp_jobs_submitted_total 1",
		`mpp_jobs_finished_total{state="done"} 1`,
		"mpp_solve_seconds_count 1",
		"mpp_cache_misses_total 1",
		"mpp_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestServerCacheHitAcrossJobs: two identical submissions share one
// search through the solve cache.
func TestServerCacheHitAcrossJobs(t *testing.T) {
	sc := opt.NewSolveCache(cache.Options{})
	ts := startServer(t, Options{Workers: 1, Cache: sc})
	req := SubmitRequest{DAG: "grid:3,3", K: 2, G: 3}
	v1, _ := submit(t, ts, req)
	waitTerminal(t, ts, v1.ID)
	v2, _ := submit(t, ts, req)
	waitTerminal(t, ts, v2.ID)
	st := sc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after identical jobs: %+v", st)
	}
	r1, _ := fetchResult(t, ts, v1.ID)
	r2, _ := fetchResult(t, ts, v2.ID)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("cache hit produced a different result document")
	}
}

// TestEncodeResultDeterministic: the canonical encoding is a pure
// function of the Result.
func TestEncodeResultDeterministic(t *testing.T) {
	req := SubmitRequest{DAG: "fft:2", K: 2, G: 2}
	in, cfg, _, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.SolveCached(context.Background(), in, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeResult not deterministic")
	}
	if _, err := EncodeResult(nil); err == nil {
		t.Fatal("EncodeResult(nil) should error")
	}
}

// TestMemStoreCRUD exercises the store seam directly.
func TestMemStoreCRUD(t *testing.T) {
	st := NewMemStore()
	if err := st.Put(&Job{ID: "a", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Job{ID: "a"}); err == nil {
		t.Fatal("duplicate Put accepted")
	}
	if err := st.Put(&Job{ID: "b", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	j, err := st.Get("a")
	if err != nil || j.ID != "a" {
		t.Fatalf("Get: %+v, %v", j, err)
	}
	if _, err := st.Get("zzz"); err == nil {
		t.Fatal("Get of unknown id succeeded")
	}
	j, err = st.Update("a", func(j *Job) { j.State = StateRunning })
	if err != nil || j.State != StateRunning {
		t.Fatalf("Update: %+v, %v", j, err)
	}
	// Snapshots are copies: mutating one must not leak back.
	j.State = StateFailed
	if cur, _ := st.Get("a"); cur.State != StateRunning {
		t.Fatal("Get returned a shared pointer, not a snapshot")
	}
	all, err := st.List()
	if err != nil || len(all) != 2 || all[0].ID != "a" || all[1].ID != "b" {
		t.Fatalf("List: %+v, %v", all, err)
	}
	if err := st.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("a"); err == nil {
		t.Fatal("double Delete succeeded")
	}
	all, _ = st.List()
	if len(all) != 1 || all[0].ID != "b" {
		t.Fatalf("List after delete: %+v", all)
	}
}

// TestConcurrentSubmissions floods a small pool: everything beyond the
// worker bound queues (no 429 with a deep queue) and completes.
func TestConcurrentSubmissions(t *testing.T) {
	ts := startServer(t, Options{Workers: 2, QueueDepth: 64, Cache: opt.NewSolveCache(cache.Options{})})
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		v, code := submit(t, ts, SubmitRequest{DAG: fmt.Sprintf("chain:%d", 4+i), K: 1, G: 1})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		fin := waitTerminal(t, ts, id)
		if fin.State != string(StateDone) || fin.ResultStatus != "complete" {
			t.Fatalf("job %s: %+v", id, fin)
		}
	}
}
