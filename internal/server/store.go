package server

import (
	"errors"
	"sync"
)

// ErrNotFound is returned by store lookups for unknown job IDs. Match
// with errors.Is.
var ErrNotFound = errors.New("server: job not found")

// JobStore persists jobs. The interface works on snapshots: Get and
// List return copies, and all mutation goes through Update's closure so
// a store can make the read-modify-write atomic however its backend
// requires. The in-memory store below is the only implementation today;
// the error returns exist so a file- or SQL-backed store can slot in
// without an interface change.
type JobStore interface {
	// Put creates the job. The ID must be unused.
	Put(j *Job) error
	// Get returns a snapshot of the job.
	Get(id string) (Job, error)
	// Update applies fn to the stored job atomically and returns the
	// post-update snapshot.
	Update(id string, fn func(*Job)) (Job, error)
	// List returns snapshots of all jobs in submission order.
	List() ([]Job, error)
	// Delete removes the job record.
	Delete(id string) error
}

// MemStore is the in-memory JobStore: a mutex-guarded map plus the
// submission order. Safe for concurrent use.
type MemStore struct {
	mu    sync.Mutex
	jobs  map[string]*Job // mpp:guardedby mu
	order []string        // mpp:guardedby mu
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{jobs: make(map[string]*Job)}
}

// Put creates the job.
func (s *MemStore) Put(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.ID]; ok {
		return errors.New("server: duplicate job id " + j.ID)
	}
	cp := *j
	s.jobs[j.ID] = &cp
	s.order = append(s.order, j.ID)
	return nil
}

// Get returns a snapshot of the job. The contained Result pointer is
// shared but write-once: workers set it exactly once, under the store
// lock, and it is read-only from then on.
func (s *MemStore) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return *j, nil
}

// Update applies fn under the store lock and returns the new snapshot.
func (s *MemStore) Update(id string, fn func(*Job)) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	fn(j)
	return *j, nil
}

// List returns snapshots of all jobs in submission order.
func (s *MemStore) List() ([]Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out, nil
}

// Delete removes the job record (it stays in no listing afterwards).
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return ErrNotFound
	}
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}
