package server

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
)

// solveBuckets are the fixed upper bounds (seconds) of the solve-latency
// histogram. Exact solves span microseconds (cache hits, toy DAGs) to
// minutes (deadline-bounded searches), hence the wide log-spaced range.
var solveBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Metrics accumulates the server's job counters and the solve-latency
// histogram. Safe for concurrent use; rendering is deterministic (fixed
// metric order, no map iteration).
type Metrics struct {
	mu        sync.Mutex
	submitted int64           // mpp:guardedby mu
	rejected  int64           // mpp:guardedby mu
	finished  map[State]int64 // mpp:guardedby mu
	buckets   []int64         // mpp:guardedby mu
	sum       float64         // mpp:guardedby mu
	count     int64           // mpp:guardedby mu
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		finished: make(map[State]int64),
		buckets:  make([]int64, len(solveBuckets)),
	}
}

// JobSubmitted counts a job accepted into the queue.
func (m *Metrics) JobSubmitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
}

// JobRejected counts a submission refused because the queue was full.
func (m *Metrics) JobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// JobFinished counts a job reaching the terminal state and, when the
// job ran a solve, records its latency in the histogram.
func (m *Metrics) JobFinished(state State, solve time.Duration, ran bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	if !ran {
		return
	}
	sec := solve.Seconds()
	for i, ub := range solveBuckets {
		if sec <= ub {
			m.buckets[i]++
		}
	}
	m.sum += sec
	m.count++
}

// Gauges are the point-in-time values rendered alongside the counters:
// the scheduler's queue/worker occupancy and the solve cache's counter
// snapshot.
type Gauges struct {
	QueueDepth int
	Running    int
	Cache      cache.Stats
}

// WriteTo renders the Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer, g Gauges) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP mpp_jobs_submitted_total Jobs accepted into the queue.\n")
	p("# TYPE mpp_jobs_submitted_total counter\n")
	p("mpp_jobs_submitted_total %d\n", m.submitted)
	p("# HELP mpp_jobs_rejected_total Submissions refused because the queue was full.\n")
	p("# TYPE mpp_jobs_rejected_total counter\n")
	p("mpp_jobs_rejected_total %d\n", m.rejected)
	p("# HELP mpp_jobs_finished_total Jobs reaching a terminal state.\n")
	p("# TYPE mpp_jobs_finished_total counter\n")
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		p("mpp_jobs_finished_total{state=%q} %d\n", string(st), m.finished[st])
	}
	p("# HELP mpp_queue_depth Jobs waiting in the queue.\n")
	p("# TYPE mpp_queue_depth gauge\n")
	p("mpp_queue_depth %d\n", g.QueueDepth)
	p("# HELP mpp_jobs_running Jobs currently being solved.\n")
	p("# TYPE mpp_jobs_running gauge\n")
	p("mpp_jobs_running %d\n", g.Running)
	p("# HELP mpp_solve_seconds Wall-clock latency of one solve (queue wait excluded).\n")
	p("# TYPE mpp_solve_seconds histogram\n")
	for i, ub := range solveBuckets {
		p("mpp_solve_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), m.buckets[i])
	}
	p("mpp_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	p("mpp_solve_seconds_sum %s\n", strconv.FormatFloat(m.sum, 'g', -1, 64))
	p("mpp_solve_seconds_count %d\n", m.count)
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"mpp_cache_hits_total", "Complete-result solve cache hits.", g.Cache.Hits},
		{"mpp_cache_misses_total", "Complete-result solve cache misses.", g.Cache.Misses},
		{"mpp_cache_partial_hits_total", "Partial-result (budget) cache hits.", g.Cache.PartialHits},
		{"mpp_cache_partial_misses_total", "Partial-result (budget) cache misses.", g.Cache.PartialMisses},
		{"mpp_cache_evictions_total", "Cache entries evicted.", g.Cache.Evictions},
		{"mpp_cache_disk_errors_total", "File-backed cache errors degraded to misses.", g.Cache.DiskErrors},
	} {
		p("# HELP %s %s\n", c.name, c.help)
		p("# TYPE %s counter\n", c.name)
		p("%s %d\n", c.name, c.v)
	}
	p("# HELP mpp_cache_entries Live solve-cache entries.\n")
	p("# TYPE mpp_cache_entries gauge\n")
	p("mpp_cache_entries %d\n", g.Cache.Entries)
	p("# HELP mpp_cache_bytes Live solve-cache bytes.\n")
	p("# TYPE mpp_cache_bytes gauge\n")
	p("mpp_cache_bytes %d\n", g.Cache.Bytes)
	return err
}
