package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/opt"
	"repro/internal/pebble"
)

// ErrQueueFull is returned by Submit when the bounded queue cannot
// accept another job. Match with errors.Is; the HTTP layer maps it to
// 429 Too Many Requests.
var ErrQueueFull = errors.New("server: job queue full")

// item is one unit of queued work. The parsed instance and resolved
// config ride along so workers never re-parse the request.
type item struct {
	id      string
	in      *pebble.Instance
	cfg     opt.Config
	timeout time.Duration
}

// Scheduler is the bounded worker pool behind the job API: Submit
// enqueues (never blocks — a full queue is a typed rejection), a fixed
// set of workers drains the queue, and every solve goes through
// opt.SolveCached against the shared cache. Per-job deadlines and API
// cancellation both travel the solver's existing context plumbing.
type Scheduler struct {
	store   JobStore
	cache   *opt.SolveCache
	metrics *Metrics
	queue   chan item
	wg      sync.WaitGroup

	mu      sync.Mutex
	running map[string]context.CancelFunc // mpp:guardedby mu
}

// NewScheduler wires a scheduler over the given store, solve cache
// (nil disables caching) and metrics. queueDepth bounds how many jobs
// may wait beyond the ones being solved; workers is fixed at Start.
func NewScheduler(store JobStore, sc *opt.SolveCache, m *Metrics, queueDepth int) *Scheduler {
	if queueDepth < 1 {
		queueDepth = 1024
	}
	return &Scheduler{
		store:   store,
		cache:   sc,
		metrics: m,
		queue:   make(chan item, queueDepth),
		running: make(map[string]context.CancelFunc),
	}
}

// Start launches n workers (0 means GOMAXPROCS) bound to ctx:
// canceling ctx stops every in-flight solve (their per-job contexts are
// children) and the workers exit once the queue stops yielding work.
// Call Wait to join.
func (s *Scheduler) Start(ctx context.Context, n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
}

// Wait blocks until every worker has exited (after their ctx is
// canceled).
func (s *Scheduler) Wait() { s.wg.Wait() }

// QueueDepth returns the number of jobs waiting (not yet picked up).
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Running returns the number of jobs currently being solved.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}

// Submit enqueues an already-stored job. On a full queue the job record
// is removed again and ErrQueueFull returned — the submission never
// existed as far as the API is concerned.
func (s *Scheduler) Submit(id string, in *pebble.Instance, cfg opt.Config, timeout time.Duration) error {
	select {
	case s.queue <- item{id: id, in: in, cfg: cfg, timeout: timeout}:
		s.metrics.JobSubmitted()
		return nil
	default:
		s.metrics.JobRejected()
		if err := s.store.Delete(id); err != nil {
			return errors.Join(ErrQueueFull, err)
		}
		return ErrQueueFull
	}
}

// Cancel requests cancellation: a queued job is finished immediately as
// StateCanceled; a running job has its solve context canceled and lands
// in StateCanceled (with the partial bracket the solver returned) once
// its worker observes the stop. Canceling a terminal job is a no-op.
// The returned snapshot reflects the state after the request.
func (s *Scheduler) Cancel(id string) (Job, error) {
	fromQueue := false
	j, err := s.store.Update(id, func(j *Job) {
		if j.State.Terminal() {
			return
		}
		j.CancelRequested = true
		if j.State == StateQueued {
			j.State = StateCanceled
			j.Finished = time.Now()
			fromQueue = true
		}
	})
	if err != nil {
		return Job{}, err
	}
	if fromQueue {
		// Canceled straight out of the queue: the worker will skip it.
		s.metrics.JobFinished(StateCanceled, 0, false)
	}
	s.mu.Lock()
	cancel := s.running[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, nil
}

// worker drains the queue until ctx is canceled and the queue is idle.
func (s *Scheduler) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case it := <-s.queue:
			s.run(ctx, it)
		}
	}
}

// run executes one queued job: claim it (skipping jobs canceled while
// queued), derive the per-job context, solve through the shared cache,
// and classify the outcome. A deadline or budget stop is StateDone with
// a typed partial Result; only a Result-less failure is StateFailed.
func (s *Scheduler) run(ctx context.Context, it item) {
	claimed := false
	_, err := s.store.Update(it.id, func(j *Job) {
		if j.State == StateQueued && !j.CancelRequested {
			j.State = StateRunning
			j.Started = time.Now()
			claimed = true
		}
	})
	if err != nil || !claimed {
		return
	}

	jctx, cancel := context.WithCancel(ctx)
	if it.timeout > 0 {
		jctx, cancel = context.WithTimeout(ctx, it.timeout)
	}
	s.mu.Lock()
	s.running[it.id] = cancel
	s.mu.Unlock()

	start := time.Now()
	res, serr := opt.SolveCached(jctx, it.in, it.cfg, s.cache)
	elapsed := time.Since(start)

	s.mu.Lock()
	delete(s.running, it.id)
	s.mu.Unlock()
	cancel()

	var final State
	_, err = s.store.Update(it.id, func(j *Job) {
		j.Finished = time.Now()
		j.Result = res
		if serr != nil {
			j.Err = serr.Error()
		}
		switch {
		case res == nil:
			j.State = StateFailed
		case j.CancelRequested && res.Status == opt.StatusCanceled:
			j.State = StateCanceled
		default:
			// Complete, budget-stopped, or deadline-stopped: all carry
			// a Result whose Status says how the search ended.
			j.State = StateDone
		}
		final = j.State
	})
	if err != nil {
		return
	}
	s.metrics.JobFinished(final, elapsed, true)
}
